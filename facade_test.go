package udm_test

import (
	"math"
	"testing"

	"udm"
)

// These tests exercise the facade exports that the quickstart-style tests
// don't reach: microaggregation, CV bandwidths, drift, k-means, naive
// Bayes, outlier explanation, and mixed/row-level perturbation.

func TestFacadeMicroaggregate(t *testing.T) {
	clean, err := udm.TwoBlobs(3).Generate(200, udm.NewRand(30))
	if err != nil {
		t.Fatal(err)
	}
	agg, err := udm.Microaggregate(clean, udm.MicroaggregateOptions{GroupSize: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !agg.HasErrors() || agg.Len() != 200 {
		t.Fatal("aggregation lost rows or errors")
	}
	// Aggregated data still trains a usable classifier.
	clf, err := udm.Train(agg, udm.TrainConfig{MicroClusters: 20, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	got, err := clf.Classify([]float64{-3, 0})
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("aggregated classifier predicted %d", got)
	}
}

func TestFacadeCVBandwidths(t *testing.T) {
	clean, err := udm.TwoBlobs(3).Generate(150, udm.NewRand(32))
	if err != nil {
		t.Fatal(err)
	}
	h, err := udm.CVBandwidths(clean, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(h) != 2 || h[0] <= 0 || h[1] <= 0 {
		t.Fatalf("bandwidths %v", h)
	}
	est, err := udm.NewPointDensity(clean, udm.DensityOptions{Bandwidths: h})
	if err != nil {
		t.Fatal(err)
	}
	if est.Density([]float64{-3, 0}) <= 0 {
		t.Fatal("density with CV bandwidths non-positive")
	}
}

func TestFacadeDriftAndStream(t *testing.T) {
	eng, err := udm.NewStreamEngine(udm.StreamOptions{MicroClusters: 16, Dims: 1, SnapshotEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	r := udm.NewRand(33)
	for i := 0; i < 800; i++ {
		c := 0.0
		if i >= 400 {
			c = 5.0
		}
		eng.Add([]float64{r.Norm(c, 0.5)}, nil, int64(i))
	}
	w1, err := eng.Window(-1, 399)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := eng.Window(399, 799)
	if err != nil {
		t.Fatal(err)
	}
	score, err := udm.Drift1D(w1, w2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if score < 0.9 {
		t.Fatalf("drift %v, want near 1", score)
	}
}

func TestFacadeKMeansAndNaiveBayes(t *testing.T) {
	clean, err := udm.TwoBlobs(4).Generate(300, udm.NewRand(34))
	if err != nil {
		t.Fatal(err)
	}
	km, err := udm.KMeans(clean, udm.KMeansOptions{K: 2, Seed: 35})
	if err != nil {
		t.Fatal(err)
	}
	if len(km.Centroids) != 2 {
		t.Fatal("kmeans centroids wrong")
	}
	nb, err := udm.NewNaiveBayes(clean)
	if err != nil {
		t.Fatal(err)
	}
	res, err := udm.Evaluate(nb, clean)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy() < 0.95 {
		t.Fatalf("NB accuracy %.3f on separable blobs", res.Accuracy())
	}
}

func TestFacadeExplainOutlier(t *testing.T) {
	ds := udm.NewDataset("a", "b")
	r := udm.NewRand(36)
	for i := 0; i < 150; i++ {
		_ = ds.Append([]float64{r.Norm(0, 1), r.Norm(0, 1)}, nil, udm.Unlabeled)
	}
	_ = ds.Append([]float64{0, 30}, nil, udm.Unlabeled)
	contribs, err := udm.ExplainOutlier(ds, 150, udm.OutlierOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if contribs[0].Dim != 1 {
		t.Fatalf("guilty dimension %d, want 1", contribs[0].Dim)
	}
}

func TestFacadePerturbVariants(t *testing.T) {
	clean, err := udm.TwoBlobs(3).Generate(300, udm.NewRand(37))
	if err != nil {
		t.Fatal(err)
	}
	mixed, err := udm.MixedLevelPerturb(clean, 0.1, 2, 0.5, udm.NewRand(38))
	if err != nil {
		t.Fatal(err)
	}
	row, err := udm.RowLevelPerturb(clean, []float64{0.1, 2}, []float64{1, 1}, udm.NewRand(39))
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range []*udm.Dataset{mixed, row} {
		if !ds.HasErrors() {
			t.Fatal("perturbation lost errors")
		}
		if err := ds.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	// Row-level: uniform error within a row; mixed: not necessarily.
	uniform := true
	for j := 1; j < row.Dims(); j++ {
		// errors scale with per-dim σ, so compare multipliers.
		_, sig := clean.ColumnStats()
		if math.Abs(row.Err[0][j]/sig[j]-row.Err[0][0]/sig[0]) > 1e-9 {
			uniform = false
		}
	}
	if !uniform {
		t.Fatal("RowLevelPerturb errors not uniform within a row")
	}
}

func TestFacadeRulesEndToEnd(t *testing.T) {
	clean, err := udm.TwoBlobs(4).Generate(500, udm.NewRand(40))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := udm.NewTransform(clean, udm.TransformOptions{MicroClusters: 15, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	clf, err := udm.NewClassifier(tr, udm.ClassifierOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rules, err := clf.ExtractRules(tr, udm.RuleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := udm.NewRuleSet(rules, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := udm.Evaluate(rs, clean)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy() < 0.9 {
		t.Fatalf("rule set accuracy %.3f", res.Accuracy())
	}
}

func TestFacadeParallelBatch(t *testing.T) {
	clean, err := udm.TwoBlobs(3).Generate(300, udm.NewRand(40))
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := udm.Perturb(clean, 1.0, udm.NewRand(41))
	if err != nil {
		t.Fatal(err)
	}
	if udm.BatchWorkers(7) != 7 || udm.BatchWorkers(0) < 1 {
		t.Fatal("BatchWorkers resolution broken")
	}

	// Batch density through the facade: bit-identical to serial.
	est, err := udm.NewPointDensity(noisy, udm.DensityOptions{ErrorAdjust: true})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := udm.DensityBatch(est, noisy.X, nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range noisy.X {
		if batch[i] != est.Density(x) {
			t.Fatalf("row %d: batch %v != serial %v", i, batch[i], est.Density(x))
		}
	}

	// Train with explicit workers: same model as the serial build.
	workers := udm.TrainConfig{MicroClusters: 20, Seed: 42, Workers: 8}
	serial := workers
	serial.Workers = 1
	cw, err := udm.Train(noisy, workers)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := udm.Train(noisy, serial)
	if err != nil {
		t.Fatal(err)
	}
	dp, err := cw.PredictBatch(noisy.X, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range noisy.X {
		want, err := cs.Classify(x)
		if err != nil {
			t.Fatal(err)
		}
		if dp[i].Label != want {
			t.Fatalf("row %d: parallel-trained PredictBatch label %d, serial train+classify %d", i, dp[i].Label, want)
		}
	}

	// Parallel CV bandwidths agree with the default path.
	h1, err := udm.CVBandwidths(noisy, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	h8, err := udm.CVBandwidthsWorkers(noisy, true, nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	for j := range h1 {
		if h1[j] != h8[j] {
			t.Fatalf("CV bandwidth %d: %v vs %v", j, h1[j], h8[j])
		}
	}
}
