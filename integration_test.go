package udm_test

import (
	"path/filepath"
	"testing"

	"udm"
)

// TestFullClassificationPipeline drives the complete supervised flow:
// profile → perturb → split → CSV round trip → train → persist → reload
// → evaluate → probabilities → rules. Everything a deployment would do.
func TestFullClassificationPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test skipped in -short")
	}
	spec, err := udm.DataProfile("breast-cancer")
	if err != nil {
		t.Fatal(err)
	}
	clean, err := spec.Generate(1200, udm.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	// Moderate noise: at high f this near-separable profile saturates
	// into the over-smoothing regime documented in EXPERIMENTS.md.
	noisy, err := udm.Perturb(clean, 0.5, udm.NewRand(2))
	if err != nil {
		t.Fatal(err)
	}
	train, test, err := noisy.StratifiedSplit(0.7, udm.NewRand(3))
	if err != nil {
		t.Fatal(err)
	}

	// CSV round trip of the training table (errors included).
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "train.csv")
	if err := train.SaveCSV(csvPath); err != nil {
		t.Fatal(err)
	}
	trainBack, err := udm.LoadCSV(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if trainBack.Len() != train.Len() || !trainBack.HasErrors() {
		t.Fatal("CSV round trip lost rows or errors")
	}

	// Train, persist, reload.
	tr, err := udm.NewTransform(trainBack, udm.TransformOptions{
		MicroClusters: 60, ErrorAdjust: true, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	modelPath := filepath.Join(dir, "model.udm")
	if err := tr.SaveFile(modelPath); err != nil {
		t.Fatal(err)
	}
	loaded, err := udm.LoadTransformFile(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	clf, err := udm.NewClassifier(loaded, udm.ClassifierOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// Evaluate; the profile is quite separable, so demand a solid score.
	res, err := udm.Evaluate(clf, test)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy() < 0.85 {
		t.Fatalf("pipeline accuracy %.3f", res.Accuracy())
	}

	// Probabilities agree with hard labels on a sample.
	for i := 0; i < 25; i++ {
		p, err := clf.Probabilities(test.X[i])
		if err != nil {
			t.Fatal(err)
		}
		label, err := clf.Classify(test.X[i])
		if err != nil {
			t.Fatal(err)
		}
		best := 0
		if p[1] > p[0] {
			best = 1
		}
		if best != label {
			t.Fatalf("row %d: probability argmax %d vs label %d", i, best, label)
		}
	}

	// Batch classification matches sequential.
	batch, err := clf.ClassifyBatch(test.X[:50], 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		seq, _ := clf.Classify(test.X[i])
		if batch[i] != seq {
			t.Fatal("batch/sequential mismatch")
		}
	}

	// Rule extraction on the loaded model yields usable rules.
	rules, err := clf.ExtractRules(loaded, udm.RuleOptions{MaxPerClass: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) == 0 {
		t.Fatal("no rules from a separable model")
	}
	rs, err := udm.NewRuleSet(rules, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	rsRes, err := udm.Evaluate(rs, test)
	if err != nil {
		t.Fatal(err)
	}
	if rsRes.Accuracy() < 0.7 {
		t.Fatalf("rule-set accuracy %.3f too far below the classifier", rsRes.Accuracy())
	}
}

// TestFullStreamPipeline drives the unsupervised stream flow: engine →
// snapshots → window → drift → density → clustering → anomaly scoring.
func TestFullStreamPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test skipped in -short")
	}
	eng, err := udm.NewStreamEngine(udm.StreamOptions{
		MicroClusters: 40, Dims: 2, SnapshotEvery: 250,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := udm.NewRand(5)
	const per = 1500
	for i := 0; i < 2*per; i++ {
		center := 0.0
		if i >= per {
			center = 5.0 // regime change
		}
		eng.Add([]float64{r.Norm(center, 0.5), r.Norm(0, 0.5)}, []float64{0.1, 0.1}, int64(i))
	}

	// Drift between the halves fires on dim 0 only.
	w1, err := eng.Window(-1, per-1)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := eng.Window(per-1, 2*per-1)
	if err != nil {
		t.Fatal(err)
	}
	scores, worst, err := udm.Drift(w1, w2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if worst != 0 || scores[0] < 0.9 || scores[1] > 0.2 {
		t.Fatalf("drift = %v (worst %d)", scores, worst)
	}

	// The second window's features feed density + clustering.
	s2, err := udm.SummarizerFromFeatures(w2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := udm.DBSCANClusters(s2, udm.DBSCANOptions{
		Eps: 1.5, KDE: udm.DensityOptions{ErrorAdjust: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 1 {
		t.Fatalf("second window clusters = %d, want 1 (single regime)", res.NumClusters)
	}

	// Anomaly scoring against the live summary.
	live, err := eng.Summarizer()
	if err != nil {
		t.Fatal(err)
	}
	queries := [][]float64{{0, 0}, {5, 0}, {50, 50}}
	out, err := udm.DetectStreamOutliers(live, queries, nil, udm.OutlierOptions{
		Contamination: 0.3, // top-1 of the three queries
		KDE:           udm.DensityOptions{ErrorAdjust: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Outlier[0] || out.Outlier[1] || !out.Outlier[2] {
		t.Fatalf("outlier flags %v", out.Outlier)
	}
	if !(out.Scores[2] > out.Scores[0] && out.Scores[2] > out.Scores[1]) {
		t.Fatalf("far query not the most anomalous: %v", out.Scores)
	}
}
