package udm_test

import (
	"context"
	"testing"

	"udm"
)

// These tests pin the density-backend facade: EvalOptions parsing, the
// backend constructors, the Info contract, and the canonical
// DensityBatchOpts path delegating to a pluggable backend.

func TestFacadeParseEvalOptions(t *testing.T) {
	opt, err := udm.ParseEvalOptions("backend=hbe,epsilon=0.05,workers=2,seed=9")
	if err != nil {
		t.Fatal(err)
	}
	if opt.Backend != udm.BackendHBE || opt.Epsilon != 0.05 || opt.Workers != 2 || opt.Seed != 9 {
		t.Errorf("parsed %+v, want hbe/0.05/2 workers/seed 9", opt)
	}
	// The canonical String form round-trips.
	back, err := udm.ParseEvalOptions(opt.String())
	if err != nil {
		t.Fatal(err)
	}
	if back != opt {
		t.Errorf("round-trip %+v != %+v", back, opt)
	}
	// Bare backend-name shorthand.
	if opt, err = udm.ParseEvalOptions("grid"); err != nil || opt.Backend != udm.BackendGrid {
		t.Errorf("shorthand: %+v, %v", opt, err)
	}
	if _, err := udm.ParseEvalOptions("backend=warp"); err == nil {
		t.Error("unknown backend parsed without error")
	}
}

func TestFacadeDensityBackends(t *testing.T) {
	clean, err := udm.TwoBlobs(3).Generate(500, udm.NewRand(41))
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := udm.Perturb(clean, 0.5, udm.NewRand(42))
	if err != nil {
		t.Fatal(err)
	}
	exact, err := udm.NewDensityBackend(noisy, udm.DensityOptions{ErrorAdjust: true})
	if err != nil {
		t.Fatal(err)
	}
	if info := exact.Info(); !info.Exact || info.Backend != udm.BackendExact {
		t.Errorf("default backend info = %+v, want exact", info)
	}
	Q := noisy.X[:50]
	want, err := udm.DensityBatchOpts(exact, Q, nil, udm.BatchOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	for _, kind := range []udm.DensityBackendKind{udm.BackendMicro, udm.BackendGrid, udm.BackendHBE} {
		opt := udm.DensityOptions{ErrorAdjust: true}
		opt.Eval.Backend = kind
		b, err := udm.NewDensityBackend(noisy, opt)
		if err != nil {
			t.Fatalf("backend %s: %v", kind, err)
		}
		info := b.Info()
		if info.Backend != kind || info.Contract == "" {
			t.Errorf("backend %s info = %+v", kind, info)
		}
		// The canonical batch path delegates to the backend. Grid and hbe
		// advertise a relative-error bound against the exact answer; the
		// micro rung is exact over its compressed summary, so against the
		// raw-point reference only a loose sanity tolerance applies.
		got, err := udm.DensityBatchOpts(b, Q, nil, udm.BatchOptions{Workers: 2})
		if err != nil {
			t.Fatalf("backend %s batch: %v", kind, err)
		}
		tol := info.Epsilon + 1e-12
		if kind == udm.BackendMicro {
			tol = 0.5
		}
		for i := range got {
			rel := (got[i] - want[i]) / want[i]
			if rel < 0 {
				rel = -rel
			}
			if rel > tol {
				t.Fatalf("backend %s query %d: rel err %v > advertised %v", kind, i, rel, tol)
			}
		}
		// The context-first DensityBatch method is the delegation hook.
		direct, err := b.DensityBatch(context.Background(), Q[:5], nil, 1)
		if err != nil {
			t.Fatalf("backend %s direct: %v", kind, err)
		}
		if len(direct) != 5 {
			t.Fatalf("backend %s direct returned %d values", kind, len(direct))
		}
	}
}

func TestFacadeBackendFromSummarizer(t *testing.T) {
	clean, err := udm.TwoBlobs(3).Generate(400, udm.NewRand(51))
	if err != nil {
		t.Fatal(err)
	}
	sum := udm.Summarize(clean, 30, udm.NewRand(52))
	opt := udm.DensityOptions{}
	opt.Eval.Backend = udm.BackendMicro
	b, err := udm.DensityBackendFromSummarizer(sum, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Micro over an existing summary is the exact engine over its
	// pseudo-points: bit-identical to ClusterDensity.
	ref, err := udm.NewClusterDensity(sum, udm.DensityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	x := clean.X[7]
	got := b.Density(x)
	want := ref.Density(x)
	if got != want {
		t.Errorf("micro-over-summary density %v != cluster density %v", got, want)
	}
}
