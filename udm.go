// Package udm is uncertain data mining via density-based transforms — a
// Go implementation of Aggarwal, "On Density Based Transforms for
// Uncertain Data Mining" (ICDE 2007).
//
// The library handles data whose entries carry quantified uncertainty:
// per-entry standard errors ψ_j(X_i) arising from measurement equipment,
// imputation of missing values, forecasting, or deliberate
// privacy-preserving perturbation. Its central idea is to use an
// error-adjusted kernel density estimate as the intermediate
// representation for mining: each point's kernel is widened by that
// point's own error, so unreliable entries smear out and reliable ones
// stay sharp.
//
// Three layers:
//
//   - Error-adjusted kernel density estimation (NewPointDensity), exact
//     over the data points.
//   - Error-based micro-clusters (Summarize, NewTransform): additive
//     (CF2x, EF2x, CF1x, n) summaries that compress a data set — or a
//     stream — into q pseudo-points with honest errors (Lemma 1), from
//     which densities over any dimension subset are computable in O(q)
//     (NewClusterDensity).
//   - Mining algorithms on top of densities: the density-based subspace
//     classifier of the paper's Figure 3 (Train / Classifier) and an
//     uncertain-DBSCAN clustering extension (DBSCAN).
//
// Quickstart:
//
//	noisy, _ := udm.Perturb(clean, 1.5, udm.NewRand(7)) // or real errors
//	train, test, _ := noisy.StratifiedSplit(0.7, udm.NewRand(8))
//	clf, _ := udm.Train(train, udm.TrainConfig{MicroClusters: 140})
//	label, _ := clf.Classify(test.X[0])
//
// # Error contract
//
// Failures that a caller can act on wrap one of five package-level
// sentinels, so classification is errors.Is, never string matching:
//
//   - ErrDimensionMismatch — input shape disagrees with the model or
//     dataset (wrong row width, subspace dimension out of range,
//     mismatched error-matrix shape). Fix the input.
//   - ErrNoErrors — an error-dependent operation ran against data that
//     carries no per-entry errors, or error-free and error-bearing rows
//     were mixed. Supply errors or drop the option.
//   - ErrUntrained — the model or estimator has no data behind it
//     (empty dataset, empty summarizer, a class with no rows). Train or
//     load a model first.
//   - ErrBadOption — an option value is outside its documented domain
//     (non-positive cluster counts, error adjustment with a
//     non-Gaussian kernel, non-positive explicit bandwidths). Fix the
//     configuration.
//   - ErrBadData — the content of the supplied data is malformed even
//     though its shape may be right (NaN/Inf values, invalid standard
//     errors, out-of-range labels, malformed CSV, corrupt snapshots).
//     Fix or regenerate the data.
//
// # Context-first batch APIs
//
// Every parallel batch API has a context-taking form — the *Context
// method variants (ClassifyBatchContext, DensityBatchContext,
// PredictBatchContext, ProbabilitiesBatchContext,
// LeaveOneOutBatchContext), TrainContext, and the BatchOptions-taking
// facade functions — that threads cancellation down to the shared
// worker pool: cancelling the context stops work chunks that have not
// started and returns ctx.Err(). The context-free forms are thin
// wrappers over context.Background() kept for convenience and
// compatibility; long-running services (see cmd/udmserve) should use
// the context forms so abandoned requests stop consuming CPU.
//
// # Observability
//
// The library self-instruments through internal/obs: batch APIs and
// the serving layer count work and record trace spans on a
// process-wide registry. WriteMetrics renders everything in Prometheus
// text format, StartSpan opens an application-level span that nests
// around the library's own, and SetTelemetry(false) (or UDM_OBS=off in
// the environment) disables all of it — counters, histograms, and
// spans — leaving a single atomic load on the hot paths.
// Instrumentation never changes numerics: batch results stay
// bit-identical with telemetry on or off. See DESIGN.md §11.
//
// See examples/ for complete programs and DESIGN.md for the paper map.
package udm

import (
	"context"
	"io"

	"udm/internal/baseline"
	"udm/internal/cluster"
	"udm/internal/core"
	"udm/internal/datagen"
	"udm/internal/dataset"
	"udm/internal/density"
	"udm/internal/eval"
	"udm/internal/evalopt"
	"udm/internal/kde"
	"udm/internal/kernel"
	"udm/internal/microcluster"
	"udm/internal/obs"
	"udm/internal/outlier"
	"udm/internal/parallel"
	"udm/internal/rng"
	"udm/internal/stream"
	"udm/internal/udmerr"
	"udm/internal/uncertain"
)

// Sentinel errors of the module's error contract (see the package
// documentation). Match with errors.Is.
var (
	// ErrDimensionMismatch reports input whose shape disagrees with the
	// model or dataset it is applied to.
	ErrDimensionMismatch = udmerr.ErrDimensionMismatch
	// ErrNoErrors reports an error-dependent operation applied to data
	// without per-entry error information.
	ErrNoErrors = udmerr.ErrNoErrors
	// ErrUntrained reports an operation against a model or estimator
	// with no data behind it.
	ErrUntrained = udmerr.ErrUntrained
	// ErrBadOption reports an option value outside its documented
	// domain.
	ErrBadOption = udmerr.ErrBadOption
	// ErrBadData reports supplied data whose content is malformed:
	// NaN/Inf values, invalid standard errors, out-of-range labels,
	// malformed CSV, or a corrupt model/checkpoint artifact.
	ErrBadData = udmerr.ErrBadData
	// ErrInjected reports a failure fired by an armed fault-injection
	// site (internal/faultinject) — it never occurs in production
	// configurations, where every site is disarmed.
	ErrInjected = udmerr.ErrInjected
	// ErrCircuitOpen reports a request refused fast because the serving
	// layer's circuit breaker for the target model is open.
	ErrCircuitOpen = udmerr.ErrCircuitOpen
	// ErrDegraded reports a request the serving layer could not satisfy
	// even in degraded mode (breaker open and no stale answer cached).
	ErrDegraded = udmerr.ErrDegraded
)

// Data model.
type (
	// Dataset is an N×d table with optional per-entry standard errors and
	// class labels.
	Dataset = dataset.Dataset
	// Fold is one train/test division of a k-fold split.
	Fold = dataset.Fold
)

// Unlabeled marks rows without a class label.
const Unlabeled = dataset.Unlabeled

// NewDataset returns an empty dataset over the given dimension names.
func NewDataset(names ...string) *Dataset { return dataset.New(names...) }

// LoadCSV reads a dataset (values, optional "name±" error columns,
// optional "class" column) from a file.
var LoadCSV = dataset.LoadCSV

// ReadCSV reads a dataset from an io.Reader.
var ReadCSV = dataset.ReadCSV

// Randomness.
type (
	// Rand is a deterministic, splittable random stream.
	Rand = rng.Source
)

// NewRand returns a seeded random stream.
func NewRand(seed int64) *Rand { return rng.New(seed) }

// Error models.
var (
	// Perturb applies the paper's §4 protocol: per-entry noise with a
	// std drawn from U[0, 2f]·σ_j, recorded as the entry's error.
	Perturb = uncertain.Perturb
	// FieldNoise perturbs each dimension by a known per-field σ.
	FieldNoise = uncertain.FieldNoise
	// PrivacyPerturb adds publication noise scaled to each dimension's
	// spread and records it.
	PrivacyPerturb = uncertain.PrivacyPerturb
	// RowLevelPerturb gives every row its own noise level drawn from a
	// discrete mixture (heterogeneous sources).
	RowLevelPerturb = uncertain.RowLevelPerturb
	// MixedLevelPerturb masks each entry independently lightly or heavily
	// and records the applied scale (per-entry heterogeneity).
	MixedLevelPerturb = uncertain.MixedLevelPerturb
	// MaskCompletelyAtRandom masks entries missing-completely-at-random.
	MaskCompletelyAtRandom = uncertain.MaskCompletelyAtRandom
	// Microaggregate publishes k-anonymous cell means with the cell
	// spread as each entry's error (partially aggregated data).
	Microaggregate = uncertain.Microaggregate
)

// MicroaggregateOptions configure Microaggregate.
type MicroaggregateOptions = uncertain.MicroaggregateOptions

type (
	// Mask marks missing entries for the imputers.
	Mask = uncertain.Mask
	// Imputer fills missing entries and emits imputation errors.
	Imputer = uncertain.Imputer
	// MeanImputer imputes column means with the column σ as error.
	MeanImputer = uncertain.MeanImputer
	// KNNImputer imputes from nearest rows with the neighborhood σ as error.
	KNNImputer = uncertain.KNNImputer
	// HotDeckImputer imputes from random donors with the column σ as error.
	HotDeckImputer = uncertain.HotDeckImputer
)

// Density estimation.
type (
	// DensityOptions configure kernels, bandwidths and error adjustment.
	DensityOptions = kde.Options
	// DensityEstimator evaluates joint densities over dimension subsets.
	DensityEstimator = kde.Estimator
	// PointDensity is the exact estimator (Eq. 1–4).
	PointDensity = kde.PointKDE
	// ClusterDensity is the micro-cluster estimator (Eq. 9–10).
	ClusterDensity = kde.ClusterKDE
	// Bandwidth selects the smoothing rule.
	Bandwidth = kernel.Bandwidth
	// KernelType selects the base kernel shape.
	KernelType = kernel.Type
	// BandwidthRule names a bandwidth selection rule.
	BandwidthRule = kernel.BandwidthRule
	// AccuracyMode selects exact kernel evaluation or the bounded-error
	// fast-exponential surrogate on the batch density paths; set it via
	// DensityOptions.Accuracy or per estimator with WithAccuracy. The
	// zero value is exact.
	AccuracyMode = kernel.AccuracyMode
)

// Exact requests exact kernel evaluation (the AccuracyMode zero value):
// batch densities are bit-identical to the per-query methods when
// DensityOptions.Prune is zero.
func Exact() AccuracyMode { return kernel.Exact() }

// Approx requests approximate kernel evaluation with relative density
// error at most eps; implementations fall back to exact evaluation when
// eps is tighter than the surrogate can guarantee.
func Approx(eps float64) AccuracyMode { return kernel.Approx(eps) }

// Kernel shapes.
const (
	Gaussian     = kernel.Gaussian
	Epanechnikov = kernel.Epanechnikov
	Laplace      = kernel.Laplace
)

// Bandwidth rules.
const (
	Silverman       = kernel.Silverman
	SilvermanRobust = kernel.SilvermanRobust
	Scott           = kernel.Scott
	FixedBandwidth  = kernel.Fixed
)

// NewPointDensity builds the exact error-adjusted density estimate over a
// dataset.
func NewPointDensity(ds *Dataset, opt DensityOptions) (*PointDensity, error) {
	return kde.NewPoint(ds, opt)
}

// BatchOptions carries every per-call knob of a batch evaluation —
// context, worker cap, and the unified evaluation options. It is the
// preferred way to pass execution knobs to the facade's batch
// functions: new APIs take a BatchOptions instead of a positional
// workers int, and the positional forms are retained as thin wrappers.
type BatchOptions = kde.BatchOptions

// EvalOptions is the one home for every evaluation knob: backend
// selection, the approximate backends' ε/δ budgets, far-field pruning,
// the kernel accuracy mode, worker cap and seed. Set it on
// DensityOptions.Eval to govern construction, or on BatchOptions.Eval
// to govern one batch call. The zero value means exact evaluation with
// default behavior everywhere.
type EvalOptions = evalopt.Options

// ParseEvalOptions parses the shared wire/flag form of EvalOptions —
// a comma-separated key=value list ("backend=hbe,epsilon=0.05,
// workers=4"), with a bare backend name accepted as shorthand. It is
// the grammar the udmkde -eval flag and the serving layer's eval
// request field speak.
var ParseEvalOptions = evalopt.Parse

// DensityBackendKind names a density-evaluation backend.
type DensityBackendKind = evalopt.Backend

// The density-backend accuracy ladder, most to least exact. The
// default (empty) backend is exact.
const (
	BackendExact = evalopt.BackendExact
	BackendHBE   = evalopt.BackendHBE
	BackendGrid  = evalopt.BackendGrid
	BackendMicro = evalopt.BackendMicro
)

// DensityBackend is a pluggable density estimator: a DensityEstimator
// that evaluates whole batches itself, describes its own accuracy
// contract, and supports cheap per-request accuracy switching. The
// batch facade functions delegate to it transparently.
type DensityBackend = density.Backend

// BackendInfo is a backend's self-description: which rung of the
// accuracy ladder it is and what accuracy it promises.
type BackendInfo = density.Info

// NewDensityBackend builds the density backend selected by
// opt.Eval.Backend over raw rows. The default is exact — bit-identical
// to NewPointDensity.
func NewDensityBackend(ds *Dataset, opt DensityOptions) (DensityBackend, error) {
	return density.New(ds, opt)
}

// DensityBackendFromSummarizer builds the selected backend over a
// micro-cluster summary (the serving layer's native input).
func DensityBackendFromSummarizer(s *Summarizer, opt DensityOptions) (DensityBackend, error) {
	return density.FromSummarizer(s, opt)
}

// DensityBatch evaluates any density estimator at every row of X over
// the dimension subset dims (nil = all dimensions), fanned out over up
// to BatchWorkers(workers) goroutines. Results are bit-for-bit
// identical for every worker count, and — in exact mode with
// DensityOptions.Prune zero — bit-identical to the serial per-query
// loop; Prune > 0 trades a bounded relative error for far-field
// truncation, and a non-exact AccuracyMode additionally enables the
// fast-exponential surrogate.
//
// Deprecated: use DensityBatchOpts, which carries context, workers and
// the unified evaluation options in one BatchOptions value.
func DensityBatch(est DensityEstimator, X [][]float64, dims []int, workers int) ([]float64, error) {
	return DensityBatchOpts(est, X, dims, BatchOptions{Workers: workers})
}

// DensityBatchOpts is the canonical batch evaluation: opt.Ctx cancels
// the batch, opt.Workers caps the fan-out, and opt.Eval selects
// backend and accuracy. Estimators that are themselves a
// DensityBackend evaluate the batch under their own contract.
func DensityBatchOpts(est DensityEstimator, X [][]float64, dims []int, opt BatchOptions) ([]float64, error) {
	return kde.DensityBatchOpts(est, X, dims, opt)
}

// BatchWorkers resolves a workers argument the way every *Batch API in
// this module does: values ≤ 0 mean runtime.GOMAXPROCS(0).
func BatchWorkers(workers int) int { return parallel.Workers(workers) }

// NewClusterDensity builds the scalable density estimate over
// micro-cluster summaries.
func NewClusterDensity(s *Summarizer, opt DensityOptions) (*ClusterDensity, error) {
	return kde.NewCluster(s, opt)
}

// Micro-clusters.
type (
	// Summarizer condenses a stream into at most q error-based
	// micro-clusters (§2.1).
	Summarizer = microcluster.Summarizer
	// Feature is one micro-cluster's (CF2x, EF2x, CF1x, n) summary.
	Feature = microcluster.Feature
)

// NewSummarizer returns an empty summarizer for q clusters over d dims.
func NewSummarizer(q, d int) *Summarizer { return microcluster.NewSummarizer(q, d) }

// Summarize condenses a dataset into at most q micro-clusters, streaming
// rows in an order drawn from r (nil = dataset order).
var Summarize = microcluster.Build

// LoadSummarizer restores a summarizer written with (*Summarizer).Save.
var LoadSummarizer = microcluster.Load

// ErrAdjustedDist2 is the error-adjusted squared distance of Eq. (5).
var ErrAdjustedDist2 = microcluster.Dist2

// Classification.
type (
	// Transform is the density-based transform: per-class and global
	// micro-cluster summaries.
	Transform = core.Transform
	// TransformOptions configure transform construction.
	TransformOptions = core.TransformOptions
	// TransformBuilder builds a transform incrementally from a stream.
	TransformBuilder = core.Builder
	// Classifier is the density-based subspace classifier (Fig. 3).
	Classifier = core.Classifier
	// ClassifierOptions configure the classifier.
	ClassifierOptions = core.ClassifierOptions
	// Decision is a full classification trace for one test point.
	Decision = core.Decision
	// SubspaceScore is one retained subspace with its dominant class.
	SubspaceScore = core.SubspaceScore
	// Rule is one extracted classification rule (interval conjunction →
	// class).
	Rule = core.Rule
	// RuleOptions configure rule extraction.
	RuleOptions = core.RuleOptions
	// RuleSet is the interpretable classifier built from extracted rules.
	RuleSet = core.RuleSet
)

// NewRuleSet bundles extracted rules into a standalone classifier.
var NewRuleSet = core.NewRuleSet

// LoadTransform / LoadTransformFile restore a model saved with
// (*Transform).Save / SaveFile.
var (
	LoadTransform     = core.LoadTransform
	LoadTransformFile = core.LoadTransformFile
)

// NewTransform condenses labeled training data into its density-based
// transform.
var NewTransform = core.NewTransform

// NewTransformContext is NewTransform under a caller-supplied context:
// cancelling it aborts the build and returns ctx.Err().
var NewTransformContext = core.NewTransformContext

// NewTransformBuilder builds a transform incrementally (streams).
var NewTransformBuilder = core.NewBuilder

// NewClassifier builds the scalable classifier over a transform.
var NewClassifier = core.NewClassifier

// NewExactClassifier builds the uncompressed reference classifier.
var NewExactClassifier = core.NewExactClassifier

// Defaults shared by TrainConfig, TransformOptions and
// ClassifierOptions. These re-exported constants are the one documented
// home for the zero-value behavior of every training knob: a zero field
// means "use the constant below", and the same constant governs the
// same-named field wherever it appears.
const (
	// DefaultMicroClusters is the micro-cluster count q used when
	// TrainConfig.MicroClusters or TransformOptions.MicroClusters is 0,
	// matching the paper's headline configuration.
	DefaultMicroClusters = core.DefaultMicroClusters
	// DefaultThreshold is the Fig. 3 accuracy threshold a used when
	// TrainConfig.Threshold or ClassifierOptions.Threshold is 0.
	DefaultThreshold = core.DefaultThreshold
	// DefaultMaxSubspaceSize is the roll-up depth cap used when
	// TrainConfig.MaxSubspaceSize or ClassifierOptions.MaxSubspaceSize
	// is 0 (negative = unlimited).
	DefaultMaxSubspaceSize = core.DefaultMaxSubspaceSize
)

// TrainConfig bundles the options of the one-call training pipeline.
// Field names and zero-value defaults deliberately match
// TransformOptions and ClassifierOptions (see the Default* constants):
// a TrainConfig is the union of the two, split apart by Train.
type TrainConfig struct {
	// MicroClusters is q (0 = DefaultMicroClusters).
	MicroClusters int
	// ErrorAdjust enables error-adjusted assignment and kernels; set it
	// false to get the paper's "No Error Adjustment" comparator.
	// Defaults to true when the data carries errors.
	ErrorAdjust *bool
	// Threshold is the Fig. 3 accuracy threshold a (0 =
	// DefaultThreshold).
	Threshold float64
	// MaxSubspaceSize caps roll-up depth (0 = DefaultMaxSubspaceSize;
	// negative = unlimited).
	MaxSubspaceSize int
	// MaxSubspaces is the cap p on voting subspaces (0 = all).
	MaxSubspaces int
	// Seed drives transform seeding.
	Seed int64
	// Workers caps the goroutines used while building the transform
	// (≤ 0 = GOMAXPROCS, 1 = serial). The result is bit-for-bit
	// identical for every worker count.
	Workers int
}

// Train is the one-call pipeline: transform the training data and build
// the classifier. It is TrainContext under context.Background().
func Train(train *Dataset, cfg TrainConfig) (*Classifier, error) {
	return TrainContext(context.Background(), train, cfg)
}

// TrainContext is Train under a caller-supplied context: cancelling ctx
// aborts the transform build and returns ctx.Err().
func TrainContext(ctx context.Context, train *Dataset, cfg TrainConfig) (*Classifier, error) {
	adjust := train.HasErrors()
	if cfg.ErrorAdjust != nil {
		adjust = *cfg.ErrorAdjust
	}
	t, err := core.NewTransformContext(ctx, train, TransformOptions{
		MicroClusters: cfg.MicroClusters,
		ErrorAdjust:   adjust,
		Seed:          cfg.Seed,
		Workers:       cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	return NewClassifier(t, ClassifierOptions{
		Threshold:       cfg.Threshold,
		MaxSubspaceSize: cfg.MaxSubspaceSize,
		MaxSubspaces:    cfg.MaxSubspaces,
	})
}

// Baselines.
type (
	// NearestNeighbor is the error-oblivious 1-NN comparator.
	NearestNeighbor = baseline.NearestNeighbor
	// KNN is the error-oblivious k-NN classifier.
	KNN = baseline.KNN
)

// NewNearestNeighbor builds the 1-NN baseline.
var NewNearestNeighbor = baseline.NewNearestNeighbor

// NewKNN builds the k-NN baseline.
var NewKNN = baseline.NewKNN

// NewNaiveBayes builds the Gaussian naive-Bayes baseline.
var NewNaiveBayes = baseline.NewNaiveBayes

// NaiveBayes is the error-oblivious parametric baseline.
type NaiveBayes = baseline.NaiveBayes

// Clustering.
type (
	// DBSCANOptions configure uncertain DBSCAN.
	DBSCANOptions = cluster.Options
	// DBSCANResult is the clustering outcome.
	DBSCANResult = cluster.Result
	// KMeansOptions configure uncertain k-means.
	KMeansOptions = cluster.KMeansOptions
	// KMeansResult is the k-means outcome.
	KMeansResult = cluster.KMeansResult
)

// KMeans clusters with k-means++ seeding and (optionally) the Eq. 5
// error-adjusted assignment distance.
var KMeans = cluster.KMeans

// Noise is the DBSCAN label for unclustered points.
const Noise = cluster.Noise

// DBSCAN clusters a dataset with error-adjusted densities.
var DBSCAN = cluster.DBSCAN

// DBSCANClusters clusters micro-cluster pseudo-points (the scalable path).
var DBSCANClusters = cluster.DBSCANClusters

// Evaluation.
type (
	// EvalResult summarizes classifier performance on a test set.
	EvalResult = eval.Result
	// EvalClassifier is anything Evaluate can score: the density
	// classifiers and the baselines all satisfy it.
	EvalClassifier = eval.Classifier
)

// Evaluate classifies every labeled row of test and tallies accuracy,
// confusion matrix and timing.
var Evaluate = eval.Evaluate

// AUC returns the area under the ROC curve of a score (higher = more
// positive) against boolean labels.
var AUC = eval.AUC

// ROC returns the full ROC curve.
var ROC = eval.ROC

// ROCPoint is one ROC operating point.
type ROCPoint = eval.ROCPoint

// CVBandwidths selects per-dimension bandwidths by leave-one-out
// likelihood; plug the result into DensityOptions.Bandwidths. The grid
// search runs on GOMAXPROCS workers; CVBandwidthsWorkers picks the
// worker count explicitly. Both are deterministic for every worker
// count.
var (
	CVBandwidths        = kde.CVBandwidths
	CVBandwidthsWorkers = kde.CVBandwidthsWorkers
	// CVBandwidthsContext is the context-first form: cancelling the
	// context aborts the grid search.
	CVBandwidthsContext = kde.CVBandwidthsContext
)

// Outlier detection.
type (
	// OutlierOptions configure density-based outlier detection.
	OutlierOptions = outlier.Options
	// OutlierResult holds per-record anomaly scores and flags.
	OutlierResult = outlier.Result
)

// DetectOutliers flags the lowest-density records of a dataset using
// leave-one-out error-adjusted densities.
var DetectOutliers = outlier.Detect

// DetectStreamOutliers scores query points against a micro-cluster
// summary (online anomaly detection).
var DetectStreamOutliers = outlier.DetectStream

// ExplainOutlier ranks the dimensions of a record by how anomalous the
// record is in each alone.
var ExplainOutlier = outlier.Explain

// OutlierContribution is one dimension's share of a record's anomaly.
type OutlierContribution = outlier.Contribution

// Streams.
type (
	// StreamEngine ingests an unbounded stream into micro-clusters with
	// snapshot-based time-window analysis.
	StreamEngine = stream.Engine
	// StreamOptions configure a StreamEngine.
	StreamOptions = stream.Options
	// StreamSnapshot is one retained micro-cluster state.
	StreamSnapshot = stream.Snapshot
)

// NewStreamEngine returns a concurrent-safe stream summarizer.
var NewStreamEngine = stream.NewEngine

// SummarizerFromFeatures wraps window/snapshot features for density
// estimation or clustering.
var SummarizerFromFeatures = microcluster.FromFeatures

// Drift returns per-dimension total-variation drift scores between two
// stream windows and the most-drifted dimension.
var Drift = stream.Drift

// Drift1D returns one dimension's drift score between two windows.
var Drift1D = stream.Drift1D

// Synthetic data.
type (
	// DataSpec is a class-conditional Gaussian-mixture generator.
	DataSpec = datagen.Spec
)

// DataProfile returns one of the paper's data set stand-ins by name:
// "adult", "ionosphere", "breast-cancer", "forest-cover".
var DataProfile = datagen.ByName

// TwoBlobs returns a trivially separable two-class spec for quickstarts.
var TwoBlobs = datagen.TwoBlobs

// XOR generates the interaction-only two-class layout (no single
// dimension discriminates) plus optional noise dimensions.
var XOR = datagen.XOR

// LoadStreamEngine restores a stream engine checkpoint written with
// (*StreamEngine).Save.
var LoadStreamEngine = stream.LoadEngine

// Observability (see the package documentation and DESIGN.md §11).

// Span is a lightweight trace span. The zero of its pointer type is a
// valid no-op: every method on a nil *Span is safe.
type Span = obs.Span

// StartSpan opens a span named name (convention: "package.Operation")
// as a child of the span already on ctx, if any, and returns the
// derived context carrying it. End the span on every return path:
//
//	ctx, sp := udm.StartSpan(ctx, "app.Reindex")
//	defer sp.End()
//
// Library batch APIs called with the derived context report their own
// spans as children, so application traces show where the time went.
var StartSpan = obs.StartSpan

// WriteMetrics renders every metric of the process-wide registry —
// kernel evaluation counts, batch sizes, worker utilization, stream
// ingest rates, and anything the application registered — to w in
// Prometheus text exposition format 0.0.4.
func WriteMetrics(w io.Writer) error {
	return obs.Default().WritePrometheus(w)
}

// SetTelemetry enables or disables all telemetry — counters,
// histograms, and trace spans — at runtime. Disabled telemetry costs
// one atomic load per instrumentation site and records nothing; the
// UDM_OBS environment variable ("off", "0", or "false") sets the
// initial state. Telemetry never affects computed results.
var SetTelemetry = obs.SetEnabled

// TelemetryEnabled reports whether telemetry is currently recording.
var TelemetryEnabled = obs.Enabled
