package tools

import (
	"os"
	"regexp"
	"testing"
)

// TestMakefileAgreesWithPins fails when the Makefile's tool-version
// variables drift from the constants in this package, which are the
// source of truth.
func TestMakefileAgreesWithPins(t *testing.T) {
	data, err := os.ReadFile("../Makefile")
	if err != nil {
		t.Fatalf("reading Makefile: %v", err)
	}
	for name, want := range map[string]string{
		"STATICCHECK_VERSION": StaticcheckVersion,
		"GOVULNCHECK_VERSION": GovulncheckVersion,
	} {
		re := regexp.MustCompile(`(?m)^` + name + `\s*\?=\s*(\S+)\s*$`)
		m := re.FindSubmatch(data)
		if m == nil {
			t.Errorf("Makefile does not declare %s", name)
			continue
		}
		if got := string(m[1]); got != want {
			t.Errorf("Makefile pins %s=%s, tools.go pins %s", name, got, want)
		}
	}
}

// TestCIInstallsThroughMakefile keeps the CI lint job honest: it must
// install tools via `make tools` (which uses the pinned versions)
// rather than ad-hoc `go install` lines that could drift.
func TestCIInstallsThroughMakefile(t *testing.T) {
	data, err := os.ReadFile("../.github/workflows/ci.yml")
	if err != nil {
		t.Fatalf("reading ci.yml: %v", err)
	}
	for _, want := range []string{"make tools", "make lint"} {
		if !regexp.MustCompile(`(?m)run:\s*` + want + `\s*$`).Match(data) {
			t.Errorf("ci.yml lint job does not run %q", want)
		}
	}
}
