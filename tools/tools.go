// Package tools pins the versions of the external lint tools the
// project runs in CI, tools.go-style.
//
// The classic pattern blank-imports each tool under a build tag so
// go.mod records its version. This module deliberately has zero
// third-party dependencies (the library builds offline from a bare
// toolchain), so the pins live here as constants instead: the Makefile
// declares the same versions for `make tools`, the CI lint job
// installs through the Makefile, and tools_test.go fails the build if
// either ever drifts from this file. Bump a version here first, then
// mirror it in the Makefile.
package tools

const (
	// StaticcheckVersion pins honnef.co/go/tools/cmd/staticcheck.
	StaticcheckVersion = "2025.1"

	// GovulncheckVersion pins golang.org/x/vuln/cmd/govulncheck.
	GovulncheckVersion = "v1.1.4"
)
