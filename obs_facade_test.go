package udm_test

import (
	"context"
	"strings"
	"testing"

	"udm"
)

// TestFacadeObservability exercises the observability surface exposed
// through the facade: an application span wrapping a library batch
// call, the Prometheus metrics dump, and the telemetry kill switch —
// which must never change computed results.
func TestFacadeObservability(t *testing.T) {
	ds, err := udm.TwoBlobs(3).Generate(120, udm.NewRand(44))
	if err != nil {
		t.Fatal(err)
	}
	est, err := udm.NewPointDensity(ds, udm.DensityOptions{ErrorAdjust: true})
	if err != nil {
		t.Fatal(err)
	}

	ctx, sp := udm.StartSpan(context.Background(), "test.FacadeObservability")
	on, err := est.DensityBatchContext(ctx, ds.X, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	sp.End()
	sp.End() // End is idempotent and must stay safe to repeat

	var buf strings.Builder
	if err := udm.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{"udm_kde_batches_total", "udm_kde_kernel_evals_total", "udm_parallel_for_calls_total"} {
		if !strings.Contains(buf.String(), series) {
			t.Errorf("WriteMetrics output missing series %s", series)
		}
	}

	if !udm.TelemetryEnabled() {
		t.Fatal("telemetry should be enabled by default")
	}
	udm.SetTelemetry(false)
	defer udm.SetTelemetry(true)
	if udm.TelemetryEnabled() {
		t.Fatal("SetTelemetry(false) did not take")
	}
	off, err := est.DensityBatch(ds.X, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range on {
		if on[i] != off[i] {
			t.Fatalf("density %d differs with telemetry off: %g vs %g", i, on[i], off[i])
		}
	}
}
