package udm_test

import (
	"context"
	"errors"
	"testing"

	"udm"
)

// TestSentinelErrorContract checks the documented error taxonomy: every
// validation failure across the facade is classifiable with errors.Is
// against the four exported sentinels — no string matching needed.
func TestSentinelErrorContract(t *testing.T) {
	ds := udm.NewDataset("a", "b")
	if err := ds.Append([]float64{1}, nil, 0); !errors.Is(err, udm.ErrDimensionMismatch) {
		t.Errorf("short row: %v, want ErrDimensionMismatch", err)
	}
	if err := ds.Append([]float64{1, 2}, []float64{0.1}, 0); !errors.Is(err, udm.ErrDimensionMismatch) {
		t.Errorf("short error row: %v, want ErrDimensionMismatch", err)
	}

	// An estimator over an empty dataset is untrained.
	if _, err := udm.NewPointDensity(ds, udm.DensityOptions{}); !errors.Is(err, udm.ErrUntrained) {
		t.Errorf("empty dataset: %v, want ErrUntrained", err)
	}

	// Error-adjusted smoothing is Gaussian-only: a contradictory option
	// set is ErrBadOption.
	if err := ds.Append([]float64{1, 2}, []float64{0.1, 0.1}, 0); err != nil {
		t.Fatal(err)
	}
	if err := ds.Append([]float64{2, 3}, []float64{0.1, 0.1}, 1); err != nil {
		t.Fatal(err)
	}
	_, err := udm.NewPointDensity(ds, udm.DensityOptions{ErrorAdjust: true, Kernel: udm.Epanechnikov})
	if !errors.Is(err, udm.ErrBadOption) {
		t.Errorf("error-adjust + non-Gaussian kernel: %v, want ErrBadOption", err)
	}

	// Mixing error-free and error-bearing rows is ErrNoErrors.
	if err := ds.Append([]float64{3, 4}, nil, 0); !errors.Is(err, udm.ErrNoErrors) {
		t.Errorf("mixed error rows: %v, want ErrNoErrors", err)
	}

	// Training on a single class is ErrUntrained.
	single := udm.NewDataset("a", "b")
	for i := 0; i < 20; i++ {
		if err := single.Append([]float64{float64(i), 1}, nil, 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := udm.Train(single, udm.TrainConfig{}); !errors.Is(err, udm.ErrUntrained) {
		t.Errorf("one-class training: %v, want ErrUntrained", err)
	}
}

// trainedClassifier builds a small classifier for the context tests.
func trainedClassifier(t *testing.T) (*udm.Classifier, *udm.Dataset) {
	t.Helper()
	clean, err := udm.TwoBlobs(3).Generate(400, udm.NewRand(7))
	if err != nil {
		t.Fatal(err)
	}
	clf, err := udm.Train(clean, udm.TrainConfig{MicroClusters: 30, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	return clf, clean
}

// TestContextFirstAPIs checks the redesigned facade: every batch entry
// point accepts a context (directly or via BatchOptions.Ctx) and honors
// cancellation, and the old positional forms still work as wrappers.
func TestContextFirstAPIs(t *testing.T) {
	clf, ds := trainedClassifier(t)
	canceled, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := udm.TrainContext(canceled, ds, udm.TrainConfig{}); !errors.Is(err, context.Canceled) {
		t.Errorf("TrainContext(canceled): %v, want context.Canceled", err)
	}
	if _, err := clf.ClassifyBatchContext(canceled, ds.X, 0); !errors.Is(err, context.Canceled) {
		t.Errorf("ClassifyBatchContext(canceled): %v, want context.Canceled", err)
	}

	est, err := udm.NewPointDensity(ds, udm.DensityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := udm.DensityBatchOpts(est, ds.X, nil, udm.BatchOptions{Ctx: canceled}); !errors.Is(err, context.Canceled) {
		t.Errorf("DensityBatchOpts(canceled Ctx): %v, want context.Canceled", err)
	}
	if _, err := udm.CVBandwidthsContext(canceled, ds, false, nil, 0); !errors.Is(err, context.Canceled) {
		t.Errorf("CVBandwidthsContext(canceled): %v, want context.Canceled", err)
	}

	// The positional forms remain thin wrappers over Background and
	// agree with the context forms bit-for-bit.
	direct, err := udm.DensityBatch(est, ds.X[:10], nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	viaOpts, err := udm.DensityBatchOpts(est, ds.X[:10], nil, udm.BatchOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range direct {
		if direct[i] != viaOpts[i] {
			t.Fatalf("row %d: positional %v != BatchOptions %v", i, direct[i], viaOpts[i])
		}
	}
}
