// Command udmbench regenerates the paper's evaluation figures (Aggarwal,
// ICDE 2007, Figures 4–11) and the repo's ablations on synthetic
// stand-ins for the UCI data sets. Each figure prints as an aligned table
// (the series the paper plots) and optionally as an ASCII chart and a CSV
// file.
//
// Usage:
//
//	udmbench -fig all
//	udmbench -fig fig4 -rows 4800 -plot
//	udmbench -fig fig9 -csv out/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"udm/internal/eval"
	"udm/internal/experiments"
)

func main() {
	var (
		figID    = flag.String("fig", "all", "figure to regenerate (fig4..fig11, ablation-*, or 'all')")
		rows     = flag.Int("rows", 0, "rows generated per data set (0 = default 2400)")
		q        = flag.Int("q", 0, "micro-clusters for the fixed-q figures (0 = default 140)")
		seed     = flag.Int64("seed", 0, "random seed (0 = default 1)")
		plot     = flag.Bool("plot", false, "also render each figure as an ASCII chart")
		csv      = flag.String("csv", "", "directory to write one CSV per figure (created if missing)")
		md       = flag.Bool("md", false, "emit GitHub-flavored Markdown tables instead of aligned text")
		list     = flag.Bool("list", false, "list available figures and exit")
		parallel = flag.Int("parallel", 1, "figures to run concurrently (timing figures get noisy above 1)")
		workers  = flag.String("workers", "", "comma-separated worker counts for the ext-parallel sweep (default 1,2,4,8)")
	)
	flag.Parse()

	if *list {
		for _, f := range experiments.All() {
			fmt.Printf("%-20s %s\n", f.ID, f.Title)
		}
		return
	}

	cfg := experiments.Config{Seed: *seed, Rows: *rows, MicroClusters: *q}
	if *workers != "" {
		for _, part := range strings.Split(*workers, ",") {
			w, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || w < 1 {
				fatal(fmt.Errorf("invalid -workers entry %q", part))
			}
			cfg.WorkerSweep = append(cfg.WorkerSweep, w)
		}
	}

	var figs []experiments.Figure
	if *figID == "all" {
		figs = experiments.All()
	} else {
		for _, id := range strings.Split(*figID, ",") {
			f, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				fatal(err)
			}
			figs = append(figs, f)
		}
	}

	if *csv != "" {
		if err := os.MkdirAll(*csv, 0o755); err != nil {
			fatal(fmt.Errorf("creating CSV directory: %w", err))
		}
	}

	if *parallel < 1 {
		fatal(fmt.Errorf("-parallel %d", *parallel))
	}
	type run struct {
		tab     *eval.Table
		err     error
		elapsed time.Duration
	}
	runs := make([]run, len(figs))
	done := make([]chan struct{}, len(figs))
	sem := make(chan struct{}, *parallel)
	var wg sync.WaitGroup
	for i, f := range figs {
		done[i] = make(chan struct{})
		wg.Add(1)
		go func(i int, f experiments.Figure) {
			defer wg.Done()
			defer close(done[i])
			sem <- struct{}{}
			defer func() { <-sem }()
			start := time.Now()
			tab, err := f.Run(cfg)
			runs[i] = run{tab: tab, err: err, elapsed: time.Since(start)}
		}(i, f)
	}

	// Print each figure as soon as it (and everything before it) is done,
	// so sequential runs stream results incrementally.
	for i, f := range figs {
		<-done[i]
		if runs[i].err != nil {
			fatal(fmt.Errorf("%s: %w", f.ID, runs[i].err))
		}
		tab := runs[i].tab
		if *md {
			if err := tab.WriteMarkdown(os.Stdout); err != nil {
				fatal(err)
			}
		} else if err := tab.WriteText(os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Printf("(%s in %v)\n\n", f.ID, runs[i].elapsed.Round(time.Millisecond))
		if *plot {
			if err := tab.PlotASCII(os.Stdout, 64, 18); err != nil {
				fatal(err)
			}
			fmt.Println()
		}
		if *csv != "" {
			path := filepath.Join(*csv, f.ID+".csv")
			out, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if err := tab.WriteCSV(out); err != nil {
				out.Close()
				fatal(err)
			}
			if err := out.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n\n", path)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "udmbench:", err)
	os.Exit(1)
}
