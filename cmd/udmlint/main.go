// Command udmlint is the project's multichecker: it runs the custom
// go/analysis-style analyzers that enforce the library's determinism,
// context, and error contracts (see internal/analysis and DESIGN.md
// §10).
//
// Usage:
//
//	udmlint [-C dir] [-only ctxflow,nakedgo] [-list] [packages]
//
// With no packages it analyzes ./... relative to -C (default: the
// current directory). It exits 0 when the tree is clean, 1 when there
// are findings, and 2 on load or internal errors. Justified exceptions
// are suppressed in place with `//lint:allow <analyzer> <reason>`.
package main

import (
	"os"

	"udm/internal/analysis/driver"
)

func main() {
	os.Exit(driver.Run(os.Stdout, os.Stderr, os.Args[1:]))
}
