// Command udmclassify trains the density-based subspace classifier on a
// labeled CSV (with optional "name±" error columns) and either evaluates
// it on a labeled test CSV or predicts labels for an unlabeled one.
//
// Usage:
//
//	udmclassify -train train.csv -test test.csv
//	udmclassify -train train.csv -test new.csv -predict
//	udmclassify -train train.csv -test test.csv -no-adjust -q 80
package main

import (
	"flag"
	"fmt"
	"os"

	"udm/internal/baseline"
	"udm/internal/core"
	"udm/internal/dataset"
	"udm/internal/eval"
)

func main() {
	var (
		trainPath = flag.String("train", "", "labeled training CSV (required unless -load)")
		testPath  = flag.String("test", "", "test CSV (required)")
		savePath  = flag.String("save", "", "save the trained transform (model) to this file")
		loadPath  = flag.String("load", "", "load a previously saved transform instead of training")
		q         = flag.Int("q", 0, "micro-clusters (0 = default 140)")
		threshold = flag.Float64("a", 0, "accuracy threshold a (0 = default 0.6)")
		noAdjust  = flag.Bool("no-adjust", false, "ignore error columns (the paper's comparator)")
		predict   = flag.Bool("predict", false, "print one predicted label per test row instead of evaluating")
		seed      = flag.Int64("seed", 1, "random seed for transform construction")
		compareNN = flag.Bool("nn", false, "also evaluate the nearest-neighbor baseline")
		rules     = flag.Int("rules", 0, "print up to this many extracted rules per class and exit")
	)
	flag.Parse()
	if (*trainPath == "" && *loadPath == "") || *testPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	test, err := dataset.LoadCSV(*testPath)
	if err != nil {
		fatal(err)
	}

	var train *dataset.Dataset
	var tr *core.Transform
	if *loadPath != "" {
		tr, err = core.LoadTransformFile(*loadPath)
		if err != nil {
			fatal(err)
		}
	} else {
		train, err = dataset.LoadCSV(*trainPath)
		if err != nil {
			fatal(err)
		}
		tr, err = core.NewTransform(train, core.TransformOptions{
			MicroClusters: *q,
			ErrorAdjust:   !*noAdjust && train.HasErrors(),
			Seed:          *seed,
		})
		if err != nil {
			fatal(err)
		}
	}
	if *savePath != "" {
		if err := tr.SaveFile(*savePath); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "udmclassify: saved model to %s\n", *savePath)
	}
	clf, err := core.NewClassifier(tr, core.ClassifierOptions{Threshold: *threshold})
	if err != nil {
		fatal(err)
	}

	if *rules > 0 {
		extracted, err := clf.ExtractRules(tr, core.RuleOptions{MaxPerClass: *rules})
		if err != nil {
			fatal(err)
		}
		var dimNames, classNames []string
		if train != nil {
			dimNames, classNames = train.Names, train.ClassNames
		} else {
			dimNames, classNames = test.Names, test.ClassNames
		}
		for _, r := range extracted {
			fmt.Println(r.Format(dimNames, classNames))
		}
		return
	}

	if *predict {
		for i := 0; i < test.Len(); i++ {
			label, err := clf.Classify(test.X[i])
			if err != nil {
				fatal(fmt.Errorf("row %d: %w", i, err))
			}
			name := fmt.Sprint(label)
			if train != nil && label < len(train.ClassNames) {
				name = train.ClassNames[label]
			}
			fmt.Println(name)
		}
		return
	}

	res, err := eval.Evaluate(clf, test)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("density classifier: accuracy %.4f on %d rows (%.3f ms/example)\n",
		res.Accuracy(), res.N, res.PerExample().Seconds()*1e3)
	fmt.Println("confusion (rows = actual, cols = predicted):")
	for _, row := range res.Confusion {
		for _, n := range row {
			fmt.Printf("%6d", n)
		}
		fmt.Println()
	}
	for c := range res.Confusion {
		fmt.Printf("class %d: precision %.3f  recall %.3f  F1 %.3f\n",
			c, res.Precision(c), res.Recall(c), res.F1(c))
	}

	if *compareNN {
		if train == nil {
			fatal(fmt.Errorf("-nn requires -train (the baseline needs the raw records)"))
		}
		nn, err := baseline.NewNearestNeighbor(train)
		if err != nil {
			fatal(err)
		}
		nnRes, err := eval.Evaluate(nn, test)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("nearest neighbor:  accuracy %.4f\n", nnRes.Accuracy())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "udmclassify:", err)
	os.Exit(1)
}
