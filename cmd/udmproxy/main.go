// Command udmproxy is the front tier of a sharded udmserve deployment.
// It serves the same HTTP JSON API as udmserve — clients point at the
// proxy unchanged — but answers by fanning queries out to a fixed set
// of backend shards and merging their partial results. Partitioned
// stream models route ingest by a seeded consistent hash of the point
// and merge per-shard kernel terms in fixed shard order, so fan-out
// densities are bit-identical to a single node holding all the data.
// Replicated models split batches across replicas and fail rows over
// when one is down. When a shard's circuit breaker is open the proxy
// answers from the survivors, marks the response with
// `X-UDM-Degraded: partial`, and reports the surviving mass as a
// coverage fraction.
//
// Usage:
//
//	udmproxy -addr :8080 \
//	  -shard a=http://10.0.0.1:8081 -shard b=http://10.0.0.2:8081 \
//	  -model live=partitioned:2
//
// Each -shard flag is name=url; shard order on the command line is the
// deterministic merge order and must match across proxy replicas (as
// must -ring-seed and -vnodes). Each -model flag is
// name=mode:dims where mode is partitioned (stream models, hash-routed
// ingest) or replicated (identical artifacts on every shard). The name
// may be a qualified "tenant/name" reference (e.g. -model
// t1/live=partitioned:2): the proxy then serves it under
// /v1/t/{tenant}/... — mirroring udmserve's namespaces, including the
// X-UDM-Tenant header on legacy paths — and addresses the matching
// tenant namespace on every shard. Plain names stay in the default
// tenant and keep their pre-tenancy routing keys bit-for-bit.
//
// Endpoints: GET /healthz /readyz /metrics /v1/models and POST
// /v1/models/{name}/{classify,density,outliers,ingest}, each also
// under the /v1/t/{tenant}/ prefix. /metrics serves JSON by default
// and the Prometheus text exposition with ?format=prometheus
// (including the udm_proxy_* fan-out series).
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"udm/internal/distrib"
	"udm/internal/faultinject"
	"udm/internal/kde"
	"udm/internal/server"
)

// faultFlags collects repeated -fault flags (armed after flag parsing
// so an invalid site or spec fails startup, not a request).
type faultFlags []string

func (f *faultFlags) String() string { return strings.Join(*f, ",") }

func (f *faultFlags) Set(v string) error {
	if _, _, ok := strings.Cut(v, "="); !ok {
		return fmt.Errorf("want site=spec, got %q", v)
	}
	*f = append(*f, v)
	return nil
}

// shardFlags collects repeated -shard name=url flags in command-line
// order — which is the merge order.
type shardFlags []distrib.Shard

func (s *shardFlags) String() string {
	parts := make([]string, len(*s))
	for i, sh := range *s {
		parts[i] = sh.Name + "=" + sh.URL
	}
	return strings.Join(parts, ",")
}

func (s *shardFlags) Set(v string) error {
	name, url, ok := strings.Cut(v, "=")
	if !ok || name == "" || url == "" {
		return fmt.Errorf("want name=url, got %q", v)
	}
	for _, sh := range *s {
		if sh.Name == name {
			return fmt.Errorf("duplicate shard name %q", name)
		}
	}
	*s = append(*s, distrib.Shard{Name: name, URL: url})
	return nil
}

// modelFlags collects repeated -model name=mode:dims flags.
type modelFlags []distrib.ModelConfig

func (m *modelFlags) String() string {
	parts := make([]string, len(*m))
	for i, cfg := range *m {
		parts[i] = fmt.Sprintf("%s=%s:%d", cfg.Name, cfg.Mode, cfg.Dims)
	}
	return strings.Join(parts, ",")
}

func (m *modelFlags) Set(v string) error {
	name, rest, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want name=mode:dims, got %q", v)
	}
	mode, dimsStr, ok := strings.Cut(rest, ":")
	if !ok || name == "" {
		return fmt.Errorf("want name=mode:dims, got %q", v)
	}
	switch distrib.Mode(mode) {
	case distrib.ModePartitioned, distrib.ModeReplicated:
	default:
		return fmt.Errorf("unknown mode %q (want partitioned or replicated)", mode)
	}
	dims, err := strconv.Atoi(dimsStr)
	if err != nil || dims <= 0 {
		return fmt.Errorf("bad dims in %q (want a positive integer)", v)
	}
	*m = append(*m, distrib.ModelConfig{Name: name, Mode: distrib.Mode(mode), Dims: dims})
	return nil
}

func main() {
	var shards shardFlags
	flag.Var(&shards, "shard", "backend shard, name=url (repeatable; order fixes the merge order)")
	var models modelFlags
	flag.Var(&models, "model", "model to front, name=mode:dims or tenant/name=mode:dims (repeatable; modes: partitioned, replicated)")
	var faults faultFlags
	flag.Var(&faults, "fault", "arm a fault-injection site, site=spec (repeatable; e.g. distrib.shard.rpc=error,times=3; testing only)")
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		errorAdjust   = flag.Bool("error-adjust", true, "use the error-adjusted kernel for partitioned density and outliers")
		vnodes        = flag.Int("vnodes", 0, "virtual nodes per shard on the ingest ring (0 = default 64)")
		ringSeed      = flag.Uint64("ring-seed", 0, "ingest ring seed, identical across proxy replicas (0 = default 1)")
		shardTimeout  = flag.Duration("shard-timeout", 0, "per-shard RPC attempt timeout (0 = default 10s)")
		refreshMax    = flag.Int("refresh-max", 0, "max head refreshes after a stale-version answer (0 = default 3)")
		fanoutWorkers = flag.Int("fanout-workers", 0, "scatter concurrency (0 = one goroutine per shard)")
		maxBatch      = flag.Int("max-batch", 0, "max coalesced density requests per fan-out (0 = default 64)")
		batchDelay    = flag.Duration("batch-delay", 0, "micro-batching window (0 = default 2ms; -1ns disables)")
		timeout       = flag.Duration("timeout", 0, "per-request timeout (0 = default 30s)")
		maxInflight   = flag.Int("max-inflight", 0, "max concurrently admitted requests before 429 shedding (0 = default 256)")
		drainTimeout  = flag.Duration("drain-timeout", 30*time.Second, "max time to drain in-flight requests on shutdown")
		retryMax      = flag.Int("retry-max", 0, "max retries of a transiently-failed shard RPC (0 = default 2; negative disables)")
		retryBase     = flag.Duration("retry-base", 0, "base retry backoff (0 = default 5ms)")
		retryCap      = flag.Duration("retry-cap", 0, "max retry backoff (0 = default 250ms)")
		breakerAfter  = flag.Int("breaker-threshold", 0, "consecutive failures that open a shard's circuit breaker (0 = default 5; negative disables)")
		breakerCool   = flag.Duration("breaker-cooldown", 0, "how long an open breaker refuses a shard before probing (0 = default 5s)")
	)
	flag.Parse()
	for _, f := range faults {
		if err := faultinject.ArmFlag(f); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "udmproxy: armed fault %s\n", f)
	}
	if len(shards) == 0 {
		fmt.Fprintln(os.Stderr, "udmproxy: at least one -shard name=url is required")
		flag.Usage()
		os.Exit(2)
	}
	if len(models) == 0 {
		fmt.Fprintln(os.Stderr, "udmproxy: at least one -model name=mode:dims is required")
		flag.Usage()
		os.Exit(2)
	}
	for i := range models {
		models[i].KDE = kde.Options{ErrorAdjust: *errorAdjust}
	}

	p, err := distrib.NewProxy(shards, models, distrib.Options{
		Server: server.Options{
			MaxBatch:         *maxBatch,
			BatchDelay:       *batchDelay,
			RequestTimeout:   *timeout,
			MaxInflight:      *maxInflight,
			RetryMax:         *retryMax,
			RetryBase:        *retryBase,
			RetryCap:         *retryCap,
			BreakerThreshold: *breakerAfter,
			BreakerCooldown:  *breakerCool,
		},
		FanoutWorkers: *fanoutWorkers,
		VNodes:        *vnodes,
		RingSeed:      *ringSeed,
		ShardTimeout:  *shardTimeout,
		RefreshMax:    *refreshMax,
	})
	if err != nil {
		fatal(err)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	names := make([]string, len(shards))
	for i, sh := range shards {
		names[i] = sh.Name
	}
	fmt.Fprintf(os.Stderr, "udmproxy: listening on %s (shards: %s; models: %s)\n",
		l.Addr(), strings.Join(names, ", "), models.String())

	errc := make(chan error, 1)
	go func() { errc <- p.Serve(l) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "udmproxy: %s — draining (max %s)\n", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := p.Shutdown(ctx); err != nil {
			fatal(err)
		}
		if err := <-errc; err != nil && err != http.ErrServerClosed {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "udmproxy: clean shutdown")
	case err := <-errc:
		if err != nil && err != http.ErrServerClosed {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "udmproxy: %v\n", err)
	os.Exit(1)
}
