// Command udmgen emits synthetic uncertain data sets to CSV: one of the
// paper's UCI stand-in profiles (adult, ionosphere, breast-cancer,
// forest-cover) or the two-blob demo, optionally perturbed with the
// paper's error protocol so the file carries per-entry error columns.
//
// Usage:
//
//	udmgen -profile adult -n 5000 -f 1.2 -o adult.csv
//	udmgen -profile two-blobs -n 500 -o demo.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"udm/internal/datagen"
	"udm/internal/rng"
	"udm/internal/uncertain"
)

func main() {
	var (
		profile  = flag.String("profile", "adult", "data profile: adult, ionosphere, breast-cancer, forest-cover, two-blobs")
		specPath = flag.String("spec", "", "JSON spec file defining a custom profile (overrides -profile)")
		n        = flag.Int("n", 1000, "number of rows")
		f        = flag.Float64("f", 0, "error level (paper's f; 0 = clean, no error columns)")
		seed     = flag.Int64("seed", 1, "random seed")
		out      = flag.String("o", "", "output file (default stdout)")
		describe = flag.Bool("describe", false, "print a per-dimension summary instead of CSV")
	)
	flag.Parse()

	var spec *datagen.Spec
	switch {
	case *specPath != "":
		f, err := os.Open(*specPath)
		if err != nil {
			fatal(err)
		}
		spec, err = datagen.LoadSpec(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	case *profile == "two-blobs":
		spec = datagen.TwoBlobs(3)
	default:
		var err error
		spec, err = datagen.ByName(*profile)
		if err != nil {
			fatal(err)
		}
	}
	r := rng.New(*seed)
	ds, err := spec.Generate(*n, r.Split("generate"))
	if err != nil {
		fatal(err)
	}
	if *f > 0 {
		ds, err = uncertain.Perturb(ds, *f, r.Split("perturb"))
		if err != nil {
			fatal(err)
		}
	}
	if *describe {
		if err := ds.Describe(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	w := os.Stdout
	if *out != "" {
		file, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer file.Close()
		w = file
	}
	if err := ds.WriteCSV(w); err != nil {
		fatal(err)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wrote %d rows × %d dims to %s\n", ds.Len(), ds.Dims(), *out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "udmgen:", err)
	os.Exit(1)
}
