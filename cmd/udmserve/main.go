// Command udmserve serves saved density-transform artifacts over an
// HTTP JSON API: classification, density evaluation, outlier scoring
// and stream ingestion against a named model registry, with request
// micro-batching, a density LRU cache, load shedding and graceful
// shutdown (stream engines are checkpointed on SIGINT/SIGTERM).
//
// Usage:
//
//	udmserve -addr :8080 -model iris=transform:iris.gob
//	udmserve -model live=stream:engine.gob -model sum=summarizer:clusters.gob
//
// Each -model flag is name=kind:path where kind is transform (saved
// with udmclassify -save), summarizer (microcluster.Summarizer.Save)
// or stream (udmstream -checkpoint). Stream models are checkpointed
// back to their source path on shutdown unless -no-checkpoint is set.
//
// Endpoints: GET /healthz /readyz /metrics /v1/models and POST
// /v1/models/{name}/{classify,density,outliers,ingest}. /metrics
// serves the legacy JSON document by default and the Prometheus text
// exposition with ?format=prometheus. With -debug, GET /debug/pprof/*,
// /debug/traces and /debug/slow are also served. See the "Serving" and
// "Observability" sections of README.md for request shapes.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"udm/internal/core"
	"udm/internal/distrib"
	"udm/internal/evalopt"
	"udm/internal/faultinject"
	"udm/internal/kde"
	"udm/internal/microcluster"
	"udm/internal/obs"
	"udm/internal/server"
	"udm/internal/stream"
)

// faultFlags collects repeated -fault flags (site=spec, armed after
// flag parsing so an invalid site or spec fails startup, not a
// request).
type faultFlags []string

func (f *faultFlags) String() string { return strings.Join(*f, ",") }

func (f *faultFlags) Set(v string) error {
	if _, _, ok := strings.Cut(v, "="); !ok {
		return fmt.Errorf("want site=spec, got %q", v)
	}
	*f = append(*f, v)
	return nil
}

// joinFlags collects repeated -join name=url flags: stream models to
// replicate from a running shard at startup (checkpoint pull + tail
// replay via internal/distrib) instead of loading from disk.
type joinFlags []struct{ name, url string }

func (j *joinFlags) String() string {
	parts := make([]string, len(*j))
	for i, s := range *j {
		parts[i] = s.name + "=" + s.url
	}
	return strings.Join(parts, ",")
}

func (j *joinFlags) Set(v string) error {
	name, url, ok := strings.Cut(v, "=")
	if !ok || name == "" || url == "" {
		return fmt.Errorf("want name=url, got %q", v)
	}
	*j = append(*j, struct{ name, url string }{name, url})
	return nil
}

// modelSpec is one parsed -model flag. name may be qualified as
// "tenant/name"; plain names land in the default tenant.
type modelSpec struct {
	tenant, name, kind, path string
}

// modelFlags collects repeated -model flags.
type modelFlags []modelSpec

func (m *modelFlags) String() string {
	parts := make([]string, len(*m))
	for i, s := range *m {
		parts[i] = fmt.Sprintf("%s=%s:%s", qualify(s.tenant, s.name), s.kind, s.path)
	}
	return strings.Join(parts, ",")
}

func (m *modelFlags) Set(v string) error {
	name, rest, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want name=kind:path, got %q", v)
	}
	kind, path, ok := strings.Cut(rest, ":")
	if !ok {
		return fmt.Errorf("want name=kind:path, got %q", v)
	}
	if name == "" || path == "" {
		return fmt.Errorf("empty name or path in %q", v)
	}
	switch kind {
	case "transform", "summarizer", "stream":
	default:
		return fmt.Errorf("unknown kind %q (want transform, summarizer or stream)", kind)
	}
	tenant, bare := splitTenant(name)
	*m = append(*m, modelSpec{tenant: tenant, name: bare, kind: kind, path: path})
	return nil
}

// splitTenant resolves an optionally-qualified "tenant/name" model
// reference; plain names belong to the default tenant.
func splitTenant(ref string) (tenant, name string) {
	if t, n, ok := strings.Cut(ref, "/"); ok {
		return t, n
	}
	return server.DefaultTenant, ref
}

// qualify renders a (tenant, name) pair back into its flag form.
func qualify(tenant, name string) string {
	if tenant == server.DefaultTenant {
		return name
	}
	return tenant + "/" + name
}

func main() {
	var models modelFlags
	flag.Var(&models, "model", "model to serve, name=kind:path (repeatable; kinds: transform, summarizer, stream)")
	var joins joinFlags
	flag.Var(&joins, "join", "replicate a stream model from a running shard, name=url (repeatable; not checkpointed on shutdown)")
	var faults faultFlags
	flag.Var(&faults, "fault", "arm a fault-injection site, site=spec (repeatable; e.g. server.model.eval=error,times=3; testing only)")
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		threshold    = flag.Float64("a", 0, "classifier accuracy threshold for transform models (0 = default)")
		errorAdjust  = flag.Bool("error-adjust", true, "use the error-adjusted kernel for density and outliers")
		prune        = flag.Float64("prune", 0, "far-field truncation tolerance for batched densities (relative error bound; 0 = no pruning)")
		evalStr      = flag.String("eval", "", "unified evaluation defaults for every model, e.g. prune=0.01,epsilon=0.05,seed=7 (evalopt grammar; requests still pick backend/accuracy per call)")
		maxBatch     = flag.Int("max-batch", 0, "max coalesced requests per batched call (0 = default 64)")
		batchDelay   = flag.Duration("batch-delay", 0, "micro-batching window (0 = default 2ms; -1ns disables)")
		timeout      = flag.Duration("timeout", 0, "per-request timeout (0 = default 30s)")
		maxInflight  = flag.Int("max-inflight", 0, "max concurrently admitted requests before 429 shedding (0 = default 256)")
		cacheSize    = flag.Int("cache-size", 0, "density cache entries (0 = default 4096; negative disables)")
		cacheQuantum = flag.Float64("cache-quantum", 0, "density cache coordinate quantum (0 = exact keys)")
		workers      = flag.Int("workers", 0, "worker pool size for batched evaluation (0 = all cores)")
		noCheckpoint = flag.Bool("no-checkpoint", false, "do not checkpoint stream models on shutdown")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "max time to drain in-flight requests on shutdown")
		debug        = flag.Bool("debug", false, "expose /debug/pprof, /debug/traces and /debug/slow plus runtime gauges (unauthenticated)")
		slowRequest  = flag.Duration("slow", 0, "log requests slower than this and keep them in /debug/slow (0 = default 1s; -1ns disables)")
		sample       = flag.Duration("sample", 0, "runtime sampler interval for the sampled gauges (0 = default 10s; needs -debug)")
		retryMax     = flag.Int("retry-max", 0, "max retries of a transiently-failed model evaluation (0 = default 2; negative disables)")
		retryBase    = flag.Duration("retry-base", 0, "base retry backoff (0 = default 5ms)")
		retryCap     = flag.Duration("retry-cap", 0, "max retry backoff (0 = default 250ms)")
		breakerAfter = flag.Int("breaker-threshold", 0, "consecutive failures that open a model's circuit breaker (0 = default 5; negative disables)")
		breakerCool  = flag.Duration("breaker-cooldown", 0, "how long an open breaker refuses traffic before probing (0 = default 5s)")
		tenantInfl   = flag.Int("tenant-inflight", 0, "per-tenant fair-share cap on admitted requests (0 = same as -max-inflight; negative = unlimited)")
		tenantModels = flag.Int("tenant-models", 0, "per-tenant cap on registered models, active or staged (0 = unlimited)")
		tenantPoints = flag.Int64("tenant-points", 0, "per-tenant cap on resident summarized points (0 = unlimited)")
	)
	flag.Parse()
	for _, f := range faults {
		if err := faultinject.ArmFlag(f); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "udmserve: armed fault %s\n", f)
	}
	if len(models) == 0 && len(joins) == 0 {
		fmt.Fprintln(os.Stderr, "udmserve: at least one -model name=kind:path (or -join name=url) is required")
		flag.Usage()
		os.Exit(2)
	}

	ev, err := evalopt.Parse(*evalStr)
	if err != nil {
		fatal(err)
	}
	// The stand-alone -prune flag fills in when the -eval string left it
	// unset, so existing invocations keep their meaning. The Epsilon /
	// Delta / cells / q / seed defaults parsed here configure the
	// approximate backends that requests select per call.
	if ev.Prune == 0 {
		ev.Prune = *prune
	}
	kdeOpt := kde.Options{ErrorAdjust: *errorAdjust, Eval: ev}
	reg := server.NewRegistry()
	for _, spec := range models {
		m, err := loadModel(spec, *threshold, kdeOpt, *noCheckpoint)
		if err != nil {
			fatal(err)
		}
		if err := reg.AddTenant(spec.tenant, m); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "udmserve: loaded %s model %q (%d dims) from %s\n",
			spec.kind, qualify(spec.tenant, spec.name), m.Dims(), spec.path)
	}
	for _, j := range joins {
		c := distrib.NewShardClient(0, distrib.Shard{Name: j.name, URL: j.url},
			distrib.Options{}, obs.NewRegistry())
		// The catch-up RPCs accept a qualified "tenant/name" reference and
		// route through the matching namespace on the source shard.
		eng, err := distrib.CatchUp(context.Background(), c, j.name, 0)
		if err != nil {
			fatal(err)
		}
		tenant, bare := splitTenant(j.name)
		m, err := server.NewStreamModel(bare, eng, kdeOpt, "")
		if err != nil {
			fatal(err)
		}
		if err := reg.AddTenant(tenant, m); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "udmserve: joined stream model %q from %s (%d records)\n",
			j.name, j.url, eng.Count())
	}

	srv := server.New(reg, server.Options{
		MaxBatch:         *maxBatch,
		BatchDelay:       *batchDelay,
		RequestTimeout:   *timeout,
		MaxInflight:      *maxInflight,
		CacheSize:        *cacheSize,
		CacheQuantum:     *cacheQuantum,
		Workers:          *workers,
		Debug:            *debug,
		SlowRequest:      *slowRequest,
		RetryMax:         *retryMax,
		RetryBase:        *retryBase,
		RetryCap:         *retryCap,
		BreakerThreshold: *breakerAfter,
		BreakerCooldown:  *breakerCool,

		TenantMaxInflight: *tenantInfl,
		TenantMaxModels:   *tenantModels,
		TenantMaxPoints:   *tenantPoints,

		// Staged uploads (PUT .../models/{name}) evaluate under the same
		// estimator policy as disk-loaded models.
		ModelKDE:       kdeOpt,
		ModelThreshold: *threshold,
	})
	if *debug {
		stopSampler := obs.StartSampler(srv.Metrics().Registry(), *sample)
		defer stopSampler()
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	var served []string
	for _, t := range reg.Tenants() {
		for _, n := range reg.TenantNames(t) {
			served = append(served, qualify(t, n))
		}
	}
	fmt.Fprintf(os.Stderr, "udmserve: listening on %s (models: %s)\n",
		l.Addr(), strings.Join(served, ", "))

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "udmserve: %s — draining (max %s) and checkpointing\n", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fatal(err)
		}
		if err := <-errc; err != nil && err != http.ErrServerClosed {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "udmserve: clean shutdown")
	case err := <-errc:
		if err != nil && err != http.ErrServerClosed {
			fatal(err)
		}
	}
}

// loadModel reads one artifact from disk and wraps it for serving.
func loadModel(spec modelSpec, threshold float64, kdeOpt kde.Options, noCheckpoint bool) (*server.Model, error) {
	switch spec.kind {
	case "transform":
		t, err := core.LoadTransformFile(spec.path)
		if err != nil {
			return nil, err
		}
		return server.NewTransformModel(spec.name, t, core.ClassifierOptions{
			Threshold: threshold,
			KDE:       kdeOpt,
		})
	case "summarizer":
		f, err := os.Open(spec.path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		s, err := microcluster.Load(f)
		if err != nil {
			return nil, fmt.Errorf("udmserve: %s: %w", spec.path, err)
		}
		return server.NewSummarizerModel(spec.name, s, kdeOpt)
	case "stream":
		f, err := os.Open(spec.path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		eng, err := stream.LoadEngine(f)
		if err != nil {
			return nil, fmt.Errorf("udmserve: %s: %w", spec.path, err)
		}
		checkpoint := spec.path
		if noCheckpoint {
			checkpoint = ""
		}
		return server.NewStreamModel(spec.name, eng, kdeOpt, checkpoint)
	}
	return nil, fmt.Errorf("udmserve: unknown kind %q", spec.kind)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "udmserve: %v\n", err)
	os.Exit(1)
}
