// Command udmstream replays a CSV data set as a timestamped stream
// through the micro-cluster engine, then reports per-window statistics
// and (optionally) scores a second CSV of query points for anomalies
// against the stream summary.
//
// Usage:
//
//	udmstream -in readings.csv -q 200 -windows 4
//	udmstream -in readings.csv -score suspects.csv -contamination 0.02
//	udmstream -in readings.csv -stats   # dump telemetry on exit
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"udm/internal/dataset"
	"udm/internal/kde"
	"udm/internal/microcluster"
	"udm/internal/obs"
	"udm/internal/outlier"
	"udm/internal/stream"
)

func main() {
	var (
		in            = flag.String("in", "", "input CSV replayed as a stream (required)")
		q             = flag.Int("q", 200, "micro-clusters")
		windows       = flag.Int("windows", 4, "number of equal time windows to report")
		scorePath     = flag.String("score", "", "optional CSV of query points to score for anomalies")
		contamination = flag.Float64("contamination", 0, "flagged fraction for -score (0 = default 0.05)")
		showDrift     = flag.Bool("drift", false, "report per-dimension drift between consecutive windows")
		checkpoint    = flag.String("checkpoint", "", "write an engine checkpoint (resumable with stream.LoadEngine) to this file")
		stats         = flag.Bool("stats", false, "dump process telemetry (Prometheus text format) to stderr on exit")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *stats {
		// Ingest counters, snapshot counts, drift evaluations and
		// checkpoint timings accumulate on the default registry as the
		// replay runs; dump them on the way out.
		defer func() {
			fmt.Fprintln(os.Stderr, "\nudmstream: telemetry")
			if err := obs.Default().WritePrometheus(os.Stderr); err != nil {
				fmt.Fprintln(os.Stderr, "udmstream:", err)
			}
		}()
	}
	ds, err := dataset.LoadCSV(*in)
	if err != nil {
		fatal(err)
	}
	if *windows < 1 || ds.Len() < *windows {
		fatal(fmt.Errorf("cannot split %d rows into %d windows", ds.Len(), *windows))
	}

	// Snapshot cadence: fine enough that every reported window boundary
	// has a snapshot at or before it.
	cadence := ds.Len() / (*windows * 4)
	if cadence < 1 {
		cadence = 1
	}
	eng, err := stream.NewEngine(stream.Options{
		MicroClusters: *q,
		Dims:          ds.Dims(),
		SnapshotEvery: cadence,
		MaxSnapshots:  8 * *windows,
	})
	if err != nil {
		fatal(err)
	}
	for i := 0; i < ds.Len(); i++ {
		eng.Add(ds.X[i], ds.ErrRow(i), int64(i))
	}
	fmt.Printf("streamed %d records into %d micro-clusters\n\n", eng.Count(), *q)

	if *checkpoint != "" {
		f, err := os.Create(*checkpoint)
		if err != nil {
			fatal(err)
		}
		if err := eng.Save(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "udmstream: checkpoint written to %s\n", *checkpoint)
	}

	fmt.Printf("%-16s %8s", "window", "records")
	for _, name := range ds.Names {
		fmt.Printf(" %14s", "mean("+truncate(name, 8)+")")
	}
	fmt.Println()
	per := ds.Len() / *windows
	for w := 0; w < *windows; w++ {
		from := int64(w*per) - 1
		to := int64((w+1)*per - 1)
		if w == 0 {
			from = -1
		}
		if w == *windows-1 {
			to = int64(ds.Len() - 1)
		}
		feats, err := eng.Window(from, to)
		if err != nil {
			fatal(fmt.Errorf("window %d: %w", w, err))
		}
		total := microcluster.NewFeature(ds.Dims())
		for _, f := range feats {
			total.Merge(f)
		}
		fmt.Printf("(%6d,%6d] %8d", from, to, total.N)
		for j := 0; j < ds.Dims(); j++ {
			mean := math.NaN()
			if total.N > 0 {
				mean = total.CF1[j] / float64(total.N)
			}
			fmt.Printf(" %14.4g", mean)
		}
		fmt.Println()
	}

	if *showDrift && *windows >= 2 {
		fmt.Println("\ndrift between consecutive windows (total variation, 0..1):")
		fmt.Printf("%-22s", "windows")
		for _, name := range ds.Names {
			fmt.Printf(" %10s", truncate(name, 10))
		}
		fmt.Printf(" %10s\n", "worst dim")
		var prev []*microcluster.Feature
		for w := 0; w < *windows; w++ {
			from := int64(w*per) - 1
			to := int64((w+1)*per - 1)
			if w == 0 {
				from = -1
			}
			if w == *windows-1 {
				to = int64(ds.Len() - 1)
			}
			feats, err := eng.Window(from, to)
			if err != nil {
				fatal(err)
			}
			if prev != nil {
				scores, worst, err := stream.Drift(prev, feats, 0)
				if err != nil {
					fatal(err)
				}
				fmt.Printf("window %2d -> %-2d       ", w-1, w)
				for _, s := range scores {
					fmt.Printf(" %10.4f", s)
				}
				fmt.Printf(" %10s\n", ds.Names[worst])
			}
			prev = feats
		}
	}

	if *scorePath != "" {
		queries, err := dataset.LoadCSV(*scorePath)
		if err != nil {
			fatal(err)
		}
		if queries.Dims() != ds.Dims() {
			fatal(fmt.Errorf("query dims %d != stream dims %d", queries.Dims(), ds.Dims()))
		}
		s, err := eng.Summarizer()
		if err != nil {
			fatal(err)
		}
		res, err := outlier.DetectStream(s, queries.X, queries.Err, outlier.Options{
			Contamination: *contamination,
			UseQueryError: queries.HasErrors(),
			KDE:           kde.Options{ErrorAdjust: ds.HasErrors()},
		})
		if err != nil {
			fatal(err)
		}
		fmt.Println("\nanomaly scores (−log density; higher = more anomalous):")
		for i := range res.Scores {
			mark := ""
			if res.Outlier[i] {
				mark = "  <-- OUTLIER"
			}
			fmt.Printf("  row %4d: %10.4g%s\n", i, res.Scores[i], mark)
		}
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "udmstream:", err)
	os.Exit(1)
}
