// Command udmcluster runs the unsupervised miners on a CSV data set
// (with optional "name±" error columns): uncertain DBSCAN, uncertain
// k-means, or density-based outlier detection.
//
// Usage:
//
//	udmcluster -in data.csv -algo dbscan -eps 1.5
//	udmcluster -in data.csv -algo kmeans -k 3
//	udmcluster -in data.csv -algo outlier -contamination 0.02
//
// Output: one line per row with the cluster label (or OUTLIER flag and
// score), plus a summary on stderr.
package main

import (
	"flag"
	"fmt"
	"os"

	"udm/internal/cluster"
	"udm/internal/dataset"
	"udm/internal/kde"
	"udm/internal/outlier"
)

func main() {
	var (
		in            = flag.String("in", "", "input CSV (required)")
		algo          = flag.String("algo", "dbscan", "algorithm: dbscan, kmeans, outlier")
		eps           = flag.Float64("eps", 1.0, "dbscan: connectivity radius")
		quantile      = flag.Float64("quantile", 0, "dbscan: core-density quantile (0 = default 0.25)")
		k             = flag.Int("k", 2, "kmeans: number of clusters")
		contamination = flag.Float64("contamination", 0, "outlier: flagged fraction (0 = default 0.05)")
		noAdjust      = flag.Bool("no-adjust", false, "ignore error columns")
		seed          = flag.Int64("seed", 1, "random seed (kmeans seeding)")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	ds, err := dataset.LoadCSV(*in)
	if err != nil {
		fatal(err)
	}
	adjust := !*noAdjust && ds.HasErrors()

	switch *algo {
	case "dbscan":
		res, err := cluster.DBSCAN(ds, cluster.Options{
			Eps:             *eps,
			DensityQuantile: *quantile,
			KDE:             kde.Options{ErrorAdjust: adjust},
		})
		if err != nil {
			fatal(err)
		}
		for _, l := range res.Labels {
			fmt.Println(l)
		}
		noise := 0
		for _, l := range res.Labels {
			if l == cluster.Noise {
				noise++
			}
		}
		fmt.Fprintf(os.Stderr, "udmcluster: %d clusters, %d noise rows (threshold %.4g)\n",
			res.NumClusters, noise, res.Threshold)
	case "kmeans":
		res, err := cluster.KMeans(ds, cluster.KMeansOptions{
			K: *k, ErrorAdjust: adjust, Seed: *seed,
		})
		if err != nil {
			fatal(err)
		}
		for _, l := range res.Labels {
			fmt.Println(l)
		}
		fmt.Fprintf(os.Stderr, "udmcluster: k=%d converged in %d iterations (inertia %.4g)\n",
			*k, res.Iterations, res.Inertia)
	case "outlier":
		res, err := outlier.Detect(ds, outlier.Options{
			Contamination: *contamination,
			KDE:           kde.Options{ErrorAdjust: adjust},
		})
		if err != nil {
			fatal(err)
		}
		flagged := 0
		for i := range res.Scores {
			mark := ""
			if res.Outlier[i] {
				mark = " OUTLIER"
				flagged++
			}
			fmt.Printf("%.6g%s\n", res.Scores[i], mark)
		}
		fmt.Fprintf(os.Stderr, "udmcluster: flagged %d of %d rows (score threshold %.4g)\n",
			flagged, ds.Len(), res.Threshold)
	default:
		fatal(fmt.Errorf("unknown algorithm %q (valid: dbscan, kmeans, outlier)", *algo))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "udmcluster:", err)
	os.Exit(1)
}
