// Command udmkde evaluates error-adjusted kernel densities from a CSV
// data set: a 1-D grid (values or ASCII plot) or a 2-D ASCII heat map,
// from exact point kernels or from a micro-cluster compression, with
// Silverman or likelihood-CV bandwidths.
//
// Usage:
//
//	udmkde -in data.csv -dim age
//	udmkde -in data.csv -dim age -plot
//	udmkde -in data.csv -dim x -dim2 y -grid 30
//	udmkde -in data.csv -dim v -q 200 -cv
package main

import (
	"flag"
	"fmt"
	"os"

	"udm/internal/dataset"
	"udm/internal/eval"
	"udm/internal/kde"
	"udm/internal/kernel"
	"udm/internal/microcluster"
	"udm/internal/rng"
)

func main() {
	var (
		in      = flag.String("in", "", "input CSV (required)")
		dimName = flag.String("dim", "", "dimension to evaluate (required)")
		dim2    = flag.String("dim2", "", "second dimension: renders a 2-D ASCII heat map")
		grid    = flag.Int("grid", 60, "grid points per axis")
		q       = flag.Int("q", 0, "compress into q micro-clusters first (0 = exact point kernels)")
		cv      = flag.Bool("cv", false, "select bandwidths by leave-one-out likelihood instead of Silverman")
		noAdj   = flag.Bool("no-adjust", false, "ignore error columns")
		plot    = flag.Bool("plot", false, "render the 1-D curve as an ASCII chart instead of values")
		seed    = flag.Int64("seed", 1, "random seed (micro-cluster ordering)")
		prune   = flag.Float64("prune", 0, "far-field truncation tolerance (relative error bound; 0 = exact)")
		approx  = flag.Float64("approx", 0, "bounded-error fast-exp budget epsilon (0 = exact; Gaussian kernel only)")
	)
	flag.Parse()
	if *in == "" || *dimName == "" {
		flag.Usage()
		os.Exit(2)
	}
	ds, err := dataset.LoadCSV(*in)
	if err != nil {
		fatal(err)
	}
	j, err := ds.ColumnIndex(*dimName)
	if err != nil {
		fatal(err)
	}
	adjust := !*noAdj && ds.HasErrors()

	opt := kde.Options{ErrorAdjust: adjust, Prune: *prune}
	if *approx > 0 {
		opt.Accuracy = kernel.Approx(*approx)
	}
	if *cv {
		h, err := kde.CVBandwidths(ds, adjust, nil)
		if err != nil {
			fatal(err)
		}
		opt.Bandwidths = h
		fmt.Fprintf(os.Stderr, "udmkde: CV bandwidths %v\n", h)
	}

	var est kde.Estimator
	if *q > 0 {
		s := microcluster.Build(ds, *q, rng.New(*seed))
		est, err = kde.NewCluster(s, opt)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "udmkde: %d rows compressed into %d micro-clusters\n", ds.Len(), s.Len())
	} else {
		est, err = kde.NewPoint(ds, opt)
		if err != nil {
			fatal(err)
		}
	}

	lo, hi := ds.MinMax()
	span := func(j int) (float64, float64) {
		pad := 0.15 * (hi[j] - lo[j])
		if pad == 0 {
			pad = 1
		}
		return lo[j] - pad, hi[j] + pad
	}

	if *dim2 != "" {
		j2, err := ds.ColumnIndex(*dim2)
		if err != nil {
			fatal(err)
		}
		loX, hiX := span(j)
		loY, hiY := span(j2)
		cells := *grid
		if cells > 120 {
			cells = 120
		}
		g := kde.Grid2D(est, j, j2, loX, hiX, loY, hiY, cells, cells/2)
		var peak float64
		for _, row := range g {
			for _, v := range row {
				if v > peak {
					peak = v
				}
			}
		}
		shades := []byte(" .:-=+*#@")
		fmt.Printf("joint density of %s (x) and %s (y); darker = denser\n", *dimName, *dim2)
		for iy := len(g) - 1; iy >= 0; iy-- {
			line := make([]byte, len(g[iy]))
			for ix, v := range g[iy] {
				line[ix] = shades[int(v/peak*float64(len(shades)-1))]
			}
			fmt.Printf("  %s\n", line)
		}
		return
	}

	loX, hiX := span(j)
	xs, ys := kde.Grid1D(est, j, loX, hiX, *grid)
	if *plot {
		tab, err := eval.NewTable(
			fmt.Sprintf("density of %s", *dimName), *dimName,
			eval.Series{Name: "f(x)", X: xs, Y: ys})
		if err != nil {
			fatal(err)
		}
		if err := tab.PlotASCII(os.Stdout, 72, 20); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("# x f(x)   [mass over grid: %.4f]\n",
		kde.Mass1D(est, j, loX, hiX, *grid))
	for i := range xs {
		fmt.Printf("%g %g\n", xs[i], ys[i])
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "udmkde:", err)
	os.Exit(1)
}
