// Command udmkde evaluates error-adjusted kernel densities from a CSV
// data set: a 1-D grid (values or ASCII plot) or a 2-D ASCII heat map,
// from exact point kernels, a micro-cluster compression, or one of the
// approximate density backends (hbe, grid, micro), with Silverman or
// likelihood-CV bandwidths.
//
// Usage:
//
//	udmkde -in data.csv -dim age
//	udmkde -in data.csv -dim age -plot
//	udmkde -in data.csv -dim x -dim2 y -grid 30
//	udmkde -in data.csv -dim v -q 200 -cv
//	udmkde -in data.csv -dim v -backend hbe
//	udmkde -in data.csv -dim v -eval backend=grid,epsilon=0.05,cells=256
package main

import (
	"flag"
	"fmt"
	"os"

	"udm/internal/dataset"
	"udm/internal/density"
	"udm/internal/eval"
	"udm/internal/evalopt"
	"udm/internal/kde"
	"udm/internal/kernel"
	"udm/internal/microcluster"
	"udm/internal/rng"
)

func main() {
	var (
		in      = flag.String("in", "", "input CSV (required)")
		dimName = flag.String("dim", "", "dimension to evaluate (required)")
		dim2    = flag.String("dim2", "", "second dimension: renders a 2-D ASCII heat map")
		grid    = flag.Int("grid", 60, "grid points per axis")
		q       = flag.Int("q", 0, "compress into q micro-clusters first (0 = exact point kernels)")
		cv      = flag.Bool("cv", false, "select bandwidths by leave-one-out likelihood instead of Silverman")
		noAdj   = flag.Bool("no-adjust", false, "ignore error columns")
		plot    = flag.Bool("plot", false, "render the 1-D curve as an ASCII chart instead of values")
		seed    = flag.Int64("seed", 1, "random seed (micro-cluster ordering, randomized backends)")
		prune   = flag.Float64("prune", 0, "far-field truncation tolerance (relative error bound; 0 = exact)")
		approx  = flag.Float64("approx", 0, "bounded-error fast-exp budget epsilon (0 = exact; Gaussian kernel only)")
		backend = flag.String("backend", "", "density backend: exact (default), hbe, grid or micro")
		evalStr = flag.String("eval", "", "unified evaluation options, e.g. backend=hbe,epsilon=0.05 (see evalopt grammar; individual flags fill unset keys)")
	)
	flag.Parse()
	if *in == "" || *dimName == "" {
		flag.Usage()
		os.Exit(2)
	}
	ev, err := evalopt.Parse(*evalStr)
	if err != nil {
		fatal(err)
	}
	if *backend != "" {
		bk, err := evalopt.ParseBackend(*backend)
		if err != nil {
			fatal(err)
		}
		ev.Backend = bk
	}
	// The legacy stand-alone flags fill in whatever the -eval string left
	// unset, so existing invocations keep their exact meaning.
	if ev.Prune == 0 {
		ev.Prune = *prune
	}
	if ev.Accuracy.IsExact() && *approx > 0 {
		ev.Accuracy = kernel.Approx(*approx)
	}
	if ev.Seed == 0 {
		ev.Seed = *seed
	}

	ds, err := dataset.LoadCSV(*in)
	if err != nil {
		fatal(err)
	}
	j, err := ds.ColumnIndex(*dimName)
	if err != nil {
		fatal(err)
	}
	adjust := !*noAdj && ds.HasErrors()

	opt := kde.Options{ErrorAdjust: adjust, Eval: ev}
	if *cv {
		h, err := kde.CVBandwidths(ds, adjust, nil)
		if err != nil {
			fatal(err)
		}
		opt.Bandwidths = h
		fmt.Fprintf(os.Stderr, "udmkde: CV bandwidths %v\n", h)
	}

	// Every configuration routes through the density-backend layer; the
	// default (exact) backend wraps the same point/cluster estimators as
	// before, bit-identically.
	var b density.Backend
	if *q > 0 {
		s := microcluster.Build(ds, *q, rng.New(ev.EffSeed()))
		b, err = density.FromSummarizer(s, opt)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "udmkde: %d rows compressed into %d micro-clusters\n", ds.Len(), s.Len())
	} else {
		b, err = density.New(ds, opt)
		if err != nil {
			fatal(err)
		}
	}
	if info := b.Info(); !info.Exact {
		fmt.Fprintf(os.Stderr, "udmkde: backend %s\n", info)
	}
	est := kde.Estimator(b)
	bopt := kde.BatchOptions{Workers: 1, Eval: ev}

	lo, hi := ds.MinMax()
	span := func(j int) (float64, float64) {
		pad := 0.15 * (hi[j] - lo[j])
		if pad == 0 {
			pad = 1
		}
		return lo[j] - pad, hi[j] + pad
	}

	if *dim2 != "" {
		j2, err := ds.ColumnIndex(*dim2)
		if err != nil {
			fatal(err)
		}
		loX, hiX := span(j)
		loY, hiY := span(j2)
		cells := *grid
		if cells > 120 {
			cells = 120
		}
		g, err := kde.Grid2DOpts(est, j, j2, loX, hiX, loY, hiY, cells, cells/2, bopt)
		if err != nil {
			fatal(err)
		}
		var peak float64
		for _, row := range g {
			for _, v := range row {
				if v > peak {
					peak = v
				}
			}
		}
		shades := []byte(" .:-=+*#@")
		fmt.Printf("joint density of %s (x) and %s (y); darker = denser\n", *dimName, *dim2)
		for iy := len(g) - 1; iy >= 0; iy-- {
			line := make([]byte, len(g[iy]))
			for ix, v := range g[iy] {
				line[ix] = shades[int(v/peak*float64(len(shades)-1))]
			}
			fmt.Printf("  %s\n", line)
		}
		return
	}

	loX, hiX := span(j)
	xs, ys, err := kde.Grid1DOpts(est, j, loX, hiX, *grid, bopt)
	if err != nil {
		fatal(err)
	}
	if *plot {
		tab, err := eval.NewTable(
			fmt.Sprintf("density of %s", *dimName), *dimName,
			eval.Series{Name: "f(x)", X: xs, Y: ys})
		if err != nil {
			fatal(err)
		}
		if err := tab.PlotASCII(os.Stdout, 72, 20); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("# x f(x)   [mass over grid: %.4f]\n",
		kde.Mass1D(est, j, loX, hiX, *grid))
	for i := range xs {
		fmt.Printf("%g %g\n", xs[i], ys[i])
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "udmkde:", err)
	os.Exit(1)
}
