// Command udmload replays a synthetic multi-tenant workload against a
// running udmserve or udmproxy: N tenants × M seeded user streams of
// density / classify / outlier / ingest traffic with exponential think
// times and configurable bursts, all derived deterministically from
// -seed (see internal/load). Per-tenant p50/p99/mean latency and
// throughput are printed as a table, and the run actively checks the
// tenancy contract from the outside — every response must echo the
// tenant it was issued for, and read-only tenants' probe densities
// must stay bit-for-bit identical for the whole run. Any violation
// makes the process exit non-zero, which is what `make loadtest`
// gates on.
//
//	udmload -base http://127.0.0.1:8080 -model live \
//	    -tenants t1,t2 -streams 1000 -requests 20 \
//	    -mix density=0.8,ingest=0.2 -write-tenants t1 \
//	    -burst-prob 0.05 -burst-len 16 -think 2ms
//
// -json FILE appends the machine-readable report to a JSON-array
// benchmark trajectory (BENCH_serve.json); -fault site=spec arms
// client-side chaos (site load.request.send) for harness stress runs.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"udm/internal/faultinject"
	"udm/internal/load"
)

// faultFlags collects repeated -fault flags (site=spec, armed after
// flag parsing).
type faultFlags []string

func (f *faultFlags) String() string { return strings.Join(*f, ",") }

func (f *faultFlags) Set(v string) error {
	*f = append(*f, v)
	return nil
}

// csv splits a comma-separated flag into trimmed non-empty parts.
func csv(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func main() {
	base := flag.String("base", "", "base URL of the udmserve or udmproxy under test (required)")
	model := flag.String("model", "live", "bare model name served under every tenant")
	tenants := flag.String("tenants", "default", "comma-separated tenant ids to drive")
	streams := flag.Int("streams", 8, "seeded user streams per tenant")
	requests := flag.Int("requests", 32, "requests per stream")
	workers := flag.Int("workers", 0, "concurrent streams (0: GOMAXPROCS)")
	seed := flag.Int64("seed", 1, "workload seed (whole schedule is a pure function of it)")
	think := flag.Duration("think", 0, "mean think time between requests (exponential; 0: none)")
	burstProb := flag.Float64("burst-prob", 0, "per-step chance a stream enters a burst")
	burstLen := flag.Int("burst-len", 8, "requests per burst (no think time inside)")
	mixFlag := flag.String("mix", "density=1", "operation mix, e.g. density=0.7,classify=0.2,ingest=0.1")
	writeTenants := flag.String("write-tenants", "", "tenants allowed to ingest (empty: all; others become read-only probe tenants)")
	namespaced := flag.Bool("namespaced", true, "use /v1/t/{tenant}/ paths (false: legacy paths + X-UDM-Tenant header)")
	probeEvery := flag.Int("probe-every", 16, "re-check bit-identity every that many requests per read-only stream")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request timeout")
	jsonOut := flag.String("json", "", "append the report to this JSON-array file (e.g. BENCH_serve.json)")
	note := flag.String("note", "", "free-form note recorded with the -json entry")
	var faults faultFlags
	flag.Var(&faults, "fault", "arm a client-side fault site=spec (repeatable; site load.request.send)")
	flag.Parse()

	if *base == "" {
		fmt.Fprintln(os.Stderr, "udmload: -base is required")
		flag.Usage()
		os.Exit(2)
	}
	mix, err := load.ParseMix(*mixFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "udmload:", err)
		os.Exit(2)
	}
	for _, f := range faults {
		if err := faultinject.ArmFlag(f); err != nil {
			fmt.Fprintln(os.Stderr, "udmload:", err)
			os.Exit(2)
		}
	}

	cfg := &load.Config{
		BaseURL:      *base,
		Model:        *model,
		Tenants:      csv(*tenants),
		Streams:      *streams,
		Requests:     *requests,
		Workers:      *workers,
		Seed:         *seed,
		Think:        *think,
		BurstProb:    *burstProb,
		BurstLen:     *burstLen,
		Mix:          mix,
		WriteTenants: csv(*writeTenants),
		Namespaced:   *namespaced,
		ProbeEvery:   *probeEvery,
		Timeout:      *timeout,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rep, err := load.Run(ctx, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "udmload:", err)
		os.Exit(1)
	}
	printReport(rep)
	if *jsonOut != "" {
		if err := appendReport(*jsonOut, rep, *note); err != nil {
			fmt.Fprintln(os.Stderr, "udmload:", err)
			os.Exit(1)
		}
		fmt.Printf("appended report to %s\n", *jsonOut)
	}
	if rep.Violations > 0 {
		fmt.Fprintf(os.Stderr, "udmload: FAIL: %d isolation violations\n", rep.Violations)
		os.Exit(1)
	}
}

// printReport renders the human-readable per-tenant table.
func printReport(rep *load.Report) {
	fmt.Printf("target %s  model %s  seed %d  %d tenants x %d streams x %d requests  wall %.2fs  %.0f req/s\n",
		rep.Target, rep.Model, rep.Seed, rep.Tenants, rep.Streams, rep.PerStream,
		rep.WallSeconds, rep.Throughput)
	fmt.Printf("%-12s %9s %9s %7s %7s %10s %9s %9s %9s %11s\n",
		"tenant", "requests", "ok", "shed", "errors", "violations", "p50(ms)", "p99(ms)", "mean(ms)", "req/s")
	for _, t := range rep.PerTenant {
		fmt.Printf("%-12s %9d %9d %7d %7d %10d %9.3f %9.3f %9.3f %11.1f\n",
			t.Tenant, t.Requests, t.OK, t.Shed, t.Errors, t.Violations,
			t.P50Ms, t.P99Ms, t.MeanMs, t.Throughput)
	}
	for _, s := range rep.Samples {
		fmt.Printf("violation: %s\n", s)
	}
	for site, n := range rep.FaultsFired {
		fmt.Printf("fault %s fired %d times\n", site, n)
	}
}

// benchEntry is the shape appended to the BENCH_serve.json trajectory:
// the load report plus the bookkeeping fields the other entries carry.
type benchEntry struct {
	Date      string `json:"date"`
	Benchmark string `json:"benchmark"`
	*load.Report
	Note string `json:"note,omitempty"`
}

// appendReport appends the report to a JSON-array file, creating it if
// missing — read-modify-write so no external JSON tooling is needed.
func appendReport(path string, rep *load.Report, note string) error {
	var entries []json.RawMessage
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &entries); err != nil {
			return fmt.Errorf("udmload: %s is not a JSON array: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	entry, err := json.MarshalIndent(benchEntry{
		Date:      time.Now().Format("2006-01-02"),
		Benchmark: "udmload",
		Report:    rep,
		Note:      note,
	}, "  ", "  ")
	if err != nil {
		return err
	}
	entries = append(entries, entry)
	out, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
