// Privacy-preserving publication: mining selectively-masked data.
//
// The paper's privacy motivation (cf. Agrawal–Srikant): numeric values
// are masked with noise before release, and the noise scale is published
// alongside. Here the masking is per-entry — each field of each record is
// independently either lightly masked or heavily masked (users blank out
// the specific values they consider sensitive) — which is exactly the
// heterogeneous regime the density transform exploits: for every record
// some coordinates stay reliable, and the subspace classifier finds them.
//
// Three miners see the same published table:
//
//   - the error-adjusted density miner (uses the published noise scales),
//   - the face-value density miner (ignores them),
//   - a nearest-neighbor miner (classical, error-oblivious).
//
// Run with: go run ./examples/privacy
package main

import (
	"fmt"
	"log"

	"udm"
)

func main() {
	r := udm.NewRand(13)

	spec, err := udm.DataProfile("forest-cover")
	if err != nil {
		log.Fatal(err)
	}
	clean, err := spec.Generate(2400, r.Split("gen"))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("per-entry masking: 50% of entries heavily masked (σ = hi·σ_col),")
	fmt.Println("the rest lightly (σ = 0.1·σ_col); noise scales published.")
	fmt.Println()
	fmt.Printf("%6s  %16s  %16s  %16s\n", "hi", "error-adjusted", "face-value", "nearest-nbr")
	for _, hi := range []float64{0, 1, 2, 3} {
		published, err := udm.MixedLevelPerturb(clean, 0.1, hi, 0.5,
			r.Split(fmt.Sprintf("mask-%g", hi)))
		if err != nil {
			log.Fatal(err)
		}
		train, test, err := published.StratifiedSplit(0.7, r.Split(fmt.Sprintf("split-%g", hi)))
		if err != nil {
			log.Fatal(err)
		}

		adjusted, err := udm.Train(train, udm.TrainConfig{MicroClusters: 100, Seed: 3})
		if err != nil {
			log.Fatal(err)
		}
		off := false
		face, err := udm.Train(train, udm.TrainConfig{MicroClusters: 100, Seed: 3, ErrorAdjust: &off})
		if err != nil {
			log.Fatal(err)
		}
		nn, err := udm.NewNearestNeighbor(train)
		if err != nil {
			log.Fatal(err)
		}

		resAdj, err := udm.Evaluate(adjusted, test)
		if err != nil {
			log.Fatal(err)
		}
		resFace, err := udm.Evaluate(face, test)
		if err != nil {
			log.Fatal(err)
		}
		resNN, err := udm.Evaluate(nn, test)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6.1f  %16.3f  %16.3f  %16.3f\n",
			hi, resAdj.Accuracy(), resFace.Accuracy(), resNN.Accuracy())
	}
	fmt.Println("\nAll miners see identical published values; only the first uses the")
	fmt.Println("published noise scales. Privacy comes from the noise; the remaining")
	fmt.Println("utility comes from modeling it.")
}
