// Anomaly detection on uncertain data: telling "broken" from "noisy".
//
// A fleet of sensors reports readings; each reading carries the sensor's
// current error estimate. Two kinds of extreme readings arrive: genuine
// anomalous events reported by healthy low-error sensors, and wild
// readings from degraded sensors that honestly report huge error bars.
//
// The error-oblivious detector scores both kinds as equally surprising.
// The error-aware detector asks the right question — "how surprising is
// this reading GIVEN ITS OWN error bar?" — by evaluating the density in
// expectation over the reading's error distribution (DetectOutliers with
// UseQueryError). A reading displaced by a known ±12 error is consistent
// with the bulk; an identical reading claiming ±0.3 is not.
//
// Run with: go run ./examples/anomaly
package main

import (
	"fmt"
	"log"

	"udm"
)

func main() {
	r := udm.NewRand(99)

	// Normal operation: readings near (20, 50) with small errors.
	ds := udm.NewDataset("temperature", "vibration")
	n := 0
	addReading := func(x, y, e float64) int {
		if err := ds.Append([]float64{x, y}, []float64{e, e}, udm.Unlabeled); err != nil {
			log.Fatal(err)
		}
		n++
		return n - 1
	}
	for i := 0; i < 1000; i++ {
		addReading(r.Norm(20, 1), r.Norm(50, 2), 0.3)
	}
	// Three genuine anomalies from healthy sensors (low error).
	events := []int{
		addReading(33, 50, 0.3),
		addReading(20, 78, 0.3),
		addReading(31, 69, 0.3),
	}
	// Three wild readings from degraded sensors that SAY so (huge error),
	// at comparably extreme positions.
	degraded := []int{
		addReading(34, 51, 12),
		addReading(21, 77, 12),
		addReading(8, 30, 12),
	}

	run := func(aware bool) *udm.OutlierResult {
		res, err := udm.DetectOutliers(ds, udm.OutlierOptions{
			Contamination: 3.0 / float64(ds.Len()),
			UseQueryError: aware,
			KDE:           udm.DensityOptions{ErrorAdjust: aware},
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	blind := run(false)
	aware := run(true)

	report := func(name string, res *udm.OutlierResult, idx []int) {
		hits := 0
		for _, i := range idx {
			if res.Outlier[i] {
				hits++
			}
		}
		fmt.Printf("  %s: %d/3 flagged\n", name, hits)
	}
	fmt.Println("error-OBLIVIOUS detector, top 3:")
	report("genuine events  ", blind, events)
	report("degraded sensors", blind, degraded)
	fmt.Println("error-AWARE detector, top 3:")
	report("genuine events  ", aware, events)
	report("degraded sensors", aware, degraded)

	fmt.Println("\nscore comparison (higher = more anomalous):")
	fmt.Printf("  %-28s %-10s %-10s\n", "reading", "oblivious", "aware")
	labels := []string{"event (33,50) ±0.3", "event (20,78) ±0.3", "event (31,69) ±0.3",
		"degraded (34,51) ±12", "degraded (21,77) ±12", "degraded (8,30) ±12"}
	all := append(append([]int{}, events...), degraded...)
	for i, idx := range all {
		fmt.Printf("  %-28s %-10.2f %-10.2f\n", labels[i], blind.Scores[idx], aware.Scores[idx])
	}
	fmt.Println("\nThe aware detector integrates each reading's own error bar into its")
	fmt.Println("surprise score, so honestly-uncertain readings stop crowding out the")
	fmt.Println("genuine events.")
}
