// Stream clustering: uncertain DBSCAN over the density transform.
//
// The paper argues (§3) that any mining algorithm consuming joint
// densities can run on the error-based micro-cluster transform instead of
// the raw points. This example demonstrates the non-classification side
// of that claim: a stream of noisy ring-shaped readings is condensed into
// 160 micro-clusters on the fly, then DBSCAN-style clustering runs purely
// on the pseudo-points — never revisiting the stream — and still recovers
// the two non-convex rings.
//
// Run with: go run ./examples/streamcluster
package main

import (
	"fmt"
	"log"
	"math"

	"udm"
)

func main() {
	r := udm.NewRand(21)

	// The "stream": 20,000 readings from two concentric circular
	// trajectories, each reading carrying its sensor's error estimate.
	const streamLen = 20000
	summarizer := udm.NewSummarizer(160, 2)
	for i := 0; i < streamLen; i++ {
		radius := 1.0
		if i%2 == 1 {
			radius = 4.0
		}
		theta := r.Uniform(0, 2*math.Pi)
		noise := r.Uniform(0.05, 0.35) // per-reading error, known
		x := (radius + r.Norm(0, noise)) * math.Cos(theta)
		y := (radius + r.Norm(0, noise)) * math.Sin(theta)
		summarizer.Add([]float64{x, y}, []float64{noise, noise})
	}
	fmt.Printf("stream of %d readings condensed into %d micro-clusters\n",
		summarizer.Count(), summarizer.Len())

	// Cluster the pseudo-points with error-adjusted densities.
	// The outer ring's pseudo-points are individually less dense (the
	// same mass spread over 4× the circumference), so keep the core
	// quantile permissive.
	res, err := udm.DBSCANClusters(summarizer, udm.DBSCANOptions{
		Eps:             1.1,
		DensityQuantile: 0.02,
		KDE:             udm.DensityOptions{ErrorAdjust: true},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uncertain DBSCAN found %d clusters (threshold %.4f)\n\n",
		res.NumClusters, res.Threshold)

	// Report each cluster's radius band — the rings should separate.
	type band struct {
		min, max float64
		n        int
	}
	bands := map[int]*band{}
	for i := 0; i < summarizer.Len(); i++ {
		l := res.Labels[i]
		if l == udm.Noise {
			continue
		}
		c := summarizer.Centroid(i)
		rad := math.Hypot(c[0], c[1])
		b, ok := bands[l]
		if !ok {
			b = &band{min: rad, max: rad}
			bands[l] = b
		}
		b.min = math.Min(b.min, rad)
		b.max = math.Max(b.max, rad)
		b.n += summarizer.Feature(i).N
	}
	for l := 0; l < res.NumClusters; l++ {
		b := bands[l]
		fmt.Printf("cluster %d: %5d readings, centroid radii %.2f .. %.2f\n",
			l, b.n, b.min, b.max)
	}

	// A coarse density heat map over the plane, from the same transform.
	est, err := udm.NewClusterDensity(summarizer, udm.DensityOptions{ErrorAdjust: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndensity heat map (darker = denser):")
	shades := []byte(" .:-=+*#")
	var peak float64
	const cells = 25
	grid := [cells][cells]float64{}
	for iy := 0; iy < cells; iy++ {
		for ix := 0; ix < cells; ix++ {
			x := -5.5 + 11*float64(ix)/(cells-1)
			y := 5.5 - 11*float64(iy)/(cells-1)
			d := est.Density([]float64{x, y})
			grid[iy][ix] = d
			if d > peak {
				peak = d
			}
		}
	}
	for iy := 0; iy < cells; iy++ {
		line := make([]byte, cells)
		for ix := 0; ix < cells; ix++ {
			idx := int(grid[iy][ix] / peak * float64(len(shades)-1))
			line[ix] = shades[idx]
		}
		fmt.Printf("  %s\n", line)
	}
}
