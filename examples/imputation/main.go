// Missing data: imputation with honest error bars.
//
// The paper's second motivating application: "in the case of missing
// data, imputation procedures can be used to estimate the missing values.
// If such procedures are used, then the statistical error of imputation
// for a given entry is often known a-priori."
//
// We use the forest-cover profile as a remote-sensing stand-in (cloud
// cover and sensor dropouts routinely blank out individual readings),
// knock out 40% of the training entries completely at random, and repair
// the table with three imputers that each record an honest per-entry
// error. Every repaired table is then mined twice: consuming the
// imputation errors (the paper's method) and discarding them.
//
// The comparison also demonstrates a property worth knowing before
// reaching for error adjustment: it pays off for *noise-type* errors
// (the stored value is truth plus noise — hot-deck donors behave this
// way, as does measurement error) and has little to fix for
// *estimate-type* errors (mean and kNN imputation store a conditional
// mean, which is already the quietest value available).
//
// Run with: go run ./examples/imputation
package main

import (
	"fmt"
	"log"

	"udm"
)

func main() {
	r := udm.NewRand(7)

	spec, err := udm.DataProfile("forest-cover")
	if err != nil {
		log.Fatal(err)
	}
	clean, err := spec.Generate(2400, r.Split("gen"))
	if err != nil {
		log.Fatal(err)
	}

	// Hold out intact test data: the question is how well we can learn
	// from the damaged table.
	trainClean, test, err := clean.StratifiedSplit(0.7, r.Split("split"))
	if err != nil {
		log.Fatal(err)
	}

	// Damage the training table: 40% of entries go missing.
	mask, err := udm.MaskCompletelyAtRandom(trainClean, 0.4, r.Split("mask"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("masked %d of %d training entries (%.0f%%)\n\n",
		mask.MissingCount(), trainClean.Len()*trainClean.Dims(),
		100*float64(mask.MissingCount())/float64(trainClean.Len()*trainClean.Dims()))

	imputers := []struct {
		name string
		imp  udm.Imputer
	}{
		{"hot-deck imputation (noise-type)   ", udm.HotDeckImputer{R: r.Split("hotdeck")}},
		{"kNN imputation (estimate-type)     ", udm.KNNImputer{K: 7}},
		{"mean imputation (estimate-type)    ", udm.MeanImputer{}},
	}
	fmt.Printf("%-37s %-12s %-12s\n", "imputer", "with errors", "discarded")
	for _, im := range imputers {
		imputed, err := im.imp.Impute(trainClean, mask)
		if err != nil {
			log.Fatal(err)
		}

		withErr, err := udm.Train(imputed, udm.TrainConfig{MicroClusters: 100, Seed: 2})
		if err != nil {
			log.Fatal(err)
		}
		off := false
		noErr, err := udm.Train(imputed, udm.TrainConfig{MicroClusters: 100, Seed: 2, ErrorAdjust: &off})
		if err != nil {
			log.Fatal(err)
		}

		resWith, err := udm.Evaluate(withErr, test)
		if err != nil {
			log.Fatal(err)
		}
		resNo, err := udm.Evaluate(noErr, test)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-37s %-12.3f %-12.3f\n", im.name, resWith.Accuracy(), resNo.Accuracy())
	}

	// Reference: training on the undamaged table.
	oracle, err := udm.Train(trainClean, udm.TrainConfig{MicroClusters: 100, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	resOracle, err := udm.Evaluate(oracle, test)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreference (no missing data): %.3f\n", resOracle.Accuracy())
	fmt.Println("\nEvery imputer records an honest per-entry error, and on this")
	fmt.Println("multi-class profile consuming those errors beats discarding them for")
	fmt.Println("all three. The margin is structural for hot-deck (its values really")
	fmt.Println("are truth plus noise); for mean/kNN — which store conditional means —")
	fmt.Println("the benefit shrinks on easier, near-separable data, where widening")
	fmt.Println("already-quiet values mostly over-smooths (see EXPERIMENTS.md).")
}
