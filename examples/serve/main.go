// Serve: the model-server round trip in one process.
//
// Train a transform on a noisy two-blob data set, register it with the
// HTTP serving layer, and then act as a client against the live server:
// single-point classify calls fired concurrently (so the server's
// micro-batcher coalesces them onto one batched library call), a
// repeated density query (the second hit answered from the LRU cache),
// and a look at /metrics to see batching and caching at work. Finishes
// with a graceful shutdown.
//
// Run with: go run ./examples/serve
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"

	"udm"
	"udm/internal/server"
)

func main() {
	// 1. Train a classifier-ready transform exactly as quickstart does.
	clean, err := udm.TwoBlobs(2.5).Generate(1200, udm.NewRand(1))
	if err != nil {
		log.Fatal(err)
	}
	noisy, err := udm.Perturb(clean, 1.0, udm.NewRand(2))
	if err != nil {
		log.Fatal(err)
	}
	tr, err := udm.NewTransform(noisy, udm.TransformOptions{ErrorAdjust: true, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Register it and serve on a loopback port.
	model, err := server.NewTransformModel("blobs", tr, udm.ClassifierOptions{})
	if err != nil {
		log.Fatal(err)
	}
	reg := server.NewRegistry()
	if err := reg.Add(model); err != nil {
		log.Fatal(err)
	}
	srv := server.New(reg, server.Options{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(l)
	base := "http://" + l.Addr().String()
	fmt.Printf("serving model %q at %s\n\n", "blobs", base)

	// 3. Fire 32 single-point classify requests concurrently. Each HTTP
	// request carries ONE point; the server coalesces whatever arrives
	// within its 2ms batching window into one ClassifyBatch call.
	pts := noisy.X[:32]
	labels := make([]int, len(pts))
	var wg sync.WaitGroup
	for i, x := range pts {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var resp struct {
				Label *int `json:"label"`
			}
			post(base+"/v1/models/blobs/classify", map[string]any{"point": x}, &resp)
			labels[i] = *resp.Label
		}()
	}
	wg.Wait()
	agree := 0
	for i, x := range pts {
		want, err := model.Classifier().Classify(x)
		if err != nil {
			log.Fatal(err)
		}
		if labels[i] == want {
			agree++
		}
	}
	fmt.Printf("classify: %d/%d served labels identical to direct library calls\n", agree, len(pts))

	// 4. Ask for the same density twice: miss, then cache hit.
	for i := 0; i < 2; i++ {
		var resp struct {
			Density *float64 `json:"density"`
			Cached  bool     `json:"cached"`
		}
		post(base+"/v1/models/blobs/density", map[string]any{"point": pts[0]}, &resp)
		fmt.Printf("density #%d: %.6g (cached=%v)\n", i+1, *resp.Density, resp.Cached)
	}

	// 5. Peek at the metrics the server kept while we hammered it.
	var metrics map[string]any
	get(base+"/metrics", &metrics)
	fmt.Printf("\nmetrics: requests=%v batch_flushes=%v avg_batch_size=%v cache_hit_rate=%v\n",
		metrics["requests"], metrics["batch_flushes"], metrics["avg_batch_size"], metrics["cache_hit_rate"])

	// 6. Graceful shutdown: drains in-flight work, checkpoints streams.
	if err := srv.Shutdown(context.Background()); err != nil {
		log.Fatal(err)
	}
	fmt.Println("clean shutdown")
}

func post(url string, body, out any) {
	buf, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("%s: HTTP %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}

func get(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}
