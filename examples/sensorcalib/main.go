// Sensor calibration: heteroscedastic measurement error.
//
// The paper's first motivating application: "when the inaccuracy arises
// out of the limitations of data collection equipment, the statistical
// error of data collection can be estimated by prior experimentation. In
// such cases, different features of observation may be collected to a
// different level of approximation."
//
// We simulate a quality-control station measuring machined parts with
// four instruments of very different, known precision (calibrated σ per
// channel). Two of the channels genuinely discriminate good parts from
// bad ones — but the cheap instrument measuring one of them is so noisy
// that its readings are almost worthless, while a precise channel carries
// no class signal at all. The error-adjusted classifier should discover
// that only the channels that are BOTH informative AND precise are worth
// trusting.
//
// Run with: go run ./examples/sensorcalib
package main

import (
	"fmt"
	"log"

	"udm"
)

func main() {
	r := udm.NewRand(42)

	// Ground truth: parts are good (class 0) or out-of-spec (class 1).
	// Channels: diameter and hardness discriminate; roughness and mass
	// do not.
	//
	//   channel    class-0 mean  class-1 mean  instrument σ (calibrated)
	//   diameter        10.0         10.8         0.05  (laser gauge)
	//   hardness        55.0         58.0         6.00  (worn durometer!)
	//   roughness        1.6          1.6         0.02  (profilometer)
	//   mass           250.0        250.0         1.00  (scale)
	clean := udm.NewDataset("diameter", "hardness", "roughness", "mass")
	clean.ClassNames = []string{"good", "out-of-spec"}
	for i := 0; i < 2400; i++ {
		label := 0
		dMean, hMean := 10.0, 55.0
		if r.Bool(0.4) {
			label = 1
			dMean, hMean = 10.8, 58.0
		}
		// True part properties (manufacturing spread).
		row := []float64{
			r.Norm(dMean, 0.3),
			r.Norm(hMean, 2.0),
			r.Norm(1.6, 0.15),
			r.Norm(250, 4.0),
		}
		if err := clean.Append(row, nil, label); err != nil {
			log.Fatal(err)
		}
	}

	// The instruments add measurement noise with KNOWN per-channel σ —
	// exactly the FieldNoise error model.
	instrumentSigma := []float64{0.05, 6.0, 0.02, 1.0}
	measured, err := udm.FieldNoise(clean, instrumentSigma, r.Split("instruments"))
	if err != nil {
		log.Fatal(err)
	}

	train, test, err := measured.StratifiedSplit(0.7, r.Split("split"))
	if err != nil {
		log.Fatal(err)
	}

	adjusted, err := udm.Train(train, udm.TrainConfig{MicroClusters: 100, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	off := false
	blind, err := udm.Train(train, udm.TrainConfig{MicroClusters: 100, Seed: 1, ErrorAdjust: &off})
	if err != nil {
		log.Fatal(err)
	}
	nn, err := udm.NewNearestNeighbor(train)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Instruments (per-channel calibrated σ):")
	for j, name := range measured.Names {
		fmt.Printf("  %-9s σ = %.2f\n", name, instrumentSigma[j])
	}
	fmt.Println()

	for _, c := range []struct {
		name string
		clf  udm.EvalClassifier
	}{
		{"density + calibration errors", adjusted},
		{"density, calibration ignored", blind},
		{"nearest neighbor            ", nn},
	} {
		res, err := udm.Evaluate(c.clf, test)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s  accuracy %.3f\n", c.name, res.Accuracy())
	}

	// Which channels does the error-adjusted classifier actually use?
	// Tally the dimensions of the subspaces that vote.
	usage := make([]int, measured.Dims())
	for i := 0; i < test.Len() && i < 300; i++ {
		dec, err := adjusted.Decide(test.X[i])
		if err != nil {
			log.Fatal(err)
		}
		for _, s := range dec.Chosen {
			for _, j := range s.Dims {
				usage[j]++
			}
		}
	}
	fmt.Println("\nchannel usage in voting subspaces (first 300 test parts):")
	for j, name := range measured.Names {
		fmt.Printf("  %-9s %4d votes\n", name, usage[j])
	}
	fmt.Println("\nThe precise, informative laser-gauge channel should dominate;")
	fmt.Println("the worn durometer's channel is informative but untrustworthy.")
}
