// Quickstart: the whole pipeline in ~60 lines.
//
// Generate a clean two-class data set, distort it with the paper's error
// protocol (every entry perturbed by noise whose scale is known and
// recorded), then compare three classifiers on held-out rows:
//
//   - the density-based classifier WITH error adjustment (the paper's
//     method),
//   - the same classifier pretending all errors are zero,
//   - a nearest-neighbor classifier that never sees error information.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"udm"
)

func main() {
	// 1. A clean, obviously separable data set: two Gaussian blobs.
	clean, err := udm.TwoBlobs(2.5).Generate(1500, udm.NewRand(1))
	if err != nil {
		log.Fatal(err)
	}

	// 2. Distort it: each entry moves by N(0, s²) with s drawn up to
	//    2f·σ of its dimension — and s is RECORDED as the entry's error.
	//    f = 2 means many entries move by multiple standard deviations.
	noisy, err := udm.Perturb(clean, 2.0, udm.NewRand(2))
	if err != nil {
		log.Fatal(err)
	}

	train, test, err := noisy.StratifiedSplit(0.7, udm.NewRand(3))
	if err != nil {
		log.Fatal(err)
	}

	// 3. The paper's method: micro-cluster transform + subspace
	//    classifier, using the recorded errors.
	adjusted, err := udm.Train(train, udm.TrainConfig{MicroClusters: 80, Seed: 4})
	if err != nil {
		log.Fatal(err)
	}

	// The same algorithm, blind to the errors.
	off := false
	blind, err := udm.Train(train, udm.TrainConfig{MicroClusters: 80, Seed: 4, ErrorAdjust: &off})
	if err != nil {
		log.Fatal(err)
	}

	// A classic nearest-neighbor baseline.
	nn, err := udm.NewNearestNeighbor(train)
	if err != nil {
		log.Fatal(err)
	}

	for _, c := range []struct {
		name string
		clf  udm.EvalClassifier
	}{
		{"density + error adjustment", adjusted},
		{"density, errors ignored  ", blind},
		{"nearest neighbor         ", nn},
	} {
		res, err := udm.Evaluate(c.clf, test)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s  accuracy %.3f  (%.2f ms/example)\n",
			c.name, res.Accuracy(), res.PerExample().Seconds()*1e3)
	}

	// 4. Peek inside one decision: which dimension subsets voted?
	dec, err := adjusted.Decide(test.X[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexample decision for %v: class %d\n", test.X[0], dec.Label)
	for _, s := range dec.Chosen {
		fmt.Printf("  subspace %v -> class %d (local accuracy %.2f)\n",
			s.Dims, s.Class, s.Accuracy)
	}
}
