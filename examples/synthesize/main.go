// Synthetic data publishing from the density transform.
//
// The density transform is a generative model: per-class micro-cluster
// summaries define a mixture distribution that can be *sampled*. A data
// holder can therefore publish a fully synthetic table — no original
// record leaves the building, only q cluster summaries' worth of
// structure — and an outside analyst can still train a useful model.
//
// This example: (1) condenses a private, uncertain medical-style table
// into its transform, (2) samples a synthetic table from it, (3) trains
// a classifier on the synthetic table, and (4) shows its accuracy on
// real held-out cases approaches that of a classifier trained on the
// real private table.
//
// Run with: go run ./examples/synthesize
package main

import (
	"fmt"
	"log"

	"udm"
)

func main() {
	r := udm.NewRand(55)

	spec, err := udm.DataProfile("breast-cancer")
	if err != nil {
		log.Fatal(err)
	}
	clean, err := spec.Generate(2000, r.Split("gen"))
	if err != nil {
		log.Fatal(err)
	}
	// Clinical measurements carry known per-entry error.
	private, err := udm.Perturb(clean, 0.5, r.Split("noise"))
	if err != nil {
		log.Fatal(err)
	}
	trainReal, test, err := private.StratifiedSplit(0.7, r.Split("split"))
	if err != nil {
		log.Fatal(err)
	}

	// The publishable artifact: per-class micro-cluster summaries.
	transform, err := udm.NewTransform(trainReal, udm.TransformOptions{
		MicroClusters: 60, ErrorAdjust: true, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("private table: %d rows -> published transform: %d classes × ≤60 summaries\n",
		trainReal.Len(), transform.NumClasses())

	// Sample a synthetic table class by class.
	synthetic := udm.NewDataset(trainReal.Names...)
	synthetic.ClassNames = trainReal.ClassNames
	for class := 0; class < transform.NumClasses(); class++ {
		est, err := udm.NewClusterDensity(transform.Class(class), udm.DensityOptions{ErrorAdjust: true})
		if err != nil {
			log.Fatal(err)
		}
		rows, err := est.Sample(transform.ClassCount(class), r.Split(fmt.Sprintf("sample-%d", class)))
		if err != nil {
			log.Fatal(err)
		}
		for _, row := range rows {
			if err := synthetic.Append(row, nil, class); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("synthetic table: %d rows sampled from the transform\n\n", synthetic.Len())

	// Analyst trains on synthetic; compare with training on real.
	onSynthetic, err := udm.Train(synthetic, udm.TrainConfig{MicroClusters: 60, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	onReal, err := udm.Train(trainReal, udm.TrainConfig{MicroClusters: 60, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	resSyn, err := udm.Evaluate(onSynthetic, test)
	if err != nil {
		log.Fatal(err)
	}
	resReal, err := udm.Evaluate(onReal, test)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("accuracy on real held-out cases:\n")
	fmt.Printf("  trained on REAL private rows: %.3f\n", resReal.Accuracy())
	fmt.Printf("  trained on SYNTHETIC rows:    %.3f\n", resSyn.Accuracy())

	// How different is an individual synthetic row from its nearest real
	// one? (The further, the less any single record leaks.)
	var minGap, meanGap float64
	minGap = 1e300
	for i := 0; i < 200; i++ { // sample of synthetic rows
		best := 1e300
		for j := 0; j < trainReal.Len(); j++ {
			var d2 float64
			for k := range synthetic.X[i] {
				diff := synthetic.X[i][k] - trainReal.X[j][k]
				d2 += diff * diff
			}
			if d2 < best {
				best = d2
			}
		}
		if best < minGap {
			minGap = best
		}
		meanGap += best
	}
	meanGap /= 200
	fmt.Printf("\nnearest-real-record distance² over 200 synthetic rows: mean %.2f, min %.2f\n",
		meanGap, minGap)
	fmt.Println("(kernel smoothing keeps synthetic rows off the original records)")
}
