package server

import (
	"context"
	"testing"
)

// BenchmarkResilienceOverhead measures the per-call tax the retry
// wrapper and circuit breaker add around a SUCCESSFUL evaluation — the
// price every request pays when nothing is failing. The bare case calls
// the same op directly; the deltas are the numbers reported in
// EXPERIMENTS.md. A real batch evaluation costs tens of microseconds,
// so the wrapper must stay in the tens of nanoseconds to hold the ≤5%
// overall budget the obs snapshot gate enforces.
func BenchmarkResilienceOverhead(b *testing.B) {
	op := func(ctx context.Context) (float64, error) { return 1, nil }
	ctx := context.Background()

	b.Run("bare", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := op(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("retry", func(b *testing.B) {
		r := newRetrier(Options{}.withDefaults(), newMetrics().Retries)
		for i := 0; i < b.N; i++ {
			if _, err := retryDo(ctx, r, nil, op); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("retry-breaker", func(b *testing.B) {
		opt := Options{}.withDefaults()
		m := newMetrics()
		r := newRetrier(opt, m.Retries)
		br := newBreaker("bench", opt, m.reg)
		for i := 0; i < b.N; i++ {
			if _, err := retryDo(ctx, r, br, op); err != nil {
				b.Fatal(err)
			}
		}
	})
}
