// Package server is the HTTP serving layer over the density-transform
// library: a named model registry, JSON endpoints for classification,
// density evaluation, outlier scoring and stream ingestion, micro-
// batching of concurrent single-point requests onto the parallel batch
// engine, a bounded LRU density cache, per-request timeouts, load
// shedding, and graceful shutdown with stream checkpointing. See
// DESIGN.md ("Serving layer") for the architecture.
package server

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"sort"
	"sync"

	"udm/internal/core"
	"udm/internal/density"
	"udm/internal/evalopt"
	"udm/internal/kde"
	"udm/internal/kernel"
	"udm/internal/microcluster"
	"udm/internal/stream"
)

// Kind names the artifact type behind a served model.
type Kind string

const (
	// KindTransform serves a trained core.Transform: classify, density
	// and outliers against the global summary.
	KindTransform Kind = "transform"
	// KindSummarizer serves a standalone micro-cluster summary: density
	// and outliers.
	KindSummarizer Kind = "summarizer"
	// KindStream serves a live stream.Engine: ingest plus density and
	// outliers against the evolving summary.
	KindStream Kind = "stream"
)

// Model is one named, servable artifact. All public methods are safe
// for concurrent use: classifiers and estimators are read-only after
// construction, and the mutable stream path (ingest + lazy estimator
// rebuild) is guarded by mu / the engine's own lock.
type Model struct {
	name   string
	kind   Kind
	dims   int
	kdeOpt kde.Options

	clf *core.Classifier // transform kind only

	eng            *stream.Engine // stream kind only
	checkpointPath string         // where Checkpoint saves the engine

	mu         sync.Mutex
	est        *kde.ClusterKDE
	sum        *microcluster.Summarizer
	estVersion uint64 // engine row count the estimator was built at

	// backends lazily caches non-default density backends over the
	// current summary, one per rung; rebuilt wholesale whenever
	// ingestion advances the model version.
	backends        map[evalopt.Backend]density.Backend
	backendsVersion uint64

	// partial caches the shard-side estimator of the distributed
	// density protocol: the current summary under coordinator-supplied
	// explicit bandwidths, rebuilt when ingestion advances the version
	// or a fan-out arrives with different bandwidths.
	partial        *kde.ClusterKDE
	partialVersion uint64
	partialKey     string
}

// NewTransformModel wraps a trained transform: the classifier serves
// /classify and a ClusterKDE over the global summary serves /density
// and /outliers.
func NewTransformModel(name string, t *core.Transform, clfOpt core.ClassifierOptions) (*Model, error) {
	clf, err := core.NewClassifier(t, clfOpt)
	if err != nil {
		return nil, fmt.Errorf("server: model %q: %w", name, err)
	}
	est, err := kde.NewCluster(t.Global(), clfOpt.KDE)
	if err != nil {
		return nil, fmt.Errorf("server: model %q: %w", name, err)
	}
	return &Model{
		name:   name,
		kind:   KindTransform,
		dims:   t.Dims(),
		kdeOpt: clfOpt.KDE,
		clf:    clf,
		est:    est,
		sum:    t.Global(),
	}, nil
}

// NewSummarizerModel wraps a standalone micro-cluster summary for
// density evaluation and outlier scoring.
func NewSummarizerModel(name string, s *microcluster.Summarizer, opt kde.Options) (*Model, error) {
	est, err := kde.NewCluster(s, opt)
	if err != nil {
		return nil, fmt.Errorf("server: model %q: %w", name, err)
	}
	return &Model{
		name:   name,
		kind:   KindSummarizer,
		dims:   s.Dims(),
		kdeOpt: opt,
		est:    est,
		sum:    s,
	}, nil
}

// NewStreamModel wraps a live stream engine. checkpointPath, when
// non-empty, is where Checkpoint (and graceful shutdown) writes the
// engine state. The density estimator is built lazily and rebuilt
// whenever ingestion has advanced the engine since the last build.
func NewStreamModel(name string, eng *stream.Engine, opt kde.Options, checkpointPath string) (*Model, error) {
	if eng == nil {
		return nil, fmt.Errorf("server: model %q: nil stream engine", name)
	}
	return &Model{
		name:           name,
		kind:           KindStream,
		dims:           eng.Dims(),
		kdeOpt:         opt,
		eng:            eng,
		checkpointPath: checkpointPath,
	}, nil
}

// Name returns the registry name.
func (m *Model) Name() string { return m.name }

// Kind returns the artifact kind.
func (m *Model) Kind() Kind { return m.kind }

// Dims returns the model dimensionality.
func (m *Model) Dims() int { return m.dims }

// Classifier returns the classifier, or nil for non-transform kinds.
func (m *Model) Classifier() *core.Classifier { return m.clf }

// Engine returns the live stream engine, or nil for non-stream kinds.
func (m *Model) Engine() *stream.Engine { return m.eng }

// version is the cache-invalidation token: static models are always
// version 0; a stream model's version is its ingested row count, so
// every ingested row retires cached densities.
func (m *Model) version() uint64 {
	if m.eng == nil {
		return 0
	}
	return uint64(m.eng.Count())
}

// estimator returns the current density estimator and the model
// version it reflects, rebuilding a stream model's estimator when
// ingestion has advanced past the cached build. Static models return
// their construction-time estimator unchanged.
func (m *Model) estimator() (*kde.ClusterKDE, uint64, error) {
	if m.eng == nil {
		return m.est, 0, nil
	}
	v := m.version()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.est != nil && m.estVersion == v {
		return m.est, v, nil
	}
	s, err := m.eng.Summarizer()
	if err != nil {
		return nil, 0, fmt.Errorf("server: model %q: %w", m.name, err)
	}
	est, err := kde.NewCluster(s, m.kdeOpt)
	if err != nil {
		return nil, 0, fmt.Errorf("server: model %q: %w", m.name, err)
	}
	m.est, m.sum, m.estVersion = est, s, v
	return est, v, nil
}

// estimatorAt returns the current estimator with the per-request
// accuracy mode applied. Exact requests share the cached estimator
// unchanged; approximate requests get a shallow copy that shares the
// underlying columns, spatial index, and scratch pool, so the override
// costs one small allocation, not a rebuild.
func (m *Model) estimatorAt(acc kernel.AccuracyMode) (*kde.ClusterKDE, error) {
	est, _, err := m.estimator()
	if err != nil {
		return nil, err
	}
	if acc.IsExact() {
		return est, nil
	}
	est, err = est.WithAccuracy(acc)
	if err != nil {
		return nil, fmt.Errorf("server: model %q: %w", m.name, err)
	}
	return est, nil
}

// backendAt returns an estimator for the requested density backend and
// accuracy mode. The default (and explicit exact) backend takes the
// exact same path as before backends existed — the shared ClusterKDE,
// bit-identical answers — while the approximate rungs are built lazily
// over the current summary and cached per backend until ingestion
// advances the model. The accuracy switch is applied last, as a cheap
// per-request view.
func (m *Model) backendAt(bk evalopt.Backend, acc kernel.AccuracyMode) (kde.Estimator, error) {
	if bk == evalopt.BackendDefault || bk == evalopt.BackendExact {
		return m.estimatorAt(acc)
	}
	// Refresh the summary (and version) first; stream models rebuild it
	// here when ingestion has advanced.
	_, v, err := m.estimator()
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	if m.backends == nil || m.backendsVersion != v {
		m.backends = make(map[evalopt.Backend]density.Backend)
		m.backendsVersion = v
	}
	b, ok := m.backends[bk]
	if !ok {
		opt := m.kdeOpt
		opt.Eval.Backend = bk
		b, err = density.FromSummarizer(m.sum, opt)
		if err != nil {
			m.mu.Unlock()
			return nil, fmt.Errorf("server: model %q: %w", m.name, err)
		}
		m.backends[bk] = b
	}
	m.mu.Unlock()
	if acc.IsExact() {
		return b, nil
	}
	bv, err := b.WithAccuracy(acc)
	if err != nil {
		return nil, fmt.Errorf("server: model %q: %w", m.name, err)
	}
	return bv, nil
}

// SummarySnapshot returns the model's current micro-cluster summary
// and the version it reflects — the coordinator-side entry point of
// the distributed density protocol (GET .../summary). Static models
// return their construction-time summary at version 0; stream models
// return a deep snapshot that later ingestion cannot mutate. The
// returned summarizer must be treated as read-only.
func (m *Model) SummarySnapshot() (*microcluster.Summarizer, uint64, error) {
	if m.eng == nil {
		return m.sum, 0, nil
	}
	if _, _, err := m.estimator(); err != nil {
		return nil, 0, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sum, m.estVersion, nil
}

// partialEstimator returns an estimator over the current summary with
// the coordinator's explicit bandwidths in place of the local
// bandwidth rule, plus the version it reflects — the shard-side half
// of the distributed density protocol. The last build is cached per
// (version, bandwidths), so steady-state fan-outs hit a ready
// estimator.
func (m *Model) partialEstimator(h []float64) (*kde.ClusterKDE, uint64, error) {
	sum, v, err := m.SummarySnapshot()
	if err != nil {
		return nil, 0, err
	}
	key := bandwidthKey(h)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.partial != nil && m.partialVersion == v && m.partialKey == key {
		return m.partial, v, nil
	}
	opt := m.kdeOpt
	opt.Bandwidths = h
	est, err := kde.NewCluster(sum, opt)
	if err != nil {
		return nil, 0, fmt.Errorf("server: model %q: %w", m.name, err)
	}
	m.partial, m.partialVersion, m.partialKey = est, v, key
	return est, v, nil
}

// bandwidthKey folds explicit bandwidths into a cache key on their
// exact bits.
func bandwidthKey(h []float64) string {
	b := make([]byte, 0, 8*len(h))
	for _, v := range h {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	return string(b)
}

// summarizer returns the micro-cluster summary backing /outliers,
// refreshing it for stream models alongside the estimator.
func (m *Model) summarizer() (*microcluster.Summarizer, error) {
	if m.eng == nil {
		return m.sum, nil
	}
	if _, _, err := m.estimator(); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sum, nil
}

// Checkpoint writes the stream engine to its checkpoint path. It is a
// no-op for non-stream models and stream models without a path.
func (m *Model) Checkpoint() error {
	if m.eng == nil || m.checkpointPath == "" {
		return nil
	}
	f, err := os.Create(m.checkpointPath)
	if err != nil {
		return fmt.Errorf("server: checkpoint %q: %w", m.name, err)
	}
	defer f.Close()
	// The fault point wraps the file, so error plans fail the write
	// outright and truncation plans leave a torn artifact on disk — the
	// recovery path LoadEngine must reject.
	w, err := modelCheckpointFault.Writer(nil, f)
	if err != nil {
		return fmt.Errorf("server: checkpoint %q: %w", m.name, err)
	}
	if err := m.eng.Save(w); err != nil {
		return fmt.Errorf("server: checkpoint %q: %w", m.name, err)
	}
	return f.Close()
}

// Registry is the immutable name → model table the server routes on.
// Models are added before the server starts; lookups are lock-free.
type Registry struct {
	models map[string]*Model
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{models: make(map[string]*Model)}
}

// Add registers a model under its name. Duplicate names are an error.
func (r *Registry) Add(m *Model) error {
	if m.name == "" {
		return fmt.Errorf("server: model with empty name")
	}
	if _, dup := r.models[m.name]; dup {
		return fmt.Errorf("server: duplicate model name %q", m.name)
	}
	r.models[m.name] = m
	return nil
}

// Get looks a model up by name.
func (r *Registry) Get(name string) (*Model, bool) {
	m, ok := r.models[name]
	return m, ok
}

// Names returns the registered model names, sorted.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.models))
	for n := range r.models {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Checkpoint saves every stream model that has a checkpoint path,
// returning the first error after attempting all of them.
func (r *Registry) Checkpoint() error {
	var first error
	for _, n := range r.Names() {
		if err := r.models[n].Checkpoint(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
