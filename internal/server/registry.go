// Package server is the HTTP serving layer over the density-transform
// library: a named model registry, JSON endpoints for classification,
// density evaluation, outlier scoring and stream ingestion, micro-
// batching of concurrent single-point requests onto the parallel batch
// engine, a bounded LRU density cache, per-request timeouts, load
// shedding, and graceful shutdown with stream checkpointing. See
// DESIGN.md ("Serving layer") for the architecture.
package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"os"
	"sort"
	"sync"
	"sync/atomic"

	"udm/internal/core"
	"udm/internal/density"
	"udm/internal/evalopt"
	"udm/internal/kde"
	"udm/internal/kernel"
	"udm/internal/microcluster"
	"udm/internal/stream"
)

// Kind names the artifact type behind a served model.
type Kind string

const (
	// KindTransform serves a trained core.Transform: classify, density
	// and outliers against the global summary.
	KindTransform Kind = "transform"
	// KindSummarizer serves a standalone micro-cluster summary: density
	// and outliers.
	KindSummarizer Kind = "summarizer"
	// KindStream serves a live stream.Engine: ingest plus density and
	// outliers against the evolving summary.
	KindStream Kind = "stream"
)

// Model is one named, servable artifact. All public methods are safe
// for concurrent use: classifiers and estimators are read-only after
// construction, and the mutable stream path (ingest + lazy estimator
// rebuild) is guarded by mu / the engine's own lock.
type Model struct {
	name   string
	kind   Kind
	dims   int
	kdeOpt kde.Options

	clf *core.Classifier // transform kind only

	eng            *stream.Engine // stream kind only
	checkpointPath string         // where Checkpoint saves the engine

	mu         sync.Mutex
	est        *kde.ClusterKDE
	sum        *microcluster.Summarizer
	estVersion uint64 // engine row count the estimator was built at

	// backends lazily caches non-default density backends over the
	// current summary, one per rung; rebuilt wholesale whenever
	// ingestion advances the model version.
	backends        map[evalopt.Backend]density.Backend
	backendsVersion uint64

	// partial caches the shard-side estimator of the distributed
	// density protocol: the current summary under coordinator-supplied
	// explicit bandwidths, rebuilt when ingestion advances the version
	// or a fan-out arrives with different bandwidths.
	partial        *kde.ClusterKDE
	partialVersion uint64
	partialKey     string
}

// NewTransformModel wraps a trained transform: the classifier serves
// /classify and a ClusterKDE over the global summary serves /density
// and /outliers.
func NewTransformModel(name string, t *core.Transform, clfOpt core.ClassifierOptions) (*Model, error) {
	clf, err := core.NewClassifier(t, clfOpt)
	if err != nil {
		return nil, fmt.Errorf("server: model %q: %w", name, err)
	}
	est, err := kde.NewCluster(t.Global(), clfOpt.KDE)
	if err != nil {
		return nil, fmt.Errorf("server: model %q: %w", name, err)
	}
	return &Model{
		name:   name,
		kind:   KindTransform,
		dims:   t.Dims(),
		kdeOpt: clfOpt.KDE,
		clf:    clf,
		est:    est,
		sum:    t.Global(),
	}, nil
}

// NewSummarizerModel wraps a standalone micro-cluster summary for
// density evaluation and outlier scoring.
func NewSummarizerModel(name string, s *microcluster.Summarizer, opt kde.Options) (*Model, error) {
	est, err := kde.NewCluster(s, opt)
	if err != nil {
		return nil, fmt.Errorf("server: model %q: %w", name, err)
	}
	return &Model{
		name:   name,
		kind:   KindSummarizer,
		dims:   s.Dims(),
		kdeOpt: opt,
		est:    est,
		sum:    s,
	}, nil
}

// NewStreamModel wraps a live stream engine. checkpointPath, when
// non-empty, is where Checkpoint (and graceful shutdown) writes the
// engine state. The density estimator is built lazily and rebuilt
// whenever ingestion has advanced the engine since the last build.
func NewStreamModel(name string, eng *stream.Engine, opt kde.Options, checkpointPath string) (*Model, error) {
	if eng == nil {
		return nil, fmt.Errorf("server: model %q: nil stream engine", name)
	}
	return &Model{
		name:           name,
		kind:           KindStream,
		dims:           eng.Dims(),
		kdeOpt:         opt,
		eng:            eng,
		checkpointPath: checkpointPath,
	}, nil
}

// Name returns the registry name.
func (m *Model) Name() string { return m.name }

// Kind returns the artifact kind.
func (m *Model) Kind() Kind { return m.kind }

// Dims returns the model dimensionality.
func (m *Model) Dims() int { return m.dims }

// Classifier returns the classifier, or nil for non-transform kinds.
func (m *Model) Classifier() *core.Classifier { return m.clf }

// Engine returns the live stream engine, or nil for non-stream kinds.
func (m *Model) Engine() *stream.Engine { return m.eng }

// version is the cache-invalidation token: static models are always
// version 0; a stream model's version is its ingested row count, so
// every ingested row retires cached densities.
func (m *Model) version() uint64 {
	if m.eng == nil {
		return 0
	}
	return uint64(m.eng.Count())
}

// estimator returns the current density estimator and the model
// version it reflects, rebuilding a stream model's estimator when
// ingestion has advanced past the cached build. Static models return
// their construction-time estimator unchanged.
func (m *Model) estimator() (*kde.ClusterKDE, uint64, error) {
	if m.eng == nil {
		return m.est, 0, nil
	}
	v := m.version()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.est != nil && m.estVersion == v {
		return m.est, v, nil
	}
	s, err := m.eng.Summarizer()
	if err != nil {
		return nil, 0, fmt.Errorf("server: model %q: %w", m.name, err)
	}
	est, err := kde.NewCluster(s, m.kdeOpt)
	if err != nil {
		return nil, 0, fmt.Errorf("server: model %q: %w", m.name, err)
	}
	m.est, m.sum, m.estVersion = est, s, v
	return est, v, nil
}

// estimatorAt returns the current estimator with the per-request
// accuracy mode applied. Exact requests share the cached estimator
// unchanged; approximate requests get a shallow copy that shares the
// underlying columns, spatial index, and scratch pool, so the override
// costs one small allocation, not a rebuild.
func (m *Model) estimatorAt(acc kernel.AccuracyMode) (*kde.ClusterKDE, error) {
	est, _, err := m.estimator()
	if err != nil {
		return nil, err
	}
	if acc.IsExact() {
		return est, nil
	}
	est, err = est.WithAccuracy(acc)
	if err != nil {
		return nil, fmt.Errorf("server: model %q: %w", m.name, err)
	}
	return est, nil
}

// backendAt returns an estimator for the requested density backend and
// accuracy mode. The default (and explicit exact) backend takes the
// exact same path as before backends existed — the shared ClusterKDE,
// bit-identical answers — while the approximate rungs are built lazily
// over the current summary and cached per backend until ingestion
// advances the model. The accuracy switch is applied last, as a cheap
// per-request view.
func (m *Model) backendAt(bk evalopt.Backend, acc kernel.AccuracyMode) (kde.Estimator, error) {
	if bk == evalopt.BackendDefault || bk == evalopt.BackendExact {
		return m.estimatorAt(acc)
	}
	// Refresh the summary (and version) first; stream models rebuild it
	// here when ingestion has advanced.
	_, v, err := m.estimator()
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	if m.backends == nil || m.backendsVersion != v {
		m.backends = make(map[evalopt.Backend]density.Backend)
		m.backendsVersion = v
	}
	b, ok := m.backends[bk]
	if !ok {
		opt := m.kdeOpt
		opt.Eval.Backend = bk
		b, err = density.FromSummarizer(m.sum, opt)
		if err != nil {
			m.mu.Unlock()
			return nil, fmt.Errorf("server: model %q: %w", m.name, err)
		}
		m.backends[bk] = b
	}
	m.mu.Unlock()
	if acc.IsExact() {
		return b, nil
	}
	bv, err := b.WithAccuracy(acc)
	if err != nil {
		return nil, fmt.Errorf("server: model %q: %w", m.name, err)
	}
	return bv, nil
}

// SummarySnapshot returns the model's current micro-cluster summary
// and the version it reflects — the coordinator-side entry point of
// the distributed density protocol (GET .../summary). Static models
// return their construction-time summary at version 0; stream models
// return a deep snapshot that later ingestion cannot mutate. The
// returned summarizer must be treated as read-only.
func (m *Model) SummarySnapshot() (*microcluster.Summarizer, uint64, error) {
	if m.eng == nil {
		return m.sum, 0, nil
	}
	if _, _, err := m.estimator(); err != nil {
		return nil, 0, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sum, m.estVersion, nil
}

// partialEstimator returns an estimator over the current summary with
// the coordinator's explicit bandwidths in place of the local
// bandwidth rule, plus the version it reflects — the shard-side half
// of the distributed density protocol. The last build is cached per
// (version, bandwidths), so steady-state fan-outs hit a ready
// estimator.
func (m *Model) partialEstimator(h []float64) (*kde.ClusterKDE, uint64, error) {
	sum, v, err := m.SummarySnapshot()
	if err != nil {
		return nil, 0, err
	}
	key := bandwidthKey(h)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.partial != nil && m.partialVersion == v && m.partialKey == key {
		return m.partial, v, nil
	}
	opt := m.kdeOpt
	opt.Bandwidths = h
	est, err := kde.NewCluster(sum, opt)
	if err != nil {
		return nil, 0, fmt.Errorf("server: model %q: %w", m.name, err)
	}
	m.partial, m.partialVersion, m.partialKey = est, v, key
	return est, v, nil
}

// bandwidthKey folds explicit bandwidths into a cache key on their
// exact bits.
func bandwidthKey(h []float64) string {
	b := make([]byte, 0, 8*len(h))
	for _, v := range h {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	return string(b)
}

// summarizer returns the micro-cluster summary backing /outliers,
// refreshing it for stream models alongside the estimator.
func (m *Model) summarizer() (*microcluster.Summarizer, error) {
	if m.eng == nil {
		return m.sum, nil
	}
	if _, _, err := m.estimator(); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sum, nil
}

// Checkpoint writes the stream engine to its checkpoint path. It is a
// no-op for non-stream models and stream models without a path.
func (m *Model) Checkpoint() error {
	if m.eng == nil || m.checkpointPath == "" {
		return nil
	}
	f, err := os.Create(m.checkpointPath)
	if err != nil {
		return fmt.Errorf("server: checkpoint %q: %w", m.name, err)
	}
	defer f.Close()
	// The fault point wraps the file, so error plans fail the write
	// outright and truncation plans leave a torn artifact on disk — the
	// recovery path LoadEngine must reject.
	w, err := modelCheckpointFault.Writer(nil, f)
	if err != nil {
		return fmt.Errorf("server: checkpoint %q: %w", m.name, err)
	}
	if err := m.eng.Save(w); err != nil {
		return fmt.Errorf("server: checkpoint %q: %w", m.name, err)
	}
	return f.Close()
}

// Points returns the number of summarized source points resident in
// the model — the unit the per-tenant resident-point quota is charged
// in. Stream models report their ingested row count; static models the
// point count their summary was built from.
func (m *Model) Points() int {
	if m.eng != nil {
		return m.eng.Count()
	}
	if m.sum != nil {
		return m.sum.Count()
	}
	return 0
}

// DefaultTenant is the namespace the un-prefixed /v1/models/... routes
// alias to. Pre-tenancy clients land here without changing a byte.
const DefaultTenant = "default"

// Hot-swap lifecycle errors. They are registry-level conditions, not
// library sentinels: the handlers map them to 409s with stable codes.
var (
	// ErrNoStaged: promote was called on a slot with nothing staged.
	ErrNoStaged = errors.New("server: no staged version to promote")
	// ErrNoPrevious: rollback was called on a slot that never swapped.
	ErrNoPrevious = errors.New("server: no previous version to roll back to")
)

// servedModel is one published (model, generation) pair. It is the
// unit of atomic hot-swap: readers load the pair with a single atomic
// pointer read, so a request can never observe one version's model
// with another version's generation — the property the version-echo
// headers and the swap atomicity test rely on.
type servedModel struct {
	m      *Model
	tenant string
	gen    uint64 // activation generation, unique per slot, starts at 1
}

// Model returns the published model.
func (sm *servedModel) Model() *Model { return sm.m }

// Tenant returns the namespace the model is published in.
func (sm *servedModel) Tenant() string { return sm.tenant }

// Gen returns the activation generation (echoed as
// X-UDM-Model-Version and folded into density-cache keys).
func (sm *servedModel) Gen() uint64 { return sm.gen }

// qualified renders "name" for the default tenant and "tenant/name"
// otherwise — the form used in spans, errors and breaker metric
// labels, keeping single-tenant dashboards unchanged.
func qualified(tenant, name string) string {
	if tenant == DefaultTenant {
		return name
	}
	return tenant + "/" + name
}

// slot is one (tenant, name) registration: the atomically-published
// active version plus the staged and previous versions the hot-swap
// state machine moves between. mu serializes the writers (stage,
// promote, rollback); readers never take it.
type slot struct {
	active atomic.Pointer[servedModel]

	mu      sync.Mutex
	staged  *Model
	prev    *servedModel // last retired active; rollback target
	lastGen uint64
}

// Registry is the tenant → name → model table the server routes on.
// Lookups take a read lock on the two-level map only; the model behind
// a name is resolved with one atomic load, so a promote concurrent
// with a million in-flight reads is still a single pointer swing.
type Registry struct {
	mu      sync.RWMutex
	tenants map[string]map[string]*slot
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{tenants: make(map[string]map[string]*slot)}
}

// ValidIdent reports whether s is usable as a tenant or model name:
// 1–64 bytes of [A-Za-z0-9._-], excluding the path-traversal names.
// Keeping NUL and '/' out of the charset is what lets cache and dedup
// keys join tenant and name with separators unambiguously.
func ValidIdent(s string) bool {
	if len(s) == 0 || len(s) > 64 || s == "." || s == ".." {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	return true
}

// slotFor returns the slot for (tenant, name), creating it when create
// is set.
func (r *Registry) slotFor(tenant, name string, create bool) *slot {
	if create {
		r.mu.Lock()
		defer r.mu.Unlock()
		ns := r.tenants[tenant]
		if ns == nil {
			ns = make(map[string]*slot)
			r.tenants[tenant] = ns
		}
		sl := ns[name]
		if sl == nil {
			sl = &slot{}
			ns[name] = sl
		}
		return sl
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.tenants[tenant][name]
}

// Add registers a model in the default tenant. Duplicate names are an
// error.
func (r *Registry) Add(m *Model) error {
	return r.AddTenant(DefaultTenant, m)
}

// AddTenant registers a model in tenant's namespace as its immediately
// active (generation 1) version. Duplicates are an error; use Stage +
// Promote to replace a live model.
func (r *Registry) AddTenant(tenant string, m *Model) error {
	if !ValidIdent(tenant) {
		return fmt.Errorf("server: invalid tenant id %q", tenant)
	}
	if !ValidIdent(m.name) {
		return fmt.Errorf("server: invalid model name %q", m.name)
	}
	sl := r.slotFor(tenant, m.name, true)
	sl.mu.Lock()
	defer sl.mu.Unlock()
	if sl.active.Load() != nil || sl.staged != nil {
		return fmt.Errorf("server: duplicate model name %q in tenant %q", m.name, tenant)
	}
	sl.lastGen = 1
	sl.active.Store(&servedModel{m: m, tenant: tenant, gen: 1})
	return nil
}

// Get looks a model up in the default tenant.
func (r *Registry) Get(name string) (*Model, bool) {
	sm, ok := r.Resolve(DefaultTenant, name)
	if !ok {
		return nil, false
	}
	return sm.m, true
}

// Resolve returns the active (model, generation) pair for (tenant,
// name) with a single atomic load — the request-path lookup.
func (r *Registry) Resolve(tenant, name string) (*servedModel, bool) {
	sl := r.slotFor(tenant, name, false)
	if sl == nil {
		return nil, false
	}
	sm := sl.active.Load()
	if sm == nil {
		return nil, false // staged-only slot: not routable until promoted
	}
	return sm, true
}

// Stage installs m as the slot's staged (next) version without
// touching the active one. Staging over an un-promoted staged version
// replaces it. A slot with no active version may be staged into — a
// brand-new model deploys as stage + promote.
func (r *Registry) Stage(tenant, name string, m *Model) error {
	if !ValidIdent(tenant) {
		return fmt.Errorf("server: invalid tenant id %q", tenant)
	}
	if !ValidIdent(name) {
		return fmt.Errorf("server: invalid model name %q", name)
	}
	if m.name != name {
		return fmt.Errorf("server: staging model named %q into slot %q", m.name, name)
	}
	sl := r.slotFor(tenant, name, true)
	sl.mu.Lock()
	defer sl.mu.Unlock()
	sl.staged = m
	return nil
}

// Promote atomically publishes the staged version as active, retiring
// the current active version as the rollback target. It returns the
// newly published pair and the retired one (nil on first promote).
// In-flight requests that resolved before the swap keep the pair they
// loaded — they finish on their version, new requests get the new one,
// and nobody observes a mix.
func (r *Registry) Promote(tenant, name string) (now, old *servedModel, err error) {
	sl := r.slotFor(tenant, name, false)
	if sl == nil {
		return nil, nil, fmt.Errorf("server: model %q tenant %q: %w", name, tenant, ErrNoStaged)
	}
	sl.mu.Lock()
	defer sl.mu.Unlock()
	if sl.staged == nil {
		return nil, nil, fmt.Errorf("server: model %q tenant %q: %w", name, tenant, ErrNoStaged)
	}
	old = sl.active.Load()
	sl.lastGen++
	now = &servedModel{m: sl.staged, tenant: tenant, gen: sl.lastGen}
	sl.active.Store(now)
	sl.prev, sl.staged = old, nil
	return now, old, nil
}

// Rollback atomically republishes the previously active version (the
// one the last Promote retired) under a fresh generation, retiring the
// current active as the new rollback target — so two rollbacks swing
// back and forth. The generation always moves forward: a rollback is a
// new activation, not a return to the old one, which keeps cached
// densities from the first activation from leaking into the second.
func (r *Registry) Rollback(tenant, name string) (now, old *servedModel, err error) {
	sl := r.slotFor(tenant, name, false)
	if sl == nil {
		return nil, nil, fmt.Errorf("server: model %q tenant %q: %w", name, tenant, ErrNoPrevious)
	}
	sl.mu.Lock()
	defer sl.mu.Unlock()
	if sl.prev == nil {
		return nil, nil, fmt.Errorf("server: model %q tenant %q: %w", name, tenant, ErrNoPrevious)
	}
	old = sl.active.Load()
	sl.lastGen++
	now = &servedModel{m: sl.prev.m, tenant: tenant, gen: sl.lastGen}
	sl.active.Store(now)
	sl.prev = old
	return now, old, nil
}

// Staged reports whether (tenant, name) currently has a staged
// version awaiting promote.
func (r *Registry) Staged(tenant, name string) bool {
	sl := r.slotFor(tenant, name, false)
	if sl == nil {
		return false
	}
	sl.mu.Lock()
	defer sl.mu.Unlock()
	return sl.staged != nil
}

// Names returns the default tenant's model names, sorted.
func (r *Registry) Names() []string {
	return r.TenantNames(DefaultTenant)
}

// TenantNames returns tenant's routable (active) model names, sorted.
func (r *Registry) TenantNames(tenant string) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.tenants[tenant]))
	for n, sl := range r.tenants[tenant] {
		if sl.active.Load() != nil {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// Tenants returns every tenant id with at least one slot, sorted.
func (r *Registry) Tenants() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.tenants))
	for t := range r.tenants {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// ModelCount counts tenant's occupied slots (active or staged) — the
// figure the per-tenant model quota is checked against, so a tenant
// cannot dodge its cap by parking models in the staged position.
func (r *Registry) ModelCount(tenant string) int {
	r.mu.RLock()
	slots := make([]*slot, 0, len(r.tenants[tenant]))
	for _, sl := range r.tenants[tenant] {
		slots = append(slots, sl)
	}
	r.mu.RUnlock()
	n := 0
	for _, sl := range slots {
		sl.mu.Lock()
		if sl.active.Load() != nil || sl.staged != nil {
			n++
		}
		sl.mu.Unlock()
	}
	return n
}

// Points sums the resident summarized points across tenant's active
// models, excluding the model named skip (the one a quota check is
// about to replace; "" skips nothing).
func (r *Registry) Points(tenant, skip string) int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var total int64
	for n, sl := range r.tenants[tenant] {
		if n == skip {
			continue
		}
		if sm := sl.active.Load(); sm != nil {
			total += int64(sm.m.Points())
		}
	}
	return total
}

// Checkpoint saves every active stream model (all tenants) that has a
// checkpoint path, returning the first error after attempting all.
func (r *Registry) Checkpoint() error {
	r.mu.RLock()
	tenants := make([]string, 0, len(r.tenants))
	for t := range r.tenants {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	var models []*Model
	for _, t := range tenants {
		ns := r.tenants[t]
		names := make([]string, 0, len(ns))
		for n := range ns {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			if sm := ns[n].active.Load(); sm != nil {
				models = append(models, sm.m)
			}
		}
	}
	r.mu.RUnlock()
	var first error
	for _, m := range models {
		if err := m.Checkpoint(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
