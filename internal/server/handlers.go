package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"

	"udm/internal/evalopt"
	"udm/internal/kde"
	"udm/internal/kernel"
	"udm/internal/obs"
	"udm/internal/outlier"
	"udm/internal/udmerr"
)

// StatusClientClosedRequest is the nginx-convention status for a
// client that disconnected before the response was ready. The client
// never sees it; it keeps access logs honest.
const StatusClientClosedRequest = 499

// errorBody is the uniform error envelope: a stable machine-readable
// code (derived from the library's sentinel errors) plus a human
// message.
type errorBody struct {
	Error errorDetail `json:"error"`
}

type errorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// statusFor maps an error to (HTTP status, stable code) via errors.Is
// on the module's sentinel errors — the serving-layer payoff of the
// error contract: no string matching anywhere.
func statusFor(err error) (int, string) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "timeout"
	case errors.Is(err, context.Canceled):
		return StatusClientClosedRequest, "client_closed_request"
	case errors.Is(err, udmerr.ErrDimensionMismatch):
		return http.StatusBadRequest, "dimension_mismatch"
	case errors.Is(err, udmerr.ErrBadOption):
		return http.StatusBadRequest, "bad_option"
	case errors.Is(err, udmerr.ErrNoErrors):
		return http.StatusBadRequest, "no_errors"
	case errors.Is(err, udmerr.ErrUntrained):
		return http.StatusConflict, "untrained"
	case errors.Is(err, udmerr.ErrStaleVersion):
		return http.StatusConflict, "stale_version"
	case errors.Is(err, udmerr.ErrTailExpired):
		return http.StatusGone, "tail_expired"
	case errors.Is(err, udmerr.ErrShardTimeout):
		return http.StatusGatewayTimeout, "shard_timeout"
	case errors.Is(err, udmerr.ErrCircuitOpen):
		return http.StatusServiceUnavailable, "circuit_open"
	case errors.Is(err, udmerr.ErrDegraded):
		return http.StatusServiceUnavailable, "degraded"
	case errors.Is(err, udmerr.ErrInjected):
		return http.StatusBadGateway, "injected_fault"
	default:
		return http.StatusInternalServerError, "internal"
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, m *Metrics, status int, code, msg string) {
	if m != nil && status >= 400 {
		m.Errors.Add(1)
		switch status {
		case http.StatusGatewayTimeout:
			m.Timeouts.Add(1)
		case StatusClientClosedRequest:
			m.Canceled.Add(1)
		}
	}
	writeJSON(w, status, errorBody{Error: errorDetail{Code: code, Message: msg}})
}

func (s *Server) fail(w http.ResponseWriter, err error) {
	status, code := statusFor(err)
	if status == http.StatusServiceUnavailable {
		// Breaker refusals clear on their own; tell well-behaved clients
		// when to come back.
		w.Header().Set("Retry-After", "1")
	}
	writeError(w, s.metrics, status, code, err.Error())
}

// evalRetry runs one direct (non-coalesced) model evaluation under the
// eval fault point, the slot's circuit breaker, and the server's retry
// budget — the same resilience stack the batched paths get inside their
// flush functions.
func evalRetry[T any](ctx context.Context, s *Server, br *breaker, op func(context.Context) (T, error)) (T, error) {
	return retryDo(ctx, s.retry, br, func(ctx context.Context) (T, error) {
		if err := evalFault.Hit(ctx); err != nil {
			var zero T
			return zero, err
		}
		return op(ctx)
	})
}

// model resolves the request's (tenant, model) pair to the atomically
// published (model, generation) — writing 400 on a bad tenant id and
// 404 on a miss — and stamps the tenant and generation echo headers,
// so every model response is pinned to exactly one version on the
// wire.
func (s *Server) model(w http.ResponseWriter, r *http.Request) (*servedModel, bool) {
	tenant, ok := requestTenant(r)
	if !ok {
		s.badTenant(w, r.PathValue("tenant"))
		return nil, false
	}
	w.Header().Set(TenantHeader, tenant)
	name := r.PathValue("model")
	sm, ok := s.reg.Resolve(tenant, name)
	if !ok {
		writeError(w, s.metrics, http.StatusNotFound, "model_not_found",
			fmt.Sprintf("no model named %q in tenant %q (have %v)", name, tenant, s.reg.TenantNames(tenant)))
		return nil, false
	}
	w.Header().Set(ModelVersionHeader, strconv.FormatUint(sm.gen, 10))
	return sm, true
}

// decode parses a JSON request body, mapping malformed input to a 400.
func decode(w http.ResponseWriter, r *http.Request, m *Metrics, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, m, http.StatusBadRequest, "malformed_json", err.Error())
		return false
	}
	return true
}

// points normalizes the single-point / multi-point request shape and
// validates every row's width against the model, returning a
// dimension-mismatch error (→ 400) on disagreement.
func points(m *Model, point []float64, rows [][]float64) ([][]float64, bool, error) {
	single := false
	if point != nil {
		rows = append([][]float64{point}, rows...)
		single = len(rows) == 1
	}
	if len(rows) == 0 {
		return nil, false, fmt.Errorf("server: no points in request: %w", udmerr.ErrBadOption)
	}
	for i, x := range rows {
		if len(x) != m.Dims() {
			return nil, false, fmt.Errorf("server: point %d has %d dims, model %q has %d: %w",
				i, len(x), m.Name(), m.Dims(), udmerr.ErrDimensionMismatch)
		}
	}
	return rows, single, nil
}

// --- health and introspection ---

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if !s.ready.Load() {
		writeError(w, nil, http.StatusServiceUnavailable, "draining", "server is shutting down")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// handleMetrics serves the metrics document. The default JSON shape
// predates the obs registry and its key set is frozen;
// ?format=prometheus renders the text exposition instead: the
// server-scoped registry followed by the process-wide default registry
// (library and runtime series). The two registries use disjoint
// metric-name prefixes, so concatenation is a valid exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prometheus" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := s.metrics.reg.WritePrometheus(w); err != nil {
			return // client went away mid-scrape; nothing to salvage
		}
		_ = obs.Default().WritePrometheus(w)
		return
	}
	snap := s.metrics.snapshot()
	snap["cache_entries"] = s.cache.len()
	writeJSON(w, http.StatusOK, snap)
}

// handleTraces dumps the tracer's recent-traces ring (newest last).
func (s *Server) handleTraces(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"traces": s.tracer.Recent()})
}

// handleSlow dumps spans that exceeded the slow-request threshold.
func (s *Server) handleSlow(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"threshold_ns": s.opt.SlowRequest.Nanoseconds(),
		"slow":         s.tracer.Slow(),
	})
}

type modelInfo struct {
	Name   string `json:"name"`
	Kind   Kind   `json:"kind"`
	Dims   int    `json:"dims"`
	Count  int    `json:"count,omitempty"`
	Gen    uint64 `json:"gen,omitempty"`
	Staged bool   `json:"staged,omitempty"` // a newer version awaits promote
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	tenant, ok := requestTenant(r)
	if !ok {
		s.badTenant(w, r.PathValue("tenant"))
		return
	}
	w.Header().Set(TenantHeader, tenant)
	names := s.reg.TenantNames(tenant)
	out := make([]modelInfo, 0, len(names))
	for _, n := range names {
		sm, ok := s.reg.Resolve(tenant, n)
		if !ok {
			continue
		}
		info := modelInfo{Name: n, Kind: sm.m.Kind(), Dims: sm.m.Dims(),
			Gen: sm.gen, Staged: s.reg.Staged(tenant, n)}
		if sm.m.Engine() != nil {
			info.Count = sm.m.Engine().Count()
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, map[string]any{"models": out})
}

// --- /v1/models/{model}/classify ---

type classifyRequest struct {
	Point  []float64   `json:"point,omitempty"`
	Points [][]float64 `json:"points,omitempty"`
}

type classifyResponse struct {
	Labels []int `json:"labels"`
	Label  *int  `json:"label,omitempty"` // set for single-point requests
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	sm, ok := s.model(w, r)
	if !ok {
		return
	}
	m := sm.m
	clf := m.Classifier()
	if clf == nil {
		writeError(w, s.metrics, http.StatusBadRequest, "unsupported_kind",
			fmt.Sprintf("model %q is a %s; /classify needs a transform model", m.Name(), m.Kind()))
		return
	}
	var req classifyRequest
	if !decode(w, r, s.metrics, &req) {
		return
	}
	rows, single, err := points(m, req.Point, req.Points)
	if err != nil {
		s.fail(w, err)
		return
	}
	var labels []int
	if single {
		// Coalesce concurrent single-point requests into one batched
		// call on the worker pool.
		label, err := s.runtime(sm).classify.do(r.Context(), rows[0])
		if err != nil {
			s.fail(w, err)
			return
		}
		labels = []int{label}
	} else {
		labels, err = evalRetry(r.Context(), s, s.breakerFor(sm.tenant, m.Name()), func(ctx context.Context) ([]int, error) {
			return clf.ClassifyBatchContext(ctx, rows, s.opt.Workers)
		})
		if err != nil {
			s.fail(w, err)
			return
		}
	}
	resp := classifyResponse{Labels: labels}
	if single {
		resp.Label = &labels[0]
	}
	writeJSON(w, http.StatusOK, resp)
}

// --- /v1/models/{model}/density ---

type densityRequest struct {
	Point  []float64   `json:"point,omitempty"`
	Points [][]float64 `json:"points,omitempty"`
	Dims   []int       `json:"dims,omitempty"`
	// Accuracy selects the evaluation mode: "" or "exact" (default) for
	// bit-exact densities, "approx" for the bounded-error fast path with
	// relative error at most Epsilon (default 1e-6 when omitted).
	Accuracy string  `json:"accuracy,omitempty"`
	Epsilon  float64 `json:"epsilon,omitempty"`
	// Backend selects the density backend: "" or "exact" (default) for
	// the bit-exact engine, or "hbe", "grid", "micro" for the bounded-
	// error approximate rungs. The X-UDM-Backend request header is the
	// fallback when this field is empty; the JSON field wins when both
	// are set.
	Backend string `json:"backend,omitempty"`
}

type densityResponse struct {
	Densities []float64 `json:"densities"`
	Density   *float64  `json:"density,omitempty"` // set for single-point requests
	Cached    bool      `json:"cached,omitempty"`
	// Degraded marks a stale answer served because the model's circuit
	// breaker was open; such responses also carry the X-UDM-Degraded
	// header. Absent on every healthy response.
	Degraded bool `json:"degraded,omitempty"`
	// Coverage is set by the distributed front tier on degraded partial
	// answers: the fraction of the model's summarized mass the
	// surviving shards contributed, in (0, 1). Absent on every complete
	// answer.
	Coverage float64 `json:"coverage,omitempty"`
}

func (s *Server) handleDensity(w http.ResponseWriter, r *http.Request) {
	sm, ok := s.model(w, r)
	if !ok {
		return
	}
	m := sm.m
	var req densityRequest
	if !decode(w, r, s.metrics, &req) {
		return
	}
	rows, single, err := points(m, req.Point, req.Points)
	if err != nil {
		s.fail(w, err)
		return
	}
	for _, j := range req.Dims {
		if j < 0 || j >= m.Dims() {
			s.fail(w, fmt.Errorf("server: subspace dimension %d out of range [0,%d): %w",
				j, m.Dims(), udmerr.ErrDimensionMismatch))
			return
		}
	}
	acc, ok := kernel.ParseAccuracy(req.Accuracy, req.Epsilon)
	if !ok {
		s.fail(w, fmt.Errorf("server: accuracy %q with epsilon %v is not a valid mode (want \"exact\" or \"approx\" with epsilon > 0): %w",
			req.Accuracy, req.Epsilon, udmerr.ErrBadOption))
		return
	}
	// Backend selection: JSON field first, X-UDM-Backend header as the
	// fallback. Responses echo the backend header only when one was
	// explicitly requested, so default responses stay byte-identical to
	// the pre-backend wire format.
	bkName := req.Backend
	if bkName == "" {
		bkName = r.Header.Get("X-UDM-Backend")
	}
	bk, err := evalopt.ParseBackend(bkName)
	if err != nil {
		s.fail(w, fmt.Errorf("server: %w", err))
		return
	}
	w.Header().Set("X-UDM-Accuracy", acc.String())
	if bkName != "" {
		w.Header().Set("X-UDM-Backend", string(bk))
	}
	if single {
		d, cached, degraded, err := s.densityOne(r.Context(), sm, rows[0], req.Dims, bk, acc)
		if err != nil {
			s.fail(w, err)
			return
		}
		if degraded {
			w.Header().Set("X-UDM-Degraded", "stale")
		}
		writeJSON(w, http.StatusOK, densityResponse{Densities: []float64{d}, Density: &d, Cached: cached, Degraded: degraded})
		return
	}
	ds, err := evalRetry(r.Context(), s, s.breakerFor(sm.tenant, m.Name()), func(ctx context.Context) ([]float64, error) {
		est, err := m.backendAt(bk, acc)
		if err != nil {
			return nil, err
		}
		return kde.DensityBatchOpts(est, rows, req.Dims, kde.BatchOptions{Ctx: ctx, Workers: s.opt.Workers})
	})
	if err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, densityResponse{Densities: ds})
}

// staleVersion is the sentinel model version keying the stale cache.
// Degraded mode deliberately ignores model versioning: a stale answer
// that survived ingestion is exactly what a tripped model can still
// serve.
const staleVersion = ^uint64(0)

// densityOne serves one density query through the LRU cache and, for
// full-dimensional exact queries on the exact backend, the
// micro-batcher. Subset, approximate, and non-default-backend queries
// bypass coalescing (one batch shares one dims slice, one accuracy
// mode, and one backend) but still hit the cache. Cache keys are
// segmented by tenant and activation generation (two tenants' — or two
// versions' — identical float batches are different answers) and by
// accuracy and backend so answers from different rungs never alias;
// the default and explicit-exact backends share the pre-backend key
// format (they are bit-identical by contract). The stale key drops the
// generation along with the version — degraded continuity across swaps
// is deliberate — but never the tenant. When
// the model's circuit breaker refuses the evaluation, the stale cache
// answers instead (degraded=true); with no stale entry either, the
// request fails with ErrDegraded.
func (s *Server) densityOne(ctx context.Context, sm *servedModel, x []float64, dims []int, bk evalopt.Backend, acc kernel.AccuracyMode) (d float64, cached, degraded bool, err error) {
	m := sm.m
	exactBackend := bk == evalopt.BackendDefault || bk == evalopt.BackendExact
	mode := acc.String()
	if !exactBackend {
		mode = string(bk) + ":" + mode
	}
	key := cacheKey(sm.tenant, m.Name(), sm.gen, m.version(), mode, dims, x, s.opt.CacheQuantum)
	skey := cacheKey(sm.tenant, m.Name(), 0, staleVersion, mode, dims, x, s.opt.CacheQuantum)
	if ferr := cacheGetFault.Hit(ctx); ferr == nil {
		if d, ok := s.cache.get(key); ok {
			s.metrics.CacheHits.Add(1)
			return d, true, false, nil
		}
		s.metrics.CacheMisses.Add(1)
	} // an unavailable cache is a miss, never a failure
	if exactBackend && dims == nil && acc.IsExact() {
		d, err = s.runtime(sm).density.do(ctx, x)
	} else {
		d, err = evalRetry(ctx, s, s.breakerFor(sm.tenant, m.Name()), func(ctx context.Context) (float64, error) {
			est, err := m.backendAt(bk, acc)
			if err != nil {
				return 0, err
			}
			ds, err := kde.DensityBatchOpts(est, [][]float64{x}, dims, kde.BatchOptions{Ctx: ctx, Workers: 1})
			if err != nil {
				return 0, err
			}
			return ds[0], nil
		})
	}
	if err != nil {
		if errors.Is(err, udmerr.ErrCircuitOpen) {
			if d, ok := s.stale.get(skey); ok {
				s.metrics.Degraded.Add(1)
				return d, true, true, nil
			}
			return 0, false, false, fmt.Errorf("server: model %q circuit open and no stale density for this point: %w",
				m.Name(), udmerr.ErrDegraded)
		}
		return 0, false, false, err
	}
	s.cache.put(key, d)
	s.stale.put(skey, d)
	return d, false, false, nil
}

// --- /v1/models/{model}/outliers ---

type outliersRequest struct {
	Points        [][]float64 `json:"points"`
	Errors        [][]float64 `json:"errors,omitempty"`
	Dims          []int       `json:"dims,omitempty"`
	Contamination float64     `json:"contamination,omitempty"`
}

type outliersResponse struct {
	Scores    []float64 `json:"scores"`
	Outliers  []bool    `json:"outliers"`
	Threshold float64   `json:"threshold"`
}

func (s *Server) handleOutliers(w http.ResponseWriter, r *http.Request) {
	sm, ok := s.model(w, r)
	if !ok {
		return
	}
	m := sm.m
	var req outliersRequest
	if !decode(w, r, s.metrics, &req) {
		return
	}
	rows, _, err := points(m, nil, req.Points)
	if err != nil {
		s.fail(w, err)
		return
	}
	for i, er := range req.Errors {
		if er != nil && len(er) != m.Dims() {
			s.fail(w, fmt.Errorf("server: error row %d has %d dims, model %q has %d: %w",
				i, len(er), m.Name(), m.Dims(), udmerr.ErrDimensionMismatch))
			return
		}
	}
	sum, err := m.summarizer()
	if err != nil {
		s.fail(w, err)
		return
	}
	opt := outlier.Options{
		Contamination: req.Contamination,
		Dims:          req.Dims,
		KDE:           m.kdeOpt,
	}
	if req.Errors != nil {
		// Folding per-query error bars into the score requires the
		// error-adjusted kernel.
		opt.UseQueryError = true
		opt.KDE.ErrorAdjust = true
	}
	res, err := evalRetry(r.Context(), s, s.breakerFor(sm.tenant, m.Name()), func(context.Context) (*outlier.Result, error) {
		return outlier.DetectStream(sum, rows, req.Errors, opt)
	})
	if err != nil {
		s.fail(w, err)
		return
	}
	// Scores are -log density, so a point far from every cluster scores
	// +Inf — which JSON cannot carry. Clamp non-finite values to the
	// float64 extremes; the outlier flags are computed upstream from the
	// unclamped scores.
	scores := make([]float64, len(res.Scores))
	for i, v := range res.Scores {
		scores[i] = finite(v)
	}
	writeJSON(w, http.StatusOK, outliersResponse{
		Scores:    scores,
		Outliers:  res.Outlier,
		Threshold: finite(res.Threshold),
	})
}

// finite clamps ±Inf (and NaN, mapped to +MaxFloat64 as "maximally
// outlying") into the JSON-representable float64 range.
func finite(v float64) float64 {
	switch {
	case math.IsInf(v, -1):
		return -math.MaxFloat64
	case math.IsInf(v, 1), math.IsNaN(v):
		return math.MaxFloat64
	}
	return v
}

// --- /v1/models/{model}/ingest ---

type ingestRequest struct {
	Points     [][]float64 `json:"points"`
	Errors     [][]float64 `json:"errors,omitempty"`
	Timestamps []int64     `json:"timestamps,omitempty"`
}

type ingestResponse struct {
	Ingested int `json:"ingested"`
	Count    int `json:"count"`
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	sm, ok := s.model(w, r)
	if !ok {
		return
	}
	m := sm.m
	eng := m.Engine()
	if eng == nil {
		writeError(w, s.metrics, http.StatusBadRequest, "unsupported_kind",
			fmt.Sprintf("model %q is a %s; /ingest needs a stream model", m.Name(), m.Kind()))
		return
	}
	var req ingestRequest
	if !decode(w, r, s.metrics, &req) {
		return
	}
	rows, _, err := points(m, nil, req.Points)
	if err != nil {
		s.fail(w, err)
		return
	}
	if req.Errors != nil && len(req.Errors) != len(rows) {
		s.fail(w, fmt.Errorf("server: %d error rows for %d points: %w",
			len(req.Errors), len(rows), udmerr.ErrDimensionMismatch))
		return
	}
	if req.Timestamps != nil && len(req.Timestamps) != len(rows) {
		s.fail(w, fmt.Errorf("server: %d timestamps for %d points: %w",
			len(req.Timestamps), len(rows), udmerr.ErrDimensionMismatch))
		return
	}
	for i, er := range req.Errors {
		if er != nil && len(er) != m.Dims() {
			s.fail(w, fmt.Errorf("server: error row %d has %d dims, model %q has %d: %w",
				i, len(er), m.Name(), m.Dims(), udmerr.ErrDimensionMismatch))
			return
		}
	}
	// The resident-point quota is checked against the tenant's current
	// footprint plus this batch; a batch that would cross the cap is
	// refused whole rather than partially applied.
	if q := s.quotaFor(sm.tenant); q.MaxPoints > 0 &&
		s.reg.Points(sm.tenant, "")+int64(len(rows)) > q.MaxPoints {
		writeError(w, s.metrics, http.StatusTooManyRequests, "quota_exceeded",
			fmt.Sprintf("ingesting %d points would exceed tenant %q point quota (%d)",
				len(rows), sm.tenant, q.MaxPoints))
		return
	}
	// A keyed batch already applied once (its response was lost and the
	// client retried) is acknowledged again, never re-applied — see
	// idempotency.go. Keys are scoped per (tenant, model).
	var dedupKey string
	if key := r.Header.Get(IdempotencyHeader); key != "" {
		dedupKey = sm.tenant + "\x00" + m.Name() + "\x00" + key
		if resp, dup := s.ingestSeen.get(dedupKey); dup {
			s.metrics.IngestDeduped.Add(1)
			writeJSON(w, http.StatusOK, resp)
			return
		}
	}
	base := int64(eng.Count())
	for i, x := range rows {
		var er []float64
		if req.Errors != nil {
			er = req.Errors[i]
		}
		ts := base + int64(i) + 1
		if req.Timestamps != nil {
			ts = req.Timestamps[i]
		}
		eng.Add(x, er, ts)
	}
	s.metrics.IngestedRows.Add(int64(len(rows)))
	resp := ingestResponse{Ingested: len(rows), Count: eng.Count()}
	if dedupKey != "" {
		s.ingestSeen.put(dedupKey, resp)
	}
	writeJSON(w, http.StatusOK, resp)
}
