package server

import (
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"

	"udm/internal/kde"
	"udm/internal/stream"
)

// fuzzServer is built once per fuzz worker process: a tiny stream
// model under both the default tenant and tenant "t1", cheap enough
// that thousands of fuzz executions stay fast.
var (
	fuzzOnce sync.Once
	fuzzTS   *httptest.Server
)

func fuzzTarget(t testing.TB) *httptest.Server {
	t.Helper()
	fuzzOnce.Do(func() {
		reg := NewRegistry()
		for _, tenant := range []string{DefaultTenant, "t1"} {
			eng, err := stream.NewEngine(stream.Options{MicroClusters: 4, Dims: 2})
			if err != nil {
				panic(err)
			}
			for i := 0; i < 12; i++ {
				eng.Add([]float64{float64(i % 3), float64(i % 4)}, nil, int64(i+1))
			}
			m, err := NewStreamModel("live", eng, kde.Options{}, "")
			if err != nil {
				panic(err)
			}
			if err := reg.AddTenant(tenant, m); err != nil {
				panic(err)
			}
		}
		fuzzTS = httptest.NewServer(New(reg, Options{BatchDelay: -1}).Handler())
	})
	return fuzzTS
}

// FuzzTenantPath throws adversarial tenant and model identifiers at
// the namespaced routing surface. Properties: the server never
// panics (a panic kills the httptest server and surfaces as a
// transport error), invalid tenants never reach a handler (they answer
// 400 bad_tenant or fall off the route table as 404), and whenever a
// request is served its tenant echo matches exactly the tenant it was
// addressed to.
func FuzzTenantPath(f *testing.F) {
	f.Add("default", "live")
	f.Add("t1", "live")
	f.Add("t1", "nope")
	f.Add("..", "live")
	f.Add(".", "x")
	f.Add("", "")
	f.Add("a/b", "live")
	f.Add("tenant\x00zero", "live")
	f.Add("ünïcode", "live")
	f.Add(strings.Repeat("x", 65), "live")
	f.Add("t1", "model name with spaces")
	f.Add("%2e%2e", "live")
	f.Add("t1", "..%2f..")

	f.Fuzz(func(t *testing.T, tenant, model string) {
		ts := fuzzTarget(t)
		u := ts.URL + "/v1/t/" + url.PathEscape(tenant) + "/models/" + url.PathEscape(model) + "/density"
		resp, err := http.Post(u, "application/json", strings.NewReader(`{"point":[0.5,0.5]}`))
		if err != nil {
			t.Fatalf("transport error (did the server panic?): %v", err)
		}
		defer resp.Body.Close()

		switch resp.StatusCode {
		case http.StatusOK:
			if !ValidIdent(tenant) {
				t.Fatalf("invalid tenant %q was served", tenant)
			}
			if !ValidIdent(model) {
				t.Fatalf("invalid model %q was served", model)
			}
			if echo := resp.Header.Get(TenantHeader); echo != tenant {
				t.Fatalf("served tenant %q but echoed %q", tenant, echo)
			}
		case http.StatusBadRequest:
			// bad_tenant / bad_option — fine, nothing was served.
		case http.StatusNotFound:
			// Unknown tenant/model, or the escaped path fell off the route
			// table entirely — either way nothing was served.
		case http.StatusMovedPermanently, http.StatusTemporaryRedirect, http.StatusPermanentRedirect,
			http.StatusMethodNotAllowed:
			// net/http cleans dot-segment paths before routing (redirect,
			// or a method mismatch against whatever route the cleaned path
			// lands on); the request never reached a tenant handler.
		default:
			t.Fatalf("tenant %q model %q -> unexpected status %d", tenant, model, resp.StatusCode)
		}
	})
}
