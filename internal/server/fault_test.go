package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"udm/internal/faultinject"
	"udm/internal/stream"
	"udm/internal/udmerr"
)

// resilientOptions are the fault-matrix defaults: no coalescing window
// (deterministic per-request flushes), no wall-clock retry sleeps worth
// noticing, and a two-failure breaker so tests trip it quickly.
func resilientOptions() Options {
	return Options{
		BatchDelay:       -1,
		RetryBase:        50 * time.Microsecond,
		RetryCap:         200 * time.Microsecond,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour, // tests advance a fake clock instead
	}
}

// postRaw posts body and returns (status, headers, raw body) — the
// bit-identity assertions compare exact bytes, not decoded floats.
func postRaw(t testing.TB, url, body string) (int, http.Header, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, string(raw)
}

// TestFaultRetryIsTransparent: one injected transient eval failure is
// absorbed by the retry layer — the client sees a 200 whose body is
// byte-identical to a server that never faulted.
func TestFaultRetryIsTransparent(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	clean := testServer(t, resilientOptions(), "")
	faulty := testServer(t, resilientOptions(), "")
	tsClean := httptest.NewServer(clean.Handler())
	defer tsClean.Close()
	tsFaulty := httptest.NewServer(faulty.Handler())
	defer tsFaulty.Close()

	for _, req := range []struct{ path, body string }{
		{"/v1/models/blobs/density", `{"point":[0.5,-0.25]}`},
		{"/v1/models/blobs/density", `{"points":[[0.5,-0.25],[1,1],[-2,0.5]]}`},
		{"/v1/models/blobs/classify", `{"point":[0.5,-0.25]}`},
		{"/v1/models/blobs/classify", `{"points":[[3,0],[-3,0]]}`},
		{"/v1/models/blobs/outliers", `{"points":[[0,0],[50,50]]}`},
	} {
		faultinject.Reset()
		wantStatus, _, wantBody := postRaw(t, tsClean.URL+req.path, req.body)
		if wantStatus != http.StatusOK {
			t.Fatalf("clean server: %s -> %d %s", req.path, wantStatus, wantBody)
		}
		// One transient failure on the next evaluation.
		if err := faultinject.Arm("server.model.eval", faultinject.Spec{Times: 1}); err != nil {
			t.Fatal(err)
		}
		gotStatus, _, gotBody := postRaw(t, tsFaulty.URL+req.path, req.body)
		if gotStatus != http.StatusOK {
			t.Fatalf("faulty server: %s -> %d %s", req.path, gotStatus, gotBody)
		}
		if gotBody != wantBody {
			t.Fatalf("%s %s: recovered response diverged:\n  clean:  %s\n  faulty: %s", req.path, req.body, wantBody, gotBody)
		}
	}
	if got := faulty.Metrics().Retries.Load(); got == 0 {
		t.Error("udm_retry_total stayed 0 across five recovered faults")
	}
	if got := clean.Metrics().Retries.Load(); got != 0 {
		t.Errorf("clean server retried %d times", got)
	}
}

// TestFaultExhaustedRetriesSurface: a persistently-failing evaluation
// exhausts the retry budget and surfaces as 502 injected_fault, with
// errors.Is-able sentinel mapping.
func TestFaultExhaustedRetriesSurface(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	opt := resilientOptions()
	opt.RetryMax = 1
	opt.BreakerThreshold = -1 // isolate the retry layer
	s := testServer(t, opt, "")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if err := faultinject.Arm("server.model.eval", faultinject.Spec{}); err != nil {
		t.Fatal(err)
	}
	status, code := errCode(t, ts.URL+"/v1/models/blobs/classify", map[string]any{"points": [][]float64{{1, 1}}})
	if status != http.StatusBadGateway || code != "injected_fault" {
		t.Fatalf("persistent eval fault -> %d %q, want 502 injected_fault", status, code)
	}
	// 1 original attempt + 1 retry, each consuming one fault firing.
	if fired := faultinject.Fired("server.model.eval"); fired != 2 {
		t.Errorf("eval site fired %d times, want 2 (attempt + 1 retry)", fired)
	}
}

// TestFaultBatcherFlush: a fault at the flush site fails the whole
// coalesced batch; the waiter sees 502 injected_fault.
func TestFaultBatcherFlush(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	s := testServer(t, resilientOptions(), "")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if err := faultinject.Arm("server.batcher.flush", faultinject.Spec{Times: 1}); err != nil {
		t.Fatal(err)
	}
	status, code := errCode(t, ts.URL+"/v1/models/blobs/density", map[string]any{"point": []float64{0, 0}})
	if status != http.StatusBadGateway || code != "injected_fault" {
		t.Fatalf("flush fault -> %d %q, want 502 injected_fault", status, code)
	}
	// The budgeted fault is spent; service resumes untouched.
	status, _, _ = postRaw(t, ts.URL+"/v1/models/blobs/density", `{"point":[0,0]}`)
	if status != http.StatusOK {
		t.Fatalf("after fault budget: %d, want 200", status)
	}
}

// TestFaultCacheUnavailableIsMiss: an unavailable density cache must
// degrade to cache misses — same answers, no failures, no false hits.
func TestFaultCacheUnavailableIsMiss(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	s := testServer(t, resilientOptions(), "")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body := `{"point":[0.5,-0.25]}`
	_, _, first := postRaw(t, ts.URL+"/v1/models/blobs/density", body)
	if err := faultinject.Arm("server.cache.get", faultinject.Spec{}); err != nil {
		t.Fatal(err)
	}
	hitsBefore := s.Metrics().CacheHits.Load()
	status, _, second := postRaw(t, ts.URL+"/v1/models/blobs/density", body)
	if status != http.StatusOK {
		t.Fatalf("cache fault -> %d, want 200", status)
	}
	if second != first {
		t.Fatalf("cache-bypassed answer diverged:\n  %s\n  %s", first, second)
	}
	if got := s.Metrics().CacheHits.Load(); got != hitsBefore {
		t.Errorf("cache hits advanced (%d -> %d) while the cache was faulted", hitsBefore, got)
	}
}

// TestFaultParallelChunk: a fault inside the worker pool's chunk
// dispatch propagates out of the batch APIs like any chunk error and
// surfaces as 502 once retries are exhausted.
func TestFaultParallelChunk(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	opt := resilientOptions()
	opt.RetryMax = -1
	opt.BreakerThreshold = -1
	s := testServer(t, opt, "")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if err := faultinject.Arm("parallel.chunk", faultinject.Spec{}); err != nil {
		t.Fatal(err)
	}
	status, code := errCode(t, ts.URL+"/v1/models/blobs/density", map[string]any{"points": [][]float64{{0, 0}, {1, 1}}})
	if status != http.StatusBadGateway || code != "injected_fault" {
		t.Fatalf("chunk fault -> %d %q, want 502 injected_fault", status, code)
	}
}

// TestFaultBreakerAndDegradedMode drives the full breaker lifecycle on
// the stream model: trip under injected eval failures, refuse fast
// while open, serve stale densities in degraded mode, probe half-open
// after the cooldown, and close again on success.
func TestFaultBreakerAndDegradedMode(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	opt := resilientOptions()
	opt.RetryMax = -1 // each request = one breaker-visible attempt
	s := testServer(t, opt, "")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Deterministic breaker clock.
	var mu sync.Mutex
	now := time.Unix(1_000_000, 0)
	br := s.breakerFor(DefaultTenant, "live")
	br.now = func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	primed := `{"point":[0.5,0.5]}`
	// Healthy request primes the exact and stale caches.
	status, hdr, healthyBody := postRaw(t, ts.URL+"/v1/models/live/density", primed)
	if status != http.StatusOK {
		t.Fatalf("prime: %d", status)
	}
	if hdr.Get("X-UDM-Degraded") != "" {
		t.Fatal("healthy response carries X-UDM-Degraded")
	}
	// Ingest one row: the model version advances, so the exact cache
	// entry for the primed point is retired — only the stale cache
	// (version-agnostic by design) still holds it.
	if st := postJSON(t, ts.URL+"/v1/models/live/ingest", map[string]any{"points": [][]float64{{4, 4}}}, nil); st != http.StatusOK {
		t.Fatalf("ingest: %d", st)
	}

	// Two consecutive injected failures trip the breaker.
	if err := faultinject.Arm("server.model.eval", faultinject.Spec{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		status, code := errCode(t, ts.URL+"/v1/models/live/density", map[string]any{"points": [][]float64{{1, float64(i)}}})
		if status != http.StatusBadGateway || code != "injected_fault" {
			t.Fatalf("trip request %d -> %d %q", i, status, code)
		}
	}
	if got := br.currentState(); got != breakerOpen {
		t.Fatalf("breaker state after threshold failures = %v, want open", got)
	}

	// Open breaker: batch requests are refused fast with 503 circuit_open
	// and a Retry-After hint; the armed eval fault is no longer even
	// reached.
	firedBefore := faultinject.Fired("server.model.eval")
	resp, err := http.Post(ts.URL+"/v1/models/live/density", "application/json",
		strings.NewReader(`{"points":[[2,2]]}`))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(raw), "circuit_open") {
		t.Fatalf("open breaker -> %d %s, want 503 circuit_open", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 circuit_open without Retry-After")
	}
	if faultinject.Fired("server.model.eval") != firedBefore {
		t.Error("open breaker still reached the model evaluation")
	}

	// Degraded mode: the primed point is served from the stale cache
	// with the degraded marker; an unprimed point cannot be served at
	// all.
	status, hdr, degradedBody := postRaw(t, ts.URL+"/v1/models/live/density", primed)
	if status != http.StatusOK {
		t.Fatalf("degraded serve -> %d %s", status, degradedBody)
	}
	if hdr.Get("X-UDM-Degraded") != "stale" {
		t.Fatalf("degraded response header = %q, want %q", hdr.Get("X-UDM-Degraded"), "stale")
	}
	if !strings.Contains(degradedBody, `"degraded":true`) {
		t.Fatalf("degraded body missing marker: %s", degradedBody)
	}
	if !strings.Contains(degradedBody, healthyBody[strings.Index(healthyBody, `"densities"`):strings.Index(healthyBody, `,`)]) {
		t.Fatalf("stale density diverged from the healthy answer:\n  healthy:  %s\n  degraded: %s", healthyBody, degradedBody)
	}
	if s.Metrics().Degraded.Load() == 0 {
		t.Error("udm_server_degraded_total stayed 0 after a degraded serve")
	}
	status, code := errCode(t, ts.URL+"/v1/models/live/density", map[string]any{"point": []float64{9.25, -9.5}})
	if status != http.StatusServiceUnavailable || code != "degraded" {
		t.Fatalf("unprimed degraded point -> %d %q, want 503 degraded", status, code)
	}

	// The breaker state is visible on the Prometheus surface.
	expo := getBody(t, ts.URL+"/metrics?format=prometheus")
	if !strings.Contains(expo, `udm_breaker_state{model="live"} 1`) {
		t.Errorf("exposition missing open breaker gauge:\n%s", grepLines(expo, "udm_breaker"))
	}

	// Cooldown elapses, the fault is cleared: the next request is the
	// half-open probe, succeeds, and closes the breaker.
	faultinject.Reset()
	advance(2 * time.Hour)
	status, hdr, _ = postRaw(t, ts.URL+"/v1/models/live/density", primed)
	if status != http.StatusOK || hdr.Get("X-UDM-Degraded") != "" {
		t.Fatalf("post-cooldown probe -> %d degraded=%q, want healthy 200", status, hdr.Get("X-UDM-Degraded"))
	}
	if got := br.currentState(); got != breakerClosed {
		t.Fatalf("breaker state after successful probe = %v, want closed", got)
	}
}

// TestFaultCheckpointWrite: error plans fail the server-side checkpoint
// write with the sentinel; truncation plans tear the artifact on disk
// in a way the loader must reject; a clean retry then round-trips.
func TestFaultCheckpointWrite(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	dir := t.TempDir()
	s := testServer(t, resilientOptions(), dir)
	path := filepath.Join(dir, "live.gob")

	if err := faultinject.Arm("server.checkpoint.write", faultinject.Spec{Times: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.reg.Checkpoint(); !errors.Is(err, udmerr.ErrInjected) {
		t.Fatalf("faulted checkpoint = %v, want ErrInjected", err)
	}

	if err := faultinject.Arm("server.checkpoint.write", faultinject.Spec{Truncate: 32, Times: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.reg.Checkpoint(); !errors.Is(err, udmerr.ErrInjected) {
		t.Fatalf("truncated checkpoint = %v, want ErrInjected", err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	_, loadErr := stream.LoadEngine(f)
	f.Close()
	if loadErr == nil {
		t.Fatal("loading a torn checkpoint succeeded")
	}

	faultinject.Reset()
	if err := s.reg.Checkpoint(); err != nil {
		t.Fatalf("clean checkpoint after faults: %v", err)
	}
	f, err = os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	eng, err := stream.LoadEngine(f)
	if err != nil {
		t.Fatalf("clean checkpoint does not load: %v", err)
	}
	if eng.Count() == 0 {
		t.Fatal("recovered engine is empty")
	}
}

// TestBatcherCancelledBeforeFlushNotExecuted is the regression test for
// the coalesce/flush cancellation race: a request whose context ends
// between coalescing and the (latency-injected) flush must observe its
// own cancellation, and the batch — whose every member is gone — must
// not execute or retry the work.
func TestBatcherCancelledBeforeFlushNotExecuted(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	if err := faultinject.Arm("server.batcher.flush", faultinject.Spec{Delay: 50 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int32
	b := newBatcher(context.Background(), 8, time.Millisecond, nil,
		func(ctx context.Context, reqs []int) ([]int, error) {
			calls.Add(1)
			return nil, fmt.Errorf("boom: %w", udmerr.ErrInjected) // retryable if anyone acted on it
		})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond) // inside the injected flush latency
		cancel()
	}()
	_, err := b.do(ctx, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter got %v, want context.Canceled", err)
	}
	time.Sleep(60 * time.Millisecond) // let the flush goroutine finish
	if got := calls.Load(); got != 0 {
		t.Fatalf("batch executed %d times for a fully-cancelled membership, want 0", got)
	}
}

// TestBatcherLateErrorDoesNotMaskCancellation: when the batch result
// and the waiter's cancellation are simultaneously ready, the waiter
// must always report the cancellation — never the (retryable) batch
// error — regardless of which select arm fires.
func TestBatcherLateErrorDoesNotMaskCancellation(t *testing.T) {
	for i := 0; i < 50; i++ {
		release := make(chan struct{})
		b := newBatcher(context.Background(), 1, 0, nil,
			func(ctx context.Context, reqs []int) ([]int, error) {
				<-release
				return nil, fmt.Errorf("late boom: %w", udmerr.ErrInjected)
			})
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() {
			_, err := b.do(ctx, 1)
			done <- err
		}()
		time.Sleep(time.Millisecond) // let the waiter coalesce and flush
		cancel()
		close(release)
		if err := <-done; !errors.Is(err, context.Canceled) {
			t.Fatalf("iteration %d: cancelled waiter surfaced %v, want context.Canceled", i, err)
		}
	}
}

// TestRetrierBackoffDeterministic: the decorrelated-jitter schedule is
// a pure function of the seed, and every draw lands in [base, cap].
func TestRetrierBackoffDeterministic(t *testing.T) {
	schedule := func(seed int64) []time.Duration {
		opt := Options{RetrySeed: seed, RetryBase: time.Millisecond, RetryCap: 50 * time.Millisecond}.withDefaults()
		r := newRetrier(opt, newMetrics().Retries)
		prev := r.base
		out := make([]time.Duration, 16)
		for i := range out {
			out[i] = r.backoff(&prev)
		}
		return out
	}
	a, b := schedule(7), schedule(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d: %v vs %v", i, a[i], b[i])
		}
		if a[i] < time.Millisecond || a[i] > 50*time.Millisecond {
			t.Fatalf("draw %d = %v outside [base, cap]", i, a[i])
		}
	}
	c := schedule(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical backoff schedules")
	}
}

// TestBreakerStateMachine drives the automaton directly with a fake
// clock: closed → open at the threshold, refusals while cooling,
// half-open probe gating, reopen on probe failure, close after the
// required consecutive successes.
func TestBreakerStateMachine(t *testing.T) {
	opt := Options{BreakerThreshold: 3, BreakerCooldown: time.Minute, BreakerProbes: 2}.withDefaults()
	b := newBreaker("m", opt, newMetrics().reg)
	now := time.Unix(0, 0)
	b.now = func() time.Time { return now }

	ok := func() {
		t.Helper()
		if err := b.allow(); err != nil {
			t.Fatalf("allow refused in state %v: %v", b.currentState(), err)
		}
	}
	// Two failures stay closed; an intervening success resets the count.
	ok()
	b.done(false)
	ok()
	b.done(false)
	ok()
	b.done(true)
	ok()
	b.done(false)
	if b.currentState() != breakerClosed {
		t.Fatalf("state = %v, want closed", b.currentState())
	}
	// Three consecutive failures open it.
	ok()
	b.done(false)
	ok()
	b.done(false)
	if b.currentState() != breakerOpen {
		t.Fatalf("state = %v, want open", b.currentState())
	}
	if err := b.allow(); !errors.Is(err, udmerr.ErrCircuitOpen) {
		t.Fatalf("allow while open = %v, want ErrCircuitOpen", err)
	}
	// Cooldown elapses: exactly BreakerProbes probes are admitted.
	now = now.Add(2 * time.Minute)
	ok()
	ok()
	if err := b.allow(); !errors.Is(err, udmerr.ErrCircuitOpen) {
		t.Fatalf("third concurrent probe admitted in half-open: %v", err)
	}
	// One probe fails: straight back to open, new cooldown.
	b.done(false)
	if b.currentState() != breakerOpen {
		t.Fatalf("state after failed probe = %v, want open", b.currentState())
	}
	b.done(true) // stale outcome from the other probe: ignored while open
	if b.currentState() != breakerOpen {
		t.Fatalf("stale probe outcome moved the state to %v", b.currentState())
	}
	// Next cooldown: both probes succeed, breaker closes.
	now = now.Add(2 * time.Minute)
	ok()
	b.done(true)
	ok()
	b.done(true)
	if b.currentState() != breakerClosed {
		t.Fatalf("state after %d successful probes = %v, want closed", opt.BreakerProbes, b.currentState())
	}
	// Client-fault outcomes never count against a closed breaker.
	for i := 0; i < 10; i++ {
		ok()
		b.done(true)
	}
	if b.currentState() != breakerClosed {
		t.Fatal("healthy traffic moved the breaker")
	}
}

// TestRetryableClassification pins the retry/breaker error taxonomy.
func TestRetryableClassification(t *testing.T) {
	for err, want := range map[error]bool{
		udmerr.ErrInjected:                            true,
		errors.New("transient io"):                    true,
		context.Canceled:                              false,
		context.DeadlineExceeded:                      false,
		udmerr.ErrDimensionMismatch:                   false,
		udmerr.ErrBadOption:                           false,
		udmerr.ErrUntrained:                           false,
		udmerr.ErrBadData:                             false,
		udmerr.ErrCircuitOpen:                         false,
		udmerr.ErrDegraded:                            false,
		udmerr.ErrTailExpired:                         false,
		udmerr.ErrShardTimeout:                        true,
		fmt.Errorf("wrapped: %w", udmerr.ErrInjected): true,
	} {
		if got := retryable(err); got != want {
			t.Errorf("retryable(%v) = %v, want %v", err, got, want)
		}
	}
	if retryable(nil) {
		t.Error("retryable(nil) = true")
	}
}

// getBody GETs url and returns the body.
func getBody(t testing.TB, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// grepLines filters s to lines containing sub (test-failure readability).
func grepLines(s, sub string) string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if strings.Contains(l, sub) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}
