package server

import (
	"context"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestBatcherDrainOnShutdown is the regression test for the graceful-
// drain gap: Shutdown used to flip readiness and close listeners but
// never flushed the coalescing batchers, so a single-point request
// parked on a long BatchDelay timer could outlive the drain deadline
// (observed as rare lost-batch 503s in the fault matrix). Shutdown
// must now flush in-flight coalesced work immediately.
func TestBatcherDrainOnShutdown(t *testing.T) {
	// A batch window far longer than the test: without the drain, the
	// parked request completes only when the 30s timer fires.
	s := testServer(t, Options{BatchDelay: 30 * time.Second, MaxBatch: 64}, "")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	type result struct {
		status int
		resp   densityResponse
	}
	resc := make(chan result, 1)
	go func() {
		var r result
		r.status = postJSON(t, ts.URL+"/v1/models/blobs/density",
			densityRequest{Point: []float64{0, 0}}, &r.resp)
		resc <- r
	}()
	// Let the request reach the batcher and park on the delay timer.
	time.Sleep(200 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("Shutdown took %v; drain should flush the batcher immediately", d)
	}
	select {
	case r := <-resc:
		if r.status != 200 {
			t.Fatalf("parked request got %d, want 200", r.status)
		}
		if r.resp.Density == nil {
			t.Fatal("parked request got no density")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked request never completed; batcher was not drained")
	}
}

// TestBatcherDrainAdmitsLateItems checks the second half of the drain
// contract: items submitted to a draining batcher skip the coalescing
// window entirely instead of arming a fresh long timer.
func TestBatcherDrainAdmitsLateItems(t *testing.T) {
	b := newBatcher(context.Background(), 64, 30*time.Second, nil,
		func(_ context.Context, reqs []int) ([]int, error) {
			out := make([]int, len(reqs))
			for i, v := range reqs {
				out[i] = v * 2
			}
			return out, nil
		})
	b.drain()
	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 1; i <= 4; i++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			got, err := b.do(context.Background(), v)
			if err != nil {
				t.Errorf("do(%d): %v", v, err)
				return
			}
			if got != 2*v {
				t.Errorf("do(%d) = %d, want %d", v, got, 2*v)
			}
		}(i)
	}
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("post-drain submissions waited on the coalescing window")
	}
}
