package server

import (
	"context"
	"fmt"
	"net/http"
	"strconv"

	"udm/internal/kde"
	"udm/internal/udmerr"
)

// This file is the shard side of the distributed serving protocol
// (internal/distrib). A plain udmserve instance doubles as a shard:
// the coordinator pulls each shard's summary (GET .../summary) to
// build the merged estimator — and with it the global bandwidths and
// point count — then fans queries out as partial-term evaluations
// (POST .../partial) pinned to the version it pulled. Replicas join by
// pulling a checkpoint (GET .../checkpoint) and tailing deltas
// (GET .../tail). Everything rides the existing wire conventions:
// sentinel-derived error codes, the admission guard on the hot
// endpoint, and headers for out-of-band facts.

// VersionHeader carries the model version a summary or partial answer
// reflects (decimal uint64).
const VersionHeader = "X-UDM-Version"

// partialRequest is the fan-out wire shape: evaluate the per-cluster
// density terms of every point under the coordinator's global
// bandwidths, valid only at the pinned model version.
type partialRequest struct {
	Points [][]float64 `json:"points"`
	Dims   []int       `json:"dims,omitempty"`
	// Bandwidths are the coordinator's per-dimension global smoothing
	// parameters, computed over the merged summary; shards must
	// evaluate under these, not their local rule, for the merged answer
	// to be bit-identical to a single node's.
	Bandwidths []float64 `json:"bandwidths"`
	// Version pins the model version the coordinator merged. A shard
	// whose current version differs answers 409 stale_version and the
	// coordinator refreshes.
	Version uint64 `json:"version"`
}

// partialResponse carries one term vector per point (one term per
// local micro-cluster, in cluster order) plus the shard's summarized
// mass — the numerator of the coverage fraction under degradation.
type partialResponse struct {
	Terms   [][]float64 `json:"terms"`
	Weight  float64     `json:"weight"`
	Version uint64      `json:"version"`
}

// tailRecord is one raw record of a tail reply, JSON-encoded — Go's
// shortest-representation float64 marshaling round-trips exactly, so
// replaying these reproduces the primary's statistics to the bit.
type tailRecord struct {
	X   []float64 `json:"x"`
	Err []float64 `json:"err,omitempty"`
	TS  int64     `json:"ts"`
	Seq int64     `json:"seq"`
}

type tailResponse struct {
	Records []tailRecord `json:"records"`
	// Count is the engine's record count at reply time; a replica tails
	// again from its new count until it catches up.
	Count int64 `json:"count"`
}

// handleSummary streams the model's current micro-cluster summary
// (microcluster.Save wire form) with the reflected version in
// X-UDM-Version.
func (s *Server) handleSummary(w http.ResponseWriter, r *http.Request) {
	sm, ok := s.model(w, r)
	if !ok {
		return
	}
	m := sm.m
	sum, v, err := m.SummarySnapshot()
	if err != nil {
		s.fail(w, err)
		return
	}
	w.Header().Set(VersionHeader, strconv.FormatUint(v, 10))
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := sum.Save(w); err != nil {
		// Headers are gone; the client sees a truncated body and fails
		// its decode.
		s.metrics.Errors.Add(1)
	}
}

// handleCheckpoint streams a stream model's engine checkpoint
// (stream.Save wire form) — the first half of replica catch-up.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	sm, ok := s.model(w, r)
	if !ok {
		return
	}
	m := sm.m
	eng := m.Engine()
	if eng == nil {
		writeError(w, s.metrics, http.StatusBadRequest, "unsupported_kind",
			fmt.Sprintf("model %q is a %s; /checkpoint needs a stream model", m.Name(), m.Kind()))
		return
	}
	w.Header().Set(VersionHeader, strconv.FormatUint(m.version(), 10))
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := eng.Save(w); err != nil {
		s.metrics.Errors.Add(1)
	}
}

// handleTail serves the raw records ingested after ?from=N (a record
// ordinal, typically the count inside a just-pulled checkpoint) — the
// second half of replica catch-up. A window that no longer reaches
// back to N answers 410 tail_expired: the replica must restart from a
// fresh checkpoint.
func (s *Server) handleTail(w http.ResponseWriter, r *http.Request) {
	sm, ok := s.model(w, r)
	if !ok {
		return
	}
	m := sm.m
	eng := m.Engine()
	if eng == nil {
		writeError(w, s.metrics, http.StatusBadRequest, "unsupported_kind",
			fmt.Sprintf("model %q is a %s; /tail needs a stream model", m.Name(), m.Kind()))
		return
	}
	from, err := strconv.ParseInt(r.URL.Query().Get("from"), 10, 64)
	if err != nil || from < 0 {
		writeError(w, s.metrics, http.StatusBadRequest, "bad_option",
			fmt.Sprintf("tail needs ?from=N with a non-negative record ordinal, got %q", r.URL.Query().Get("from")))
		return
	}
	recs, ok := eng.TailSince(from)
	if !ok {
		s.fail(w, fmt.Errorf("server: records after ordinal %d have aged out of the tail window; pull a fresh checkpoint: %w",
			from, udmerr.ErrTailExpired))
		return
	}
	resp := tailResponse{Records: make([]tailRecord, len(recs)), Count: int64(eng.Count())}
	for i, rec := range recs {
		resp.Records[i] = tailRecord{X: rec.X, Err: rec.Err, TS: rec.TS, Seq: rec.Seq}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handlePartial evaluates the per-cluster density terms of every
// requested point over the shard's local summary, under the
// coordinator's global bandwidths, pinned to the coordinator's model
// version. It runs under the same admission guard, fault site, retry
// budget and circuit breaker as /density.
func (s *Server) handlePartial(w http.ResponseWriter, r *http.Request) {
	sm, ok := s.model(w, r)
	if !ok {
		return
	}
	m := sm.m
	var req partialRequest
	if !decode(w, r, s.metrics, &req) {
		return
	}
	rows, _, err := points(m, nil, req.Points)
	if err != nil {
		s.fail(w, err)
		return
	}
	type partial struct {
		terms  [][]float64
		weight float64
		v      uint64
	}
	res, err := evalRetry(r.Context(), s, s.breakerFor(sm.tenant, m.Name()), func(ctx context.Context) (partial, error) {
		est, v, err := m.partialEstimator(req.Bandwidths)
		if err != nil {
			return partial{}, err
		}
		if v != req.Version {
			return partial{}, fmt.Errorf("server: model %q is at version %d, fan-out pinned %d: %w",
				m.Name(), v, req.Version, udmerr.ErrStaleVersion)
		}
		terms, err := est.PartialTermsBatch(rows, req.Dims, kde.BatchOptions{Ctx: ctx, Workers: s.opt.Workers})
		if err != nil {
			return partial{}, err
		}
		return partial{terms: terms, weight: float64(est.Count()), v: v}, nil
	})
	if err != nil {
		s.fail(w, err)
		return
	}
	w.Header().Set(VersionHeader, strconv.FormatUint(res.v, 10))
	writeJSON(w, http.StatusOK, partialResponse{
		Terms:   res.terms,
		Weight:  res.weight,
		Version: res.v,
	})
}
