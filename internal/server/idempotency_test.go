package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"udm/internal/kde"
	"udm/internal/stream"
)

// TestIngestIdempotencyKey: a keyed ingest batch replayed with the same
// key (a retry of a lost response) is acknowledged identically without
// re-applying records; distinct keys and unkeyed requests apply as
// usual.
func TestIngestIdempotencyKey(t *testing.T) {
	eng, err := stream.NewEngine(stream.Options{MicroClusters: 8, Dims: 2})
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	sm, err := NewStreamModel("tiny", eng, kde.Options{}, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Add(sm); err != nil {
		t.Fatal(err)
	}
	s := New(reg, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const body = `{"points":[[0.5,1.5],[2.5,3.5]]}`
	post := func(key string) ingestResponse {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/models/tiny/ingest", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if key != "" {
			req.Header.Set(IdempotencyHeader, key)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest status %d", resp.StatusCode)
		}
		var out ingestResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	first := post("batch-1")
	if first.Ingested != 2 || first.Count != 2 {
		t.Fatalf("first ack = %+v, want 2 ingested, count 2", first)
	}
	if dup := post("batch-1"); dup != first {
		t.Fatalf("retried key acked %+v, want replay of %+v", dup, first)
	}
	if eng.Count() != 2 {
		t.Fatalf("engine holds %d records after a duplicate key, want 2 (batch re-applied)", eng.Count())
	}
	if s.metrics.IngestDeduped.Load() != 1 {
		t.Fatalf("dedup counter %d, want 1", s.metrics.IngestDeduped.Load())
	}
	if second := post("batch-2"); second.Count != 4 {
		t.Fatalf("fresh key count %d, want 4", second.Count)
	}
	if unkeyed := post(""); unkeyed.Count != 6 {
		t.Fatalf("unkeyed count %d, want 6", unkeyed.Count)
	}
	if unkeyed := post(""); unkeyed.Count != 8 {
		t.Fatalf("repeated unkeyed count %d, want 8 (unkeyed requests must never dedup)", unkeyed.Count)
	}
}

// TestIngestDedupEviction pins the bounded-window contract: the oldest
// key falls out once the window is full, newer keys stay.
func TestIngestDedupEviction(t *testing.T) {
	d := newIngestDedup()
	for i := 0; i <= ingestDedupWindow; i++ {
		d.put("k"+strconv.Itoa(i), ingestResponse{Ingested: i})
	}
	if _, ok := d.get("k0"); ok {
		t.Fatal("oldest key survived a full window of newer keys")
	}
	if resp, ok := d.get("k1"); !ok || resp.Ingested != 1 {
		t.Fatalf("second-oldest key: ok=%v resp=%+v, want retained", ok, resp)
	}
	if resp, ok := d.get("k" + strconv.Itoa(ingestDedupWindow)); !ok || resp.Ingested != ingestDedupWindow {
		t.Fatalf("newest key: ok=%v resp=%+v, want retained", ok, resp)
	}
}
