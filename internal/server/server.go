package server

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"

	"udm/internal/kde"
	"udm/internal/obs"
)

// Options configure the serving layer. The zero value is usable; every
// field has a production-minded default.
type Options struct {
	// MaxBatch caps how many coalesced single-point requests ride one
	// batched library call (default 64).
	MaxBatch int
	// BatchDelay is the micro-batching window: how long the first
	// request of a batch waits for company before the batch flushes
	// (default 2ms). 0 disables coalescing (every request flushes
	// immediately); shedding and caching still apply.
	BatchDelay time.Duration
	// RequestTimeout bounds each request's server-side work (default
	// 30s). Exceeding it returns 504 and cancels the underlying batch
	// computation through the context-first library APIs.
	RequestTimeout time.Duration
	// MaxInflight caps concurrently-admitted /v1 requests; excess
	// requests are shed immediately with 429 (default 256).
	MaxInflight int
	// CacheSize bounds the density LRU cache in entries (default 4096;
	// negative disables caching).
	CacheSize int
	// CacheQuantum quantizes density-cache keys: 0 (default) keys on
	// exact float bits — cached answers stay bit-identical to direct
	// library calls — while a positive quantum trades exactness for hit
	// rate on nearby points.
	CacheQuantum float64
	// Workers caps the worker pool used for batched evaluations (≤ 0 =
	// GOMAXPROCS).
	Workers int
	// Debug enables the runtime introspection surface: /debug/pprof/*,
	// /debug/traces (recent request traces), /debug/slow (spans over the
	// slow threshold), and runtime gauges on the metrics registry
	// (default off — these endpoints are unauthenticated).
	Debug bool
	// SlowRequest is the span duration at or above which a request is
	// logged as slow and retained in the slow-span ring (default 1s;
	// negative disables slow tracking).
	SlowRequest time.Duration
	// SlowLogf receives slow-span log lines (default log.Printf). It
	// must be safe for concurrent use.
	SlowLogf func(format string, args ...any)

	// RetryMax is how many times a transiently-failed model evaluation
	// is re-run beyond the first attempt (default 2; negative disables
	// retries). Input errors, context endings and breaker refusals are
	// never retried.
	RetryMax int
	// RetryBase and RetryCap bound the decorrelated-jitter backoff
	// between retry attempts: each sleep is drawn from [RetryBase,
	// 3×previous] and clamped to RetryCap (defaults 5ms and 250ms).
	RetryBase time.Duration
	RetryCap  time.Duration
	// RetrySeed seeds the backoff jitter stream, making retry schedules
	// reproducible for a fixed seed and arrival order (default 1).
	RetrySeed int64
	// BreakerThreshold is the number of consecutive transient evaluation
	// failures that opens a model's circuit breaker (default 5; negative
	// disables breakers). While open, requests for that model fail fast
	// with 503 circuit_open — or are served stale densities in degraded
	// mode — without touching the model.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker refuses traffic before
	// letting probe requests through (default 5s).
	BreakerCooldown time.Duration
	// BreakerProbes is how many half-open probe requests may be in
	// flight at once, and how many must succeed consecutively to close
	// the breaker again (default 1).
	BreakerProbes int

	// TenantMaxInflight is the default per-tenant fair-share cap on
	// concurrently admitted /v1 requests (default MaxInflight, i.e. no
	// tighter than the global gate until configured; negative =
	// unlimited). One tenant bursting past its share sheds with 429
	// tenant_overloaded while other tenants keep their headroom.
	TenantMaxInflight int
	// TenantMaxModels is the default per-tenant cap on occupied registry
	// slots, active or staged (0 = unlimited).
	TenantMaxModels int
	// TenantMaxPoints is the default per-tenant cap on resident
	// summarized points across active models (0 = unlimited); ingest and
	// staged uploads that would exceed it are refused with 429
	// quota_exceeded.
	TenantMaxPoints int64
	// TenantQuotas overrides the three per-tenant caps for specific
	// tenants; zero fields inherit the defaults above.
	TenantQuotas map[string]Quota

	// ModelKDE is the estimator policy applied to models staged via
	// PUT /v1/t/{tenant}/models/{model} (the upload carries only the
	// artifact; evaluation policy is the operator's).
	ModelKDE kde.Options
	// ModelThreshold is the classifier density threshold for staged
	// transform uploads (0 = the library default).
	ModelThreshold float64
}

func (o Options) withDefaults() Options {
	if o.MaxBatch == 0 {
		o.MaxBatch = 64
	}
	if o.BatchDelay == 0 {
		o.BatchDelay = 2 * time.Millisecond
	}
	if o.RequestTimeout == 0 {
		o.RequestTimeout = 30 * time.Second
	}
	if o.MaxInflight == 0 {
		o.MaxInflight = 256
	}
	if o.CacheSize == 0 {
		o.CacheSize = 4096
	}
	if o.SlowRequest == 0 {
		o.SlowRequest = time.Second
	} else if o.SlowRequest < 0 {
		o.SlowRequest = 0 // 0 disables slow tracking in the tracer
	}
	if o.SlowLogf == nil {
		o.SlowLogf = log.Printf
	}
	if o.RetryMax == 0 {
		o.RetryMax = 2
	} else if o.RetryMax < 0 {
		o.RetryMax = 0
	}
	if o.RetryBase == 0 {
		o.RetryBase = 5 * time.Millisecond
	}
	if o.RetryCap == 0 {
		o.RetryCap = 250 * time.Millisecond
	}
	if o.RetrySeed == 0 {
		o.RetrySeed = 1
	}
	if o.BreakerThreshold == 0 {
		o.BreakerThreshold = 5
	}
	if o.BreakerCooldown == 0 {
		o.BreakerCooldown = 5 * time.Second
	}
	if o.BreakerProbes == 0 {
		o.BreakerProbes = 1
	}
	if o.TenantMaxInflight == 0 {
		o.TenantMaxInflight = o.MaxInflight
	}
	return o
}

// Server is the HTTP serving layer: routing, admission control,
// micro-batching, caching, metrics and lifecycle over a model
// registry.
type Server struct {
	reg      *Registry
	opt      Options
	metrics  *Metrics
	tracer   *obs.Tracer
	cache    *lruCache
	inflight chan struct{}
	handler  http.Handler
	ready    atomic.Bool

	// Resilience: shared retry pacing, one breaker per (tenant, model)
	// slot — shared across that slot's versions, created lazily — and
	// the stale density cache backing degraded mode. The stale cache is
	// keyed without the model version or generation, so entries survive
	// the bumps that retire the exact cache — deliberately: a stale
	// answer is degraded mode's whole point.
	retry    *retrier
	brMu     sync.Mutex
	breakers map[string]*breaker // key: tenant + "\x00" + name
	stale    *lruCache

	// ingestSeen remembers recently acknowledged ingest batches by
	// idempotency key so a retry of a lost response never re-applies
	// records (idempotency.go).
	ingestSeen *ingestDedup

	// tenantStates holds each tenant's fair-share admission ledger and
	// labeled counters, created on first sight (tenancy.go).
	tnMu         sync.Mutex
	tenantStates map[string]*tenantState

	httpSrv *http.Server

	// runtimes maps each published *Model instance — not its name — to
	// its coalescing batchers, so a micro-batch only ever contains
	// requests that resolved the same (model, generation) pair: the
	// version-pinning half of atomic hot-swap. baseCtx parents every
	// batch flush; retired instances are drained and dropped on swap.
	baseCtx  context.Context
	rtMu     sync.Mutex
	runtimes map[*Model]*modelBatchers
}

// modelBatchers holds one coalescer per (model, operation) pair.
// Classify and full-dimensional density each get one; density requests
// over explicit dimension subsets bypass coalescing (a batch must share
// one dims slice).
type modelBatchers struct {
	classify *batcher[[]float64, int]
	density  *batcher[[]float64, float64]
}

// New builds a server over a fully-populated registry. The registry
// must not be mutated afterwards. Batch work is unbounded by any
// caller lifecycle; use NewContext to tie in-flight batches to a
// lifetime.
func New(reg *Registry, opt Options) *Server {
	return NewContext(context.Background(), reg, opt)
}

// NewContext is New with an explicit lifecycle context: every
// micro-batched library call descends from ctx, so canceling it
// abandons in-flight batch work (individual waiters still observe
// their own request contexts first). A nil ctx means an unbounded
// lifetime.
func NewContext(ctx context.Context, reg *Registry, opt Options) *Server {
	if ctx == nil {
		ctx = context.Background()
	}
	opt = opt.withDefaults()
	s := &Server{
		reg:     reg,
		opt:     opt,
		metrics: newMetrics(),
		tracer: obs.NewTracer(obs.TracerOptions{
			RingSize:      256,
			SlowThreshold: opt.SlowRequest,
			SlowLogf:      opt.SlowLogf,
		}),
		cache:        newLRUCache(opt.CacheSize),
		inflight:     make(chan struct{}, opt.MaxInflight),
		breakers:     make(map[string]*breaker),
		stale:        newLRUCache(opt.CacheSize),
		ingestSeen:   newIngestDedup(),
		tenantStates: make(map[string]*tenantState),
		runtimes:     make(map[*Model]*modelBatchers),
	}
	s.retry = newRetrier(opt, s.metrics.Retries)
	s.metrics.reg.GaugeFunc("udm_server_cache_entries", "live density-cache entries",
		func() float64 { return float64(s.cache.len()) })
	if opt.Debug {
		obs.RegisterRuntimeGauges(s.metrics.reg)
	}
	// Batch flushes run under the server lifecycle context, not any one
	// request's; carry the server tracer so their library spans land in
	// the same rings as request spans. Batchers themselves are built
	// lazily per published model instance (see runtime) — models now
	// appear and swap at runtime, not only before the server starts.
	s.baseCtx = obs.WithTracer(ctx, s.tracer)
	s.handler = s.routes()
	s.ready.Store(true)
	return s
}

// breakerFor get-or-creates the circuit breaker for a (tenant, model)
// slot. The breaker outlives version swaps on purpose: a promote is
// not evidence the dependency recovered, and a rollback must not reset
// accumulated failure state. The metric label stays the bare model
// name for the default tenant so pre-tenancy dashboards keep working.
func (s *Server) breakerFor(tenant, name string) *breaker {
	key := tenant + "\x00" + name
	s.brMu.Lock()
	defer s.brMu.Unlock()
	br, ok := s.breakers[key]
	if !ok {
		br = newBreaker(qualified(tenant, name), s.opt, s.metrics.reg)
		s.breakers[key] = br
	}
	return br
}

// runtime get-or-creates the coalescing batchers for one published
// (model, generation) pair, keyed by model instance: every request in
// a coalesced batch resolved the same instance, so a batch can never
// span a version swap. Flush closures capture the instance and the
// slot's breaker, and run under the server lifecycle context.
func (s *Server) runtime(sm *servedModel) *modelBatchers {
	s.rtMu.Lock()
	defer s.rtMu.Unlock()
	mb, ok := s.runtimes[sm.m]
	if ok {
		return mb
	}
	m, opt := sm.m, s.opt
	br := s.breakerFor(sm.tenant, m.Name())
	mb = &modelBatchers{}
	if clf := m.Classifier(); clf != nil {
		mb.classify = newBatcher(s.baseCtx, opt.MaxBatch, opt.BatchDelay, s.metrics,
			func(ctx context.Context, reqs [][]float64) ([]int, error) {
				return retryDo(ctx, s.retry, br, func(ctx context.Context) ([]int, error) {
					if err := evalFault.Hit(ctx); err != nil {
						return nil, err
					}
					return clf.ClassifyBatchContext(ctx, reqs, opt.Workers)
				})
			})
	}
	mb.density = newBatcher(s.baseCtx, opt.MaxBatch, opt.BatchDelay, s.metrics,
		func(ctx context.Context, reqs [][]float64) ([]float64, error) {
			return retryDo(ctx, s.retry, br, func(ctx context.Context) ([]float64, error) {
				if err := evalFault.Hit(ctx); err != nil {
					return nil, err
				}
				est, _, err := m.estimator()
				if err != nil {
					return nil, err
				}
				return kde.DensityBatchOpts(est, reqs, nil, kde.BatchOptions{Ctx: ctx, Workers: opt.Workers})
			})
		})
	s.runtimes[sm.m] = mb
	return mb
}

// retire drains and drops a swapped-out model instance's batchers.
// Draining (not killing) them is what makes the swap zero-downtime:
// requests already pinned to the old version flush immediately and
// finish on it, while new arrivals resolve the new instance.
func (s *Server) retire(m *Model) {
	s.rtMu.Lock()
	mb := s.runtimes[m]
	delete(s.runtimes, m)
	s.rtMu.Unlock()
	if mb == nil {
		return
	}
	if mb.classify != nil {
		mb.classify.drain()
	}
	if mb.density != nil {
		mb.density.drain()
	}
}

// Handler returns the root handler (useful for httptest and embedding).
func (s *Server) Handler() http.Handler { return s.handler }

// Metrics exposes the server's counters (useful for tests and
// embedding).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Tracer exposes the server's span tracer: request spans (and the
// library spans they parent) land in its recent and slow rings.
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// Serve accepts connections on l until Shutdown. It returns
// http.ErrServerClosed after a clean shutdown, like net/http.
func (s *Server) Serve(l net.Listener) error {
	s.httpSrv = &http.Server{
		Handler:           s.handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	return s.httpSrv.Serve(l)
}

// ListenAndServe listens on addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	return s.Serve(l)
}

// Shutdown drains the server gracefully: readiness flips to 503 (so
// load balancers stop routing here), the coalescing batchers flush
// their in-flight queues (so no waiter is stranded behind a max-delay
// timer that outlives the listener), in-flight requests run to
// completion (bounded by ctx), and every stream model is checkpointed
// via its engine's Save. It returns the first error encountered.
func (s *Server) Shutdown(ctx context.Context) error {
	s.ready.Store(false)
	s.rtMu.Lock()
	mbs := make([]*modelBatchers, 0, len(s.runtimes))
	for _, mb := range s.runtimes {
		mbs = append(mbs, mb)
	}
	s.rtMu.Unlock()
	for _, mb := range mbs {
		if mb.classify != nil {
			mb.classify.drain()
		}
		if mb.density != nil {
			mb.density.drain()
		}
	}
	var first error
	if s.httpSrv != nil {
		if err := s.httpSrv.Shutdown(ctx); err != nil && first == nil {
			first = err
		}
	}
	if err := s.reg.Checkpoint(); err != nil && first == nil {
		first = err
	}
	return first
}

// routes wires the endpoint table.
func (s *Server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	// Every model route is registered twice: under the tenant namespace
	// /v1/t/{tenant}/models/... and under the legacy /v1/models/...
	// alias, which resolves the tenant from X-UDM-Tenant (defaulting to
	// the default tenant) — pre-tenancy clients keep working unchanged.
	for _, p := range []string{"/v1", "/v1/t/{tenant}"} {
		mux.HandleFunc("GET "+p+"/models", s.handleModels)
		mux.HandleFunc("POST "+p+"/models/{model}/classify", s.guard("classify", s.metrics.ClassifyRequests, s.handleClassify))
		mux.HandleFunc("POST "+p+"/models/{model}/density", s.guard("density", s.metrics.DensityRequests, s.handleDensity))
		mux.HandleFunc("POST "+p+"/models/{model}/outliers", s.guard("outliers", s.metrics.OutlierRequests, s.handleOutliers))
		mux.HandleFunc("POST "+p+"/models/{model}/ingest", s.guard("ingest", s.metrics.IngestRequests, s.handleIngest))
		// Hot-swap lifecycle: stage an uploaded artifact, promote it
		// atomically, roll back to the retired version.
		mux.HandleFunc("PUT "+p+"/models/{model}", s.handleStage)
		mux.HandleFunc("POST "+p+"/models/{model}/promote", s.handlePromote)
		mux.HandleFunc("POST "+p+"/models/{model}/rollback", s.handleRollback)
		// Distributed-serving protocol (internal/distrib): summary pull,
		// partial-term fan-out, and replica catch-up.
		mux.HandleFunc("GET "+p+"/models/{model}/summary", s.handleSummary)
		mux.HandleFunc("GET "+p+"/models/{model}/checkpoint", s.handleCheckpoint)
		mux.HandleFunc("GET "+p+"/models/{model}/tail", s.handleTail)
		mux.HandleFunc("POST "+p+"/models/{model}/partial", s.guard("partial", s.metrics.PartialRequests, s.handlePartial))
	}
	if s.opt.Debug {
		mux.HandleFunc("GET /debug/traces", s.handleTraces)
		mux.HandleFunc("GET /debug/slow", s.handleSlow)
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// guard is the admission-control middleware for /v1 model endpoints:
// resolve and echo the tenant, count the request (total, per-endpoint
// and per-tenant), shed with 429 when MaxInflight requests are already
// admitted globally or the tenant is past its fair-share cap, bound
// the work with the per-request timeout, open the request's root trace
// span, and record the latency of admitted requests overall and per
// endpoint. The global gate is taken first so a tenant-capped request
// still cannot oversubscribe the server; shed responses carry
// X-UDM-Tenant, so a client can tell whose budget ran out.
func (s *Server) guard(endpoint string, endpointCounter *obs.Counter, h func(http.ResponseWriter, *http.Request)) http.HandlerFunc {
	endpointLatency := s.metrics.endpointLatency(endpoint)
	spanName := "server." + endpoint
	return func(w http.ResponseWriter, r *http.Request) {
		s.metrics.Requests.Add(1)
		endpointCounter.Add(1)
		tenant, ok := requestTenant(r)
		if !ok {
			s.badTenant(w, r.PathValue("tenant"))
			return
		}
		w.Header().Set(TenantHeader, tenant)
		ts := s.tenant(tenant)
		ts.requests.Inc()
		select {
		case s.inflight <- struct{}{}:
		default:
			s.metrics.Shed.Add(1)
			w.Header().Set("Retry-After", "1")
			writeError(w, s.metrics, http.StatusTooManyRequests, "overloaded",
				fmt.Sprintf("more than %d requests in flight", s.opt.MaxInflight))
			return
		}
		defer func() { <-s.inflight }()
		if !ts.acquire() {
			s.metrics.Shed.Add(1)
			ts.shed.Inc()
			w.Header().Set("Retry-After", "1")
			writeError(w, s.metrics, http.StatusTooManyRequests, "tenant_overloaded",
				fmt.Sprintf("tenant %q has more than %d requests in flight", tenant, ts.limit))
			return
		}
		defer ts.release()
		ctx, cancel := context.WithTimeout(r.Context(), s.opt.RequestTimeout)
		defer cancel()
		ctx, sp := obs.StartSpan(obs.WithTracer(ctx, s.tracer), spanName)
		defer sp.End()
		sp.Attr("model", qualified(tenant, r.PathValue("model")))
		start := time.Now()
		h(w, r.WithContext(ctx))
		d := time.Since(start)
		s.metrics.Latency.Observe(d.Seconds())
		endpointLatency.Observe(d.Seconds())
	}
}
