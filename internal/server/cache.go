package server

import (
	"container/list"
	"math"
	"strconv"
	"strings"
	"sync"
)

// lruCache is a bounded, concurrency-safe LRU map from density-cache
// keys to density values. A single mutex suffices: entries are tiny and
// the critical sections are a few pointer moves, so contention is
// dominated by the density evaluations the cache avoids.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type lruEntry struct {
	key string
	val float64
}

// newLRUCache returns a cache bounded to capacity entries; capacity
// ≤ 0 returns nil (caching disabled — the nil methods are safe).
func newLRUCache(capacity int) *lruCache {
	if capacity <= 0 {
		return nil
	}
	return &lruCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

func (c *lruCache) get(key string) (float64, bool) {
	if c == nil {
		return 0, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return 0, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

func (c *lruCache) put(key string, v float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).val = v
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: v})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

func (c *lruCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// cacheKey builds the density-cache key for (tenant, model, activation
// generation, model version, accuracy mode, dimension subset, quantized
// query point). The tenant is a mandatory component: two tenants
// serving the same float batch under the same model name are different
// answers, and neither tenant's ingestion may retire — or serve — the
// other's entries. The generation segments entries across hot-swaps
// (static models stay at version 0 forever, so version alone cannot
// tell v1's answers from v2's). mode is the accuracy mode's String() —
// exact and approximate answers for the same point must never share an
// entry, and different ε budgets are distinct answers too. With
// quantum ≤ 0 the point is keyed by its exact float64 bits, so a hit
// can only come from a bit-identical query and cached answers equal
// direct library calls bit for bit. A positive quantum buckets each
// coordinate to the nearest multiple — higher hit rates at the cost of
// answering nearby queries with the neighbor's density.
func cacheKey(tenant, model string, gen, version uint64, mode string, dims []int, x []float64, quantum float64) string {
	var b strings.Builder
	b.Grow(len(tenant) + len(model) + len(mode) + 9 + 20*(len(dims)+len(x)))
	b.WriteString(tenant)
	b.WriteByte(0) // tenants cannot contain NUL (ValidIdent), so this never aliases
	b.WriteString(model)
	b.WriteByte('#')
	b.WriteString(strconv.FormatUint(gen, 16))
	b.WriteByte('@')
	b.WriteString(strconv.FormatUint(version, 16))
	b.WriteByte('|')
	b.WriteString(mode)
	b.WriteByte('|')
	if dims == nil {
		b.WriteByte('*')
	} else {
		for _, j := range dims {
			b.WriteString(strconv.Itoa(j))
			b.WriteByte(',')
		}
	}
	b.WriteByte('|')
	for _, v := range x {
		if quantum > 0 {
			b.WriteString(strconv.FormatInt(int64(math.Round(v/quantum)), 36))
		} else {
			b.WriteString(strconv.FormatUint(math.Float64bits(v), 36))
		}
		b.WriteByte(',')
	}
	return b.String()
}
