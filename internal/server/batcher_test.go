package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestBatcherCoalesces checks that concurrent submissions ride one
// batched call and every waiter gets its own positional result.
func TestBatcherCoalesces(t *testing.T) {
	var calls int
	var mu sync.Mutex
	b := newBatcher(context.Background(), 64, 50*time.Millisecond, nil,
		func(_ context.Context, reqs []int) ([]string, error) {
			mu.Lock()
			calls++
			mu.Unlock()
			out := make([]string, len(reqs))
			for i, r := range reqs {
				out[i] = fmt.Sprintf("r%d", r)
			}
			return out, nil
		})

	const n = 16
	results := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := b.do(context.Background(), i)
			if err != nil {
				t.Errorf("do(%d): %v", i, err)
				return
			}
			results[i] = res
		}()
	}
	wg.Wait()
	for i, r := range results {
		if want := fmt.Sprintf("r%d", i); r != want {
			t.Errorf("result[%d] = %q, want %q (positional mixup)", i, r, want)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if calls >= n {
		t.Errorf("%d batch calls for %d submissions — no coalescing happened", calls, n)
	}
}

// TestBatcherFlushesAtMaxBatch checks the size trigger fires before the
// delay timer.
func TestBatcherFlushesAtMaxBatch(t *testing.T) {
	b := newBatcher(context.Background(), 4, time.Hour, nil,
		func(_ context.Context, reqs []int) ([]int, error) { return reqs, nil })
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := b.do(context.Background(), i); err != nil {
				t.Errorf("do: %v", err)
			}
		}()
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("full batch waited %v for the delay timer instead of flushing at max size", elapsed)
	}
}

// TestBatcherErrorFansOut checks every member of a failed batch sees
// the batch error.
func TestBatcherErrorFansOut(t *testing.T) {
	boom := errors.New("boom")
	b := newBatcher(context.Background(), 8, 10*time.Millisecond, nil,
		func(_ context.Context, reqs []int) ([]int, error) { return nil, boom })
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := b.do(context.Background(), i); !errors.Is(err, boom) {
				t.Errorf("do(%d) err = %v, want boom", i, err)
			}
		}()
	}
	wg.Wait()
}

// TestBatcherCancellationPropagates checks the acceptance criterion
// that a client disconnect cancels the underlying batch work: when
// every member's context ends, the batch context is canceled and the
// worker-pool computation stops.
func TestBatcherCancellationPropagates(t *testing.T) {
	runCanceled := make(chan struct{})
	b := newBatcher(context.Background(), 64, time.Millisecond, nil,
		func(ctx context.Context, reqs []int) ([]int, error) {
			select {
			case <-ctx.Done():
				close(runCanceled)
				return nil, ctx.Err()
			case <-time.After(30 * time.Second):
				return reqs, nil
			}
		})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := b.do(ctx, 1)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the batch flush and start running
	cancel()

	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("do returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter did not return after cancel")
	}
	select {
	case <-runCanceled:
	case <-time.After(5 * time.Second):
		t.Fatal("batch computation was not canceled after its only client left")
	}
}

// TestBatcherSurvivingWaiterKeepsBatchAlive checks the flip side: a
// batch with one live waiter runs to completion even when another
// member disconnects.
func TestBatcherSurvivingWaiterKeepsBatchAlive(t *testing.T) {
	b := newBatcher(context.Background(), 2, time.Hour, nil,
		func(ctx context.Context, reqs []int) ([]int, error) {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(50 * time.Millisecond):
			}
			out := make([]int, len(reqs))
			for i, r := range reqs {
				out[i] = r * 10
			}
			return out, nil
		})

	ctx1, cancel1 := context.WithCancel(context.Background())
	gone := make(chan error, 1)
	go func() {
		_, err := b.do(ctx1, 1)
		gone <- err
	}()
	time.Sleep(10 * time.Millisecond)
	live := make(chan int, 1)
	go func() {
		v, err := b.do(context.Background(), 2) // fills the batch of 2 → flush
		if err != nil {
			t.Errorf("live waiter: %v", err)
		}
		live <- v
	}()
	time.Sleep(10 * time.Millisecond)
	cancel1() // first member disconnects mid-batch

	if err := <-gone; !errors.Is(err, context.Canceled) {
		t.Errorf("canceled waiter got %v, want context.Canceled", err)
	}
	select {
	case v := <-live:
		if v != 20 {
			t.Errorf("surviving waiter got %d, want 20", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("surviving waiter starved — batch was canceled despite a live member")
	}
}

func TestLRUCache(t *testing.T) {
	c := newLRUCache(2)
	c.put("a", 1)
	c.put("b", 2)
	if v, ok := c.get("a"); !ok || v != 1 {
		t.Fatalf("get a = %v/%v", v, ok)
	}
	c.put("c", 3) // evicts b (least recently used after the get of a)
	if _, ok := c.get("b"); ok {
		t.Error("b survived past capacity")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.get(k); !ok {
			t.Errorf("%s evicted wrongly", k)
		}
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}

	var nilCache *lruCache
	nilCache.put("x", 1) // must not panic
	if _, ok := nilCache.get("x"); ok {
		t.Error("nil cache returned a hit")
	}
}

func TestCacheKey(t *testing.T) {
	x := []float64{1.25, -3.5}
	exact1 := cacheKey("default", "m", 1, 0, "exact", nil, x, 0)
	exact2 := cacheKey("default", "m", 1, 0, "exact", nil, []float64{1.25, -3.5}, 0)
	if exact1 != exact2 {
		t.Error("identical points produced different exact keys")
	}
	if cacheKey("default", "m", 1, 0, "exact", nil, []float64{1.25, -3.5000001}, 0) == exact1 {
		t.Error("distinct points collided under exact keying")
	}
	if cacheKey("default", "m", 1, 1, "exact", nil, x, 0) == exact1 {
		t.Error("model version not part of the key (stale cache after ingest)")
	}
	if cacheKey("default", "m", 2, 0, "exact", nil, x, 0) == exact1 {
		t.Error("activation generation not part of the key (stale cache after hot-swap)")
	}
	if cacheKey("tenant-b", "m", 1, 0, "exact", nil, x, 0) == exact1 {
		t.Error("tenant not part of the key (tenants would alias each other's densities)")
	}
	if cacheKey("default", "m", 1, 0, "exact", []int{0}, x, 0) == exact1 {
		t.Error("subspace dims not part of the key")
	}
	if cacheKey("default", "other", 1, 0, "exact", nil, x, 0) == exact1 {
		t.Error("model name not part of the key")
	}
	if cacheKey("default", "m", 1, 0, "approx(1e-06)", nil, x, 0) == exact1 {
		t.Error("accuracy mode not part of the key (approx answers would alias exact)")
	}
	if cacheKey("default", "m", 1, 0, "approx(1e-06)", nil, x, 0) == cacheKey("default", "m", 1, 0, "approx(1e-03)", nil, x, 0) {
		t.Error("distinct epsilon budgets shared a key")
	}
	// Quantized keys merge near-identical points.
	if cacheKey("default", "m", 1, 0, "exact", nil, []float64{1.2501, -3.5}, 0.01) != cacheKey("default", "m", 1, 0, "exact", nil, []float64{1.2503, -3.5}, 0.01) {
		t.Error("quantization did not merge nearby points")
	}
}
