package server

import "sync"

// Ingest is the one mutating RPC of the serving protocol, and it is not
// naturally idempotent: records carry no identity, so a batch whose
// response was lost after the engine applied it would be double-counted
// by a transport-level retry — silently corrupting the stream model
// while every layer reports success. The fix is an idempotency key: a
// client that may retry attaches a unique key per logical batch
// (IdempotencyHeader), and the server remembers the acknowledgement of
// each recently applied key. A retried batch replays the stored
// acknowledgement instead of re-applying the records.
//
// The window is bounded FIFO: retries arrive within the client's retry
// budget (seconds), so a few thousand entries dwarf any realistic
// in-flight set. Keys are scoped per model by the caller. Concurrent
// first deliveries of the same key are not serialized — the protocol's
// only duplicate source is a sequential retry of a lost response, so a
// check-before/record-after discipline suffices.

// IdempotencyHeader names the ingest idempotency key header. A client
// that retries ingest (internal/distrib's ShardClient) sends a fresh
// key per logical batch and the same key on every retry of it.
const IdempotencyHeader = "X-UDM-Idempotency-Key"

// ingestDedupWindow bounds remembered ingest acknowledgements.
const ingestDedupWindow = 4096

// ingestDedup is the bounded key → acknowledgement memory.
type ingestDedup struct {
	mu   sync.Mutex
	seen map[string]ingestResponse
	fifo []string // insertion order, oldest first
}

func newIngestDedup() *ingestDedup {
	return &ingestDedup{seen: make(map[string]ingestResponse)}
}

// get returns the stored acknowledgement for key, if any.
func (d *ingestDedup) get(key string) (ingestResponse, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	resp, ok := d.seen[key]
	return resp, ok
}

// put stores the acknowledgement for key, evicting the oldest entry
// once the window is full.
func (d *ingestDedup) put(key string, resp ingestResponse) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.seen[key]; dup {
		d.seen[key] = resp
		return
	}
	if len(d.fifo) >= ingestDedupWindow {
		delete(d.seen, d.fifo[0])
		d.fifo = d.fifo[1:]
	}
	d.seen[key] = resp
	d.fifo = append(d.fifo, key)
}
