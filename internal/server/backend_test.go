package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// postDensity POSTs a density request with optional extra headers and
// returns the raw response plus the decoded body.
func postDensity(t *testing.T, url string, body map[string]any, hdr map[string]string) (*http.Response, densityResponse) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out densityResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("%s: decoding response: %v", url, err)
	}
	return resp, out
}

// TestDensityBackendSelection exercises the per-request backend switch:
// JSON field and header selection, the response header contract, and
// each approximate rung's accuracy against the default exact answer.
func TestDensityBackendSelection(t *testing.T) {
	s := testServer(t, Options{}, "")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	url := ts.URL + "/v1/models/blobs/density"
	x := []float64{-1.5, 0.5}

	// Default request: no backend header on the response (wire format
	// unchanged for existing clients).
	defResp, def := postDensity(t, url, map[string]any{"point": x}, nil)
	if defResp.StatusCode != 200 {
		t.Fatalf("default density = %d, want 200", defResp.StatusCode)
	}
	if got := defResp.Header.Get("X-UDM-Backend"); got != "" {
		t.Errorf("default response leaked X-UDM-Backend = %q", got)
	}

	// Explicit exact: header echoed, answer bit-identical to default.
	exResp, ex := postDensity(t, url, map[string]any{"point": x, "backend": "exact"}, nil)
	if exResp.StatusCode != 200 || exResp.Header.Get("X-UDM-Backend") != "exact" {
		t.Fatalf("exact backend: %d / %q", exResp.StatusCode, exResp.Header.Get("X-UDM-Backend"))
	}
	if *ex.Density != *def.Density {
		t.Errorf("explicit exact %v != default %v (must be bit-identical)", *ex.Density, *def.Density)
	}

	// The micro backend over a summarizer-backed model evaluates the
	// same summary exactly; grid and hbe must stay within their
	// advertised relative-error ladders (hbe falls back to exact below
	// its sampling floor, so the default ε = 0.1 bounds both regimes).
	for _, tc := range []struct {
		backend string
		relTol  float64
	}{
		{"micro", 0},
		{"grid", 0.11},
		{"hbe", 0.11},
	} {
		resp, out := postDensity(t, url, map[string]any{"point": x, "backend": tc.backend}, nil)
		if resp.StatusCode != 200 {
			t.Fatalf("backend %s = %d, want 200", tc.backend, resp.StatusCode)
		}
		if got := resp.Header.Get("X-UDM-Backend"); got != tc.backend {
			t.Errorf("backend %s: response header %q", tc.backend, got)
		}
		rel := (*out.Density - *def.Density) / *def.Density
		if rel < 0 {
			rel = -rel
		}
		if rel > tc.relTol {
			t.Errorf("backend %s density %v vs exact %v: rel err %v > %v",
				tc.backend, *out.Density, *def.Density, rel, tc.relTol)
		}
	}

	// Header fallback selects the backend when the JSON field is empty...
	hResp, h := postDensity(t, url, map[string]any{"point": x}, map[string]string{"X-UDM-Backend": "micro"})
	if hResp.StatusCode != 200 || hResp.Header.Get("X-UDM-Backend") != "micro" {
		t.Fatalf("header selection: %d / %q", hResp.StatusCode, hResp.Header.Get("X-UDM-Backend"))
	}
	jResp, j := postDensity(t, url, map[string]any{"point": x, "backend": "micro"}, nil)
	if jResp.StatusCode != 200 || *h.Density != *j.Density {
		t.Errorf("header-selected micro %v != JSON-selected micro %v", *h.Density, *j.Density)
	}

	// ...and the JSON field wins when both are present.
	wResp, w := postDensity(t, url, map[string]any{"point": x, "backend": "exact"},
		map[string]string{"X-UDM-Backend": "micro"})
	if wResp.Header.Get("X-UDM-Backend") != "exact" {
		t.Errorf("JSON field did not win over header: %q", wResp.Header.Get("X-UDM-Backend"))
	}
	if *w.Density != *def.Density {
		t.Errorf("JSON-wins exact %v != default %v", *w.Density, *def.Density)
	}

	// Batch requests honor the backend too.
	bResp, b := postDensity(t, url, map[string]any{
		"points": [][]float64{x, {2.0, 0.0}}, "backend": "micro",
	}, nil)
	if bResp.StatusCode != 200 || len(b.Densities) != 2 {
		t.Fatalf("micro batch = %d with %d densities", bResp.StatusCode, len(b.Densities))
	}
}

// TestDensityBackendErrors pins the failure modes: unknown names and
// incompatible backend/accuracy combinations are 400 bad_option.
func TestDensityBackendErrors(t *testing.T) {
	s := testServer(t, Options{}, "")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	url := ts.URL + "/v1/models/blobs/density"
	x := []float64{-1.5, 0.5}

	for name, body := range map[string]map[string]any{
		"unknown backend":    {"point": x, "backend": "fast"},
		"hbe rejects approx": {"point": x, "backend": "hbe", "accuracy": "approx", "epsilon": 1e-6},
	} {
		status, code := errCode(t, url, body)
		if status != 400 || code != "bad_option" {
			t.Errorf("%s: got %d/%q, want 400/bad_option", name, status, code)
		}
	}

	// The micro backend runs the exact engine over the summary, so it
	// composes with the approximate kernel accuracy rather than
	// rejecting it.
	if status := postJSON(t, url, map[string]any{
		"point": x, "backend": "micro", "accuracy": "approx", "epsilon": 1e-6,
	}, nil); status != 200 {
		t.Errorf("micro+approx = %d, want 200", status)
	}

	// An unknown header backend fails the same way.
	resp, _ := postDensity(t, url, map[string]any{"point": x}, map[string]string{"X-UDM-Backend": "nope"})
	if resp.StatusCode != 400 {
		t.Errorf("unknown header backend = %d, want 400", resp.StatusCode)
	}
}

// TestDensityBackendCacheSegmentation verifies backend-tagged cache
// keys: the same point never aliases across backends, repeats hit their
// own entry, and ingestion retires the cached backends.
func TestDensityBackendCacheSegmentation(t *testing.T) {
	s := testServer(t, Options{}, "")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	url := ts.URL + "/v1/models/blobs/density"
	x := []float64{-1.5, 0.5}

	// Warm the default cache entry.
	if _, out := postDensity(t, url, map[string]any{"point": x}, nil); out.Cached {
		t.Fatal("first default query reported cached")
	}
	if _, out := postDensity(t, url, map[string]any{"point": x}, nil); !out.Cached {
		t.Fatal("repeat default query missed the cache")
	}

	// The micro backend answers bit-identically here, so a shared key
	// would satisfy this request from the default entry: cached=true
	// would prove the backend is missing from the key.
	if _, out := postDensity(t, url, map[string]any{"point": x, "backend": "micro"}, nil); out.Cached {
		t.Error("first micro query hit the default cache entry (backend missing from key)")
	}
	if _, out := postDensity(t, url, map[string]any{"point": x, "backend": "micro"}, nil); !out.Cached {
		t.Error("repeat micro query missed its own cache entry")
	}

	// Explicit exact shares the default entry by design (bit-identical
	// contract, same key).
	if _, out := postDensity(t, url, map[string]any{"point": x, "backend": "exact"}, nil); !out.Cached {
		t.Error("explicit exact did not share the default cache entry")
	}

	// Ingestion advances the stream model's version: its cached backend
	// answers must be rebuilt, not replayed.
	liveURL := ts.URL + "/v1/models/live/density"
	if _, out := postDensity(t, liveURL, map[string]any{"point": x, "backend": "micro"}, nil); out.Cached {
		t.Fatal("first live micro query reported cached")
	}
	if status := postJSON(t, ts.URL+"/v1/models/live/ingest",
		map[string]any{"points": [][]float64{{0.4, 0.4}}}, nil); status != 200 {
		t.Fatalf("ingest = %d, want 200", status)
	}
	if _, out := postDensity(t, liveURL, map[string]any{"point": x, "backend": "micro"}, nil); out.Cached {
		t.Error("post-ingest micro query served a stale cached answer")
	}
}
