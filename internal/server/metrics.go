package server

import (
	"math"
	"time"

	"udm/internal/obs"
)

// latencyBuckets spans 1µs … ~67s in powers of two — the same
// resolution the pre-obs expvar histogram used (27 exponential
// microsecond buckets), now in seconds per the metric naming
// convention.
var latencyBuckets = obs.ExpBuckets(1e-6, 2, 27)

// batchSizeBuckets covers coalesced batch sizes up to the default
// MaxBatch and beyond.
var batchSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// Metrics holds the server's counters, now backed by a per-server
// obs.Registry: the same handles feed both the legacy JSON /metrics
// document (snapshot, key-compatible with the pre-obs shape) and the
// Prometheus exposition (/metrics?format=prometheus). Fields keep
// their historical names and Load/Add surface so embedders and tests
// are unaffected.
//
// Note: the counters honor the global obs enable gate — under
// UDM_OBS=off they stop recording (the gate exists to benchmark the
// uninstrumented baseline, not for production use).
type Metrics struct {
	start time.Time
	reg   *obs.Registry

	// Request outcomes.
	Requests *obs.Counter // every request to a /v1 endpoint
	Errors   *obs.Counter // 4xx/5xx responses
	Shed     *obs.Counter // rejected with 429 by the inflight gate
	Timeouts *obs.Counter // 504s from the per-request deadline
	Canceled *obs.Counter // clients that disconnected mid-request

	// Per-endpoint request counts (labeled series of one family).
	// PartialRequests (the shard-side fan-out endpoint) is
	// Prometheus-only: the JSON /metrics key set is frozen.
	ClassifyRequests *obs.Counter
	DensityRequests  *obs.Counter
	OutlierRequests  *obs.Counter
	IngestRequests   *obs.Counter
	PartialRequests  *obs.Counter

	// Micro-batching.
	BatchFlushes *obs.Counter   // coalesced batch executions
	BatchedItems *obs.Counter   // single-point requests that rode a batch
	BatchSize    *obs.Histogram // distribution of coalesced batch sizes

	// Density cache.
	CacheHits   *obs.Counter
	CacheMisses *obs.Counter

	// Stream ingestion.
	IngestedRows *obs.Counter

	// Resilience. These are Prometheus-only: the JSON /metrics document
	// predates them and its key set is frozen.
	Retries       *obs.Counter // model evaluations re-run after a transient failure
	Degraded      *obs.Counter // responses served from the stale cache while a breaker was open
	IngestDeduped *obs.Counter // retried ingest batches acknowledged from the dedup window

	// Hot-swap lifecycle (labeled series of one family; Prometheus-only
	// like the rest of the post-freeze metrics). Per-tenant request and
	// shed counters are registered lazily per tenant id (tenancy.go).
	SwapStaged    *obs.Counter
	SwapPromotes  *obs.Counter
	SwapRollbacks *obs.Counter

	// Latency of served /v1 requests (excluding shed ones), seconds.
	Latency *obs.Histogram
}

func newMetrics() *Metrics {
	reg := obs.NewRegistry()
	m := &Metrics{
		start: time.Now(),
		reg:   reg,

		Requests: reg.Counter("udm_server_requests_total", "requests to /v1 endpoints"),
		Errors:   reg.Counter("udm_server_errors_total", "4xx/5xx responses"),
		Shed:     reg.Counter("udm_server_shed_total", "requests shed with 429 by the inflight gate"),
		Timeouts: reg.Counter("udm_server_timeouts_total", "504 responses from the per-request deadline"),
		Canceled: reg.Counter("udm_server_canceled_total", "clients that disconnected mid-request"),

		ClassifyRequests: reg.Counter("udm_server_endpoint_requests_total", "requests by endpoint", "endpoint", "classify"),
		DensityRequests:  reg.Counter("udm_server_endpoint_requests_total", "requests by endpoint", "endpoint", "density"),
		OutlierRequests:  reg.Counter("udm_server_endpoint_requests_total", "requests by endpoint", "endpoint", "outliers"),
		IngestRequests:   reg.Counter("udm_server_endpoint_requests_total", "requests by endpoint", "endpoint", "ingest"),
		PartialRequests:  reg.Counter("udm_server_endpoint_requests_total", "requests by endpoint", "endpoint", "partial"),

		BatchFlushes: reg.Counter("udm_server_batch_flushes_total", "coalesced batch executions"),
		BatchedItems: reg.Counter("udm_server_batched_items_total", "single-point requests that rode a batch"),
		BatchSize:    reg.Histogram("udm_server_batch_size", "coalesced batch size per flush", batchSizeBuckets),

		CacheHits:   reg.Counter("udm_server_cache_hits_total", "density cache hits"),
		CacheMisses: reg.Counter("udm_server_cache_misses_total", "density cache misses"),

		IngestedRows: reg.Counter("udm_server_ingested_rows_total", "stream records ingested via /ingest"),

		Retries:       reg.Counter("udm_retry_total", "model evaluations retried after a transient failure"),
		Degraded:      reg.Counter("udm_server_degraded_total", "degraded responses served from the stale density cache"),
		IngestDeduped: reg.Counter("udm_server_ingest_dedup_total", "retried ingest batches acknowledged without re-applying"),

		SwapStaged:    reg.Counter("udm_server_swaps_total", "hot-swap lifecycle operations", "op", "stage"),
		SwapPromotes:  reg.Counter("udm_server_swaps_total", "hot-swap lifecycle operations", "op", "promote"),
		SwapRollbacks: reg.Counter("udm_server_swaps_total", "hot-swap lifecycle operations", "op", "rollback"),

		Latency: reg.Histogram("udm_server_latency_seconds", "latency of served /v1 requests", latencyBuckets),
	}
	reg.GaugeFunc("udm_server_uptime_seconds", "seconds since the server was built",
		func() float64 { return time.Since(m.start).Seconds() })
	return m
}

// Registry exposes the server-scoped metrics registry (per-endpoint
// series are registered on it lazily by the request guard).
func (m *Metrics) Registry() *obs.Registry { return m.reg }

// endpointLatency get-or-creates the per-endpoint latency histogram.
func (m *Metrics) endpointLatency(endpoint string) *obs.Histogram {
	return m.reg.Histogram("udm_server_request_seconds", "request latency by endpoint",
		latencyBuckets, "endpoint", endpoint)
}

// usec converts a histogram bound or statistic in seconds to integer
// microseconds for the legacy JSON document.
func usec(seconds float64) int64 { return int64(math.Round(seconds * 1e6)) }

// snapshot renders every counter plus derived rates into a flat
// JSON-encodable map (the /metrics document). The key set is frozen:
// it predates the obs registry and is a compatibility contract.
func (m *Metrics) snapshot() map[string]any {
	hits, misses := m.CacheHits.Load(), m.CacheMisses.Load()
	hitRate := 0.0
	if hits+misses > 0 {
		hitRate = float64(hits) / float64(hits+misses)
	}
	flushes, items := m.BatchFlushes.Load(), m.BatchedItems.Load()
	avgBatch := 0.0
	if flushes > 0 {
		avgBatch = float64(items) / float64(flushes)
	}
	return map[string]any{
		"uptime_seconds":    time.Since(m.start).Seconds(),
		"requests":          m.Requests.Load(),
		"errors":            m.Errors.Load(),
		"shed":              m.Shed.Load(),
		"timeouts":          m.Timeouts.Load(),
		"canceled":          m.Canceled.Load(),
		"classify_requests": m.ClassifyRequests.Load(),
		"density_requests":  m.DensityRequests.Load(),
		"outlier_requests":  m.OutlierRequests.Load(),
		"ingest_requests":   m.IngestRequests.Load(),
		"ingested_rows":     m.IngestedRows.Load(),
		"batch_flushes":     flushes,
		"batched_items":     items,
		"avg_batch_size":    avgBatch,
		"cache_hits":        hits,
		"cache_misses":      misses,
		"cache_hit_rate":    hitRate,
		"latency_count":     m.Latency.Count(),
		"latency_mean_us":   usec(m.Latency.Mean()),
		"latency_p50_us":    usec(m.Latency.Quantile(0.50)),
		"latency_p90_us":    usec(m.Latency.Quantile(0.90)),
		"latency_p99_us":    usec(m.Latency.Quantile(0.99)),
	}
}
