package server

import (
	"sync/atomic"
	"time"
)

// histBuckets is the number of exponential latency buckets: bucket b
// holds observations in [2^(b-1), 2^b) microseconds (bucket 0 holds
// sub-microsecond observations), spanning 1µs … ~67s.
const histBuckets = 27

// histogram is a lock-free exponential latency histogram. Quantile
// estimates are upper bucket bounds, so a reported p99 never
// understates the true p99 by more than one power of two.
type histogram struct {
	counts [histBuckets]atomic.Int64
	sumNS  atomic.Int64
	n      atomic.Int64
}

func (h *histogram) observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.sumNS.Add(d.Nanoseconds())
	h.n.Add(1)
	us := d.Microseconds()
	b := 0
	for us > 0 && b < histBuckets-1 {
		us >>= 1
		b++
	}
	h.counts[b].Add(1)
}

// quantile returns the upper bound of the bucket containing the q-th
// quantile observation (0 < q ≤ 1), or 0 when nothing was observed.
// Counts are read without a global lock, so concurrent observes can
// skew a snapshot by at most the in-flight observations.
func (h *histogram) quantile(q float64) time.Duration {
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	rank := int64(q*float64(n) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for b := 0; b < histBuckets; b++ {
		cum += h.counts[b].Load()
		if cum >= rank {
			return time.Duration(int64(1)<<uint(b)) * time.Microsecond
		}
	}
	return time.Duration(int64(1)<<uint(histBuckets-1)) * time.Microsecond
}

func (h *histogram) mean() time.Duration {
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sumNS.Load() / n)
}

// Metrics holds the server's expvar-style counters. All fields are
// atomically updated and exported as one JSON document by /metrics.
type Metrics struct {
	start time.Time

	// Request outcomes.
	Requests atomic.Int64 // every request to a /v1 endpoint
	Errors   atomic.Int64 // 4xx/5xx responses
	Shed     atomic.Int64 // rejected with 429 by the inflight gate
	Timeouts atomic.Int64 // 504s from the per-request deadline
	Canceled atomic.Int64 // clients that disconnected mid-request

	// Per-endpoint request counts.
	ClassifyRequests atomic.Int64
	DensityRequests  atomic.Int64
	OutlierRequests  atomic.Int64
	IngestRequests   atomic.Int64

	// Micro-batching.
	BatchFlushes atomic.Int64 // coalesced batch executions
	BatchedItems atomic.Int64 // single-point requests that rode a batch

	// Density cache.
	CacheHits   atomic.Int64
	CacheMisses atomic.Int64

	// Stream ingestion.
	IngestedRows atomic.Int64

	// Latency of served /v1 requests (excluding shed ones).
	Latency histogram
}

func newMetrics() *Metrics { return &Metrics{start: time.Now()} }

// snapshot renders every counter plus derived rates into a flat
// JSON-encodable map (the /metrics document).
func (m *Metrics) snapshot() map[string]any {
	hits, misses := m.CacheHits.Load(), m.CacheMisses.Load()
	hitRate := 0.0
	if hits+misses > 0 {
		hitRate = float64(hits) / float64(hits+misses)
	}
	flushes, items := m.BatchFlushes.Load(), m.BatchedItems.Load()
	avgBatch := 0.0
	if flushes > 0 {
		avgBatch = float64(items) / float64(flushes)
	}
	return map[string]any{
		"uptime_seconds":    time.Since(m.start).Seconds(),
		"requests":          m.Requests.Load(),
		"errors":            m.Errors.Load(),
		"shed":              m.Shed.Load(),
		"timeouts":          m.Timeouts.Load(),
		"canceled":          m.Canceled.Load(),
		"classify_requests": m.ClassifyRequests.Load(),
		"density_requests":  m.DensityRequests.Load(),
		"outlier_requests":  m.OutlierRequests.Load(),
		"ingest_requests":   m.IngestRequests.Load(),
		"ingested_rows":     m.IngestedRows.Load(),
		"batch_flushes":     flushes,
		"batched_items":     items,
		"avg_batch_size":    avgBatch,
		"cache_hits":        hits,
		"cache_misses":      misses,
		"cache_hit_rate":    hitRate,
		"latency_count":     m.Latency.n.Load(),
		"latency_mean_us":   m.Latency.mean().Microseconds(),
		"latency_p50_us":    m.Latency.quantile(0.50).Microseconds(),
		"latency_p90_us":    m.Latency.quantile(0.90).Microseconds(),
		"latency_p99_us":    m.Latency.quantile(0.99).Microseconds(),
	}
}
