package server

import (
	"math"
	"net/http/httptest"
	"sync"
	"testing"
)

// TestSustainedConcurrentClients is the acceptance load test: 64
// simultaneous clients hammer classify and density over a shared probe
// set, and every served answer must be bit-identical to the direct
// library call. Run under -race in CI; per-request latency quantiles
// land in the test log (and EXPERIMENTS.md records a reference run).
func TestSustainedConcurrentClients(t *testing.T) {
	if testing.Short() {
		t.Skip("load test skipped in -short mode")
	}
	s := testServer(t, Options{}, "")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Probe set + ground truth from direct library calls.
	const probes = 32
	pts := make([][]float64, probes)
	for i := range pts {
		pts[i] = []float64{-3 + 6*float64(i)/probes, 0.5 - float64(i%3)/2}
	}
	m, _ := s.reg.Get("blobs")
	wantLabels, err := m.Classifier().ClassifyBatch(pts, 0)
	if err != nil {
		t.Fatal(err)
	}
	est, _, err := m.estimator()
	if err != nil {
		t.Fatal(err)
	}
	wantDensity, err := est.DensityBatch(pts, nil, 0)
	if err != nil {
		t.Fatal(err)
	}

	const clients = 64
	const perClient = 24
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				p := (c*perClient + i) % probes
				if (c+i)%2 == 0 {
					var resp classifyResponse
					if status := postJSON(t, ts.URL+"/v1/models/blobs/classify",
						map[string]any{"point": pts[p]}, &resp); status != 200 {
						t.Errorf("client %d: classify = %d", c, status)
						continue
					}
					if resp.Label == nil || *resp.Label != wantLabels[p] {
						t.Errorf("client %d probe %d: served label %v, want %d", c, p, resp.Label, wantLabels[p])
					}
				} else {
					var resp densityResponse
					if status := postJSON(t, ts.URL+"/v1/models/blobs/density",
						map[string]any{"point": pts[p]}, &resp); status != 200 {
						t.Errorf("client %d: density = %d", c, status)
						continue
					}
					if resp.Density == nil ||
						math.Float64bits(*resp.Density) != math.Float64bits(wantDensity[p]) {
						t.Errorf("client %d probe %d: served density %v, want bit-identical %v",
							c, p, resp.Density, wantDensity[p])
					}
				}
			}
		}()
	}
	wg.Wait()

	snap := s.metrics.snapshot()
	if shed := snap["shed"].(int64); shed != 0 {
		t.Errorf("%d requests shed under the default inflight limit", shed)
	}
	if errs := snap["errors"].(int64); errs != 0 {
		t.Errorf("%d error responses during the load run", errs)
	}
	t.Logf("load: %d clients × %d reqs — p50=%dµs p90=%dµs p99=%dµs, avg batch %.1f, cache hit rate %.2f",
		clients, perClient,
		snap["latency_p50_us"], snap["latency_p90_us"], snap["latency_p99_us"],
		snap["avg_batch_size"], snap["cache_hit_rate"])
}
