package server

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// batcher coalesces concurrent single-item requests into one batched
// call on the shared worker pool. The first item to arrive arms a
// max-delay timer; the batch flushes when either MaxBatch items are
// pending or the timer fires, whichever comes first. Coalescing turns
// N concurrent single-point HTTP requests into one DensityBatch /
// ClassifyBatch call that the parallel engine fans out across cores —
// per-request goroutine overhead collapses into one chunked dispatch.
//
// Cancellation: each submitted item carries its own context. A waiter
// whose context ends stops waiting immediately (its slot in the batch
// is still computed — results are positional). The batch's own context
// is derived from the server's base lifecycle context and the
// members': it is canceled as soon as EVERY member's context has
// ended, so work for a batch whose clients all disconnected is
// abandoned by the worker pool mid-flight, and it dies with the server
// regardless. A batch with at least one live waiter always runs to
// completion.
type batcher[Req, Res any] struct {
	base     context.Context
	run      func(ctx context.Context, reqs []Req) ([]Res, error)
	maxBatch int
	maxDelay time.Duration
	metrics  *Metrics

	// drainNow flips on when the owning server starts draining: pending
	// items flush immediately instead of waiting out the coalescing
	// window, so graceful shutdown never strands an in-flight waiter
	// behind a timer that may outlive the listener.
	drainNow atomic.Bool

	mu      sync.Mutex
	pending []batchWaiter[Req, Res]
	timer   *time.Timer
}

type batchWaiter[Req, Res any] struct {
	ctx context.Context
	req Req
	ch  chan batchResult[Res]
}

type batchResult[Res any] struct {
	val Res
	err error
}

// newBatcher builds a coalescer whose batch contexts descend from
// base, so in-flight batch work is canceled when the owning server's
// lifecycle ends.
func newBatcher[Req, Res any](base context.Context, maxBatch int, maxDelay time.Duration, metrics *Metrics,
	run func(ctx context.Context, reqs []Req) ([]Res, error)) *batcher[Req, Res] {
	if maxBatch < 1 {
		maxBatch = 1
	}
	if base == nil {
		base = context.Background()
	}
	return &batcher[Req, Res]{base: base, run: run, maxBatch: maxBatch, maxDelay: maxDelay, metrics: metrics}
}

// do submits one item and blocks until its result is ready or ctx
// ends. The error is either the batch error (every member of a failed
// batch sees it) or ctx.Err().
func (b *batcher[Req, Res]) do(ctx context.Context, req Req) (Res, error) {
	w := batchWaiter[Req, Res]{ctx: ctx, req: req, ch: make(chan batchResult[Res], 1)}
	b.mu.Lock()
	b.pending = append(b.pending, w)
	if len(b.pending) >= b.maxBatch {
		batch := b.takeLocked()
		b.mu.Unlock()
		go b.flush(batch)
	} else {
		if len(b.pending) == 1 && b.maxDelay > 0 {
			b.timer = time.AfterFunc(b.maxDelay, b.flushTimer)
		}
		b.mu.Unlock()
		if b.maxDelay <= 0 || b.drainNow.Load() {
			// No coalescing window configured — or the server is
			// draining: flush whatever is pending immediately
			// (degenerates to per-request batches of 1 unless arrivals
			// race).
			b.flushTimer()
		}
	}
	select {
	case r := <-w.ch:
		if r.err != nil && ctx.Err() != nil {
			// The batch failed after this waiter's context ended (both
			// select arms were ready; Go picks one at random). The
			// cancellation owns the outcome: reporting the batch error
			// would let upstream resilience retry or count a failure on
			// behalf of a client that already hung up.
			var zero Res
			return zero, ctx.Err()
		}
		return r.val, r.err
	case <-ctx.Done():
		var zero Res
		return zero, ctx.Err()
	}
}

// drain puts the batcher in drain mode and flushes whatever is pending:
// items already waiting ride out immediately, and items admitted while
// the listener winds down skip the coalescing window. Part of graceful
// shutdown — without it, a request coalesced just before SIGTERM could
// sit on the max-delay timer while the HTTP server's drain deadline
// expires under it (observed as rare lost-batch 503s).
func (b *batcher[Req, Res]) drain() {
	b.drainNow.Store(true)
	b.flushTimer()
}

// takeLocked detaches the pending batch and disarms the timer. Callers
// hold b.mu.
func (b *batcher[Req, Res]) takeLocked() []batchWaiter[Req, Res] {
	batch := b.pending
	b.pending = nil
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	return batch
}

func (b *batcher[Req, Res]) flushTimer() {
	b.mu.Lock()
	batch := b.takeLocked()
	b.mu.Unlock()
	if len(batch) > 0 {
		b.flush(batch)
	}
}

// flush executes one batch and distributes positional results.
func (b *batcher[Req, Res]) flush(batch []batchWaiter[Req, Res]) {
	if b.metrics != nil {
		b.metrics.BatchFlushes.Add(1)
		b.metrics.BatchedItems.Add(int64(len(batch)))
		b.metrics.BatchSize.Observe(float64(len(batch)))
	}
	// Derive the batch context: canceled once every member's context is
	// done, so fully-abandoned work stops burning the pool. It descends
	// from the batcher's base (the server lifecycle), never from any one
	// member — a batch with live waiters must survive other members'
	// cancellations.
	ctx, cancel := context.WithCancel(b.base)
	var live atomic.Int64
	live.Store(int64(len(batch)))
	stops := make([]func() bool, len(batch))
	for i, w := range batch {
		stops[i] = context.AfterFunc(w.ctx, func() {
			if live.Add(-1) == 0 {
				cancel()
			}
		})
	}
	reqs := make([]Req, len(batch))
	for i, w := range batch {
		reqs[i] = w.req
	}
	// The flush fault point sees the batch context, so an injected delay
	// here models a stalled flush that members may cancel out of.
	err := flushFault.Hit(ctx)
	var res []Res
	if err == nil {
		res, err = b.run(ctx, reqs)
	}
	for _, stop := range stops {
		stop()
	}
	cancel()
	for i, w := range batch {
		r := batchResult[Res]{err: err}
		if err == nil {
			r.val = res[i]
		}
		select {
		case w.ch <- r:
		default: // waiter already gone; buffered chan, can't happen, but never block
		}
	}
}
