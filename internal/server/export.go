package server

import (
	"context"
	"net/http"
	"time"

	"udm/internal/obs"

	"udm/internal/udmerr"
)

// This file is the serving substrate the distributed front tier
// (internal/distrib, cmd/udmproxy) reuses: the retry/breaker stack as
// a per-target Guard, the request coalescer, the wire shapes, and the
// sentinel↔status mapping. Everything here is a thin export of
// machinery this package already runs in production — the proxy gets
// the exact same resilience semantics as the single-node server, not a
// reimplementation.

// Wire shapes shared verbatim with the single-node server, so the
// proxy is drop-in URL- and body-compatible.
type (
	ClassifyRequest  = classifyRequest
	ClassifyResponse = classifyResponse
	DensityRequest   = densityRequest
	DensityResponse  = densityResponse
	OutliersRequest  = outliersRequest
	OutliersResponse = outliersResponse
	IngestRequest    = ingestRequest
	IngestResponse   = ingestResponse
	PartialRequest   = partialRequest
	PartialResponse  = partialResponse
	TailResponse     = tailResponse
	ErrorBody        = errorBody
)

// StatusFor maps an error to (HTTP status, stable wire code) via
// errors.Is on the module's sentinels — exported for layers that speak
// the same wire protocol.
func StatusFor(err error) (int, string) { return statusFor(err) }

// SentinelFor inverts the wire mapping: the sentinel error a stable
// code stands for, or nil for codes with no sentinel (e.g.
// "internal"). Clients of the protocol wrap the sentinel so their
// callers classify remote failures with errors.Is, never by matching
// message strings.
func SentinelFor(code string) error {
	switch code {
	case "dimension_mismatch":
		return udmerr.ErrDimensionMismatch
	case "bad_option", "malformed_json":
		return udmerr.ErrBadOption
	case "no_errors":
		return udmerr.ErrNoErrors
	case "untrained":
		return udmerr.ErrUntrained
	case "stale_version":
		return udmerr.ErrStaleVersion
	case "tail_expired":
		return udmerr.ErrTailExpired
	case "shard_timeout":
		return udmerr.ErrShardTimeout
	case "circuit_open":
		return udmerr.ErrCircuitOpen
	case "degraded":
		return udmerr.ErrDegraded
	case "injected_fault":
		return udmerr.ErrInjected
	case "timeout":
		return context.DeadlineExceeded
	case "client_closed_request":
		return context.Canceled
	}
	return nil
}

// WriteJSON writes v as a JSON response with the given status.
func WriteJSON(w http.ResponseWriter, status int, v any) { writeJSON(w, status, v) }

// WriteErrorBody writes the uniform error envelope. Unlike the
// internal helper it touches no metrics — callers own their counters.
func WriteErrorBody(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, errorBody{Error: errorDetail{Code: code, Message: msg}})
}

// Guard bundles one target's resilience stack — the shared
// decorrelated-jitter retrier and a circuit breaker — for callers
// outside this package (the proxy guards each shard with one). Metrics
// land on the supplied registry: udm_retry_total{target=...},
// udm_breaker_state{model=...} and udm_breaker_trips_total{model=...}
// (the breaker series keep their label name for dashboard
// compatibility).
type Guard struct {
	retry *retrier
	br    *breaker
}

// NewGuard builds a guard for one named target under opt's retry and
// breaker configuration (zero values get the production defaults;
// negative RetryMax / BreakerThreshold disable that half).
func NewGuard(target string, opt Options, reg *obs.Registry) *Guard {
	opt = opt.withDefaults()
	return &Guard{
		retry: newRetrier(opt, reg.Counter("udm_retry_total",
			"operations retried after a transient failure", "target", target)),
		br: newBreaker(target, opt, reg),
	}
}

// GuardDo runs op under g's breaker admission and retry budget — the
// same semantics the server's model evaluations get: only transient
// faults are retried or counted against the breaker, and an op whose
// context ended is never re-run.
func GuardDo[T any](ctx context.Context, g *Guard, op func(context.Context) (T, error)) (T, error) {
	return retryDo(ctx, g.retry, g.br, op)
}

// Open reports whether the guard's breaker currently refuses
// admission.
func (g *Guard) Open() bool { return g.br.currentState() == breakerOpen }

// Coalescer micro-batches concurrent single-item operations onto one
// batched call, exactly as the server coalesces single-point requests.
// Construct with NewCoalescer, submit with Do, and call Drain during
// shutdown so no waiter is stranded on the delay timer.
type Coalescer[Req, Res any] struct {
	b *batcher[Req, Res]
}

// NewCoalescer builds a coalescer whose batch lifetimes descend from
// ctx. maxBatch and maxDelay follow the server's semantics (delay ≤ 0
// flushes immediately); run receives the coalesced batch and returns
// positional results.
func NewCoalescer[Req, Res any](ctx context.Context, maxBatch int, maxDelay time.Duration,
	run func(ctx context.Context, reqs []Req) ([]Res, error)) *Coalescer[Req, Res] {
	return &Coalescer[Req, Res]{b: newBatcher(ctx, maxBatch, maxDelay, nil, run)}
}

// Do submits one item and blocks until its result or ctx ends.
func (c *Coalescer[Req, Res]) Do(ctx context.Context, req Req) (Res, error) {
	return c.b.do(ctx, req)
}

// Drain flushes pending items and makes later submissions bypass the
// coalescing window (see batcher.drain).
func (c *Coalescer[Req, Res]) Drain() { c.b.drain() }
