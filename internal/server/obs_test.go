package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestMetricsJSONShape freezes the legacy /metrics JSON contract: the
// exact key set (and JSON types) from before the obs-registry
// migration. Clients parse this document; a key rename or removal is a
// breaking change.
func TestMetricsJSONShape(t *testing.T) {
	s := testServer(t, Options{}, "")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var resp densityResponse
	if status := postJSON(t, ts.URL+"/v1/models/blobs/density", densityRequest{Point: []float64{0, 0}}, &resp); status != http.StatusOK {
		t.Fatalf("density = %d, want 200", status)
	}

	res, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var doc map[string]json.Number
	dec := json.NewDecoder(res.Body)
	dec.UseNumber()
	if err := dec.Decode(&doc); err != nil {
		t.Fatalf("/metrics is no longer a flat numeric document: %v", err)
	}
	want := []string{
		"uptime_seconds", "requests", "errors", "shed", "timeouts", "canceled",
		"classify_requests", "density_requests", "outlier_requests", "ingest_requests",
		"ingested_rows", "batch_flushes", "batched_items", "avg_batch_size",
		"cache_hits", "cache_misses", "cache_hit_rate",
		"latency_count", "latency_mean_us", "latency_p50_us", "latency_p90_us", "latency_p99_us",
		"cache_entries",
	}
	got := make([]string, 0, len(doc))
	for k := range doc {
		got = append(got, k)
	}
	sort.Strings(got)
	sort.Strings(want)
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("/metrics keys changed:\n got %v\nwant %v", got, want)
	}
	if v, _ := doc["requests"].Int64(); v != 1 {
		t.Errorf("requests = %v, want 1", doc["requests"])
	}
	if v, _ := doc["density_requests"].Int64(); v != 1 {
		t.Errorf("density_requests = %v, want 1", doc["density_requests"])
	}
}

// TestMetricsPrometheus exercises /metrics?format=prometheus: the
// output must be a well-formed 0.0.4 exposition containing the
// server-scoped series and the process-wide library series.
func TestMetricsPrometheus(t *testing.T) {
	s := testServer(t, Options{}, "")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var resp densityResponse
	if status := postJSON(t, ts.URL+"/v1/models/blobs/density",
		densityRequest{Points: [][]float64{{0, 0}, {1, 1}}}, &resp); status != http.StatusOK {
		t.Fatalf("density = %d, want 200", status)
	}

	res, err := http.Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if ct := res.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition", ct)
	}
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			t.Fatalf("malformed exposition line %q", line)
		}
	}
	for _, series := range []string{
		"udm_server_requests_total 1",
		`udm_server_endpoint_requests_total{endpoint="density"} 1`,
		`udm_server_request_seconds_bucket{endpoint="density"`,
		"udm_server_latency_seconds_count",
		"udm_server_uptime_seconds ",
		"udm_server_cache_entries ",
		"udm_kde_batches_total",        // default-registry library series
		"udm_parallel_for_calls_total", // fan-out substrate series
	} {
		if !strings.Contains(text, series) {
			t.Errorf("exposition missing %q; got:\n%s", series, text)
		}
	}
}

// TestDebugEndpoints checks the Debug gate: pprof, traces, and slow
// endpoints exist (with runtime gauges on the registry) only when
// Options.Debug is set.
func TestDebugEndpoints(t *testing.T) {
	s := testServer(t, Options{Debug: true}, "")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/traces", "/debug/slow"} {
		res, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, res.Body)
		res.Body.Close()
		if res.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", path, res.StatusCode)
		}
	}
	res, err := http.Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if !strings.Contains(string(body), "udm_runtime_goroutines ") {
		t.Error("Debug server exposition missing runtime gauges")
	}

	off := testServer(t, Options{}, "")
	rec := httptest.NewRecorder()
	off.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("GET /debug/traces without Debug = %d, want 404", rec.Code)
	}
}

// TestRequestSpans checks that a served request produces a trace rooted
// at the endpoint span with the library's batch span as its child.
func TestRequestSpans(t *testing.T) {
	s := testServer(t, Options{}, "")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var resp densityResponse
	// A multi-point request runs the batch call inside the request
	// context, so the kde span nests under the server span.
	if status := postJSON(t, ts.URL+"/v1/models/blobs/density",
		densityRequest{Points: [][]float64{{0, 0}, {1, 1}}}, &resp); status != http.StatusOK {
		t.Fatalf("density = %d, want 200", status)
	}

	// The root span ends in a deferred call after the response is
	// written, so the trace can land in the ring just after the client
	// sees the reply: poll briefly.
	traces := s.Tracer().Recent()
	for deadline := time.Now().Add(2 * time.Second); len(traces) == 0 && time.Now().Before(deadline); {
		time.Sleep(time.Millisecond)
		traces = s.Tracer().Recent()
	}
	if len(traces) == 0 {
		t.Fatal("no traces recorded")
	}
	trace := traces[len(traces)-1]
	if trace.Root != "server.density" {
		t.Fatalf("trace root = %q, want server.density", trace.Root)
	}
	var sawKDE bool
	for _, sp := range trace.Spans {
		if sp.Name == "kde.DensityBatch" {
			sawKDE = true
			if sp.TraceID != trace.TraceID {
				t.Errorf("kde span in trace %d, want %d", sp.TraceID, trace.TraceID)
			}
		}
	}
	if !sawKDE {
		t.Errorf("trace has no kde.DensityBatch child; spans: %+v", trace.Spans)
	}
}

// TestSlowRequestLog checks the slow-span pipeline: a request slower
// than SlowRequest lands in the slow ring and the slow log.
func TestSlowRequestLog(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	s := testServer(t, Options{
		SlowRequest: time.Nanosecond,
		SlowLogf: func(format string, args ...any) {
			mu.Lock()
			lines = append(lines, fmt.Sprintf(format, args...))
			mu.Unlock()
		},
	}, "")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var resp densityResponse
	if status := postJSON(t, ts.URL+"/v1/models/blobs/density",
		densityRequest{Points: [][]float64{{0, 0}}}, &resp); status != http.StatusOK {
		t.Fatalf("density = %d, want 200", status)
	}

	// Same post-response race as TestRequestSpans: poll for the span.
	var names []string
	for deadline := time.Now().Add(2 * time.Second); time.Now().Before(deadline); {
		names = names[:0]
		for _, sp := range s.Tracer().Slow() {
			names = append(names, sp.Name)
		}
		if slicesContains(names, "server.density") {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if !slicesContains(names, "server.density") {
		t.Errorf("slow ring %v missing server.density", names)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(lines) == 0 || !strings.Contains(strings.Join(lines, "\n"), "server.density") {
		t.Errorf("slow log %q missing server.density", lines)
	}
}

func slicesContains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}
