package server

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"

	"udm/internal/core"
	"udm/internal/microcluster"
	"udm/internal/obs"
	"udm/internal/stream"
)

// This file is the multi-tenant control surface: tenant resolution for
// every request (path namespace or header, defaulting for pre-tenancy
// clients), per-tenant fair-share admission, and the staged →
// promote / rollback hot-swap endpoints. The data-plane handlers stay
// in handlers.go; everything tenant-shaped funnels through here.

// TenantHeader names the tenant on un-namespaced paths and echoes the
// resolved tenant on every response — including sheds, so a client can
// tell "my quota" from "the server's capacity" without parsing bodies.
const TenantHeader = "X-UDM-Tenant"

// ModelVersionHeader echoes the activation generation of the model a
// response was computed against. Together with the atomic (model,
// generation) publication it gives clients — and the hot-swap
// atomicity test — a way to pin every answer to exactly one version.
const ModelVersionHeader = "X-UDM-Model-Version"

// KindHeader selects the artifact kind of a staged upload
// (PUT /v1/t/{tenant}/models/{model}); the ?kind= query parameter
// takes precedence.
const KindHeader = "X-UDM-Kind"

// Quota bounds one tenant's footprint. A zero field inherits the
// server-wide default (Options.TenantMax*); a negative field means
// unlimited.
type Quota struct {
	// MaxInflight caps the tenant's concurrently admitted /v1 requests.
	MaxInflight int
	// MaxModels caps the tenant's occupied registry slots (active or
	// staged).
	MaxModels int
	// MaxPoints caps the summarized source points resident across the
	// tenant's active models; ingest and staged uploads that would
	// exceed it are refused.
	MaxPoints int64
}

// quotaFor resolves tenant's effective quota: per-tenant override
// fields first, server-wide defaults for whatever they leave zero.
func (s *Server) quotaFor(tenant string) Quota {
	q := s.opt.TenantQuotas[tenant]
	if q.MaxInflight == 0 {
		q.MaxInflight = s.opt.TenantMaxInflight
	}
	if q.MaxModels == 0 {
		q.MaxModels = s.opt.TenantMaxModels
	}
	if q.MaxPoints == 0 {
		q.MaxPoints = s.opt.TenantMaxPoints
	}
	return q
}

// tenantState is one tenant's admission ledger: an atomic inflight
// count checked against the fair-share cap, plus the tenant-labeled
// counters (Prometheus-only — the JSON /metrics key set is frozen).
type tenantState struct {
	limit    int64 // ≤ 0 = unlimited
	inflight atomic.Int64
	requests *obs.Counter
	shed     *obs.Counter
}

func (t *tenantState) acquire() bool {
	if t.limit <= 0 {
		return true
	}
	if t.inflight.Add(1) > t.limit {
		t.inflight.Add(-1)
		return false
	}
	return true
}

func (t *tenantState) release() {
	if t.limit > 0 {
		t.inflight.Add(-1)
	}
}

// tenant get-or-creates the admission state for a tenant id.
func (s *Server) tenant(id string) *tenantState {
	s.tnMu.Lock()
	defer s.tnMu.Unlock()
	ts := s.tenantStates[id]
	if ts == nil {
		ts = &tenantState{
			limit:    int64(s.quotaFor(id).MaxInflight),
			requests: s.metrics.reg.Counter("udm_server_tenant_requests_total", "requests by tenant", "tenant", id),
			shed:     s.metrics.reg.Counter("udm_server_tenant_shed_total", "requests shed by the per-tenant fair-share cap", "tenant", id),
		}
		s.tenantStates[id] = ts
	}
	return ts
}

// requestTenant resolves the tenant a request addresses: the
// /v1/t/{tenant}/... path segment when present, the X-UDM-Tenant
// header on legacy paths, and the default tenant when neither is set —
// so a pre-tenancy client's requests mean exactly what they always
// did. ok=false means the id failed validation.
func requestTenant(r *http.Request) (string, bool) {
	t := r.PathValue("tenant")
	if t == "" {
		t = r.Header.Get(TenantHeader)
	}
	if t == "" {
		return DefaultTenant, true
	}
	return t, ValidIdent(t)
}

func (s *Server) badTenant(w http.ResponseWriter, tenant string) {
	writeError(w, s.metrics, http.StatusBadRequest, "bad_tenant",
		fmt.Sprintf("invalid tenant id %q (want 1-64 chars of [A-Za-z0-9._-])", tenant))
}

// --- hot-swap lifecycle: PUT (stage), /promote, /rollback ---

type stageResponse struct {
	Model  string `json:"model"`
	Kind   Kind   `json:"kind"`
	Dims   int    `json:"dims"`
	Points int    `json:"points"`
	Staged bool   `json:"staged"`
}

type swapResponse struct {
	Model string `json:"model"`
	Gen   uint64 `json:"gen"`
}

// handleStage (PUT /v1/t/{tenant}/models/{model}) decodes the uploaded
// artifact (?kind=transform|summarizer|stream, or X-UDM-Kind) and
// installs it as the slot's staged version. Nothing is served from it
// until /promote; staging again replaces the staged version. Model
// construction uses the server's ModelKDE / ModelThreshold options, so
// a staged replacement evaluates under the same estimator policy as
// the model it will replace.
func (s *Server) handleStage(w http.ResponseWriter, r *http.Request) {
	tenant, ok := requestTenant(r)
	if !ok {
		s.badTenant(w, r.PathValue("tenant"))
		return
	}
	w.Header().Set(TenantHeader, tenant)
	name := r.PathValue("model")
	if !ValidIdent(name) {
		writeError(w, s.metrics, http.StatusBadRequest, "bad_option",
			fmt.Sprintf("invalid model name %q (want 1-64 chars of [A-Za-z0-9._-])", name))
		return
	}
	kindName := r.URL.Query().Get("kind")
	if kindName == "" {
		kindName = r.Header.Get(KindHeader)
	}
	q := s.quotaFor(tenant)
	if q.MaxModels > 0 && !s.reg.Staged(tenant, name) {
		if _, exists := s.reg.Resolve(tenant, name); !exists && s.reg.ModelCount(tenant) >= q.MaxModels {
			writeError(w, s.metrics, http.StatusTooManyRequests, "quota_exceeded",
				fmt.Sprintf("tenant %q is at its model quota (%d)", tenant, q.MaxModels))
			return
		}
	}
	var m *Model
	var err error
	switch Kind(kindName) {
	case KindTransform:
		var t *core.Transform
		if t, err = core.LoadTransform(r.Body); err == nil {
			m, err = NewTransformModel(name, t, core.ClassifierOptions{Threshold: s.opt.ModelThreshold, KDE: s.opt.ModelKDE})
		}
	case KindSummarizer:
		var sum *microcluster.Summarizer
		if sum, err = microcluster.Load(r.Body); err == nil {
			m, err = NewSummarizerModel(name, sum, s.opt.ModelKDE)
		}
	case KindStream:
		var eng *stream.Engine
		if eng, err = stream.LoadEngine(r.Body); err == nil {
			m, err = NewStreamModel(name, eng, s.opt.ModelKDE, "")
		}
	default:
		writeError(w, s.metrics, http.StatusBadRequest, "bad_option",
			fmt.Sprintf("unknown model kind %q (want ?kind=transform|summarizer|stream)", kindName))
		return
	}
	if err != nil {
		writeError(w, s.metrics, http.StatusBadRequest, "bad_artifact",
			fmt.Sprintf("decoding %s artifact: %v", kindName, err))
		return
	}
	if q.MaxPoints > 0 && s.reg.Points(tenant, name)+int64(m.Points()) > q.MaxPoints {
		writeError(w, s.metrics, http.StatusTooManyRequests, "quota_exceeded",
			fmt.Sprintf("staging %d points would exceed tenant %q point quota (%d)", m.Points(), tenant, q.MaxPoints))
		return
	}
	if err := s.reg.Stage(tenant, name, m); err != nil {
		writeError(w, s.metrics, http.StatusBadRequest, "bad_option", err.Error())
		return
	}
	s.metrics.SwapStaged.Inc()
	writeJSON(w, http.StatusOK, stageResponse{Model: name, Kind: m.Kind(), Dims: m.Dims(), Points: m.Points(), Staged: true})
}

// handlePromote publishes the staged version atomically and retires
// the old version's batchers (draining them keeps in-flight pinned
// requests serviceable while new requests coalesce on the new
// version's batchers).
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	s.handleSwap(w, r, s.reg.Promote, s.metrics.SwapPromotes, "no_staged")
}

// handleRollback republishes the previously active version under a
// fresh generation — the zero-downtime undo of a bad promote.
func (s *Server) handleRollback(w http.ResponseWriter, r *http.Request) {
	s.handleSwap(w, r, s.reg.Rollback, s.metrics.SwapRollbacks, "no_previous")
}

func (s *Server) handleSwap(w http.ResponseWriter, r *http.Request,
	swap func(tenant, name string) (*servedModel, *servedModel, error), counter *obs.Counter, missingCode string) {
	tenant, ok := requestTenant(r)
	if !ok {
		s.badTenant(w, r.PathValue("tenant"))
		return
	}
	w.Header().Set(TenantHeader, tenant)
	name := r.PathValue("model")
	now, old, err := swap(tenant, name)
	if err != nil {
		if errors.Is(err, ErrNoStaged) || errors.Is(err, ErrNoPrevious) {
			writeError(w, s.metrics, http.StatusConflict, missingCode, err.Error())
			return
		}
		s.fail(w, err)
		return
	}
	if old != nil {
		s.retire(old.m)
	}
	counter.Inc()
	w.Header().Set(ModelVersionHeader, strconv.FormatUint(now.gen, 10))
	writeJSON(w, http.StatusOK, swapResponse{Model: name, Gen: now.gen})
}
