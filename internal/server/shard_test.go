package server

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"udm/internal/datagen"
	"udm/internal/kde"
	"udm/internal/microcluster"
	"udm/internal/rng"
	"udm/internal/stream"
)

// getResp GETs url and returns the live response; the caller closes the
// body.
func getResp(t testing.TB, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestShardSummaryEndpoint(t *testing.T) {
	s := testServer(t, Options{}, "")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Static model: version 0, body decodes to the construction summary.
	resp := getResp(t, ts.URL+"/v1/models/blobs/summary")
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("summary status %d", resp.StatusCode)
	}
	if v := resp.Header.Get(VersionHeader); v != "0" {
		t.Fatalf("transform summary version header %q, want 0", v)
	}
	sum, err := microcluster.Load(resp.Body)
	if err != nil {
		t.Fatalf("decoding summary: %v", err)
	}
	m, _ := s.reg.Get("blobs")
	if sum.Dims() != m.Dims() || sum.Len() != m.sum.Len() {
		t.Fatalf("round-tripped summary shape %d/%d, want %d/%d",
			sum.Dims(), sum.Len(), m.Dims(), m.sum.Len())
	}

	// Stream model: version reflects the ingested row count.
	lm, _ := s.reg.Get("live")
	resp2 := getResp(t, ts.URL+"/v1/models/live/summary")
	defer resp2.Body.Close()
	want := strconv.Itoa(lm.Engine().Count())
	if v := resp2.Header.Get(VersionHeader); v != want {
		t.Fatalf("stream summary version header %q, want %s", v, want)
	}
	if resp := getResp(t, ts.URL+"/v1/models/nope/summary"); resp.StatusCode != 404 {
		resp.Body.Close()
		t.Fatalf("unknown model: %d, want 404", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
}

// TestShardPartialEndpoint checks the wire contract end to end for a
// single shard: ordered term sum divided by the reported weight must be
// bit-identical to the /density answer for the same point, and the
// response carries the pinned version back.
func TestShardPartialEndpoint(t *testing.T) {
	s := testServer(t, Options{}, "")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// The coordinator's bandwidths for a one-shard ring are just the
	// shard's own: read them off the model's estimator.
	m, _ := s.reg.Get("blobs")
	est, _, err := m.estimator()
	if err != nil {
		t.Fatal(err)
	}
	h := make([]float64, m.Dims())
	for j := range h {
		h[j] = est.BandwidthFor(j)
	}

	queries := [][]float64{{0, 0}, {2.5, 2.5}, {-1, 3}, {4, -2}}
	var pr partialResponse
	status := postJSON(t, ts.URL+"/v1/models/blobs/partial", partialRequest{
		Points: queries, Bandwidths: h, Version: 0,
	}, &pr)
	if status != 200 {
		t.Fatalf("partial status %d", status)
	}
	if pr.Version != 0 {
		t.Fatalf("partial version %d, want 0", pr.Version)
	}
	if pr.Weight != float64(est.Count()) {
		t.Fatalf("partial weight %v, want %v", pr.Weight, float64(est.Count()))
	}
	if len(pr.Terms) != len(queries) {
		t.Fatalf("%d term vectors for %d queries", len(pr.Terms), len(queries))
	}
	for i, x := range queries {
		var sum float64
		for _, v := range pr.Terms[i] {
			sum += v
		}
		got := sum / pr.Weight
		want := est.Density(x)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("query %d: wire term sum %v != Density %v", i, got, want)
		}
	}

	// A pinned version the shard is not at answers 409 stale_version.
	status, code := errCode(t, ts.URL+"/v1/models/blobs/partial", partialRequest{
		Points: queries[:1], Bandwidths: h, Version: 7,
	})
	if status != http.StatusConflict || code != "stale_version" {
		t.Fatalf("stale pin: %d %q, want 409 stale_version", status, code)
	}

	// Malformed points keep the usual validation codes.
	status, code = errCode(t, ts.URL+"/v1/models/blobs/partial", partialRequest{
		Points: [][]float64{{1}}, Bandwidths: h, Version: 0,
	})
	if status != http.StatusBadRequest || code != "dimension_mismatch" {
		t.Fatalf("short point: %d %q, want 400 dimension_mismatch", status, code)
	}
}

func TestShardCheckpointEndpoint(t *testing.T) {
	s := testServer(t, Options{}, "")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	lm, _ := s.reg.Get("live")
	resp := getResp(t, ts.URL+"/v1/models/live/checkpoint")
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("checkpoint status %d", resp.StatusCode)
	}
	eng, err := stream.LoadEngine(resp.Body)
	if err != nil {
		t.Fatalf("decoding checkpoint: %v", err)
	}
	if eng.Count() != lm.Engine().Count() {
		t.Fatalf("restored count %d, want %d", eng.Count(), lm.Engine().Count())
	}

	// Non-stream models have no checkpoint.
	status, code := func() (int, string) {
		resp := getResp(t, ts.URL+"/v1/models/blobs/checkpoint")
		defer resp.Body.Close()
		var e errorBody
		decodeErrBody(t, resp, &e)
		return resp.StatusCode, e.Error.Code
	}()
	if status != http.StatusBadRequest || code != "unsupported_kind" {
		t.Fatalf("transform checkpoint: %d %q, want 400 unsupported_kind", status, code)
	}
}

// jsonDecode decodes a response body into out.
func jsonDecode(resp *http.Response, out any) error {
	return json.NewDecoder(resp.Body).Decode(out)
}

func decodeErrBody(t testing.TB, resp *http.Response, e *errorBody) {
	t.Helper()
	if err := jsonDecode(resp, e); err != nil {
		t.Fatalf("decoding error body: %v", err)
	}
}

func TestShardTailEndpoint(t *testing.T) {
	s := testServer(t, Options{}, "")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	lm, _ := s.reg.Get("live")
	n := lm.Engine().Count()

	// From zero: the default window (4096) covers all 300 seed rows.
	resp := getResp(t, ts.URL+"/v1/models/live/tail?from=0")
	var tr tailResponse
	if err := jsonDecode(resp, &tr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("tail status %d", resp.StatusCode)
	}
	if tr.Count != int64(n) || len(tr.Records) != n {
		t.Fatalf("tail from 0: %d records, count %d; want %d", len(tr.Records), tr.Count, n)
	}
	for i, rec := range tr.Records {
		if rec.Seq != int64(i+1) {
			t.Fatalf("record %d has seq %d, want %d", i, rec.Seq, i+1)
		}
	}

	// Caught up: empty record set, still 200.
	resp = getResp(t, ts.URL+"/v1/models/live/tail?from="+strconv.Itoa(n))
	tr = tailResponse{}
	if err := jsonDecode(resp, &tr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || len(tr.Records) != 0 {
		t.Fatalf("caught-up tail: %d with %d records, want 200 and none", resp.StatusCode, len(tr.Records))
	}

	// Missing/negative ?from is a 400; non-stream models a 400 too.
	for _, u := range []string{
		"/v1/models/live/tail",
		"/v1/models/live/tail?from=-1",
		"/v1/models/blobs/tail?from=0",
	} {
		resp := getResp(t, ts.URL+u)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET %s = %d, want 400", u, resp.StatusCode)
		}
	}
}

// TestShardTailExpired forces the window to age out and checks the 410
// restart signal.
func TestShardTailExpired(t *testing.T) {
	clean, err := datagen.TwoBlobs(2.5).Generate(100, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := stream.NewEngine(stream.Options{MicroClusters: 10, Dims: clean.Dims(), TailWindow: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range clean.X {
		eng.Add(x, nil, int64(i+1))
	}
	reg := NewRegistry()
	sm, err := NewStreamModel("tiny", eng, kde.Options{}, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Add(sm); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(reg, Options{}).Handler())
	defer ts.Close()

	resp := getResp(t, ts.URL+"/v1/models/tiny/tail?from=0")
	var e errorBody
	decodeErrBody(t, resp, &e)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone || e.Error.Code != "tail_expired" {
		t.Fatalf("expired tail: %d %q, want 410 tail_expired", resp.StatusCode, e.Error.Code)
	}

	// The still-covered suffix is served fine.
	resp = getResp(t, ts.URL+"/v1/models/tiny/tail?from=95")
	var tr tailResponse
	if err := jsonDecode(resp, &tr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || len(tr.Records) != 5 {
		t.Fatalf("suffix tail: %d with %d records, want 200 and 5", resp.StatusCode, len(tr.Records))
	}
}
