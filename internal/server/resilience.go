package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"udm/internal/faultinject"
	"udm/internal/obs"
	"udm/internal/rng"
	"udm/internal/udmerr"
)

// Injection sites compiled into the serving layer. Each is a named
// faultinject.Point consulted on the path it guards; all are free
// (one atomic load) until a fault plan is armed.
var (
	// flushFault fires once per coalesced batch flush, before the
	// batched library call runs (batcher.go).
	flushFault = faultinject.NewPoint("server.batcher.flush")
	// cacheGetFault makes the density cache unavailable for a lookup;
	// the serving layer must treat that as a miss, never as a failure.
	cacheGetFault = faultinject.NewPoint("server.cache.get")
	// evalFault fires once per model evaluation (batched or direct) —
	// the "backend is failing" lever behind the retry and breaker tests.
	evalFault = faultinject.NewPoint("server.model.eval")
	// modelCheckpointFault guards the server-side checkpoint writer
	// (registry.go): error plans fail the write, truncation plans tear
	// the artifact.
	modelCheckpointFault = faultinject.NewPoint("server.checkpoint.write")
)

// retryable classifies an error as a transient backend fault worth
// retrying. Context endings are the caller's signal to stop; the
// sentinel input/configuration errors are deterministic (the same
// request fails the same way forever); breaker refusals are load
// shedding, not new information.
func retryable(err error) bool {
	switch {
	case err == nil,
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, udmerr.ErrDimensionMismatch),
		errors.Is(err, udmerr.ErrBadOption),
		errors.Is(err, udmerr.ErrNoErrors),
		errors.Is(err, udmerr.ErrUntrained),
		errors.Is(err, udmerr.ErrBadData),
		errors.Is(err, udmerr.ErrCircuitOpen),
		errors.Is(err, udmerr.ErrDegraded),
		errors.Is(err, udmerr.ErrStaleVersion),
		errors.Is(err, udmerr.ErrTailExpired):
		return false
	}
	return true
}

// retrier bounds and paces retries of failed model evaluations with
// decorrelated-jitter backoff: each sleep is drawn uniformly from
// [base, 3·prev] and clamped to cap, so consecutive retries spread out
// without synchronizing across requests. Draws come from a seeded
// rng.Source, making sleep sequences reproducible for a fixed seed and
// arrival order — the fault-matrix tests pin exact schedules this way.
type retrier struct {
	max       int           // retries after the first attempt
	base, cap time.Duration // backoff window
	retries   *obs.Counter  // udm_retry_total

	mu  sync.Mutex
	rng *rng.Source

	// sleep is context-aware and swappable so tests can run retry
	// schedules without wall-clock delay.
	sleep func(context.Context, time.Duration) error
}

func newRetrier(opt Options, retries *obs.Counter) *retrier {
	return &retrier{
		max:     opt.RetryMax,
		base:    opt.RetryBase,
		cap:     opt.RetryCap,
		retries: retries,
		rng:     rng.New(opt.RetrySeed),
		sleep:   sleepCtx,
	}
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// backoff draws the next decorrelated-jitter delay and advances prev.
func (r *retrier) backoff(prev *time.Duration) time.Duration {
	lo, hi := float64(r.base), 3*float64(*prev)
	if hi < lo {
		hi = lo
	}
	r.mu.Lock()
	d := time.Duration(r.rng.Uniform(lo, hi))
	r.mu.Unlock()
	if d > r.cap {
		d = r.cap
	}
	*prev = d
	return d
}

// retryDo runs op under the model's circuit breaker and the server's
// retry budget. The happy path adds one breaker admission (a short
// mutex hold) and one outcome report around op — it never touches the
// result value, so responses stay bit-identical to direct library
// calls. On retryable failure it backs off and re-runs op with the
// same arguments; a request whose context has ended is never retried
// (its failure already has an owner: the client).
func retryDo[T any](ctx context.Context, r *retrier, br *breaker, op func(context.Context) (T, error)) (T, error) {
	var zero T
	var lastErr error
	prev := r.base
	for attempt := 0; ; attempt++ {
		if err := br.allow(); err != nil {
			if lastErr != nil {
				// The breaker opened under our own failed attempts;
				// the original failure is the informative error.
				return zero, lastErr
			}
			return zero, err
		}
		v, err := op(ctx)
		// Only transient backend faults count against the breaker:
		// input errors and context endings say nothing about model
		// health.
		br.done(err == nil || !retryable(err))
		if err == nil {
			return v, nil
		}
		lastErr = err
		if !retryable(err) || attempt >= r.max || ctx.Err() != nil {
			return zero, err
		}
		r.retries.Inc()
		if serr := r.sleep(ctx, r.backoff(&prev)); serr != nil {
			return zero, err
		}
	}
}

// breakerState is the classic three-state circuit-breaker automaton.
type breakerState int32

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// breaker is a per-model circuit breaker. Closed: requests flow,
// consecutive backend failures are counted. Open (after threshold
// failures): requests are refused with ErrCircuitOpen without touching
// the model, until cooldown elapses. Half-open: up to probes requests
// are let through; probes consecutive successes close the breaker, any
// failure reopens it (restarting the cooldown).
//
// A nil *breaker is valid and always allows — the disabled
// configuration compiles to two nil checks.
type breaker struct {
	model     string
	threshold int
	cooldown  time.Duration
	probes    int
	now       func() time.Time // swappable for deterministic tests
	gauge     *obs.Gauge       // udm_breaker_state{model=...}: 0/1/2
	trips     *obs.Counter     // udm_breaker_trips_total{model=...}

	mu       sync.Mutex
	state    breakerState
	fails    int       // consecutive failures while closed
	oks      int       // consecutive probe successes while half-open
	inflight int       // admitted probes while half-open
	openedAt time.Time // when the breaker last opened
}

func newBreaker(model string, opt Options, reg *obs.Registry) *breaker {
	if opt.BreakerThreshold <= 0 {
		return nil
	}
	b := &breaker{
		model:     model,
		threshold: opt.BreakerThreshold,
		cooldown:  opt.BreakerCooldown,
		probes:    opt.BreakerProbes,
		now:       time.Now,
		gauge: reg.Gauge("udm_breaker_state",
			"circuit-breaker state by model (0 closed, 1 open, 2 half-open)", "model", model),
		trips: reg.Counter("udm_breaker_trips_total",
			"circuit-breaker open transitions by model", "model", model),
	}
	b.gauge.Set(float64(breakerClosed))
	return b
}

// allow admits or refuses one call. Every nil return must be paired
// with exactly one done call reporting the outcome.
func (b *breaker) allow() error {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerOpen {
		if b.now().Sub(b.openedAt) < b.cooldown {
			return fmt.Errorf("server: model %q: %w (cooling down)", b.model, udmerr.ErrCircuitOpen)
		}
		b.setState(breakerHalfOpen)
		b.oks, b.inflight = 0, 0
	}
	if b.state == breakerHalfOpen {
		if b.inflight >= b.probes {
			return fmt.Errorf("server: model %q: %w (half-open, probes in flight)", b.model, udmerr.ErrCircuitOpen)
		}
		b.inflight++
	}
	return nil
}

// done reports the outcome of an allowed call; ok means the backend is
// healthy (success, or a failure that is the caller's fault).
func (b *breaker) done(ok bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		if ok {
			b.fails = 0
			return
		}
		b.fails++
		if b.fails >= b.threshold {
			b.trip()
		}
	case breakerHalfOpen:
		b.inflight--
		if !ok {
			b.trip()
			return
		}
		b.oks++
		if b.oks >= b.probes {
			b.setState(breakerClosed)
			b.fails = 0
		}
	case breakerOpen:
		// A call admitted in half-open can report after another probe
		// already reopened the breaker; its outcome is stale.
	}
}

// trip opens the breaker and starts the cooldown clock. Callers hold
// b.mu.
func (b *breaker) trip() {
	b.setState(breakerOpen)
	b.openedAt = b.now()
	b.fails = 0
	b.trips.Inc()
}

// setState transitions the automaton and mirrors it to the gauge.
// Callers hold b.mu.
func (b *breaker) setState(s breakerState) {
	b.state = s
	b.gauge.Set(float64(s))
}

// currentState snapshots the state (for tests and introspection).
func (b *breaker) currentState() breakerState {
	if b == nil {
		return breakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
