package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"udm/internal/core"
	"udm/internal/datagen"
	"udm/internal/kde"
	"udm/internal/rng"
	"udm/internal/stream"
	"udm/internal/udmerr"
	"udm/internal/uncertain"
)

// testTransform builds a small trained transform shared by the tests.
func testTransform(t testing.TB) *core.Transform {
	t.Helper()
	clean, err := datagen.TwoBlobs(2.5).Generate(400, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := uncertain.Perturb(clean, 1.0, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := core.NewTransform(noisy, core.TransformOptions{
		MicroClusters: 40, ErrorAdjust: true, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// testEngine builds a stream engine seeded with a few hundred rows.
func testEngine(t testing.TB) *stream.Engine {
	t.Helper()
	clean, err := datagen.TwoBlobs(2.5).Generate(300, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := stream.NewEngine(stream.Options{MicroClusters: 20, Dims: clean.Dims()})
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range clean.X {
		eng.Add(x, nil, int64(i+1))
	}
	return eng
}

// testServer wires a transform model ("blobs") and a stream model
// ("live", checkpointing into dir when non-empty) behind a Server.
func testServer(t testing.TB, opt Options, checkpointDir string) *Server {
	t.Helper()
	reg := NewRegistry()
	tm, err := NewTransformModel("blobs", testTransform(t), core.ClassifierOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Add(tm); err != nil {
		t.Fatal(err)
	}
	path := ""
	if checkpointDir != "" {
		path = filepath.Join(checkpointDir, "live.gob")
	}
	sm, err := NewStreamModel("live", testEngine(t), kde.Options{ErrorAdjust: true}, path)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Add(sm); err != nil {
		t.Fatal(err)
	}
	return New(reg, opt)
}

// postJSON marshals body, POSTs it, and decodes the response into out,
// returning the status code.
func postJSON(t testing.TB, url string, body, out any) int {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s: decoding response: %v", url, err)
		}
	}
	return resp.StatusCode
}

func errCode(t testing.TB, url string, body any) (int, string) {
	t.Helper()
	var e errorBody
	status := postJSON(t, url, body, &e)
	return status, e.Error.Code
}

func TestHealthAndIntrospection(t *testing.T) {
	s := testServer(t, Options{}, "")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", path, resp.StatusCode)
		}
	}

	var models struct {
		Models []modelInfo `json:"models"`
	}
	resp, err := http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&models); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(models.Models) != 2 {
		t.Fatalf("listed %d models, want 2", len(models.Models))
	}
	if models.Models[0].Name != "blobs" || models.Models[0].Kind != KindTransform {
		t.Errorf("model[0] = %+v, want blobs/transform", models.Models[0])
	}
	if models.Models[1].Name != "live" || models.Models[1].Count != 300 {
		t.Errorf("model[1] = %+v, want live with 300 rows", models.Models[1])
	}

	var metrics map[string]any
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, key := range []string{"requests", "shed", "batch_flushes", "cache_hit_rate", "latency_p99_us"} {
		if _, ok := metrics[key]; !ok {
			t.Errorf("/metrics missing %q", key)
		}
	}
}

func TestClassifyEndpoint(t *testing.T) {
	s := testServer(t, Options{}, "")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	url := ts.URL + "/v1/models/blobs/classify"

	clf, _ := s.reg.Get("blobs")
	x := []float64{-2.5, 0}
	want, err := clf.Classifier().Classify(x)
	if err != nil {
		t.Fatal(err)
	}

	var single classifyResponse
	if status := postJSON(t, url, map[string]any{"point": x}, &single); status != 200 {
		t.Fatalf("single classify = %d, want 200", status)
	}
	if single.Label == nil || *single.Label != want {
		t.Errorf("served label = %v, want %d", single.Label, want)
	}

	var multi classifyResponse
	if status := postJSON(t, url, map[string]any{"points": [][]float64{x, {2.5, 0}}}, &multi); status != 200 {
		t.Fatalf("multi classify = %d, want 200", status)
	}
	if len(multi.Labels) != 2 || multi.Labels[0] != want {
		t.Errorf("served labels = %v, want leading %d", multi.Labels, want)
	}
}

func TestEndpointErrors(t *testing.T) {
	s := testServer(t, Options{}, "")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name   string
		url    string
		body   any
		status int
		code   string
	}{
		{"unknown model", "/v1/models/nope/classify", map[string]any{"point": []float64{0, 0}}, 404, "model_not_found"},
		{"dim mismatch", "/v1/models/blobs/classify", map[string]any{"point": []float64{1, 2, 3}}, 400, "dimension_mismatch"},
		{"dim mismatch batch", "/v1/models/blobs/density", map[string]any{"points": [][]float64{{1, 2}, {3}}}, 400, "dimension_mismatch"},
		{"bad subspace dim", "/v1/models/blobs/density", map[string]any{"point": []float64{1, 2}, "dims": []int{7}}, 400, "dimension_mismatch"},
		{"empty request", "/v1/models/blobs/classify", map[string]any{}, 400, "bad_option"},
		{"classify on stream", "/v1/models/live/classify", map[string]any{"point": []float64{0, 0}}, 400, "unsupported_kind"},
		{"ingest on transform", "/v1/models/blobs/ingest", map[string]any{"points": [][]float64{{0, 0}}}, 400, "unsupported_kind"},
		{"mismatched error rows", "/v1/models/live/ingest", map[string]any{
			"points": [][]float64{{0, 0}}, "errors": [][]float64{{0.1, 0.1}, {0.2, 0.2}},
		}, 400, "dimension_mismatch"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, code := errCode(t, ts.URL+tc.url, tc.body)
			if status != tc.status || code != tc.code {
				t.Errorf("got %d/%q, want %d/%q", status, code, tc.status, tc.code)
			}
		})
	}

	// Malformed JSON (not expressible via postJSON's marshal).
	resp, err := http.Post(ts.URL+"/v1/models/blobs/classify", "application/json",
		bytes.NewReader([]byte(`{"point": [1,`)))
	if err != nil {
		t.Fatal(err)
	}
	var e errorBody
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 || e.Error.Code != "malformed_json" {
		t.Errorf("malformed JSON: got %d/%q, want 400/malformed_json", resp.StatusCode, e.Error.Code)
	}
}

func TestDensityCacheAndBitIdentity(t *testing.T) {
	s := testServer(t, Options{}, "")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	url := ts.URL + "/v1/models/blobs/density"

	m, _ := s.reg.Get("blobs")
	est, _, err := m.estimator()
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{-1.5, 0.5}
	direct, err := est.DensityBatch([][]float64{x}, nil, 1)
	if err != nil {
		t.Fatal(err)
	}

	var first, second densityResponse
	if status := postJSON(t, url, map[string]any{"point": x}, &first); status != 200 {
		t.Fatalf("density = %d, want 200", status)
	}
	if first.Cached {
		t.Error("first query reported cached=true")
	}
	if *first.Density != direct[0] {
		t.Errorf("served density %v != direct %v (must be bit-identical)", *first.Density, direct[0])
	}
	if status := postJSON(t, url, map[string]any{"point": x}, &second); status != 200 {
		t.Fatalf("density = %d, want 200", status)
	}
	if !second.Cached {
		t.Error("repeat query not served from cache")
	}
	if *second.Density != direct[0] {
		t.Errorf("cached density %v != direct %v", *second.Density, direct[0])
	}
	if hits := s.metrics.CacheHits.Load(); hits != 1 {
		t.Errorf("cache hits = %d, want 1", hits)
	}

	// Subspace densities bypass coalescing but still go through the
	// cache and must match direct calls too.
	sub, err := est.DensityBatch([][]float64{x}, []int{0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	var subResp densityResponse
	if status := postJSON(t, url, map[string]any{"point": x, "dims": []int{0}}, &subResp); status != 200 {
		t.Fatalf("subspace density = %d, want 200", status)
	}
	if *subResp.Density != sub[0] {
		t.Errorf("subspace density %v != direct %v", *subResp.Density, sub[0])
	}
}

func TestDensityAccuracyModes(t *testing.T) {
	s := testServer(t, Options{}, "")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	url := ts.URL + "/v1/models/blobs/density"

	post := func(body any) (*http.Response, densityResponse) {
		t.Helper()
		buf, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out densityResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return resp, out
	}

	x := []float64{-1.5, 0.5}
	exactResp, exact := post(map[string]any{"point": x})
	if exactResp.StatusCode != 200 {
		t.Fatalf("exact density = %d, want 200", exactResp.StatusCode)
	}
	if got := exactResp.Header.Get("X-UDM-Accuracy"); got != "exact" {
		t.Errorf("X-UDM-Accuracy = %q, want \"exact\"", got)
	}

	const eps = 1e-6
	approxResp, approx := post(map[string]any{"point": x, "accuracy": "approx", "epsilon": eps})
	if approxResp.StatusCode != 200 {
		t.Fatalf("approx density = %d, want 200", approxResp.StatusCode)
	}
	if got := approxResp.Header.Get("X-UDM-Accuracy"); got != "approx(1e-06)" {
		t.Errorf("X-UDM-Accuracy = %q, want \"approx(1e-06)\"", got)
	}
	// The approx answer must honor the relative-error contract, and must
	// not have been served from the exact query's cache entry: the exact
	// point was just cached, so a shared key would return cached=true.
	if approx.Cached {
		t.Error("approx query hit the exact cache entry (accuracy missing from key)")
	}
	rel := (*approx.Density - *exact.Density) / *exact.Density
	if rel < -eps || rel > eps {
		t.Errorf("approx density %v vs exact %v: rel error %v exceeds %v",
			*approx.Density, *exact.Density, rel, eps)
	}

	// Repeat approx query hits its own cache entry.
	if _, again := post(map[string]any{"point": x, "accuracy": "approx", "epsilon": eps}); !again.Cached {
		t.Error("repeat approx query not served from cache")
	}

	// Batch requests honor the mode too.
	batchResp, batch := post(map[string]any{
		"points": [][]float64{x, {2.0, 0.0}}, "accuracy": "approx",
	})
	if batchResp.StatusCode != 200 || len(batch.Densities) != 2 {
		t.Fatalf("approx batch = %d with %d densities", batchResp.StatusCode, len(batch.Densities))
	}
	rel = (batch.Densities[0] - *exact.Density) / *exact.Density
	if rel < -eps || rel > eps {
		t.Errorf("approx batch density %v vs exact %v: rel error %v", batch.Densities[0], *exact.Density, rel)
	}

	// "approx" with no epsilon defaults rather than failing.
	defResp, _ := post(map[string]any{"point": x, "accuracy": "approx"})
	if defResp.StatusCode != 200 || defResp.Header.Get("X-UDM-Accuracy") != "approx(1e-06)" {
		t.Errorf("default-epsilon approx: %d / %q", defResp.StatusCode, defResp.Header.Get("X-UDM-Accuracy"))
	}

	for _, bad := range []map[string]any{
		{"point": x, "accuracy": "fast"},
		{"point": x, "accuracy": "approx", "epsilon": -1.0},
		{"point": x, "accuracy": "exact", "epsilon": 0.5},
	} {
		status, code := errCode(t, url, bad)
		if status != 400 || code != "bad_option" {
			t.Errorf("accuracy %v: got %d/%q, want 400/bad_option", bad, status, code)
		}
	}
}

func TestOutliersEndpoint(t *testing.T) {
	s := testServer(t, Options{}, "")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// One blatant outlier among inliers, scored against each model kind.
	queries := [][]float64{{-2.5, 0}, {2.5, 0}, {-2.3, 0.2}, {2.2, -0.1}, {40, 40}}
	for _, model := range []string{"blobs", "live"} {
		var resp outliersResponse
		status := postJSON(t, ts.URL+"/v1/models/"+model+"/outliers",
			map[string]any{"points": queries, "contamination": 0.2}, &resp)
		if status != 200 {
			t.Fatalf("%s outliers = %d, want 200", model, status)
		}
		if len(resp.Scores) != len(queries) || len(resp.Outliers) != len(queries) {
			t.Fatalf("%s: got %d scores / %d flags, want %d", model, len(resp.Scores), len(resp.Outliers), len(queries))
		}
		if !resp.Outliers[4] {
			t.Errorf("%s: the far point was not flagged (scores %v)", model, resp.Scores)
		}
	}
}

func TestIngestAdvancesModel(t *testing.T) {
	s := testServer(t, Options{}, "")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	m, _ := s.reg.Get("live")
	before := m.Engine().Count()

	// Densities before and after ingesting a tight far-away clump must
	// differ: ingest must both update the engine and retire the cache.
	probe := map[string]any{"point": []float64{30, 30}}
	var d0 densityResponse
	if status := postJSON(t, ts.URL+"/v1/models/live/density", probe, &d0); status != 200 {
		t.Fatalf("density = %d, want 200", status)
	}

	rows := make([][]float64, 50)
	for i := range rows {
		rows[i] = []float64{30 + float64(i%5)/10, 30 - float64(i%7)/10}
	}
	var ing ingestResponse
	if status := postJSON(t, ts.URL+"/v1/models/live/ingest", map[string]any{"points": rows}, &ing); status != 200 {
		t.Fatalf("ingest = %d, want 200", status)
	}
	if ing.Ingested != 50 || ing.Count != before+50 {
		t.Errorf("ingest response %+v, want 50 ingested, count %d", ing, before+50)
	}

	var d1 densityResponse
	if status := postJSON(t, ts.URL+"/v1/models/live/density", probe, &d1); status != 200 {
		t.Fatalf("density = %d, want 200", status)
	}
	if d1.Cached {
		t.Error("post-ingest density served from stale cache")
	}
	if *d1.Density <= *d0.Density {
		t.Errorf("density at ingested clump did not rise: %v -> %v", *d0.Density, *d1.Density)
	}
}

func TestRequestTimeout(t *testing.T) {
	s := testServer(t, Options{RequestTimeout: time.Nanosecond}, "")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	status, code := errCode(t, ts.URL+"/v1/models/blobs/classify", map[string]any{"point": []float64{0, 0}})
	if status != http.StatusGatewayTimeout || code != "timeout" {
		t.Errorf("got %d/%q, want 504/timeout", status, code)
	}
	if s.metrics.Timeouts.Load() == 0 {
		t.Error("timeout not counted in metrics")
	}
}

func TestLoadShedding(t *testing.T) {
	// One admission slot and a long coalescing window: the first classify
	// parks inside the batcher holding the slot, so the second request
	// must be shed with 429.
	s := testServer(t, Options{MaxInflight: 1, MaxBatch: 100, BatchDelay: 800 * time.Millisecond}, "")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	url := ts.URL + "/v1/models/blobs/classify"
	body := map[string]any{"point": []float64{0, 0}}

	firstDone := make(chan int, 1)
	go func() {
		var resp classifyResponse
		firstDone <- postJSON(t, url, body, &resp)
	}()

	// Wait until the first request holds the admission slot.
	deadline := time.Now().Add(5 * time.Second)
	for len(s.inflight) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first request never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	status, code := errCode(t, url, body)
	if status != http.StatusTooManyRequests || code != "overloaded" {
		t.Errorf("second request got %d/%q, want 429/overloaded", status, code)
	}
	if s.metrics.Shed.Load() == 0 {
		t.Error("shed not counted in metrics")
	}
	if status := <-firstDone; status != 200 {
		t.Errorf("parked first request finished with %d, want 200", status)
	}
}

func TestGracefulShutdown(t *testing.T) {
	dir := t.TempDir()
	s := testServer(t, Options{BatchDelay: 300 * time.Millisecond, MaxBatch: 100}, dir)

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- s.Serve(l) }()
	url := "http://" + l.Addr().String()

	// Ingest a little so the checkpoint provably reflects served writes.
	var ing ingestResponse
	if status := postJSON(t, url+"/v1/models/live/ingest",
		map[string]any{"points": [][]float64{{1, 1}, {2, 2}}}, &ing); status != 200 {
		t.Fatalf("ingest = %d, want 200", status)
	}

	// Park one classify inside the 300ms batching window, then shut
	// down: the in-flight request must complete with 200, not be cut.
	inflight := make(chan int, 1)
	go func() {
		var resp classifyResponse
		inflight <- postJSON(t, url+"/v1/models/blobs/classify",
			map[string]any{"point": []float64{0, 0}}, &resp)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for len(s.inflight) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("in-flight request never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if status := <-inflight; status != 200 {
		t.Errorf("in-flight request finished with %d, want 200", status)
	}
	if err := <-served; !errors.Is(err, http.ErrServerClosed) {
		t.Errorf("Serve returned %v, want ErrServerClosed", err)
	}

	// Readiness flipped before the listener closed.
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("post-shutdown /readyz = %d, want 503", rec.Code)
	}

	// The stream engine was checkpointed, including the served ingest.
	f, err := os.Open(filepath.Join(dir, "live.gob"))
	if err != nil {
		t.Fatalf("checkpoint not written: %v", err)
	}
	defer f.Close()
	eng, err := stream.LoadEngine(f)
	if err != nil {
		t.Fatalf("checkpoint unreadable: %v", err)
	}
	if eng.Count() != 302 {
		t.Errorf("checkpoint has %d rows, want 302 (300 seeded + 2 ingested)", eng.Count())
	}
}

func TestStatusFor(t *testing.T) {
	cases := []struct {
		err    error
		status int
		code   string
	}{
		{fmt.Errorf("x: %w", context.DeadlineExceeded), 504, "timeout"},
		{fmt.Errorf("x: %w", context.Canceled), StatusClientClosedRequest, "client_closed_request"},
		{fmt.Errorf("x: %w", udmerr.ErrDimensionMismatch), 400, "dimension_mismatch"},
		{fmt.Errorf("x: %w", udmerr.ErrBadOption), 400, "bad_option"},
		{fmt.Errorf("x: %w", udmerr.ErrNoErrors), 400, "no_errors"},
		{fmt.Errorf("x: %w", udmerr.ErrUntrained), 409, "untrained"},
		{errors.New("anything else"), 500, "internal"},
	}
	for _, tc := range cases {
		status, code := statusFor(tc.err)
		if status != tc.status || code != tc.code {
			t.Errorf("statusFor(%v) = %d/%q, want %d/%q", tc.err, status, code, tc.status, tc.code)
		}
	}
}

// TestConcurrentClassifyAndIngest hammers a stream model with parallel
// density reads and ingest writes plus transform classifies — the
// race-detector test of the serving path's synchronization.
func TestConcurrentClassifyAndIngest(t *testing.T) {
	s := testServer(t, Options{BatchDelay: time.Millisecond}, "")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const workers = 12
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				switch (w + i) % 3 {
				case 0:
					var resp classifyResponse
					if status := postJSON(t, ts.URL+"/v1/models/blobs/classify",
						map[string]any{"point": []float64{float64(i) - 2, 0}}, &resp); status != 200 {
						t.Errorf("classify = %d", status)
					}
				case 1:
					var resp densityResponse
					if status := postJSON(t, ts.URL+"/v1/models/live/density",
						map[string]any{"point": []float64{float64(i%5) - 2, 0}}, &resp); status != 200 {
						t.Errorf("density = %d", status)
					}
				case 2:
					var resp ingestResponse
					if status := postJSON(t, ts.URL+"/v1/models/live/ingest",
						map[string]any{"points": [][]float64{{float64(w), float64(i)}}}, &resp); status != 200 {
						t.Errorf("ingest = %d", status)
					}
				}
			}
		}()
	}
	wg.Wait()
	if got := s.metrics.Requests.Load(); got != workers*15 {
		t.Errorf("request counter = %d, want %d", got, workers*15)
	}
}
