package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"udm/internal/core"
)

// putArtifact PUTs a serialized model artifact and returns the status
// and decoded body.
func putArtifact(t testing.TB, url string, artifact []byte) (int, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, url, bytes.NewReader(artifact))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("undecodable PUT response %q: %v", raw, err)
		}
	}
	return resp.StatusCode, out
}

// saveTransform serializes a transform into an artifact body.
func saveTransform(t testing.TB, tr *core.Transform) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// densityProbe posts the fixed probe and returns (status, gen from the
// X-UDM-Model-Version header, density bits).
func densityProbe(t testing.TB, base string) (int, uint64, uint64) {
	t.Helper()
	st, hdr, body := postRaw(t, base+"/density", `{"point":[0.5,-0.5]}`)
	if st != http.StatusOK {
		return st, 0, 0
	}
	gen, err := strconv.ParseUint(hdr.Get(ModelVersionHeader), 10, 64)
	if err != nil {
		t.Fatalf("bad %s header %q: %v", ModelVersionHeader, hdr.Get(ModelVersionHeader), err)
	}
	return st, gen, densityBits(t, body)
}

// TestHotSwapLifecycle drives stage → promote → rollback end to end:
// staged versions serve nothing until promoted, promote flips answers
// and bumps the generation, rollback restores the old answers under a
// fresh generation, and the failure modes 409 cleanly.
func TestHotSwapLifecycle(t *testing.T) {
	s := testServer(t, Options{BatchDelay: -1}, "")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	base := ts.URL + "/v1/models/blobs"

	st, gen1, oldBits := densityProbe(t, base)
	if st != http.StatusOK || gen1 != 1 {
		t.Fatalf("initial probe: status %d gen %d, want 200 gen 1", st, gen1)
	}

	// Stage a replacement trained on different data.
	artifact := saveTransform(t, altTransform(t))
	st, put := putArtifact(t, base+"?kind=transform", artifact)
	if st != http.StatusOK || put["staged"] != true {
		t.Fatalf("stage: %d %v", st, put)
	}
	if !s.reg.Staged(DefaultTenant, "blobs") {
		t.Fatal("registry does not report a staged version")
	}

	// Staging changes nothing observable: same gen, same bits.
	st, gen, bits := densityProbe(t, base)
	if st != http.StatusOK || gen != gen1 || bits != oldBits {
		t.Fatalf("probe after stage: status %d gen %d, want unchanged gen %d", st, gen, gen1)
	}
	// The listing flags the staged upgrade.
	resp, err := http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	listing, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(listing), `"staged":true`) {
		t.Fatalf("listing does not flag the staged version: %s", listing)
	}

	// Promote: answers flip, generation bumps.
	st, _, promoteBody := postRaw(t, base+"/promote", "")
	if st != http.StatusOK {
		t.Fatalf("promote: %d %s", st, promoteBody)
	}
	st, gen2, newBits := densityProbe(t, base)
	if st != http.StatusOK || gen2 != gen1+1 {
		t.Fatalf("probe after promote: status %d gen %d, want gen %d", st, gen2, gen1+1)
	}
	if newBits == oldBits {
		t.Fatal("promote did not change the served model")
	}

	// Rollback: old answers return under a fresh generation (never a
	// reused one — the density cache keys on the generation).
	st, _, _ = postRaw(t, base+"/rollback", "")
	if st != http.StatusOK {
		t.Fatalf("rollback: %d", st)
	}
	st, gen3, bits3 := densityProbe(t, base)
	if st != http.StatusOK || gen3 != gen2+1 || bits3 != oldBits {
		t.Fatalf("probe after rollback: status %d gen %d bits match %v, want gen %d and old bits",
			st, gen3, bits3 == oldBits, gen2+1)
	}

	// Promote with nothing staged: 409 no_staged.
	st, _, body := postRaw(t, base+"/promote", "")
	if st != http.StatusConflict || !strings.Contains(body, "no_staged") {
		t.Fatalf("promote with nothing staged -> %d %q, want 409 no_staged", st, body)
	}
	// Rollback a model that never swapped: 409 no_previous.
	st, _, body = postRaw(t, ts.URL+"/v1/models/live/rollback", "")
	if st != http.StatusConflict || !strings.Contains(body, "no_previous") {
		t.Fatalf("rollback without history -> %d %q, want 409 no_previous", st, body)
	}

	// Garbage artifacts and unknown kinds are rejected.
	st, _ = putArtifact(t, base+"?kind=transform", []byte("not a gob"))
	if st != http.StatusBadRequest {
		t.Fatalf("garbage artifact -> %d, want 400", st)
	}
	st, _ = putArtifact(t, base+"?kind=sorcery", artifact)
	if st != http.StatusBadRequest {
		t.Fatalf("unknown kind -> %d, want 400", st)
	}
}

// TestHotSwapStagedOnlyNotRoutable: a name that has only ever been
// staged serves 404 until its first promote — and in a fresh tenant
// the whole namespace springs into being on that promote.
func TestHotSwapStagedOnlyNotRoutable(t *testing.T) {
	s := testServer(t, Options{BatchDelay: -1}, "")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	base := ts.URL + "/v1/t/fresh/models/canary"

	artifact := saveTransform(t, testTransform(t))
	st, _ := putArtifact(t, base+"?kind=transform", artifact)
	if st != http.StatusOK {
		t.Fatalf("stage into fresh tenant: %d", st)
	}
	st, _, _ = postRaw(t, base+"/density", `{"point":[0,0]}`)
	if st != http.StatusNotFound {
		t.Fatalf("staged-only model answered %d, want 404 until promoted", st)
	}
	st, _, _ = postRaw(t, base+"/promote", "")
	if st != http.StatusOK {
		t.Fatalf("first promote: %d", st)
	}
	st, gen, _ := densityProbe(t, base)
	if st != http.StatusOK || gen != 1 {
		t.Fatalf("first-promoted model: status %d gen %d, want 200 gen 1", st, gen)
	}
}

// TestHotSwapAtomicity is the mixed-version property test: while one
// goroutine staggers promote/stage/rollback as fast as it can, reader
// goroutines hammer classify and density. Every density answer carries
// the generation it was served under; the invariant is that each
// generation maps to exactly one bit pattern (an answer computed
// partly under the old version and partly under the new one would
// surface as one generation with two patterns), and no request ever
// fails. Run under -race this also proves the swap path is data-race
// free.
func TestHotSwapAtomicity(t *testing.T) {
	s := testServer(t, Options{BatchDelay: -1, CacheSize: 256}, "")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	base := ts.URL + "/v1/models/blobs"

	artifacts := [][]byte{
		saveTransform(t, testTransform(t)),
		saveTransform(t, altTransform(t)),
	}

	const readers = 4
	const perReader = 60
	var wg sync.WaitGroup
	var mu sync.Mutex
	genBits := map[uint64]uint64{} // generation -> density bits
	var failures []string
	record := func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		if len(failures) < 8 {
			failures = append(failures, fmt.Sprintf(format, args...))
		}
	}

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perReader; i++ {
				resp, err := http.Post(base+"/density", "application/json",
					strings.NewReader(`{"point":[0.5,-0.5]}`))
				if err != nil {
					record("density transport error: %v", err)
					return
				}
				raw, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					record("density read error: %v", err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					record("density during swaps -> %d %s", resp.StatusCode, raw)
					continue
				}
				gen, err := strconv.ParseUint(resp.Header.Get(ModelVersionHeader), 10, 64)
				if err != nil {
					record("bad version header %q", resp.Header.Get(ModelVersionHeader))
					continue
				}
				var out struct {
					Density *float64 `json:"density"`
				}
				if err := json.Unmarshal(raw, &out); err != nil || out.Density == nil {
					record("undecodable density body %s", raw)
					continue
				}
				bits := math.Float64bits(*out.Density)
				mu.Lock()
				if prev, seen := genBits[gen]; seen && prev != bits {
					mu.Unlock()
					record("generation %d served two different answers: %x vs %x", gen, prev, bits)
					continue
				}
				genBits[gen] = bits
				mu.Unlock()

				// Classify rides along: it must never error mid-swap.
				cresp, err := http.Post(base+"/classify", "application/json",
					strings.NewReader(`{"point":[0.5,-0.5]}`))
				if err != nil {
					record("classify transport error: %v", err)
					return
				}
				cresp.Body.Close()
				if cresp.StatusCode != http.StatusOK {
					record("classify during swaps -> %d", cresp.StatusCode)
				}
			}
		}()
	}

	// The swapper: stage/promote as fast as possible, with a rollback
	// every few rounds for good measure.
	const swaps = 30
	for i := 0; i < swaps; i++ {
		st, _ := putArtifact(t, base+"?kind=transform", artifacts[i%2])
		if st != http.StatusOK {
			t.Fatalf("swap round %d: stage -> %d", i, st)
		}
		st, _, _ = postRaw(t, base+"/promote", "")
		if st != http.StatusOK {
			t.Fatalf("swap round %d: promote -> %d", i, st)
		}
		if i%5 == 4 {
			if st, _, _ := postRaw(t, base+"/rollback", ""); st != http.StatusOK {
				t.Fatalf("swap round %d: rollback -> %d", i, st)
			}
		}
	}
	wg.Wait()

	for _, f := range failures {
		t.Error(f)
	}
	// Exactly two distinct artifacts were in rotation: every generation's
	// answer must be one of exactly two bit patterns.
	distinct := map[uint64]bool{}
	for _, bits := range genBits {
		distinct[bits] = true
	}
	if len(distinct) > 2 {
		t.Fatalf("%d distinct answers across generations, want at most 2 (mixed-version evaluation)", len(distinct))
	}
	if len(genBits) < 2 {
		t.Fatalf("readers observed only %d generations; the test raced past all swaps", len(genBits))
	}
}
