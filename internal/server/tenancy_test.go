package server

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"udm/internal/core"
	"udm/internal/datagen"
	"udm/internal/faultinject"
	"udm/internal/kde"
	"udm/internal/rng"
	"udm/internal/uncertain"
)

// altTransform builds a transform trained on different data than
// testTransform, so the two give distinct density bits everywhere.
func altTransform(t testing.TB) *core.Transform {
	t.Helper()
	clean, err := datagen.TwoBlobs(4.0).Generate(400, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := uncertain.Perturb(clean, 1.0, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := core.NewTransform(noisy, core.TransformOptions{
		MicroClusters: 40, ErrorAdjust: true, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// tenantServer extends testServer with an "acme" tenant serving its
// own transform under the SAME name as the default tenant's ("blobs"),
// the sharpest aliasing trap available.
func tenantServer(t testing.TB, opt Options) *Server {
	t.Helper()
	s := testServer(t, opt, "")
	tm, err := NewTransformModel("blobs", altTransform(t), core.ClassifierOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.reg.AddTenant("acme", tm); err != nil {
		t.Fatal(err)
	}
	return s
}

// densityBits decodes a density response body and returns the exact
// bit pattern of its answer — byte-level body comparison would trip on
// the harmless "cached":true marker repeats carry.
func densityBits(t testing.TB, body string) uint64 {
	t.Helper()
	var out struct {
		Density *float64 `json:"density"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil || out.Density == nil {
		t.Fatalf("undecodable density body %q: %v", body, err)
	}
	return math.Float64bits(*out.Density)
}

// postTenant posts with an explicit X-UDM-Tenant header.
func postTenant(t testing.TB, url, tenant, body string) (int, http.Header, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, string(raw)
}

// TestTenantNamespaceRouting: the four ways to address a model — legacy
// path, default-tenant path, tenant path, legacy path + header — and
// the tenant isolation between namespaces.
func TestTenantNamespaceRouting(t *testing.T) {
	s := tenantServer(t, Options{BatchDelay: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"point":[0.5,-0.5]}`

	// Legacy path and the default-tenant path are the same namespace:
	// bit-identical answers, default echo.
	st, hdr, legacy := postRaw(t, ts.URL+"/v1/models/blobs/density", body)
	if st != http.StatusOK {
		t.Fatalf("legacy path: %d (%s)", st, legacy)
	}
	if got := hdr.Get(TenantHeader); got != DefaultTenant {
		t.Fatalf("legacy path echoed tenant %q, want %q", got, DefaultTenant)
	}
	st, _, aliased := postRaw(t, ts.URL+"/v1/t/default/models/blobs/density", body)
	if st != http.StatusOK || densityBits(t, aliased) != densityBits(t, legacy) {
		t.Fatalf("default-tenant path: %d, body %q vs legacy %q", st, aliased, legacy)
	}

	// The acme namespace serves a different model under the same name.
	st, hdr, acme := postRaw(t, ts.URL+"/v1/t/acme/models/blobs/density", body)
	if st != http.StatusOK {
		t.Fatalf("acme path: %d (%s)", st, acme)
	}
	if got := hdr.Get(TenantHeader); got != "acme" {
		t.Fatalf("acme path echoed tenant %q", got)
	}
	if densityBits(t, acme) == densityBits(t, legacy) {
		t.Fatal("acme and default answered identically: namespaces are aliased")
	}

	// Header-resolved tenancy on the legacy path matches the tenant path.
	st, _, viaHeader := postTenant(t, ts.URL+"/v1/models/blobs/density", "acme", body)
	if st != http.StatusOK || densityBits(t, viaHeader) != densityBits(t, acme) {
		t.Fatalf("header-resolved acme: %d, body %q, want %q", st, viaHeader, acme)
	}

	// Models of one tenant are invisible to another.
	st, _, _ = postRaw(t, ts.URL+"/v1/t/acme/models/live/density", body)
	if st != http.StatusNotFound {
		t.Fatalf("acme sees default's live model: %d", st)
	}

	// Invalid tenants are rejected up front.
	for _, bad := range []string{"..", "a b", strings.Repeat("x", 65)} {
		st, _, resp := postTenant(t, ts.URL+"/v1/models/blobs/density", bad, body)
		if st != http.StatusBadRequest || !strings.Contains(resp, "bad_tenant") {
			t.Errorf("tenant %q -> %d %q, want 400 bad_tenant", bad, st, resp)
		}
	}

	// Tenant-scoped model listings.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/t/acme/models", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	rawListing, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if listing := string(rawListing); !strings.Contains(listing, "blobs") || strings.Contains(listing, "live") {
		t.Fatalf("acme listing leaked across tenants: %s", listing)
	}
}

// TestTenantCacheIsolation is the aliasing regression for the density
// cache: with the cache quantum wide enough to catch any repeat, two
// tenants sharing a model name must still get their own cached
// densities back, bit for bit.
func TestTenantCacheIsolation(t *testing.T) {
	s := tenantServer(t, Options{BatchDelay: -1, CacheSize: 64})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"point":[0.25,0.25]}`
	_, _, defFirst := postRaw(t, ts.URL+"/v1/models/blobs/density", body)

	// The acme query lands immediately after default's cache fill at the
	// exact same coordinates — a tenant-blind cache would replay
	// default's density here.
	hitsBefore := s.Metrics().CacheHits.Load()
	_, _, acmeFirst := postRaw(t, ts.URL+"/v1/t/acme/models/blobs/density", body)
	if densityBits(t, acmeFirst) == densityBits(t, defFirst) {
		t.Fatal("acme's first density equals default's cached answer: tenant aliasing")
	}
	if got := s.Metrics().CacheHits.Load(); got != hitsBefore {
		t.Fatalf("acme's first query hit the cache (%d -> %d): tenant aliasing", hitsBefore, got)
	}

	// Repeats are cache hits and stay bit-identical per tenant.
	_, _, defSecond := postRaw(t, ts.URL+"/v1/models/blobs/density", body)
	_, _, acmeSecond := postRaw(t, ts.URL+"/v1/t/acme/models/blobs/density", body)
	if densityBits(t, defSecond) != densityBits(t, defFirst) || densityBits(t, acmeSecond) != densityBits(t, acmeFirst) {
		t.Fatal("cached repeats diverged from first answers")
	}
	if !strings.Contains(defSecond, `"cached":true`) || !strings.Contains(acmeSecond, `"cached":true`) {
		t.Fatalf("repeats were not served from the cache: %q %q", defSecond, acmeSecond)
	}
	if got := s.Metrics().CacheHits.Load(); got != hitsBefore+2 {
		t.Fatalf("cache hits %d -> %d, want two hits from the repeats", hitsBefore, got)
	}
}

// TestTenantInflightQuota: a tenant at its inflight quota is shed with
// tenant_overloaded while other tenants' requests keep flowing and
// keep answering bit-identically.
func TestTenantInflightQuota(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	opt := Options{
		BatchDelay:   -1,
		MaxInflight:  64,
		TenantQuotas: map[string]Quota{"noisy": {MaxInflight: 1}},
	}
	s := tenantServer(t, opt)
	// The noisy tenant gets its own model so its traffic is realistic.
	tm, err := NewTransformModel("blobs", altTransform(t), core.ClassifierOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.reg.AddTenant("noisy", tm); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	quiet := `{"point":[0.5,-0.5]}`
	_, _, quietBefore := postRaw(t, ts.URL+"/v1/t/acme/models/blobs/density", quiet)

	// Hold noisy's single inflight slot: one request parks inside an
	// injected 300ms evaluation delay.
	if err := faultinject.Arm("server.model.eval", faultinject.Spec{Delay: 300 * time.Millisecond, Times: 1}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Plain http.Post: test helpers may not Fatal off the test goroutine.
		resp, err := http.Post(ts.URL+"/v1/t/noisy/models/blobs/density", "application/json",
			strings.NewReader(`{"point":[0.9,0.1]}`))
		if err == nil {
			resp.Body.Close()
		}
	}()
	// Wait until the slow request is demonstrably inside the model eval
	// (and therefore holding its tenant's inflight token).
	deadline := time.Now().Add(5 * time.Second)
	for faultinject.Fired("server.model.eval") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow request never reached the eval site")
		}
		time.Sleep(time.Millisecond)
	}

	st, hdr, resp := postRaw(t, ts.URL+"/v1/t/noisy/models/blobs/density", `{"point":[0.8,0.2]}`)
	if st != http.StatusTooManyRequests || !strings.Contains(resp, "tenant_overloaded") {
		t.Fatalf("noisy over quota -> %d %q, want 429 tenant_overloaded", st, resp)
	}
	if got := hdr.Get(TenantHeader); got != "noisy" {
		t.Fatalf("shed response echoed tenant %q, want noisy", got)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}

	// The quiet tenant is untouched: 200 and bit-identical.
	st, _, quietDuring := postRaw(t, ts.URL+"/v1/t/acme/models/blobs/density", quiet)
	if st != http.StatusOK || densityBits(t, quietDuring) != densityBits(t, quietBefore) {
		t.Fatalf("quiet tenant disturbed by noisy's quota: %d, %q vs %q", st, quietDuring, quietBefore)
	}

	wg.Wait()
	// With the slot released, noisy serves again.
	st, _, _ = postRaw(t, ts.URL+"/v1/t/noisy/models/blobs/density", `{"point":[0.7,0.3]}`)
	if st != http.StatusOK {
		t.Fatalf("noisy after release: %d, want 200", st)
	}
	if shed := s.tenant("noisy").shed.Load(); shed != 1 {
		t.Errorf("noisy shed counter = %d, want 1", shed)
	}
}

// TestTenantModelAndPointQuotas: staging past the model quota and
// ingesting past the point quota both refuse with quota_exceeded, and
// refusal changes nothing.
func TestTenantModelAndPointQuotas(t *testing.T) {
	opt := Options{
		BatchDelay:   -1,
		TenantQuotas: map[string]Quota{"small": {MaxModels: 1, MaxPoints: 350}},
	}
	s := testServer(t, opt, "")
	eng := testEngine(t) // 300 rows
	sm, err := NewStreamModel("live", eng, kde.Options{ErrorAdjust: true}, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.reg.AddTenant("small", sm); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	countBefore := eng.Count()

	// A 100-row ingest would land at 400 > 350: refused whole.
	rows := make([][]float64, 100)
	for i := range rows {
		rows[i] = []float64{float64(i), 1}
	}
	var buf strings.Builder
	fmt.Fprintf(&buf, `{"points": [`)
	for i, r := range rows {
		if i > 0 {
			buf.WriteString(",")
		}
		fmt.Fprintf(&buf, "[%g,%g]", r[0], r[1])
	}
	buf.WriteString("]}")
	st, _, resp := postRaw(t, ts.URL+"/v1/t/small/models/live/ingest", buf.String())
	if st != http.StatusTooManyRequests || !strings.Contains(resp, "quota_exceeded") {
		t.Fatalf("over-quota ingest -> %d %q, want 429 quota_exceeded", st, resp)
	}
	if got := eng.Count(); got != countBefore {
		t.Fatalf("refused ingest still applied rows: %d -> %d", countBefore, got)
	}

	// A 10-row ingest fits (310 ≤ 350).
	st, _, _ = postRaw(t, ts.URL+"/v1/t/small/models/live/ingest", `{"points": [[1,1],[2,2],[3,3],[4,4],[5,5],[6,6],[7,7],[8,8],[9,9],[10,10]]}`)
	if st != http.StatusOK {
		t.Fatalf("in-quota ingest -> %d, want 200", st)
	}

	// Staging a SECOND model name trips the model quota.
	var art strings.Builder
	if err := testTransform(t).Save(&art); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/t/small/models/extra?kind=transform", strings.NewReader(art.String()))
	if err != nil {
		t.Fatal(err)
	}
	putResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	putResp.Body.Close()
	if putResp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second model for quota-1 tenant -> %d, want 429", putResp.StatusCode)
	}
	// The default tenant has no quota: the same stage succeeds there.
	req, err = http.NewRequest(http.MethodPut, ts.URL+"/v1/models/extra?kind=transform", strings.NewReader(art.String()))
	if err != nil {
		t.Fatal(err)
	}
	putResp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	putResp.Body.Close()
	if putResp.StatusCode != http.StatusOK {
		t.Fatalf("unquota'd stage -> %d, want 200", putResp.StatusCode)
	}
}

// TestFaultTenantBreakerIsolation: one tenant's eval failures trip only
// that tenant's breaker — the other tenant's same-named model keeps
// serving with no degradation. Runs in `make faults` via the TestFault
// name prefix.
func TestFaultTenantBreakerIsolation(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	opt := resilientOptions()
	opt.RetryMax = -1 // one request = one breaker-visible attempt
	s := tenantServer(t, opt)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Prime acme so its later answers have a healthy reference.
	probe := `{"point":[0.5,-0.5]}`
	st, _, acmeBefore := postRaw(t, ts.URL+"/v1/t/acme/models/blobs/density", probe)
	if st != http.StatusOK {
		t.Fatalf("prime acme: %d", st)
	}

	// Exactly two injected failures, both spent on default-tenant
	// requests: enough for resilientOptions' threshold of 2.
	if err := faultinject.Arm("server.model.eval", faultinject.Spec{Times: 2}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		st, _, _ := postRaw(t, ts.URL+"/v1/models/blobs/density",
			fmt.Sprintf(`{"points":[[3,%d]]}`, i))
		if st != http.StatusBadGateway {
			t.Fatalf("trip request %d -> %d, want 502", i, st)
		}
	}
	faultinject.Disarm("server.model.eval")

	if got := s.breakerFor(DefaultTenant, "blobs").currentState(); got != breakerOpen {
		t.Fatalf("default breaker = %v, want open", got)
	}
	if got := s.breakerFor("acme", "blobs").currentState(); got != breakerClosed {
		t.Fatalf("acme breaker = %v, want closed (isolation)", got)
	}

	// Default is refused fast (no stale entry for a fresh point)...
	st, _, resp := postRaw(t, ts.URL+"/v1/models/blobs/density", `{"points":[[7,7]]}`)
	if st != http.StatusServiceUnavailable || !strings.Contains(resp, "circuit_open") {
		t.Fatalf("default while open -> %d %q, want 503 circuit_open", st, resp)
	}
	// ...while acme still serves, bit-identically and undegraded.
	st, hdr, acmeAfter := postRaw(t, ts.URL+"/v1/t/acme/models/blobs/density", probe)
	if st != http.StatusOK || densityBits(t, acmeAfter) != densityBits(t, acmeBefore) {
		t.Fatalf("acme while default's breaker is open: %d, %q vs %q", st, acmeAfter, acmeBefore)
	}
	if hdr.Get("X-UDM-Degraded") != "" {
		t.Fatal("acme answer degraded by default's breaker")
	}
}
