package num

// Sum returns the sum of v using Kahan–Babuška (Neumaier) compensated
// summation, which keeps the error independent of len(v).
func Sum(v []float64) float64 {
	var sum, comp float64
	for _, x := range v {
		t := sum + x
		if abs(sum) >= abs(x) {
			comp += (sum - t) + x
		} else {
			comp += (x - t) + sum
		}
		sum = t
	}
	return sum + comp
}

// PairwiseSum returns the sum of v using recursive pairwise summation.
// It is slightly cheaper than Sum for very long slices and still has
// O(log n) error growth.
func PairwiseSum(v []float64) float64 {
	const base = 128
	if len(v) <= base {
		var s float64
		for _, x := range v {
			s += x
		}
		return s
	}
	half := len(v) / 2
	return PairwiseSum(v[:half]) + PairwiseSum(v[half:])
}

// Mean returns the arithmetic mean of v, or 0 for an empty slice.
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	return Sum(v) / float64(len(v))
}

// Variance returns the population variance of v (dividing by n), or 0 for
// slices with fewer than one element.
func Variance(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	m := Mean(v)
	var s float64
	for _, x := range v {
		d := x - m
		s += d * d
	}
	return s / float64(len(v))
}

// SampleVariance returns the unbiased sample variance (dividing by n-1),
// or 0 for slices with fewer than two elements.
func SampleVariance(v []float64) float64 {
	if len(v) < 2 {
		return 0
	}
	m := Mean(v)
	var s float64
	for _, x := range v {
		d := x - m
		s += d * d
	}
	return s / float64(len(v)-1)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
