package num

import (
	"fmt"
	"sort"
)

// Quantile returns the p-quantile (0 <= p <= 1) of v using linear
// interpolation between order statistics (type-7, the R/NumPy default).
// v is not modified. It panics if v is empty or p is out of range.
func Quantile(v []float64, p float64) float64 {
	if len(v) == 0 {
		panic("num: Quantile of empty slice")
	}
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("num: quantile p=%v out of [0,1]", p))
	}
	s := Clone(v)
	sort.Float64s(s)
	return quantileSorted(s, p)
}

// Median returns the median of v. v is not modified.
func Median(v []float64) float64 { return Quantile(v, 0.5) }

// Quantiles returns the quantiles of v at each p in ps, sorting v once.
func Quantiles(v []float64, ps ...float64) []float64 {
	if len(v) == 0 {
		panic("num: Quantiles of empty slice")
	}
	s := Clone(v)
	sort.Float64s(s)
	out := make([]float64, len(ps))
	for i, p := range ps {
		if p < 0 || p > 1 {
			panic(fmt.Sprintf("num: quantile p=%v out of [0,1]", p))
		}
		out[i] = quantileSorted(s, p)
	}
	return out
}

// IQR returns the interquartile range of v.
func IQR(v []float64) float64 {
	q := Quantiles(v, 0.25, 0.75)
	return q[1] - q[0]
}

func quantileSorted(s []float64, p float64) float64 {
	if len(s) == 1 {
		return s[0]
	}
	pos := p * float64(len(s)-1)
	lo := int(pos)
	if lo == len(s)-1 {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[lo+1]*frac
}
