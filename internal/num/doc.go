// Package num provides the small dense-vector and numerically careful
// scalar routines that the rest of the library is built on: compensated
// and pairwise summation, running moments, quantiles, normal-distribution
// special functions, and log-sum-exp.
//
// Everything operates on plain []float64 with no hidden allocation unless
// documented; destination-slice variants are provided for hot paths.
package num
