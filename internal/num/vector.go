package num

import (
	"fmt"
	"math"
)

// Clone returns a newly allocated copy of v.
func Clone(v []float64) []float64 {
	if v == nil {
		return nil
	}
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

// AddTo stores a+b element-wise into dst and returns dst.
// All three slices must have the same length; dst may alias a or b.
func AddTo(dst, a, b []float64) []float64 {
	checkLen3(len(dst), len(a), len(b))
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
	return dst
}

// SubTo stores a-b element-wise into dst and returns dst.
func SubTo(dst, a, b []float64) []float64 {
	checkLen3(len(dst), len(a), len(b))
	for i := range dst {
		dst[i] = a[i] - b[i]
	}
	return dst
}

// ScaleTo stores s*a into dst and returns dst.
func ScaleTo(dst, a []float64, s float64) []float64 {
	checkLen2(len(dst), len(a))
	for i := range dst {
		dst[i] = s * a[i]
	}
	return dst
}

// AXPY performs dst += s*a in place and returns dst.
func AXPY(dst []float64, s float64, a []float64) []float64 {
	checkLen2(len(dst), len(a))
	for i := range dst {
		dst[i] += s * a[i]
	}
	return dst
}

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	checkLen2(len(a), len(b))
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Dist2 returns the squared Euclidean distance between a and b.
func Dist2(a, b []float64) float64 {
	checkLen2(len(a), len(b))
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Dist returns the Euclidean distance between a and b.
func Dist(a, b []float64) float64 { return math.Sqrt(Dist2(a, b)) }

// Norm2 returns the squared Euclidean norm of v.
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return s
}

// Norm returns the Euclidean norm of v.
func Norm(v []float64) float64 { return math.Sqrt(Norm2(v)) }

// MinMax returns the smallest and largest elements of v.
// It panics if v is empty. NaNs are ignored unless all elements are NaN,
// in which case both results are NaN.
func MinMax(v []float64) (lo, hi float64) {
	if len(v) == 0 {
		panic("num: MinMax of empty slice")
	}
	lo, hi = math.NaN(), math.NaN()
	for _, x := range v {
		if math.IsNaN(x) {
			continue
		}
		if math.IsNaN(lo) || x < lo {
			lo = x
		}
		if math.IsNaN(hi) || x > hi {
			hi = x
		}
	}
	return lo, hi
}

// ArgMax returns the index of the largest element, breaking ties toward
// the smallest index. It panics if v is empty.
func ArgMax(v []float64) int {
	if len(v) == 0 {
		panic("num: ArgMax of empty slice")
	}
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

// AllFinite reports whether every element of v is finite (no NaN or ±Inf).
func AllFinite(v []float64) bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// Fill sets every element of v to x and returns v.
func Fill(v []float64, x float64) []float64 {
	for i := range v {
		v[i] = x
	}
	return v
}

// Gather copies v[idx[i]] into a new slice for each index in idx.
func Gather(v []float64, idx []int) []float64 {
	out := make([]float64, len(idx))
	for i, j := range idx {
		out[i] = v[j]
	}
	return out
}

func checkLen2(a, b int) {
	if a != b {
		panic(fmt.Sprintf("num: length mismatch %d != %d", a, b))
	}
}

func checkLen3(a, b, c int) {
	if a != b || b != c {
		panic(fmt.Sprintf("num: length mismatch %d, %d, %d", a, b, c))
	}
}
