package num

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMomentsMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	v := make([]float64, 1000)
	var m Moments
	for i := range v {
		v[i] = rng.NormFloat64()*3 + 10
		m.Add(v[i])
	}
	if m.N() != 1000 {
		t.Fatalf("N = %d", m.N())
	}
	if !almostEqual(m.Mean(), Mean(v), 1e-9) {
		t.Errorf("Mean %v vs %v", m.Mean(), Mean(v))
	}
	if !almostEqual(m.Variance(), Variance(v), 1e-9) {
		t.Errorf("Variance %v vs %v", m.Variance(), Variance(v))
	}
	if !almostEqual(m.SampleVariance(), SampleVariance(v), 1e-9) {
		t.Errorf("SampleVariance %v vs %v", m.SampleVariance(), SampleVariance(v))
	}
}

func TestMomentsMergeEquivalence(t *testing.T) {
	f := func(a, b [6]float64) bool {
		var m1, m2, all Moments
		for _, x := range a {
			x = sanitize(x)
			m1.Add(x)
			all.Add(x)
		}
		for _, x := range b {
			x = sanitize(x)
			m2.Add(x)
			all.Add(x)
		}
		m1.Merge(m2)
		meanTol := 1e-9 * (1 + abs(all.Mean()))
		varTol := 1e-9 * (1 + all.Variance())
		return m1.N() == all.N() &&
			almostEqual(m1.Mean(), all.Mean(), meanTol) &&
			almostEqual(m1.Variance(), all.Variance(), varTol)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMomentsMergeEmpty(t *testing.T) {
	var a, b Moments
	a.Add(5)
	a.Merge(b) // merging empty is a no-op
	if a.N() != 1 || a.Mean() != 5 {
		t.Fatalf("merge empty changed accumulator: %+v", a)
	}
	b.Merge(a) // merging into empty copies
	if b.N() != 1 || b.Mean() != 5 {
		t.Fatalf("merge into empty wrong: %+v", b)
	}
}

func TestMomentsAddN(t *testing.T) {
	var a, b Moments
	a.AddN(3, 4)
	for i := 0; i < 4; i++ {
		b.Add(3)
	}
	if a.N() != b.N() || a.Mean() != b.Mean() || a.Variance() != b.Variance() {
		t.Fatalf("AddN mismatch: %+v vs %+v", a, b)
	}
}

func TestColumnMoments(t *testing.T) {
	rows := [][]float64{{1, 10}, {3, 30}}
	ms := ColumnMoments(rows)
	if len(ms) != 2 {
		t.Fatalf("got %d columns", len(ms))
	}
	if ms[0].Mean() != 2 || ms[1].Mean() != 20 {
		t.Fatalf("column means wrong: %v %v", ms[0].Mean(), ms[1].Mean())
	}
	if ColumnMoments(nil) != nil {
		t.Error("ColumnMoments(nil) should be nil")
	}
}

func sanitize(x float64) float64 {
	if x != x { // NaN
		return 0
	}
	if x > 1e6 {
		return 1e6
	}
	if x < -1e6 {
		return -1e6
	}
	return x
}
