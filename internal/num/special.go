package num

import "math"

// InvSqrt2Pi is 1/sqrt(2*pi), the Gaussian normalizing constant.
const InvSqrt2Pi = 0.3989422804014326779399460599343818684759

// NormPDF returns the density of N(mu, sigma^2) at x. sigma must be > 0.
func NormPDF(x, mu, sigma float64) float64 {
	z := (x - mu) / sigma
	return InvSqrt2Pi / sigma * math.Exp(-0.5*z*z)
}

// NormCDF returns P(X <= x) for X ~ N(mu, sigma^2).
func NormCDF(x, mu, sigma float64) float64 {
	return 0.5 * math.Erfc(-(x-mu)/(sigma*math.Sqrt2))
}

// NormQuantile returns the p-quantile of the standard normal distribution
// using the Acklam rational approximation (|error| < 1.15e-9). It panics
// for p outside (0, 1).
func NormQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic("num: NormQuantile requires 0 < p < 1")
	}
	// Coefficients for the central and tail rational approximations.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}
	const plow, phigh = 0.02425, 1 - 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > phigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}

// LogSumExp returns log(sum(exp(v))) computed stably. It returns -Inf for
// an empty slice.
func LogSumExp(v []float64) float64 {
	if len(v) == 0 {
		return math.Inf(-1)
	}
	mx := math.Inf(-1)
	for _, x := range v {
		if x > mx {
			mx = x
		}
	}
	if math.IsInf(mx, -1) {
		return mx
	}
	var s float64
	for _, x := range v {
		s += math.Exp(x - mx)
	}
	return mx + math.Log(s)
}
