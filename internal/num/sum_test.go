package num

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSumCompensated(t *testing.T) {
	// Classic Neumaier stress case: naive summation loses the small terms.
	v := []float64{1, 1e100, 1, -1e100}
	if got := Sum(v); got != 2 {
		t.Fatalf("Sum = %v, want 2", got)
	}
}

func TestSumEmptyAndSingle(t *testing.T) {
	if Sum(nil) != 0 {
		t.Error("Sum(nil) != 0")
	}
	if Sum([]float64{3.5}) != 3.5 {
		t.Error("Sum single element wrong")
	}
}

func TestPairwiseMatchesKahan(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	v := make([]float64, 10000)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	k, p := Sum(v), PairwiseSum(v)
	if !almostEqual(k, p, 1e-9*math.Abs(k)+1e-12) {
		t.Fatalf("Kahan %v vs pairwise %v differ", k, p)
	}
}

func TestMeanVariance(t *testing.T) {
	v := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(v); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := Variance(v); got != 4 {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := SampleVariance(v); !almostEqual(got, 32.0/7.0, 1e-12) {
		t.Errorf("SampleVariance = %v, want %v", got, 32.0/7.0)
	}
}

func TestVarianceDegenerate(t *testing.T) {
	if Variance(nil) != 0 || SampleVariance([]float64{1}) != 0 {
		t.Error("degenerate variance should be 0")
	}
}

func TestVarianceNonNegative(t *testing.T) {
	f := func(a [8]float64) bool {
		v := a[:]
		for i := range v {
			// Keep magnitudes sane so the test exercises arithmetic,
			// not float overflow.
			v[i] = math.Mod(v[i], 1e6)
			if math.IsNaN(v[i]) {
				v[i] = 0
			}
		}
		return Variance(v) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
