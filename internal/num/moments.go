package num

import "math"

// Moments accumulates count, mean and variance of a stream of values using
// Welford's algorithm. The zero value is ready to use.
type Moments struct {
	n    int
	mean float64
	m2   float64
}

// Add folds x into the accumulator.
func (m *Moments) Add(x float64) {
	m.n++
	d := x - m.mean
	m.mean += d / float64(m.n)
	m.m2 += d * (x - m.mean)
}

// AddN folds x into the accumulator with integer weight w >= 0.
func (m *Moments) AddN(x float64, w int) {
	for i := 0; i < w; i++ {
		m.Add(x)
	}
}

// Merge combines the other accumulator into m (Chan et al. parallel
// variance update).
func (m *Moments) Merge(o Moments) {
	if o.n == 0 {
		return
	}
	if m.n == 0 {
		*m = o
		return
	}
	n1, n2 := float64(m.n), float64(o.n)
	d := o.mean - m.mean
	tot := n1 + n2
	m.mean += d * n2 / tot
	m.m2 += o.m2 + d*d*n1*n2/tot
	m.n += o.n
}

// N returns the number of values folded in.
func (m *Moments) N() int { return m.n }

// Mean returns the running mean (0 when empty).
func (m *Moments) Mean() float64 { return m.mean }

// Variance returns the running population variance (0 when n < 1).
func (m *Moments) Variance() float64 {
	if m.n < 1 {
		return 0
	}
	return m.m2 / float64(m.n)
}

// SampleVariance returns the running unbiased variance (0 when n < 2).
func (m *Moments) SampleVariance() float64 {
	if m.n < 2 {
		return 0
	}
	return m.m2 / float64(m.n-1)
}

// StdDev returns the running population standard deviation.
func (m *Moments) StdDev() float64 { return math.Sqrt(m.Variance()) }

// ColumnMoments returns a Moments accumulator per column of rows.
// All rows must have the same length.
func ColumnMoments(rows [][]float64) []Moments {
	if len(rows) == 0 {
		return nil
	}
	ms := make([]Moments, len(rows[0]))
	for _, r := range rows {
		for j, x := range r {
			ms[j].Add(x)
		}
	}
	return ms
}
