package num

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol
}

func TestCloneIndependence(t *testing.T) {
	v := []float64{1, 2, 3}
	c := Clone(v)
	c[0] = 99
	if v[0] != 1 {
		t.Fatalf("Clone aliases its input: v=%v", v)
	}
	if Clone(nil) != nil {
		t.Fatalf("Clone(nil) should be nil")
	}
}

func TestAddSubScale(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	dst := make([]float64, 3)
	AddTo(dst, a, b)
	want := []float64{5, 7, 9}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("AddTo = %v, want %v", dst, want)
		}
	}
	SubTo(dst, b, a)
	for i := range dst {
		if dst[i] != 3 {
			t.Fatalf("SubTo = %v, want all 3", dst)
		}
	}
	ScaleTo(dst, a, 2)
	for i := range dst {
		if dst[i] != 2*a[i] {
			t.Fatalf("ScaleTo = %v", dst)
		}
	}
	AXPY(dst, -2, a) // dst = 2a - 2a = 0
	for i := range dst {
		if dst[i] != 0 {
			t.Fatalf("AXPY = %v, want zeros", dst)
		}
	}
}

func TestAddToAliasing(t *testing.T) {
	a := []float64{1, 2}
	AddTo(a, a, a)
	if a[0] != 2 || a[1] != 4 {
		t.Fatalf("aliased AddTo = %v, want [2 4]", a)
	}
}

func TestDotDistNorm(t *testing.T) {
	a := []float64{3, 4}
	b := []float64{0, 0}
	if got := Dot(a, a); got != 25 {
		t.Errorf("Dot = %v, want 25", got)
	}
	if got := Dist2(a, b); got != 25 {
		t.Errorf("Dist2 = %v, want 25", got)
	}
	if got := Dist(a, b); got != 5 {
		t.Errorf("Dist = %v, want 5", got)
	}
	if got := Norm(a); got != 5 {
		t.Errorf("Norm = %v, want 5", got)
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot with mismatched lengths did not panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, math.NaN(), -1, 7})
	if lo != -1 || hi != 7 {
		t.Fatalf("MinMax = %v,%v want -1,7", lo, hi)
	}
	lo, hi = MinMax([]float64{math.NaN()})
	if !math.IsNaN(lo) || !math.IsNaN(hi) {
		t.Fatalf("MinMax of all-NaN = %v,%v want NaN,NaN", lo, hi)
	}
}

func TestArgMax(t *testing.T) {
	if got := ArgMax([]float64{1, 5, 5, 2}); got != 1 {
		t.Fatalf("ArgMax tie-break = %d, want 1", got)
	}
}

func TestAllFinite(t *testing.T) {
	if !AllFinite([]float64{1, -2, 0}) {
		t.Error("finite slice reported non-finite")
	}
	if AllFinite([]float64{1, math.NaN()}) {
		t.Error("NaN slice reported finite")
	}
	if AllFinite([]float64{math.Inf(1)}) {
		t.Error("Inf slice reported finite")
	}
}

func TestGatherFill(t *testing.T) {
	v := []float64{10, 20, 30}
	g := Gather(v, []int{2, 0})
	if g[0] != 30 || g[1] != 10 {
		t.Fatalf("Gather = %v", g)
	}
	f := Fill(make([]float64, 3), 7)
	for _, x := range f {
		if x != 7 {
			t.Fatalf("Fill = %v", f)
		}
	}
}

func TestDist2NonNegativeSymmetric(t *testing.T) {
	f := func(a, b [4]float64) bool {
		x, y := a[:], b[:]
		if !AllFinite(x) || !AllFinite(y) {
			return true
		}
		d1, d2 := Dist2(x, y), Dist2(y, x)
		return d1 >= 0 && d1 == d2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
