package num

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestQuantileKnown(t *testing.T) {
	v := []float64{1, 2, 3, 4}
	cases := []struct{ p, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {0.75, 3.25},
	}
	for _, c := range cases {
		if got := Quantile(v, c.p); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	v := []float64{3, 1, 2}
	Quantile(v, 0.5)
	if v[0] != 3 || v[1] != 1 || v[2] != 2 {
		t.Fatalf("input mutated: %v", v)
	}
}

func TestMedianSingleton(t *testing.T) {
	if Median([]float64{42}) != 42 {
		t.Error("Median singleton wrong")
	}
}

func TestQuantilesAndIQR(t *testing.T) {
	v := []float64{1, 2, 3, 4, 5}
	q := Quantiles(v, 0.25, 0.5, 0.75)
	if q[0] != 2 || q[1] != 3 || q[2] != 4 {
		t.Fatalf("Quantiles = %v", q)
	}
	if IQR(v) != 2 {
		t.Fatalf("IQR = %v, want 2", IQR(v))
	}
}

func TestQuantilePanics(t *testing.T) {
	for _, fn := range []func(){
		func() { Quantile(nil, 0.5) },
		func() { Quantile([]float64{1}, -0.1) },
		func() { Quantile([]float64{1}, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestQuantileMonotoneInP(t *testing.T) {
	f := func(a [9]float64, p1, p2 float64) bool {
		v := a[:]
		for i := range v {
			v[i] = sanitize(v[i])
		}
		p1, p2 = clamp01(p1), clamp01(p2)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		return Quantile(v, p1) <= Quantile(v, p2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantileBracketsData(t *testing.T) {
	f := func(a [5]float64, p float64) bool {
		v := a[:]
		for i := range v {
			v[i] = sanitize(v[i])
		}
		p = clamp01(p)
		s := Clone(v)
		sort.Float64s(s)
		q := Quantile(v, p)
		return q >= s[0] && q <= s[len(s)-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func clamp01(p float64) float64 {
	if p != p || p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}
