package num

import (
	"math"
	"testing"
)

func TestNormPDFKnown(t *testing.T) {
	// Standard normal at 0 is 1/sqrt(2π).
	if got := NormPDF(0, 0, 1); !almostEqual(got, InvSqrt2Pi, 1e-15) {
		t.Errorf("NormPDF(0;0,1) = %v", got)
	}
	// Symmetry.
	if NormPDF(1.3, 0, 1) != NormPDF(-1.3, 0, 1) {
		t.Error("NormPDF not symmetric")
	}
	// Scaling: wider sigma has lower peak.
	if NormPDF(0, 0, 2) >= NormPDF(0, 0, 1) {
		t.Error("wider kernel should have lower peak")
	}
}

func TestNormPDFIntegratesToOne(t *testing.T) {
	// Trapezoid over [-8, 8] with fine steps.
	const n = 8000
	lo, hi := -15.0, 15.0
	h := (hi - lo) / n
	var s float64
	for i := 0; i <= n; i++ {
		x := lo + float64(i)*h
		w := 1.0
		if i == 0 || i == n {
			w = 0.5
		}
		s += w * NormPDF(x, 0.3, 1.7)
	}
	s *= h
	if !almostEqual(s, 1, 1e-6) {
		t.Fatalf("NormPDF mass = %v, want 1", s)
	}
}

func TestNormCDFKnown(t *testing.T) {
	if got := NormCDF(0, 0, 1); !almostEqual(got, 0.5, 1e-15) {
		t.Errorf("Φ(0) = %v", got)
	}
	if got := NormCDF(1.96, 0, 1); !almostEqual(got, 0.9750021, 1e-6) {
		t.Errorf("Φ(1.96) = %v", got)
	}
	// Complement symmetry.
	if !almostEqual(NormCDF(-1.2, 0, 1)+NormCDF(1.2, 0, 1), 1, 1e-14) {
		t.Error("CDF complement symmetry violated")
	}
}

func TestNormQuantileInvertsCDF(t *testing.T) {
	for _, p := range []float64{0.001, 0.025, 0.2, 0.5, 0.8, 0.975, 0.999} {
		z := NormQuantile(p)
		if got := NormCDF(z, 0, 1); !almostEqual(got, p, 1e-8) {
			t.Errorf("Φ(Φ⁻¹(%v)) = %v", p, got)
		}
	}
}

func TestNormQuantilePanics(t *testing.T) {
	for _, p := range []float64{0, 1, -1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NormQuantile(%v) did not panic", p)
				}
			}()
			NormQuantile(p)
		}()
	}
}

func TestLogSumExp(t *testing.T) {
	if !math.IsInf(LogSumExp(nil), -1) {
		t.Error("LogSumExp(nil) should be -Inf")
	}
	// log(e^0 + e^0) = log 2.
	if got := LogSumExp([]float64{0, 0}); !almostEqual(got, math.Log(2), 1e-14) {
		t.Errorf("LogSumExp = %v", got)
	}
	// Stability for large inputs.
	if got := LogSumExp([]float64{1000, 1000}); !almostEqual(got, 1000+math.Log(2), 1e-9) {
		t.Errorf("LogSumExp large = %v", got)
	}
	// All -Inf stays -Inf without NaN.
	if got := LogSumExp([]float64{math.Inf(-1), math.Inf(-1)}); !math.IsInf(got, -1) {
		t.Errorf("LogSumExp(-Inf...) = %v", got)
	}
}
