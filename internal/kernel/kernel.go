// Package kernel implements the one-dimensional smoothing kernels and
// bandwidth rules used by the density estimators, including the paper's
// error-adjusted Gaussian kernel Q'_h (Aggarwal, ICDE 2007, Eq. 3), whose
// bandwidth along a dimension is widened by the per-entry standard error
// ψ of the contributing point.
//
// Multi-dimensional kernels are products of one-dimensional kernels, each
// with its own smoothing parameter, exactly as in the paper; the product
// is taken by the kde package.
package kernel

import (
	"fmt"
	"math"

	"udm/internal/num"
)

// Type selects a one-dimensional kernel shape.
type Type int

const (
	// Gaussian is the kernel used throughout the paper (Eq. 2).
	Gaussian Type = iota
	// Epanechnikov is the mean-square-optimal compact kernel.
	Epanechnikov
	// Laplace is a heavy-tailed alternative.
	Laplace
	// Biweight (quartic) is a smooth compact kernel.
	Biweight
	// Triangular is the piecewise-linear compact kernel.
	Triangular
)

// String returns the kernel name.
func (t Type) String() string {
	switch t {
	case Gaussian:
		return "gaussian"
	case Epanechnikov:
		return "epanechnikov"
	case Laplace:
		return "laplace"
	case Biweight:
		return "biweight"
	case Triangular:
		return "triangular"
	default:
		return fmt.Sprintf("kernel.Type(%d)", int(t))
	}
}

// Eval returns the density at x of the unit-mass kernel of this Type
// centered at c with scale width > 0. For the Gaussian and Laplace
// kernels the width is the standard deviation (for Laplace, the scale b
// is chosen so the standard deviation is width); for Epanechnikov it is
// the half-support radius.
func (t Type) Eval(x, c, width float64) float64 {
	if width <= 0 {
		panic(fmt.Sprintf("kernel: non-positive width %v", width))
	}
	u := (x - c) / width
	switch t {
	case Gaussian:
		return num.InvSqrt2Pi / width * math.Exp(-0.5*u*u)
	case Epanechnikov:
		if u <= -1 || u >= 1 {
			return 0
		}
		return 0.75 * (1 - u*u) / width
	case Laplace:
		// Scale b = width/sqrt(2) gives variance width².
		b := width / math.Sqrt2
		return math.Exp(-math.Abs(x-c)/b) / (2 * b)
	case Biweight:
		if u <= -1 || u >= 1 {
			return 0
		}
		v := 1 - u*u
		return 15.0 / 16.0 * v * v / width
	case Triangular:
		if u <= -1 || u >= 1 {
			return 0
		}
		return (1 - math.Abs(u)) / width
	default:
		panic(fmt.Sprintf("kernel: unknown type %d", int(t)))
	}
}

// ErrAdjustedPaper evaluates the paper's error-based kernel Q'_h(x - c, ψ)
// exactly as written in Eq. (3):
//
//	Q'(x-c, ψ) = 1/(√(2π)·(h+ψ)) · exp(−(x−c)² / (2·(h²+ψ²)))
//
// Note the paper's normalizer uses (h+ψ) while the exponent uses the
// variance h²+ψ², so for ψ>0 the kernel mass is √(h²+ψ²)/(h+ψ) < 1; the
// function is faithful to the paper. It reduces to the standard Gaussian
// kernel when ψ = 0.
func ErrAdjustedPaper(x, c, h, psi float64) float64 {
	if h <= 0 {
		panic(fmt.Sprintf("kernel: non-positive bandwidth %v", h))
	}
	if psi < 0 {
		panic(fmt.Sprintf("kernel: negative error %v", psi))
	}
	v := h*h + psi*psi
	d := x - c
	return num.InvSqrt2Pi / (h + psi) * math.Exp(-d*d/(2*v))
}

// ErrAdjustedNormalized evaluates a properly normalized version of the
// error-based kernel: a Gaussian with standard deviation √(h²+ψ²). It has
// unit mass for every ψ and matches ErrAdjustedPaper when ψ = 0. The kde
// package uses it by default; the paper variant is available for strict
// reproduction.
func ErrAdjustedNormalized(x, c, h, psi float64) float64 {
	if h <= 0 {
		panic(fmt.Sprintf("kernel: non-positive bandwidth %v", h))
	}
	if psi < 0 {
		panic(fmt.Sprintf("kernel: negative error %v", psi))
	}
	sigma := math.Sqrt(h*h + psi*psi)
	return num.NormPDF(x, c, sigma)
}

// PaperMass returns the total mass of ErrAdjustedPaper for the given
// bandwidth and error: √(h²+ψ²)/(h+ψ). Exposed for diagnostics and tests.
func PaperMass(h, psi float64) float64 {
	return math.Sqrt(h*h+psi*psi) / (h + psi)
}
