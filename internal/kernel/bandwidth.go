package kernel

import (
	"fmt"
	"math"

	"udm/internal/num"
)

// BandwidthRule selects how per-dimension smoothing parameters h_j are
// derived from the data.
type BandwidthRule int

const (
	// Silverman is the paper's rule: h = 1.06 · σ · N^(−1/5).
	Silverman BandwidthRule = iota
	// SilvermanRobust uses h = 0.9 · min(σ, IQR/1.34) · N^(−1/5), the
	// robust variant recommended by Silverman for non-Gaussian data.
	SilvermanRobust
	// Scott uses h = σ · N^(−1/(d+4)), which widens bandwidths as the
	// total dimensionality d grows.
	Scott
	// Fixed uses a caller-supplied constant bandwidth.
	Fixed
)

// String returns the rule name.
func (r BandwidthRule) String() string {
	switch r {
	case Silverman:
		return "silverman"
	case SilvermanRobust:
		return "silverman-robust"
	case Scott:
		return "scott"
	case Fixed:
		return "fixed"
	default:
		return fmt.Sprintf("kernel.BandwidthRule(%d)", int(r))
	}
}

// Bandwidth bundles a rule with its parameters.
type Bandwidth struct {
	Rule BandwidthRule
	// Value is the constant bandwidth when Rule == Fixed; ignored otherwise.
	Value float64
	// MinH floors the resulting bandwidth; it defaults to DefaultMinH
	// when zero so degenerate (constant) dimensions still yield a usable
	// kernel.
	MinH float64
}

// DefaultMinH is the floor applied to computed bandwidths so a dimension
// with zero sample variance does not produce a degenerate kernel.
const DefaultMinH = 1e-6

// FromSigma computes the bandwidth from a dimension's standard deviation
// sigma, the number of points n, and the total data dimensionality d.
// It is the summary-statistics form used when raw values are unavailable
// (e.g. computing kernels from micro-cluster statistics).
func (b Bandwidth) FromSigma(sigma float64, n, d int) float64 {
	if n <= 0 {
		panic(fmt.Sprintf("kernel: bandwidth for n=%d points", n))
	}
	var h float64
	switch b.Rule {
	case Silverman:
		h = 1.06 * sigma * math.Pow(float64(n), -0.2)
	case SilvermanRobust:
		// Without raw values the IQR is unknown; fall back to σ.
		h = 0.9 * sigma * math.Pow(float64(n), -0.2)
	case Scott:
		if d < 1 {
			d = 1
		}
		h = sigma * math.Pow(float64(n), -1/float64(d+4))
	case Fixed:
		h = b.Value
	default:
		panic(fmt.Sprintf("kernel: unknown bandwidth rule %d", int(b.Rule)))
	}
	return b.floor(h)
}

// FromValues computes the bandwidth from one dimension's raw values given
// the total data dimensionality d.
func (b Bandwidth) FromValues(values []float64, d int) float64 {
	if len(values) == 0 {
		panic("kernel: bandwidth from no values")
	}
	if b.Rule == Fixed {
		return b.floor(b.Value)
	}
	sigma := math.Sqrt(num.Variance(values))
	if b.Rule == SilvermanRobust {
		spread := sigma
		if len(values) >= 4 {
			if r := num.IQR(values) / 1.34; r < spread {
				spread = r
			}
		}
		return b.floor(0.9 * spread * math.Pow(float64(len(values)), -0.2))
	}
	return b.FromSigma(sigma, len(values), d)
}

func (b Bandwidth) floor(h float64) float64 {
	minH := b.MinH
	if minH <= 0 {
		minH = DefaultMinH
	}
	if h < minH {
		return minH
	}
	return h
}
