package kernel

import (
	"math"
	"testing"
	"testing/quick"
)

// mass integrates fn over [-L, L] with the trapezoid rule.
func mass(fn func(x float64) float64, l float64, n int) float64 {
	h := 2 * l / float64(n)
	var s float64
	for i := 0; i <= n; i++ {
		x := -l + float64(i)*h
		w := 1.0
		if i == 0 || i == n {
			w = 0.5
		}
		s += w * fn(x)
	}
	return s * h
}

func TestKernelsHaveUnitMass(t *testing.T) {
	for _, kt := range []Type{Gaussian, Epanechnikov, Laplace, Biweight, Triangular} {
		for _, width := range []float64{0.5, 1, 2.5} {
			got := mass(func(x float64) float64 { return kt.Eval(x, 0.3, width) }, 40, 40000)
			if math.Abs(got-1) > 1e-4 {
				t.Errorf("%v width %v: mass = %v", kt, width, got)
			}
		}
	}
}

func TestKernelsPeakAtCenter(t *testing.T) {
	for _, kt := range []Type{Gaussian, Epanechnikov, Laplace, Biweight, Triangular} {
		center := kt.Eval(1.5, 1.5, 1)
		for _, dx := range []float64{0.1, 0.5, 0.9, 2} {
			if kt.Eval(1.5+dx, 1.5, 1) > center {
				t.Errorf("%v: off-center value exceeds peak at dx=%v", kt, dx)
			}
		}
	}
}

func TestKernelSymmetry(t *testing.T) {
	f := func(dx, width float64) bool {
		dx = math.Mod(math.Abs(dx), 10)
		width = 0.1 + math.Mod(math.Abs(width), 5)
		if math.IsNaN(dx) || math.IsNaN(width) {
			return true
		}
		for _, kt := range []Type{Gaussian, Epanechnikov, Laplace, Biweight, Triangular} {
			if kt.Eval(dx, 0, width) != kt.Eval(-dx, 0, width) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEpanechnikovCompactSupport(t *testing.T) {
	if Epanechnikov.Eval(2.001, 0, 2) != 0 {
		t.Error("Epanechnikov nonzero outside support")
	}
	if Epanechnikov.Eval(1.999, 0, 2) == 0 {
		t.Error("Epanechnikov zero inside support")
	}
}

func TestEvalPanicsOnBadWidth(t *testing.T) {
	for _, w := range []float64{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("width %v did not panic", w)
				}
			}()
			Gaussian.Eval(0, 0, w)
		}()
	}
}

func TestErrAdjustedReducesToGaussianAtZeroError(t *testing.T) {
	// Boundary case from the paper: ψ = 0 recovers the standard kernel.
	for _, x := range []float64{-2, 0, 0.7, 3} {
		std := Gaussian.Eval(x, 0.5, 1.3)
		if got := ErrAdjustedPaper(x, 0.5, 1.3, 0); math.Abs(got-std) > 1e-15 {
			t.Errorf("paper variant at ψ=0: %v vs %v", got, std)
		}
		if got := ErrAdjustedNormalized(x, 0.5, 1.3, 0); math.Abs(got-std) > 1e-15 {
			t.Errorf("normalized variant at ψ=0: %v vs %v", got, std)
		}
	}
}

func TestErrAdjustedWidensWithError(t *testing.T) {
	// Larger ψ ⇒ lower peak (contribution smeared out), for both variants.
	peak := func(psi float64, f func(x, c, h, psi float64) float64) float64 {
		return f(0, 0, 1, psi)
	}
	for _, f := range []func(x, c, h, psi float64) float64{ErrAdjustedPaper, ErrAdjustedNormalized} {
		if !(peak(0, f) > peak(1, f) && peak(1, f) > peak(3, f)) {
			t.Error("peak does not decrease with ψ")
		}
	}
}

func TestErrAdjustedNormalizedUnitMass(t *testing.T) {
	for _, psi := range []float64{0, 0.5, 2, 10} {
		got := mass(func(x float64) float64 {
			return ErrAdjustedNormalized(x, 0, 0.8, psi)
		}, 100, 100000)
		if math.Abs(got-1) > 1e-4 {
			t.Errorf("ψ=%v: normalized mass = %v", psi, got)
		}
	}
}

func TestErrAdjustedPaperMass(t *testing.T) {
	// The paper's Eq. 3 has mass √(h²+ψ²)/(h+ψ); check numerically.
	for _, psi := range []float64{0, 0.5, 2} {
		h := 0.8
		got := mass(func(x float64) float64 {
			return ErrAdjustedPaper(x, 0, h, psi)
		}, 100, 100000)
		want := PaperMass(h, psi)
		if math.Abs(got-want) > 1e-4 {
			t.Errorf("ψ=%v: paper mass = %v, want %v", psi, got, want)
		}
	}
}

func TestErrAdjustedLimitingVariance(t *testing.T) {
	// As h→0 the kernel approaches a Gaussian with std exactly ψ
	// (the paper's limiting-case argument). Check the normalized variant's
	// second moment numerically at tiny h.
	const psi = 1.7
	second := mass(func(x float64) float64 {
		return x * x * ErrAdjustedNormalized(x, 0, 1e-9, psi)
	}, 60, 120000)
	if math.Abs(second-psi*psi) > 1e-3 {
		t.Fatalf("limiting variance = %v, want %v", second, psi*psi)
	}
}

func TestErrAdjustedPanics(t *testing.T) {
	cases := []struct{ h, psi float64 }{{0, 1}, {-1, 1}, {1, -0.5}}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("h=%v ψ=%v did not panic", c.h, c.psi)
				}
			}()
			ErrAdjustedPaper(0, 0, c.h, c.psi)
		}()
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("normalized h=%v ψ=%v did not panic", c.h, c.psi)
				}
			}()
			ErrAdjustedNormalized(0, 0, c.h, c.psi)
		}()
	}
}

func TestTypeString(t *testing.T) {
	if Gaussian.String() != "gaussian" || Type(99).String() == "" {
		t.Error("String() wrong")
	}
}
