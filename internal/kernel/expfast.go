package kernel

import (
	"fmt"
	"math"
)

// This file implements the bounded-error exponential surrogate behind
// the Approx accuracy mode. The KDE hot loop spends most of its cycles
// inside math.Exp; ExpFast trades a guaranteed-tiny relative error for
// a substantially cheaper evaluation, and AccuracyMode is the explicit
// contract (Charikar & Siminelakis, arXiv:1808.10530, argue that cheap
// surrogate kernel evaluations behind an accuracy contract are the
// right interface for fast KDE).

// ExpFastMaxRelErr bounds the relative error of ExpFast against
// math.Exp over the entire non-overflowing domain: a degree-7 Taylor
// evaluation on the Cody–Waite-reduced argument r ∈ [-ln2/2, ln2/2]
// has truncation error below 6e-9 and the Horner rounding noise stays
// within a few ulps, so 2e-8 holds with a wide margin (the property
// test asserts an order of magnitude tighter than this bound).
const ExpFastMaxRelErr = 2e-8

// Cody–Waite split of ln 2: ln2Hi+ln2Lo reproduces ln 2 to ~90 bits so
// the range reduction r = x - k·ln2 stays exact where it matters.
const (
	expLog2E = 1.4426950408889634074 // 1/ln 2
	expLn2Hi = 6.93147180369123816490e-01
	expLn2Lo = 1.90821492927058770002e-10
)

// ExpFast returns e**x with relative error at most ExpFastMaxRelErr.
// It follows the standard exp skeleton — reduce x to r = x - k·ln2
// with |r| ≤ ln2/2, evaluate a degree-7 Taylor polynomial of e**r, and
// scale by 2**k through direct exponent-bit construction — but skips
// the final Newton polish and the subnormal slow path that make
// math.Exp correctly rounded. Arguments that would underflow return 0
// and arguments that would overflow return +Inf; NaN propagates.
func ExpFast(x float64) float64 {
	switch {
	case math.IsNaN(x):
		return x
	case x > 709.0 || x < -708.396418532264106224:
		// Near overflow the biased exponent k+1023 would wrap, and near
		// underflow the result goes subnormal where the 2**k bit trick
		// cannot carry a relative-error guarantee. Neither region is ever
		// hot — defer to math.Exp (which itself overflows to +Inf and
		// underflows to 0 at the IEEE boundaries).
		return math.Exp(x)
	}
	// Range reduction: k = round(x/ln2), r = x - k·ln2 in two steps.
	kf := math.Floor(x*expLog2E + 0.5)
	r := x - kf*expLn2Hi
	r -= kf * expLn2Lo
	// Degree-7 Taylor of e**r on |r| ≤ ln2/2 ≈ 0.3466, Horner form.
	p := 1.0 + r*(1.0+r*(0.5+r*(1.0/6+r*(1.0/24+r*(1.0/120+r*(1.0/720+r*(1.0/5040)))))))
	// Scale by 2**k: build the biased exponent directly. |k| ≤ 1025
	// here, so the shifted field never wraps.
	k := int64(kf)
	return p * math.Float64frombits(uint64(k+1023)<<52)
}

// AccuracyMode selects between exact kernel evaluation and the
// bounded-error surrogate. The zero value is Exact. Modes are plain
// values: they thread through kde.Options, the udm facade, and the
// serving layer's per-request API without allocation.
type AccuracyMode struct {
	eps float64
}

// Exact requests exact evaluation: every exponential goes through
// math.Exp and results are bit-identical to the reference scalar
// engine (given the same pruning setting). This is the zero value.
func Exact() AccuracyMode { return AccuracyMode{} }

// Approx requests surrogate evaluation with relative density error at
// most eps. Implementations fall back to exact evaluation when eps is
// tighter than the surrogate can guarantee for the query's
// dimensionality, so the contract holds for every eps > 0. An eps that
// is zero, negative, NaN or Inf is rejected by Options validation.
func Approx(eps float64) AccuracyMode { return AccuracyMode{eps: eps} }

// IsExact reports whether the mode requests exact evaluation.
func (m AccuracyMode) IsExact() bool { return m.eps == 0 }

// Epsilon returns the relative error budget (0 in exact mode).
func (m AccuracyMode) Epsilon() float64 { return m.eps }

// Valid reports whether the mode is well formed: exact, or approximate
// with a positive finite budget.
func (m AccuracyMode) Valid() bool {
	return m.eps == 0 || (m.eps > 0 && !math.IsInf(m.eps, 0) && !math.IsNaN(m.eps))
}

// UsesFastExp reports whether a product kernel over dims dimensions
// may use ExpFast under this mode: the per-evaluation error compounds
// roughly linearly across the product, so the surrogate is used only
// when dims·ExpFastMaxRelErr fits in half the budget (the other half
// absorbs summation effects). Exact mode never uses it.
func (m AccuracyMode) UsesFastExp(dims int) bool {
	if m.eps == 0 || dims < 1 {
		return false
	}
	return m.eps >= 2*float64(dims)*ExpFastMaxRelErr
}

// String renders the mode for logs, headers and cache keys: "exact" or
// "approx(1e-06)".
func (m AccuracyMode) String() string {
	if m.eps == 0 {
		return "exact"
	}
	return fmt.Sprintf("approx(%g)", m.eps)
}

// ParseAccuracy maps the serving-layer wire form to a mode: "" or
// "exact" is Exact; "approx" is Approx(eps), with eps defaulting to
// DefaultApproxEps when zero. Unknown names, invalid budgets, and the
// contradictory exact-with-epsilon combination return false rather
// than silently dropping part of the request.
func ParseAccuracy(name string, eps float64) (AccuracyMode, bool) {
	switch name {
	case "", "exact":
		return Exact(), eps == 0
	case "approx":
		if eps == 0 {
			eps = DefaultApproxEps
		}
		m := Approx(eps)
		return m, m.Valid() && !m.IsExact()
	}
	return AccuracyMode{}, false
}

// DefaultApproxEps is the relative error budget used when a caller
// requests approximate evaluation without naming one: comfortably
// tighter than any statistical use of a density cares about, loose
// enough to keep the surrogate engaged in every realistic
// dimensionality.
const DefaultApproxEps = 1e-6
