package kernel

import (
	"math"
	"testing"

	"udm/internal/rng"
)

// relErr is |got-want|/|want| with exact-zero handling.
func relErr(got, want float64) float64 {
	if got == want {
		return 0
	}
	if want == 0 {
		return math.Inf(1)
	}
	return math.Abs(got-want) / math.Abs(want)
}

func TestExpFastWithinBound(t *testing.T) {
	r := rng.New(42)
	check := func(x float64) {
		t.Helper()
		got, want := ExpFast(x), math.Exp(x)
		if re := relErr(got, want); re > ExpFastMaxRelErr {
			t.Fatalf("ExpFast(%v) = %v, want %v (rel err %.3g > %.3g)", x, got, want, re, ExpFastMaxRelErr)
		}
	}
	// Dense sweep over the KDE-relevant range and the full finite domain.
	for x := -60.0; x <= 5.0; x += 0.0137 {
		check(x)
	}
	for x := -708.0; x <= 709.5; x += 1.37 {
		check(x)
	}
	// Random corpus, concentrated near zero where the reduction r is
	// largest relative to x.
	for i := 0; i < 200000; i++ {
		check((r.Float64()*2 - 1) * 710)
		check((r.Float64()*2 - 1) * 2)
	}
}

func TestExpFastEdgeCases(t *testing.T) {
	cases := []float64{
		0, 1, -1, math.Ln2 / 2, -math.Ln2 / 2,
		709, 709.4, 709.7, 709.782712893384, // overflow threshold region
		710, 1000, math.Inf(1),
		-708.3, -708.4, -745, -746, -1000, math.Inf(-1), // underflow region
		math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64,
	}
	for _, x := range cases {
		got, want := ExpFast(x), math.Exp(x)
		if math.IsInf(want, 1) || want == 0 {
			// At the extremes we require exact agreement with math.Exp.
			if got != want {
				t.Errorf("ExpFast(%v) = %v, want %v", x, got, want)
			}
			continue
		}
		if re := relErr(got, want); re > ExpFastMaxRelErr {
			t.Errorf("ExpFast(%v) = %v, want %v (rel err %.3g)", x, got, want, re)
		}
	}
	if !math.IsNaN(ExpFast(math.NaN())) {
		t.Errorf("ExpFast(NaN) = %v, want NaN", ExpFast(math.NaN()))
	}
}

func TestAccuracyMode(t *testing.T) {
	if !Exact().IsExact() || Exact().Epsilon() != 0 || !Exact().Valid() {
		t.Fatal("Exact() is not the exact zero value")
	}
	var zero AccuracyMode
	if !zero.IsExact() {
		t.Fatal("zero AccuracyMode must be exact")
	}
	m := Approx(1e-6)
	if m.IsExact() || m.Epsilon() != 1e-6 || !m.Valid() {
		t.Fatalf("Approx(1e-6) broken: %+v", m)
	}
	for _, bad := range []float64{-1, math.NaN(), math.Inf(1)} {
		if Approx(bad).Valid() {
			t.Errorf("Approx(%v) should be invalid", bad)
		}
	}
	if Exact().String() != "exact" {
		t.Errorf("Exact().String() = %q", Exact().String())
	}
	if got := Approx(1e-6).String(); got != "approx(1e-06)" {
		t.Errorf("Approx(1e-6).String() = %q", got)
	}
	// The surrogate engages only when the compounded per-dimension error
	// fits in half the budget.
	if Exact().UsesFastExp(2) {
		t.Error("exact mode must never use the fast exponential")
	}
	if !Approx(1e-6).UsesFastExp(2) {
		t.Error("Approx(1e-6) should use the fast exponential in 2-D")
	}
	if Approx(3 * ExpFastMaxRelErr).UsesFastExp(2) {
		t.Error("a budget below 2·dims·maxRelErr must fall back to exact")
	}
}

func TestParseAccuracy(t *testing.T) {
	for _, tc := range []struct {
		name string
		eps  float64
		want AccuracyMode
		ok   bool
	}{
		{"", 0, Exact(), true},
		{"exact", 0, Exact(), true},
		{"approx", 0, Approx(DefaultApproxEps), true},
		{"approx", 1e-3, Approx(1e-3), true},
		{"exact", 0.5, AccuracyMode{}, false},
		{"", 1e-3, AccuracyMode{}, false},
		{"approx", -1, AccuracyMode{}, false},
		{"approx", math.NaN(), AccuracyMode{}, false},
		{"fast", 0, AccuracyMode{}, false},
	} {
		got, ok := ParseAccuracy(tc.name, tc.eps)
		if ok != tc.ok || (ok && got != tc.want) {
			t.Errorf("ParseAccuracy(%q, %v) = %v, %v; want %v, %v", tc.name, tc.eps, got, ok, tc.want, tc.ok)
		}
	}
}
