package kernel

import "testing"

func BenchmarkGaussianEval(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Gaussian.Eval(1.3, 0.2, 0.8)
	}
}

func BenchmarkErrAdjustedNormalized(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = ErrAdjustedNormalized(1.3, 0.2, 0.8, 0.5)
	}
}

func BenchmarkErrAdjustedPaper(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = ErrAdjustedPaper(1.3, 0.2, 0.8, 0.5)
	}
}

func BenchmarkSilvermanFromValues(b *testing.B) {
	v := make([]float64, 1000)
	for i := range v {
		v[i] = float64(i%17) * 0.3
	}
	rule := Bandwidth{Rule: Silverman}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = rule.FromValues(v, 4)
	}
}
