package kernel

import (
	"math"
	"testing"
)

func TestSilvermanFromSigma(t *testing.T) {
	// h = 1.06 σ N^{-1/5}; paper's rule.
	b := Bandwidth{Rule: Silverman}
	got := b.FromSigma(2, 1000, 1)
	want := 1.06 * 2 * math.Pow(1000, -0.2)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("Silverman = %v, want %v", got, want)
	}
}

func TestBandwidthShrinksWithN(t *testing.T) {
	b := Bandwidth{Rule: Silverman}
	if !(b.FromSigma(1, 10, 1) > b.FromSigma(1, 1000, 1)) {
		t.Error("bandwidth should shrink with N")
	}
}

func TestScottDependsOnDimensionality(t *testing.T) {
	b := Bandwidth{Rule: Scott}
	if !(b.FromSigma(1, 1000, 10) > b.FromSigma(1, 1000, 1)) {
		t.Error("Scott bandwidth should grow with d")
	}
}

func TestFixedRule(t *testing.T) {
	b := Bandwidth{Rule: Fixed, Value: 0.37}
	if got := b.FromSigma(99, 5, 3); got != 0.37 {
		t.Fatalf("Fixed = %v", got)
	}
	if got := b.FromValues([]float64{1, 2, 3}, 1); got != 0.37 {
		t.Fatalf("Fixed from values = %v", got)
	}
}

func TestMinHFloor(t *testing.T) {
	b := Bandwidth{Rule: Silverman}
	if got := b.FromSigma(0, 100, 1); got != DefaultMinH {
		t.Fatalf("zero-sigma bandwidth = %v, want floor %v", got, DefaultMinH)
	}
	b.MinH = 0.5
	if got := b.FromSigma(0.001, 100, 1); got != 0.5 {
		t.Fatalf("custom floor = %v", got)
	}
}

func TestFromValuesMatchesFromSigma(t *testing.T) {
	v := []float64{2, 4, 4, 4, 5, 5, 7, 9} // σ = 2
	b := Bandwidth{Rule: Silverman}
	if got, want := b.FromValues(v, 1), b.FromSigma(2, len(v), 1); math.Abs(got-want) > 1e-12 {
		t.Fatalf("FromValues = %v, FromSigma = %v", got, want)
	}
}

func TestSilvermanRobustUsesIQRWhenSmaller(t *testing.T) {
	// Heavy outlier inflates σ but not the IQR; robust rule should be
	// smaller than the plain rule.
	v := []float64{1, 2, 3, 4, 5, 6, 7, 1000}
	plain := Bandwidth{Rule: Silverman}.FromValues(v, 1)
	robust := Bandwidth{Rule: SilvermanRobust}.FromValues(v, 1)
	if robust >= plain {
		t.Fatalf("robust %v should be < plain %v under outliers", robust, plain)
	}
}

func TestBandwidthPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("n=0 did not panic")
			}
		}()
		Bandwidth{Rule: Silverman}.FromSigma(1, 0, 1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("empty values did not panic")
			}
		}()
		Bandwidth{Rule: Silverman}.FromValues(nil, 1)
	}()
}

func TestRuleString(t *testing.T) {
	names := map[BandwidthRule]string{
		Silverman: "silverman", SilvermanRobust: "silverman-robust",
		Scott: "scott", Fixed: "fixed",
	}
	for r, want := range names {
		if r.String() != want {
			t.Errorf("%d.String() = %q", int(r), r.String())
		}
	}
}
