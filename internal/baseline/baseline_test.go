package baseline

import (
	"math"
	"testing"

	"udm/internal/dataset"
	"udm/internal/rng"
)

func labeled(t *testing.T) *dataset.Dataset {
	t.Helper()
	d := dataset.New("x", "y")
	rows := []struct {
		x []float64
		l int
	}{
		{[]float64{0, 0}, 0},
		{[]float64{1, 0}, 0},
		{[]float64{0, 1}, 0},
		{[]float64{10, 10}, 1},
		{[]float64{11, 10}, 1},
	}
	for _, r := range rows {
		if err := d.Append(r.x, nil, r.l); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func TestNearestNeighbor(t *testing.T) {
	nn, err := NewNearestNeighbor(labeled(t))
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := nn.Classify([]float64{0.2, 0.2}); got != 0 {
		t.Errorf("near origin = %d", got)
	}
	if got, _ := nn.Classify([]float64{10.4, 10}); got != 1 {
		t.Errorf("near cluster 1 = %d", got)
	}
	if _, err := nn.Classify([]float64{1}); err == nil {
		t.Error("short point accepted")
	}
}

func TestNearestNeighborIgnoresErrors(t *testing.T) {
	// Identical values with huge recorded errors: predictions unchanged,
	// because NN is deliberately error-oblivious.
	d := labeled(t)
	withErr := d.Clone()
	withErr.Err = make([][]float64, withErr.Len())
	for i := range withErr.Err {
		withErr.Err[i] = []float64{100, 100}
	}
	a, err := NewNearestNeighbor(d)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewNearestNeighbor(withErr)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range [][]float64{{0, 0}, {5, 5}, {10, 10}} {
		la, _ := a.Classify(x)
		lb, _ := b.Classify(x)
		if la != lb {
			t.Fatal("NN depended on error matrix")
		}
	}
}

func TestKNN(t *testing.T) {
	knn, err := NewKNN(labeled(t), 3)
	if err != nil {
		t.Fatal(err)
	}
	// Point nearer to cluster 1 but with only 2 class-1 rows among its 3
	// nearest... construct: at (6,6) the three nearest are the two class-1
	// rows (d²≈32) and one class-0 row (d²=61): majority class 1.
	if got, _ := knn.Classify([]float64{6, 6}); got != 1 {
		t.Errorf("kNN = %d, want 1", got)
	}
	if got, _ := knn.Classify([]float64{0.5, 0.5}); got != 0 {
		t.Errorf("kNN = %d, want 0", got)
	}
	if _, err := NewKNN(labeled(t), 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewKNN(labeled(t), 6); err == nil {
		t.Error("k>N accepted")
	}
	if _, err := knn.Classify([]float64{1}); err == nil {
		t.Error("short point accepted")
	}
}

func TestKNNWithK1MatchesNN(t *testing.T) {
	d := labeled(t)
	nn, _ := NewNearestNeighbor(d)
	knn, _ := NewKNN(d, 1)
	r := rng.New(1)
	for i := 0; i < 50; i++ {
		x := []float64{r.Uniform(-2, 13), r.Uniform(-2, 13)}
		a, _ := nn.Classify(x)
		b, _ := knn.Classify(x)
		if a != b {
			t.Fatalf("NN %d vs 1NN %d at %v", a, b, x)
		}
	}
}

func TestMajority(t *testing.T) {
	m, err := NewMajority(labeled(t))
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := m.Classify([]float64{999, 999}); got != 0 {
		t.Errorf("majority = %d, want 0 (3 vs 2 rows)", got)
	}
}

func TestRandomIsUniform(t *testing.T) {
	c, err := NewRandom(4, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 4)
	const n = 40000
	for i := 0; i < n; i++ {
		l, _ := c.Classify(nil)
		counts[l]++
	}
	for _, cnt := range counts {
		if math.Abs(float64(cnt)/n-0.25) > 0.02 {
			t.Fatalf("counts %v not uniform", counts)
		}
	}
	if _, err := NewRandom(0, rng.New(1)); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewRandom(2, nil); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestValidateTrain(t *testing.T) {
	if _, err := NewNearestNeighbor(dataset.New("x")); err == nil {
		t.Error("empty training accepted")
	}
	d := dataset.New("x")
	_ = d.Append([]float64{1}, nil, dataset.Unlabeled)
	if _, err := NewNearestNeighbor(d); err == nil {
		t.Error("unlabeled training accepted")
	}
}
