package baseline

import (
	"testing"

	"udm/internal/datagen"
	"udm/internal/dataset"
	"udm/internal/rng"
)

func TestNaiveBayesSeparableBlobs(t *testing.T) {
	train, err := datagen.TwoBlobs(3).Generate(500, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	nb, err := NewNaiveBayes(train)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		x    []float64
		want int
	}{
		{[]float64{-3, 0}, 0},
		{[]float64{3, 0}, 1},
		{[]float64{-2.5, 1.5}, 0},
	}
	for _, c := range cases {
		got, err := nb.Classify(c.x)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("Classify(%v) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestNaiveBayesUsesPriors(t *testing.T) {
	// Heavy class imbalance: an ambiguous midpoint should lean to the
	// prior-heavy class.
	d := dataset.New("x")
	r := rng.New(2)
	for i := 0; i < 900; i++ {
		_ = d.Append([]float64{r.Norm(-1, 2)}, nil, 0)
	}
	for i := 0; i < 100; i++ {
		_ = d.Append([]float64{r.Norm(1, 2)}, nil, 1)
	}
	nb, err := NewNaiveBayes(d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := nb.Classify([]float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("midpoint classified %d, want prior-heavy class 0", got)
	}
}

func TestNaiveBayesZeroVarianceDimension(t *testing.T) {
	d := dataset.New("const", "x")
	for i := 0; i < 20; i++ {
		v := float64(i%2*10 - 5)
		_ = d.Append([]float64{7, v}, nil, i%2)
	}
	nb, err := NewNaiveBayes(d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := nb.Classify([]float64{7, 5})
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("got %d, want 1", got)
	}
}

func TestNaiveBayesValidation(t *testing.T) {
	if _, err := NewNaiveBayes(dataset.New("x")); err == nil {
		t.Error("empty training accepted")
	}
	one := dataset.New("x")
	_ = one.Append([]float64{1}, nil, 0)
	if _, err := NewNaiveBayes(one); err == nil {
		t.Error("single-class training accepted")
	}
	d, _ := datagen.TwoBlobs(1).Generate(20, rng.New(3))
	nb, err := NewNaiveBayes(d)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nb.Classify([]float64{1}); err == nil {
		t.Error("short test point accepted")
	}
}

func TestNaiveBayesIgnoresErrors(t *testing.T) {
	d, _ := datagen.TwoBlobs(3).Generate(200, rng.New(4))
	withErr := d.Clone()
	withErr.Err = make([][]float64, withErr.Len())
	for i := range withErr.Err {
		withErr.Err[i] = []float64{50, 50}
	}
	a, err := NewNaiveBayes(d)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewNaiveBayes(withErr)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range [][]float64{{-3, 0}, {0, 0.5}, {3, -1}} {
		la, _ := a.Classify(x)
		lb, _ := b.Classify(x)
		if la != lb {
			t.Fatal("naive Bayes depended on the error matrix")
		}
	}
}
