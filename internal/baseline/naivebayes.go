package baseline

import (
	"fmt"
	"math"

	"udm/internal/dataset"
	"udm/internal/num"
)

// NaiveBayes is a Gaussian naive-Bayes classifier: per class and
// dimension it fits N(μ, σ²) to the observed values and predicts the
// class with the highest log-posterior. Like the other baselines it is
// error-oblivious — ψ never enters — which makes it the natural
// parametric counterpart to the paper's nonparametric density method.
type NaiveBayes struct {
	mean   [][]float64 // [class][dim]
	std    [][]float64
	logPri []float64
	dims   int
}

// NewNaiveBayes fits the classifier to labeled training data. Degenerate
// (zero-variance) dimensions get a small σ floor so likelihoods stay
// finite.
func NewNaiveBayes(train *dataset.Dataset) (*NaiveBayes, error) {
	if err := validateTrain(train); err != nil {
		return nil, err
	}
	k := train.NumClasses()
	if k < 2 {
		return nil, fmt.Errorf("baseline: naive Bayes needs ≥ 2 classes, have %d", k)
	}
	nb := &NaiveBayes{dims: train.Dims()}
	const sigmaFloor = 1e-6
	for c := 0; c < k; c++ {
		moms := make([]num.Moments, train.Dims())
		n := 0
		for i := 0; i < train.Len(); i++ {
			if train.Labels[i] != c {
				continue
			}
			n++
			for j, v := range train.X[i] {
				moms[j].Add(v)
			}
		}
		if n == 0 {
			return nil, fmt.Errorf("baseline: class %d has no training rows", c)
		}
		mean := make([]float64, train.Dims())
		std := make([]float64, train.Dims())
		for j := range moms {
			mean[j] = moms[j].Mean()
			std[j] = moms[j].StdDev()
			if std[j] < sigmaFloor {
				std[j] = sigmaFloor
			}
		}
		nb.mean = append(nb.mean, mean)
		nb.std = append(nb.std, std)
		nb.logPri = append(nb.logPri, math.Log(float64(n)/float64(train.Len())))
	}
	return nb, nil
}

// Classify returns the maximum-a-posteriori class for x.
func (nb *NaiveBayes) Classify(x []float64) (int, error) {
	if len(x) != nb.dims {
		return 0, fmt.Errorf("baseline: test point has %d dims, want %d", len(x), nb.dims)
	}
	best, bestLL := 0, math.Inf(-1)
	for c := range nb.mean {
		ll := nb.logPri[c]
		for j, v := range x {
			z := (v - nb.mean[c][j]) / nb.std[c][j]
			ll += -0.5*z*z - math.Log(nb.std[c][j])
		}
		if ll > bestLL {
			best, bestLL = c, ll
		}
	}
	return best, nil
}
