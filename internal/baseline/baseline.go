// Package baseline implements the error-oblivious comparators used in
// the paper's evaluation — chiefly the nearest-neighbor classifier — plus
// kNN, majority and random classifiers for reference lines. None of them
// look at the per-entry error matrix: that blindness is precisely what
// the experiments measure.
package baseline

import (
	"fmt"

	"udm/internal/dataset"
	"udm/internal/kdtree"
	"udm/internal/rng"
)

// NearestNeighbor is the paper's comparator (2): it reports the class of
// the Euclidean-nearest training record, ignoring all error information.
// Queries run on a k-d tree, so classification costs O(log N) on
// low-dimensional data instead of the brute-force O(N).
type NearestNeighbor struct {
	tree   *kdtree.Tree
	labels []int
}

// NewNearestNeighbor builds the classifier over labeled training data.
func NewNearestNeighbor(train *dataset.Dataset) (*NearestNeighbor, error) {
	if err := validateTrain(train); err != nil {
		return nil, err
	}
	tree, err := kdtree.Build(train.X)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	return &NearestNeighbor{tree: tree, labels: train.Labels}, nil
}

// Classify returns the label of the nearest training record.
func (nn *NearestNeighbor) Classify(x []float64) (int, error) {
	if len(x) != nn.tree.Dims() {
		return 0, fmt.Errorf("baseline: test point has %d dims, want %d", len(x), nn.tree.Dims())
	}
	i, _ := nn.tree.Nearest(x)
	return nn.labels[i], nil
}

// KNN is the k-nearest-neighbor majority classifier (Euclidean,
// error-oblivious, k-d tree backed). Ties in the vote are broken toward
// the nearer neighbors' class.
type KNN struct {
	tree   *kdtree.Tree
	labels []int
	k      int
}

// NewKNN builds a kNN classifier; k must be in [1, len(train)].
func NewKNN(train *dataset.Dataset, k int) (*KNN, error) {
	if err := validateTrain(train); err != nil {
		return nil, err
	}
	if k < 1 || k > train.Len() {
		return nil, fmt.Errorf("baseline: k=%d for %d training rows", k, train.Len())
	}
	tree, err := kdtree.Build(train.X)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	return &KNN{tree: tree, labels: train.Labels, k: k}, nil
}

// Classify returns the majority label among the k nearest records.
func (c *KNN) Classify(x []float64) (int, error) {
	if len(x) != c.tree.Dims() {
		return 0, fmt.Errorf("baseline: test point has %d dims, want %d", len(x), c.tree.Dims())
	}
	idx, _ := c.tree.KNearest(x, c.k)
	votes := map[int]int{}
	bestLabel, bestVotes := c.labels[idx[0]], 0
	for _, i := range idx {
		l := c.labels[i]
		votes[l]++
		if votes[l] > bestVotes {
			bestLabel, bestVotes = l, votes[l]
		}
	}
	return bestLabel, nil
}

// Majority always predicts the most frequent training class — the floor
// any useful classifier must beat.
type Majority struct {
	label int
}

// NewMajority builds the majority-class classifier.
func NewMajority(train *dataset.Dataset) (*Majority, error) {
	if err := validateTrain(train); err != nil {
		return nil, err
	}
	counts := make(map[int]int)
	for _, l := range train.Labels {
		counts[l]++
	}
	best, bestN := 0, -1
	for l, n := range counts {
		if n > bestN || (n == bestN && l < best) {
			best, bestN = l, n
		}
	}
	return &Majority{label: best}, nil
}

// Classify returns the majority training label regardless of x.
func (m *Majority) Classify(x []float64) (int, error) { return m.label, nil }

// Random predicts a uniformly random class — the paper's reference point
// for "the classifier has been reduced to noise".
type Random struct {
	k int
	r *rng.Source
}

// NewRandom builds a random classifier over k classes.
func NewRandom(k int, r *rng.Source) (*Random, error) {
	if k < 1 {
		return nil, fmt.Errorf("baseline: random classifier over %d classes", k)
	}
	if r == nil {
		return nil, fmt.Errorf("baseline: nil random source")
	}
	return &Random{k: k, r: r}, nil
}

// Classify returns a uniform random label.
func (c *Random) Classify(x []float64) (int, error) { return c.r.Intn(c.k), nil }

func validateTrain(train *dataset.Dataset) error {
	if train.Len() == 0 {
		return fmt.Errorf("baseline: empty training data")
	}
	if train.Labels == nil {
		return fmt.Errorf("baseline: unlabeled training data")
	}
	for i, l := range train.Labels {
		if l == dataset.Unlabeled {
			return fmt.Errorf("baseline: row %d is unlabeled", i)
		}
	}
	return nil
}
