package eval

import (
	"fmt"
	"math"
	"sort"
)

// ROCPoint is one operating point of a receiver operating characteristic
// curve.
type ROCPoint struct {
	// Threshold is the score cut: instances with score >= Threshold are
	// predicted positive.
	Threshold float64
	// FPR is the false-positive rate at this cut.
	FPR float64
	// TPR is the true-positive rate (recall) at this cut.
	TPR float64
}

// ROC returns the ROC curve of a scoring function where higher scores
// mean "more positive" (e.g. outlier scores with anomalies as
// positives). The curve runs from (0,0) to (1,1) with one point per
// distinct score. Both classes must be non-empty.
func ROC(scores []float64, positive []bool) ([]ROCPoint, error) {
	if len(scores) != len(positive) {
		return nil, fmt.Errorf("eval: %d scores for %d labels", len(scores), len(positive))
	}
	var pos, neg int
	for _, p := range positive {
		if p {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return nil, fmt.Errorf("eval: ROC needs both classes (have %d positive, %d negative)", pos, neg)
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })

	curve := []ROCPoint{{Threshold: math.Inf(1), FPR: 0, TPR: 0}}
	tp, fp := 0, 0
	for i := 0; i < len(idx); {
		// Consume all instances tied at this score together so the curve
		// is threshold-consistent.
		s := scores[idx[i]]
		// Ties are bit-identical scores: identical inputs produce
		// identical bits under the determinism contract.
		for i < len(idx) && math.Float64bits(scores[idx[i]]) == math.Float64bits(s) {
			if positive[idx[i]] {
				tp++
			} else {
				fp++
			}
			i++
		}
		curve = append(curve, ROCPoint{
			Threshold: s,
			FPR:       float64(fp) / float64(neg),
			TPR:       float64(tp) / float64(pos),
		})
	}
	return curve, nil
}

// AUC returns the area under the ROC curve via the rank-sum
// (Mann–Whitney) statistic, with the standard half-credit for ties:
// AUC = P(score(pos) > score(neg)) + ½·P(score(pos) = score(neg)).
func AUC(scores []float64, positive []bool) (float64, error) {
	if len(scores) != len(positive) {
		return 0, fmt.Errorf("eval: %d scores for %d labels", len(scores), len(positive))
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })
	// Average ranks with ties sharing the mean rank.
	ranks := make([]float64, len(scores))
	for i := 0; i < len(idx); {
		j := i
		for j < len(idx) && math.Float64bits(scores[idx[j]]) == math.Float64bits(scores[idx[i]]) {
			j++
		}
		mean := float64(i+j+1) / 2 // ranks are 1-based
		for k := i; k < j; k++ {
			ranks[idx[k]] = mean
		}
		i = j
	}
	var pos, neg int
	var rankSum float64
	for i, p := range positive {
		if p {
			pos++
			rankSum += ranks[i]
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return 0, fmt.Errorf("eval: AUC needs both classes (have %d positive, %d negative)", pos, neg)
	}
	u := rankSum - float64(pos)*float64(pos+1)/2
	return u / (float64(pos) * float64(neg)), nil
}
