// Package eval provides the measurement layer of the experiment harness:
// classifier evaluation (accuracy, confusion matrices, per-class
// precision/recall/F1), cross-validation, per-example timing, and the
// table/plot emitters that print paper-style series.
package eval

import (
	"fmt"
	"math"
	"time"

	"udm/internal/dataset"
)

// Classifier is anything that predicts a class label for a test point.
// Both the core density classifiers and the baselines satisfy it.
type Classifier interface {
	Classify(x []float64) (int, error)
}

// Result summarizes a classifier's performance on one labeled test set.
type Result struct {
	// Confusion counts predictions: Confusion[actual][predicted].
	Confusion [][]int
	// N is the number of test rows evaluated.
	N int
	// Correct is the number of exact matches.
	Correct int
	// TestTime is the total wall-clock time spent in Classify calls.
	TestTime time.Duration
}

// Accuracy returns the fraction of correct predictions.
func (r *Result) Accuracy() float64 {
	if r.N == 0 {
		return 0
	}
	return float64(r.Correct) / float64(r.N)
}

// PerExample returns the average classification time per test row.
func (r *Result) PerExample() time.Duration {
	if r.N == 0 {
		return 0
	}
	return r.TestTime / time.Duration(r.N)
}

// Precision returns TP/(TP+FP) for class c (0 when the class was never
// predicted).
func (r *Result) Precision(c int) float64 {
	var tp, predicted int
	for actual := range r.Confusion {
		predicted += r.Confusion[actual][c]
	}
	tp = r.Confusion[c][c]
	if predicted == 0 {
		return 0
	}
	return float64(tp) / float64(predicted)
}

// Recall returns TP/(TP+FN) for class c (0 when the class never occurs).
func (r *Result) Recall(c int) float64 {
	var actual int
	for _, n := range r.Confusion[c] {
		actual += n
	}
	if actual == 0 {
		return 0
	}
	return float64(r.Confusion[c][c]) / float64(actual)
}

// F1 returns the harmonic mean of precision and recall for class c.
func (r *Result) F1(c int) float64 {
	p, rec := r.Precision(c), r.Recall(c)
	if p+rec == 0 {
		return 0
	}
	return 2 * p * rec / (p + rec)
}

// MacroF1 returns the unweighted mean F1 over classes that occur in the
// test set.
func (r *Result) MacroF1() float64 {
	var sum float64
	var k int
	for c := range r.Confusion {
		var actual int
		for _, n := range r.Confusion[c] {
			actual += n
		}
		if actual > 0 {
			sum += r.F1(c)
			k++
		}
	}
	if k == 0 {
		return 0
	}
	return sum / float64(k)
}

// Evaluate classifies every row of test and tallies the results. All test
// rows must be labeled.
func Evaluate(c Classifier, test *dataset.Dataset) (*Result, error) {
	if test.Len() == 0 {
		return nil, fmt.Errorf("eval: empty test set")
	}
	k := test.NumClasses()
	if k == 0 {
		return nil, fmt.Errorf("eval: unlabeled test set")
	}
	r := &Result{N: test.Len()}
	for i := 0; i < k; i++ {
		r.Confusion = append(r.Confusion, make([]int, k))
	}
	for i := 0; i < test.Len(); i++ {
		actual := test.Label(i)
		if actual == dataset.Unlabeled {
			return nil, fmt.Errorf("eval: test row %d is unlabeled", i)
		}
		start := time.Now()
		got, err := c.Classify(test.X[i])
		r.TestTime += time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("eval: classifying row %d: %w", i, err)
		}
		if got < 0 || got >= k {
			return nil, fmt.Errorf("eval: row %d predicted out-of-range class %d", i, got)
		}
		if got == actual {
			r.Correct++
		}
		r.Confusion[actual][got]++
	}
	return r, nil
}

// Trainer builds a classifier from training data; used by CrossValidate.
type Trainer func(train *dataset.Dataset) (Classifier, error)

// CVResult aggregates per-fold accuracies.
type CVResult struct {
	// FoldAccuracy holds one accuracy per fold.
	FoldAccuracy []float64
}

// Mean returns the mean fold accuracy.
func (r *CVResult) Mean() float64 {
	var s float64
	for _, a := range r.FoldAccuracy {
		s += a
	}
	if len(r.FoldAccuracy) == 0 {
		return 0
	}
	return s / float64(len(r.FoldAccuracy))
}

// Std returns the population standard deviation of fold accuracies.
func (r *CVResult) Std() float64 {
	m := r.Mean()
	var s float64
	for _, a := range r.FoldAccuracy {
		d := a - m
		s += d * d
	}
	if len(r.FoldAccuracy) == 0 {
		return 0
	}
	return math.Sqrt(s / float64(len(r.FoldAccuracy)))
}

// CrossValidate trains and evaluates over the given folds.
func CrossValidate(folds []dataset.Fold, train Trainer) (*CVResult, error) {
	if len(folds) == 0 {
		return nil, fmt.Errorf("eval: no folds")
	}
	out := &CVResult{}
	for i, f := range folds {
		c, err := train(f.Train)
		if err != nil {
			return nil, fmt.Errorf("eval: training fold %d: %w", i, err)
		}
		res, err := Evaluate(c, f.Test)
		if err != nil {
			return nil, fmt.Errorf("eval: evaluating fold %d: %w", i, err)
		}
		out.FoldAccuracy = append(out.FoldAccuracy, res.Accuracy())
	}
	return out, nil
}

// TimePerExample runs fn once and returns the elapsed time divided by n —
// the "seconds per example" metric the paper's efficiency figures report.
func TimePerExample(n int, fn func()) time.Duration {
	if n <= 0 {
		panic(fmt.Sprintf("eval: TimePerExample with n=%d", n))
	}
	start := time.Now()
	fn()
	return time.Since(start) / time.Duration(n)
}
