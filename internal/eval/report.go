package eval

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Series is one named curve of an experiment figure: paired X/Y values.
type Series struct {
	// Name labels the curve (e.g. "ErrAdj", "NN").
	Name string
	// X holds the sweep parameter values.
	X []float64
	// Y holds the measured values.
	Y []float64
}

// Table is the tabular form of one experiment figure: a shared X column
// and one Y column per series.
type Table struct {
	// Title heads the printed output.
	Title string
	// XLabel names the sweep parameter.
	XLabel string
	// Series holds the curves; all must share the same X values.
	Series []Series
}

// NewTable builds a table after checking the series are aligned.
func NewTable(title, xlabel string, series ...Series) (*Table, error) {
	if len(series) == 0 {
		return nil, fmt.Errorf("eval: table %q has no series", title)
	}
	for _, s := range series {
		if len(s.X) != len(s.Y) {
			return nil, fmt.Errorf("eval: series %q has %d X for %d Y", s.Name, len(s.X), len(s.Y))
		}
		if len(s.X) != len(series[0].X) {
			return nil, fmt.Errorf("eval: series %q length %d != %d", s.Name, len(s.X), len(series[0].X))
		}
		for i := range s.X {
			// The shared X grid must be bit-identical across series, per
			// the determinism contract; bit comparison says so exactly.
			if math.Float64bits(s.X[i]) != math.Float64bits(series[0].X[i]) {
				return nil, fmt.Errorf("eval: series %q X[%d]=%v differs from %v", s.Name, i, s.X[i], series[0].X[i])
			}
		}
	}
	return &Table{Title: title, XLabel: xlabel, Series: series}, nil
}

// WriteText prints the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	cols := make([][]string, len(t.Series)+1)
	cols[0] = append(cols[0], t.XLabel)
	for _, x := range t.Series[0].X {
		cols[0] = append(cols[0], formatFloat(x))
	}
	for si, s := range t.Series {
		cols[si+1] = append(cols[si+1], s.Name)
		for _, y := range s.Y {
			cols[si+1] = append(cols[si+1], formatFloat(y))
		}
	}
	widths := make([]int, len(cols))
	for ci, col := range cols {
		for _, cell := range col {
			if len(cell) > widths[ci] {
				widths[ci] = len(cell)
			}
		}
	}
	if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
		return err
	}
	for row := 0; row < len(cols[0]); row++ {
		var b strings.Builder
		for ci := range cols {
			if ci > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[ci], cols[ci][row])
		}
		if _, err := fmt.Fprintln(w, b.String()); err != nil {
			return err
		}
		if row == 0 {
			total := 0
			for ci, wd := range widths {
				if ci > 0 {
					total += 2
				}
				total += wd
			}
			if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteMarkdown emits the table as a GitHub-flavored Markdown table with
// the title as a heading — ready to paste into EXPERIMENTS-style reports.
func (t *Table) WriteMarkdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "### %s\n\n", t.Title); err != nil {
		return err
	}
	header := "| " + t.XLabel + " |"
	rule := "|---|"
	for _, s := range t.Series {
		header += " " + s.Name + " |"
		rule += "---|"
	}
	if _, err := fmt.Fprintf(w, "%s\n%s\n", header, rule); err != nil {
		return err
	}
	for i := range t.Series[0].X {
		row := "| " + formatFloat(t.Series[0].X[i]) + " |"
		for _, s := range t.Series {
			row += " " + formatFloat(s.Y[i]) + " |"
		}
		if _, err := fmt.Fprintln(w, row); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteCSV emits the table as CSV with a header row.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{t.XLabel}
	for _, s := range t.Series {
		header = append(header, s.Name)
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("eval: writing CSV header: %w", err)
	}
	for i := range t.Series[0].X {
		rec := []string{strconv.FormatFloat(t.Series[0].X[i], 'g', -1, 64)}
		for _, s := range t.Series {
			rec = append(rec, strconv.FormatFloat(s.Y[i], 'g', -1, 64))
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("eval: writing CSV row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// markers are the per-series glyphs used by PlotASCII, cycled in order.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// PlotASCII renders the table as a crude multi-series terminal line
// chart: one glyph per series, Y axis labeled with min/max, legend below.
// width and height are the plot-area cell counts (sensible defaults are
// applied when ≤ 0).
func (t *Table) PlotASCII(w io.Writer, width, height int) error {
	if width <= 0 {
		width = 60
	}
	if height <= 0 {
		height = 16
	}
	var loX, hiX, loY, hiY float64
	first := true
	for _, s := range t.Series {
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			if first {
				loX, hiX, loY, hiY = s.X[i], s.X[i], s.Y[i], s.Y[i]
				first = false
				continue
			}
			loX = math.Min(loX, s.X[i])
			hiX = math.Max(hiX, s.X[i])
			loY = math.Min(loY, s.Y[i])
			hiY = math.Max(hiY, s.Y[i])
		}
	}
	if first {
		return fmt.Errorf("eval: nothing to plot in %q", t.Title)
	}
	if hiX-loX == 0 {
		hiX = loX + 1
	}
	if hiY-loY == 0 {
		hiY = loY + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range t.Series {
		m := markers[si%len(markers)]
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			cx := int((s.X[i] - loX) / (hiX - loX) * float64(width-1))
			cy := height - 1 - int((s.Y[i]-loY)/(hiY-loY)*float64(height-1))
			grid[cy][cx] = m
		}
	}
	if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
		return err
	}
	yLo, yHi := formatFloat(loY), formatFloat(hiY)
	margin := len(yLo)
	if len(yHi) > margin {
		margin = len(yHi)
	}
	for r, row := range grid {
		label := strings.Repeat(" ", margin)
		if r == 0 {
			label = fmt.Sprintf("%*s", margin, yHi)
		}
		if r == height-1 {
			label = fmt.Sprintf("%*s", margin, yLo)
		}
		if _, err := fmt.Fprintf(w, "%s |%s\n", label, string(row)); err != nil {
			return err
		}
	}
	axis := strings.Repeat("-", width)
	if _, err := fmt.Fprintf(w, "%s +%s\n", strings.Repeat(" ", margin), axis); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s  %s%*s\n", strings.Repeat(" ", margin),
		formatFloat(loX), width-len(formatFloat(loX)), formatFloat(hiX)); err != nil {
		return err
	}
	var legend []string
	for si, s := range t.Series {
		legend = append(legend, fmt.Sprintf("%c %s", markers[si%len(markers)], s.Name))
	}
	if _, err := fmt.Fprintf(w, "%s (x: %s)\n", strings.Join(legend, "   "), t.XLabel); err != nil {
		return err
	}
	return nil
}

func formatFloat(x float64) string {
	a := math.Abs(x)
	switch {
	case math.Mod(x, 1) == 0 && a < 1e7:
		return strconv.FormatFloat(x, 'f', 0, 64)
	case a >= 0.01 && a < 1e6:
		return strconv.FormatFloat(x, 'f', 4, 64)
	default:
		return strconv.FormatFloat(x, 'e', 3, 64)
	}
}
