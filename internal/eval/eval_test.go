package eval

import (
	"errors"
	"math"
	"testing"
	"time"

	"udm/internal/dataset"
	"udm/internal/rng"
)

// fixed always predicts the same label.
type fixed int

func (f fixed) Classify(x []float64) (int, error) { return int(f), nil }

// byThreshold predicts class 1 when x[0] > 0.
type byThreshold struct{}

func (byThreshold) Classify(x []float64) (int, error) {
	if x[0] > 0 {
		return 1, nil
	}
	return 0, nil
}

// failing returns an error.
type failing struct{}

func (failing) Classify(x []float64) (int, error) { return 0, errors.New("boom") }

// outOfRange predicts a label outside the test set's class range.
type outOfRange struct{}

func (outOfRange) Classify(x []float64) (int, error) { return 99, nil }

func testSet(t *testing.T) *dataset.Dataset {
	t.Helper()
	d := dataset.New("x")
	for i := 0; i < 10; i++ {
		v := float64(i) - 4.5 // 5 negative, 5 positive
		label := 0
		if v > 0 {
			label = 1
		}
		if err := d.Append([]float64{v}, nil, label); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func TestEvaluatePerfectClassifier(t *testing.T) {
	r, err := Evaluate(byThreshold{}, testSet(t))
	if err != nil {
		t.Fatal(err)
	}
	if r.Accuracy() != 1 || r.Correct != 10 || r.N != 10 {
		t.Fatalf("accuracy %v correct %d", r.Accuracy(), r.Correct)
	}
	if r.Confusion[0][0] != 5 || r.Confusion[1][1] != 5 {
		t.Fatalf("confusion %v", r.Confusion)
	}
	if r.Precision(0) != 1 || r.Recall(1) != 1 || r.F1(0) != 1 || r.MacroF1() != 1 {
		t.Fatal("perfect metrics should all be 1")
	}
}

func TestEvaluateConstantClassifier(t *testing.T) {
	r, err := Evaluate(fixed(0), testSet(t))
	if err != nil {
		t.Fatal(err)
	}
	if r.Accuracy() != 0.5 {
		t.Fatalf("accuracy %v", r.Accuracy())
	}
	// Class 1 never predicted: precision 0, recall 0.
	if r.Precision(1) != 0 || r.Recall(1) != 0 || r.F1(1) != 0 {
		t.Fatal("never-predicted class should have zero metrics")
	}
	// Class 0: precision 0.5 (predicted 10, correct 5), recall 1.
	if r.Precision(0) != 0.5 || r.Recall(0) != 1 {
		t.Fatalf("P=%v R=%v", r.Precision(0), r.Recall(0))
	}
	if math.Abs(r.MacroF1()-(2.0/3.0)/2) > 1e-12 {
		t.Fatalf("MacroF1 = %v", r.MacroF1())
	}
}

func TestEvaluateErrors(t *testing.T) {
	if _, err := Evaluate(fixed(0), dataset.New("x")); err == nil {
		t.Error("empty test set accepted")
	}
	un := dataset.New("x")
	_ = un.Append([]float64{1}, nil, dataset.Unlabeled)
	if _, err := Evaluate(fixed(0), un); err == nil {
		t.Error("unlabeled test set accepted")
	}
	if _, err := Evaluate(failing{}, testSet(t)); err == nil {
		t.Error("classifier error swallowed")
	}
	if _, err := Evaluate(outOfRange{}, testSet(t)); err == nil {
		t.Error("out-of-range prediction accepted")
	}
}

func TestEvaluateTracksTime(t *testing.T) {
	r, err := Evaluate(fixed(0), testSet(t))
	if err != nil {
		t.Fatal(err)
	}
	if r.TestTime < 0 || r.PerExample() < 0 {
		t.Fatal("negative timing")
	}
}

func TestCrossValidate(t *testing.T) {
	d := testSet(t)
	folds, err := d.KFold(5, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	cv, err := CrossValidate(folds, func(train *dataset.Dataset) (Classifier, error) {
		return byThreshold{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cv.FoldAccuracy) != 5 || cv.Mean() != 1 || cv.Std() != 0 {
		t.Fatalf("cv = %+v", cv)
	}
	// Trainer errors propagate.
	_, err = CrossValidate(folds, func(train *dataset.Dataset) (Classifier, error) {
		return nil, errors.New("no")
	})
	if err == nil {
		t.Error("trainer error swallowed")
	}
	if _, err := CrossValidate(nil, nil); err == nil {
		t.Error("no folds accepted")
	}
}

func TestTimePerExample(t *testing.T) {
	d := TimePerExample(10, func() { time.Sleep(20 * time.Millisecond) })
	if d < time.Millisecond || d > 20*time.Millisecond {
		t.Fatalf("per-example = %v, want ≈2ms", d)
	}
	defer func() {
		if recover() == nil {
			t.Error("n=0 did not panic")
		}
	}()
	TimePerExample(0, func() {})
}
