package eval

import (
	"math"
	"testing"

	"udm/internal/rng"
)

func TestAUCPerfectSeparation(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	positive := []bool{true, true, false, false}
	auc, err := AUC(scores, positive)
	if err != nil {
		t.Fatal(err)
	}
	if auc != 1 {
		t.Fatalf("AUC = %v, want 1", auc)
	}
	// Inverted scores give AUC 0.
	inv := []float64{0.1, 0.2, 0.8, 0.9}
	auc, err = AUC(inv, positive)
	if err != nil {
		t.Fatal(err)
	}
	if auc != 0 {
		t.Fatalf("inverted AUC = %v, want 0", auc)
	}
}

func TestAUCRandomScoresNearHalf(t *testing.T) {
	r := rng.New(1)
	n := 4000
	scores := make([]float64, n)
	positive := make([]bool, n)
	for i := range scores {
		scores[i] = r.Float64()
		positive[i] = r.Bool(0.3)
	}
	auc, err := AUC(scores, positive)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(auc-0.5) > 0.03 {
		t.Fatalf("random AUC = %v, want ≈0.5", auc)
	}
}

func TestAUCTiesGetHalfCredit(t *testing.T) {
	// All scores equal: AUC must be exactly 0.5.
	scores := []float64{1, 1, 1, 1}
	positive := []bool{true, false, true, false}
	auc, err := AUC(scores, positive)
	if err != nil {
		t.Fatal(err)
	}
	if auc != 0.5 {
		t.Fatalf("all-ties AUC = %v, want 0.5", auc)
	}
}

func TestAUCKnownValue(t *testing.T) {
	// pos scores {3, 1}, neg scores {2, 0}: pairs (3>2, 3>0, 1<2, 1>0)
	// → 3/4.
	scores := []float64{3, 1, 2, 0}
	positive := []bool{true, true, false, false}
	auc, err := AUC(scores, positive)
	if err != nil {
		t.Fatal(err)
	}
	if auc != 0.75 {
		t.Fatalf("AUC = %v, want 0.75", auc)
	}
}

func TestAUCValidation(t *testing.T) {
	if _, err := AUC([]float64{1}, []bool{true, false}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := AUC([]float64{1, 2}, []bool{true, true}); err == nil {
		t.Error("single-class labels accepted")
	}
}

func TestROCCurveShape(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.7, 0.2}
	positive := []bool{true, false, true, false}
	curve, err := ROC(scores, positive)
	if err != nil {
		t.Fatal(err)
	}
	// Starts at (0,0), ends at (1,1), monotone in both axes.
	first, last := curve[0], curve[len(curve)-1]
	if first.FPR != 0 || first.TPR != 0 {
		t.Fatalf("curve starts at (%v,%v)", first.FPR, first.TPR)
	}
	if last.FPR != 1 || last.TPR != 1 {
		t.Fatalf("curve ends at (%v,%v)", last.FPR, last.TPR)
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].FPR < curve[i-1].FPR || curve[i].TPR < curve[i-1].TPR {
			t.Fatal("curve not monotone")
		}
		if curve[i].Threshold > curve[i-1].Threshold {
			t.Fatal("thresholds not descending")
		}
	}
	// Known intermediate point: at threshold 0.9, TPR = 0.5, FPR = 0.
	if curve[1].TPR != 0.5 || curve[1].FPR != 0 {
		t.Fatalf("first cut = (%v,%v)", curve[1].FPR, curve[1].TPR)
	}
}

func TestROCTiesGrouped(t *testing.T) {
	// Tied scores must move the curve diagonally in one step, never
	// produce two points at the same threshold.
	scores := []float64{1, 1, 0}
	positive := []bool{true, false, false}
	curve, err := ROC(scores, positive)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[float64]bool{}
	for _, p := range curve[1:] {
		if seen[p.Threshold] {
			t.Fatalf("duplicate threshold %v", p.Threshold)
		}
		seen[p.Threshold] = true
	}
	// The tie point carries both one TP and one FP.
	if curve[1].TPR != 1 || curve[1].FPR != 0.5 {
		t.Fatalf("tie point = (%v,%v)", curve[1].FPR, curve[1].TPR)
	}
}

func TestROCValidation(t *testing.T) {
	if _, err := ROC([]float64{1}, []bool{true}); err == nil {
		t.Error("single-class accepted")
	}
	if _, err := ROC([]float64{1, 2}, []bool{true}); err == nil {
		t.Error("mismatched lengths accepted")
	}
}

func TestAUCMatchesROCTrapezoid(t *testing.T) {
	// The rank-based AUC equals the trapezoid area under the ROC curve.
	r := rng.New(2)
	n := 500
	scores := make([]float64, n)
	positive := make([]bool, n)
	for i := range scores {
		positive[i] = r.Bool(0.4)
		if positive[i] {
			scores[i] = r.Norm(1, 1)
		} else {
			scores[i] = r.Norm(0, 1)
		}
	}
	auc, err := AUC(scores, positive)
	if err != nil {
		t.Fatal(err)
	}
	curve, err := ROC(scores, positive)
	if err != nil {
		t.Fatal(err)
	}
	var area float64
	for i := 1; i < len(curve); i++ {
		area += (curve[i].FPR - curve[i-1].FPR) * (curve[i].TPR + curve[i-1].TPR) / 2
	}
	if math.Abs(auc-area) > 1e-9 {
		t.Fatalf("rank AUC %v vs trapezoid %v", auc, area)
	}
}
