package eval

import (
	"bytes"
	"strings"
	"testing"
)

func sampleTable(t *testing.T) *Table {
	t.Helper()
	tab, err := NewTable("Figure X", "f",
		Series{Name: "ErrAdj", X: []float64{0, 1, 2}, Y: []float64{0.8, 0.75, 0.7}},
		Series{Name: "NN", X: []float64{0, 1, 2}, Y: []float64{0.82, 0.6, 0.4}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestNewTableValidation(t *testing.T) {
	if _, err := NewTable("t", "x"); err == nil {
		t.Error("no series accepted")
	}
	if _, err := NewTable("t", "x",
		Series{Name: "a", X: []float64{1}, Y: []float64{1, 2}}); err == nil {
		t.Error("ragged series accepted")
	}
	if _, err := NewTable("t", "x",
		Series{Name: "a", X: []float64{1, 2}, Y: []float64{1, 2}},
		Series{Name: "b", X: []float64{1}, Y: []float64{1}}); err == nil {
		t.Error("mismatched series lengths accepted")
	}
	if _, err := NewTable("t", "x",
		Series{Name: "a", X: []float64{1, 2}, Y: []float64{1, 2}},
		Series{Name: "b", X: []float64{1, 3}, Y: []float64{1, 2}}); err == nil {
		t.Error("mismatched X values accepted")
	}
}

func TestWriteText(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTable(t).WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure X", "f", "ErrAdj", "NN", "0.8000", "0.4000"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
	// One header + separator + 3 data rows.
	if lines := strings.Count(strings.TrimSpace(out), "\n"); lines != 5 {
		t.Errorf("unexpected line count %d:\n%s", lines, out)
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTable(t).WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("CSV lines %d: %v", len(lines), lines)
	}
	if lines[0] != "f,ErrAdj,NN" {
		t.Fatalf("header %q", lines[0])
	}
	if lines[1] != "0,0.8,0.82" {
		t.Fatalf("row %q", lines[1])
	}
}

func TestWriteMarkdown(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTable(t).WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"### Figure X", "| f | ErrAdj | NN |", "|---|---|---|", "| 0 | 0.8000 | 0.8200 |"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestPlotASCII(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTable(t).PlotASCII(&buf, 40, 10); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Both markers appear, legend present.
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Errorf("markers missing:\n%s", out)
	}
	if !strings.Contains(out, "* ErrAdj") || !strings.Contains(out, "o NN") {
		t.Errorf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "Figure X") {
		t.Error("title missing")
	}
}

func TestPlotASCIIDegenerateRanges(t *testing.T) {
	tab, err := NewTable("flat", "x",
		Series{Name: "s", X: []float64{1, 1}, Y: []float64{2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tab.PlotASCII(&buf, 0, 0); err != nil {
		t.Fatal(err) // defaults applied, flat ranges widened, no panic
	}
}
