package eval

import (
	"errors"
	"math"
	"testing"

	"udm/internal/dataset"
)

// perfectProb returns probability 1 for the x[0]>0 rule's class.
type perfectProb struct{}

func (perfectProb) Probabilities(x []float64) ([]float64, error) {
	if x[0] > 0 {
		return []float64{0, 1}, nil
	}
	return []float64{1, 0}, nil
}

// halfProb always answers 50/50.
type halfProb struct{}

func (halfProb) Probabilities(x []float64) ([]float64, error) {
	return []float64{0.5, 0.5}, nil
}

// overconfident answers 0.9 for the wrong class half the time.
type overconfident struct{ n int }

func (o *overconfident) Probabilities(x []float64) ([]float64, error) {
	o.n++
	if o.n%2 == 0 {
		return []float64{0.9, 0.1}, nil // class 0, regardless of truth
	}
	return []float64{0.1, 0.9}, nil
}

// failingProb errors out.
type failingProb struct{}

func (failingProb) Probabilities(x []float64) ([]float64, error) {
	return nil, errors.New("boom")
}

func TestCalibratePerfect(t *testing.T) {
	d := testSet(t)
	res, err := Calibrate(perfectProb{}, d, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Brier != 0 {
		t.Fatalf("Brier = %v, want 0", res.Brier)
	}
	if res.ECE > 1e-12 {
		t.Fatalf("ECE = %v, want 0", res.ECE)
	}
	// All mass in the top bin.
	top := res.Bins[len(res.Bins)-1]
	if top.Count != d.Len() || top.Accuracy != 1 {
		t.Fatalf("top bin %+v", top)
	}
}

func TestCalibrateUninformative(t *testing.T) {
	d := testSet(t) // balanced two-class
	res, err := Calibrate(halfProb{}, d, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Brier for (0.5, 0.5) vs one-hot: 0.25 + 0.25 = 0.5.
	if math.Abs(res.Brier-0.5) > 1e-12 {
		t.Fatalf("Brier = %v, want 0.5", res.Brier)
	}
	// Confidence 0.5 with 50% accuracy ⇒ well calibrated: ECE ≈ 0.
	if res.ECE > 1e-9 {
		t.Fatalf("ECE = %v, want 0 (uninformative but calibrated)", res.ECE)
	}
}

func TestCalibrateOverconfident(t *testing.T) {
	d := testSet(t)
	res, err := Calibrate(&overconfident{}, d, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.ECE < 0.2 {
		t.Fatalf("ECE = %v, want large for an overconfident model", res.ECE)
	}
	if res.Brier < 0.4 {
		t.Fatalf("Brier = %v, want large", res.Brier)
	}
}

func TestCalibrateValidation(t *testing.T) {
	if _, err := Calibrate(halfProb{}, dataset.New("x"), 10); err == nil {
		t.Error("empty test accepted")
	}
	d := testSet(t)
	if _, err := Calibrate(failingProb{}, d, 10); err == nil {
		t.Error("classifier error swallowed")
	}
	un := dataset.New("x")
	_ = un.Append([]float64{1}, nil, dataset.Unlabeled)
	if _, err := Calibrate(halfProb{}, un, 10); err == nil {
		t.Error("unlabeled test accepted")
	}
}

func TestCalibrateDefaultBins(t *testing.T) {
	d := testSet(t)
	res, err := Calibrate(perfectProb{}, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bins) != 10 {
		t.Fatalf("%d bins, want default 10", len(res.Bins))
	}
	// Bin boundaries tile [0, 1].
	if res.Bins[0].Lo != 0 || res.Bins[9].Hi != 1 {
		t.Fatalf("bin range [%v, %v]", res.Bins[0].Lo, res.Bins[9].Hi)
	}
}
