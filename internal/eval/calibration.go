package eval

import (
	"fmt"

	"udm/internal/dataset"
)

// ProbClassifier is a classifier that reports class probabilities; the
// core density classifier satisfies it.
type ProbClassifier interface {
	Probabilities(x []float64) ([]float64, error)
}

// CalibrationBin is one reliability-diagram bucket.
type CalibrationBin struct {
	// Lo and Hi bound the predicted-confidence interval [Lo, Hi).
	Lo, Hi float64
	// Count is the number of predictions whose top-class confidence fell
	// in the bin.
	Count int
	// MeanConfidence is the average top-class confidence in the bin.
	MeanConfidence float64
	// Accuracy is the fraction of those predictions that were correct.
	Accuracy float64
}

// CalibrationResult summarizes probability quality on a labeled test
// set.
type CalibrationResult struct {
	// Bins is the reliability diagram (equal-width confidence bins).
	Bins []CalibrationBin
	// ECE is the expected calibration error: the count-weighted mean
	// |confidence − accuracy| over bins.
	ECE float64
	// Brier is the multi-class Brier score: mean squared distance of the
	// probability vector from the one-hot truth (lower is better; 0 is
	// perfect, 2 is maximally wrong).
	Brier float64
	// N is the number of evaluated rows.
	N int
}

// Calibrate scores a probabilistic classifier's confidence quality on a
// labeled test set using the given number of equal-width bins (default
// 10 when ≤ 0).
func Calibrate(c ProbClassifier, test *dataset.Dataset, bins int) (*CalibrationResult, error) {
	if test.Len() == 0 {
		return nil, fmt.Errorf("eval: empty test set")
	}
	k := test.NumClasses()
	if k == 0 {
		return nil, fmt.Errorf("eval: unlabeled test set")
	}
	if bins <= 0 {
		bins = 10
	}
	type acc struct {
		n       int
		conf    float64
		correct int
	}
	buckets := make([]acc, bins)
	res := &CalibrationResult{N: test.Len()}
	for i := 0; i < test.Len(); i++ {
		actual := test.Label(i)
		if actual == dataset.Unlabeled {
			return nil, fmt.Errorf("eval: test row %d is unlabeled", i)
		}
		p, err := c.Probabilities(test.X[i])
		if err != nil {
			return nil, fmt.Errorf("eval: row %d: %w", i, err)
		}
		if len(p) < k {
			return nil, fmt.Errorf("eval: row %d returned %d probabilities for %d classes", i, len(p), k)
		}
		// Brier: Σ (p_c − 1{c==actual})².
		for c2, v := range p {
			target := 0.0
			if c2 == actual {
				target = 1.0
			}
			d := v - target
			res.Brier += d * d
		}
		// Reliability: bin by top-class confidence.
		best := 0
		for c2 := 1; c2 < len(p); c2++ {
			if p[c2] > p[best] {
				best = c2
			}
		}
		b := int(p[best] * float64(bins))
		if b >= bins {
			b = bins - 1
		}
		buckets[b].n++
		buckets[b].conf += p[best]
		if best == actual {
			buckets[b].correct++
		}
	}
	res.Brier /= float64(test.Len())
	for b, a := range buckets {
		bin := CalibrationBin{
			Lo: float64(b) / float64(bins),
			Hi: float64(b+1) / float64(bins),
		}
		if a.n > 0 {
			bin.Count = a.n
			bin.MeanConfidence = a.conf / float64(a.n)
			bin.Accuracy = float64(a.correct) / float64(a.n)
			gap := bin.MeanConfidence - bin.Accuracy
			if gap < 0 {
				gap = -gap
			}
			res.ECE += float64(a.n) / float64(test.Len()) * gap
		}
		res.Bins = append(res.Bins, bin)
	}
	return res, nil
}
