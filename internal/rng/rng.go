// Package rng provides deterministic, splittable random-number streams on
// top of math/rand. Every stochastic component of the library takes an
// explicit *rng.Source so experiments are reproducible bit-for-bit and
// independent subsystems (data generation, perturbation, micro-cluster
// seeding) can be re-seeded without disturbing each other.
package rng

import (
	"hash/fnv"
	"math/rand"
)

// Source is a seeded random stream. It is a thin wrapper around
// *rand.Rand that adds named sub-stream derivation.
//
// A Source is not safe for concurrent use; derive one per goroutine
// with Split.
type Source struct {
	r    *rand.Rand
	seed int64
}

// New returns a Source seeded with seed.
func New(seed int64) *Source {
	return &Source{r: rand.New(rand.NewSource(seed)), seed: seed}
}

// Seed returns the seed this Source was created with.
func (s *Source) Seed() int64 { return s.seed }

// Split derives an independent child stream named by label. The child's
// seed is a hash of the parent seed and the label, so the same
// (seed, label) pair always produces the same stream regardless of how
// much of the parent stream has been consumed.
func (s *Source) Split(label string) *Source {
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(uint64(s.seed) >> (8 * i))
	}
	h.Write(buf[:])
	h.Write([]byte(label))
	return New(int64(h.Sum64()))
}

// Float64 returns a uniform draw from [0, 1).
func (s *Source) Float64() float64 { return s.r.Float64() }

// Uniform returns a uniform draw from [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.r.Float64()
}

// Norm returns a draw from N(mu, sigma^2).
func (s *Source) Norm(mu, sigma float64) float64 {
	return mu + sigma*s.r.NormFloat64()
}

// StdNorm returns a draw from the standard normal distribution.
func (s *Source) StdNorm() float64 { return s.r.NormFloat64() }

// Intn returns a uniform draw from {0, ..., n-1}. It panics if n <= 0.
func (s *Source) Intn(n int) int { return s.r.Intn(n) }

// Exp returns a draw from the exponential distribution with rate lambda.
func (s *Source) Exp(lambda float64) float64 {
	return s.r.ExpFloat64() / lambda
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool { return s.r.Float64() < p }

// Perm returns a random permutation of {0, ..., n-1}.
func (s *Source) Perm(n int) []int { return s.r.Perm(n) }

// Shuffle permutes idx in place.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.r.Shuffle(n, swap) }

// SampleWithoutReplacement returns k distinct indices drawn uniformly from
// {0, ..., n-1}, in random order. It panics if k > n or k < 0.
func (s *Source) SampleWithoutReplacement(n, k int) []int {
	if k < 0 || k > n {
		panic("rng: sample size out of range")
	}
	// Partial Fisher–Yates: O(n) memory, O(k) swaps.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + s.r.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	return idx[:k]
}

// Categorical returns an index drawn with probability proportional to
// weights[i]. Weights must be non-negative with a positive sum.
func (s *Source) Categorical(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("rng: negative categorical weight")
		}
		total += w
	}
	if total <= 0 {
		panic("rng: categorical weights sum to zero")
	}
	u := s.r.Float64() * total
	var acc float64
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1 // float round-off fallthrough
}
