package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestSplitIndependentOfConsumption(t *testing.T) {
	a := New(42)
	a.Float64() // consume some of the parent
	a.Float64()
	childA := a.Split("noise")

	b := New(42)
	childB := b.Split("noise")

	for i := 0; i < 50; i++ {
		if childA.Float64() != childB.Float64() {
			t.Fatal("Split depends on parent stream consumption")
		}
	}
}

func TestSplitLabelsDiffer(t *testing.T) {
	s := New(1)
	c1, c2 := s.Split("a"), s.Split("b")
	same := true
	for i := 0; i < 20; i++ {
		if c1.Float64() != c2.Float64() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different labels produced the same stream")
	}
}

func TestUniformRange(t *testing.T) {
	s := New(3)
	for i := 0; i < 1000; i++ {
		x := s.Uniform(2, 5)
		if x < 2 || x >= 5 {
			t.Fatalf("Uniform(2,5) = %v out of range", x)
		}
	}
}

func TestNormMoments(t *testing.T) {
	s := New(4)
	const n = 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		x := s.Norm(10, 2)
		sum += x
		sum2 += x * x
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("mean = %v, want ≈10", mean)
	}
	if math.Abs(variance-4) > 0.1 {
		t.Errorf("variance = %v, want ≈4", variance)
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	s := New(5)
	got := s.SampleWithoutReplacement(10, 6)
	if len(got) != 6 {
		t.Fatalf("len = %d", len(got))
	}
	seen := map[int]bool{}
	for _, i := range got {
		if i < 0 || i >= 10 {
			t.Fatalf("index %d out of range", i)
		}
		if seen[i] {
			t.Fatalf("duplicate index %d", i)
		}
		seen[i] = true
	}
	// Full sample is a permutation.
	full := s.SampleWithoutReplacement(5, 5)
	seen = map[int]bool{}
	for _, i := range full {
		seen[i] = true
	}
	if len(seen) != 5 {
		t.Fatalf("full sample is not a permutation: %v", full)
	}
}

func TestSampleWithoutReplacementPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k > n")
		}
	}()
	New(1).SampleWithoutReplacement(3, 4)
}

func TestCategorical(t *testing.T) {
	s := New(6)
	counts := [3]int{}
	const n = 30000
	for i := 0; i < n; i++ {
		counts[s.Categorical([]float64{1, 2, 1})]++
	}
	// Expect roughly 25% / 50% / 25%.
	if math.Abs(float64(counts[1])/n-0.5) > 0.02 {
		t.Errorf("middle weight frequency = %v, want ≈0.5", float64(counts[1])/n)
	}
	// Zero-weight outcomes never drawn.
	for i := 0; i < 1000; i++ {
		if s.Categorical([]float64{0, 1, 0}) != 1 {
			t.Fatal("zero-weight outcome drawn")
		}
	}
}

func TestCategoricalPanics(t *testing.T) {
	cases := [][]float64{{}, {0, 0}, {-1, 2}}
	for _, w := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Categorical(%v) did not panic", w)
				}
			}()
			New(1).Categorical(w)
		}()
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(7)
	hits := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	if p := float64(hits) / n; math.Abs(p-0.3) > 0.02 {
		t.Errorf("Bool(0.3) frequency = %v", p)
	}
}

func TestExpMean(t *testing.T) {
	s := New(8)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.Exp(2)
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Errorf("Exp(2) mean = %v, want ≈0.5", mean)
	}
}
