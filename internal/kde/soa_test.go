package kde

import (
	"fmt"
	"math"
	"testing"

	"udm/internal/kernel"
	"udm/internal/microcluster"
	"udm/internal/rng"
)

// bitEqual reports exact bit equality, treating NaN == NaN.
func bitEqual(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// pointOptionMatrix enumerates every kernel form the SoA engine encodes
// for PointKDE, with and without recorded errors.
func pointOptionMatrix() []struct {
	name string
	err  float64 // per-entry error fed to gauss2 (0 = none)
	opt  Options
} {
	return []struct {
		name string
		err  float64
		opt  Options
	}{
		{"plain", 0, Options{}},
		{"plain-ignored-errs", 0.5, Options{}}, // errors present but ErrorAdjust off
		{"normalized", 0.5, Options{ErrorAdjust: true}},
		{"paper", 0.5, Options{ErrorAdjust: true, PaperKernel: true}},
		{"erradjust-no-errs", 0, Options{ErrorAdjust: true}},
	}
}

// TestDensityBatchBitIdenticalToScalar is the SoA regression contract:
// in exact mode with pruning off, the batch engine must reproduce the
// scalar DensitySub — the unchanged pre-refactor reference path — bit
// for bit, for every option mode, dimension subset and worker count.
func TestDensityBatchBitIdenticalToScalar(t *testing.T) {
	for _, tc := range pointOptionMatrix() {
		d := gauss2(300, tc.err, 21)
		est, err := NewPoint(d, tc.opt)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if est.eng == nil {
			t.Fatalf("%s: Gaussian estimator did not build the SoA engine", tc.name)
		}
		for _, dims := range [][]int{nil, {0}, {1}, {0, 1}, {1, 0}} {
			for _, workers := range []int{1, 4} {
				got, err := est.DensityBatch(d.X, dims, workers)
				if err != nil {
					t.Fatalf("%s: %v", tc.name, err)
				}
				ref := dims
				if ref == nil {
					ref = []int{0, 1}
				}
				for i, x := range d.X {
					want := est.DensitySub(x, ref)
					if !bitEqual(got[i], want) {
						t.Fatalf("%s dims=%v workers=%d row %d: batch %x scalar %x",
							tc.name, dims, workers, i, math.Float64bits(got[i]), math.Float64bits(want))
					}
				}
			}
		}
	}
}

// TestDensityQBatchBitIdenticalToScalar pins the uncertain-query fast
// path to the scalar DensityQ, including nil query-error rows.
func TestDensityQBatchBitIdenticalToScalar(t *testing.T) {
	for _, withErrs := range []float64{0, 0.5} {
		d := gauss2(200, withErrs, 22)
		est, err := NewPoint(d, Options{ErrorAdjust: true})
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(23)
		qerr := make([][]float64, len(d.X))
		for i := range qerr {
			if i%3 == 0 {
				continue // nil row: certain query
			}
			qerr[i] = []float64{r.Float64() * 0.8, r.Float64() * 0.8}
		}
		got, err := est.DensityQBatch(d.X, qerr, nil, 4)
		if err != nil {
			t.Fatal(err)
		}
		for i, x := range d.X {
			want := est.DensityQ(x, qerr[i], []int{0, 1})
			if !bitEqual(got[i], want) {
				t.Fatalf("errs=%v row %d: batch %x scalar %x", withErrs, i,
					math.Float64bits(got[i]), math.Float64bits(want))
			}
		}
	}
}

// TestClusterBatchBitIdenticalToScalar covers both ClusterKDE kernel
// forms, plus the weighted DensityQ path.
func TestClusterBatchBitIdenticalToScalar(t *testing.T) {
	d := gauss2(600, 0.5, 24)
	for _, tc := range []struct {
		name string
		opt  Options
	}{
		{"normalized", Options{ErrorAdjust: true}},
		{"paper", Options{ErrorAdjust: true, PaperKernel: true}},
		{"no-adjust", Options{}},
	} {
		s := microcluster.Build(d, 40, rng.New(25))
		est, err := NewCluster(s, tc.opt)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if est.eng == nil {
			t.Fatalf("%s: cluster estimator did not build the SoA engine", tc.name)
		}
		got, err := est.DensityBatch(d.X, nil, 4)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		qe := []float64{0.3, 0.1}
		gotQ, err := est.DensityQBatch(d.X, repeatRows(qe, len(d.X)), nil, 4)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		for i, x := range d.X {
			if want := est.DensitySub(x, []int{0, 1}); !bitEqual(got[i], want) {
				t.Fatalf("%s row %d: batch %x scalar %x", tc.name, i,
					math.Float64bits(got[i]), math.Float64bits(want))
			}
			if want := est.DensityQ(x, qe, []int{0, 1}); !bitEqual(gotQ[i], want) {
				t.Fatalf("%s row %d (Q): batch %x scalar %x", tc.name, i,
					math.Float64bits(gotQ[i]), math.Float64bits(want))
			}
		}
	}
}

func repeatRows(row []float64, n int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = row
	}
	return out
}

// TestNonGaussianFallback: estimators over other kernels must keep
// working through the scalar fallback (and must not build an engine).
func TestNonGaussianFallback(t *testing.T) {
	d := gauss2(100, 0, 26)
	est, err := NewPoint(d, Options{Kernel: kernel.Epanechnikov})
	if err != nil {
		t.Fatal(err)
	}
	if est.eng != nil {
		t.Fatal("non-Gaussian estimator built a Gaussian SoA engine")
	}
	got, err := est.DensityBatch(d.X[:10], nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range d.X[:10] {
		if want := est.DensitySub(x, []int{0, 1}); !bitEqual(got[i], want) {
			t.Fatalf("row %d: batch %v scalar %v", i, got[i], want)
		}
	}
}

// prunedMatrix builds the clustered dataset and tolerance grid shared
// by the pruning tests.
func prunedCases() []float64 { return []float64{1e-3, 1e-6, 1e-9} }

// TestPrunedWithinTolerance: with Prune=tol every batch density must be
// within relative tol of the exact estimate, under-approaching only
// (truncation discards nonnegative mass), for both certain and
// uncertain queries, points and clusters.
func TestPrunedWithinTolerance(t *testing.T) {
	d := blobGrid(1200, 4, 0.2, 27)
	exact, err := NewPoint(d, Options{ErrorAdjust: true})
	if err != nil {
		t.Fatal(err)
	}
	want, err := exact.DensityBatch(d.X, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	qe := []float64{0.4, 0.2}
	wantQ, err := exact.DensityQBatch(d.X, repeatRows(qe, len(d.X)), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, tol := range prunedCases() {
		pruned, err := NewPoint(d, Options{ErrorAdjust: true, Prune: tol})
		if err != nil {
			t.Fatal(err)
		}
		got, err := pruned.DensityBatch(d.X, nil, 1)
		if err != nil {
			t.Fatal(err)
		}
		gotQ, err := pruned.DensityQBatch(d.X, repeatRows(qe, len(d.X)), nil, 1)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			checkPruneErr(t, fmt.Sprintf("tol=%g row %d", tol, i), got[i], want[i], tol)
			checkPruneErr(t, fmt.Sprintf("tol=%g row %d (Q)", tol, i), gotQ[i], wantQ[i], tol)
		}
	}
}

func checkPruneErr(t *testing.T, label string, got, want, tol float64) {
	t.Helper()
	if got > want*(1+1e-12) {
		t.Fatalf("%s: pruned density %v exceeds exact %v", label, got, want)
	}
	if want == 0 {
		if got != 0 {
			t.Fatalf("%s: pruned %v for exact 0", label, got)
		}
		return
	}
	if re := (want - got) / want; re > tol {
		t.Fatalf("%s: relative truncation error %.3g > tol %g (got %v want %v)", label, re, tol, got, want)
	}
}

// TestPrunedClusterWithinTolerance exercises the weighted (WSum) bound.
func TestPrunedClusterWithinTolerance(t *testing.T) {
	d := blobGrid(1200, 4, 0.2, 28)
	s := microcluster.Build(d, 64, rng.New(29))
	exact, err := NewCluster(s, Options{ErrorAdjust: true})
	if err != nil {
		t.Fatal(err)
	}
	want, err := exact.DensityBatch(d.X, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, tol := range prunedCases() {
		pruned, err := NewCluster(s, Options{ErrorAdjust: true, Prune: tol})
		if err != nil {
			t.Fatal(err)
		}
		got, err := pruned.DensityBatch(d.X, nil, 1)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			checkPruneErr(t, fmt.Sprintf("cluster tol=%g row %d", tol, i), got[i], want[i], tol)
		}
	}
}

// TestPruningActuallyPrunes confirms the traversal skips work on
// clustered data — the accuracy tests alone would pass even if the
// bound never fired.
func TestPruningActuallyPrunes(t *testing.T) {
	d := blobGrid(1000, 4, 0.2, 30)
	est, err := NewPoint(d, Options{ErrorAdjust: true, Prune: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	e := est.eng
	if e == nil || e.tree == nil {
		t.Fatal("Prune > 0 did not build the spatial index")
	}
	w := walker{e: e, q: d.X[0], dims: []int{0, 1}, exp: math.Exp}
	w.walk(e.tree.Root())
	if w.skipped == 0 {
		t.Fatal("pruned traversal evaluated every point on well-separated blobs")
	}
	if w.skipped < int64(len(d.X))/2 {
		t.Errorf("pruned only %d of %d points; expected the far field (most blobs) to be skipped", w.skipped, len(d.X))
	}
}

// TestPruneZeroTakesFlatPath: Prune=0 must not build the index and must
// stay on the bit-identical flat path.
func TestPruneZeroTakesFlatPath(t *testing.T) {
	d := gauss2(100, 0.5, 31)
	est, err := NewPoint(d, Options{ErrorAdjust: true})
	if err != nil {
		t.Fatal(err)
	}
	if est.eng.tree != nil || est.eng.sub != nil {
		t.Fatal("Prune=0 built a spatial index")
	}
}

// TestApproxDensityRelErr is the Approx(ε) property test over a seeded
// random corpus: for every dataset shape, option mode and ε, batch
// densities under Approx(ε) stay within relative ε of exact-mode
// results.
func TestApproxDensityRelErr(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		d := gauss2(150, 0.3+0.1*float64(seed%3), 40+seed)
		for _, eps := range []float64{1e-3, 1e-6} {
			for _, prune := range []float64{0, eps} {
				opt := Options{ErrorAdjust: true, Accuracy: kernel.Approx(eps), Prune: prune}
				approx, err := NewPoint(d, opt)
				if err != nil {
					t.Fatal(err)
				}
				exact, err := NewPoint(d, Options{ErrorAdjust: true})
				if err != nil {
					t.Fatal(err)
				}
				got, err := approx.DensityBatch(d.X, nil, 2)
				if err != nil {
					t.Fatal(err)
				}
				want, err := exact.DensityBatch(d.X, nil, 2)
				if err != nil {
					t.Fatal(err)
				}
				// Truncation (≤ prune) and surrogate error (≤ eps) can
				// stack; hold the combination to the sum of budgets.
				budget := eps + prune
				for i := range want {
					if want[i] == 0 {
						continue
					}
					if re := math.Abs(got[i]-want[i]) / want[i]; re > budget {
						t.Fatalf("seed=%d eps=%g prune=%g row %d: rel err %.3g > %.3g",
							seed, eps, prune, i, re, budget)
					}
				}
			}
		}
	}
}

// TestWithAccuracy covers the per-request accuracy override: sharing,
// validation, and exact-copy bit identity.
func TestWithAccuracy(t *testing.T) {
	d := gauss2(120, 0.5, 50)
	est, err := NewPoint(d, Options{ErrorAdjust: true})
	if err != nil {
		t.Fatal(err)
	}
	approx, err := est.WithAccuracy(kernel.Approx(1e-3))
	if err != nil {
		t.Fatal(err)
	}
	if approx.eng == est.eng {
		t.Fatal("WithAccuracy must not mutate the receiver's engine")
	}
	if approx.eng.pool != est.eng.pool {
		t.Fatal("WithAccuracy copies must share the scratch pool")
	}
	// Round-tripping back to exact must reproduce the original bits.
	back, err := approx.WithAccuracy(kernel.Exact())
	if err != nil {
		t.Fatal(err)
	}
	a, err := est.DensityBatch(d.X[:20], nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := back.DensityBatch(d.X[:20], nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if !bitEqual(a[i], b[i]) {
			t.Fatalf("row %d: exact round-trip changed bits", i)
		}
	}
	if _, err := est.WithAccuracy(kernel.Approx(math.NaN())); err == nil {
		t.Fatal("invalid accuracy accepted")
	}
	// Non-Gaussian estimators reject non-exact modes but accept exact.
	ep, err := NewPoint(d, Options{Kernel: kernel.Epanechnikov})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ep.WithAccuracy(kernel.Approx(1e-3)); err == nil {
		t.Fatal("approx accuracy accepted for non-Gaussian kernel")
	}
	if _, err := ep.WithAccuracy(kernel.Exact()); err != nil {
		t.Fatalf("exact accuracy rejected for non-Gaussian kernel: %v", err)
	}
	// Cluster variant.
	s := microcluster.Build(d, 20, rng.New(51))
	ce, err := NewCluster(s, Options{ErrorAdjust: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ce.WithAccuracy(kernel.Approx(1e-6)); err != nil {
		t.Fatal(err)
	}
}

// TestOptionsValidatePruneAccuracy pins the new Options validation.
func TestOptionsValidatePruneAccuracy(t *testing.T) {
	d := gauss2(50, 0, 60)
	bad := []Options{
		{Prune: -1},
		{Prune: math.NaN()},
		{Prune: math.Inf(1)},
		{Prune: 1e-6, Kernel: kernel.Epanechnikov},
		{Accuracy: kernel.Approx(-1)},
		{Accuracy: kernel.Approx(1e-6), Kernel: kernel.Laplace},
	}
	for i, opt := range bad {
		if _, err := NewPoint(d, opt); err == nil {
			t.Errorf("case %d: invalid options accepted: %+v", i, opt)
		}
	}
	if _, err := NewPoint(d, Options{Prune: 1e-6, Accuracy: kernel.Approx(1e-3)}); err != nil {
		t.Errorf("valid pruned+approx options rejected: %v", err)
	}
}
