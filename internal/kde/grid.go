package kde

import "fmt"

// Grid1D evaluates the joint density of a single dimension j on an evenly
// spaced grid of n+1 points spanning [lo, hi]. The returned xs are the
// grid coordinates and ys the densities. The query vector's other
// coordinates are irrelevant because the subspace {j} ignores them.
func Grid1D(e Estimator, j int, lo, hi float64, n int) (xs, ys []float64) {
	if n < 1 {
		panic(fmt.Sprintf("kde: grid with n=%d steps", n))
	}
	if hi <= lo {
		panic(fmt.Sprintf("kde: grid range [%v, %v]", lo, hi))
	}
	xs = make([]float64, n+1)
	ys = make([]float64, n+1)
	q := make([]float64, e.Dims())
	step := (hi - lo) / float64(n)
	dims := []int{j}
	for i := 0; i <= n; i++ {
		x := lo + float64(i)*step
		xs[i] = x
		q[j] = x
		ys[i] = e.DensitySub(q, dims)
	}
	return xs, ys
}

// Mass1D integrates the single-dimension density of dimension j over
// [lo, hi] with the trapezoid rule on n intervals. For a well-normalized
// estimator and a range covering the data plus kernel tails, the result
// approaches 1; it is the standard sanity diagnostic for an estimate.
func Mass1D(e Estimator, j int, lo, hi float64, n int) float64 {
	xs, ys := Grid1D(e, j, lo, hi, n)
	var s float64
	for i := 1; i < len(xs); i++ {
		s += 0.5 * (ys[i] + ys[i-1]) * (xs[i] - xs[i-1])
	}
	return s
}

// Grid2D evaluates the joint density of dimensions (jx, jy) on an
// (nx+1)×(ny+1) grid. The result is indexed [iy][ix].
func Grid2D(e Estimator, jx, jy int, loX, hiX, loY, hiY float64, nx, ny int) [][]float64 {
	if nx < 1 || ny < 1 {
		panic(fmt.Sprintf("kde: grid with nx=%d, ny=%d", nx, ny))
	}
	if hiX <= loX || hiY <= loY {
		panic("kde: empty grid range")
	}
	out := make([][]float64, ny+1)
	q := make([]float64, e.Dims())
	dims := []int{jx, jy}
	stepX := (hiX - loX) / float64(nx)
	stepY := (hiY - loY) / float64(ny)
	for iy := 0; iy <= ny; iy++ {
		out[iy] = make([]float64, nx+1)
		q[jy] = loY + float64(iy)*stepY
		for ix := 0; ix <= nx; ix++ {
			q[jx] = loX + float64(ix)*stepX
			out[iy][ix] = e.DensitySub(q, dims)
		}
	}
	return out
}
