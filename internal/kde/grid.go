package kde

import (
	"context"
	"fmt"
)

// Grid1D evaluates the joint density of a single dimension j on an evenly
// spaced grid of n+1 points spanning [lo, hi]. The returned xs are the
// grid coordinates and ys the densities. The query vector's other
// coordinates are irrelevant because the subspace {j} ignores them.
// It is Grid1DOpts under default options.
func Grid1D(e Estimator, j int, lo, hi float64, n int) (xs, ys []float64) {
	xs, ys, err := Grid1DOpts(e, j, lo, hi, n, BatchOptions{Workers: 1})
	if err != nil {
		panic(fmt.Sprintf("kde: grid evaluation: %v", err)) // unreachable: the background context never cancels and default options are valid
	}
	return xs, ys
}

// Grid1DContext is Grid1D with cancellation. It is Grid1DOpts with the
// context as the only non-default option.
func Grid1DContext(ctx context.Context, e Estimator, j int, lo, hi float64, n int) (xs, ys []float64, err error) {
	return Grid1DOpts(e, j, lo, hi, n, BatchOptions{Ctx: ctx, Workers: 1})
}

// Grid1DOpts evaluates the 1-D grid under explicit BatchOptions.
// Evaluation goes through DensityBatchOpts, so the whole unified
// configuration applies: a Gaussian estimator's SoA engine with its
// Prune / Accuracy settings (plus any opt.Eval.Accuracy override), a
// pluggable density backend's own batch evaluation, and opt's context
// and worker fan-out. In the default exact configuration the values
// are bit-identical to per-point DensitySub calls.
func Grid1DOpts(e Estimator, j int, lo, hi float64, n int, opt BatchOptions) (xs, ys []float64, err error) {
	if n < 1 {
		panic(fmt.Sprintf("kde: grid with n=%d steps", n))
	}
	if hi <= lo {
		panic(fmt.Sprintf("kde: grid range [%v, %v]", lo, hi))
	}
	xs = make([]float64, n+1)
	rows := make([][]float64, n+1)
	backing := make([]float64, (n+1)*e.Dims())
	step := (hi - lo) / float64(n)
	for i := 0; i <= n; i++ {
		x := lo + float64(i)*step
		xs[i] = x
		rows[i] = backing[i*e.Dims() : (i+1)*e.Dims()]
		rows[i][j] = x
	}
	ys, err = DensityBatchOpts(e, rows, []int{j}, opt)
	if err != nil {
		return nil, nil, err
	}
	return xs, ys, nil
}

// Mass1D integrates the single-dimension density of dimension j over
// [lo, hi] with the trapezoid rule on n intervals. For a well-normalized
// estimator and a range covering the data plus kernel tails, the result
// approaches 1; it is the standard sanity diagnostic for an estimate.
func Mass1D(e Estimator, j int, lo, hi float64, n int) float64 {
	xs, ys := Grid1D(e, j, lo, hi, n)
	var s float64
	for i := 1; i < len(xs); i++ {
		s += 0.5 * (ys[i] + ys[i-1]) * (xs[i] - xs[i-1])
	}
	return s
}

// Grid2D evaluates the joint density of dimensions (jx, jy) on an
// (nx+1)×(ny+1) grid. The result is indexed [iy][ix]. It is
// Grid2DOpts under default options.
func Grid2D(e Estimator, jx, jy int, loX, hiX, loY, hiY float64, nx, ny int) [][]float64 {
	out, err := Grid2DOpts(e, jx, jy, loX, hiX, loY, hiY, nx, ny, BatchOptions{Workers: 1})
	if err != nil {
		panic(fmt.Sprintf("kde: grid evaluation: %v", err)) // unreachable: the background context never cancels and default options are valid
	}
	return out
}

// Grid2DContext is Grid2D with cancellation. It is Grid2DOpts with the
// context as the only non-default option.
func Grid2DContext(ctx context.Context, e Estimator, jx, jy int, loX, hiX, loY, hiY float64, nx, ny int) ([][]float64, error) {
	return Grid2DOpts(e, jx, jy, loX, hiX, loY, hiY, nx, ny, BatchOptions{Ctx: ctx, Workers: 1})
}

// Grid2DOpts evaluates the 2-D grid under explicit BatchOptions. Like
// Grid1DOpts, the evaluation runs through DensityBatchOpts and so
// honors the estimator's full evaluation configuration — including a
// pluggable backend's own batch path — plus opt's context and workers.
func Grid2DOpts(e Estimator, jx, jy int, loX, hiX, loY, hiY float64, nx, ny int, opt BatchOptions) ([][]float64, error) {
	if nx < 1 || ny < 1 {
		panic(fmt.Sprintf("kde: grid with nx=%d, ny=%d", nx, ny))
	}
	if hiX <= loX || hiY <= loY {
		panic("kde: empty grid range")
	}
	rows := make([][]float64, (ny+1)*(nx+1))
	backing := make([]float64, len(rows)*e.Dims())
	stepX := (hiX - loX) / float64(nx)
	stepY := (hiY - loY) / float64(ny)
	for iy := 0; iy <= ny; iy++ {
		y := loY + float64(iy)*stepY
		for ix := 0; ix <= nx; ix++ {
			r := backing[(iy*(nx+1)+ix)*e.Dims() : (iy*(nx+1)+ix+1)*e.Dims()]
			r[jx] = loX + float64(ix)*stepX
			r[jy] = y
			rows[iy*(nx+1)+ix] = r
		}
	}
	ds, err := DensityBatchOpts(e, rows, []int{jx, jy}, opt)
	if err != nil {
		return nil, err
	}
	out := make([][]float64, ny+1)
	for iy := range out {
		out[iy] = ds[iy*(nx+1) : (iy+1)*(nx+1)]
	}
	return out, nil
}
