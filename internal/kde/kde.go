// Package kde implements the density estimators of Aggarwal (ICDE 2007):
// exact error-adjusted kernel density estimation over individual points
// (Eq. 1–4) and the scalable variant over error-based micro-cluster
// summaries (Eq. 9–10). Both estimators evaluate joint densities over
// arbitrary dimension subsets, which is what the density-based classifier
// needs during its subspace roll-up.
package kde

import (
	"fmt"
	"math"

	"udm/internal/dataset"
	"udm/internal/evalopt"
	"udm/internal/kernel"
	"udm/internal/microcluster"
	"udm/internal/udmerr"
)

// Estimator is a multivariate density estimate that can be evaluated
// over the full dimensionality or any subset of dimensions. Query points
// are always full-dimensional rows; DensitySub uses only the coordinates
// listed in dims.
type Estimator interface {
	// Density returns the estimated density at x over all dimensions.
	Density(x []float64) float64
	// DensitySub returns the estimated joint density at x over the
	// dimension subset dims.
	DensitySub(x []float64, dims []int) float64
	// Dims returns the dimensionality of the underlying data.
	Dims() int
	// Count returns the number of data points the estimate summarizes.
	Count() int
}

// Options configure a density estimator.
type Options struct {
	// Kernel is the base kernel shape; the error-adjusted form is only
	// defined for Gaussian (the paper's kernel), so ErrorAdjust requires
	// Kernel == kernel.Gaussian.
	Kernel kernel.Type
	// Bandwidth selects the per-dimension smoothing rule; the zero value
	// is the paper's Silverman rule.
	Bandwidth kernel.Bandwidth
	// ErrorAdjust widens each contribution by its per-entry error ψ
	// (Eq. 3). When false, stored errors are ignored, giving the paper's
	// "No Error Adjustment" comparator.
	ErrorAdjust bool
	// PaperKernel selects the kernel exactly as printed in Eq. 3, whose
	// mass dips below 1 for ψ > 0. The default (false) uses the properly
	// normalized Gaussian with variance h²+ψ². Only meaningful when
	// ErrorAdjust is true.
	PaperKernel bool
	// Bandwidths, when non-nil, supplies one explicit smoothing
	// parameter per dimension and overrides the Bandwidth rule — e.g.
	// the output of CVBandwidths. All entries must be positive.
	Bandwidths []float64
	// Prune, when positive, enables far-field truncation on the batch
	// density paths: subtrees of kernel centers whose total possible
	// contribution is below Prune times the density are skipped, so the
	// relative error of every batch result is at most Prune. Zero (the
	// default) disables pruning and keeps batches bit-identical to the
	// per-query methods. The per-query methods (Density, DensitySub,
	// DensityQ, leave-one-out) always stay exact regardless of Prune.
	// Requires the Gaussian kernel.
	Prune float64
	// Accuracy selects exact kernel evaluation (the zero value) or the
	// bounded-error fast-exponential surrogate (kernel.Approx(ε)) on
	// the batch density paths. Like Prune, it never affects the
	// per-query methods. Requires the Gaussian kernel when non-exact.
	Accuracy kernel.AccuracyMode
	// Eval is the unified evaluation configuration (one value parseable
	// from the shared CLI/wire grammar). At construction its Prune and
	// Accuracy fields, when set, take precedence over the legacy
	// stand-alone fields above. Backend and the approximate-backend
	// knobs (Epsilon, Delta, sizing) are consumed one layer up by
	// internal/density — this package always builds the exact engine.
	Eval evalopt.Options
}

// normalized folds Eval into the legacy stand-alone fields it
// supersedes, validating it first. Constructors call this before
// validate so both spellings configure the same engine.
func (o Options) normalized() (Options, error) {
	if err := o.Eval.Validate(); err != nil {
		return o, err
	}
	if o.Eval.Prune != 0 {
		o.Prune = o.Eval.Prune
	}
	if !o.Eval.Accuracy.IsExact() {
		o.Accuracy = o.Eval.Accuracy
	}
	return o, nil
}

func (o Options) validate() error {
	if o.ErrorAdjust && o.Kernel != kernel.Gaussian {
		return fmt.Errorf("kde: error adjustment requires the Gaussian kernel, got %v: %w", o.Kernel, udmerr.ErrBadOption)
	}
	if o.Prune != 0 {
		if !(o.Prune > 0) || math.IsInf(o.Prune, 0) {
			return fmt.Errorf("kde: prune tolerance %v must be a finite value in [0, inf): %w", o.Prune, udmerr.ErrBadOption)
		}
		if o.Kernel != kernel.Gaussian {
			return fmt.Errorf("kde: pruning requires the Gaussian kernel, got %v: %w", o.Kernel, udmerr.ErrBadOption)
		}
	}
	if !o.Accuracy.Valid() {
		return fmt.Errorf("kde: invalid accuracy %v: %w", o.Accuracy, udmerr.ErrBadOption)
	}
	if !o.Accuracy.IsExact() && o.Kernel != kernel.Gaussian {
		return fmt.Errorf("kde: approximate accuracy requires the Gaussian kernel, got %v: %w", o.Kernel, udmerr.ErrBadOption)
	}
	return nil
}

// evalKernel evaluates the configured 1-D kernel contribution at x for a
// center c, bandwidth h and error psi.
func (o Options) evalKernel(x, c, h, psi float64) float64 {
	if !o.ErrorAdjust || psi == 0 {
		if o.Kernel == kernel.Gaussian {
			// Equivalent to ErrAdjusted* with ψ=0; avoid the branch there.
			return kernel.Gaussian.Eval(x, c, h)
		}
		return o.Kernel.Eval(x, c, h)
	}
	if o.PaperKernel {
		return kernel.ErrAdjustedPaper(x, c, h, psi)
	}
	return kernel.ErrAdjustedNormalized(x, c, h, psi)
}

// PointKDE is the exact estimator of Eq. 1–4: one kernel per data point,
// per-dimension bandwidths, and optional per-entry error adjustment.
type PointKDE struct {
	x    [][]float64
	errs [][]float64 // nil when the data has no error information
	h    []float64   // per-dimension bandwidth
	opt  Options
	eng  *engine // SoA batch engine; nil when no fast path applies
}

var _ Estimator = (*PointKDE)(nil)

// NewPoint builds an exact kernel density estimate over the rows of ds.
// Bandwidths are computed per dimension from the data using the
// configured rule (Silverman by default, as in the paper).
func NewPoint(ds *dataset.Dataset, opt Options) (*PointKDE, error) {
	opt, err := opt.normalized()
	if err != nil {
		return nil, err
	}
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if ds.Len() == 0 {
		return nil, fmt.Errorf("kde: empty dataset: %w", udmerr.ErrUntrained)
	}
	d := ds.Dims()
	h, err := explicitOrRule(opt, d, func(j int) float64 {
		col := make([]float64, ds.Len())
		for i := range ds.X {
			col[i] = ds.X[i][j]
		}
		return opt.Bandwidth.FromValues(col, d)
	})
	if err != nil {
		return nil, err
	}
	k := &PointKDE{x: ds.X, h: h, opt: opt}
	if opt.ErrorAdjust && ds.HasErrors() {
		k.errs = ds.Err
	}
	k.eng, err = newEngine(opt, h, float64(len(ds.X)), ds.X, k.errs, nil, false)
	if err != nil {
		return nil, fmt.Errorf("kde: building spatial index: %w", err)
	}
	return k, nil
}

// WithAccuracy returns a shallow copy of the estimator whose batch
// density paths run under the given accuracy mode; the underlying data,
// bandwidths and spatial index are shared with the receiver, so the
// copy is cheap enough for per-request use. Per-query methods stay
// exact. Non-exact modes require the Gaussian kernel.
func (k *PointKDE) WithAccuracy(m kernel.AccuracyMode) (*PointKDE, error) {
	if err := accuracyFor(m, k.opt.Kernel); err != nil {
		return nil, err
	}
	c := *k
	c.opt.Accuracy = m
	if k.eng != nil {
		e := *k.eng
		e.acc = m
		c.eng = &e
	}
	return &c, nil
}

// accuracyFor validates a per-estimator accuracy override.
func accuracyFor(m kernel.AccuracyMode, kt kernel.Type) error {
	if !m.Valid() {
		return fmt.Errorf("kde: invalid accuracy %v: %w", m, udmerr.ErrBadOption)
	}
	if !m.IsExact() && kt != kernel.Gaussian {
		return fmt.Errorf("kde: approximate accuracy requires the Gaussian kernel, got %v: %w", kt, udmerr.ErrBadOption)
	}
	return nil
}

// Dims returns the data dimensionality.
func (k *PointKDE) Dims() int { return len(k.h) }

// Count returns the number of points in the estimate.
func (k *PointKDE) Count() int { return len(k.x) }

// BandwidthFor returns the smoothing parameter h_j used for dimension j.
func (k *PointKDE) BandwidthFor(j int) float64 { return k.h[j] }

// Density returns the estimated density at x over all dimensions.
func (k *PointKDE) Density(x []float64) float64 {
	return k.DensitySub(x, allDims(len(k.h)))
}

// DensitySub returns the estimated joint density at x over dims:
// f(x) = (1/N) Σ_i Π_{j∈dims} K_{h_j,ψ_j(X_i)}(x_j − X_ij).
func (k *PointKDE) DensitySub(x []float64, dims []int) float64 {
	if len(x) != len(k.h) {
		panic(fmt.Sprintf("kde: query point has %d dims, estimator has %d", len(x), len(k.h)))
	}
	checkDims(dims, len(k.h))
	var sum float64
	for i, xi := range k.x {
		var er []float64
		if k.errs != nil {
			er = k.errs[i]
		}
		prod := 1.0
		for _, j := range dims {
			psi := 0.0
			if er != nil {
				psi = er[j]
			}
			prod *= k.opt.evalKernel(x[j], xi[j], k.h[j], psi)
			if prod == 0 {
				break
			}
		}
		sum += prod
	}
	return sum / float64(len(k.x))
}

// DensityQ returns the expected density at an uncertain query point:
// the query's own per-dimension standard errors qerr are folded into
// every kernel's variance (variances add under independent Gaussian
// noise), so the result is E[f(X)] for X ~ N(x, diag(qerr²)). A nil qerr
// reduces to DensitySub. Only defined for the Gaussian kernel.
func (k *PointKDE) DensityQ(x, qerr []float64, dims []int) float64 {
	if qerr == nil {
		return k.DensitySub(x, dims)
	}
	if len(x) != len(k.h) || len(qerr) != len(k.h) {
		panic(fmt.Sprintf("kde: query point/error have %d/%d dims, estimator has %d", len(x), len(qerr), len(k.h)))
	}
	if k.opt.Kernel != kernel.Gaussian {
		panic("kde: DensityQ requires the Gaussian kernel")
	}
	checkDims(dims, len(k.h))
	var sum float64
	for i, xi := range k.x {
		var er []float64
		if k.errs != nil {
			er = k.errs[i]
		}
		prod := 1.0
		for _, j := range dims {
			psi2 := qerr[j] * qerr[j]
			if er != nil {
				psi2 += er[j] * er[j]
			}
			prod *= kernel.ErrAdjustedNormalized(x[j], xi[j], k.h[j], math.Sqrt(psi2))
			if prod == 0 {
				break
			}
		}
		sum += prod
	}
	return sum / float64(len(k.x))
}

// LeaveOneOutDensityQ is the leave-one-out variant of DensityQ for
// training point i, treating the point's own recorded error as the query
// error. It answers "how surprising is this record, given its own error
// bar?" — the right question for outlier detection on uncertain data.
func (k *PointKDE) LeaveOneOutDensityQ(i int, dims []int) float64 {
	if i < 0 || i >= len(k.x) {
		panic(fmt.Sprintf("kde: leave-one-out index %d out of range [0,%d)", i, len(k.x)))
	}
	if len(k.x) == 1 {
		return 0
	}
	checkDims(dims, len(k.h))
	var qerr []float64
	if k.errs != nil {
		qerr = k.errs[i]
	}
	x := k.x[i]
	var full float64
	if qerr == nil {
		full = k.DensitySub(x, dims)
	} else {
		full = k.DensityQ(x, qerr, dims)
	}
	// Self contribution under the same widened kernel.
	self := 1.0
	for _, j := range dims {
		psi2 := 0.0
		if qerr != nil {
			psi2 = 2 * qerr[j] * qerr[j] // own ψ appears as train and query error
		}
		self *= kernel.ErrAdjustedNormalized(x[j], x[j], k.h[j], math.Sqrt(psi2))
	}
	n := float64(len(k.x))
	loo := (full*n - self) / (n - 1)
	if loo < 0 {
		return 0
	}
	return loo
}

// LeaveOneOutDensity returns the density at training point i over dims
// with point i's own kernel removed — the standard correction when
// scoring training points themselves (e.g. outlier detection), where the
// self-contribution would otherwise mask low-density points. It panics
// when i is out of range; it returns 0 for a single-point estimate.
func (k *PointKDE) LeaveOneOutDensity(i int, dims []int) float64 {
	if i < 0 || i >= len(k.x) {
		panic(fmt.Sprintf("kde: leave-one-out index %d out of range [0,%d)", i, len(k.x)))
	}
	n := float64(len(k.x))
	if len(k.x) == 1 {
		return 0
	}
	checkDims(dims, len(k.h))
	x := k.x[i]
	full := k.DensitySub(x, dims)
	var er []float64
	if k.errs != nil {
		er = k.errs[i]
	}
	self := 1.0
	for _, j := range dims {
		psi := 0.0
		if er != nil {
			psi = er[j]
		}
		self *= k.opt.evalKernel(x[j], x[j], k.h[j], psi)
	}
	loo := (full*n - self) / (n - 1)
	if loo < 0 {
		return 0 // floating-point residue
	}
	return loo
}

// ClusterKDE is the scalable estimator of Eq. 9–10: one kernel per
// micro-cluster pseudo-point, weighted by cluster size, with the
// pseudo-point error Δ (Lemma 1) standing in for per-point errors.
type ClusterKDE struct {
	cents   [][]float64
	deltas  [][]float64 // per-cluster, per-dimension pseudo-point errors
	weights []float64   // n(C_i)
	total   float64     // N = Σ n(C_i)
	h       []float64
	opt     Options
	eng     *engine // SoA batch engine; nil when no fast path applies
}

var _ Estimator = (*ClusterKDE)(nil)

// NewCluster builds a density estimate from micro-cluster summaries.
// Bandwidths use the merged per-dimension σ of the summarized data and
// the total point count, matching what the exact estimator would compute
// up to summarization error.
//
// When opt.ErrorAdjust is false the pseudo-point error still includes the
// within-cluster variance — that spread is real data spread, not
// measurement error — but the EF2 error statistics are ignored.
func NewCluster(s *microcluster.Summarizer, opt Options) (*ClusterKDE, error) {
	opt, err := opt.normalized()
	if err != nil {
		return nil, err
	}
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if s.Len() == 0 {
		return nil, fmt.Errorf("kde: empty summarizer: %w", udmerr.ErrUntrained)
	}
	d := s.Dims()
	n := s.Count()
	sig := s.Sigmas()
	h, err := explicitOrRule(opt, d, func(j int) float64 {
		return opt.Bandwidth.FromSigma(sig[j], n, d)
	})
	if err != nil {
		return nil, err
	}
	k := &ClusterKDE{total: float64(n), h: h, opt: opt}
	for i := 0; i < s.Len(); i++ {
		f := s.Feature(i)
		k.cents = append(k.cents, f.Centroid(nil))
		delta := make([]float64, d)
		for j := 0; j < d; j++ {
			v := f.Variance(j)
			if opt.ErrorAdjust {
				v += f.MeanErr2(j)
			}
			delta[j] = math.Sqrt(v)
		}
		k.deltas = append(k.deltas, delta)
		k.weights = append(k.weights, float64(f.N))
	}
	k.eng, err = newEngine(opt, h, k.total, k.cents, k.deltas, k.weights, true)
	if err != nil {
		return nil, fmt.Errorf("kde: building spatial index: %w", err)
	}
	return k, nil
}

// WithAccuracy returns a shallow copy of the estimator whose batch
// density paths run under the given accuracy mode, sharing all data
// with the receiver. Per-query methods stay exact.
func (k *ClusterKDE) WithAccuracy(m kernel.AccuracyMode) (*ClusterKDE, error) {
	if err := accuracyFor(m, k.opt.Kernel); err != nil {
		return nil, err
	}
	c := *k
	c.opt.Accuracy = m
	if k.eng != nil {
		e := *k.eng
		e.acc = m
		c.eng = &e
	}
	return &c, nil
}

// Dims returns the data dimensionality.
func (k *ClusterKDE) Dims() int { return len(k.h) }

// Count returns the total number of points summarized.
func (k *ClusterKDE) Count() int { return int(k.total) }

// Clusters returns the number of micro-cluster pseudo-points.
func (k *ClusterKDE) Clusters() int { return len(k.cents) }

// BandwidthFor returns the smoothing parameter h_j used for dimension j.
func (k *ClusterKDE) BandwidthFor(j int) float64 { return k.h[j] }

// Density returns the estimated density at x over all dimensions.
func (k *ClusterKDE) Density(x []float64) float64 {
	return k.DensitySub(x, allDims(len(k.h)))
}

// DensitySub returns the estimated joint density at x over dims:
// f(x) = (1/N) Σ_i n(C_i) Π_{j∈dims} Q'_{h_j,Δ_j(C_i)}(x_j − c_ij).
//
// The cluster kernel always goes through the error-adjusted form because
// Δ is nonzero for any cluster with spread, regardless of ErrorAdjust.
func (k *ClusterKDE) DensitySub(x []float64, dims []int) float64 {
	if len(x) != len(k.h) {
		panic(fmt.Sprintf("kde: query point has %d dims, estimator has %d", len(x), len(k.h)))
	}
	checkDims(dims, len(k.h))
	var sum float64
	for i, c := range k.cents {
		prod := k.weights[i]
		for _, j := range dims {
			if k.opt.PaperKernel {
				prod *= kernel.ErrAdjustedPaper(x[j], c[j], k.h[j], k.deltas[i][j])
			} else {
				prod *= kernel.ErrAdjustedNormalized(x[j], c[j], k.h[j], k.deltas[i][j])
			}
			if prod == 0 {
				break
			}
		}
		sum += prod
	}
	return sum / k.total
}

// DensityQ returns the expected density at an uncertain query point over
// micro-cluster summaries: the query's per-dimension errors add (in
// variance) to each pseudo-point's Δ. A nil qerr reduces to DensitySub.
func (k *ClusterKDE) DensityQ(x, qerr []float64, dims []int) float64 {
	if qerr == nil {
		return k.DensitySub(x, dims)
	}
	if len(x) != len(k.h) || len(qerr) != len(k.h) {
		panic(fmt.Sprintf("kde: query point/error have %d/%d dims, estimator has %d", len(x), len(qerr), len(k.h)))
	}
	checkDims(dims, len(k.h))
	var sum float64
	for i, c := range k.cents {
		prod := k.weights[i]
		for _, j := range dims {
			d := k.deltas[i][j]
			psi := math.Sqrt(d*d + qerr[j]*qerr[j])
			prod *= kernel.ErrAdjustedNormalized(x[j], c[j], k.h[j], psi)
			if prod == 0 {
				break
			}
		}
		sum += prod
	}
	return sum / k.total
}

// explicitOrRule resolves per-dimension bandwidths: explicit
// opt.Bandwidths when supplied (validated), otherwise the rule via
// fromRule.
func explicitOrRule(opt Options, d int, fromRule func(j int) float64) ([]float64, error) {
	if opt.Bandwidths == nil {
		h := make([]float64, d)
		for j := 0; j < d; j++ {
			h[j] = fromRule(j)
		}
		return h, nil
	}
	if len(opt.Bandwidths) != d {
		return nil, fmt.Errorf("kde: %d explicit bandwidths for %d dimensions: %w", len(opt.Bandwidths), d, udmerr.ErrDimensionMismatch)
	}
	h := make([]float64, d)
	for j, v := range opt.Bandwidths {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("kde: explicit bandwidth[%d] = %v must be positive and finite: %w", j, v, udmerr.ErrBadOption)
		}
		h[j] = v
	}
	return h, nil
}

func allDims(d int) []int {
	dims := make([]int, d)
	for j := range dims {
		dims[j] = j
	}
	return dims
}

func checkDims(dims []int, d int) {
	for _, j := range dims {
		if j < 0 || j >= d {
			panic(fmt.Sprintf("kde: subspace dimension %d out of range [0,%d)", j, d))
		}
	}
}
