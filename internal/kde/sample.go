package kde

import (
	"fmt"
	"math"

	"udm/internal/kernel"
	"udm/internal/rng"
	"udm/internal/udmerr"
)

// Sample draws n points from the estimated density: a data point is
// chosen uniformly, then each coordinate is drawn from that point's
// (error-adjusted) Gaussian kernel. The draws are i.i.d. from exactly
// the distribution Density integrates to (the normalized kernel form),
// which makes Sample a synthetic-data generator: it publishes the
// learned distribution, not the original records. Only defined for the
// Gaussian kernel.
func (k *PointKDE) Sample(n int, r *rng.Source) ([][]float64, error) {
	if err := sampleArgs(k.opt, n, r); err != nil {
		return nil, err
	}
	out := make([][]float64, n)
	for s := 0; s < n; s++ {
		i := r.Intn(len(k.x))
		var er []float64
		if k.errs != nil {
			er = k.errs[i]
		}
		row := make([]float64, len(k.h)) //lint:allow hotalloc each sampled row is returned to the caller; allocation is the output itself
		for j := range row {
			sigma := k.h[j]
			if er != nil {
				sigma = math.Sqrt(sigma*sigma + er[j]*er[j])
			}
			row[j] = r.Norm(k.x[i][j], sigma)
		}
		out[s] = row
	}
	return out, nil
}

// Sample draws n points from the micro-cluster density: a cluster is
// chosen with probability proportional to its size, then each coordinate
// is drawn from the pseudo-point's kernel (variance h² + Δ²). This
// samples from the compressed model only — the original records are not
// needed, which is the privacy-friendly publication path.
func (k *ClusterKDE) Sample(n int, r *rng.Source) ([][]float64, error) {
	if err := sampleArgs(k.opt, n, r); err != nil {
		return nil, err
	}
	out := make([][]float64, n)
	for s := 0; s < n; s++ {
		i := r.Categorical(k.weights)
		row := make([]float64, len(k.h)) //lint:allow hotalloc each sampled row is returned to the caller; allocation is the output itself
		for j := range row {
			d := k.deltas[i][j]
			sigma := math.Sqrt(k.h[j]*k.h[j] + d*d)
			row[j] = r.Norm(k.cents[i][j], sigma)
		}
		out[s] = row
	}
	return out, nil
}

func sampleArgs(opt Options, n int, r *rng.Source) error {
	if n < 1 {
		return fmt.Errorf("kde: sampling n=%d points: %w", n, udmerr.ErrBadOption)
	}
	if r == nil {
		return fmt.Errorf("kde: nil random source: %w", udmerr.ErrBadOption)
	}
	if opt.Kernel != kernel.Gaussian {
		return fmt.Errorf("kde: sampling requires the Gaussian kernel, got %v: %w", opt.Kernel, udmerr.ErrBadOption)
	}
	if opt.PaperKernel {
		return fmt.Errorf("kde: sampling from the unnormalized paper kernel is undefined; use the normalized form: %w", udmerr.ErrBadOption)
	}
	return nil
}
