package kde

import (
	"math"
	"testing"

	"udm/internal/dataset"
	"udm/internal/kernel"
)

func onePointKDE(t *testing.T) *PointKDE {
	t.Helper()
	d := dataset.New("a", "b")
	if err := d.Append([]float64{0, 0}, nil, dataset.Unlabeled); err != nil {
		t.Fatal(err)
	}
	k, err := NewPoint(d, Options{Bandwidth: kernel.Bandwidth{Rule: kernel.Fixed, Value: 1}})
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestGrid1DShapeAndValues(t *testing.T) {
	k := onePointKDE(t)
	xs, ys := Grid1D(k, 0, -2, 2, 4)
	if len(xs) != 5 || len(ys) != 5 {
		t.Fatalf("grid lengths %d/%d", len(xs), len(ys))
	}
	if xs[0] != -2 || xs[4] != 2 || xs[2] != 0 {
		t.Fatalf("grid coords %v", xs)
	}
	// Peak at the center, symmetric.
	if !(ys[2] > ys[0]) || math.Abs(ys[0]-ys[4]) > 1e-12 {
		t.Fatalf("grid values %v", ys)
	}
}

func TestMass1DNearOne(t *testing.T) {
	k := onePointKDE(t)
	if m := Mass1D(k, 0, -10, 10, 2000); math.Abs(m-1) > 1e-4 {
		t.Fatalf("mass = %v", m)
	}
}

func TestGrid2D(t *testing.T) {
	k := onePointKDE(t)
	g := Grid2D(k, 0, 1, -1, 1, -1, 1, 2, 2)
	if len(g) != 3 || len(g[0]) != 3 {
		t.Fatalf("grid shape %dx%d", len(g), len(g[0]))
	}
	// Center cell has the highest density.
	for iy := range g {
		for ix := range g[iy] {
			if g[iy][ix] > g[1][1] {
				t.Fatalf("cell (%d,%d) above center", iy, ix)
			}
		}
	}
	// 2-D mass via the grid ≈ product structure sanity: center equals
	// product of the 1-D peaks.
	want := k.DensitySub([]float64{0, 0}, []int{0}) * k.DensitySub([]float64{0, 0}, []int{1})
	if math.Abs(g[1][1]-want) > 1e-12 {
		t.Fatalf("center = %v, want %v", g[1][1], want)
	}
}

func TestGridPanics(t *testing.T) {
	k := onePointKDE(t)
	for name, fn := range map[string]func(){
		"n<1":      func() { Grid1D(k, 0, 0, 1, 0) },
		"hi<=lo":   func() { Grid1D(k, 0, 1, 1, 10) },
		"2d range": func() { Grid2D(k, 0, 1, 0, 0, 0, 1, 2, 2) },
		"2d steps": func() { Grid2D(k, 0, 1, 0, 1, 0, 1, 0, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
