package kde

import (
	"math"
	"testing"

	"udm/internal/dataset"
	"udm/internal/kernel"
	"udm/internal/microcluster"
	"udm/internal/rng"
)

// This file is the property/metamorphic layer over the estimators of
// Eq. 1–4 and 9–10: relations that must hold for EVERY dataset, checked
// over a table of seeded random datasets rather than hand-picked
// examples. The three core properties:
//
//  1. Zero uncertainty is a no-op: with all-zero error bars the
//     error-adjusted estimator IS the plain Silverman KDE, bit for bit
//     (ψ=0 routes through the identical kernel.Gaussian.Eval code path).
//  2. A density is a density: never negative, never NaN, finite
//     wherever the query is finite.
//  3. More uncertainty never sharpens: growing one point's ψ_j widens
//     that point's kernel, so the density at the point's own mode
//     cannot increase (bandwidths depend only on values, never errors,
//     so nothing else moves).
//
// plus metamorphic translation checks for the two error-adjusted kernel
// forms themselves.

// propertyCases is the shared table of seeded datasets the properties
// quantify over: varying size, error magnitude and seed.
type propertyCase struct {
	name string
	n    int
	e    float64
	seed int64
}

var propertyCases = []propertyCase{
	{"small-lowerr", 40, 0.1, 101},
	{"small-higherr", 40, 1.5, 102},
	{"mid-moderr", 150, 0.5, 103},
	{"large-mixed", 400, 0.8, 104},
}

// queries draws a deterministic batch of query points spanning the
// bulk and the tails of the gauss2 mixture.
func queries(seed int64, k int) [][]float64 {
	r := rng.New(seed)
	qs := make([][]float64, k)
	for i := range qs {
		qs[i] = []float64{r.Norm(0, 4), r.Norm(0, 3)}
	}
	return qs
}

// TestZeroErrorReducesToPlainKDE: an error-adjusted estimator over data
// whose error bars are all zero must reproduce the plain (no-
// adjustment) Silverman KDE bit for bit — for both kernel forms, over
// full and subspace queries. This is the identity the serving layer's
// bit-identity guarantees stand on.
func TestZeroErrorReducesToPlainKDE(t *testing.T) {
	for _, tc := range propertyCases {
		t.Run(tc.name, func(t *testing.T) {
			d := gauss2(tc.n, tc.e, tc.seed)
			// Same values, explicit zero error bars.
			zero := d.Clone()
			for i := range zero.Err {
				for j := range zero.Err[i] {
					zero.Err[i][j] = 0
				}
			}
			plain, err := NewPoint(d.WithZeroError(), Options{})
			if err != nil {
				t.Fatal(err)
			}
			for _, opt := range []Options{
				{ErrorAdjust: true},
				{ErrorAdjust: true, PaperKernel: true},
			} {
				adj, err := NewPoint(zero, opt)
				if err != nil {
					t.Fatal(err)
				}
				for _, q := range queries(tc.seed+1000, 25) {
					for _, dims := range [][]int{nil, {0}, {1}, {1, 0}} {
						var fp, fa float64
						if dims == nil {
							fp, fa = plain.Density(q), adj.Density(q)
						} else {
							fp, fa = plain.DensitySub(q, dims), adj.DensitySub(q, dims)
						}
						if fp != fa {
							t.Fatalf("paper=%v dims=%v q=%v: zero-error adjusted density %v != plain %v (must be bit-identical)",
								opt.PaperKernel, dims, q, fa, fp)
						}
					}
				}
			}
		})
	}
}

// TestDensityNonNegativeFinite: every estimator variant must return a
// non-negative, finite, non-NaN density at every finite query.
func TestDensityNonNegativeFinite(t *testing.T) {
	for _, tc := range propertyCases {
		t.Run(tc.name, func(t *testing.T) {
			d := gauss2(tc.n, tc.e, tc.seed)
			ests := map[string]Estimator{}
			for _, opt := range []Options{
				{},
				{ErrorAdjust: true},
				{ErrorAdjust: true, PaperKernel: true},
			} {
				pk, err := NewPoint(d, opt)
				if err != nil {
					t.Fatal(err)
				}
				ests["point"+optTag(opt)] = pk
				sum := microcluster.NewSummarizer(10, d.Dims())
				for i := range d.X {
					sum.Add(d.X[i], d.ErrRow(i))
				}
				ck, err := NewCluster(sum, opt)
				if err != nil {
					t.Fatal(err)
				}
				ests["cluster"+optTag(opt)] = ck
			}
			for name, est := range ests {
				for _, q := range queries(tc.seed+2000, 25) {
					for _, dims := range [][]int{nil, {0}, {1}} {
						var f float64
						if dims == nil {
							f = est.Density(q)
						} else {
							f = est.DensitySub(q, dims)
						}
						if f < 0 || math.IsNaN(f) || math.IsInf(f, 0) {
							t.Fatalf("%s dims=%v q=%v: density %v not a finite non-negative number", name, dims, q, f)
						}
					}
				}
				// Uncertain queries obey the same closure.
				if pq, ok := est.(*PointKDE); ok {
					for _, q := range queries(tc.seed+3000, 10) {
						f := pq.DensityQ(q, []float64{tc.e, 2 * tc.e}, nil)
						if f < 0 || math.IsNaN(f) || math.IsInf(f, 0) {
							t.Fatalf("%s DensityQ(%v) = %v not a finite non-negative number", name, q, f)
						}
					}
				}
			}
		})
	}
}

func optTag(o Options) string {
	switch {
	case o.PaperKernel:
		return "/paper"
	case o.ErrorAdjust:
		return "/adjusted"
	}
	return "/plain"
}

// TestGrowingErrorNeverSharpens: widening one point's per-dimension
// error ψ_j can only flatten that point's kernel, so the density
// evaluated at the point itself (its contribution's mode) must be
// non-increasing along a growing ψ ladder. Silverman bandwidths depend
// only on the values, never the error matrix, so the other N−1
// contributions are unchanged — the monotonicity isolates Eq. 3–4's
// widening. Holds for both the normalized and the paper kernel form.
func TestGrowingErrorNeverSharpens(t *testing.T) {
	psiLadder := []float64{0, 0.25, 0.5, 1, 2, 4, 8}
	for _, tc := range propertyCases {
		for _, paper := range []bool{false, true} {
			name := tc.name + map[bool]string{false: "/normalized", true: "/paper"}[paper]
			t.Run(name, func(t *testing.T) {
				d := gauss2(tc.n, tc.e, tc.seed)
				opt := Options{ErrorAdjust: true, PaperKernel: paper}
				// Probe a handful of points; vary each probe's error in
				// one dimension at a time.
				for probe := 0; probe < d.Len(); probe += d.Len() / 5 {
					for j := 0; j < d.Dims(); j++ {
						prev := math.Inf(1)
						for _, psi := range psiLadder {
							mut := d.Clone()
							mut.Err[probe][j] = psi
							k, err := NewPoint(mut, opt)
							if err != nil {
								t.Fatal(err)
							}
							f := k.Density(d.X[probe])
							if f > prev {
								t.Fatalf("probe %d dim %d: density at own mode rose from %v to %v when ψ grew to %v",
									probe, j, prev, f, psi)
							}
							prev = f
						}
					}
				}
			})
		}
	}
}

// TestQueryErrorNeverSharpensAtMode: the uncertain-query density
// E[f(X)], X ~ N(x, diag(qerr²)) is an average of f around x. On a
// single-point dataset x = X_0 is the global mode of f, so growing the
// query error can only average in smaller values. Checked for both
// estimators (the cluster form via a one-cluster summarizer).
func TestQueryErrorNeverSharpensAtMode(t *testing.T) {
	d := dataset.New("x", "y")
	if err := d.Append([]float64{1.5, -0.5}, []float64{0.3, 0.3}, dataset.Unlabeled); err != nil {
		t.Fatal(err)
	}
	// A one-point dataset has zero spread; Silverman collapses, so pin
	// the bandwidths explicitly.
	opt := Options{ErrorAdjust: true, Bandwidths: []float64{0.8, 1.1}}
	pk, err := NewPoint(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	sum := microcluster.NewSummarizer(1, 2)
	sum.Add(d.X[0], d.Err[0])
	ck, err := NewCluster(sum, opt)
	if err != nil {
		t.Fatal(err)
	}
	for name, f := range map[string]func(q, e []float64) float64{
		"point":   func(q, e []float64) float64 { return pk.DensityQ(q, e, nil) },
		"cluster": func(q, e []float64) float64 { return ck.DensityQ(q, e, nil) },
	} {
		prev := math.Inf(1)
		for _, qe := range []float64{0, 0.5, 1, 2, 4} {
			var v float64
			if qe == 0 {
				v = f(d.X[0], nil)
			} else {
				v = f(d.X[0], []float64{qe, qe})
			}
			if v > prev {
				t.Fatalf("%s: density at the mode rose from %v to %v when query error grew to %v", name, prev, v, qe)
			}
			prev = v
		}
	}
}

// TestErrAdjustedKernelTranslation: both printed kernel forms (Eq. 3
// normalized and as-published) depend on x and c only through x−c, so
// translating both arguments moves the kernel rigidly. Checked to a
// tight relative tolerance (float translation is not exact in the
// arguments' bits).
func TestErrAdjustedKernelTranslation(t *testing.T) {
	r := rng.New(42)
	forms := map[string]func(x, c, h, psi float64) float64{
		"normalized": kernel.ErrAdjustedNormalized,
		"paper":      kernel.ErrAdjustedPaper,
	}
	for name, K := range forms {
		for trial := 0; trial < 200; trial++ {
			x, c := r.Norm(0, 2), r.Norm(0, 2)
			h, psi := 0.1+r.Float64(), r.Float64()*2
			shift := r.Uniform(-50, 50)
			a, b := K(x, c, h, psi), K(x+shift, c+shift, h, psi)
			if math.Abs(a-b) > 1e-9*(1+math.Abs(a)) {
				t.Fatalf("%s kernel not translation invariant: K(%v,%v)=%v vs shifted %v", name, x, c, a, b)
			}
		}
	}
}

// TestBandwidthsIgnoreErrors: the Silverman rule reads only the values,
// so replacing the error matrix must leave every per-dimension
// bandwidth bit-identical — the lemma the monotonicity test above
// leans on.
func TestBandwidthsIgnoreErrors(t *testing.T) {
	d := gauss2(120, 0.4, 105)
	noisy := d.Clone()
	for i := range noisy.Err {
		for j := range noisy.Err[i] {
			noisy.Err[i][j] *= 17.5
		}
	}
	a, err := NewPoint(d, Options{ErrorAdjust: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPoint(noisy, Options{ErrorAdjust: true})
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < d.Dims(); j++ {
		if a.BandwidthFor(j) != b.BandwidthFor(j) {
			t.Fatalf("dim %d: bandwidth moved with the error matrix: %v vs %v", j, a.BandwidthFor(j), b.BandwidthFor(j))
		}
	}
}
