package kde

import (
	"math"
	"sync"

	"udm/internal/kdtree"
	"udm/internal/kernel"
	"udm/internal/num"
)

// This file holds the structure-of-arrays evaluation engine behind the
// batch density APIs. The seed scalar path (DensitySub and friends)
// walks [][]float64 rows and re-derives every widened bandwidth on each
// evaluation; the engine stores the same data as per-dimension column
// slices with the widths, paper-kernel normalizers and squared errors
// precomputed, so the inner loop is a straight scan over contiguous
// float64 columns. In exact mode with pruning off the engine performs
// the seed's floating-point operations in the seed's order, so batch
// results stay bit-for-bit identical to the scalar reference — the
// regression tests in soa_test.go hold it to that.

// soaMode selects the per-entry kernel form the columns encode. It
// mirrors the branch structure of Options.evalKernel so each mode's
// loop reproduces the corresponding scalar op sequence exactly.
type soaMode int

const (
	// modePlain: every entry is a plain Gaussian with the dimension's
	// bandwidth (no error adjustment, or no recorded errors).
	modePlain soaMode = iota
	// modeWidth: per-entry precomputed width — h for ψ=0 entries,
	// √(h²+ψ²) otherwise (the normalized error-adjusted kernel).
	modeWidth
	// modePaperMixed: PointKDE under PaperKernel — ψ=0 entries use the
	// plain Gaussian (as evalKernel does), ψ>0 entries use Eq. 3.
	modePaperMixed
	// modePaperAll: ClusterKDE under PaperKernel — every pseudo-point
	// goes through Eq. 3, even when Δ=0.
	modePaperAll
)

// engine is the SoA twin of an estimator: immutable after construction
// and shared by all batch workers. It exists only for the Gaussian
// kernel family (the paper's); estimators over other kernels keep a nil
// engine and batches fall back to the scalar path.
type engine struct {
	mode  soaMode
	n     int     // entries (points or pseudo-points)
	d     int     // dimensionality
	total float64 // density divisor: N, or total cluster weight
	h     []float64
	acc   kernel.AccuracyMode
	prune float64

	// Column storage, cols[j][i]; width/psi/psiSq/norm/tv are present
	// per mode as documented on soaMode (psiSq feeds the DensityQ path).
	cols  [][]float64
	width [][]float64
	psi   [][]float64
	psiSq [][]float64
	norm  [][]float64
	tv    [][]float64
	wts   []float64 // starting product per entry; nil = 1

	// Far-field pruning structures (nil unless prune > 0): the k-d tree
	// over the centers, subtree aggregates, and every column permuted
	// into DFS preorder so any subtree is a contiguous span.
	tree   *kdtree.Tree
	sub    *kdtree.Subtrees
	pcols  [][]float64
	pwidth [][]float64
	ppsi   [][]float64
	ppsiSq [][]float64
	pnorm  [][]float64
	ptv    [][]float64
	pwts   []float64

	// pool recycles the per-query product buffer (len n). Held by
	// pointer so shallow copies of the engine (WithAccuracy) share it —
	// a sync.Pool must not be copied after first use.
	pool *sync.Pool
}

// newEngine builds the SoA engine for an estimator, or returns (nil,
// nil) when no fast path applies (non-Gaussian kernel, or degenerate
// bandwidths that the scalar path would reject at query time). psis may
// be nil (no per-entry errors); wts is non-nil only for cluster
// estimators. An error is returned only when opt.Prune > 0 and the
// spatial index cannot be built (e.g. non-finite centers).
func newEngine(opt Options, h []float64, total float64, cents, psis [][]float64, wts []float64, cluster bool) (*engine, error) {
	if opt.Kernel != kernel.Gaussian {
		return nil, nil
	}
	for _, v := range h {
		if !(v > 0) || math.IsInf(v, 1) {
			return nil, nil
		}
	}
	n, d := len(cents), len(h)
	e := &engine{
		n:     n,
		d:     d,
		total: total,
		h:     h,
		acc:   opt.Accuracy,
		prune: opt.Prune,
		cols:  toCols(cents, d),
		wts:   wts,
	}
	switch {
	case cluster && opt.PaperKernel:
		e.mode = modePaperAll
	case cluster:
		e.mode = modeWidth
	case psis == nil || !opt.ErrorAdjust:
		e.mode = modePlain
	case opt.PaperKernel:
		e.mode = modePaperMixed
	default:
		e.mode = modeWidth
	}
	if psis != nil {
		e.psi = toCols(psis, d)
		e.psiSq = mapCols(e.psi, func(_ int, p float64) float64 { return p * p })
	}
	switch e.mode {
	case modeWidth:
		// Per-entry width reproducing the scalar branch bit-for-bit:
		// PointKDE uses h itself for ψ=0 (evalKernel's Gaussian.Eval
		// branch), ClusterKDE always computes √(h²+Δ²) even for Δ=0.
		e.width = mapCols(e.psi, func(j int, p float64) float64 {
			if !cluster && p == 0 {
				return h[j]
			}
			return math.Sqrt(h[j]*h[j] + p*p)
		})
	case modePaperMixed, modePaperAll:
		// Eq. 3 split into a normalizer and a doubled variance so the
		// inner loop is one multiply and one exp per entry.
		e.norm = mapCols(e.psi, func(j int, p float64) float64 {
			return num.InvSqrt2Pi / (h[j] + p)
		})
		e.tv = mapCols(e.psi, func(j int, p float64) float64 {
			return 2 * (h[j]*h[j] + p*p)
		})
	}
	if e.mode == modePaperAll && e.psi == nil {
		// A cluster estimator always has deltas, but keep the invariant
		// explicit: paper modes require the ψ columns.
		return nil, nil
	}
	if opt.Prune > 0 {
		if err := e.buildIndex(cents, psis, wts); err != nil {
			return nil, err
		}
	}
	e.pool = &sync.Pool{New: func() any {
		s := make([]float64, n)
		return &s
	}}
	return e, nil
}

// buildIndex constructs the k-d tree, subtree aggregates, and the
// preorder-permuted column twins used by the pruned traversal.
func (e *engine) buildIndex(cents, psis [][]float64, wts []float64) error {
	tree, err := kdtree.Build(cents)
	if err != nil {
		return err
	}
	sub, err := tree.Annotate(psis, wts)
	if err != nil {
		return err
	}
	e.tree, e.sub = tree, sub
	e.pcols = permuteCols(e.cols, sub.Perm)
	e.pwidth = permuteCols(e.width, sub.Perm)
	e.ppsi = permuteCols(e.psi, sub.Perm)
	e.ppsiSq = permuteCols(e.psiSq, sub.Perm)
	e.pnorm = permuteCols(e.norm, sub.Perm)
	e.ptv = permuteCols(e.tv, sub.Perm)
	if wts != nil {
		e.pwts = make([]float64, len(wts))
		for t, i := range sub.Perm {
			e.pwts[t] = wts[i]
		}
	}
	return nil
}

// toCols transposes row storage into d column slices backed by one
// allocation.
func toCols(rows [][]float64, d int) [][]float64 {
	n := len(rows)
	buf := make([]float64, n*d)
	out := make([][]float64, d)
	for j := range out {
		out[j] = buf[j*n : (j+1)*n : (j+1)*n]
	}
	for i, r := range rows {
		for j := 0; j < d; j++ {
			out[j][i] = r[j]
		}
	}
	return out
}

// mapCols derives one column set from another entry-wise; nil in, nil
// out.
func mapCols(src [][]float64, f func(j int, v float64) float64) [][]float64 {
	if src == nil {
		return nil
	}
	d := len(src)
	n := 0
	if d > 0 {
		n = len(src[0])
	}
	buf := make([]float64, n*d)
	out := make([][]float64, d)
	for j := range out {
		out[j] = buf[j*n : (j+1)*n : (j+1)*n]
		for i, v := range src[j] {
			out[j][i] = f(j, v)
		}
	}
	return out
}

// permuteCols reorders every column by the preorder permutation; nil
// in, nil out.
func permuteCols(src [][]float64, perm []int32) [][]float64 {
	if src == nil {
		return nil
	}
	d := len(src)
	n := len(perm)
	buf := make([]float64, n*d)
	out := make([][]float64, d)
	for j := range out {
		out[j] = buf[j*n : (j+1)*n : (j+1)*n]
		for t, i := range perm {
			out[j][t] = src[j][i]
		}
	}
	return out
}

// scratch borrows a len-n product buffer from the pool; release returns
// it. Steady-state batches therefore allocate nothing per query.
func (e *engine) scratch() []float64 { return *(e.pool.Get().(*[]float64)) }

func (e *engine) release(s []float64) { e.pool.Put(&s) }

// expFn resolves the exponential for a product over nd dimensions:
// math.Exp in exact mode, kernel.ExpFast when the accuracy budget
// covers the surrogate's compounded per-dimension error.
func (e *engine) expFn(nd int) func(float64) float64 {
	if e.acc.UsesFastExp(nd) {
		return kernel.ExpFast
	}
	return math.Exp
}

// density evaluates the estimate at q over dims using the scratch
// product buffer (len ≥ n). Pruning applies when configured; otherwise
// the flat column scan runs, bit-identical to the scalar path in exact
// mode.
func (e *engine) density(q []float64, dims []int, prod []float64) float64 {
	if e.prune > 0 {
		return e.densityPruned(q, dims, nil)
	}
	return e.densityFlat(q, dims, prod)
}

// densityQ is the uncertain-query variant: qerr's per-dimension errors
// fold into every kernel's variance, as in the scalar DensityQ.
func (e *engine) densityQ(q, qerr []float64, dims []int, prod []float64) float64 {
	if qerr == nil {
		return e.density(q, dims, prod)
	}
	if e.prune > 0 {
		return e.densityPruned(q, dims, qerr)
	}
	return e.densityQFlat(q, qerr, dims, prod)
}

// initProd seeds the product buffer: cluster weights or 1.
func (e *engine) initProd(prod []float64) {
	if e.wts != nil {
		copy(prod, e.wts)
		return
	}
	for i := range prod {
		prod[i] = 1
	}
}

// densityFlat is the unpruned dim-major scan: one pass per dimension
// over contiguous columns, then a sum in entry order. Dropping the
// scalar path's early break on a zero product cannot change bits —
// every Gaussian factor is finite, and 0 × finite = 0.
func (e *engine) densityFlat(q []float64, dims []int, prod []float64) float64 {
	prod = prod[:e.n]
	e.initProd(prod)
	exp := e.expFn(len(dims))
	for _, j := range dims {
		switch e.mode {
		case modePlain:
			mulGauss(prod, e.cols[j], q[j], e.h[j], exp)
		case modeWidth:
			mulWidth(prod, e.cols[j], e.width[j], q[j], exp)
		case modePaperMixed:
			mulPaperMixed(prod, e.cols[j], e.psi[j], e.norm[j], e.tv[j], q[j], e.h[j], exp)
		case modePaperAll:
			mulPaperAll(prod, e.cols[j], e.norm[j], e.tv[j], q[j], exp)
		}
	}
	var sum float64
	for _, p := range prod {
		sum += p
	}
	return sum / e.total
}

// densityQFlat folds the query's own errors into every width. The op
// sequences replicate the scalar DensityQ exactly: ψ² terms add before
// the square root, and the widened σ re-derives from ψ via √(h²+ψ²).
func (e *engine) densityQFlat(q, qerr []float64, dims []int, prod []float64) float64 {
	prod = prod[:e.n]
	e.initProd(prod)
	exp := e.expFn(len(dims))
	for _, j := range dims {
		q2 := qerr[j] * qerr[j]
		if e.psiSq == nil {
			// No per-entry errors: the widened σ is constant along the
			// column, so hoist it (identical operations, done once).
			psi := math.Sqrt(q2)
			sigma := math.Sqrt(e.h[j]*e.h[j] + psi*psi)
			mulGauss(prod, e.cols[j], q[j], sigma, exp)
			continue
		}
		mulQ(prod, e.cols[j], e.psiSq[j], q[j], q2, e.h[j], exp)
	}
	var sum float64
	for _, p := range prod {
		sum += p
	}
	return sum / e.total
}

// mulGauss multiplies each product by the plain Gaussian factor — the
// exact op sequence of kernel.Type.Eval (Gaussian) and num.NormPDF.
func mulGauss(prod, col []float64, q, w float64, exp func(float64) float64) {
	for i, c := range col {
		z := (q - c) / w
		prod[i] *= num.InvSqrt2Pi / w * exp(-0.5*z*z)
	}
}

// mulWidth is mulGauss with a per-entry precomputed width.
func mulWidth(prod, col, width []float64, q float64, exp func(float64) float64) {
	for i, c := range col {
		w := width[i]
		z := (q - c) / w
		prod[i] *= num.InvSqrt2Pi / w * exp(-0.5*z*z)
	}
}

// mulPaperMixed mirrors evalKernel under PaperKernel: ψ=0 entries take
// the plain Gaussian branch, ψ>0 entries take Eq. 3 with precomputed
// normalizer and doubled variance.
func mulPaperMixed(prod, col, psi, norm, tv []float64, q, h float64, exp func(float64) float64) {
	for i, c := range col {
		if psi[i] == 0 {
			z := (q - c) / h
			prod[i] *= num.InvSqrt2Pi / h * exp(-0.5*z*z)
			continue
		}
		d := q - c
		prod[i] *= norm[i] * exp(-d*d/tv[i])
	}
}

// mulPaperAll is the unconditional Eq. 3 form used by ClusterKDE.
func mulPaperAll(prod, col, norm, tv []float64, q float64, exp func(float64) float64) {
	for i, c := range col {
		d := q - c
		prod[i] *= norm[i] * exp(-d*d/tv[i])
	}
}

// mulQ widens each entry by both its own ψ² and the query's: the
// scalar path computes ψ = √(qerr² + ψᵢ²) then σ = √(h² + ψ²), and so
// does this loop, term for term.
func mulQ(prod, col, psiSq []float64, q, q2, h float64, exp func(float64) float64) {
	for i, c := range col {
		psi := math.Sqrt(q2 + psiSq[i])
		sigma := math.Sqrt(h*h + psi*psi)
		z := (q - c) / sigma
		prod[i] *= num.InvSqrt2Pi / sigma * exp(-0.5*z*z)
	}
}
