package kde

import (
	"math"
	"testing"

	"udm/internal/dataset"
	"udm/internal/kernel"
	"udm/internal/microcluster"
	"udm/internal/rng"
)

// gauss2 builds an n-row 2-dim dataset of two Gaussian blobs with
// constant per-entry error e.
func gauss2(n int, e float64, seed int64) *dataset.Dataset {
	r := rng.New(seed)
	d := dataset.New("x", "y")
	for i := 0; i < n; i++ {
		var row []float64
		if i%2 == 0 {
			row = []float64{r.Norm(-2, 0.7), r.Norm(0, 1)}
		} else {
			row = []float64{r.Norm(2, 0.7), r.Norm(0, 1)}
		}
		var er []float64
		if e > 0 {
			er = []float64{e, e}
		}
		_ = d.Append(row, er, dataset.Unlabeled)
	}
	return d
}

func TestNewPointRejectsBadInput(t *testing.T) {
	if _, err := NewPoint(dataset.New("x"), Options{}); err == nil {
		t.Error("empty dataset accepted")
	}
	d := gauss2(10, 0, 1)
	if _, err := NewPoint(d, Options{ErrorAdjust: true, Kernel: kernel.Epanechnikov}); err == nil {
		t.Error("error adjustment with non-Gaussian kernel accepted")
	}
}

func TestPointDensityIntegratesToOne(t *testing.T) {
	d := gauss2(200, 0.5, 2)
	for _, adjust := range []bool{false, true} {
		k, err := NewPoint(d, Options{ErrorAdjust: adjust})
		if err != nil {
			t.Fatal(err)
		}
		m := Mass1D(k, 0, -40, 40, 4000)
		if math.Abs(m-1) > 1e-3 {
			t.Errorf("adjust=%v: 1-D mass = %v", adjust, m)
		}
	}
}

func TestPointDensityPeaksNearModes(t *testing.T) {
	d := gauss2(400, 0, 3)
	k, err := NewPoint(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	atMode := k.DensitySub([]float64{-2, 0}, []int{0})
	atTrough := k.DensitySub([]float64{0, 0}, []int{0})
	if atMode <= atTrough {
		t.Fatalf("density at mode %v <= trough %v", atMode, atTrough)
	}
}

func TestErrorAdjustmentSmoothsDensity(t *testing.T) {
	// With large errors the adjusted estimate must be flatter: lower at
	// the modes, higher in the trough, than the unadjusted estimate.
	d := gauss2(400, 2.0, 4)
	plain, err := NewPoint(d, Options{ErrorAdjust: false})
	if err != nil {
		t.Fatal(err)
	}
	adj, err := NewPoint(d, Options{ErrorAdjust: true})
	if err != nil {
		t.Fatal(err)
	}
	if !(adj.DensitySub([]float64{-2, 0}, []int{0}) < plain.DensitySub([]float64{-2, 0}, []int{0})) {
		t.Error("adjusted density at mode should be lower")
	}
	if !(adj.DensitySub([]float64{0, 0}, []int{0}) > plain.DensitySub([]float64{0, 0}, []int{0})) {
		t.Error("adjusted density at trough should be higher")
	}
}

func TestSubspaceProductStructure(t *testing.T) {
	// For a single point, the 2-D density is the product of the 1-D ones.
	d := dataset.New("a", "b")
	_ = d.Append([]float64{1, 2}, nil, dataset.Unlabeled)
	k, err := NewPoint(d, Options{Bandwidth: kernel.Bandwidth{Rule: kernel.Fixed, Value: 1}})
	if err != nil {
		t.Fatal(err)
	}
	q := []float64{1.3, 1.5}
	full := k.Density(q)
	want := k.DensitySub(q, []int{0}) * k.DensitySub(q, []int{1})
	if math.Abs(full-want) > 1e-15 {
		t.Fatalf("product structure violated: %v vs %v", full, want)
	}
}

func TestDensityNonNegativeAndFinite(t *testing.T) {
	d := gauss2(100, 1, 5)
	k, err := NewPoint(d, Options{ErrorAdjust: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range [][]float64{{0, 0}, {-100, 100}, {3, -3}} {
		v := k.Density(q)
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("density(%v) = %v", q, v)
		}
	}
}

func TestPaperKernelLowersMass(t *testing.T) {
	d := gauss2(100, 1.5, 6)
	norm, err := NewPoint(d, Options{ErrorAdjust: true})
	if err != nil {
		t.Fatal(err)
	}
	paper, err := NewPoint(d, Options{ErrorAdjust: true, PaperKernel: true})
	if err != nil {
		t.Fatal(err)
	}
	mN := Mass1D(norm, 0, -50, 50, 4000)
	mP := Mass1D(paper, 0, -50, 50, 4000)
	if !(mP < mN) {
		t.Fatalf("paper-kernel mass %v should be below normalized %v", mP, mN)
	}
	if math.Abs(mN-1) > 1e-3 {
		t.Fatalf("normalized mass = %v", mN)
	}
}

func TestClusterKDEMatchesPointKDEWhenOneClusterPerPoint(t *testing.T) {
	// With q >= N every micro-cluster holds exactly one point, Δ = ψ, and
	// Eq. 10 degenerates to Eq. 4 (up to the shared bandwidth source).
	d := gauss2(60, 0.8, 7)
	s := microcluster.Build(d, 60, nil)
	ck, err := NewCluster(s, Options{ErrorAdjust: true})
	if err != nil {
		t.Fatal(err)
	}
	pk, err := NewPoint(d, Options{ErrorAdjust: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range [][]float64{{-2, 0}, {0, 0}, {2, 1}} {
		a, b := ck.Density(q), pk.Density(q)
		if math.Abs(a-b) > 0.02*(a+b) {
			t.Fatalf("densities diverge at %v: cluster %v vs point %v", q, a, b)
		}
	}
}

func TestClusterKDEFidelityImprovesWithQ(t *testing.T) {
	// Average |f_q − f_exact| over probe points must shrink as q grows —
	// the granularity argument of §2.1.
	d := gauss2(500, 0.5, 8)
	pk, err := NewPoint(d, Options{ErrorAdjust: true})
	if err != nil {
		t.Fatal(err)
	}
	probes := [][]float64{{-3, 0}, {-2, 0}, {-1, 0}, {0, 0}, {1, 0}, {2, 0}, {3, 0}}
	errAt := func(q int) float64 {
		s := microcluster.Build(d, q, rng.New(9))
		ck, err := NewCluster(s, Options{ErrorAdjust: true})
		if err != nil {
			t.Fatal(err)
		}
		var tot float64
		for _, p := range probes {
			tot += math.Abs(ck.Density(p) - pk.Density(p))
		}
		return tot
	}
	e5, e100 := errAt(5), errAt(100)
	if !(e100 < e5) {
		t.Fatalf("fidelity did not improve: q=5 err %v, q=100 err %v", e5, e100)
	}
}

func TestClusterKDEWeightsBySize(t *testing.T) {
	// Two clusters, one with 9 points at -5 and one with 1 point at +5:
	// density near -5 must dominate.
	s := microcluster.NewSummarizer(2, 1)
	for i := 0; i < 9; i++ {
		s.Add([]float64{-5 + 0.01*float64(i)}, nil)
	}
	s.Add([]float64{5}, nil)
	k, err := NewCluster(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !(k.Density([]float64{-5}) > 5*k.Density([]float64{5})) {
		t.Fatalf("weighting wrong: %v vs %v",
			k.Density([]float64{-5}), k.Density([]float64{5}))
	}
	if k.Clusters() != 2 || k.Count() != 10 {
		t.Fatalf("Clusters/Count = %d/%d", k.Clusters(), k.Count())
	}
}

func TestClusterKDENoAdjustStillUsesVariance(t *testing.T) {
	// Cluster spread contributes to Δ even when error adjustment is off.
	s := microcluster.NewSummarizer(1, 1)
	for _, v := range []float64{-1, 1} {
		s.Add([]float64{v}, []float64{5}) // big recorded errors
	}
	adj, err := NewCluster(s, Options{ErrorAdjust: true})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NewCluster(s, Options{ErrorAdjust: false})
	if err != nil {
		t.Fatal(err)
	}
	// Ignoring the ψ statistics must sharpen the kernel at the centroid.
	if !(plain.Density([]float64{0}) > adj.Density([]float64{0})) {
		t.Fatal("ErrorAdjust=false did not drop the EF2 widening")
	}
}

func TestNewClusterRejectsEmpty(t *testing.T) {
	if _, err := NewCluster(microcluster.NewSummarizer(3, 1), Options{}); err == nil {
		t.Fatal("empty summarizer accepted")
	}
}

func TestDensityPanicsOnBadQuery(t *testing.T) {
	d := gauss2(10, 0, 10)
	k, err := NewPoint(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("short query did not panic")
			}
		}()
		k.Density([]float64{1})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("bad subspace did not panic")
			}
		}()
		k.DensitySub([]float64{1, 2}, []int{5})
	}()
}

func TestBandwidthForExposed(t *testing.T) {
	d := gauss2(100, 0, 11)
	k, _ := NewPoint(d, Options{})
	if k.BandwidthFor(0) <= 0 || k.BandwidthFor(1) <= 0 {
		t.Fatal("bandwidths must be positive")
	}
	s := microcluster.Build(d, 10, nil)
	ck, _ := NewCluster(s, Options{})
	if ck.BandwidthFor(0) <= 0 {
		t.Fatal("cluster bandwidth must be positive")
	}
}
