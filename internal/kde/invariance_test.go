package kde

import (
	"math"
	"testing"

	"udm/internal/rng"
)

// TestTranslationInvariance: shifting every value of a dimension by a
// constant shifts the density surface with it — densities at
// correspondingly shifted query points are identical (bandwidths depend
// only on spread).
func TestTranslationInvariance(t *testing.T) {
	d := gauss2(200, 0.5, 50)
	const shift = 1234.5
	shifted := d.Clone()
	for i := range shifted.X {
		shifted.X[i][0] += shift
	}
	a, err := NewPoint(d, Options{ErrorAdjust: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPoint(shifted, Options{ErrorAdjust: true})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(51)
	for trial := 0; trial < 50; trial++ {
		q := []float64{r.Norm(0, 3), r.Norm(0, 2)}
		qs := []float64{q[0] + shift, q[1]}
		fa, fb := a.Density(q), b.Density(qs)
		if math.Abs(fa-fb) > 1e-12*(1+fa) {
			t.Fatalf("translation broke invariance: %v vs %v", fa, fb)
		}
	}
}

// TestScaleEquivariance: scaling a dimension by s scales its marginal
// density by 1/s (total mass preserved).
func TestScaleEquivariance(t *testing.T) {
	d := gauss2(200, 0.3, 52)
	const s = 40.0
	scaled := d.Clone()
	for i := range scaled.X {
		scaled.X[i][0] *= s
		scaled.Err[i][0] *= s
	}
	a, err := NewPoint(d, Options{ErrorAdjust: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPoint(scaled, Options{ErrorAdjust: true})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(53)
	for trial := 0; trial < 50; trial++ {
		x := r.Norm(0, 3)
		fa := a.DensitySub([]float64{x, 0}, []int{0})
		fb := b.DensitySub([]float64{x * s, 0}, []int{0})
		if math.Abs(fa-fb*s) > 1e-9*(1+fa) {
			t.Fatalf("scaling broke equivariance: %v vs %v·%v", fa, fb, s)
		}
	}
}

// TestDensityIndependentOfRowOrder: the point estimator is a plain sum,
// so permuting rows cannot change any density.
func TestDensityIndependentOfRowOrder(t *testing.T) {
	d := gauss2(150, 0.4, 54)
	perm := rng.New(55).Perm(d.Len())
	shuffled := d.Subset(perm)
	a, err := NewPoint(d, Options{ErrorAdjust: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPoint(shuffled, Options{ErrorAdjust: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range [][]float64{{-2, 0}, {0, 1}, {2, -1}} {
		fa, fb := a.Density(q), b.Density(q)
		if math.Abs(fa-fb) > 1e-12*(1+fa) {
			t.Fatalf("row order changed density: %v vs %v", fa, fb)
		}
	}
}
