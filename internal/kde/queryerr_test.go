package kde

import (
	"math"
	"testing"

	"udm/internal/dataset"
	"udm/internal/kernel"
	"udm/internal/microcluster"
)

// singlePoint builds a dataset of one exact point at the origin.
func singlePoint(t *testing.T) *dataset.Dataset {
	t.Helper()
	d := dataset.New("x")
	if err := d.Append([]float64{0}, []float64{0}, dataset.Unlabeled); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDensityQAnalytic(t *testing.T) {
	// One point at 0, fixed bandwidth h: DensityQ at x with query error q
	// must be exactly N(x; 0, h² + q²).
	d := singlePoint(t)
	const h = 0.8
	est, err := NewPoint(d, Options{
		ErrorAdjust: true,
		Bandwidth:   kernel.Bandwidth{Rule: kernel.Fixed, Value: h},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ x, q float64 }{{0, 0}, {1, 0.5}, {2, 3}, {-1.5, 1}} {
		got := est.DensityQ([]float64{tc.x}, []float64{tc.q}, []int{0})
		sigma := math.Sqrt(h*h + tc.q*tc.q)
		want := math.Exp(-tc.x*tc.x/(2*sigma*sigma)) / (sigma * math.Sqrt(2*math.Pi))
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("DensityQ(%v, q=%v) = %v, want %v", tc.x, tc.q, got, want)
		}
	}
	// Nil query error reduces to DensitySub.
	if got, want := est.DensityQ([]float64{1}, nil, []int{0}),
		est.DensitySub([]float64{1}, []int{0}); got != want {
		t.Fatalf("nil qerr: %v vs %v", got, want)
	}
}

func TestDensityQWideningLowersFarPenalty(t *testing.T) {
	d := gauss2(300, 0.2, 40)
	est, err := NewPoint(d, Options{ErrorAdjust: true})
	if err != nil {
		t.Fatal(err)
	}
	far := []float64{15, 0}
	exact := est.DensityQ(far, []float64{0, 0}, []int{0, 1})
	fuzzy := est.DensityQ(far, []float64{10, 10}, []int{0, 1})
	if !(fuzzy > exact) {
		t.Fatalf("uncertain query %v should have higher expected density than exact %v", fuzzy, exact)
	}
}

func TestDensityQPanics(t *testing.T) {
	d := gauss2(20, 0, 41)
	est, err := NewPoint(d, Options{ErrorAdjust: true})
	if err != nil {
		t.Fatal(err)
	}
	for name, fn := range map[string]func(){
		"short qerr": func() { est.DensityQ([]float64{0, 0}, []float64{1}, []int{0}) },
		"bad dims":   func() { est.DensityQ([]float64{0, 0}, []float64{1, 1}, []int{9}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
	epan, err := NewPoint(d, Options{Kernel: kernel.Epanechnikov})
	if err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("non-Gaussian DensityQ did not panic")
			}
		}()
		epan.DensityQ([]float64{0, 0}, []float64{1, 1}, []int{0})
	}()
}

func TestLeaveOneOutDensityQDirect(t *testing.T) {
	// Three points; LOO-Q at point 0 must equal the hand-computed sum of
	// the other two kernels widened by point 0's own error.
	d := dataset.New("x")
	_ = d.Append([]float64{0}, []float64{2}, dataset.Unlabeled)
	_ = d.Append([]float64{1}, []float64{0}, dataset.Unlabeled)
	_ = d.Append([]float64{-1}, []float64{1}, dataset.Unlabeled)
	const h = 0.5
	est, err := NewPoint(d, Options{
		ErrorAdjust: true,
		Bandwidth:   kernel.Bandwidth{Rule: kernel.Fixed, Value: h},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := est.LeaveOneOutDensityQ(0, []int{0})
	norm := func(x, sigma2 float64) float64 {
		return math.Exp(-x*x/(2*sigma2)) / math.Sqrt(2*math.Pi*sigma2)
	}
	// Contribution of point 1 (ψ=0) with query error 2: var = h²+0+4.
	// Contribution of point 2 (ψ=1): var = h²+1+4.
	want := (norm(1, h*h+4) + norm(1, h*h+1+4)) / 2
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("LOO-Q = %v, want %v", got, want)
	}
}

func TestLeaveOneOutDensityQEdges(t *testing.T) {
	d := singlePoint(t)
	est, err := NewPoint(d, Options{ErrorAdjust: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := est.LeaveOneOutDensityQ(0, []int{0}); got != 0 {
		t.Fatalf("single-point LOO-Q = %v", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("out-of-range LOO-Q did not panic")
			}
		}()
		est.LeaveOneOutDensityQ(3, []int{0})
	}()
	// Without error adjustment LOO-Q equals plain LOO.
	d2 := gauss2(50, 1, 42)
	plain, err := NewPoint(d2, Options{ErrorAdjust: false})
	if err != nil {
		t.Fatal(err)
	}
	dims := []int{0, 1}
	if a, b := plain.LeaveOneOutDensityQ(3, dims), plain.LeaveOneOutDensity(3, dims); a != b {
		t.Fatalf("no-adjust LOO-Q %v != LOO %v", a, b)
	}
}

func TestClusterDensityQ(t *testing.T) {
	s := microcluster.NewSummarizer(2, 1)
	for _, v := range []float64{-2, -2, 2, 2} {
		s.Add([]float64{v}, []float64{0.1})
	}
	est, err := NewCluster(s, Options{ErrorAdjust: true})
	if err != nil {
		t.Fatal(err)
	}
	// Nil query error reduces to DensitySub.
	q := []float64{0}
	if got, want := est.DensityQ(q, nil, []int{0}), est.DensitySub(q, []int{0}); got != want {
		t.Fatalf("nil qerr: %v vs %v", got, want)
	}
	// A far query with huge own error sees higher expected density.
	far := []float64{20}
	if !(est.DensityQ(far, []float64{15}, []int{0}) > est.DensityQ(far, []float64{0.01}, []int{0})) {
		t.Fatal("query error did not raise the far expected density")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("mismatched qerr did not panic")
			}
		}()
		est.DensityQ([]float64{0}, []float64{1, 2}, []int{0})
	}()
}

func TestPointCountAccessor(t *testing.T) {
	d := gauss2(37, 0, 43)
	est, err := NewPoint(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if est.Count() != 37 {
		t.Fatalf("Count = %d", est.Count())
	}
}
