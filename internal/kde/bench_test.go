package kde

import (
	"fmt"
	"testing"

	"udm/internal/dataset"
	"udm/internal/kernel"
	"udm/internal/microcluster"
	"udm/internal/rng"
)

func BenchmarkPointDensity(b *testing.B) {
	for _, n := range []int{100, 1000} {
		d := gauss2(n, 0.5, 1)
		est, err := NewPoint(d, Options{ErrorAdjust: true})
		if err != nil {
			b.Fatal(err)
		}
		q := []float64{0.5, -0.2}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = est.Density(q)
			}
		})
	}
}

func BenchmarkClusterDensity(b *testing.B) {
	d := gauss2(2000, 0.5, 2)
	for _, q := range []int{20, 140} {
		s := microcluster.Build(d, q, rng.New(3))
		est, err := NewCluster(s, Options{ErrorAdjust: true})
		if err != nil {
			b.Fatal(err)
		}
		x := []float64{0.5, -0.2}
		b.Run(fmt.Sprintf("q=%d", q), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = est.Density(x)
			}
		})
	}
}

func BenchmarkClusterDensitySub1D(b *testing.B) {
	d := gauss2(2000, 0.5, 4)
	s := microcluster.Build(d, 140, rng.New(5))
	est, err := NewCluster(s, Options{ErrorAdjust: true})
	if err != nil {
		b.Fatal(err)
	}
	x := []float64{0.5, -0.2}
	dims := []int{0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = est.DensitySub(x, dims)
	}
}

// BenchmarkDensityBatch pins the batch engine against the serial loop
// at several worker counts; the serial/workers=1 pair exposes the
// fan-out overhead, larger counts the multicore speedup.
func BenchmarkDensityBatch(b *testing.B) {
	d := gauss2(1000, 0.5, 8)
	est, err := NewPoint(d, Options{ErrorAdjust: true})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, x := range d.X {
				_ = est.Density(x)
			}
		}
	})
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := est.DensityBatch(d.X, nil, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// blobGrid builds n points spread over a g×g grid of well-separated
// Gaussian blobs (spacing 20, blob σ 0.5, per-entry error e) — the
// clustered regime where far-field pruning should shine, since every
// query sees all but its own blob's kernels as negligible.
func blobGrid(n, g int, e float64, seed int64) *dataset.Dataset {
	r := rng.New(seed)
	d := dataset.New("x", "y")
	for i := 0; i < n; i++ {
		cell := i % (g * g)
		cx, cy := float64(cell%g)*20, float64(cell/g)*20
		row := []float64{r.Norm(cx, 0.5), r.Norm(cy, 0.5)}
		var er []float64
		if e > 0 {
			er = []float64{e, e}
		}
		_ = d.Append(row, er, dataset.Unlabeled)
	}
	return d
}

// BenchmarkDensityBatchPruned measures the far-field pruning win on
// clustered data: the same all-pairs batch as BenchmarkDensityBatch,
// over a 4×4 blob grid, in exact mode (Prune=0), pruned exact mode
// (Prune=1e-6, result within 1e-6 relative of exact), and pruned
// approximate mode (Approx(1e-6) fast exponential on top). The
// bandwidths are pinned to a CV-scale value so the run is deterministic
// and the bench gate's exact/pruned ratio is machine-independent.
func BenchmarkDensityBatchPruned(b *testing.B) {
	d := blobGrid(2000, 4, 0.2, 11)
	modes := []struct {
		name string
		opt  Options
	}{
		{"mode=exact", Options{ErrorAdjust: true, Bandwidths: []float64{0.35, 0.35}}},
		{"mode=pruned", Options{ErrorAdjust: true, Bandwidths: []float64{0.35, 0.35}, Prune: 1e-6}},
		{"mode=approx", Options{ErrorAdjust: true, Bandwidths: []float64{0.35, 0.35}, Prune: 1e-6, Accuracy: kernel.Approx(1e-6)}},
	}
	for _, m := range modes {
		est, err := NewPoint(d, m.opt)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(m.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := est.DensityBatch(d.X, nil, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCVBandwidthsWorkers times the parallel LOO bandwidth search.
func BenchmarkCVBandwidthsWorkers(b *testing.B) {
	d := gauss2(400, 0.5, 9)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := CVBandwidthsWorkers(d, true, nil, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSample(b *testing.B) {
	d := gauss2(500, 0.5, 6)
	est, err := NewPoint(d, Options{ErrorAdjust: true})
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.Sample(100, r); err != nil {
			b.Fatal(err)
		}
	}
}
