package kde

import (
	"fmt"
	"testing"

	"udm/internal/microcluster"
	"udm/internal/rng"
)

func BenchmarkPointDensity(b *testing.B) {
	for _, n := range []int{100, 1000} {
		d := gauss2(n, 0.5, 1)
		est, err := NewPoint(d, Options{ErrorAdjust: true})
		if err != nil {
			b.Fatal(err)
		}
		q := []float64{0.5, -0.2}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = est.Density(q)
			}
		})
	}
}

func BenchmarkClusterDensity(b *testing.B) {
	d := gauss2(2000, 0.5, 2)
	for _, q := range []int{20, 140} {
		s := microcluster.Build(d, q, rng.New(3))
		est, err := NewCluster(s, Options{ErrorAdjust: true})
		if err != nil {
			b.Fatal(err)
		}
		x := []float64{0.5, -0.2}
		b.Run(fmt.Sprintf("q=%d", q), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = est.Density(x)
			}
		})
	}
}

func BenchmarkClusterDensitySub1D(b *testing.B) {
	d := gauss2(2000, 0.5, 4)
	s := microcluster.Build(d, 140, rng.New(5))
	est, err := NewCluster(s, Options{ErrorAdjust: true})
	if err != nil {
		b.Fatal(err)
	}
	x := []float64{0.5, -0.2}
	dims := []int{0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = est.DensitySub(x, dims)
	}
}

// BenchmarkDensityBatch pins the batch engine against the serial loop
// at several worker counts; the serial/workers=1 pair exposes the
// fan-out overhead, larger counts the multicore speedup.
func BenchmarkDensityBatch(b *testing.B) {
	d := gauss2(1000, 0.5, 8)
	est, err := NewPoint(d, Options{ErrorAdjust: true})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, x := range d.X {
				_ = est.Density(x)
			}
		}
	})
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := est.DensityBatch(d.X, nil, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCVBandwidthsWorkers times the parallel LOO bandwidth search.
func BenchmarkCVBandwidthsWorkers(b *testing.B) {
	d := gauss2(400, 0.5, 9)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := CVBandwidthsWorkers(d, true, nil, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSample(b *testing.B) {
	d := gauss2(500, 0.5, 6)
	est, err := NewPoint(d, Options{ErrorAdjust: true})
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.Sample(100, r); err != nil {
			b.Fatal(err)
		}
	}
}
