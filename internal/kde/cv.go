package kde

import (
	"context"
	"fmt"
	"math"

	"udm/internal/dataset"
	"udm/internal/kernel"
	"udm/internal/obs"
	"udm/internal/parallel"
	"udm/internal/udmerr"
)

// DefaultCVGrid is the multiplier grid used by CVBandwidths when none is
// given: factors applied to the Silverman bandwidth, spanning a 4×
// range around it on a log scale.
var DefaultCVGrid = []float64{0.25, 0.35, 0.5, 0.7, 1.0, 1.4, 2.0, 2.8, 4.0}

// CVBandwidths selects one bandwidth per dimension by maximizing the
// leave-one-out log-likelihood of a one-dimensional Gaussian KDE over a
// multiplier grid around the Silverman rule — the standard data-driven
// refinement when the Silverman normal-reference assumption is poor
// (multi-modal or heavy-tailed dimensions). Per-entry errors are folded
// into each kernel when errorAdjust is set, so the selection is
// consistent with the error-adjusted estimator that will consume the
// result.
//
// Cost is O(grid · N² · d); intended for moderate N (it is a training-
// time, not query-time, computation). The O(N²) likelihood evaluations
// are independent per (dimension, multiplier) pair and are fanned out
// over GOMAXPROCS workers; use CVBandwidthsWorkers to pick the worker
// count explicitly. The returned slice plugs into Options.Bandwidths.
func CVBandwidths(ds *dataset.Dataset, errorAdjust bool, grid []float64) ([]float64, error) {
	return CVBandwidthsContext(context.Background(), ds, errorAdjust, grid, 0)
}

// CVBandwidthsWorkers is CVBandwidths with an explicit worker count
// (≤ 0 means GOMAXPROCS). Every (dimension, multiplier) cell of the
// selection grid is an independent leave-one-out likelihood computed by
// the same serial code regardless of the worker count, and the per-
// dimension argmax scans the grid in fixed order, so the selected
// bandwidths are bit-for-bit identical for every worker count.
func CVBandwidthsWorkers(ds *dataset.Dataset, errorAdjust bool, grid []float64, workers int) ([]float64, error) {
	return CVBandwidthsContext(context.Background(), ds, errorAdjust, grid, workers)
}

// CVBandwidthsContext is CVBandwidthsWorkers under a caller-supplied
// context: cancelling ctx aborts grid cells that have not started and
// returns ctx.Err().
func CVBandwidthsContext(ctx context.Context, ds *dataset.Dataset, errorAdjust bool, grid []float64, workers int) ([]float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, sp := obs.StartSpan(ctx, "kde.CVBandwidths")
	defer sp.End()
	if ds.Len() < 3 {
		return nil, fmt.Errorf("kde: CV bandwidth selection needs ≥ 3 rows, have %d: %w", ds.Len(), udmerr.ErrUntrained)
	}
	if grid == nil {
		grid = DefaultCVGrid
	}
	for _, m := range grid {
		if m <= 0 || math.IsNaN(m) || math.IsInf(m, 0) {
			return nil, fmt.Errorf("kde: invalid grid multiplier %v: %w", m, udmerr.ErrBadOption)
		}
	}
	d := ds.Dims()
	// Materialize the per-dimension columns and error columns once, up
	// front: they are shared read-only by all grid-cell workers.
	cols := make([][]float64, d)
	errCols := make([][]float64, d)
	base := make([]float64, d)
	rule := kernel.Bandwidth{Rule: kernel.Silverman}
	for j := 0; j < d; j++ {
		col := make([]float64, ds.Len())  //lint:allow hotalloc one column per dimension at fit time, not per query
		errs := make([]float64, ds.Len()) //lint:allow hotalloc one column per dimension at fit time, not per query
		for i := range ds.X {
			col[i] = ds.X[i][j]
			if errorAdjust && ds.Err != nil {
				errs[i] = ds.Err[i][j]
			}
		}
		cols[j], errCols[j] = col, errs
		base[j] = rule.FromValues(col, d)
	}
	// One task per (dimension, multiplier) grid cell.
	sp.Attr("rows", ds.Len()).Attr("cells", d*len(grid))
	cvCells.Add(int64(d * len(grid)))
	kernelEvals.Add(int64(d*len(grid)) * int64(ds.Len()) * int64(ds.Len()-1))
	lls, err := parallel.Map(ctx, d*len(grid), workers, func(t int) (float64, error) {
		j, m := t/len(grid), t%len(grid)
		return looLogLikelihood1D(cols[j], errCols[j], grid[m]*base[j]), nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]float64, d)
	for j := 0; j < d; j++ {
		bestH, bestLL := base[j], math.Inf(-1)
		for m, mult := range grid {
			if ll := lls[j*len(grid)+m]; ll > bestLL {
				bestH, bestLL = mult*base[j], ll
			}
		}
		out[j] = bestH
	}
	return out, nil
}

// looLogLikelihood1D returns Σ_i log f_{-i}(x_i) for a 1-D error-
// adjusted Gaussian KDE with bandwidth h. Points whose LOO density
// underflows contribute a large penalty instead of -Inf so a single
// isolated point cannot veto every bandwidth equally.
func looLogLikelihood1D(x, errs []float64, h float64) float64 {
	const floorLog = -700 // ≈ log of smallest positive float64
	n := len(x)
	var ll float64
	for i := 0; i < n; i++ {
		var sum float64
		for k := 0; k < n; k++ {
			if k == i {
				continue
			}
			sum += kernel.ErrAdjustedNormalized(x[i], x[k], h, errs[k])
		}
		f := sum / float64(n-1)
		if f > 0 {
			ll += math.Log(f)
		} else {
			ll += floorLog
		}
	}
	return ll
}

// CVLogLikelihood returns the total leave-one-out log-likelihood of the
// full product-kernel estimate under explicit per-dimension bandwidths —
// the model-selection score CVBandwidths optimizes, exposed for
// diagnostics and tests.
//
// The per-point LOO densities are evaluated in parallel; the total is a
// compensated sum of the per-point log terms taken in row order
// (parallel.Sum), so the score is bit-for-bit reproducible regardless
// of GOMAXPROCS. It is CVLogLikelihoodContext under
// context.Background().
func CVLogLikelihood(ds *dataset.Dataset, errorAdjust bool, bandwidths []float64) (float64, error) {
	return CVLogLikelihoodContext(context.Background(), ds, errorAdjust, bandwidths)
}

// CVLogLikelihoodContext is CVLogLikelihood under a caller-supplied
// context: cancelling ctx aborts per-point evaluations that have not
// started and returns ctx.Err().
func CVLogLikelihoodContext(ctx context.Context, ds *dataset.Dataset, errorAdjust bool, bandwidths []float64) (float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, sp := obs.StartSpan(ctx, "kde.CVLogLikelihood")
	defer sp.End()
	sp.Attr("rows", ds.Len())
	cvScores.Inc()
	if len(bandwidths) != ds.Dims() {
		return 0, fmt.Errorf("kde: %d bandwidths for %d dimensions: %w", len(bandwidths), ds.Dims(), udmerr.ErrDimensionMismatch)
	}
	opt := Options{ErrorAdjust: errorAdjust && ds.HasErrors(), Bandwidths: bandwidths}
	est, err := NewPoint(ds, opt)
	if err != nil {
		return 0, err
	}
	dims := allDims(ds.Dims())
	ll, err := parallel.Sum(ctx, ds.Len(), 0, func(i int) float64 {
		if f := est.LeaveOneOutDensity(i, dims); f > 0 {
			return math.Log(f)
		}
		return -700
	})
	if err != nil {
		return 0, err
	}
	if math.IsNaN(ll) {
		return 0, fmt.Errorf("kde: log-likelihood is NaN: %w", udmerr.ErrBadData)
	}
	return ll, nil
}
