package kde

import (
	"fmt"
	"math"

	"udm/internal/dataset"
	"udm/internal/kernel"
)

// DefaultCVGrid is the multiplier grid used by CVBandwidths when none is
// given: factors applied to the Silverman bandwidth, spanning a 4×
// range around it on a log scale.
var DefaultCVGrid = []float64{0.25, 0.35, 0.5, 0.7, 1.0, 1.4, 2.0, 2.8, 4.0}

// CVBandwidths selects one bandwidth per dimension by maximizing the
// leave-one-out log-likelihood of a one-dimensional Gaussian KDE over a
// multiplier grid around the Silverman rule — the standard data-driven
// refinement when the Silverman normal-reference assumption is poor
// (multi-modal or heavy-tailed dimensions). Per-entry errors are folded
// into each kernel when errorAdjust is set, so the selection is
// consistent with the error-adjusted estimator that will consume the
// result.
//
// Cost is O(grid · N² · d); intended for moderate N (it is a training-
// time, not query-time, computation). The returned slice plugs into
// Options.Bandwidths.
func CVBandwidths(ds *dataset.Dataset, errorAdjust bool, grid []float64) ([]float64, error) {
	if ds.Len() < 3 {
		return nil, fmt.Errorf("kde: CV bandwidth selection needs ≥ 3 rows, have %d", ds.Len())
	}
	if grid == nil {
		grid = DefaultCVGrid
	}
	for _, m := range grid {
		if m <= 0 || math.IsNaN(m) || math.IsInf(m, 0) {
			return nil, fmt.Errorf("kde: invalid grid multiplier %v", m)
		}
	}
	d := ds.Dims()
	out := make([]float64, d)
	col := make([]float64, ds.Len())
	errs := make([]float64, ds.Len())
	rule := kernel.Bandwidth{Rule: kernel.Silverman}
	for j := 0; j < d; j++ {
		for i := range ds.X {
			col[i] = ds.X[i][j]
			if errorAdjust && ds.Err != nil {
				errs[i] = ds.Err[i][j]
			} else {
				errs[i] = 0
			}
		}
		base := rule.FromValues(col, d)
		bestH, bestLL := base, math.Inf(-1)
		for _, m := range grid {
			h := m * base
			ll := looLogLikelihood1D(col, errs, h)
			if ll > bestLL {
				bestH, bestLL = h, ll
			}
		}
		out[j] = bestH
	}
	return out, nil
}

// looLogLikelihood1D returns Σ_i log f_{-i}(x_i) for a 1-D error-
// adjusted Gaussian KDE with bandwidth h. Points whose LOO density
// underflows contribute a large penalty instead of -Inf so a single
// isolated point cannot veto every bandwidth equally.
func looLogLikelihood1D(x, errs []float64, h float64) float64 {
	const floorLog = -700 // ≈ log of smallest positive float64
	n := len(x)
	var ll float64
	for i := 0; i < n; i++ {
		var sum float64
		for k := 0; k < n; k++ {
			if k == i {
				continue
			}
			sum += kernel.ErrAdjustedNormalized(x[i], x[k], h, errs[k])
		}
		f := sum / float64(n-1)
		if f > 0 {
			ll += math.Log(f)
		} else {
			ll += floorLog
		}
	}
	return ll
}

// CVLogLikelihood returns the total leave-one-out log-likelihood of the
// full product-kernel estimate under explicit per-dimension bandwidths —
// the model-selection score CVBandwidths optimizes, exposed for
// diagnostics and tests.
func CVLogLikelihood(ds *dataset.Dataset, errorAdjust bool, bandwidths []float64) (float64, error) {
	if len(bandwidths) != ds.Dims() {
		return 0, fmt.Errorf("kde: %d bandwidths for %d dimensions", len(bandwidths), ds.Dims())
	}
	opt := Options{ErrorAdjust: errorAdjust && ds.HasErrors(), Bandwidths: bandwidths}
	est, err := NewPoint(ds, opt)
	if err != nil {
		return 0, err
	}
	dims := allDims(ds.Dims())
	var ll float64
	for i := 0; i < ds.Len(); i++ {
		f := est.LeaveOneOutDensity(i, dims)
		if f > 0 {
			ll += math.Log(f)
		} else {
			ll += -700
		}
	}
	if math.IsNaN(ll) {
		return 0, fmt.Errorf("kde: log-likelihood is NaN")
	}
	return ll, nil
}
