package kde

import (
	"math"
	"testing"

	"udm/internal/dataset"
	"udm/internal/kernel"
	"udm/internal/rng"
)

func TestCVBandwidthsBeatsSilvermanOnBimodal(t *testing.T) {
	// Silverman's normal-reference rule oversmooths bimodal data (σ spans
	// both modes); CV should pick a smaller bandwidth and a higher LOO
	// likelihood.
	d := dataset.New("x")
	r := rng.New(1)
	for i := 0; i < 300; i++ {
		c := -4.0
		if i%2 == 1 {
			c = 4.0
		}
		_ = d.Append([]float64{r.Norm(c, 0.5)}, nil, dataset.Unlabeled)
	}
	cv, err := CVBandwidths(d, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	col := make([]float64, d.Len())
	for i := range d.X {
		col[i] = d.X[i][0]
	}
	silverman := kernel.Bandwidth{Rule: kernel.Silverman}.FromValues(col, 1)
	if !(cv[0] < silverman) {
		t.Fatalf("CV bandwidth %v should be below Silverman %v on bimodal data", cv[0], silverman)
	}
	llCV, err := CVLogLikelihood(d, false, cv)
	if err != nil {
		t.Fatal(err)
	}
	llSil, err := CVLogLikelihood(d, false, []float64{silverman})
	if err != nil {
		t.Fatal(err)
	}
	if !(llCV > llSil) {
		t.Fatalf("CV likelihood %v not above Silverman's %v", llCV, llSil)
	}
}

func TestCVBandwidthsNearSilvermanOnGaussian(t *testing.T) {
	// On genuinely Gaussian data the CV choice should stay within the
	// grid's neighborhood of Silverman (factor ≤ 2 either way).
	d := dataset.New("x")
	r := rng.New(2)
	for i := 0; i < 400; i++ {
		_ = d.Append([]float64{r.Norm(0, 1)}, nil, dataset.Unlabeled)
	}
	cv, err := CVBandwidths(d, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	col := make([]float64, d.Len())
	for i := range d.X {
		col[i] = d.X[i][0]
	}
	silverman := kernel.Bandwidth{Rule: kernel.Silverman}.FromValues(col, 1)
	ratio := cv[0] / silverman
	if ratio < 0.45 || ratio > 2.2 {
		t.Fatalf("CV/Silverman ratio %v suspicious on Gaussian data", ratio)
	}
}

func TestCVBandwidthsPerDimension(t *testing.T) {
	// Dim 0 bimodal (wants small h), dim 1 unimodal: chosen bandwidths
	// must differ and be positive.
	d := dataset.New("a", "b")
	r := rng.New(3)
	for i := 0; i < 200; i++ {
		c := -5.0
		if i%2 == 1 {
			c = 5.0
		}
		_ = d.Append([]float64{r.Norm(c, 0.3), r.Norm(0, 1)}, nil, dataset.Unlabeled)
	}
	cv, err := CVBandwidths(d, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cv) != 2 || cv[0] <= 0 || cv[1] <= 0 {
		t.Fatalf("bandwidths %v", cv)
	}
}

func TestCVBandwidthsValidation(t *testing.T) {
	d := dataset.New("x")
	_ = d.Append([]float64{1}, nil, dataset.Unlabeled)
	_ = d.Append([]float64{2}, nil, dataset.Unlabeled)
	if _, err := CVBandwidths(d, false, nil); err == nil {
		t.Error("2 rows accepted")
	}
	_ = d.Append([]float64{3}, nil, dataset.Unlabeled)
	if _, err := CVBandwidths(d, false, []float64{0}); err == nil {
		t.Error("zero grid multiplier accepted")
	}
	if _, err := CVBandwidths(d, false, []float64{math.NaN()}); err == nil {
		t.Error("NaN grid multiplier accepted")
	}
}

func TestExplicitBandwidthsInOptions(t *testing.T) {
	d := gauss2(50, 0, 20)
	est, err := NewPoint(d, Options{Bandwidths: []float64{0.5, 0.7}})
	if err != nil {
		t.Fatal(err)
	}
	if est.BandwidthFor(0) != 0.5 || est.BandwidthFor(1) != 0.7 {
		t.Fatalf("explicit bandwidths not applied: %v, %v",
			est.BandwidthFor(0), est.BandwidthFor(1))
	}
	if _, err := NewPoint(d, Options{Bandwidths: []float64{1}}); err == nil {
		t.Error("wrong bandwidth count accepted")
	}
	if _, err := NewPoint(d, Options{Bandwidths: []float64{1, -1}}); err == nil {
		t.Error("negative bandwidth accepted")
	}
}

func TestCVLogLikelihoodValidation(t *testing.T) {
	d := gauss2(20, 0, 21)
	if _, err := CVLogLikelihood(d, false, []float64{1}); err == nil {
		t.Error("wrong bandwidth count accepted")
	}
}
