package kde

import (
	"math"

	"udm/internal/num"
)

// This file implements far-field truncation for the batch density
// paths: a depth-first walk of the k-d tree over the kernel centers
// that discards whole subtrees whose maximum possible contribution is
// provably below the caller's relative budget (Options.Prune). Wells &
// Ting (arXiv:1707.00783) show this style of spatial pruning recovers
// orders of magnitude on clustered data without giving up an error
// guarantee.
//
// Bound derivation. For a subtree holding mass m (point count, or
// weight sum for clusters), every per-dimension factor of every member
// kernel is at most
//
//	UB_j = 1/(√(2π)·σ_lo) · exp(−dmin_j² / (2·σ_hi²))
//
// where dmin_j is the distance from the query coordinate to the
// subtree's bounding interval on dimension j (0 inside), σ_lo is the
// smallest widened bandwidth any member can have (ψ at the subtree's
// per-dimension minimum) and σ_hi the largest. Both inequalities hold
// factor-wise: 1/σ ≤ 1/σ_lo and the exponential is monotone in both d
// and σ. The subtree's total contribution is therefore ≤ B = m·∏ UB_j.
//
// The walk keeps a running kept-sum S and prunes a subtree iff
//
//	B ≤ tol · (m/N) · S
//
// Summing over all pruned subtrees: Σ B_k ≤ tol·S_final·Σ(m_k/N) ≤
// tol·S_final, so the absolute truncation error is at most tol times
// the kept sum and the relative error of the returned density is at
// most tol (contributions are nonnegative, so S only grows and the
// bound at prune time only strengthens). Visiting the near child first
// grows S as fast as possible, which is what makes the test bite.
//
// tol = 0 never prunes — the engine does not even take this path then,
// so exact unpruned batches stay bit-identical to the scalar loop.

// pruneLeaf is the subtree size below which the walk stops testing the
// bound and just evaluates the contiguous preorder span: at that size
// the bound arithmetic costs as much as the evaluations it could save.
const pruneLeaf = 16

// pruneSafety inflates the bound by 1 part in 10⁹ before comparing, so
// last-ulp rounding differences between the bound's σ arithmetic and
// the per-entry widths can never flip a pruning decision past the
// guarantee. The slack is absorbed into tol's own budget (it is a
// million times smaller than any sane tol).
const pruneSafety = 1 + 1e-9

// walker carries one query's pruned traversal state.
type walker struct {
	e       *engine
	q       []float64
	qerr    []float64 // nil for a certain query
	q2      []float64 // qerr², per dimension (nil when qerr is nil)
	dims    []int
	exp     func(float64) float64
	sum     float64
	skipped int64
	q2buf   [16]float64
}

// densityPruned evaluates the estimate at q over dims with far-field
// truncation at relative budget e.prune. qerr, when non-nil, is folded
// into every width exactly as in the flat DensityQ path.
func (e *engine) densityPruned(q []float64, dims []int, qerr []float64) float64 {
	w := walker{e: e, q: q, dims: dims, qerr: qerr, exp: e.expFn(len(dims))}
	if qerr != nil {
		if e.d <= len(w.q2buf) {
			w.q2 = w.q2buf[:e.d]
		} else {
			w.q2 = make([]float64, e.d)
		}
		for j, v := range qerr {
			w.q2[j] = v * v
		}
	}
	w.walk(e.tree.Root())
	kernelEvalsPruned.Add(w.skipped)
	return w.sum / e.total
}

// walk visits one subtree: prune it, evaluate it whole, or split.
func (w *walker) walk(ni int) {
	if ni < 0 {
		return
	}
	e, sub := w.e, w.e.sub
	m := float64(sub.Count[ni])
	if sub.WSum != nil {
		m = sub.WSum[ni]
	}
	b := m
	for _, j := range w.dims {
		b *= w.boundFactor(ni, j)
	}
	if b*pruneSafety <= e.prune*(m/e.total)*w.sum {
		w.skipped += int64(sub.Count[ni])
		return
	}
	lo := int(sub.Lo[ni])
	if int(sub.Count[ni]) <= pruneLeaf {
		w.evalSpan(lo, int(sub.Hi[ni]))
		return
	}
	// The node's own point sits first in its preorder span.
	w.evalSpan(lo, lo+1)
	_, axis, left, right := e.tree.Node(ni)
	near, far := left, right
	if w.q[axis] > e.pcols[axis][lo] {
		near, far = right, left
	}
	w.walk(near)
	w.walk(far)
}

// boundFactor is UB_j for subtree ni: the largest value any member's
// dimension-j kernel factor can take at the query.
func (w *walker) boundFactor(ni, j int) float64 {
	e := w.e
	d := e.d
	lo, hi := e.sub.Min[ni*d+j], e.sub.Max[ni*d+j]
	qj := w.q[j]
	var dmin float64
	switch {
	case qj < lo:
		dmin = lo - qj
	case qj > hi:
		dmin = qj - hi
	}
	var psiLo, psiHi float64
	if e.sub.AuxMin != nil {
		psiLo, psiHi = e.sub.AuxMin[ni*d+j], e.sub.AuxMax[ni*d+j]
	}
	h := e.h[j]
	var q2 float64
	if w.q2 != nil {
		q2 = w.q2[j]
	}
	s2hi := h*h + psiHi*psiHi + q2
	var normHi float64
	if w.qerr == nil && (e.mode == modePaperMixed || e.mode == modePaperAll) {
		// Eq. 3's normalizer 1/(√(2π)(h+ψ)) is maximized at ψ_lo; the
		// DensityQ path always uses the normalized kernel, hence the
		// qerr guard.
		normHi = num.InvSqrt2Pi / (h + psiLo)
	} else {
		normHi = num.InvSqrt2Pi / math.Sqrt(h*h+psiLo*psiLo+q2)
	}
	return normHi * math.Exp(-dmin*dmin/(2*s2hi))
}

// evalSpan adds the exact contribution of preorder positions [lo, hi).
// Point-major over the permuted columns: spans are contiguous, and the
// handful of dimensions per point stay in registers.
func (w *walker) evalSpan(lo, hi int) {
	e := w.e
	for t := lo; t < hi; t++ {
		prod := 1.0
		if e.pwts != nil {
			prod = e.pwts[t]
		}
		for _, j := range w.dims {
			prod *= w.factor(j, t)
		}
		w.sum += prod
	}
}

// factor is the dimension-j kernel factor of preorder entry t,
// reproducing the scalar paths' op sequences per mode.
func (w *walker) factor(j, t int) float64 {
	e := w.e
	qj := w.q[j]
	c := e.pcols[j][t]
	h := e.h[j]
	if w.qerr != nil {
		q2 := w.q2[j]
		var psi float64
		if e.ppsiSq != nil {
			psi = math.Sqrt(q2 + e.ppsiSq[j][t])
		} else {
			psi = math.Sqrt(q2)
		}
		sigma := math.Sqrt(h*h + psi*psi)
		z := (qj - c) / sigma
		return num.InvSqrt2Pi / sigma * w.exp(-0.5*z*z)
	}
	switch e.mode {
	case modePlain:
		z := (qj - c) / h
		return num.InvSqrt2Pi / h * w.exp(-0.5*z*z)
	case modeWidth:
		wd := e.pwidth[j][t]
		z := (qj - c) / wd
		return num.InvSqrt2Pi / wd * w.exp(-0.5*z*z)
	case modePaperMixed:
		if e.ppsi[j][t] == 0 {
			z := (qj - c) / h
			return num.InvSqrt2Pi / h * w.exp(-0.5*z*z)
		}
		d := qj - c
		return e.pnorm[j][t] * w.exp(-d*d/e.ptv[j][t])
	default: // modePaperAll
		d := qj - c
		return e.pnorm[j][t] * w.exp(-d*d/e.ptv[j][t])
	}
}
