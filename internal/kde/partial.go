package kde

import (
	"fmt"

	"udm/internal/kernel"
	"udm/internal/parallel"
	"udm/internal/udmerr"
)

// This file is the shard-side half of the distributed density protocol
// (internal/distrib): instead of a scalar density, a shard returns the
// per-cluster weighted kernel product TERMS of Eq. 9 for its local
// micro-clusters, computed under globally-agreed bandwidths. The
// front tier concatenates the term vectors in fixed shard-index order
// and performs the single left-to-right sum over them, divided by the
// global point count — exactly the reduction DensitySub runs over the
// merged cluster set, so the fan-out answer is bit-identical to the
// single-node one. The heavy exponential work stays on the shards; the
// merge is one cheap ordered sum.

// PartialTerms writes the per-cluster term n(C_i)·Π_{j∈dims} Q'(x_j)
// for every micro-cluster of the estimate into dst (allocated when
// nil; otherwise len(dst) must be Clusters()). The terms reproduce
// DensitySub's inner loop bit-for-bit: summing them left to right in
// cluster order and dividing by Count() yields DensitySub(x, dims)
// exactly. A nil dims means all dimensions. Like the other per-query
// methods, dimension misuse panics.
func (k *ClusterKDE) PartialTerms(x []float64, dims []int, dst []float64) []float64 {
	if len(x) != len(k.h) {
		panic(fmt.Sprintf("kde: query point has %d dims, estimator has %d", len(x), len(k.h)))
	}
	if dims == nil {
		dims = allDims(len(k.h))
	}
	checkDims(dims, len(k.h))
	if dst == nil {
		dst = make([]float64, len(k.cents))
	} else if len(dst) != len(k.cents) {
		panic(fmt.Sprintf("kde: term buffer has %d slots, estimator has %d clusters", len(dst), len(k.cents)))
	}
	for i, c := range k.cents {
		prod := k.weights[i]
		for _, j := range dims {
			if k.opt.PaperKernel {
				prod *= kernel.ErrAdjustedPaper(x[j], c[j], k.h[j], k.deltas[i][j])
			} else {
				prod *= kernel.ErrAdjustedNormalized(x[j], c[j], k.h[j], k.deltas[i][j])
			}
			if prod == 0 {
				break
			}
		}
		dst[i] = prod
	}
	return dst
}

// PartialTermsBatch returns PartialTerms for every row of X over dims
// (nil = all dimensions), fanned out across up to
// parallel.Workers(opt.Workers) goroutines. Row i's terms land in slot
// i of the result, so output is bit-for-bit identical for every worker
// count. Malformed rows or dims surface as errors wrapping
// udmerr.ErrDimensionMismatch, matching the batch density paths.
func (k *ClusterKDE) PartialTermsBatch(X [][]float64, dims []int, opt BatchOptions) ([][]float64, error) {
	d := len(k.h)
	for i, x := range X {
		if len(x) != d {
			return nil, fmt.Errorf("kde: row %d has %d dims, estimator has %d: %w", i, len(x), d, udmerr.ErrDimensionMismatch)
		}
	}
	for _, j := range dims {
		if j < 0 || j >= d {
			return nil, fmt.Errorf("kde: subspace dimension %d out of range [0,%d): %w", j, d, udmerr.ErrDimensionMismatch)
		}
	}
	if dims == nil {
		dims = allDims(d)
	}
	nc := len(k.cents)
	// One flat backing array for every row's terms, sliced per row —
	// the batch allocates twice no matter how many rows or clusters.
	flat := make([]float64, len(X)*nc)
	out := make([][]float64, len(X))
	err := parallel.For(opt.ctx(), len(X), opt.workers(), func(start, end int) error {
		for i := start; i < end; i++ {
			row := flat[i*nc : (i+1)*nc : (i+1)*nc]
			k.PartialTerms(X[i], dims, row)
			out[i] = row
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
