package kde

import (
	"errors"
	"math"
	"testing"

	"udm/internal/microcluster"
	"udm/internal/rng"
	"udm/internal/udmerr"
)

// partialSummarizer builds a deterministic 3-D summary for the partial
// term tests.
func partialSummarizer(seed int64, n, q int) *microcluster.Summarizer {
	r := rng.New(seed)
	s := microcluster.NewSummarizer(q, 3)
	for i := 0; i < n; i++ {
		x := []float64{r.Norm(0, 1), r.Norm(5, 2), r.Norm(-2, 0.5)}
		e := []float64{math.Abs(r.Norm(0, 0.1)), math.Abs(r.Norm(0, 0.3)), 0}
		s.AddAt(x, e, int64(i+1))
	}
	return s
}

func partialQueries(seed int64, n int) [][]float64 {
	r := rng.New(seed)
	out := make([][]float64, n)
	for i := range out {
		out[i] = []float64{r.Norm(0, 2), r.Norm(5, 3), r.Norm(-2, 1)}
	}
	return out
}

// TestPartialTermsReproduceDensity is the bit-contract behind the
// distributed fan-out: summing the per-cluster terms left to right in
// cluster order and dividing by Count() must reproduce DensitySub — and
// therefore the batch engine, which is regression-tested against it —
// to the bit.
func TestPartialTermsReproduceDensity(t *testing.T) {
	s := partialSummarizer(3, 500, 8)
	for _, opt := range []Options{
		{ErrorAdjust: true},
		{ErrorAdjust: false},
		{ErrorAdjust: true, PaperKernel: true},
	} {
		est, err := NewCluster(s, opt)
		if err != nil {
			t.Fatal(err)
		}
		for _, dims := range [][]int{nil, {0}, {1, 2}, {2, 0}} {
			for qi, x := range partialQueries(17, 25) {
				terms := est.PartialTerms(x, dims, nil)
				if len(terms) != est.Clusters() {
					t.Fatalf("%d terms for %d clusters", len(terms), est.Clusters())
				}
				var sum float64
				for _, v := range terms {
					sum += v
				}
				got := sum / float64(est.Count())
				var want float64
				if dims == nil {
					want = est.Density(x)
				} else {
					want = est.DensitySub(x, dims)
				}
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("opt=%+v dims=%v query %d: ordered term sum %v != DensitySub %v", opt, dims, qi, got, want)
				}
			}
		}
	}
}

// TestPartialTermsBatch checks the batch form: positional agreement
// with the per-query method, bit-identical for every worker count, and
// batch-path validation errors instead of panics.
func TestPartialTermsBatch(t *testing.T) {
	s := partialSummarizer(5, 400, 6)
	est, err := NewCluster(s, Options{ErrorAdjust: true})
	if err != nil {
		t.Fatal(err)
	}
	X := partialQueries(23, 40)
	base, err := est.PartialTermsBatch(X, nil, BatchOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range X {
		one := est.PartialTerms(x, nil, nil)
		for c := range one {
			if math.Float64bits(base[i][c]) != math.Float64bits(one[c]) {
				t.Fatalf("row %d cluster %d: batch %v != per-query %v", i, c, base[i][c], one[c])
			}
		}
	}
	for _, workers := range []int{2, 4, 0} {
		got, err := est.PartialTermsBatch(X, nil, BatchOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			for c := range got[i] {
				if math.Float64bits(got[i][c]) != math.Float64bits(base[i][c]) {
					t.Fatalf("workers=%d row %d cluster %d differs", workers, i, c)
				}
			}
		}
	}
	if _, err := est.PartialTermsBatch([][]float64{{1, 2}}, nil, BatchOptions{}); !errors.Is(err, udmerr.ErrDimensionMismatch) {
		t.Fatalf("short row: got %v, want ErrDimensionMismatch", err)
	}
	if _, err := est.PartialTermsBatch(X[:1], []int{3}, BatchOptions{}); !errors.Is(err, udmerr.ErrDimensionMismatch) {
		t.Fatalf("bad subspace dim: got %v, want ErrDimensionMismatch", err)
	}
}

// TestPartialTermsSharded runs the whole distributed reduction at the
// library level: partial summaries on k shards evaluate terms under the
// merged summary's bandwidths, the front tier concatenates the term
// vectors in shard-index order and performs the one ordered sum — which
// must equal the single-node batch answer over the merged summary to
// the bit, for every shard count.
func TestPartialTermsSharded(t *testing.T) {
	r := rng.New(9)
	n := 600
	xs := make([][]float64, n)
	errs := make([][]float64, n)
	for i := range xs {
		xs[i] = []float64{r.Norm(0, 1), r.Norm(4, 2), r.Norm(-1, 0.7)}
		errs[i] = []float64{math.Abs(r.Norm(0, 0.2)), 0, math.Abs(r.Norm(0, 0.1))}
	}
	X := partialQueries(31, 30)
	for _, k := range []int{1, 2, 4, 8} {
		parts := make([]*microcluster.Summarizer, k)
		for i := range parts {
			parts[i] = microcluster.NewSummarizer(4, 3)
		}
		for i := range xs {
			parts[i%k].AddAt(xs[i], errs[i], int64(i+1))
		}
		merged, err := microcluster.MergeSummarizers(parts...)
		if err != nil {
			t.Fatal(err)
		}
		single, err := NewCluster(merged, Options{ErrorAdjust: true})
		if err != nil {
			t.Fatal(err)
		}
		want, err := DensityBatchOpts(single, X, nil, BatchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		// Global bandwidths from the merged summary, shipped to shards.
		h := make([]float64, 3)
		for j := range h {
			h[j] = single.BandwidthFor(j)
		}
		total := float64(single.Count())
		perShard := make([][][]float64, k)
		for si, p := range parts {
			shardEst, err := NewCluster(p, Options{ErrorAdjust: true, Bandwidths: h})
			if err != nil {
				t.Fatal(err)
			}
			perShard[si], err = shardEst.PartialTermsBatch(X, nil, BatchOptions{})
			if err != nil {
				t.Fatal(err)
			}
		}
		for qi := range X {
			var sum float64
			for si := 0; si < k; si++ {
				for _, v := range perShard[si][qi] {
					sum += v
				}
			}
			got := sum / total
			if math.Float64bits(got) != math.Float64bits(want[qi]) {
				t.Fatalf("k=%d query %d: fan-out %v != single-node %v", k, qi, got, want[qi])
			}
		}
	}
}
