package kde

import "udm/internal/obs"

// Hot-path telemetry. Batch entry points count work at batch
// granularity — one span and a handful of atomic adds per call, never
// per kernel evaluation — so instrumentation overhead stays within the
// ≤5% budget on DensityBatch. Everything here is observational:
// numeric results are bit-for-bit identical with telemetry on or off.
var (
	densityBatches = obs.Default().Counter("udm_kde_batches_total",
		"batch density evaluations started", "op", "density")
	densityQBatches = obs.Default().Counter("udm_kde_batches_total",
		"batch density evaluations started", "op", "density_q")
	looBatches = obs.Default().Counter("udm_kde_batches_total",
		"batch density evaluations started", "op", "loo")
	kernelEvals = obs.Default().Counter("udm_kde_kernel_evals_total",
		"kernel evaluations implied by batch calls (queries x training points)")
	kernelEvalsPruned = obs.Default().Counter("udm_kde_kernel_evals_pruned_total",
		"implied kernel evaluations skipped by far-field subtree pruning")
	cvCells = obs.Default().Counter("udm_kde_cv_cells_total",
		"leave-one-out grid cells evaluated by CV bandwidth selection")
	cvScores = obs.Default().Counter("udm_kde_cv_scores_total",
		"full-model CV log-likelihood evaluations")
)
