package kde

import (
	"context"
	"fmt"

	"udm/internal/kernel"
	"udm/internal/obs"
	"udm/internal/parallel"
	"udm/internal/udmerr"
)

// QEstimator is an Estimator that can also evaluate the expected
// density at an uncertain query point (a query with its own per-
// dimension standard errors). Both PointKDE and ClusterKDE satisfy it.
type QEstimator interface {
	Estimator
	// DensityQ returns E[f(X)] for X ~ N(x, diag(qerr²)) over dims.
	DensityQ(x, qerr []float64, dims []int) float64
}

// DensityBatch evaluates est at every row of X over the dimension
// subset dims (nil means all dimensions), fanning the rows out over up
// to parallel.Workers(workers) goroutines. Every result is written to
// its own slot, so the output is bit-for-bit identical for every worker
// count. Estimators are read-only after construction and therefore safe
// to share across the workers. Cancelling ctx (nil =
// context.Background()) aborts the batch and returns ctx.Err().
//
// Gaussian-kernel estimators run on the SoA column engine, which in
// exact mode with Options.Prune == 0 performs the scalar DensitySub's
// floating-point operations in the same order — batch results stay
// bit-identical to the per-query path. With Prune > 0 far subtrees are
// truncated within the configured relative budget; a non-exact
// AccuracyMode additionally swaps in the bounded-error fast
// exponential. Other kernels take the scalar fallback.
//
// Unlike the per-query methods, malformed input surfaces as an error,
// not a panic: rows and dims are validated up front.
func DensityBatch(ctx context.Context, est Estimator, X [][]float64, dims []int, workers int) ([]float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, sp := obs.StartSpan(ctx, "kde.DensityBatch")
	defer sp.End()
	densityBatches.Inc()
	kernelEvals.Add(int64(len(X)) * int64(est.Count()))
	dims, err := batchDims(est, X, dims)
	if err != nil {
		return nil, err
	}
	sp.Attr("points", len(X)).Attr("dims", len(dims))
	if e := fastEngine(est); e != nil {
		return parallel.MapChunks(ctx, len(X), workers, func(start, end int, out []float64) error {
			sc := e.scratch()
			defer e.release(sc)
			for i := start; i < end; i++ {
				out[i-start] = e.density(X[i], dims, sc)
			}
			return nil
		})
	}
	return parallel.Map(ctx, len(X), workers, func(i int) (float64, error) {
		return est.DensitySub(X[i], dims), nil
	})
}

// fastEngine returns est's SoA engine, or nil when the estimator has
// none (non-Gaussian kernel, or an estimator type from outside this
// package).
func fastEngine(est Estimator) *engine {
	switch k := est.(type) {
	case *PointKDE:
		return k.eng
	case *ClusterKDE:
		return k.eng
	}
	return nil
}

// DensityQBatch is the uncertain-query variant of DensityBatch: row i
// is evaluated with per-dimension query errors Qerr[i] folded into
// every kernel. Qerr may be nil (all queries certain, reducing to
// DensityBatch) and individual Qerr rows may be nil (that query is
// certain). Results are bit-for-bit identical for every worker count.
func DensityQBatch(ctx context.Context, est QEstimator, X, Qerr [][]float64, dims []int, workers int) ([]float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, sp := obs.StartSpan(ctx, "kde.DensityQBatch")
	defer sp.End()
	densityQBatches.Inc()
	kernelEvals.Add(int64(len(X)) * int64(est.Count()))
	dims, err := batchDims(est, X, dims)
	if err != nil {
		return nil, err
	}
	sp.Attr("points", len(X)).Attr("dims", len(dims))
	if Qerr != nil && len(Qerr) != len(X) {
		return nil, fmt.Errorf("kde: %d query-error rows for %d queries: %w", len(Qerr), len(X), udmerr.ErrDimensionMismatch)
	}
	for i, er := range Qerr {
		if er != nil && len(er) != est.Dims() {
			return nil, fmt.Errorf("kde: query-error row %d has %d dims, estimator has %d: %w", i, len(er), est.Dims(), udmerr.ErrDimensionMismatch)
		}
	}
	if e := fastEngine(est); e != nil {
		return parallel.MapChunks(ctx, len(X), workers, func(start, end int, out []float64) error {
			sc := e.scratch()
			defer e.release(sc)
			for i := start; i < end; i++ {
				var qe []float64
				if Qerr != nil {
					qe = Qerr[i]
				}
				out[i-start] = e.densityQ(X[i], qe, dims, sc)
			}
			return nil
		})
	}
	return parallel.Map(ctx, len(X), workers, func(i int) (float64, error) {
		if Qerr == nil {
			return est.DensityQ(X[i], nil, dims), nil
		}
		return est.DensityQ(X[i], Qerr[i], dims), nil
	})
}

// batchDims validates the query rows and the dimension subset for a
// batch evaluation, resolving a nil dims to all dimensions.
func batchDims(est Estimator, X [][]float64, dims []int) ([]int, error) {
	d := est.Dims()
	for i, x := range X {
		if len(x) != d {
			return nil, fmt.Errorf("kde: query row %d has %d dims, estimator has %d: %w", i, len(x), d, udmerr.ErrDimensionMismatch)
		}
	}
	if dims == nil {
		return allDims(d), nil
	}
	for _, j := range dims {
		if j < 0 || j >= d {
			return nil, fmt.Errorf("kde: subspace dimension %d out of range [0,%d): %w", j, d, udmerr.ErrDimensionMismatch)
		}
	}
	return dims, nil
}

// DensityBatchContext is DensityBatch under a caller-supplied context:
// cancelling ctx aborts chunks that have not started and returns
// ctx.Err(). Results are bit-for-bit identical to the serial loop for
// every worker count.
func (k *PointKDE) DensityBatchContext(ctx context.Context, X [][]float64, dims []int, workers int) ([]float64, error) {
	return DensityBatch(ctx, k, X, dims, workers)
}

// DensityBatch evaluates the estimate at every row of X over dims (nil
// = all dimensions) using up to parallel.Workers(workers) goroutines.
// Results are bit-for-bit identical to calling DensitySub row by row.
// It is DensityBatchContext under context.Background(); prefer the
// context form in code that must honor cancellation.
func (k *PointKDE) DensityBatch(X [][]float64, dims []int, workers int) ([]float64, error) {
	return k.DensityBatchContext(context.Background(), X, dims, workers)
}

// DensityQBatchContext is DensityQBatch under a caller-supplied
// context. It requires the Gaussian kernel when Qerr is non-nil, like
// DensityQ.
func (k *PointKDE) DensityQBatchContext(ctx context.Context, X, Qerr [][]float64, dims []int, workers int) ([]float64, error) {
	if Qerr != nil && k.opt.Kernel != kernel.Gaussian {
		return nil, fmt.Errorf("kde: DensityQBatch requires the Gaussian kernel, got %v: %w", k.opt.Kernel, udmerr.ErrBadOption)
	}
	return DensityQBatch(ctx, k, X, Qerr, dims, workers)
}

// DensityQBatch evaluates the expected density at every uncertain query
// row of X (query errors Qerr, nil rows = certain) in parallel. It
// requires the Gaussian kernel, like DensityQ. It is
// DensityQBatchContext under context.Background().
func (k *PointKDE) DensityQBatch(X, Qerr [][]float64, dims []int, workers int) ([]float64, error) {
	return k.DensityQBatchContext(context.Background(), X, Qerr, dims, workers)
}

// DensityBatchContext is DensityBatch under a caller-supplied context:
// cancelling ctx aborts chunks that have not started and returns
// ctx.Err().
func (k *ClusterKDE) DensityBatchContext(ctx context.Context, X [][]float64, dims []int, workers int) ([]float64, error) {
	return DensityBatch(ctx, k, X, dims, workers)
}

// DensityBatch evaluates the estimate at every row of X over dims (nil
// = all dimensions) using up to parallel.Workers(workers) goroutines.
// Results are bit-for-bit identical to calling DensitySub row by row.
// It is DensityBatchContext under context.Background().
func (k *ClusterKDE) DensityBatch(X [][]float64, dims []int, workers int) ([]float64, error) {
	return k.DensityBatchContext(context.Background(), X, dims, workers)
}

// DensityQBatchContext is DensityQBatch under a caller-supplied
// context.
func (k *ClusterKDE) DensityQBatchContext(ctx context.Context, X, Qerr [][]float64, dims []int, workers int) ([]float64, error) {
	return DensityQBatch(ctx, k, X, Qerr, dims, workers)
}

// DensityQBatch evaluates the expected density at every uncertain query
// row of X (query errors Qerr, nil rows = certain) in parallel. It is
// DensityQBatchContext under context.Background().
func (k *ClusterKDE) DensityQBatch(X, Qerr [][]float64, dims []int, workers int) ([]float64, error) {
	return k.DensityQBatchContext(context.Background(), X, Qerr, dims, workers)
}

// LeaveOneOutBatchContext returns LeaveOneOutDensity for every training
// index in parallel under a caller-supplied context — the hot inner
// loop of outlier detection and likelihood cross-validation. Results
// are bit-for-bit identical to the serial loop for every worker count.
func (k *PointKDE) LeaveOneOutBatchContext(ctx context.Context, dims []int, workers int) ([]float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, sp := obs.StartSpan(ctx, "kde.LeaveOneOutBatch")
	defer sp.End()
	sp.Attr("points", len(k.x))
	looBatches.Inc()
	kernelEvals.Add(int64(len(k.x)) * int64(len(k.x)-1))
	if dims == nil {
		dims = allDims(len(k.h))
	} else {
		for _, j := range dims {
			if j < 0 || j >= len(k.h) {
				return nil, fmt.Errorf("kde: subspace dimension %d out of range [0,%d): %w", j, len(k.h), udmerr.ErrDimensionMismatch)
			}
		}
	}
	return parallel.Map(ctx, len(k.x), workers, func(i int) (float64, error) {
		return k.LeaveOneOutDensity(i, dims), nil
	})
}

// LeaveOneOutBatch is LeaveOneOutBatchContext under
// context.Background().
func (k *PointKDE) LeaveOneOutBatch(dims []int, workers int) ([]float64, error) {
	return k.LeaveOneOutBatchContext(context.Background(), dims, workers)
}
