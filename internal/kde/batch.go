package kde

import (
	"context"
	"fmt"

	"udm/internal/obs"
	"udm/internal/parallel"
	"udm/internal/udmerr"
)

// This file holds the batch-evaluation engines plus the deprecated
// positional/context API surface they used to be exposed through. The
// canonical entry points are the BatchOptions-taking forms in
// batchopts.go; everything exported here is a thin wrapper kept for
// compatibility and flagged in-tree by the depapi analyzer.

// QEstimator is an Estimator that can also evaluate the expected
// density at an uncertain query point (a query with its own per-
// dimension standard errors). Both PointKDE and ClusterKDE satisfy it.
type QEstimator interface {
	Estimator
	// DensityQ returns E[f(X)] for X ~ N(x, diag(qerr²)) over dims.
	DensityQ(x, qerr []float64, dims []int) float64
}

// densityBatch is the engine behind DensityBatchOpts: it fans the rows
// of X out over up to parallel.Workers(workers) goroutines, through
// the SoA column engine when est carries one and the scalar DensitySub
// fallback otherwise. Every result is written to its own slot, so the
// output is bit-for-bit identical for every worker count. Estimators
// are read-only after construction and therefore safe to share across
// the workers. Cancelling ctx aborts the batch and returns ctx.Err().
func densityBatch(ctx context.Context, est Estimator, X [][]float64, dims []int, workers int) ([]float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, sp := obs.StartSpan(ctx, "kde.DensityBatch")
	defer sp.End()
	densityBatches.Inc()
	kernelEvals.Add(int64(len(X)) * int64(est.Count()))
	dims, err := batchDims(est, X, dims)
	if err != nil {
		return nil, err
	}
	sp.Attr("points", len(X)).Attr("dims", len(dims))
	if e := fastEngine(est); e != nil {
		return parallel.MapChunks(ctx, len(X), workers, func(start, end int, out []float64) error {
			sc := e.scratch()
			defer e.release(sc)
			for i := start; i < end; i++ {
				out[i-start] = e.density(X[i], dims, sc)
			}
			return nil
		})
	}
	return parallel.Map(ctx, len(X), workers, func(i int) (float64, error) {
		return est.DensitySub(X[i], dims), nil
	})
}

// DensityBatch evaluates est at every row of X over the dimension
// subset dims (nil means all dimensions) with up to
// parallel.Workers(workers) goroutines, under ctx (nil =
// context.Background()).
//
// Deprecated: use DensityBatchOpts, which carries context, workers and
// the unified evaluation options in one BatchOptions value.
func DensityBatch(ctx context.Context, est Estimator, X [][]float64, dims []int, workers int) ([]float64, error) {
	return DensityBatchOpts(est, X, dims, BatchOptions{Ctx: ctx, Workers: workers})
}

// fastEngine returns est's SoA engine, or nil when the estimator has
// none (non-Gaussian kernel, or an estimator type from outside this
// package).
func fastEngine(est Estimator) *engine {
	switch k := est.(type) {
	case *PointKDE:
		return k.eng
	case *ClusterKDE:
		return k.eng
	}
	return nil
}

// densityQBatch is the engine behind DensityQBatchOpts: row i is
// evaluated with per-dimension query errors Qerr[i] folded into every
// kernel. Qerr may be nil (all queries certain, reducing to
// densityBatch) and individual Qerr rows may be nil (that query is
// certain). Results are bit-for-bit identical for every worker count.
func densityQBatch(ctx context.Context, est QEstimator, X, Qerr [][]float64, dims []int, workers int) ([]float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, sp := obs.StartSpan(ctx, "kde.DensityQBatch")
	defer sp.End()
	densityQBatches.Inc()
	kernelEvals.Add(int64(len(X)) * int64(est.Count()))
	dims, err := batchDims(est, X, dims)
	if err != nil {
		return nil, err
	}
	sp.Attr("points", len(X)).Attr("dims", len(dims))
	if Qerr != nil && len(Qerr) != len(X) {
		return nil, fmt.Errorf("kde: %d query-error rows for %d queries: %w", len(Qerr), len(X), udmerr.ErrDimensionMismatch)
	}
	for i, er := range Qerr {
		if er != nil && len(er) != est.Dims() {
			return nil, fmt.Errorf("kde: query-error row %d has %d dims, estimator has %d: %w", i, len(er), est.Dims(), udmerr.ErrDimensionMismatch)
		}
	}
	if e := fastEngine(est); e != nil {
		return parallel.MapChunks(ctx, len(X), workers, func(start, end int, out []float64) error {
			sc := e.scratch()
			defer e.release(sc)
			for i := start; i < end; i++ {
				var qe []float64
				if Qerr != nil {
					qe = Qerr[i]
				}
				out[i-start] = e.densityQ(X[i], qe, dims, sc)
			}
			return nil
		})
	}
	return parallel.Map(ctx, len(X), workers, func(i int) (float64, error) {
		if Qerr == nil {
			return est.DensityQ(X[i], nil, dims), nil
		}
		return est.DensityQ(X[i], Qerr[i], dims), nil
	})
}

// DensityQBatch is the uncertain-query variant of DensityBatch.
//
// Deprecated: use DensityQBatchOpts, which carries context, workers
// and the unified evaluation options in one BatchOptions value.
func DensityQBatch(ctx context.Context, est QEstimator, X, Qerr [][]float64, dims []int, workers int) ([]float64, error) {
	return DensityQBatchOpts(est, X, Qerr, dims, BatchOptions{Ctx: ctx, Workers: workers})
}

// batchDims validates the query rows and the dimension subset for a
// batch evaluation, resolving a nil dims to all dimensions.
func batchDims(est Estimator, X [][]float64, dims []int) ([]int, error) {
	d := est.Dims()
	for i, x := range X {
		if len(x) != d {
			return nil, fmt.Errorf("kde: query row %d has %d dims, estimator has %d: %w", i, len(x), d, udmerr.ErrDimensionMismatch)
		}
	}
	if dims == nil {
		return allDims(d), nil
	}
	for _, j := range dims {
		if j < 0 || j >= d {
			return nil, fmt.Errorf("kde: subspace dimension %d out of range [0,%d): %w", j, d, udmerr.ErrDimensionMismatch)
		}
	}
	return dims, nil
}

// DensityBatchContext evaluates the estimate at every row of X under a
// caller-supplied context.
//
// Deprecated: use DensityBatchOpts with BatchOptions.Ctx.
func (k *PointKDE) DensityBatchContext(ctx context.Context, X [][]float64, dims []int, workers int) ([]float64, error) {
	return DensityBatchOpts(k, X, dims, BatchOptions{Ctx: ctx, Workers: workers})
}

// DensityBatch evaluates the estimate at every row of X over dims (nil
// = all dimensions) using up to parallel.Workers(workers) goroutines.
//
// Deprecated: use DensityBatchOpts.
func (k *PointKDE) DensityBatch(X [][]float64, dims []int, workers int) ([]float64, error) {
	return DensityBatchOpts(k, X, dims, BatchOptions{Workers: workers})
}

// DensityQBatchContext evaluates the expected density at every
// uncertain query row under a caller-supplied context. It requires the
// Gaussian kernel when Qerr is non-nil, like DensityQ.
//
// Deprecated: use DensityQBatchOpts with BatchOptions.Ctx.
func (k *PointKDE) DensityQBatchContext(ctx context.Context, X, Qerr [][]float64, dims []int, workers int) ([]float64, error) {
	return DensityQBatchOpts(k, X, Qerr, dims, BatchOptions{Ctx: ctx, Workers: workers})
}

// DensityQBatch evaluates the expected density at every uncertain query
// row of X (query errors Qerr, nil rows = certain) in parallel. It
// requires the Gaussian kernel, like DensityQ.
//
// Deprecated: use DensityQBatchOpts.
func (k *PointKDE) DensityQBatch(X, Qerr [][]float64, dims []int, workers int) ([]float64, error) {
	return DensityQBatchOpts(k, X, Qerr, dims, BatchOptions{Workers: workers})
}

// DensityBatchContext evaluates the estimate at every row of X under a
// caller-supplied context.
//
// Deprecated: use DensityBatchOpts with BatchOptions.Ctx.
func (k *ClusterKDE) DensityBatchContext(ctx context.Context, X [][]float64, dims []int, workers int) ([]float64, error) {
	return DensityBatchOpts(k, X, dims, BatchOptions{Ctx: ctx, Workers: workers})
}

// DensityBatch evaluates the estimate at every row of X over dims (nil
// = all dimensions) using up to parallel.Workers(workers) goroutines.
//
// Deprecated: use DensityBatchOpts.
func (k *ClusterKDE) DensityBatch(X [][]float64, dims []int, workers int) ([]float64, error) {
	return DensityBatchOpts(k, X, dims, BatchOptions{Workers: workers})
}

// DensityQBatchContext evaluates the expected density at every
// uncertain query row under a caller-supplied context.
//
// Deprecated: use DensityQBatchOpts with BatchOptions.Ctx.
func (k *ClusterKDE) DensityQBatchContext(ctx context.Context, X, Qerr [][]float64, dims []int, workers int) ([]float64, error) {
	return DensityQBatchOpts(k, X, Qerr, dims, BatchOptions{Ctx: ctx, Workers: workers})
}

// DensityQBatch evaluates the expected density at every uncertain query
// row of X (query errors Qerr, nil rows = certain) in parallel.
//
// Deprecated: use DensityQBatchOpts.
func (k *ClusterKDE) DensityQBatch(X, Qerr [][]float64, dims []int, workers int) ([]float64, error) {
	return DensityQBatchOpts(k, X, Qerr, dims, BatchOptions{Workers: workers})
}

// leaveOneOutBatch is the engine behind LeaveOneOutBatchOpts: it
// returns LeaveOneOutDensity for every training index in parallel —
// the hot inner loop of outlier detection and likelihood cross-
// validation. Results are bit-for-bit identical to the serial loop for
// every worker count.
func (k *PointKDE) leaveOneOutBatch(ctx context.Context, dims []int, workers int) ([]float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, sp := obs.StartSpan(ctx, "kde.LeaveOneOutBatch")
	defer sp.End()
	sp.Attr("points", len(k.x))
	looBatches.Inc()
	kernelEvals.Add(int64(len(k.x)) * int64(len(k.x)-1))
	if dims == nil {
		dims = allDims(len(k.h))
	} else {
		for _, j := range dims {
			if j < 0 || j >= len(k.h) {
				return nil, fmt.Errorf("kde: subspace dimension %d out of range [0,%d): %w", j, len(k.h), udmerr.ErrDimensionMismatch)
			}
		}
	}
	return parallel.Map(ctx, len(k.x), workers, func(i int) (float64, error) {
		return k.LeaveOneOutDensity(i, dims), nil
	})
}

// LeaveOneOutBatchContext returns LeaveOneOutDensity for every training
// index in parallel under a caller-supplied context.
//
// Deprecated: use LeaveOneOutBatchOpts with BatchOptions.Ctx.
func (k *PointKDE) LeaveOneOutBatchContext(ctx context.Context, dims []int, workers int) ([]float64, error) {
	return k.LeaveOneOutBatchOpts(dims, BatchOptions{Ctx: ctx, Workers: workers})
}

// LeaveOneOutBatch is the no-context form of LeaveOneOutBatchContext.
//
// Deprecated: use LeaveOneOutBatchOpts.
func (k *PointKDE) LeaveOneOutBatch(dims []int, workers int) ([]float64, error) {
	return k.LeaveOneOutBatchOpts(dims, BatchOptions{Workers: workers})
}
