package kde

import (
	"context"
	"fmt"

	"udm/internal/evalopt"
	"udm/internal/kernel"
	"udm/internal/udmerr"
)

// This file is the canonical batch-evaluation surface. PR 1 and PR 2
// grew a four-way API — DensityBatch(est, X, dims, workers) package
// functions, per-type method twins, and ...Context variants of each —
// that forced every new knob (context, workers, accuracy, backend)
// into either a new positional parameter or yet another variant.
// DensityBatchOpts collapses the surface to one options-taking form
// per operation; the old forms remain as thin deprecated wrappers (see
// batch.go) and the depapi analyzer flags in-tree use of them.

// BatchOptions carries every per-call knob of a batch density
// evaluation. The zero value is the common case: background context,
// one worker per core, the estimator's own evaluation configuration.
type BatchOptions struct {
	// Workers caps the fan-out (≤ 0 = GOMAXPROCS, 1 = serial).
	// Results are bit-for-bit identical for every worker count.
	// Eval.Workers, when non-zero, takes precedence so a parsed
	// evalopt string can carry the whole configuration.
	Workers int
	// Ctx cancels the batch; nil means context.Background().
	Ctx context.Context
	// Eval is the unified evaluation configuration. At batch time two
	// fields apply: Workers (see above) and Accuracy, which evaluates
	// this package's estimator types under a cheap accuracy-switched
	// view (WithAccuracy) for the duration of the call. The remaining
	// fields — Backend, Epsilon, Delta, Prune, and the sizing knobs —
	// take effect where estimators are constructed (Options.Eval,
	// internal/density); a Batcher passed here likewise carries its
	// backend and accuracy from construction.
	Eval evalopt.Options
}

// ctx resolves the batch context, defaulting nil to Background.
func (o BatchOptions) ctx() context.Context {
	if o.Ctx == nil {
		return context.Background() //lint:allow ctxflow nil Ctx defaults to Background, the documented convenience
	}
	return o.Ctx
}

// workers resolves the fan-out cap; Eval.Workers wins when set.
func (o BatchOptions) workers() int {
	if o.Eval.Workers != 0 {
		return o.Eval.Workers
	}
	return o.Workers
}

// Batcher is the delegation hook for pluggable density backends: an
// Estimator that evaluates whole batches itself (e.g. by importance
// sampling) rather than through this package's per-row engines. The
// batch entry points hand the rows straight to the implementation, so
// an approximate backend's cost model applies to grid renders, the
// serving layer, and every other caller of the canonical API.
//
// This package's own estimator types do not satisfy Batcher (their
// DensityBatch methods are the deprecated context-free forms); the
// implementations live in internal/density.
type Batcher interface {
	Estimator
	DensityBatch(ctx context.Context, X [][]float64, dims []int, workers int) ([]float64, error)
}

// DensityBatchOpts evaluates est at every row of X over the dimension
// subset dims (nil means all dimensions) under opt. It is the
// canonical batch entry point: the positional DensityBatch forms and
// the ...Context method twins are deprecated wrappers around it.
//
// Gaussian-kernel estimators from this package run on the SoA column
// engine — in the default exact configuration, bit-identical to the
// per-query DensitySub path; with Options.Prune or a non-exact
// accuracy (from Options or opt.Eval.Accuracy), within the configured
// relative budget. A Batcher (pluggable density backend) evaluates the
// batch itself under its own advertised contract. Other estimators
// take the scalar fallback. Every result is written to its own slot,
// so output is bit-for-bit identical for every worker count.
//
// Malformed rows or dims surface as errors wrapping
// udmerr.ErrDimensionMismatch, not panics.
func DensityBatchOpts(est Estimator, X [][]float64, dims []int, opt BatchOptions) ([]float64, error) {
	ctx, workers := opt.ctx(), opt.workers()
	if b, ok := est.(Batcher); ok {
		return b.DensityBatch(ctx, X, dims, workers)
	}
	est, err := applyEval(est, opt.Eval)
	if err != nil {
		return nil, err
	}
	return densityBatch(ctx, est, X, dims, workers)
}

// DensityQBatchOpts is the uncertain-query variant of DensityBatchOpts:
// row i is evaluated with per-dimension query errors Qerr[i] folded
// into every kernel. Qerr may be nil (all queries certain, reducing to
// DensityBatchOpts) and individual Qerr rows may be nil (that query is
// certain). Batcher delegation does not apply — uncertain queries
// always evaluate through this package's engines.
func DensityQBatchOpts(est QEstimator, X, Qerr [][]float64, dims []int, opt BatchOptions) ([]float64, error) {
	if p, ok := est.(*PointKDE); ok && Qerr != nil && p.opt.Kernel != kernel.Gaussian {
		return nil, fmt.Errorf("kde: DensityQBatch requires the Gaussian kernel, got %v: %w", p.opt.Kernel, udmerr.ErrBadOption)
	}
	est2, err := applyEval(est, opt.Eval)
	if err != nil {
		return nil, err
	}
	// applyEval preserves the concrete type, so the QEstimator methods
	// survive the accuracy switch.
	return densityQBatch(opt.ctx(), est2.(QEstimator), X, Qerr, dims, opt.workers())
}

// LeaveOneOutBatchOpts returns LeaveOneOutDensity for every training
// index under opt — the hot inner loop of outlier detection and
// likelihood cross-validation. The leave-one-out correction is defined
// point-wise, so evaluation is always exact (opt.Eval.Accuracy does
// not apply); opt supplies context and worker count.
func (k *PointKDE) LeaveOneOutBatchOpts(dims []int, opt BatchOptions) ([]float64, error) {
	return k.leaveOneOutBatch(opt.ctx(), dims, opt.workers())
}

// applyEval returns est under opt's accuracy mode: a cheap
// accuracy-switched view for this package's estimator types, est
// unchanged when the mode is exact. Estimators from other packages
// (including Batchers, which are delegated before this applies) carry
// their accuracy from construction.
func applyEval(est Estimator, opt evalopt.Options) (Estimator, error) {
	if opt.Accuracy.IsExact() {
		return est, nil
	}
	switch k := est.(type) {
	case *PointKDE:
		return k.WithAccuracy(opt.Accuracy)
	case *ClusterKDE:
		return k.WithAccuracy(opt.Accuracy)
	}
	return est, nil
}
