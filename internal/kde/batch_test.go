package kde

import (
	"context"
	"testing"

	"udm/internal/dataset"
	"udm/internal/kernel"
	"udm/internal/microcluster"
	"udm/internal/rng"
)

// batchFixture builds a perturbed dataset plus point and cluster
// estimators with error adjustment on.
func batchFixture(t *testing.T, n int) (*dataset.Dataset, *PointKDE, *ClusterKDE) {
	t.Helper()
	r := rng.New(41)
	ds := dataset.New("a", "b", "c")
	for i := 0; i < n; i++ {
		x := []float64{r.Norm(0, 1), r.Norm(3, 2), r.Norm(-2, 0.7)}
		e := []float64{0.2, 0.4, 0.1}
		if err := ds.Append(x, e, dataset.Unlabeled); err != nil {
			t.Fatal(err)
		}
	}
	pt, err := NewPoint(ds, Options{ErrorAdjust: true})
	if err != nil {
		t.Fatal(err)
	}
	s := microcluster.Build(ds, 20, r.Split("mc"))
	cl, err := NewCluster(s, Options{ErrorAdjust: true})
	if err != nil {
		t.Fatal(err)
	}
	return ds, pt, cl
}

// TestDensityBatchMatchesSerialExactly is the tentpole determinism
// gate: DensityBatch at P=1 and P=8 must agree bit-for-bit with each
// other and with the serial DensitySub loop, over full and subspace
// dims, for both estimator kinds.
func TestDensityBatchMatchesSerialExactly(t *testing.T) {
	ds, pt, cl := batchFixture(t, 300)
	for _, dims := range [][]int{nil, {0}, {1, 2}} {
		for name, est := range map[string]Estimator{"point": pt, "cluster": cl} {
			evalDims := dims
			if evalDims == nil {
				evalDims = allDims(est.Dims())
			}
			want := make([]float64, ds.Len())
			for i, x := range ds.X {
				want[i] = est.DensitySub(x, evalDims)
			}
			for _, workers := range []int{1, 8} {
				got, err := DensityBatch(context.Background(), est, ds.X, dims, workers)
				if err != nil {
					t.Fatal(err)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s dims=%v workers=%d: row %d = %v, want %v (not bit-identical)",
							name, dims, workers, i, got[i], want[i])
					}
				}
			}
		}
	}
}

func TestDensityQBatchMatchesSerialExactly(t *testing.T) {
	ds, pt, cl := batchFixture(t, 200)
	qerr := make([][]float64, ds.Len())
	for i := range qerr {
		if i%3 == 0 {
			qerr[i] = nil // mixed certain/uncertain queries
		} else {
			qerr[i] = []float64{0.3, 0.1, 0.2}
		}
	}
	for name, est := range map[string]QEstimator{"point": pt, "cluster": cl} {
		dims := allDims(est.Dims())
		want := make([]float64, ds.Len())
		for i, x := range ds.X {
			want[i] = est.DensityQ(x, qerr[i], dims)
		}
		for _, workers := range []int{1, 8} {
			got, err := DensityQBatch(context.Background(), est, ds.X, qerr, nil, workers)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s workers=%d: row %d = %v, want %v", name, workers, i, got[i], want[i])
				}
			}
		}
		// nil Qerr reduces to DensityBatch.
		plain, err := DensityQBatch(context.Background(), est, ds.X, nil, nil, 4)
		if err != nil {
			t.Fatal(err)
		}
		batch, err := DensityBatch(context.Background(), est, ds.X, nil, 4)
		if err != nil {
			t.Fatal(err)
		}
		for i := range plain {
			if plain[i] != batch[i] {
				t.Fatalf("%s: nil-Qerr row %d = %v, want %v", name, i, plain[i], batch[i])
			}
		}
	}
}

// TestDensityBatchValidation: batch APIs error instead of panicking on
// malformed input.
func TestDensityBatchValidation(t *testing.T) {
	ds, pt, _ := batchFixture(t, 20)
	if _, err := pt.DensityBatch([][]float64{{1, 2}}, nil, 2); err == nil {
		t.Error("short query row accepted")
	}
	if _, err := pt.DensityBatch(ds.X, []int{7}, 2); err == nil {
		t.Error("out-of-range dim accepted")
	}
	if _, err := pt.DensityQBatch(ds.X, [][]float64{{1, 2, 3}}, nil, 2); err == nil {
		t.Error("mismatched Qerr length accepted")
	}
	if _, err := pt.DensityQBatch(ds.X, make([][]float64, ds.Len()-1), nil, 2); err == nil {
		t.Error("wrong Qerr row count accepted")
	}
	// Non-Gaussian kernels cannot evaluate uncertain queries.
	lap, err := NewPoint(ds, Options{Kernel: kernel.Laplace})
	if err != nil {
		t.Fatal(err)
	}
	qerr := make([][]float64, ds.Len())
	for i := range qerr {
		qerr[i] = []float64{0.1, 0.1, 0.1}
	}
	if _, err := lap.DensityQBatch(ds.X, qerr, nil, 2); err == nil {
		t.Error("DensityQBatch with Laplace kernel accepted")
	}
	// Empty batch is fine.
	out, err := pt.DensityBatch(nil, nil, 4)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty batch: %v, %v", out, err)
	}
}

func TestDensityBatchCancellation(t *testing.T) {
	ds, pt, _ := batchFixture(t, 50)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := DensityBatch(ctx, pt, ds.X, nil, 4); err == nil {
		t.Error("cancelled context did not abort the batch")
	}
}

func TestLeaveOneOutBatchMatchesSerial(t *testing.T) {
	ds, pt, _ := batchFixture(t, 150)
	dims := []int{0, 2}
	want := make([]float64, ds.Len())
	for i := range want {
		want[i] = pt.LeaveOneOutDensity(i, dims)
	}
	for _, workers := range []int{1, 8} {
		got, err := pt.LeaveOneOutBatch(dims, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: row %d = %v, want %v", workers, i, got[i], want[i])
			}
		}
	}
	if _, err := pt.LeaveOneOutBatch([]int{9}, 2); err == nil {
		t.Error("out-of-range dim accepted")
	}
}

// TestCVBandwidthsWorkersDeterministic: the CV grid search picks the
// same bandwidths for every worker count.
func TestCVBandwidthsWorkersDeterministic(t *testing.T) {
	ds, _, _ := batchFixture(t, 120)
	want, err := CVBandwidthsWorkers(ds, true, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, err := CVBandwidthsWorkers(ds, true, nil, workers)
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("workers=%d: h[%d] = %v, want %v", workers, j, got[j], want[j])
			}
		}
	}
}
