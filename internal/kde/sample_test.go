package kde

import (
	"math"
	"testing"

	"udm/internal/kernel"
	"udm/internal/microcluster"
	"udm/internal/num"
	"udm/internal/rng"
)

func TestPointSampleMatchesMoments(t *testing.T) {
	d := gauss2(500, 0.5, 30)
	est, err := NewPoint(d, Options{ErrorAdjust: true})
	if err != nil {
		t.Fatal(err)
	}
	samples, err := est.Sample(20000, rng.New(31))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 20000 || len(samples[0]) != 2 {
		t.Fatalf("sample shape %dx%d", len(samples), len(samples[0]))
	}
	// Mean of the samples matches the data mean (mixture is centered on
	// the data); variance matches data variance + bandwidth² + mean ψ².
	var dataM, sampM num.Moments
	for i := range d.X {
		dataM.Add(d.X[i][0])
	}
	for _, s := range samples {
		sampM.Add(s[0])
	}
	if math.Abs(dataM.Mean()-sampM.Mean()) > 0.1 {
		t.Fatalf("sample mean %v vs data mean %v", sampM.Mean(), dataM.Mean())
	}
	wantVar := dataM.Variance() + est.BandwidthFor(0)*est.BandwidthFor(0) + 0.25
	if math.Abs(sampM.Variance()-wantVar) > 0.3 {
		t.Fatalf("sample variance %v vs expected %v", sampM.Variance(), wantVar)
	}
	// Bimodality preserved: few samples in the trough.
	trough := 0
	for _, s := range samples {
		if math.Abs(s[0]) < 0.5 {
			trough++
		}
	}
	if frac := float64(trough) / float64(len(samples)); frac > 0.15 {
		t.Fatalf("trough fraction %v — modes washed out", frac)
	}
}

func TestClusterSampleMatchesDensity(t *testing.T) {
	d := gauss2(1000, 0.3, 32)
	s := microcluster.Build(d, 30, rng.New(33))
	est, err := NewCluster(s, Options{ErrorAdjust: true})
	if err != nil {
		t.Fatal(err)
	}
	samples, err := est.Sample(30000, rng.New(34))
	if err != nil {
		t.Fatal(err)
	}
	// Empirical mass near each mode matches the integrated density.
	inBand := func(lo, hi float64) float64 {
		n := 0
		for _, smp := range samples {
			if smp[0] >= lo && smp[0] < hi {
				n++
			}
		}
		return float64(n) / float64(len(samples))
	}
	// Mass in the left half should be ≈ 0.5 (balanced blobs).
	if m := inBand(math.Inf(-1), 0); math.Abs(m-0.5) > 0.05 {
		t.Fatalf("left mass %v, want ≈0.5", m)
	}
	// Compare a band's empirical mass to Mass1D over the same band.
	want := Mass1D(est, 0, -3, -1, 400)
	got := inBand(-3, -1)
	if math.Abs(got-want) > 0.05 {
		t.Fatalf("band mass %v vs density integral %v", got, want)
	}
}

func TestSampleValidation(t *testing.T) {
	d := gauss2(20, 0, 35)
	est, err := NewPoint(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := est.Sample(0, rng.New(1)); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := est.Sample(5, nil); err == nil {
		t.Error("nil rng accepted")
	}
	epan, err := NewPoint(d, Options{Kernel: kernel.Epanechnikov})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := epan.Sample(5, rng.New(1)); err == nil {
		t.Error("non-Gaussian sampling accepted")
	}
	paper, err := NewPoint(d, Options{ErrorAdjust: false, PaperKernel: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := paper.Sample(5, rng.New(1)); err == nil {
		t.Error("paper-kernel sampling accepted")
	}
}

func TestSampleDeterministicUnderSeed(t *testing.T) {
	d := gauss2(50, 0.2, 36)
	est, err := NewPoint(d, Options{ErrorAdjust: true})
	if err != nil {
		t.Fatal(err)
	}
	a, err := est.Sample(10, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := est.Sample(10, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i][0] != b[i][0] || a[i][1] != b[i][1] {
			t.Fatal("sampling not deterministic under fixed seed")
		}
	}
}
