package kdtree

import (
	"math"
	"sort"
	"testing"

	"udm/internal/num"
	"udm/internal/rng"
)

func randomPoints(n, d int, seed int64) [][]float64 {
	r := rng.New(seed)
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = make([]float64, d)
		for j := range pts[i] {
			pts[i][j] = r.Norm(0, 1)
		}
	}
	return pts
}

// bruteKNN is the reference implementation.
func bruteKNN(pts [][]float64, q []float64, k int) ([]int, []float64) {
	type nd struct {
		i  int
		d2 float64
	}
	all := make([]nd, len(pts))
	for i, p := range pts {
		all[i] = nd{i: i, d2: num.Dist2(q, p)}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].d2 != all[b].d2 {
			return all[a].d2 < all[b].d2
		}
		return all[a].i < all[b].i
	})
	idx := make([]int, k)
	d2 := make([]float64, k)
	for i := 0; i < k; i++ {
		idx[i], d2[i] = all[i].i, all[i].d2
	}
	return idx, d2
}

func TestNearestMatchesBruteForce(t *testing.T) {
	for _, d := range []int{1, 2, 5, 10} {
		pts := randomPoints(300, d, int64(d))
		tree, err := Build(pts)
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(100 + int64(d))
		for trial := 0; trial < 200; trial++ {
			q := make([]float64, d)
			for j := range q {
				q[j] = r.Norm(0, 1.5)
			}
			gotIdx, gotD2 := tree.Nearest(q)
			_, wantD2 := bruteKNN(pts, q, 1)
			// Distances must agree exactly (ties may differ in index).
			if gotD2 != wantD2[0] {
				t.Fatalf("d=%d trial %d: tree d2 %v vs brute %v", d, trial, gotD2, wantD2[0])
			}
			if num.Dist2(q, pts[gotIdx]) != gotD2 {
				t.Fatal("returned distance inconsistent with returned index")
			}
		}
	}
}

func TestKNearestMatchesBruteForce(t *testing.T) {
	pts := randomPoints(500, 4, 7)
	tree, err := Build(pts)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(8)
	for trial := 0; trial < 100; trial++ {
		q := make([]float64, 4)
		for j := range q {
			q[j] = r.Norm(0, 2)
		}
		k := 1 + r.Intn(20)
		gotIdx, gotD2 := tree.KNearest(q, k)
		_, wantD2 := bruteKNN(pts, q, k)
		if len(gotIdx) != k {
			t.Fatalf("returned %d neighbors, want %d", len(gotIdx), k)
		}
		for i := 0; i < k; i++ {
			if gotD2[i] != wantD2[i] {
				t.Fatalf("k=%d position %d: %v vs %v", k, i, gotD2[i], wantD2[i])
			}
			if i > 0 && gotD2[i] < gotD2[i-1] {
				t.Fatal("results not ascending")
			}
		}
	}
}

func TestDuplicatePoints(t *testing.T) {
	pts := [][]float64{{1, 1}, {1, 1}, {1, 1}, {2, 2}}
	tree, err := Build(pts)
	if err != nil {
		t.Fatal(err)
	}
	idx, d2 := tree.KNearest([]float64{1, 1}, 3)
	for i := 0; i < 3; i++ {
		if d2[i] != 0 {
			t.Fatalf("duplicate distances %v", d2)
		}
	}
	seen := map[int]bool{}
	for _, i := range idx {
		if seen[i] {
			t.Fatal("duplicate index returned twice")
		}
		seen[i] = true
	}
}

func TestSinglePointAndFullK(t *testing.T) {
	tree, err := Build([][]float64{{3}})
	if err != nil {
		t.Fatal(err)
	}
	i, d2 := tree.Nearest([]float64{5})
	if i != 0 || d2 != 4 {
		t.Fatalf("got %d, %v", i, d2)
	}
	pts := randomPoints(50, 2, 9)
	tr, _ := Build(pts)
	idx, _ := tr.KNearest([]float64{0, 0}, 50)
	seen := map[int]bool{}
	for _, j := range idx {
		seen[j] = true
	}
	if len(seen) != 50 {
		t.Fatalf("full-k query returned %d distinct points", len(seen))
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil); err == nil {
		t.Error("empty accepted")
	}
	if _, err := Build([][]float64{{}}); err == nil {
		t.Error("zero-dim accepted")
	}
	if _, err := Build([][]float64{{1}, {1, 2}}); err == nil {
		t.Error("ragged accepted")
	}
	if _, err := Build([][]float64{{math.NaN()}}); err == nil {
		t.Error("NaN accepted")
	}
}

func TestQueryPanics(t *testing.T) {
	tree, _ := Build(randomPoints(10, 2, 10))
	for name, fn := range map[string]func(){
		"wrong dims": func() { tree.Nearest([]float64{1}) },
		"k=0":        func() { tree.KNearest([]float64{1, 2}, 0) },
		"k>n":        func() { tree.KNearest([]float64{1, 2}, 11) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkTreeVsBrute(b *testing.B) {
	pts := randomPoints(10000, 6, 11)
	tree, err := Build(pts)
	if err != nil {
		b.Fatal(err)
	}
	q := []float64{0.1, -0.2, 0.3, 0, 0.5, -0.1}
	b.Run("tree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tree.Nearest(q)
		}
	})
	b.Run("brute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bruteKNN(pts, q, 1)
		}
	})
}
