package kdtree

import (
	"sync"
	"testing"

	"udm/internal/rng"
)

// TestConcurrentQueries exercises the immutability guarantee: many
// goroutines querying one tree must agree with brute force (run with
// -race in CI).
func TestConcurrentQueries(t *testing.T) {
	pts := randomPoints(1000, 3, 60)
	tree, err := Build(pts)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rng.New(int64(100 + w))
			for i := 0; i < 200; i++ {
				q := []float64{r.Norm(0, 1), r.Norm(0, 1), r.Norm(0, 1)}
				_, d2 := tree.Nearest(q)
				_, want := bruteKNN(pts, q, 1)
				if d2 != want[0] {
					errs <- "tree/brute mismatch under concurrency"
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
