// Package kdtree implements a static k-d tree over []float64 points for
// exact nearest-neighbor and k-nearest-neighbor queries under squared
// Euclidean distance. It backs the error-oblivious neighbor baselines:
// brute force is O(N) per query, the tree is O(log N) on low-dimensional
// data and never worse than brute force asymptotically.
//
// The tree is immutable after Build and safe for concurrent queries.
package kdtree

import (
	"fmt"
	"math"
	"sort"

	"udm/internal/num"
)

// Tree is an immutable k-d tree.
type Tree struct {
	pts   [][]float64 // referenced, not copied
	nodes []node
	root  int
	dims  int
}

// node is one tree vertex over pts[idx].
type node struct {
	idx         int // point index
	axis        int
	left, right int // node indices, -1 = none
}

// Build constructs a tree over the given points (referenced, not
// copied; callers must not mutate them afterwards). All points must
// share a positive dimensionality.
func Build(points [][]float64) (*Tree, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("kdtree: no points")
	}
	d := len(points[0])
	if d == 0 {
		return nil, fmt.Errorf("kdtree: zero-dimensional points")
	}
	for i, p := range points {
		if len(p) != d {
			return nil, fmt.Errorf("kdtree: point %d has %d dims, want %d", i, len(p), d)
		}
		if !num.AllFinite(p) {
			return nil, fmt.Errorf("kdtree: point %d contains NaN or Inf", i)
		}
	}
	t := &Tree{pts: points, dims: d, nodes: make([]node, 0, len(points))}
	idx := make([]int, len(points))
	for i := range idx {
		idx[i] = i
	}
	t.root = t.build(idx, 0)
	return t, nil
}

// build recursively splits idx at the median of the current axis and
// returns the created node's index (-1 for an empty set).
func (t *Tree) build(idx []int, depth int) int {
	if len(idx) == 0 {
		return -1
	}
	axis := depth % t.dims
	sort.Slice(idx, func(a, b int) bool {
		return t.pts[idx[a]][axis] < t.pts[idx[b]][axis]
	})
	mid := len(idx) / 2
	// Ensure the split point is the first of any ties so the left
	// subtree holds strictly-smaller-or-equal values consistently.
	for mid > 0 && math.Float64bits(t.pts[idx[mid-1]][axis]) == math.Float64bits(t.pts[idx[mid]][axis]) {
		mid--
	}
	n := node{idx: idx[mid], axis: axis, left: -1, right: -1}
	pos := len(t.nodes)
	t.nodes = append(t.nodes, n)
	left := t.build(idx[:mid], depth+1)
	right := t.build(idx[mid+1:], depth+1)
	t.nodes[pos].left = left
	t.nodes[pos].right = right
	return pos
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return len(t.pts) }

// Dims returns the point dimensionality.
func (t *Tree) Dims() int { return t.dims }

// Nearest returns the index of the point closest to q and the squared
// distance to it.
func (t *Tree) Nearest(q []float64) (int, float64) {
	idx, d2 := t.KNearest(q, 1)
	return idx[0], d2[0]
}

// KNearest returns the indices of the k points closest to q, nearest
// first, with their squared distances. It panics when q has the wrong
// dimensionality or k is out of [1, Len()].
func (t *Tree) KNearest(q []float64, k int) ([]int, []float64) {
	if len(q) != t.dims {
		panic(fmt.Sprintf("kdtree: query has %d dims, tree has %d", len(q), t.dims))
	}
	if k < 1 || k > len(t.pts) {
		panic(fmt.Sprintf("kdtree: k=%d for %d points", k, len(t.pts)))
	}
	h := &maxHeap{}
	t.search(t.root, q, k, h)
	// Drain the max-heap into ascending order.
	idx := make([]int, h.len())
	d2 := make([]float64, h.len())
	for i := h.len() - 1; i >= 0; i-- {
		e := h.pop()
		idx[i], d2[i] = e.idx, e.d2
	}
	return idx, d2
}

func (t *Tree) search(ni int, q []float64, k int, h *maxHeap) {
	if ni < 0 {
		return
	}
	n := t.nodes[ni]
	p := t.pts[n.idx]
	h.push(entry{idx: n.idx, d2: num.Dist2(q, p)}, k)

	diff := q[n.axis] - p[n.axis]
	near, far := n.left, n.right
	if diff > 0 {
		near, far = n.right, n.left
	}
	t.search(near, q, k, h)
	// Visit the far side only if the splitting plane could hide a closer
	// point than the current k-th best.
	if h.len() < k || diff*diff < h.top().d2 {
		t.search(far, q, k, h)
	}
}

// entry is a candidate neighbor.
type entry struct {
	idx int
	d2  float64
}

// maxHeap is a bounded max-heap of candidate neighbors: the root is the
// worst of the best-k seen so far.
type maxHeap struct{ e []entry }

func (h *maxHeap) len() int   { return len(h.e) }
func (h *maxHeap) top() entry { return h.e[0] }
func (h *maxHeap) push(x entry, k int) {
	if len(h.e) < k {
		h.e = append(h.e, x)
		h.up(len(h.e) - 1)
		return
	}
	if x.d2 >= h.e[0].d2 {
		return
	}
	h.e[0] = x
	h.down(0)
}

func (h *maxHeap) pop() entry {
	top := h.e[0]
	last := len(h.e) - 1
	h.e[0] = h.e[last]
	h.e = h.e[:last]
	if last > 0 {
		h.down(0)
	}
	return top
}

func (h *maxHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.e[i].d2 <= h.e[parent].d2 {
			return
		}
		h.e[i], h.e[parent] = h.e[parent], h.e[i]
		i = parent
	}
}

func (h *maxHeap) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < len(h.e) && h.e[l].d2 > h.e[big].d2 {
			big = l
		}
		if r < len(h.e) && h.e[r].d2 > h.e[big].d2 {
			big = r
		}
		if big == i {
			return
		}
		h.e[i], h.e[big] = h.e[big], h.e[i]
		i = big
	}
}
