package kdtree

import (
	"testing"

	"udm/internal/rng"
)

func annotatedTree(t *testing.T, n, d int, withAux, withWeights bool) (*Tree, *Subtrees, [][]float64, [][]float64, []float64) {
	t.Helper()
	r := rng.New(7)
	pts := make([][]float64, n)
	var aux [][]float64
	var wts []float64
	if withAux {
		aux = make([][]float64, n)
	}
	if withWeights {
		wts = make([]float64, n)
	}
	for i := range pts {
		pts[i] = make([]float64, d)
		for j := range pts[i] {
			pts[i][j] = r.Norm(0, 10)
		}
		if withAux {
			aux[i] = make([]float64, d)
			for j := range aux[i] {
				aux[i][j] = r.Float64()
			}
		}
		if withWeights {
			wts[i] = 1 + r.Float64()*5
		}
	}
	tree, err := Build(pts)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := tree.Annotate(aux, wts)
	if err != nil {
		t.Fatal(err)
	}
	return tree, sub, pts, aux, wts
}

func TestAnnotateAggregates(t *testing.T) {
	tree, sub, pts, aux, wts := annotatedTree(t, 257, 3, true, true)
	d := tree.Dims()

	// The permutation must be a bijection over the points.
	if len(sub.Perm) != len(pts) {
		t.Fatalf("Perm has %d entries for %d points", len(sub.Perm), len(pts))
	}
	seen := make([]bool, len(pts))
	for _, i := range sub.Perm {
		if seen[i] {
			t.Fatalf("point %d appears twice in Perm", i)
		}
		seen[i] = true
	}

	// Every node: the span is exactly its subtree, the box bounds every
	// member, aux ranges bound every member's aux row, WSum adds up.
	var checkNode func(ni int)
	checkNode = func(ni int) {
		if ni < 0 {
			return
		}
		lo, hi := sub.Lo[ni], sub.Hi[ni]
		if int32(sub.Count[ni]) != hi-lo {
			t.Fatalf("node %d: Count %d != span %d", ni, sub.Count[ni], hi-lo)
		}
		var wsum float64
		for t2 := lo; t2 < hi; t2++ {
			i := sub.Perm[t2]
			wsum += wts[i]
			for j := 0; j < d; j++ {
				if pts[i][j] < sub.Min[ni*d+j] || pts[i][j] > sub.Max[ni*d+j] {
					t.Fatalf("node %d: point %d dim %d outside box", ni, i, j)
				}
				if aux[i][j] < sub.AuxMin[ni*d+j] || aux[i][j] > sub.AuxMax[ni*d+j] {
					t.Fatalf("node %d: aux %d dim %d outside range", ni, i, j)
				}
			}
		}
		if diff := wsum - sub.WSum[ni]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("node %d: WSum %v, members sum to %v", ni, sub.WSum[ni], wsum)
		}
		// Preorder: the node's own point leads its span, children's
		// spans partition the rest.
		pt, _, left, right := tree.Node(ni)
		if int(sub.Perm[lo]) != pt {
			t.Fatalf("node %d: own point %d not at span start (%d)", ni, pt, sub.Perm[lo])
		}
		next := lo + 1
		for _, child := range []int{left, right} {
			if child < 0 {
				continue
			}
			if sub.Lo[child] != next {
				t.Fatalf("node %d: child %d span starts at %d, want %d", ni, child, sub.Lo[child], next)
			}
			next = sub.Hi[child]
			checkNode(child)
		}
		if next != hi {
			t.Fatalf("node %d: children end at %d, span ends at %d", ni, next, hi)
		}
	}
	checkNode(tree.Root())
}

func TestAnnotateOptionalInputs(t *testing.T) {
	tree, sub, _, _, _ := annotatedTree(t, 64, 2, false, false)
	if sub.AuxMin != nil || sub.AuxMax != nil || sub.WSum != nil {
		t.Fatal("nil aux/weights must leave the optional aggregates nil")
	}
	if sub.Count[tree.Root()] != 64 {
		t.Fatalf("root count %d, want 64", sub.Count[tree.Root()])
	}
}

func TestAnnotateRejectsMismatchedInputs(t *testing.T) {
	pts := [][]float64{{0, 0}, {1, 1}, {2, 2}}
	tree, err := Build(pts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tree.Annotate([][]float64{{0, 0}}, nil); err == nil {
		t.Error("short aux accepted")
	}
	if _, err := tree.Annotate([][]float64{{0}, {0}, {0}}, nil); err == nil {
		t.Error("wrong-dim aux row accepted")
	}
	if _, err := tree.Annotate(nil, []float64{1}); err == nil {
		t.Error("short weights accepted")
	}
}
