package kdtree

import "fmt"

// Subtrees carries per-subtree aggregates for pruned traversals: the
// bounding box of every node's subtree, optional per-dimension min/max
// of an auxiliary matrix (the KDE engine passes per-point standard
// errors, so a traversal can bound the widened kernel without visiting
// the points), optional subtree weight sums (micro-cluster sizes), and
// a preorder permutation that makes every subtree a contiguous span.
//
// Fields are exported flat arrays rather than methods so the KDE inner
// loop can walk them without call overhead; the structure is immutable
// after Annotate and safe for concurrent readers, like the Tree.
type Subtrees struct {
	// Perm lists point indices in depth-first preorder (node, left
	// subtree, right subtree). Node n's subtree is exactly
	// Perm[Lo[n]:Hi[n]], so an accepted subtree is one contiguous scan.
	Perm []int32
	// Lo and Hi bound node n's span in Perm.
	Lo, Hi []int32
	// Count is the number of points in node n's subtree (Hi-Lo).
	Count []int32
	// Min and Max hold the subtree bounding box, indexed [n*Dims()+j].
	Min, Max []float64
	// AuxMin and AuxMax hold the subtree-wide min/max of the auxiliary
	// rows, indexed [n*Dims()+j]. Nil when Annotate got no aux.
	AuxMin, AuxMax []float64
	// WSum is the subtree weight sum. Nil when Annotate got no weights;
	// pruning bounds then use Count.
	WSum []float64
}

// Annotate computes subtree aggregates for pruned traversal. aux, when
// non-nil, must have one row per indexed point with Dims() entries
// (per-point, per-dimension standard errors in the KDE use); weights,
// when non-nil, must have one entry per point. The tree itself is not
// modified.
func (t *Tree) Annotate(aux [][]float64, weights []float64) (*Subtrees, error) {
	n, d := len(t.pts), t.dims
	if aux != nil {
		if len(aux) != n {
			return nil, fmt.Errorf("kdtree: %d aux rows for %d points", len(aux), n)
		}
		for i, a := range aux {
			if len(a) != d {
				return nil, fmt.Errorf("kdtree: aux row %d has %d dims, want %d", i, len(a), d)
			}
		}
	}
	if weights != nil && len(weights) != n {
		return nil, fmt.Errorf("kdtree: %d weights for %d points", len(weights), n)
	}
	s := &Subtrees{
		Perm:  make([]int32, 0, n),
		Lo:    make([]int32, len(t.nodes)),
		Hi:    make([]int32, len(t.nodes)),
		Count: make([]int32, len(t.nodes)),
		Min:   make([]float64, len(t.nodes)*d),
		Max:   make([]float64, len(t.nodes)*d),
	}
	if aux != nil {
		s.AuxMin = make([]float64, len(t.nodes)*d)
		s.AuxMax = make([]float64, len(t.nodes)*d)
	}
	if weights != nil {
		s.WSum = make([]float64, len(t.nodes))
	}
	s.annotate(t, t.root, aux, weights)
	return s, nil
}

// annotate fills node ni's aggregates bottom-up while emitting the
// preorder permutation top-down, so every subtree lands contiguous.
func (s *Subtrees) annotate(t *Tree, ni int, aux [][]float64, weights []float64) {
	if ni < 0 {
		return
	}
	nd := t.nodes[ni]
	d := t.dims
	s.Lo[ni] = int32(len(s.Perm))
	s.Perm = append(s.Perm, int32(nd.idx))
	// Seed the aggregates with the node's own point.
	p := t.pts[nd.idx]
	for j := 0; j < d; j++ {
		s.Min[ni*d+j], s.Max[ni*d+j] = p[j], p[j]
	}
	if aux != nil {
		a := aux[nd.idx]
		for j := 0; j < d; j++ {
			s.AuxMin[ni*d+j], s.AuxMax[ni*d+j] = a[j], a[j]
		}
	}
	if weights != nil {
		s.WSum[ni] = weights[nd.idx]
	}
	for _, child := range [2]int{nd.left, nd.right} {
		if child < 0 {
			continue
		}
		s.annotate(t, child, aux, weights)
		for j := 0; j < d; j++ {
			if v := s.Min[child*d+j]; v < s.Min[ni*d+j] {
				s.Min[ni*d+j] = v
			}
			if v := s.Max[child*d+j]; v > s.Max[ni*d+j] {
				s.Max[ni*d+j] = v
			}
			if aux != nil {
				if v := s.AuxMin[child*d+j]; v < s.AuxMin[ni*d+j] {
					s.AuxMin[ni*d+j] = v
				}
				if v := s.AuxMax[child*d+j]; v > s.AuxMax[ni*d+j] {
					s.AuxMax[ni*d+j] = v
				}
			}
		}
		if weights != nil {
			s.WSum[ni] += s.WSum[child]
		}
	}
	s.Hi[ni] = int32(len(s.Perm))
	s.Count[ni] = s.Hi[ni] - s.Lo[ni]
}

// Root returns the root node index for manual traversals.
func (t *Tree) Root() int { return t.root }

// Node exposes vertex ni for manual traversals: the index of its
// point, its splitting axis, and its child node indices (-1 = none).
func (t *Tree) Node(ni int) (pt, axis, left, right int) {
	n := &t.nodes[ni]
	return n.idx, n.axis, n.left, n.right
}
