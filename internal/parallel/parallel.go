// Package parallel is the shared worker-pool substrate behind every
// batch API in the repository: chunked fan-out over an index range with
// a configurable worker count P (≤ 0 means runtime.GOMAXPROCS(0)),
// deterministic result ordering, first-error-wins propagation in chunk
// order, and context cancellation.
//
// Determinism contract: every helper here assigns work to fixed index
// ranges and writes results into fixed slots, so the output of a batch
// computation is bit-for-bit identical for every worker count — the
// goroutine schedule can only change *when* a slot is written, never
// *what* is written. Reductions that would otherwise depend on
// summation order (Sum) collect per-index terms first and combine them
// in index order with compensated summation (internal/num.Sum).
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"udm/internal/faultinject"
	"udm/internal/num"
	"udm/internal/obs"
)

// chunkFault fires once per dispatched chunk, letting the fault-matrix
// suite fail or delay an arbitrary slice of a batch computation. When
// disarmed it costs one atomic load per chunk — noise next to the chunk
// itself.
var chunkFault = faultinject.NewPoint("parallel.chunk")

// Telemetry for the fan-out substrate. Counters are unconditional (one
// atomic add each); chunk timing — two time.Now calls per chunk — runs
// only on the multi-worker path and only while telemetry is enabled,
// so the serial fast path and UDM_OBS=off baselines stay uninstrumented
// beyond the atomic-load gate. Timing never feeds back into scheduling:
// chunk boundaries depend only on (n, workers), preserving the
// determinism contract.
var (
	forCalls = obs.Default().Counter("udm_parallel_for_calls_total",
		"batch fan-out calls (For/Map/Sum)")
	serialCalls = obs.Default().Counter("udm_parallel_serial_calls_total",
		"fan-out calls that took the single-worker serial path")
	chunksDispatched = obs.Default().Counter("udm_parallel_chunks_total",
		"work chunks dispatched to workers")
	chunkSeconds = obs.Default().Histogram("udm_parallel_chunk_seconds",
		"execution time of one work chunk", obs.ExpBuckets(1e-6, 4, 12))
	queueWaitSeconds = obs.Default().Histogram("udm_parallel_queue_wait_seconds",
		"delay between fan-out start and a chunk being picked up", obs.ExpBuckets(1e-6, 4, 12))
)

// Workers resolves a caller-supplied worker count the way every batch
// API in this module does: values ≤ 0 mean runtime.GOMAXPROCS(0).
func Workers(p int) int {
	if p <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p
}

// oversubscribe is the number of chunks handed to each worker. Chunks
// are smaller than one worker's equal share so that cheap chunks
// finishing early leave their worker free to steal remaining ones —
// load balance without per-index dispatch overhead. Chunk boundaries
// depend only on (n, workers), never on the schedule.
const oversubscribe = 4

// For runs fn over the index range [0, n), split into contiguous chunks
// executed by min(Workers(p), n) worker goroutines. fn receives the
// half-open range [start, end) it owns; ranges never overlap and
// together cover [0, n) exactly, so workers may write to disjoint slots
// of a shared output slice without synchronization.
//
// The first error, in chunk order (not completion order), aborts the
// batch: chunks not yet started are skipped and the error is returned.
// Cancelling ctx likewise stops new chunks from starting and returns
// ctx.Err() (a nil ctx means context.Background()). Chunks already
// running always run to completion.
func For(ctx context.Context, n, p int, fn func(start, end int) error) error {
	if n <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	workers := Workers(p)
	if workers > n {
		workers = n
	}
	forCalls.Inc()
	if workers == 1 {
		if err := ctx.Err(); err != nil {
			return err
		}
		serialCalls.Inc()
		chunksDispatched.Inc()
		if err := chunkFault.Hit(ctx); err != nil {
			return err
		}
		return fn(0, n)
	}
	chunks := workers * oversubscribe
	if chunks > n {
		chunks = n
	}
	timed := obs.Enabled()
	var began time.Time
	if timed {
		began = time.Now()
	}
	errs := make([]error, chunks)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= chunks || failed.Load() || ctx.Err() != nil {
					return
				}
				chunksDispatched.Inc()
				var picked time.Time
				if timed {
					picked = time.Now()
					queueWaitSeconds.Observe(picked.Sub(began).Seconds())
				}
				start, end := c*n/chunks, (c+1)*n/chunks
				err := chunkFault.Hit(ctx)
				if err == nil {
					err = fn(start, end)
				}
				if timed {
					chunkSeconds.Observe(time.Since(picked).Seconds())
				}
				if err != nil {
					errs[c] = err
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}

// Map evaluates fn for every index in [0, n) using up to Workers(p)
// goroutines and returns the results in index order. The output is
// identical for every worker count. On error (or cancellation) the
// partial results are discarded and the first error in chunk order is
// returned.
func Map[T any](ctx context.Context, n, p int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := For(ctx, n, p, func(start, end int) error {
		for i := start; i < end; i++ {
			v, err := fn(i)
			if err != nil {
				return err
			}
			out[i] = v
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MapChunks is Map with chunk-granular dispatch: fn receives the
// half-open index range [start, end) it owns and the corresponding
// window of the output slice (out[i-start] is the slot for index i).
// Seeing the whole chunk lets fn amortize per-chunk setup — scratch
// buffers from a pool, column-major layouts — across every index in
// it, which per-index Map cannot offer. Chunk boundaries depend only
// on (n, workers) and every slot is written by exactly one chunk, so
// the output remains bit-for-bit identical for every worker count.
func MapChunks[T any](ctx context.Context, n, p int, fn func(start, end int, out []T) error) ([]T, error) {
	out := make([]T, n)
	err := For(ctx, n, p, func(start, end int) error {
		return fn(start, end, out[start:end])
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Sum evaluates term(i) for every index in [0, n) in parallel and
// returns the compensated sum (internal/num.Sum) of all terms taken in
// index order. Because the reduction order is fixed — terms are
// collected into their index slots first, then folded left to right —
// the result is bit-for-bit identical for every worker count, unlike a
// naive per-goroutine accumulation.
func Sum(ctx context.Context, n, p int, term func(i int) float64) (float64, error) {
	terms, err := Map(ctx, n, p, func(i int) (float64, error) {
		return term(i), nil
	})
	if err != nil {
		return 0, err
	}
	return num.Sum(terms), nil
}
