package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"udm/internal/num"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(5); got != 5 {
		t.Fatalf("Workers(5) = %d", got)
	}
}

// TestForCoversRangeExactly checks, for sizes around every chunking
// boundary and several worker counts, that the chunks partition [0, n):
// every index is visited exactly once.
func TestForCoversRangeExactly(t *testing.T) {
	for _, p := range []int{1, 2, 3, 8} {
		sizes := []int{0, 1, p - 1, p, p + 1, 4 * p, 4*p - 1, 4*p + 1, 1000}
		for _, n := range sizes {
			if n < 0 {
				continue
			}
			t.Run(fmt.Sprintf("p=%d/n=%d", p, n), func(t *testing.T) {
				visits := make([]int, n)
				err := For(context.Background(), n, p, func(start, end int) error {
					if start < 0 || end > n || start > end {
						return fmt.Errorf("bad chunk [%d,%d) for n=%d", start, end, n)
					}
					for i := start; i < end; i++ {
						visits[i]++ // disjoint chunks: no lock needed
					}
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
				for i, v := range visits {
					if v != 1 {
						t.Fatalf("index %d visited %d times", i, v)
					}
				}
			})
		}
	}
}

// TestMapDeterministicAcrossWorkers asserts the core determinism
// contract: Map output is identical (==, not approximately) for P=1 and
// larger worker counts.
func TestMapDeterministicAcrossWorkers(t *testing.T) {
	const n = 777
	fn := func(i int) (float64, error) {
		return 1.0 / float64(i+1), nil
	}
	want, err := Map(context.Background(), n, 1, fn)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 3, 8, 64} {
		got, err := Map(context.Background(), n, p, fn)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("p=%d: index %d = %v, want %v", p, i, got[i], want[i])
			}
		}
	}
}

func TestForErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	for _, p := range []int{1, 4} {
		err := For(context.Background(), 100, p, func(start, end int) error {
			for i := start; i < end; i++ {
				if i == 37 {
					return fmt.Errorf("index %d: %w", i, boom)
				}
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("p=%d: error %v, want wrapped boom", p, err)
		}
	}
	// Map discards partial results on error.
	out, err := Map(context.Background(), 10, 4, func(i int) (int, error) {
		if i == 5 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) || out != nil {
		t.Fatalf("Map after error: out=%v err=%v", out, err)
	}
}

func TestForContextCancellation(t *testing.T) {
	// Already-cancelled context: no work runs at all.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := For(ctx, 8, 1, func(start, end int) error {
		ran = true
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled: error %v", err)
	}
	if ran {
		t.Fatal("pre-cancelled context still ran a chunk")
	}

	// Cancellation mid-run: the first chunk cancels the rest; later
	// chunks must be skipped and ctx.Err() reported.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	var mu sync.Mutex
	started := 0
	err = For(ctx2, 1000, 2, func(start, end int) error {
		mu.Lock()
		started++
		mu.Unlock()
		cancel2()
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run cancel: error %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if started > 3 { // ≤ one in-flight chunk per worker after the cancel
		t.Fatalf("%d chunks started after cancellation", started)
	}
}

func TestForZeroAndNilContext(t *testing.T) {
	if err := For(context.Background(), 0, 4, func(int, int) error { return errors.New("no") }); err != nil {
		t.Fatalf("n=0: %v", err)
	}
	if err := For(nil, 5, 2, func(int, int) error { return nil }); err != nil { //nolint:staticcheck // nil ctx is part of the contract
		t.Fatalf("nil ctx: %v", err)
	}
}

// TestSumMatchesCompensatedSerial asserts Sum's fixed reduction order:
// for every worker count the result equals num.Sum over the terms in
// index order, bit for bit.
func TestSumMatchesCompensatedSerial(t *testing.T) {
	const n = 1234
	term := func(i int) float64 {
		// Alternating, wide-magnitude terms make summation-order
		// differences visible if the reduction were per-goroutine.
		s := 1.0
		if i%2 == 1 {
			s = -1.0
		}
		return s * (1e10 / float64(i+1))
	}
	serial := make([]float64, n)
	for i := range serial {
		serial[i] = term(i)
	}
	want := num.Sum(serial)
	for _, p := range []int{1, 2, 8, 32} {
		got, err := Sum(context.Background(), n, p, term)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("p=%d: Sum = %v, want %v", p, got, want)
		}
	}
}

// TestMapChunksMatchesMap: the chunk-granular variant must produce the
// same output as per-index Map for every worker count, with each out
// window aliasing exactly its [start, end) slots.
func TestMapChunksMatchesMap(t *testing.T) {
	for _, n := range []int{0, 1, 7, 64, 1000} {
		for _, p := range []int{1, 2, 8} {
			want, err := Map(context.Background(), n, p, func(i int) (int, error) {
				return i * i, nil
			})
			if err != nil {
				t.Fatal(err)
			}
			got, err := MapChunks(context.Background(), n, p, func(start, end int, out []int) error {
				if len(out) != end-start {
					return fmt.Errorf("window len %d for chunk [%d,%d)", len(out), start, end)
				}
				for i := start; i < end; i++ {
					out[i-start] = i * i
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("n=%d p=%d: %d results, want %d", n, p, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d p=%d slot %d: %d != %d", n, p, i, got[i], want[i])
				}
			}
		}
	}
}

// TestMapChunksError: a failing chunk discards results and surfaces
// the error.
func TestMapChunksError(t *testing.T) {
	boom := errors.New("boom")
	out, err := MapChunks(context.Background(), 100, 4, func(start, end int, _ []int) error {
		if start >= 50 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if out != nil {
		t.Fatal("partial results returned on error")
	}
}
