package load

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"udm/internal/server"
)

func TestParseMix(t *testing.T) {
	m, err := ParseMix("density=0.7, ingest=0.2,classify=0.1")
	if err != nil {
		t.Fatal(err)
	}
	want := Mix{Density: 0.7, Classify: 0.1, Ingest: 0.2}
	if m != want {
		t.Fatalf("ParseMix = %+v, want %+v", m, want)
	}
	for _, bad := range []string{"", "density", "density=-1", "density=x", "nope=1", "density=0"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) succeeded, want error", bad)
		}
	}
}

func testConfig(url string) *Config {
	return &Config{
		BaseURL:    url,
		Model:      "live",
		Tenants:    []string{"t1", "t2"},
		Streams:    3,
		Requests:   10,
		Workers:    4,
		Seed:       7,
		Mix:        Mix{Density: 0.6, Classify: 0.2, Ingest: 0.2},
		Namespaced: true,
		ProbeEvery: 4,
	}
}

// TestStreamPlanDeterministic: the schedule is a pure function of
// (config, tenant, stream) — worker count and timing play no part.
func TestStreamPlanDeterministic(t *testing.T) {
	cfg := testConfig("http://example")
	cfg.BurstProb = 0.2
	a, err := streamPlan(cfg, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := streamPlan(cfg, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("replaying the same (tenant, stream) produced a different plan")
	}
	c, err := streamPlan(cfg, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("distinct streams produced identical plans")
	}
	cfg2 := *cfg
	cfg2.Seed = 8
	d, err := streamPlan(&cfg2, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, d) {
		t.Fatal("distinct seeds produced identical plans")
	}
}

// TestStreamPlanReadOnlyTenant: write-restricted configs fold ingest
// away from read-only tenants and schedule their probes.
func TestStreamPlanReadOnlyTenant(t *testing.T) {
	cfg := testConfig("http://example")
	cfg.WriteTenants = []string{"t1"}
	probes := 0
	for _, ti := range []int{0, 1} {
		steps, err := streamPlan(cfg, ti, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, st := range steps {
			if st.op == OpIngest && cfg.Tenants[ti] == "t2" {
				t.Fatal("read-only tenant t2 scheduled an ingest")
			}
			if st.probe {
				if cfg.Tenants[ti] == "t1" {
					t.Fatal("writable tenant t1 scheduled a probe")
				}
				probes++
			}
		}
	}
	if probes == 0 {
		t.Fatal("read-only tenant scheduled no probes")
	}
}

// stub is a minimal tenant-aware target: it echoes the tenant it
// resolved and serves a per-tenant constant density.
type stub struct {
	mu       sync.Mutex
	requests map[string]int              // tenant -> count
	echo     func(tenant string) string  // header to echo (identity by default)
	density  func(tenant string) float64 // probe answer
}

func newStub() *stub {
	return &stub{
		requests: map[string]int{},
		echo:     func(tenant string) string { return tenant },
		density:  func(string) float64 { return 0.5 },
	}
}

func (st *stub) handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(w http.ResponseWriter, r *http.Request) {
		tenant := r.PathValue("tenant")
		if tenant == "" {
			tenant = r.Header.Get(server.TenantHeader)
		}
		if tenant == "" {
			tenant = server.DefaultTenant
		}
		st.mu.Lock()
		st.requests[tenant]++
		d := st.density(tenant)
		st.mu.Unlock()
		w.Header().Set(server.TenantHeader, st.echo(tenant))
		fmt.Fprintf(w, `{"density": %g, "densities": [%g], "labels": [0], "ingested": 1, "count": 1}`, d, d)
	}
	for _, p := range []string{"/v1/models/{model}/{endpoint}", "/v1/t/{tenant}/models/{model}/{endpoint}"} {
		mux.HandleFunc("POST "+p, handle)
	}
	return mux
}

// TestRunCleanTarget: a well-behaved target yields zero violations and
// the planned request count per tenant.
func TestRunCleanTarget(t *testing.T) {
	st := newStub()
	ts := httptest.NewServer(st.handler())
	defer ts.Close()

	cfg := testConfig(ts.URL)
	cfg.WriteTenants = []string{"t1"} // t2 becomes the probed read-only tenant
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violations != 0 {
		t.Fatalf("clean target reported %d violations: %v", rep.Violations, rep.Samples)
	}
	wantPerTenant := cfg.Streams * cfg.Requests
	for _, tr := range rep.PerTenant {
		if tr.Requests != wantPerTenant {
			t.Errorf("tenant %s: %d stream requests, want %d", tr.Tenant, tr.Requests, wantPerTenant)
		}
		if tr.Errors != 0 || tr.Shed != 0 {
			t.Errorf("tenant %s: errors=%d shed=%d on a clean target", tr.Tenant, tr.Errors, tr.Shed)
		}
		if tr.P99Ms < tr.P50Ms {
			t.Errorf("tenant %s: p99 %.3f < p50 %.3f", tr.Tenant, tr.P99Ms, tr.P50Ms)
		}
	}
	if rep.TotalRequests != 2*wantPerTenant {
		t.Errorf("total %d, want %d", rep.TotalRequests, 2*wantPerTenant)
	}
	// The stub also saw the probes (baseline + in-stream + closing).
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.requests["t2"] <= wantPerTenant {
		t.Errorf("read-only tenant saw %d requests, want > %d (probes ride on top)", st.requests["t2"], wantPerTenant)
	}
}

// TestRunDetectsEchoViolation: a target that misattributes tenants is
// caught by the echo check on every stream request.
func TestRunDetectsEchoViolation(t *testing.T) {
	st := newStub()
	st.echo = func(tenant string) string {
		if tenant == "t2" {
			return "t1" // cross-tenant echo
		}
		return tenant
	}
	ts := httptest.NewServer(st.handler())
	defer ts.Close()

	cfg := testConfig(ts.URL)
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violations == 0 {
		t.Fatal("cross-tenant echo went undetected")
	}
	if len(rep.Samples) == 0 || !strings.Contains(rep.Samples[0], "echoed") {
		t.Fatalf("violation samples = %v, want echo violations", rep.Samples)
	}
}

// TestRunDetectsProbeDrift: a read-only tenant whose density answer
// changes mid-run breaks the bit-identity probe.
func TestRunDetectsProbeDrift(t *testing.T) {
	st := newStub()
	seen := 0
	st.density = func(tenant string) float64 {
		if tenant != "t2" {
			return 0.5
		}
		seen++ // st.mu is held by the handler
		if seen > 1 {
			return 0.25 // drift after the baseline observation
		}
		return 0.5
	}
	ts := httptest.NewServer(st.handler())
	defer ts.Close()

	cfg := testConfig(ts.URL)
	cfg.WriteTenants = []string{"t1"}
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violations == 0 {
		t.Fatal("probe drift went undetected")
	}
	found := false
	for _, s := range rep.Samples {
		if strings.Contains(s, "drifted") {
			found = true
		}
	}
	if !found {
		t.Fatalf("violation samples = %v, want a probe drift violation", rep.Samples)
	}
}

// TestRunLegacyPathsUseHeader: Namespaced=false drives the legacy
// /v1 paths, with the tenant carried by the header alone.
func TestRunLegacyPathsUseHeader(t *testing.T) {
	st := newStub()
	ts := httptest.NewServer(st.handler())
	defer ts.Close()

	cfg := testConfig(ts.URL)
	cfg.Namespaced = false
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violations != 0 {
		t.Fatalf("legacy-path run reported violations: %v", rep.Samples)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.requests["t1"] == 0 || st.requests["t2"] == 0 {
		t.Fatalf("header-resolved tenants missing from stub counts: %v", st.requests)
	}
}

// TestConfigValidate rejects the malformed configs the CLI can feed in.
func TestConfigValidate(t *testing.T) {
	good := testConfig("http://example")
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Config{
		{Model: "m", Tenants: []string{"a"}, Streams: 1, Requests: 1, Mix: Mix{Density: 1}},
		{BaseURL: "x", Model: "..", Tenants: []string{"a"}, Streams: 1, Requests: 1, Mix: Mix{Density: 1}},
		{BaseURL: "x", Model: "m", Streams: 1, Requests: 1, Mix: Mix{Density: 1}},
		{BaseURL: "x", Model: "m", Tenants: []string{"a/b"}, Streams: 1, Requests: 1, Mix: Mix{Density: 1}},
		{BaseURL: "x", Model: "m", Tenants: []string{"a"}, Streams: 0, Requests: 1, Mix: Mix{Density: 1}},
		{BaseURL: "x", Model: "m", Tenants: []string{"a"}, Streams: 1, Requests: 1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
}

// TestReportJSONShape: the report marshals with the stable keys the
// BENCH_serve.json trajectory and loadtest.sh grep for.
func TestReportJSONShape(t *testing.T) {
	rep := &Report{Target: "x", Model: "m", PerTenant: []TenantReport{{Tenant: "a"}}}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"per_tenant", "violations", "throughput_rps", "p99_ms", "wall_seconds"} {
		if !strings.Contains(string(raw), key) {
			t.Errorf("report JSON missing key %q: %s", key, raw)
		}
	}
}
