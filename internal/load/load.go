// Package load is the multi-tenant replay harness behind cmd/udmload:
// it synthesizes N tenants × M seeded user streams of classify /
// density / outlier / ingest traffic from internal/datagen profiles
// and drives them against a running udmserve or udmproxy over plain
// HTTP, measuring per-tenant latency quantiles and throughput while
// actively checking the tenancy contract from the outside.
//
// Two isolation invariants are verified on every run and reported as
// violations (the loadtest gate requires zero):
//
//   - tenant echo: every response must carry X-UDM-Tenant equal to the
//     tenant the request was issued for — a mismatch means a request
//     crossed a namespace boundary somewhere in the serving tier;
//   - probe bit-identity: for read-only tenants (streams that never
//     ingest), a fixed probe point's density must stay bit-for-bit
//     identical from the first observation to the last, no matter how
//     hard other tenants burst, swap models, or trip breakers.
//
// The workload is a pure function of Config.Seed: points, operation
// mix, think times and burst positions are all drawn from
// internal/rng sources split per (tenant, stream), so two runs against
// the same server replay the identical request sequence regardless of
// the worker count (only the interleaving differs). Concurrency runs
// through internal/parallel like every other fan-out in the module.
package load

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"udm/internal/datagen"
	"udm/internal/faultinject"
	"udm/internal/parallel"
	"udm/internal/rng"
	"udm/internal/server"
	"udm/internal/udmerr"
)

// sendFault injects client-side chaos (latency, drops) on the request
// path, so the harness itself can be stressed and so loadtest chaos
// stages can degrade the client independently of the server's sites.
var sendFault = faultinject.NewPoint("load.request.send")

// Op is one request kind the synthetic streams can issue.
type Op string

const (
	OpDensity  Op = "density"
	OpClassify Op = "classify"
	OpOutliers Op = "outliers"
	OpIngest   Op = "ingest"
)

// Mix holds the relative weights of the operation kinds. Weights are
// normalized per draw; a zero weight disables the kind.
type Mix struct {
	Density  float64
	Classify float64
	Outliers float64
	Ingest   float64
}

// ParseMix parses "density=0.7,ingest=0.3" into a Mix.
func ParseMix(s string) (Mix, error) {
	var m Mix
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return Mix{}, fmt.Errorf("load: mix term %q wants op=weight: %w", part, udmerr.ErrBadOption)
		}
		var w float64
		if _, err := fmt.Sscanf(val, "%g", &w); err != nil || w < 0 {
			return Mix{}, fmt.Errorf("load: mix weight %q: %w", val, udmerr.ErrBadOption)
		}
		switch Op(name) {
		case OpDensity:
			m.Density = w
		case OpClassify:
			m.Classify = w
		case OpOutliers:
			m.Outliers = w
		case OpIngest:
			m.Ingest = w
		default:
			return Mix{}, fmt.Errorf("load: unknown op %q in mix: %w", name, udmerr.ErrBadOption)
		}
	}
	if m.Density+m.Classify+m.Outliers+m.Ingest <= 0 {
		return Mix{}, fmt.Errorf("load: mix has no positive weight: %w", udmerr.ErrBadOption)
	}
	return m, nil
}

// Config describes one replay run.
type Config struct {
	// BaseURL is the server or proxy under test (e.g. http://127.0.0.1:8080).
	BaseURL string
	// Model is the bare model name served under every tenant.
	Model string
	// Tenants lists the tenant ids to drive.
	Tenants []string
	// Streams is the number of seeded user streams per tenant.
	Streams int
	// Requests is the number of requests each stream issues.
	Requests int
	// Workers bounds concurrently running streams (≤ 0: GOMAXPROCS).
	Workers int
	// Seed makes the whole workload reproducible.
	Seed int64
	// Think is the mean think time between requests (exponentially
	// distributed; 0 disables pacing).
	Think time.Duration
	// BurstProb is the per-step chance a stream enters a burst of
	// BurstLen back-to-back requests with no think time.
	BurstProb float64
	// BurstLen is the burst length (default 8 when BurstProb > 0).
	BurstLen int
	// Mix is the operation mix. Ingest weight applies only to tenants
	// in WriteTenants (all tenants when the list is empty); for the
	// others its weight folds into density and the tenant becomes a
	// read-only probe tenant whose answers must stay bit-identical.
	Mix Mix
	// WriteTenants restricts which tenants may ingest.
	WriteTenants []string
	// Namespaced selects /v1/t/{tenant}/... paths; otherwise the legacy
	// /v1/... paths are used with the X-UDM-Tenant header.
	Namespaced bool
	// ProbeEvery re-issues the bit-identity probe every that many
	// requests per read-only stream (0: only before and after the run).
	ProbeEvery int
	// Timeout bounds each request (default 10s).
	Timeout time.Duration
	// Client overrides the HTTP client (tests inject httptest clients).
	Client *http.Client
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.BaseURL == "" {
		return fmt.Errorf("load: base URL required: %w", udmerr.ErrBadOption)
	}
	if !server.ValidIdent(c.Model) {
		return fmt.Errorf("load: invalid model name %q: %w", c.Model, udmerr.ErrBadOption)
	}
	if len(c.Tenants) == 0 {
		return fmt.Errorf("load: at least one tenant required: %w", udmerr.ErrBadOption)
	}
	for _, t := range c.Tenants {
		if !server.ValidIdent(t) {
			return fmt.Errorf("load: invalid tenant id %q: %w", t, udmerr.ErrBadOption)
		}
	}
	if c.Streams <= 0 || c.Requests <= 0 {
		return fmt.Errorf("load: streams and requests must be positive: %w", udmerr.ErrBadOption)
	}
	if c.Mix.Density+c.Mix.Classify+c.Mix.Outliers+c.Mix.Ingest <= 0 {
		return fmt.Errorf("load: empty operation mix: %w", udmerr.ErrBadOption)
	}
	return nil
}

// writable reports whether tenant may issue ingest requests.
func (c *Config) writable(tenant string) bool {
	if len(c.WriteTenants) == 0 {
		return true
	}
	for _, t := range c.WriteTenants {
		if t == tenant {
			return true
		}
	}
	return false
}

// mixFor returns the effective mix for tenant: read-only tenants fold
// the ingest weight into density so the request rate is comparable.
func (c *Config) mixFor(tenant string) Mix {
	m := c.Mix
	if !c.writable(tenant) {
		m.Density += m.Ingest
		m.Ingest = 0
	}
	return m
}

// urlFor builds the endpoint URL for one tenant-scoped model call.
func (c *Config) urlFor(tenant, endpoint string) string {
	base := strings.TrimSuffix(c.BaseURL, "/")
	if c.Namespaced {
		return base + "/v1/t/" + tenant + "/models/" + c.Model + "/" + endpoint
	}
	return base + "/v1/models/" + c.Model + "/" + endpoint
}

// tenantSpec derives the synthetic data profile for the i-th tenant: a
// two-blob mixture with tenant-shifted means, so tenants exercise
// distinct regions of the space while staying in-distribution for a
// two-blob-trained model.
func tenantSpec(i int) *datagen.Spec {
	s := datagen.TwoBlobs(5)
	off := 0.2 * float64(i)
	for ci := range s.Classes {
		for ki := range s.Classes[ci].Components {
			mean := s.Classes[ci].Components[ki].Mean
			for d := range mean {
				mean[d] += off
			}
		}
	}
	return s
}

// step is one planned request of a stream.
type step struct {
	op    Op
	point []float64
	think time.Duration
	probe bool // verify the probe answer right after this step
}

// streamPlan deterministically expands the full request schedule of
// one (tenant, stream) pair. The plan depends only on (cfg, tenant
// index, stream index) — never on timing or worker count.
func streamPlan(cfg *Config, ti, si int) ([]step, error) {
	tenant := cfg.Tenants[ti]
	src := rng.New(cfg.Seed).Split("load/" + tenant).Split(fmt.Sprintf("stream-%d", si))
	spec := tenantSpec(ti)
	ds, err := spec.Generate(cfg.Requests, src.Split("points"))
	if err != nil {
		return nil, err
	}
	mix := cfg.mixFor(tenant)
	weights := []float64{mix.Density, mix.Classify, mix.Outliers, mix.Ingest}
	ops := []Op{OpDensity, OpClassify, OpOutliers, OpIngest}
	opSrc := src.Split("ops")
	paceSrc := src.Split("pace")
	burstLen := cfg.BurstLen
	if burstLen <= 0 {
		burstLen = 8
	}
	readOnly := !cfg.writable(tenant)

	steps := make([]step, cfg.Requests)
	burst := 0
	meanSec := cfg.Think.Seconds()
	for i := 0; i < cfg.Requests; i++ {
		st := step{
			op:    ops[opSrc.Categorical(weights)],
			point: ds.X[i],
		}
		if burst == 0 && cfg.BurstProb > 0 && paceSrc.Bool(cfg.BurstProb) {
			burst = burstLen
		}
		if burst > 0 {
			burst--
		} else if meanSec > 0 {
			st.think = time.Duration(paceSrc.Exp(1/meanSec) * float64(time.Second))
		}
		if readOnly && cfg.ProbeEvery > 0 && (i+1)%cfg.ProbeEvery == 0 {
			st.probe = true
		}
		steps[i] = st
	}
	return steps, nil
}

// streamResult accumulates one stream's observations. Streams own
// disjoint result slots (parallel.For's range contract), so no locks.
type streamResult struct {
	durations  []time.Duration
	ok         int
	shed       int
	errors     int
	violations []string
}

// TenantReport is the per-tenant aggregate of a run.
type TenantReport struct {
	Tenant     string  `json:"tenant"`
	Requests   int     `json:"requests"`
	OK         int     `json:"ok"`
	Shed       int     `json:"shed"`
	Errors     int     `json:"errors"`
	Violations int     `json:"violations"`
	P50Ms      float64 `json:"p50_ms"`
	P99Ms      float64 `json:"p99_ms"`
	MeanMs     float64 `json:"mean_ms"`
	Throughput float64 `json:"throughput_rps"`
}

// Report is the outcome of one replay run.
type Report struct {
	Target        string           `json:"target"`
	Model         string           `json:"model"`
	Seed          int64            `json:"seed"`
	Tenants       int              `json:"tenants"`
	Streams       int              `json:"streams_per_tenant"`
	PerStream     int              `json:"requests_per_stream"`
	Namespaced    bool             `json:"namespaced"`
	WallSeconds   float64          `json:"wall_seconds"`
	TotalRequests int              `json:"total_requests"`
	Throughput    float64          `json:"throughput_rps"`
	PerTenant     []TenantReport   `json:"per_tenant"`
	Violations    int              `json:"violations"`
	Samples       []string         `json:"violation_samples,omitempty"`
	FaultsFired   map[string]int64 `json:"faults_fired,omitempty"`
}

// runner is the per-run state shared by all streams.
type runner struct {
	cfg    *Config
	client *http.Client

	mu       sync.Mutex
	baseline map[string]uint64 // tenant -> first probe density bits
}

// densityResponse is the subset of the wire answer the probe needs.
type densityResponse struct {
	Density   *float64  `json:"density"`
	Densities []float64 `json:"densities"`
}

// post issues one tenant-scoped POST and returns the status code and
// body. The tenant header rides on every request — harmless on
// namespaced paths (path wins) and load-bearing on legacy ones.
func (rn *runner) post(ctx context.Context, tenant, endpoint string, body any) (int, []byte, http.Header, error) {
	if err := sendFault.Hit(ctx); err != nil {
		return 0, nil, nil, err
	}
	payload, err := json.Marshal(body)
	if err != nil {
		return 0, nil, nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rn.cfg.urlFor(tenant, endpoint), bytes.NewReader(payload))
	if err != nil {
		return 0, nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(server.TenantHeader, tenant)
	resp, err := rn.client.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, raw, resp.Header, nil
}

// probePoint is the fixed coordinate whose density anchors the
// bit-identity check; dims match the tenant specs (two-blob, 2-D).
var probePoint = []float64{0.25, -0.25}

// probe issues the bit-identity probe for tenant and compares against
// the run's first observation. It returns a violation message or "".
func (rn *runner) probe(ctx context.Context, tenant string) (string, error) {
	status, raw, _, err := rn.post(ctx, tenant, "density", map[string]any{"point": probePoint})
	if err != nil {
		return "", err
	}
	if status != http.StatusOK {
		// Overload shedding (429) is a legitimate answer mid-burst; the
		// probe simply learns nothing from it.
		return "", nil
	}
	var dr densityResponse
	if err := json.Unmarshal(raw, &dr); err != nil {
		return "", err
	}
	if dr.Density == nil {
		return fmt.Sprintf("tenant %s: probe answer missing density", tenant), nil
	}
	bits := math.Float64bits(*dr.Density)
	rn.mu.Lock()
	defer rn.mu.Unlock()
	prev, seen := rn.baseline[tenant]
	if !seen {
		rn.baseline[tenant] = bits
		return "", nil
	}
	if bits != prev {
		return fmt.Sprintf("tenant %s: probe density drifted: %x -> %x (read-only tenant must answer bit-identically)",
			tenant, prev, bits), nil
	}
	return "", nil
}

// runStream replays one planned stream and records its observations.
func (rn *runner) runStream(ctx context.Context, tenant string, steps []step, out *streamResult) error {
	out.durations = make([]time.Duration, 0, len(steps))
	for _, st := range steps {
		if st.think > 0 {
			select {
			case <-time.After(st.think):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		var body any
		switch st.op {
		case OpDensity:
			body = map[string]any{"point": st.point}
		case OpClassify:
			body = map[string]any{"point": st.point}
		case OpOutliers:
			body = map[string]any{"points": [][]float64{st.point}}
		case OpIngest:
			body = map[string]any{"points": [][]float64{st.point}}
		}
		began := time.Now()
		status, _, hdr, err := rn.post(ctx, tenant, string(st.op), body)
		out.durations = append(out.durations, time.Since(began))
		switch {
		case err != nil:
			if ctx.Err() != nil {
				return ctx.Err()
			}
			out.errors++
		case status == http.StatusOK:
			out.ok++
			if echo := hdr.Get(server.TenantHeader); echo != tenant {
				out.violations = append(out.violations,
					fmt.Sprintf("tenant %s: response echoed %s=%q", tenant, server.TenantHeader, echo))
			}
		case status == http.StatusTooManyRequests:
			out.shed++
			// Shed answers must still identify the tenant they refused.
			if echo := hdr.Get(server.TenantHeader); echo != "" && echo != tenant {
				out.violations = append(out.violations,
					fmt.Sprintf("tenant %s: 429 echoed %s=%q", tenant, server.TenantHeader, echo))
			}
		default:
			out.errors++
		}
		if st.probe {
			v, err := rn.probe(ctx, tenant)
			if err != nil && ctx.Err() != nil {
				return ctx.Err()
			}
			if v != "" {
				out.violations = append(out.violations, v)
			}
		}
	}
	return nil
}

// Run executes the configured replay and aggregates the report.
func Run(ctx context.Context, cfg *Config) (*Report, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	client := cfg.Client
	if client == nil {
		timeout := cfg.Timeout
		if timeout <= 0 {
			timeout = 10 * time.Second
		}
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConnsPerHost = parallel.Workers(cfg.Workers)
		client = &http.Client{Timeout: timeout, Transport: tr}
	}
	rn := &runner{cfg: cfg, client: client, baseline: map[string]uint64{}}

	// Anchor every read-only tenant's probe baseline before any load, so
	// drift during the run is caught even by the first in-stream probe.
	for _, tenant := range cfg.Tenants {
		if cfg.writable(tenant) {
			continue
		}
		if v, err := rn.probe(ctx, tenant); err != nil {
			return nil, fmt.Errorf("load: baseline probe for tenant %s: %w", tenant, err)
		} else if v != "" {
			return nil, fmt.Errorf("load: baseline probe for tenant %s: %s: %w", tenant, v, udmerr.ErrDegraded)
		}
	}

	n := len(cfg.Tenants) * cfg.Streams
	results := make([]streamResult, n)
	began := time.Now()
	err := parallel.For(ctx, n, cfg.Workers, func(start, end int) error {
		for i := start; i < end; i++ {
			ti, si := i/cfg.Streams, i%cfg.Streams
			steps, err := streamPlan(cfg, ti, si)
			if err != nil {
				return err
			}
			if err := rn.runStream(ctx, cfg.Tenants[ti], steps, &results[i]); err != nil {
				return err
			}
		}
		return nil
	})
	wall := time.Since(began)
	if err != nil {
		return nil, err
	}

	// Closing probe: the last word on bit-identity for read-only tenants.
	closing := []string{}
	for _, tenant := range cfg.Tenants {
		if cfg.writable(tenant) {
			continue
		}
		v, err := rn.probe(ctx, tenant)
		if err != nil {
			return nil, fmt.Errorf("load: closing probe for tenant %s: %w", tenant, err)
		}
		if v != "" {
			closing = append(closing, v)
		}
	}

	return assemble(cfg, results, closing, wall), nil
}

// assemble folds stream results into the report.
func assemble(cfg *Config, results []streamResult, closing []string, wall time.Duration) *Report {
	rep := &Report{
		Target:      cfg.BaseURL,
		Model:       cfg.Model,
		Seed:        cfg.Seed,
		Tenants:     len(cfg.Tenants),
		Streams:     cfg.Streams,
		PerStream:   cfg.Requests,
		Namespaced:  cfg.Namespaced,
		WallSeconds: wall.Seconds(),
	}
	wallSec := wall.Seconds()
	for ti, tenant := range cfg.Tenants {
		tr := TenantReport{Tenant: tenant}
		var durs []time.Duration
		for si := 0; si < cfg.Streams; si++ {
			r := &results[ti*cfg.Streams+si]
			tr.OK += r.ok
			tr.Shed += r.shed
			tr.Errors += r.errors
			tr.Violations += len(r.violations)
			for _, v := range r.violations {
				if len(rep.Samples) < 8 {
					rep.Samples = append(rep.Samples, v)
				}
			}
			durs = append(durs, r.durations...)
		}
		for _, v := range closing {
			if strings.HasPrefix(v, "tenant "+tenant+":") {
				tr.Violations++
				if len(rep.Samples) < 8 {
					rep.Samples = append(rep.Samples, v)
				}
			}
		}
		tr.Requests = tr.OK + tr.Shed + tr.Errors
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		if len(durs) > 0 {
			var sum time.Duration
			for _, d := range durs {
				sum += d
			}
			tr.MeanMs = sum.Seconds() * 1e3 / float64(len(durs))
			tr.P50Ms = quantile(durs, 0.50).Seconds() * 1e3
			tr.P99Ms = quantile(durs, 0.99).Seconds() * 1e3
		}
		if wallSec > 0 {
			tr.Throughput = float64(tr.Requests) / wallSec
		}
		rep.TotalRequests += tr.Requests
		rep.Violations += tr.Violations
		rep.PerTenant = append(rep.PerTenant, tr)
	}
	if wallSec > 0 {
		rep.Throughput = float64(rep.TotalRequests) / wallSec
	}
	if faultinject.Enabled() {
		fired := map[string]int64{}
		for _, site := range faultinject.Sites() {
			if n := faultinject.Fired(site); n > 0 {
				fired[site] = n
			}
		}
		if len(fired) > 0 {
			rep.FaultsFired = fired
		}
	}
	return rep
}

// quantile returns the q-quantile of sorted durations (nearest-rank on
// the sorted slice, the same convention the server's histograms use).
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
