package cluster

import (
	"fmt"
	"math"

	"udm/internal/dataset"
	"udm/internal/microcluster"
	"udm/internal/num"
	"udm/internal/rng"
)

// KMeansOptions configure uncertain k-means.
type KMeansOptions struct {
	// K is the number of clusters (required ≥ 1).
	K int
	// MaxIter bounds Lloyd iterations (default 100).
	MaxIter int
	// Tol stops when the largest centroid movement (squared) drops below
	// it (default 1e-6).
	Tol float64
	// ErrorAdjust uses the Eq. 5 error-adjusted distance for assignment —
	// the paper's Figure-2 argument: a point whose error ellipse covers a
	// centroid should be assignable to it even if another centroid is
	// nominally closer. When false, plain squared Euclidean distance is
	// used (standard k-means).
	ErrorAdjust bool
	// Seed drives k-means++ initialization.
	Seed int64
}

// KMeansResult is the outcome of a k-means run.
type KMeansResult struct {
	// Labels assigns each row a cluster in [0, K).
	Labels []int
	// Centroids holds the final cluster centers.
	Centroids [][]float64
	// Iterations is the number of Lloyd rounds performed.
	Iterations int
	// Inertia is the final sum of assignment distances (error-adjusted
	// when enabled).
	Inertia float64
}

// KMeans clusters the rows of ds with k-means++ seeding and Lloyd
// iterations, optionally using the error-adjusted assignment distance.
func KMeans(ds *dataset.Dataset, opt KMeansOptions) (*KMeansResult, error) {
	if opt.K < 1 {
		return nil, fmt.Errorf("cluster: k=%d", opt.K)
	}
	if ds.Len() < opt.K {
		return nil, fmt.Errorf("cluster: k=%d clusters for %d rows", opt.K, ds.Len())
	}
	if opt.MaxIter == 0 {
		opt.MaxIter = 100
	}
	if opt.MaxIter < 1 {
		return nil, fmt.Errorf("cluster: MaxIter %d", opt.MaxIter)
	}
	if opt.Tol == 0 {
		opt.Tol = 1e-6
	}
	if opt.Tol < 0 {
		return nil, fmt.Errorf("cluster: negative tolerance %v", opt.Tol)
	}
	dist := func(i int, c []float64) float64 {
		var er []float64
		if opt.ErrorAdjust {
			er = ds.ErrRow(i)
		}
		return microcluster.Dist2(ds.X[i], c, er)
	}

	// k-means++ seeding (distances for seeding use the same metric).
	r := rng.New(opt.Seed).Split("kmeans++")
	cents := make([][]float64, 0, opt.K)
	cents = append(cents, num.Clone(ds.X[r.Intn(ds.Len())]))
	d2 := make([]float64, ds.Len())
	for len(cents) < opt.K {
		var total float64
		for i := range d2 {
			best := math.Inf(1)
			for _, c := range cents {
				if d := dist(i, c); d < best {
					best = d
				}
			}
			d2[i] = best
			total += best
		}
		var pick int
		if total <= 0 {
			// All points coincide with existing centroids (e.g. huge
			// errors zero every distance): fall back to uniform choice.
			pick = r.Intn(ds.Len())
		} else {
			u := r.Float64() * total
			acc := 0.0
			for i, d := range d2 {
				acc += d
				if u < acc {
					pick = i
					break
				}
			}
		}
		cents = append(cents, num.Clone(ds.X[pick]))
	}

	labels := make([]int, ds.Len())
	counts := make([]int, opt.K)
	sums := make([][]float64, opt.K)
	for c := range sums {
		sums[c] = make([]float64, ds.Dims())
	}
	res := &KMeansResult{}
	for iter := 0; iter < opt.MaxIter; iter++ {
		res.Iterations = iter + 1
		// Assignment.
		res.Inertia = 0
		for i := range labels {
			best, bestD := 0, dist(i, cents[0])
			for c := 1; c < opt.K; c++ {
				if d := dist(i, cents[c]); d < bestD {
					best, bestD = c, d
				}
			}
			labels[i] = best
			res.Inertia += bestD
		}
		// Update.
		for c := range sums {
			num.Fill(sums[c], 0)
			counts[c] = 0
		}
		for i, l := range labels {
			num.AddTo(sums[l], sums[l], ds.X[i])
			counts[l]++
		}
		moved := 0.0
		for c := range cents {
			if counts[c] == 0 {
				// Re-seed an empty cluster at the point farthest from its
				// centroid to avoid dead clusters.
				far, farD := 0, -1.0
				for i := range labels {
					if d := dist(i, cents[labels[i]]); d > farD {
						far, farD = i, d
					}
				}
				copy(cents[c], ds.X[far])
				moved = math.Inf(1)
				continue
			}
			prev := num.Clone(cents[c])
			num.ScaleTo(cents[c], sums[c], 1/float64(counts[c]))
			if d := num.Dist2(prev, cents[c]); d > moved {
				moved = d
			}
		}
		if moved < opt.Tol {
			break
		}
	}
	res.Labels = labels
	res.Centroids = cents
	return res, nil
}
