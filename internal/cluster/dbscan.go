// Package cluster implements the density-based clustering extension the
// paper points at in §3: DBSCAN-style clustering driven by error-adjusted
// densities instead of raw point counts (cf. Kriegel & Pfeifle, KDD 2005).
// A point is a core point when the error-adjusted density at it clears a
// threshold; clusters are the connected components of core points under
// the error-adjusted distance of Eq. (5); remaining points are attached
// to a neighboring cluster or labeled noise.
//
// A scalable variant clusters micro-cluster pseudo-points instead of raw
// records, so the whole procedure runs on the density-based transform.
package cluster

import (
	"fmt"
	"math"
	"sort"

	"udm/internal/dataset"
	"udm/internal/kde"
	"udm/internal/microcluster"
)

// Noise is the label assigned to points in no cluster.
const Noise = -1

// Options configure uncertain DBSCAN.
type Options struct {
	// Eps is the connectivity radius (in the data's units). Required.
	Eps float64
	// DensityThreshold ξ makes a point a core point when the
	// error-adjusted density at it is ≥ ξ. When 0, the threshold is set
	// automatically to the DensityQuantile-quantile of the densities at
	// the data points.
	DensityThreshold float64
	// DensityQuantile picks the automatic threshold (default 0.25: the
	// densest 75% of points are core candidates). Only used when
	// DensityThreshold is 0.
	DensityQuantile float64
	// KDE configures the density estimator (error adjustment on by
	// default in the constructors below when the data carries errors).
	KDE kde.Options
}

// Result is the outcome of a clustering run.
type Result struct {
	// Labels assigns each input row a cluster id in [0, NumClusters) or
	// Noise.
	Labels []int
	// NumClusters is the number of clusters found.
	NumClusters int
	// Core marks the rows that were core points.
	Core []bool
	// Densities holds the error-adjusted density at each row.
	Densities []float64
	// Threshold is the core-point density threshold that was applied.
	Threshold float64
}

// DBSCAN clusters the rows of ds with the exact point-kernel density.
func DBSCAN(ds *dataset.Dataset, opt Options) (*Result, error) {
	if err := checkOpts(&opt); err != nil {
		return nil, err
	}
	if ds.Len() == 0 {
		return nil, fmt.Errorf("cluster: empty dataset")
	}
	if opt.KDE.ErrorAdjust && !ds.HasErrors() {
		// Harmless: adjustment with ψ=0 equals no adjustment.
		opt.KDE.ErrorAdjust = false
	}
	est, err := kde.NewPoint(ds, opt.KDE)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	dens := make([]float64, ds.Len())
	for i := range dens {
		dens[i] = est.Density(ds.X[i])
	}
	errRow := func(i int) []float64 { return ds.ErrRow(i) }
	return run(ds.X, errRow, dens, opt)
}

// DBSCANClusters clusters micro-cluster pseudo-points: centroids carry
// their pseudo-point error Δ (Lemma 1) into the Eq. (5) connectivity
// test, densities come from the weighted cluster kernel (Eq. 10), and the
// returned labels index the summarizer's clusters. This is the scalable
// path: it touches only the transform, never the original records.
func DBSCANClusters(s *microcluster.Summarizer, opt Options) (*Result, error) {
	if err := checkOpts(&opt); err != nil {
		return nil, err
	}
	if s.Len() == 0 {
		return nil, fmt.Errorf("cluster: empty summarizer")
	}
	est, err := kde.NewCluster(s, opt.KDE)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	points := make([][]float64, s.Len())
	deltas := make([][]float64, s.Len())
	dens := make([]float64, s.Len())
	for i := 0; i < s.Len(); i++ {
		points[i] = s.Centroid(i)
		deltas[i] = s.Feature(i).Delta(nil)
		dens[i] = est.Density(points[i])
	}
	errRow := func(i int) []float64 { return deltas[i] }
	return run(points, errRow, dens, opt)
}

func checkOpts(opt *Options) error {
	if opt.Eps <= 0 || math.IsNaN(opt.Eps) || math.IsInf(opt.Eps, 0) {
		return fmt.Errorf("cluster: eps %v must be positive and finite", opt.Eps)
	}
	if opt.DensityThreshold < 0 {
		return fmt.Errorf("cluster: negative density threshold %v", opt.DensityThreshold)
	}
	if opt.DensityQuantile == 0 {
		opt.DensityQuantile = 0.25
	}
	if opt.DensityQuantile < 0 || opt.DensityQuantile >= 1 {
		return fmt.Errorf("cluster: density quantile %v out of [0,1)", opt.DensityQuantile)
	}
	return nil
}

// run executes the shared DBSCAN body over points with per-point error
// rows (nil allowed) and precomputed densities.
func run(points [][]float64, errRow func(int) []float64, dens []float64, opt Options) (*Result, error) {
	n := len(points)
	threshold := opt.DensityThreshold
	if threshold == 0 {
		sorted := append([]float64(nil), dens...)
		sort.Float64s(sorted)
		threshold = sorted[int(opt.DensityQuantile*float64(n-1))]
	}
	core := make([]bool, n)
	for i, d := range dens {
		core[i] = d >= threshold
	}
	eps2 := opt.Eps * opt.Eps
	labels := make([]int, n)
	for i := range labels {
		labels[i] = Noise
	}
	// Connected components of core points via BFS; the error-adjusted
	// distance is asymmetric in which point's error applies, so edge
	// (i, j) exists when either direction is within eps.
	within := func(i, j int) bool {
		return microcluster.Dist2(points[i], points[j], errRow(i)) <= eps2 ||
			microcluster.Dist2(points[j], points[i], errRow(j)) <= eps2
	}
	nextCluster := 0
	queue := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if !core[i] || labels[i] != Noise {
			continue
		}
		labels[i] = nextCluster
		queue = append(queue[:0], i)
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for v := 0; v < n; v++ {
				if !core[v] || labels[v] != Noise || !within(u, v) {
					continue
				}
				labels[v] = nextCluster
				queue = append(queue, v)
			}
		}
		nextCluster++
	}
	// Border points: attach to the cluster of the nearest core point
	// within eps.
	for i := 0; i < n; i++ {
		if core[i] || labels[i] != Noise {
			continue
		}
		best, bestD := -1, math.Inf(1)
		for j := 0; j < n; j++ {
			if !core[j] {
				continue
			}
			d := microcluster.Dist2(points[i], points[j], errRow(i))
			if d <= eps2 && d < bestD {
				best, bestD = j, d
			}
		}
		if best >= 0 {
			labels[i] = labels[best]
		}
	}
	return &Result{
		Labels:      labels,
		NumClusters: nextCluster,
		Core:        core,
		Densities:   dens,
		Threshold:   threshold,
	}, nil
}
