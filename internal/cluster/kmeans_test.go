package cluster

import (
	"math"
	"testing"

	"udm/internal/datagen"
	"udm/internal/dataset"
	"udm/internal/rng"
)

func TestKMeansSeparatesBlobs(t *testing.T) {
	ds, err := datagen.TwoBlobs(5).Generate(400, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := KMeans(ds, KMeansOptions{K: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != 2 {
		t.Fatalf("%d centroids", len(res.Centroids))
	}
	// One centroid near each blob center (±5 on dim 0).
	xs := []float64{res.Centroids[0][0], res.Centroids[1][0]}
	if xs[0] > xs[1] {
		xs[0], xs[1] = xs[1], xs[0]
	}
	if math.Abs(xs[0]+5) > 0.5 || math.Abs(xs[1]-5) > 0.5 {
		t.Fatalf("centroids at %v", xs)
	}
	// Labels align with the generating classes up to permutation.
	agree := 0
	for i := range res.Labels {
		if res.Labels[i] == ds.Labels[i] {
			agree++
		}
	}
	if frac := float64(agree) / float64(len(res.Labels)); frac > 0.02 && frac < 0.98 {
		t.Fatalf("label agreement %v, want ≈0 or ≈1", frac)
	}
	if res.Inertia <= 0 {
		t.Fatal("inertia should be positive on spread data")
	}
}

func TestKMeansDeterministicInSeed(t *testing.T) {
	ds, _ := datagen.TwoBlobs(3).Generate(200, rng.New(3))
	a, err := KMeans(ds, KMeansOptions{K: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMeans(ds, KMeansOptions{K: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("k-means not deterministic under fixed seed")
		}
	}
}

func TestKMeansErrorAdjustedAssignment(t *testing.T) {
	// The paper's Figure-2 scenario: point nearer centroid B in Euclidean
	// terms, but with an error ellipse stretched toward A. Build two
	// fixed groups plus one ambiguous point and compare its assignment.
	d := dataset.New("x", "y")
	r := rng.New(4)
	for i := 0; i < 50; i++ {
		_ = d.Append([]float64{r.Norm(0, 0.2), r.Norm(0, 0.2)}, []float64{0.01, 0.01}, dataset.Unlabeled)
		_ = d.Append([]float64{r.Norm(8, 0.2), r.Norm(1, 0.2)}, []float64{0.01, 0.01}, dataset.Unlabeled)
	}
	// The ambiguous point sits at (5, 0) with a huge x error. Euclidean:
	// dist² to A(0,0) = 25, to B(8,1) = 10 → B. Error-adjusted: the x
	// term vanishes for both (|Δx| < ψ_x), leaving the y terms: 0 to A,
	// 1 to B → A. The two metrics must disagree on this point.
	_ = d.Append([]float64{5, 0}, []float64{10, 0.01}, dataset.Unlabeled)
	idx := d.Len() - 1

	adj, err := KMeans(d, KMeansOptions{K: 2, Seed: 5, ErrorAdjust: true})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := KMeans(d, KMeansOptions{K: 2, Seed: 5, ErrorAdjust: false})
	if err != nil {
		t.Fatal(err)
	}
	// Identify which cluster is the x≈8 group in each run.
	bOf := func(res *KMeansResult) int {
		if res.Centroids[0][0] > res.Centroids[1][0] {
			return 0
		}
		return 1
	}
	if plain.Labels[idx] != bOf(plain) {
		t.Fatalf("Euclidean run should assign the ambiguous point to the nearer group")
	}
	if adj.Labels[idx] == bOf(adj) {
		t.Fatalf("error-adjusted run should NOT follow raw Euclidean proximity")
	}
}

func TestKMeansEmptyClusterReseeded(t *testing.T) {
	// k equal to n with duplicate points forces potential empty clusters;
	// the run must still return k centroids and valid labels.
	d := dataset.New("x")
	for _, v := range []float64{0, 0, 10, 10, 20} {
		_ = d.Append([]float64{v}, nil, dataset.Unlabeled)
	}
	res, err := KMeans(d, KMeansOptions{K: 3, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != 3 {
		t.Fatalf("%d centroids", len(res.Centroids))
	}
	for _, l := range res.Labels {
		if l < 0 || l >= 3 {
			t.Fatalf("label %d out of range", l)
		}
	}
}

func TestKMeansValidation(t *testing.T) {
	ds, _ := datagen.TwoBlobs(1).Generate(10, rng.New(7))
	if _, err := KMeans(ds, KMeansOptions{K: 0}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := KMeans(ds, KMeansOptions{K: 11}); err == nil {
		t.Error("k>n accepted")
	}
	if _, err := KMeans(ds, KMeansOptions{K: 2, MaxIter: -1}); err == nil {
		t.Error("negative MaxIter accepted")
	}
	if _, err := KMeans(ds, KMeansOptions{K: 2, Tol: -1}); err == nil {
		t.Error("negative Tol accepted")
	}
}

func TestKMeansConvergesQuickly(t *testing.T) {
	ds, _ := datagen.TwoBlobs(6).Generate(300, rng.New(8))
	res, err := KMeans(ds, KMeansOptions{K: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations >= 100 {
		t.Fatalf("no convergence in %d iterations on trivial data", res.Iterations)
	}
}
