package cluster

import (
	"testing"

	"udm/internal/datagen"
	"udm/internal/dataset"
	"udm/internal/microcluster"
	"udm/internal/rng"
	"udm/internal/uncertain"
)

func TestDBSCANSeparatesBlobs(t *testing.T) {
	ds, err := datagen.TwoBlobs(5).Generate(300, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := DBSCAN(ds, Options{Eps: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 2 {
		t.Fatalf("found %d clusters, want 2", res.NumClusters)
	}
	// Clusters must align with the generating labels (up to permutation):
	// count the dominant true label per found cluster.
	agreement := 0
	for c := 0; c < res.NumClusters; c++ {
		counts := map[int]int{}
		for i, l := range res.Labels {
			if l == c {
				counts[ds.Labels[i]]++
			}
		}
		best := 0
		for _, n := range counts {
			if n > best {
				best = n
			}
		}
		agreement += best
	}
	clustered := 0
	for _, l := range res.Labels {
		if l != Noise {
			clustered++
		}
	}
	if clustered < 200 {
		t.Fatalf("only %d/300 points clustered", clustered)
	}
	if float64(agreement)/float64(clustered) < 0.95 {
		t.Fatalf("cluster/label agreement %v too low", float64(agreement)/float64(clustered))
	}
}

func TestDBSCANRingsNonConvex(t *testing.T) {
	// Two concentric rings cannot be separated by centroid methods but
	// density connectivity follows the rings.
	ds, err := datagen.Rings(600, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := DBSCAN(ds, Options{Eps: 1.0, DensityQuantile: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 2 {
		t.Fatalf("found %d clusters on two rings", res.NumClusters)
	}
	// No found cluster may mix the two rings substantially.
	for c := 0; c < res.NumClusters; c++ {
		counts := map[int]int{}
		total := 0
		for i, l := range res.Labels {
			if l == c {
				counts[ds.Labels[i]]++
				total++
			}
		}
		for _, n := range counts {
			if n != total && n > total/10 {
				t.Fatalf("cluster %d mixes rings: %v", c, counts)
			}
		}
	}
}

func TestDBSCANNoiseDetection(t *testing.T) {
	// A tight blob plus one far outlier: the outlier must be Noise.
	d := dataset.New("x", "y")
	r := rng.New(3)
	for i := 0; i < 100; i++ {
		_ = d.Append([]float64{r.Norm(0, 0.3), r.Norm(0, 0.3)}, nil, dataset.Unlabeled)
	}
	_ = d.Append([]float64{50, 50}, nil, dataset.Unlabeled)
	res, err := DBSCAN(d, Options{Eps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Labels[100] != Noise {
		t.Fatalf("outlier labeled %d, want Noise", res.Labels[100])
	}
	if res.NumClusters != 1 {
		t.Fatalf("clusters = %d", res.NumClusters)
	}
	if !res.Core[0] && !res.Core[50] {
		t.Error("blob interior should contain core points")
	}
}

func TestDBSCANErrorAdjustedConnectivity(t *testing.T) {
	// Two groups separated by a gap larger than eps. With large recorded
	// errors the error-adjusted distance collapses the gap and the groups
	// merge; without errors they stay separate.
	build := func(withErr bool) *dataset.Dataset {
		d := dataset.New("x")
		r := rng.New(4)
		for i := 0; i < 60; i++ {
			center := 0.0
			if i%2 == 1 {
				center = 4.0
			}
			var er []float64
			if withErr {
				er = []float64{3.5}
			}
			_ = d.Append([]float64{center + r.Norm(0, 0.3)}, er, dataset.Unlabeled)
		}
		return d
	}
	plain, err := DBSCAN(build(false), Options{Eps: 1.2})
	if err != nil {
		t.Fatal(err)
	}
	adj, err := DBSCAN(build(true), Options{Eps: 1.2, KDE: kdeErrOpts()})
	if err != nil {
		t.Fatal(err)
	}
	if plain.NumClusters < 2 {
		t.Fatalf("error-free run merged the groups: %d clusters", plain.NumClusters)
	}
	if adj.NumClusters != 1 {
		t.Fatalf("error-adjusted run found %d clusters, want 1 (gap within error)", adj.NumClusters)
	}
}

func TestDBSCANExplicitThreshold(t *testing.T) {
	ds, err := datagen.TwoBlobs(5).Generate(100, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	// Impossible threshold: nothing is core, everything is noise.
	res, err := DBSCAN(ds, Options{Eps: 1, DensityThreshold: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 0 {
		t.Fatalf("clusters = %d with impossible threshold", res.NumClusters)
	}
	for _, l := range res.Labels {
		if l != Noise {
			t.Fatal("point clustered despite impossible threshold")
		}
	}
	if res.Threshold != 1e9 {
		t.Fatal("explicit threshold not recorded")
	}
}

func TestDBSCANClustersOnTransform(t *testing.T) {
	ds, err := datagen.TwoBlobs(6).Generate(2000, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := uncertain.Perturb(ds, 0.3, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	s := microcluster.Build(noisy, 40, rng.New(8))
	res, err := DBSCANClusters(s, Options{Eps: 1.5, KDE: kdeErrOpts()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Labels) != s.Len() {
		t.Fatalf("labels for %d pseudo-points, want %d", len(res.Labels), s.Len())
	}
	if res.NumClusters != 2 {
		t.Fatalf("micro-cluster DBSCAN found %d clusters, want 2", res.NumClusters)
	}
	// Pseudo-points on opposite blobs land in different clusters.
	var leftLabel, rightLabel = -2, -2
	for i := 0; i < s.Len(); i++ {
		c := s.Centroid(i)[0]
		if c < -3 && res.Labels[i] != Noise {
			leftLabel = res.Labels[i]
		}
		if c > 3 && res.Labels[i] != Noise {
			rightLabel = res.Labels[i]
		}
	}
	if leftLabel == rightLabel || leftLabel < 0 || rightLabel < 0 {
		t.Fatalf("blob pseudo-points not separated: %d vs %d", leftLabel, rightLabel)
	}
}

func TestDBSCANValidation(t *testing.T) {
	ds, _ := datagen.TwoBlobs(1).Generate(10, rng.New(9))
	if _, err := DBSCAN(ds, Options{Eps: 0}); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := DBSCAN(ds, Options{Eps: 1, DensityThreshold: -1}); err == nil {
		t.Error("negative threshold accepted")
	}
	if _, err := DBSCAN(ds, Options{Eps: 1, DensityQuantile: 1.5}); err == nil {
		t.Error("quantile > 1 accepted")
	}
	if _, err := DBSCAN(dataset.New("x"), Options{Eps: 1}); err == nil {
		t.Error("empty dataset accepted")
	}
	if _, err := DBSCANClusters(microcluster.NewSummarizer(3, 1), Options{Eps: 1}); err == nil {
		t.Error("empty summarizer accepted")
	}
}
