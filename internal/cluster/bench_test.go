package cluster

import (
	"testing"

	"udm/internal/datagen"
	"udm/internal/microcluster"
	"udm/internal/rng"
)

func BenchmarkDBSCANPoints(b *testing.B) {
	ds, err := datagen.TwoBlobs(5).Generate(400, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DBSCAN(ds, Options{Eps: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDBSCANClusters(b *testing.B) {
	ds, err := datagen.TwoBlobs(5).Generate(5000, rng.New(2))
	if err != nil {
		b.Fatal(err)
	}
	s := microcluster.Build(ds, 100, rng.New(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DBSCANClusters(s, Options{Eps: 1.5}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKMeans(b *testing.B) {
	ds, err := datagen.TwoBlobs(5).Generate(1000, rng.New(4))
	if err != nil {
		b.Fatal(err)
	}
	for _, adjust := range []bool{false, true} {
		name := "euclidean"
		if adjust {
			name = "err-adjusted"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := KMeans(ds, KMeansOptions{K: 2, ErrorAdjust: adjust, Seed: 5}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
