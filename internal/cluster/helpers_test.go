package cluster

import "udm/internal/kde"

// kdeErrOpts returns KDE options with error adjustment enabled, shared by
// the tests.
func kdeErrOpts() kde.Options {
	return kde.Options{ErrorAdjust: true}
}
