package datagen

import (
	"bytes"
	"strings"
	"testing"

	"udm/internal/rng"
)

func TestSpecJSONRoundTrip(t *testing.T) {
	orig := Adult()
	var buf bytes.Buffer
	if err := orig.SaveSpec(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSpec(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != orig.Name || got.Dims() != orig.Dims() || len(got.Classes) != len(orig.Classes) {
		t.Fatalf("shape changed: %q %d %d", got.Name, got.Dims(), len(got.Classes))
	}
	for ci := range orig.Classes {
		if got.Classes[ci].Prior != orig.Classes[ci].Prior {
			t.Fatalf("class %d prior changed", ci)
		}
		for ki := range orig.Classes[ci].Components {
			a := orig.Classes[ci].Components[ki]
			b := got.Classes[ci].Components[ki]
			for j := range a.Mean {
				if a.Mean[j] != b.Mean[j] || a.Std[j] != b.Std[j] {
					t.Fatalf("class %d component %d params changed", ci, ki)
				}
			}
		}
	}
	// Generation from the round-tripped spec is identical.
	d1, err := orig.Generate(50, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	d2, err := got.Generate(50, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := range d1.X {
		for j := range d1.X[i] {
			if d1.X[i][j] != d2.X[i][j] {
				t.Fatal("generation differs after round trip")
			}
		}
	}
}

func TestLoadSpecHandWritten(t *testing.T) {
	in := `{
	  "name": "demo",
	  "dims": ["x", "y"],
	  "classes": [
	    {"name": "a", "prior": 0.5,
	     "components": [{"weight": 1, "mean": [0, 0], "std": [1, 1]}]},
	    {"name": "b", "prior": 0.5,
	     "components": [{"weight": 1, "mean": [4, 0], "std": [1, 1]}]}
	  ]
	}`
	s, err := LoadSpec(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	ds, err := s.Generate(100, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if ds.Dims() != 2 || ds.NumClasses() != 2 {
		t.Fatalf("shape %d/%d", ds.Dims(), ds.NumClasses())
	}
}

func TestLoadSpecRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"not json":      `{{{`,
		"unknown field": `{"name":"x","dims":["a"],"classes":[],"bogus":1}`,
		"no classes":    `{"name":"x","dims":["a"],"classes":[]}`,
		"bad std": `{"name":"x","dims":["a"],"classes":[
			{"name":"c","prior":1,"components":[{"weight":1,"mean":[0],"std":[0]}]}]}`,
		"dim mismatch": `{"name":"x","dims":["a","b"],"classes":[
			{"name":"c","prior":1,"components":[{"weight":1,"mean":[0],"std":[1]}]}]}`,
	}
	for name, in := range cases {
		if _, err := LoadSpec(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestSaveSpecRejectsInvalid(t *testing.T) {
	s := TwoBlobs(1)
	s.Classes[0].Prior = -1
	var buf bytes.Buffer
	if err := s.SaveSpec(&buf); err == nil {
		t.Fatal("invalid spec serialized")
	}
}
