package datagen

import (
	"fmt"

	"udm/internal/rng"
)

// The four profiles below stand in for the UCI data sets of the paper's
// §4. Each matches the original's quantitative dimensionality, class
// count and (approximate) class priors; class-conditional means and
// spreads are chosen from the published summary statistics where known
// and otherwise to give a comparable classification difficulty. Profile
// construction is deterministic: Ionosphere and ForestCover derive their
// many per-dimension parameters from a fixed-seed internal stream, so the
// same Spec is produced on every call.

// Adult returns a profile of the UCI "adult" (census income) data set
// restricted to its 6 quantitative attributes, 2 classes with ≈76/24
// priors.
func Adult() *Spec {
	return &Spec{
		Name: "adult",
		DimNames: []string{
			"age", "fnlwgt", "education_num", "capital_gain", "capital_loss", "hours_per_week",
		},
		Classes: []ClassSpec{
			{
				Name:  "<=50K",
				Prior: 0.76,
				Components: []Component{
					{
						Weight: 0.7,
						Mean:   []float64{36, 190000, 9.6, 150, 50, 38.8},
						Std:    []float64{13, 105000, 2.4, 900, 250, 11.5},
					},
					{
						// Younger, part-time subpopulation.
						Weight: 0.3,
						Mean:   []float64{24, 200000, 9.0, 50, 20, 30},
						Std:    []float64{5, 110000, 2.0, 300, 120, 10},
					},
				},
			},
			{
				Name:  ">50K",
				Prior: 0.24,
				Components: []Component{
					{
						Weight: 0.8,
						Mean:   []float64{44, 188000, 11.6, 4000, 195, 45.4},
						Std:    []float64{10.5, 103000, 2.4, 14500, 595, 10.8},
					},
					{
						// High-capital-gain subpopulation.
						Weight: 0.2,
						Mean:   []float64{50, 185000, 13.0, 15000, 300, 50},
						Std:    []float64{9, 100000, 2.0, 20000, 700, 12},
					},
				},
			},
		},
	}
}

// BreastCancer returns a profile of the UCI Wisconsin breast cancer
// (original) data set: 9 cytological features on a 1–10 scale, 2 classes
// with ≈65/35 priors, benign cases concentrated at low feature values and
// malignant cases high and more dispersed.
func BreastCancer() *Spec {
	names := []string{
		"clump_thickness", "uniformity_size", "uniformity_shape",
		"marginal_adhesion", "epithelial_size", "bare_nuclei",
		"bland_chromatin", "normal_nucleoli", "mitoses",
	}
	benignMean := []float64{2.9, 1.3, 1.4, 1.3, 2.1, 1.3, 2.1, 1.3, 1.1}
	benignStd := []float64{1.6, 0.9, 1.0, 0.9, 0.9, 1.2, 1.1, 1.0, 0.5}
	maligMean := []float64{7.2, 6.6, 6.6, 5.5, 5.3, 7.6, 5.9, 5.9, 2.6}
	maligStd := []float64{2.4, 2.7, 2.6, 3.2, 2.4, 3.1, 2.3, 3.3, 2.5}
	return &Spec{
		Name:     "breast-cancer",
		DimNames: names,
		Classes: []ClassSpec{
			{Name: "benign", Prior: 0.65, Components: []Component{
				{Weight: 1, Mean: benignMean, Std: benignStd},
			}},
			{Name: "malignant", Prior: 0.35, Components: []Component{
				{Weight: 1, Mean: maligMean, Std: maligStd},
			}},
		},
	}
}

// Ionosphere returns a profile of the UCI ionosphere data set: 34 radar
// return attributes in [-1, 1], 2 classes ("good"/"bad" returns) with
// ≈64/36 priors. Good returns show structured (nonzero-mean) pulses;
// bad returns are closer to zero-mean noise. The per-dimension parameters
// come from a fixed internal stream so the spec is reproducible.
func Ionosphere() *Spec {
	const d = 34
	gen := rng.New(0xA11CE)
	names := make([]string, d)
	goodMean := make([]float64, d)
	goodStd := make([]float64, d)
	badMean := make([]float64, d)
	badStd := make([]float64, d)
	for j := 0; j < d; j++ {
		names[j] = fmt.Sprintf("pulse_%02d", j+1)
		// Good returns: coherent structure with decaying amplitude.
		decay := 1.0 - 0.6*float64(j)/float64(d-1)
		goodMean[j] = gen.Uniform(0.25, 0.75) * decay
		if j%2 == 1 {
			goodMean[j] = -goodMean[j] * 0.4 // quadrature components near zero
		}
		goodStd[j] = gen.Uniform(0.2, 0.45)
		// Bad returns: incoherent, near-zero mean, wider spread.
		badMean[j] = gen.Uniform(-0.15, 0.15)
		badStd[j] = gen.Uniform(0.45, 0.8)
	}
	return &Spec{
		Name:     "ionosphere",
		DimNames: names,
		Classes: []ClassSpec{
			{Name: "good", Prior: 0.64, Components: []Component{
				{Weight: 1, Mean: goodMean, Std: goodStd},
			}},
			{Name: "bad", Prior: 0.36, Components: []Component{
				{Weight: 1, Mean: badMean, Std: badStd},
			}},
		},
	}
}

// ForestCover returns a profile of the UCI forest cover type data set
// restricted to its 10 quantitative attributes, 7 cover-type classes with
// the original's skewed priors (lodgepole pine ≈49%, spruce/fir ≈36%,
// the remaining five classes sharing ≈15%). Elevation dominates class
// separability, as in the original; the other attributes overlap heavily.
func ForestCover() *Spec {
	names := []string{
		"elevation", "aspect", "slope",
		"horiz_dist_hydro", "vert_dist_hydro", "horiz_dist_road",
		"hillshade_9am", "hillshade_noon", "hillshade_3pm",
		"horiz_dist_fire",
	}
	classes := []struct {
		name  string
		prior float64
		elev  float64 // class-conditional mean elevation (m)
	}{
		{"spruce_fir", 0.365, 3125},
		{"lodgepole_pine", 0.488, 2925},
		{"ponderosa_pine", 0.062, 2405},
		{"cottonwood_willow", 0.005, 2220},
		{"aspen", 0.016, 2785},
		{"douglas_fir", 0.030, 2420},
		{"krummholz", 0.035, 3360},
	}
	gen := rng.New(0xF03E57)
	spec := &Spec{Name: "forest-cover", DimNames: names}
	for _, c := range classes {
		mean := []float64{
			c.elev,
			gen.Uniform(120, 190),   // aspect
			gen.Uniform(10, 20),     // slope
			gen.Uniform(200, 350),   // horiz dist hydro
			gen.Uniform(30, 70),     // vert dist hydro
			gen.Uniform(1500, 3000), // horiz dist road
			gen.Uniform(205, 225),   // hillshade 9am
			gen.Uniform(218, 235),   // hillshade noon
			gen.Uniform(130, 155),   // hillshade 3pm
			gen.Uniform(1400, 2400), // horiz dist fire
		}
		std := []float64{
			140,  // elevation: tight within class; drives separability
			100,  // aspect
			7,    // slope
			200,  // horiz dist hydro
			55,   // vert dist hydro
			1300, // horiz dist road
			25,   // hillshade 9am
			20,   // hillshade noon
			35,   // hillshade 3pm
			1100, // horiz dist fire
		}
		spec.Classes = append(spec.Classes, ClassSpec{
			Name:  c.name,
			Prior: c.prior,
			Components: []Component{
				{Weight: 1, Mean: mean, Std: std},
			},
		})
	}
	return spec
}

// Profiles returns the four paper data set profiles keyed by the names
// used throughout the experiment harness: "adult", "ionosphere",
// "breast-cancer", "forest-cover".
func Profiles() map[string]*Spec {
	return map[string]*Spec{
		"adult":         Adult(),
		"ionosphere":    Ionosphere(),
		"breast-cancer": BreastCancer(),
		"forest-cover":  ForestCover(),
	}
}

// ByName returns the named profile or an error listing valid names.
func ByName(name string) (*Spec, error) {
	p := Profiles()
	if s, ok := p[name]; ok {
		return s, nil
	}
	return nil, fmt.Errorf("datagen: unknown profile %q (valid: adult, ionosphere, breast-cancer, forest-cover)", name)
}
