package datagen

import (
	"math"
	"testing"

	"udm/internal/rng"
)

func TestSpecValidate(t *testing.T) {
	good := TwoBlobs(3)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"no dims", func(s *Spec) { s.DimNames = nil }},
		{"no classes", func(s *Spec) { s.Classes = nil }},
		{"zero prior", func(s *Spec) { s.Classes[0].Prior = 0 }},
		{"no components", func(s *Spec) { s.Classes[0].Components = nil }},
		{"zero weight", func(s *Spec) { s.Classes[0].Components[0].Weight = 0 }},
		{"short mean", func(s *Spec) { s.Classes[0].Components[0].Mean = []float64{0} }},
		{"zero std", func(s *Spec) { s.Classes[0].Components[0].Std[1] = 0 }},
	}
	for _, c := range cases {
		s := TwoBlobs(3)
		c.mutate(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: invalid spec accepted", c.name)
		}
	}
}

func TestGenerateBasics(t *testing.T) {
	s := TwoBlobs(3)
	ds, err := s.Generate(1000, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 1000 || ds.Dims() != 2 {
		t.Fatalf("shape %dx%d", ds.Len(), ds.Dims())
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if ds.HasErrors() {
		t.Fatal("clean data should carry no errors")
	}
	if len(ds.ClassNames) != 2 || ds.ClassNames[0] != "left" {
		t.Fatalf("class names %v", ds.ClassNames)
	}
	// Priors ≈ 50/50 and the blobs actually separate.
	var n0 int
	var sum0, sum1 float64
	var c0, c1 int
	for i, l := range ds.Labels {
		if l == 0 {
			n0++
			sum0 += ds.X[i][0]
			c0++
		} else {
			sum1 += ds.X[i][0]
			c1++
		}
	}
	if math.Abs(float64(n0)/1000-0.5) > 0.05 {
		t.Errorf("class balance %v", float64(n0)/1000)
	}
	if !(sum0/float64(c0) < -2 && sum1/float64(c1) > 2) {
		t.Errorf("blob means %v / %v", sum0/float64(c0), sum1/float64(c1))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	s := Adult()
	a, err := s.Generate(50, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Generate(50, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.X {
		for j := range a.X[i] {
			if a.X[i][j] != b.X[i][j] {
				t.Fatal("generation not deterministic")
			}
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	s := TwoBlobs(1)
	if _, err := s.Generate(0, rng.New(1)); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := s.Generate(10, nil); err == nil {
		t.Error("nil rng accepted")
	}
	s.Classes[0].Prior = -1
	if _, err := s.Generate(10, rng.New(1)); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestProfilesMatchPaperShapes(t *testing.T) {
	cases := []struct {
		name    string
		dims    int
		classes int
	}{
		{"adult", 6, 2},
		{"ionosphere", 34, 2},
		{"breast-cancer", 9, 2},
		{"forest-cover", 10, 7},
	}
	for _, c := range cases {
		s, err := ByName(c.name)
		if err != nil {
			t.Fatal(err)
		}
		if s.Dims() != c.dims {
			t.Errorf("%s: %d dims, want %d", c.name, s.Dims(), c.dims)
		}
		if len(s.Classes) != c.classes {
			t.Errorf("%s: %d classes, want %d", c.name, len(s.Classes), c.classes)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", c.name, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestProfilesAreReproducible(t *testing.T) {
	// Ionosphere and ForestCover build parameters from internal streams;
	// two calls must agree exactly.
	a, b := Ionosphere(), Ionosphere()
	for j := range a.Classes[0].Components[0].Mean {
		if a.Classes[0].Components[0].Mean[j] != b.Classes[0].Components[0].Mean[j] {
			t.Fatal("Ionosphere spec not reproducible")
		}
	}
	fa, fb := ForestCover(), ForestCover()
	if fa.Classes[3].Components[0].Mean[1] != fb.Classes[3].Components[0].Mean[1] {
		t.Fatal("ForestCover spec not reproducible")
	}
}

func TestForestCoverPriorsSkewed(t *testing.T) {
	s := ForestCover()
	ds, err := s.Generate(5000, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 7)
	for _, l := range ds.Labels {
		counts[l]++
	}
	// Lodgepole pine (class 1) is the plurality class at ≈49%.
	if frac := float64(counts[1]) / 5000; math.Abs(frac-0.488) > 0.03 {
		t.Errorf("lodgepole share %v, want ≈0.488", frac)
	}
	// All seven classes appear.
	for c, n := range counts {
		if n == 0 {
			t.Errorf("class %d absent in 5000 rows", c)
		}
	}
}

func TestBreastCancerSeparation(t *testing.T) {
	ds, err := BreastCancer().Generate(2000, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	// Malignant rows should have larger average feature values.
	var mB, mM float64
	var nB, nM int
	for i, l := range ds.Labels {
		var s float64
		for _, v := range ds.X[i] {
			s += v
		}
		if l == 0 {
			mB += s
			nB++
		} else {
			mM += s
			nM++
		}
	}
	if !(mM/float64(nM) > mB/float64(nB)+10) {
		t.Errorf("malignant mean %v vs benign %v: classes not separated",
			mM/float64(nM), mB/float64(nB))
	}
}

func TestXOR(t *testing.T) {
	ds, err := XOR(2000, 2, 2, rng.New(10))
	if err != nil {
		t.Fatal(err)
	}
	if ds.Dims() != 4 || ds.Len() != 2000 {
		t.Fatalf("shape %dx%d", ds.Len(), ds.Dims())
	}
	// Labels follow the sign rule and classes are balanced-ish.
	ones := 0
	for i, l := range ds.Labels {
		same := (ds.X[i][0] > 0) == (ds.X[i][1] > 0)
		// Noise can flip points across zero; only check clear corners
		// (beyond the blob centers, where a flip would need a >4σ draw).
		if math.Abs(ds.X[i][0]) > 2 && math.Abs(ds.X[i][1]) > 2 {
			if same && l != 0 || !same && l != 1 {
				t.Fatalf("row %d: signs (%v, %v) labeled %d",
					i, ds.X[i][0], ds.X[i][1], l)
			}
		}
		ones += l
	}
	if frac := float64(ones) / 2000; math.Abs(frac-0.5) > 0.05 {
		t.Fatalf("class balance %v", frac)
	}
	// Single-dimension means carry no signal: per-class means of x0
	// are both ≈ 0.
	var sum0, sum1 float64
	var n0, n1 int
	for i, l := range ds.Labels {
		if l == 0 {
			sum0 += ds.X[i][0]
			n0++
		} else {
			sum1 += ds.X[i][0]
			n1++
		}
	}
	if math.Abs(sum0/float64(n0)) > 0.3 || math.Abs(sum1/float64(n1)) > 0.3 {
		t.Fatalf("x0 class means %v / %v should both be ≈0",
			sum0/float64(n0), sum1/float64(n1))
	}
	// Validation.
	if _, err := XOR(2, 1, 0, rng.New(1)); err == nil {
		t.Error("n<4 accepted")
	}
	if _, err := XOR(10, 0, 0, rng.New(1)); err == nil {
		t.Error("sep=0 accepted")
	}
	if _, err := XOR(10, 1, -1, rng.New(1)); err == nil {
		t.Error("negative noise dims accepted")
	}
	if _, err := XOR(10, 1, 0, nil); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestRings(t *testing.T) {
	ds, err := Rings(500, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 500 {
		t.Fatalf("Len = %d", ds.Len())
	}
	// Inner ring points have radius ≈1, outer ≈4.
	for i := 0; i < ds.Len(); i++ {
		r := math.Hypot(ds.X[i][0], ds.X[i][1])
		if ds.Labels[i] == 0 && (r < 0.3 || r > 2) {
			t.Fatalf("inner point radius %v", r)
		}
		if ds.Labels[i] == 1 && (r < 3 || r > 5) {
			t.Fatalf("outer point radius %v", r)
		}
	}
	if _, err := Rings(1, rng.New(1)); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := Rings(10, nil); err == nil {
		t.Error("nil rng accepted")
	}
}
