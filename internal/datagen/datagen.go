// Package datagen generates the synthetic data sets used by the
// experiment harness. The module is offline, so the four UCI data sets of
// the paper's evaluation (adult, ionosphere, Wisconsin breast cancer,
// forest cover) are replaced by deterministic class-conditional
// Gaussian-mixture generators matching each set's dimensionality, class
// count, class priors and coarse class-conditional structure (see
// DESIGN.md §2). The perturbation protocol under test is applied on top
// of these clean tables exactly as the paper applies it to the UCI
// tables.
package datagen

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"udm/internal/dataset"
	"udm/internal/rng"
)

// Component is one Gaussian component of a class-conditional mixture,
// with independent per-dimension means and standard deviations.
type Component struct {
	// Weight is the component's share within its class; weights are
	// normalized over each class.
	Weight float64
	// Mean holds the per-dimension component means.
	Mean []float64
	// Std holds the per-dimension component standard deviations (> 0).
	Std []float64
}

// ClassSpec describes one class of a synthetic data set.
type ClassSpec struct {
	// Name labels the class.
	Name string
	// Prior is the class's share of generated rows; priors are
	// normalized over the spec.
	Prior float64
	// Components holds the class-conditional mixture.
	Components []Component
}

// Spec is a complete synthetic data set description.
type Spec struct {
	// Name identifies the profile (e.g. "adult").
	Name string
	// DimNames holds one name per dimension.
	DimNames []string
	// Classes holds the class-conditional mixtures.
	Classes []ClassSpec
}

// Dims returns the spec's dimensionality.
func (s *Spec) Dims() int { return len(s.DimNames) }

// Validate checks structural consistency of the spec.
func (s *Spec) Validate() error {
	if len(s.DimNames) == 0 {
		return fmt.Errorf("datagen: spec %q has no dimensions", s.Name)
	}
	if len(s.Classes) == 0 {
		return fmt.Errorf("datagen: spec %q has no classes", s.Name)
	}
	for ci, c := range s.Classes {
		if c.Prior <= 0 {
			return fmt.Errorf("datagen: spec %q class %d has prior %v", s.Name, ci, c.Prior)
		}
		if len(c.Components) == 0 {
			return fmt.Errorf("datagen: spec %q class %d has no components", s.Name, ci)
		}
		for ki, k := range c.Components {
			if k.Weight <= 0 {
				return fmt.Errorf("datagen: spec %q class %d component %d weight %v", s.Name, ci, ki, k.Weight)
			}
			if len(k.Mean) != s.Dims() || len(k.Std) != s.Dims() {
				return fmt.Errorf("datagen: spec %q class %d component %d has %d/%d dims, want %d",
					s.Name, ci, ki, len(k.Mean), len(k.Std), s.Dims())
			}
			for j, sd := range k.Std {
				if sd <= 0 {
					return fmt.Errorf("datagen: spec %q class %d component %d std[%d] = %v",
						s.Name, ci, ki, j, sd)
				}
			}
		}
	}
	return nil
}

// Generate draws n labeled rows from the spec. Class assignment follows
// the priors; rows carry no error matrix (they are "clean"); callers add
// uncertainty with the uncertain package.
func (s *Spec) Generate(n int, r *rng.Source) (*dataset.Dataset, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("datagen: n=%d rows", n)
	}
	if r == nil {
		return nil, fmt.Errorf("datagen: nil random source")
	}
	ds := dataset.New(s.DimNames...)
	for _, c := range s.Classes {
		ds.ClassNames = append(ds.ClassNames, c.Name)
	}
	priors := make([]float64, len(s.Classes))
	for i, c := range s.Classes {
		priors[i] = c.Prior
	}
	row := make([]float64, s.Dims())
	for i := 0; i < n; i++ {
		ci := r.Categorical(priors)
		class := s.Classes[ci]
		weights := make([]float64, len(class.Components))
		for k, comp := range class.Components {
			weights[k] = comp.Weight
		}
		comp := class.Components[r.Categorical(weights)]
		for j := range row {
			row[j] = r.Norm(comp.Mean[j], comp.Std[j])
		}
		if err := ds.Append(row, nil, ci); err != nil {
			return nil, err
		}
	}
	return ds, nil
}

// TwoBlobs returns a simple two-class, two-dimensional spec with blobs
// centered at ±sep on the first dimension. Useful for quickstarts and
// tests where ground truth must be obvious.
func TwoBlobs(sep float64) *Spec {
	return &Spec{
		Name:     "two-blobs",
		DimNames: []string{"x", "y"},
		Classes: []ClassSpec{
			{Name: "left", Prior: 0.5, Components: []Component{
				{Weight: 1, Mean: []float64{-sep, 0}, Std: []float64{1, 1}},
			}},
			{Name: "right", Prior: 0.5, Components: []Component{
				{Weight: 1, Mean: []float64{sep, 0}, Std: []float64{1, 1}},
			}},
		},
	}
}

// MarshalJSON-compatible field names let specs live in version-controlled
// JSON files; see LoadSpec.

// LoadSpec reads a Spec from JSON, validating it. The format mirrors the
// Go structs:
//
//	{
//	  "name": "my-data",
//	  "dims": ["x", "y"],
//	  "classes": [
//	    {"name": "a", "prior": 0.5,
//	     "components": [{"weight": 1, "mean": [0, 0], "std": [1, 1]}]},
//	    {"name": "b", "prior": 0.5,
//	     "components": [{"weight": 1, "mean": [4, 0], "std": [1, 1]}]}
//	  ]
//	}
func LoadSpec(r io.Reader) (*Spec, error) {
	var wire specWire
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&wire); err != nil {
		return nil, fmt.Errorf("datagen: parsing spec: %w", err)
	}
	s := &Spec{Name: wire.Name, DimNames: wire.Dims}
	for _, c := range wire.Classes {
		cls := ClassSpec{Name: c.Name, Prior: c.Prior}
		for _, k := range c.Components {
			cls.Components = append(cls.Components, Component{
				Weight: k.Weight, Mean: k.Mean, Std: k.Std,
			})
		}
		s.Classes = append(s.Classes, cls)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// SaveSpec writes the spec as indented JSON in the LoadSpec format.
func (s *Spec) SaveSpec(w io.Writer) error {
	if err := s.Validate(); err != nil {
		return err
	}
	wire := specWire{Name: s.Name, Dims: s.DimNames}
	for _, c := range s.Classes {
		cw := classWire{Name: c.Name, Prior: c.Prior}
		for _, k := range c.Components {
			cw.Components = append(cw.Components, componentWire{
				Weight: k.Weight, Mean: k.Mean, Std: k.Std,
			})
		}
		wire.Classes = append(wire.Classes, cw)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(wire); err != nil {
		return fmt.Errorf("datagen: encoding spec: %w", err)
	}
	return nil
}

type specWire struct {
	Name    string      `json:"name"`
	Dims    []string    `json:"dims"`
	Classes []classWire `json:"classes"`
}

type classWire struct {
	Name       string          `json:"name"`
	Prior      float64         `json:"prior"`
	Components []componentWire `json:"components"`
}

type componentWire struct {
	Weight float64   `json:"weight"`
	Mean   []float64 `json:"mean"`
	Std    []float64 `json:"std"`
}

// XOR draws n points from the classic two-class XOR layout plus noise
// dimensions: class = 1 iff sign(x0) ≠ sign(x1), with blob centers at
// ±sep, and noiseDims additional standard-normal dimensions carrying no
// class signal. No single dimension discriminates — dimensions 0 and 1
// only separate the classes *jointly* — which makes XOR the acid test
// for the classifier's subspace join: level-1 candidates all fail, the
// (0,1) pair succeeds.
func XOR(n int, sep float64, noiseDims int, r *rng.Source) (*dataset.Dataset, error) {
	if n < 4 {
		return nil, fmt.Errorf("datagen: n=%d rows for XOR", n)
	}
	if sep <= 0 {
		return nil, fmt.Errorf("datagen: XOR separation %v", sep)
	}
	if noiseDims < 0 {
		return nil, fmt.Errorf("datagen: %d noise dimensions", noiseDims)
	}
	if r == nil {
		return nil, fmt.Errorf("datagen: nil random source")
	}
	names := []string{"x0", "x1"}
	for j := 0; j < noiseDims; j++ {
		names = append(names, fmt.Sprintf("noise_%d", j))
	}
	ds := dataset.New(names...)
	ds.ClassNames = []string{"same-sign", "opposite-sign"}
	row := make([]float64, len(names))
	for i := 0; i < n; i++ {
		neg0, neg1 := r.Bool(0.5), r.Bool(0.5)
		s0, s1 := 1.0, 1.0
		if neg0 {
			s0 = -1
		}
		if neg1 {
			s1 = -1
		}
		label := 0
		if neg0 != neg1 {
			label = 1
		}
		row[0] = r.Norm(s0*sep, 1)
		row[1] = r.Norm(s1*sep, 1)
		for j := 0; j < noiseDims; j++ {
			row[2+j] = r.Norm(0, 1)
		}
		if err := ds.Append(row, nil, label); err != nil {
			return nil, err
		}
	}
	return ds, nil
}

// Rings draws n points forming two concentric 2-D rings (a non-convex
// clustering problem density-based methods handle and centroid methods do
// not). Labels are 0 for the inner ring and 1 for the outer ring.
func Rings(n int, r *rng.Source) (*dataset.Dataset, error) {
	if n < 2 {
		return nil, fmt.Errorf("datagen: n=%d rows for two rings", n)
	}
	if r == nil {
		return nil, fmt.Errorf("datagen: nil random source")
	}
	ds := dataset.New("x", "y")
	ds.ClassNames = []string{"inner", "outer"}
	for i := 0; i < n; i++ {
		radius, label := 1.0, 0
		if i%2 == 1 {
			radius, label = 4.0, 1
		}
		theta := r.Uniform(0, 2*math.Pi)
		rad := radius + r.Norm(0, 0.15)
		if err := ds.Append([]float64{rad * math.Cos(theta), rad * math.Sin(theta)}, nil, label); err != nil {
			return nil, err
		}
	}
	return ds, nil
}
