// Package detfloat guards the bit-identity contract of the density
// kernels (Aggarwal's Eq. 3–5): every float reduction in the library
// must happen in a deterministic order, or the serial, parallel, and
// served paths stop agreeing bit-for-bit.
//
// Go randomizes map iteration order, so a floating-point accumulation
// driven by `range` over a map is nondeterministic across runs even on
// one machine. The analyzer flags any `for ... range m` over a map
// whose body accumulates into a float variable declared outside the
// loop (s += x, s = s + x, and friends). The fix is to collect and
// sort the keys first — and for long reductions to use internal/num's
// compensated Sum, which is both deterministic and accurate.
//
// Writes through an index expression (acc[k] += v) are not flagged:
// keyed writes are order-independent when each key is visited once,
// and the common build-a-map patterns would otherwise drown the signal
// in false positives.
package detfloat

import (
	"go/ast"
	"go/token"
	"go/types"

	"udm/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "detfloat",
	Doc: "forbid float accumulation driven by range-over-map: map order is random, which breaks the " +
		"bit-identical density contract — iterate sorted keys and reduce with internal/num.Sum",
	Run: run,
}

func run(pass *analysis.Pass) error {
	analysis.Preorder(pass.Files, func(n ast.Node) {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return
		}
		t := pass.TypesInfo.TypeOf(rng.X)
		if t == nil {
			return
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return
		}
		ast.Inspect(rng.Body, func(inner ast.Node) bool {
			assign, ok := inner.(*ast.AssignStmt)
			if !ok {
				return true
			}
			if lhs, ok := accumulationTarget(pass.TypesInfo, assign); ok {
				if isFloat(pass.TypesInfo.TypeOf(lhs)) && declaredOutside(pass.TypesInfo, lhs, rng.Body) {
					pass.Reportf(assign.Pos(), "float accumulation in map iteration order is nondeterministic: iterate sorted keys and reduce with internal/num.Sum")
				}
			}
			return true
		})
	})
	return nil
}

// accumulationTarget reports whether assign accumulates into its
// left-hand side (s += x, s -= x, s *= x, s /= x, or s = s ⊕ x) and
// returns that target expression.
func accumulationTarget(info *types.Info, assign *ast.AssignStmt) (ast.Expr, bool) {
	if len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return nil, false
	}
	lhs := ast.Unparen(assign.Lhs[0])
	switch assign.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		return lhs, true
	case token.ASSIGN:
		bin, ok := ast.Unparen(assign.Rhs[0]).(*ast.BinaryExpr)
		if !ok {
			return nil, false
		}
		switch bin.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO:
			if sameTarget(info, lhs, ast.Unparen(bin.X)) || sameTarget(info, lhs, ast.Unparen(bin.Y)) {
				return lhs, true
			}
		}
	}
	return nil, false
}

// sameTarget reports whether two expressions refer to the same
// identifier object (s = s + x) — the accumulator appearing on both
// sides of the assignment.
func sameTarget(info *types.Info, a, b ast.Expr) bool {
	ai, aok := a.(*ast.Ident)
	bi, bok := b.(*ast.Ident)
	if !aok || !bok {
		return false
	}
	obj := info.Uses[ai]
	return obj != nil && obj == info.Uses[bi]
}

// isFloat reports whether t is a floating-point type.
func isFloat(t types.Type) bool {
	basic, ok := t.(*types.Basic)
	if !ok {
		if named, isNamed := t.(*types.Named); isNamed {
			basic, ok = named.Underlying().(*types.Basic)
		}
	}
	return ok && basic.Info()&types.IsFloat != 0
}

// declaredOutside reports whether the accumulator target was declared
// outside body — i.e. the reduction escapes the loop. Accumulators
// local to one iteration are order-safe. Selector targets (s.total)
// are treated as outside; index targets never reach here.
func declaredOutside(info *types.Info, lhs ast.Expr, body *ast.BlockStmt) bool {
	switch lhs := lhs.(type) {
	case *ast.Ident:
		obj := info.Uses[lhs]
		if obj == nil {
			obj = info.Defs[lhs]
		}
		if obj == nil {
			return false
		}
		return obj.Pos() < body.Pos() || obj.Pos() > body.End()
	case *ast.SelectorExpr:
		return true
	}
	return false
}
