package detfloat_test

import (
	"testing"

	"udm/internal/analysis/analysistest"
	"udm/internal/analysis/detfloat"
)

func TestDetfloat(t *testing.T) {
	analysistest.Run(t, "../testdata/fixture", detfloat.Analyzer, "udmfixture/detfloat")
}
