// Package errsentinel enforces the module's error contract.
//
// Since PR 2 every failure the library reports is classifiable with
// errors.Is against a udmerr sentinel, and the serving layer maps
// sentinels to HTTP status codes. Two rules keep that contract
// machine-checked:
//
//  1. In the contract packages (internal/dataset, internal/kde,
//     internal/core, internal/outlier, internal/stream) every
//     constructed error must be wrappable: errors.New inside a
//     function body is forbidden, and fmt.Errorf must carry a %w verb
//     (wrapping either a udmerr sentinel or an underlying error whose
//     chain the caller can inspect).
//  2. Everywhere, matching on error message text — comparing
//     err.Error() with == or !=, switching on it, or feeding it to
//     strings.Contains and friends — is forbidden; use errors.Is or
//     errors.As.
package errsentinel

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"udm/internal/analysis"
)

// contractPkgs are the package-path suffixes whose errors must wrap a
// sentinel (rule 1). Suffix matching lets the testdata fixture module
// stand in for the real packages.
var contractPkgs = []string{
	"internal/dataset",
	"internal/kde",
	"internal/core",
	"internal/outlier",
	"internal/stream",
}

var Analyzer = &analysis.Analyzer{
	Name: "errsentinel",
	Doc: "require errors in contract packages to wrap a udmerr sentinel (fmt.Errorf with %w, no bare errors.New), " +
		"and forbid matching on err.Error() message text anywhere",
	Run: run,
}

func run(pass *analysis.Pass) error {
	contract := false
	for _, suffix := range contractPkgs {
		if analysis.PathHasSuffix(pass.PkgPath, suffix) {
			contract = true
			break
		}
	}
	analysis.Preorder(pass.Files, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			if contract {
				checkConstruction(pass, n)
			}
			checkStringsMatch(pass, n)
		case *ast.BinaryExpr:
			if n.Op == token.EQL || n.Op == token.NEQ {
				if isErrErrorCall(pass.TypesInfo, n.X) || isErrErrorCall(pass.TypesInfo, n.Y) {
					pass.Reportf(n.Pos(), "comparing err.Error() text: classify errors with errors.Is against a udmerr sentinel")
				}
			}
		case *ast.SwitchStmt:
			if n.Tag != nil && isErrErrorCall(pass.TypesInfo, n.Tag) {
				pass.Reportf(n.Tag.Pos(), "switching on err.Error() text: classify errors with errors.Is against a udmerr sentinel")
			}
		}
	})
	return nil
}

// checkConstruction applies rule 1 to one call in a contract package.
func checkConstruction(pass *analysis.Pass, call *ast.CallExpr) {
	switch {
	case analysis.IsPkgFunc(pass.TypesInfo, call, "errors", "New"):
		pass.Reportf(call.Pos(), "errors.New in a contract package: wrap a udmerr sentinel with fmt.Errorf(\"...: %%w\", udmerr.Err...)")
	case analysis.IsPkgFunc(pass.TypesInfo, call, "fmt", "Errorf"):
		if len(call.Args) == 0 {
			return
		}
		lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			pass.Reportf(call.Pos(), "fmt.Errorf with a non-constant format cannot be audited for %%w: use a literal format wrapping a udmerr sentinel")
			return
		}
		format, err := strconv.Unquote(lit.Value)
		if err != nil {
			return
		}
		if !strings.Contains(format, "%w") {
			pass.Reportf(call.Pos(), "error does not wrap a sentinel: add \": %%w\" with a udmerr sentinel (or the underlying error) so callers can use errors.Is")
		}
	}
}

// checkStringsMatch applies rule 2 to strings.* helpers.
func checkStringsMatch(pass *analysis.Pass, call *ast.CallExpr) {
	for _, name := range []string{"Contains", "HasPrefix", "HasSuffix", "EqualFold"} {
		if analysis.IsPkgFunc(pass.TypesInfo, call, "strings", name) {
			for _, arg := range call.Args {
				if isErrErrorCall(pass.TypesInfo, arg) {
					pass.Reportf(call.Pos(), "matching err.Error() text with strings.%s: classify errors with errors.Is against a udmerr sentinel", name)
					return
				}
			}
		}
	}
}

// isErrErrorCall reports whether expr is a call of the Error() string
// method on a value that satisfies the error interface.
func isErrErrorCall(info *types.Info, expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" {
		return false
	}
	t := info.TypeOf(sel.X)
	if t == nil {
		return false
	}
	errIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return types.Implements(t, errIface) || types.Implements(types.NewPointer(t), errIface)
}
