package errsentinel_test

import (
	"testing"

	"udm/internal/analysis/analysistest"
	"udm/internal/analysis/errsentinel"
)

func TestErrsentinel(t *testing.T) {
	analysistest.Run(t, "../testdata/fixture", errsentinel.Analyzer,
		"udmfixture/internal/dataset", "udmfixture/errtext", "udmfixture/internal/udmerr")
}
