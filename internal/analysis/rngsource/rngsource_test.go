package rngsource_test

import (
	"testing"

	"udm/internal/analysis/analysistest"
	"udm/internal/analysis/rngsource"
)

func TestRngsource(t *testing.T) {
	analysistest.Run(t, "../testdata/fixture", rngsource.Analyzer,
		"udmfixture/rngsource", "udmfixture/internal/rng")
}
