// Package rngsource keeps every random draw in the module reproducible.
//
// All stochastic behavior is supposed to flow through internal/rng's
// seeded, splittable Source, so a run is determined entirely by its
// configured seeds. Two rules enforce that:
//
//  1. Only internal/rng — and internal/faultinject, whose per-site
//     probability streams are seeded by the armed fault spec — may
//     import math/rand (or math/rand/v2). Any other import site
//     reintroduces the package-global generator and with it
//     cross-test, cross-goroutine seed coupling.
//  2. Nothing may seed a generator from the wall clock: time.Now
//     flowing into rand.New/rand.NewSource, rng.New, or any
//     Seed-named call makes runs unrepeatable by construction. This
//     rule applies everywhere, main packages and internal/rng
//     included — seeds come from configuration or rng.Source.Split.
package rngsource

import (
	"go/ast"
	"strconv"
	"strings"

	"udm/internal/analysis"
)

// randPkgs are the package-path suffixes sanctioned to import
// math/rand directly: internal/rng (the seeded-stream substrate every
// other package draws through) and internal/faultinject, whose
// probabilistic fault points run one explicitly-seeded stream per
// armed site and must not depend on internal/rng (fault points are
// compiled into the substrate packages internal/rng's own users sit
// on).
var randPkgs = []string{
	"internal/rng",
	"internal/faultinject",
}

var Analyzer = &analysis.Analyzer{
	Name: "rngsource",
	Doc: "forbid math/rand imports outside internal/rng (and internal/faultinject's seeded fault streams) " +
		"and any seeding of a generator from time.Now: randomness must flow through seeded streams",
	Run: run,
}

func run(pass *analysis.Pass) error {
	rngPkg := false
	for _, suffix := range randPkgs {
		if analysis.PathHasSuffix(pass.PkgPath, suffix) {
			rngPkg = true
			break
		}
	}
	analysis.Preorder(pass.Files, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.ImportSpec:
			if rngPkg {
				return
			}
			path, err := strconv.Unquote(n.Path.Value)
			if err != nil {
				return
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(n.Pos(), "import of %s outside internal/rng: draw randomness from a seeded rng.Source", path)
			}
		case *ast.CallExpr:
			if !isSeedingCall(pass, n) {
				return
			}
			for _, arg := range n.Args {
				ast.Inspect(arg, func(inner ast.Node) bool {
					call, ok := inner.(*ast.CallExpr)
					if !ok {
						return true
					}
					if analysis.IsPkgFunc(pass.TypesInfo, call, "time", "Now") {
						pass.Reportf(call.Pos(), "seeding a random source from time.Now makes runs unreproducible: take the seed from configuration or derive it with rng.Source.Split")
						return false
					}
					return true
				})
			}
		}
	})
	return nil
}

// isSeedingCall reports whether call constructs or seeds a random
// source: rand.New / rand.NewSource (math/rand and v2), rng.New
// (internal/rng), or any callee whose name mentions Seed.
func isSeedingCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	for _, pkg := range []string{"math/rand", "math/rand/v2"} {
		if analysis.IsPkgFunc(pass.TypesInfo, call, pkg, "New") ||
			analysis.IsPkgFunc(pass.TypesInfo, call, pkg, "NewSource") ||
			analysis.IsPkgFunc(pass.TypesInfo, call, pkg, "NewPCG") {
			return true
		}
	}
	if analysis.IsPkgFunc(pass.TypesInfo, call, "internal/rng", "New") {
		return true
	}
	if obj := analysis.Callee(pass.TypesInfo, call); obj != nil && strings.Contains(obj.Name(), "Seed") {
		return true
	}
	return false
}
