package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression directives let a justified exception stand without
// weakening the rule for everyone else. The syntax is
//
//	//lint:allow <analyzer> <reason>
//
// placed either on the offending line or alone on the line directly
// above it. The analyzer name may be "all" to silence every analyzer at
// that site. The reason is mandatory: a suppression with no
// justification is itself reported as a finding of the pseudo-analyzer
// "lint", so exceptions stay auditable.

const allowPrefix = "lint:allow"

// suppressKey identifies one suppressed (file, line, analyzer) site.
type suppressKey struct {
	file     string
	line     int
	analyzer string
}

type suppressSet map[suppressKey]bool

// allows reports whether a diagnostic of the named analyzer at pos is
// covered by a suppression directive.
func (s suppressSet) allows(analyzer string, pos token.Position) bool {
	return s[suppressKey{pos.Filename, pos.Line, analyzer}] ||
		s[suppressKey{pos.Filename, pos.Line, "all"}]
}

// suppressions scans the comments of files for //lint:allow directives.
// It returns the set of suppressed sites and a list of findings for
// malformed directives (missing analyzer name or missing reason).
func suppressions(fset *token.FileSet, files []*ast.File) (suppressSet, []Finding) {
	set := suppressSet{}
	var bad []Finding
	for _, file := range files {
		code := codeLines(fset, file)
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+allowPrefix)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) < 2 {
					bad = append(bad, Finding{
						Pos:      pos,
						Analyzer: "lint",
						Message:  "malformed //lint:allow directive: want //lint:allow <analyzer> <reason>",
					})
					continue
				}
				// A trailing directive covers the code on its own line;
				// a standalone directive covers the line below it.
				line := pos.Line
				if !code[line] {
					line++
				}
				set[suppressKey{pos.Filename, line, fields[0]}] = true
			}
		}
	}
	return set, bad
}

// codeLines reports which lines of file hold non-comment syntax, so a
// directive can tell whether it trails code or stands alone.
func codeLines(fset *token.FileSet, file *ast.File) map[int]bool {
	lines := map[int]bool{}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.Comment, *ast.CommentGroup, *ast.File:
			return true
		}
		lines[fset.Position(n.Pos()).Line] = true
		lines[fset.Position(n.End()).Line] = true
		return true
	})
	return lines
}
