package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression directives let a justified exception stand without
// weakening the rule for everyone else. The syntax is
//
//	//lint:allow <analyzer> <reason>
//
// placed either on the offending line or alone on the line directly
// above it. The analyzer name may be "all" to silence every analyzer at
// that site. The reason is mandatory: a suppression with no
// justification is itself reported as a finding of the pseudo-analyzer
// "lint", so exceptions stay auditable.
//
// A directive covers the whole simple statement it anchors to, even
// when that statement spans several lines — a finding reported on the
// second line of a wrapped call is still suppressed by the directive
// directly above the statement. Control statements (if/for/switch/
// select and blocks) are deliberately excluded from that widening:
// a directive above an `if` covers the if line only, never the body,
// so one suppression can't silently blanket dozens of statements.

const allowPrefix = "lint:allow"

// suppressKey identifies one suppressed (file, line, analyzer) site.
type suppressKey struct {
	file     string
	line     int
	analyzer string
}

type suppressSet map[suppressKey]bool

// allows reports whether a diagnostic of the named analyzer at pos is
// covered by a suppression directive.
func (s suppressSet) allows(analyzer string, pos token.Position) bool {
	return s[suppressKey{pos.Filename, pos.Line, analyzer}] ||
		s[suppressKey{pos.Filename, pos.Line, "all"}]
}

// suppressions scans the comments of files for //lint:allow directives.
// It returns the set of suppressed sites and a list of findings for
// malformed directives (missing analyzer name or missing reason).
func suppressions(fset *token.FileSet, files []*ast.File) (suppressSet, []Finding) {
	set := suppressSet{}
	var bad []Finding
	for _, file := range files {
		code := codeLines(fset, file)
		spans := stmtSpans(fset, file)
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+allowPrefix)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) < 2 {
					bad = append(bad, Finding{
						Pos:      pos,
						Analyzer: "lint",
						Message:  "malformed //lint:allow directive: want //lint:allow <analyzer> <reason>",
					})
					continue
				}
				// A trailing directive anchors to the code on its own
				// line; a standalone directive anchors to the line below
				// it. Either way the directive covers every line of the
				// simple statement starting at the anchor, so wrapped
				// multi-line statements are suppressed in full.
				line := pos.Line
				if !code[line] {
					line++
				}
				last := line
				if end, ok := spans[line]; ok && end > last {
					last = end
				}
				for l := line; l <= last; l++ {
					set[suppressKey{pos.Filename, l, fields[0]}] = true
				}
			}
		}
	}
	return set, bad
}

// stmtSpans maps the start line of every simple statement (and
// non-import declaration group) to the last line of the outermost such
// node starting there. Control statements and blocks are excluded so a
// directive anchored on them never widens into their bodies.
func stmtSpans(fset *token.FileSet, file *ast.File) map[int]int {
	spans := map[int]int{}
	record := func(n ast.Node) {
		start := fset.Position(n.Pos()).Line
		end := fset.Position(n.End()).Line
		if end > spans[start] {
			spans[start] = end
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt,
			*ast.TypeSwitchStmt, *ast.SelectStmt, *ast.BlockStmt, *ast.LabeledStmt:
			return true // never widen into a body
		case *ast.GenDecl:
			if n.Tok != token.IMPORT {
				record(n)
			}
		case ast.Stmt:
			record(n)
		}
		return true
	})
	return spans
}

// codeLines reports which lines of file hold non-comment syntax, so a
// directive can tell whether it trails code or stands alone.
func codeLines(fset *token.FileSet, file *ast.File) map[int]bool {
	lines := map[int]bool{}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.Comment, *ast.CommentGroup, *ast.File:
			return true
		}
		lines[fset.Position(n.Pos()).Line] = true
		lines[fset.Position(n.End()).Line] = true
		return true
	})
	return lines
}
