package spanend_test

import (
	"testing"

	"udm/internal/analysis/analysistest"
	"udm/internal/analysis/spanend"
)

func TestSpanend(t *testing.T) {
	analysistest.Run(t, "../testdata/fixture", spanend.Analyzer, "udmfixture/spanend")
}
