// Package spanend enforces the span-hygiene idiom for internal/obs
// trace spans: every obs.StartSpan call must bind its span and be
// followed immediately by a deferred End,
//
//	ctx, sp := obs.StartSpan(ctx, "pkg.Operation")
//	defer sp.End()
//
// so the span is closed on every return path, including panics. A span
// ended manually at the bottom of a function leaks on early returns —
// the trace ring then never sees the root publish and its descendants
// are orphaned — so the analyzer does not try to prove End-on-all-paths
// by flow analysis; it requires the one shape that makes leaks
// impossible. Unlike most checks here it applies to main packages too:
// a leaked span misattributes traces no matter who started it.
package spanend

import (
	"fmt"
	"go/ast"

	"udm/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "spanend",
	Doc: "require `ctx, sp := obs.StartSpan(...)` to be followed immediately by `defer sp.End()` " +
		"so spans are ended on every return path",
	Run: run,
}

func run(pass *analysis.Pass) error {
	analysis.Preorder(pass.Files, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok || !analysis.IsPkgFunc(pass.TypesInfo, call, "internal/obs", "StartSpan") {
			return
		}
		sp := boundSpan(pass, call)
		if sp == nil {
			pass.Reportf(call.Pos(), "obs.StartSpan result must be bound: ctx, sp := obs.StartSpan(...)")
			return
		}
		if !deferredEndFollows(pass, sp) {
			d := analysis.Diagnostic{
				Pos:     call.Pos(),
				Message: fmt.Sprintf("span %s must be ended by `defer %s.End()` immediately after obs.StartSpan", sp.Name, sp.Name),
			}
			// Span.End is idempotent (a CompareAndSwap guard), so
			// inserting the deferred End is safe even when a manual End
			// survives further down the function.
			if asg, ok := pass.ParentOf(sp).(*ast.AssignStmt); ok && inStmtList(pass, asg) {
				d.Fixes = []analysis.SuggestedFix{{
					Message: fmt.Sprintf("insert `defer %s.End()` after the assignment", sp.Name),
					Edits: []analysis.TextEdit{{
						Pos:     asg.End(),
						End:     asg.End(),
						NewText: "\ndefer " + sp.Name + ".End()",
					}},
				}}
			}
			pass.Report(d)
		}
	})
	return nil
}

// boundSpan returns the identifier the span is assigned to when the
// call is the sole RHS of a two-value assignment with a named span
// variable, else nil.
func boundSpan(pass *analysis.Pass, call *ast.CallExpr) *ast.Ident {
	asg, ok := pass.ParentOf(call).(*ast.AssignStmt)
	if !ok || len(asg.Rhs) != 1 || asg.Rhs[0] != call || len(asg.Lhs) != 2 {
		return nil
	}
	id, ok := asg.Lhs[1].(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	return id
}

// deferredEndFollows reports whether the statement immediately after
// the span's assignment, in the same statement list, is
// `defer <span>.End()`.
func deferredEndFollows(pass *analysis.Pass, sp *ast.Ident) bool {
	asg := pass.ParentOf(sp)
	next := nextStmt(pass, asg.(*ast.AssignStmt))
	def, ok := next.(*ast.DeferStmt)
	if !ok {
		return false
	}
	sel, ok := def.Call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return false
	}
	recv, ok := sel.X.(*ast.Ident)
	return ok && recv.Name == sp.Name
}

// inStmtList reports whether stmt sits directly in a statement list —
// the only placement where a statement can be inserted after it (an
// assignment in an if-init clause, say, cannot take the fix).
func inStmtList(pass *analysis.Pass, stmt ast.Stmt) bool {
	switch pass.ParentOf(stmt).(type) {
	case *ast.BlockStmt, *ast.CaseClause, *ast.CommClause:
		return true
	}
	return false
}

// nextStmt returns the statement following stmt in its enclosing
// statement list (block, case clause, or select clause), or nil.
func nextStmt(pass *analysis.Pass, stmt ast.Stmt) ast.Stmt {
	var list []ast.Stmt
	switch parent := pass.ParentOf(stmt).(type) {
	case *ast.BlockStmt:
		list = parent.List
	case *ast.CaseClause:
		list = parent.Body
	case *ast.CommClause:
		list = parent.Body
	default:
		return nil
	}
	for i, s := range list {
		if s == stmt && i+1 < len(list) {
			return list[i+1]
		}
	}
	return nil
}
