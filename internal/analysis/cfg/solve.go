// Worklist dataflow solvers and the two helper analyses the project's
// analyzers lean on: path reachability with kill nodes (the "reaching"
// query behind ctxleak and lockguard) and classic backward liveness.
package cfg

import (
	"go/ast"
	"go/types"
)

// Forward runs a forward worklist analysis to fixpoint and returns the
// entry and exit fact of every block.
//
//   - entry is the boundary fact at the graph's Entry block.
//   - bottom is the initial fact of every other block (the identity of
//     join: an empty set for may-analyses, the universal set for
//     must-analyses).
//   - join merges the exit facts of a block's predecessors.
//   - transfer maps a block's entry fact to its exit fact; it must be
//     monotone for the iteration to terminate.
//   - equal reports fact equality, the convergence test.
func Forward[F any](g *Graph, entry, bottom F, join func(F, F) F, transfer func(*Block, F) F, equal func(F, F) bool) (in, out map[*Block]F) {
	in = make(map[*Block]F, len(g.Blocks))
	out = make(map[*Block]F, len(g.Blocks))
	for _, b := range g.Blocks {
		in[b], out[b] = bottom, transfer(b, bottom)
	}
	in[g.Entry] = entry
	out[g.Entry] = transfer(g.Entry, entry)

	work := append([]*Block(nil), g.Blocks...)
	queued := make([]bool, len(g.Blocks))
	for i := range queued {
		queued[i] = true
	}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b.Index] = false

		fact := in[b]
		if b != g.Entry {
			first := true
			for _, p := range b.Preds {
				if first {
					fact, first = out[p], false
				} else {
					fact = join(fact, out[p])
				}
			}
			if first { // unreachable block: keep bottom
				fact = in[b]
			}
		}
		newOut := transfer(b, fact)
		if equal(fact, in[b]) && equal(newOut, out[b]) {
			continue
		}
		in[b], out[b] = fact, newOut
		for _, s := range b.Succs {
			if !queued[s.Index] {
				queued[s.Index] = true
				work = append(work, s)
			}
		}
	}
	return in, out
}

// Backward is the mirror of Forward: facts flow from Exit to Entry,
// join merges successor entry facts, and transfer maps a block's exit
// fact to its entry fact. Returns the entry (in) and exit (out) fact
// of every block, where for a backward analysis "in" is the fact at
// the block's end and "out" the fact at its start.
func Backward[F any](g *Graph, exit, bottom F, join func(F, F) F, transfer func(*Block, F) F, equal func(F, F) bool) (atEnd, atStart map[*Block]F) {
	atEnd = make(map[*Block]F, len(g.Blocks))
	atStart = make(map[*Block]F, len(g.Blocks))
	for _, b := range g.Blocks {
		atEnd[b], atStart[b] = bottom, transfer(b, bottom)
	}
	atEnd[g.Exit] = exit
	atStart[g.Exit] = transfer(g.Exit, exit)

	work := append([]*Block(nil), g.Blocks...)
	queued := make([]bool, len(g.Blocks))
	for i := range queued {
		queued[i] = true
	}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b.Index] = false

		fact := atEnd[b]
		if b != g.Exit {
			first := true
			for _, s := range b.Succs {
				if first {
					fact, first = atStart[s], false
				} else {
					fact = join(fact, atStart[s])
				}
			}
			if first {
				fact = atEnd[b]
			}
		}
		newStart := transfer(b, fact)
		if equal(fact, atEnd[b]) && equal(newStart, atStart[b]) {
			continue
		}
		atEnd[b], atStart[b] = fact, newStart
		for _, p := range b.Preds {
			if !queued[p.Index] {
				queued[p.Index] = true
				work = append(work, p)
			}
		}
	}
	return atEnd, atStart
}

// BlockOf returns the block whose Nodes contain n (by identity), or
// nil when n is not recorded in the graph (e.g. a node nested inside a
// composite statement's body).
func (g *Graph) BlockOf(n ast.Node) *Block {
	for _, b := range g.Blocks {
		for _, m := range b.Nodes {
			if m == n {
				return b
			}
		}
	}
	return nil
}

// ExistsPath reports whether some execution path leads from src to dst
// along which no node satisfies kill. Within src only the nodes
// strictly after the `after` node are considered (pass nil to consider
// all of src); dst is considered reached at its top, before its own
// nodes run. A block containing a kill node cannot be passed through.
//
// This is the workhorse query behind the path-sensitive analyzers:
// "is there a path from the Lock to the function exit that never
// Unlocks?" is ExistsPath(lockBlock, g.Exit, lockStmt, isUnlock).
func (g *Graph) ExistsPath(src, dst *Block, after ast.Node, kill func(ast.Node) bool) bool {
	// The straight-line tail of src after the anchor node.
	start := 0
	if after != nil {
		for i, n := range src.Nodes {
			if n == after {
				start = i + 1
				break
			}
		}
	}
	for _, n := range src.Nodes[start:] {
		if kill(n) {
			return false
		}
	}
	if src == dst && after == nil {
		return true
	}

	seen := make([]bool, len(g.Blocks))
	var stack []*Block
	push := func(b *Block) {
		if !seen[b.Index] {
			seen[b.Index] = true
			stack = append(stack, b)
		}
	}
	for _, s := range src.Succs {
		push(s)
	}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if b == dst {
			return true
		}
		blocked := false
		for _, n := range b.Nodes {
			if kill(n) {
				blocked = true
				break
			}
		}
		if blocked {
			continue
		}
		for _, s := range b.Succs {
			push(s)
		}
	}
	return false
}

// Liveness computes, for every block, the set of local variables live
// at its entry: a backward may-analysis with the classic
// use ∪ (liveOut − def) transfer. Only objects recorded in info
// (package-local *types.Var uses and defs) participate.
func Liveness(g *Graph, info *types.Info) map[*Block]map[types.Object]bool {
	use := make(map[*Block]map[types.Object]bool, len(g.Blocks))
	def := make(map[*Block]map[types.Object]bool, len(g.Blocks))
	for _, b := range g.Blocks {
		u, d := map[types.Object]bool{}, map[types.Object]bool{}
		for _, n := range b.Nodes {
			nodeUseDef(n, info, u, d)
		}
		use[b], def[b] = u, d
	}

	join := func(a, b map[types.Object]bool) map[types.Object]bool {
		m := make(map[types.Object]bool, len(a)+len(b))
		for o := range a {
			m[o] = true
		}
		for o := range b {
			m[o] = true
		}
		return m
	}
	equal := func(a, b map[types.Object]bool) bool {
		if len(a) != len(b) {
			return false
		}
		for o := range a {
			if !b[o] {
				return false
			}
		}
		return true
	}
	transfer := func(b *Block, liveOut map[types.Object]bool) map[types.Object]bool {
		m := make(map[types.Object]bool, len(liveOut)+len(use[b]))
		for o := range liveOut {
			if !def[b][o] {
				m[o] = true
			}
		}
		for o := range use[b] {
			m[o] = true
		}
		return m
	}
	_, atStart := Backward(g, map[types.Object]bool{}, map[types.Object]bool{}, join, transfer, equal)
	return atStart
}

// nodeUseDef accumulates the variables node uses and defines. An
// identifier written by a plain assignment both defines the variable
// (its old value dies) and, on compound forms (x += y), uses it; a :=
// define is a pure definition. Uses that happen before the block's own
// definition still count as uses — the per-block approximation errs
// toward liveness, which is the safe direction for a may-analysis.
func nodeUseDef(node ast.Node, info *types.Info, use, def map[types.Object]bool) {
	record := func(n ast.Node, asDef bool) {
		ast.Inspect(n, func(x ast.Node) bool {
			id, ok := x.(*ast.Ident)
			if !ok {
				return true
			}
			obj := info.Uses[id]
			if obj == nil {
				obj = info.Defs[id]
			}
			if v, ok := obj.(*types.Var); ok && !v.IsField() {
				if asDef {
					def[obj] = true
				} else if !def[obj] {
					use[obj] = true
				}
			}
			return true
		})
	}
	if asg, ok := node.(*ast.AssignStmt); ok {
		for _, rhs := range asg.Rhs {
			record(rhs, false)
		}
		for _, lhs := range asg.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if asg.Tok.String() != "=" && asg.Tok.String() != ":=" {
					record(id, false) // compound assignment reads too
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if v, ok := obj.(*types.Var); ok && !v.IsField() {
					def[obj] = true
				}
				continue
			}
			record(lhs, false) // *p, s[i], x.f: the base is read
		}
		return
	}
	record(node, false)
}
