// Package cfg builds intraprocedural control-flow graphs over go/ast
// function bodies, entirely on the standard library, and layers
// worklist dataflow solvers on top of them (solve.go).
//
// The per-node AST walkers in internal/analysis can enforce shapes —
// "a defer must follow this assignment" — but not path properties:
// "this cancel func is called on *every* return path", "this mutex is
// unlocked on *some* path but not others". Those need a graph of basic
// blocks. The model here follows golang.org/x/tools/go/cfg: each
// Block holds the simple statements and controlling expressions that
// execute unconditionally once the block is entered, and edges carry
// the branching structure. Composite statements (if/for/switch/select)
// are decomposed into their parts rather than stored whole, so walking
// a block's Nodes never traverses a nested body twice.
//
// The builder covers the full statement grammar: if/else chains,
// for and range loops, expression/type switches with fallthrough,
// select, labeled break/continue, and goto. Panics are treated as
// ordinary calls (flow continues), which is the right conservative
// choice for lint-grade analyses: a deferred cleanup still runs on a
// panicking path, and a non-deferred one is already reported via the
// ordinary fall-off-the-end path.
package cfg

import (
	"fmt"
	"go/ast"
	"strings"
)

// A Block is one basic block: a maximal run of nodes with a single
// entry at the top and a single exit at the bottom.
type Block struct {
	// Index is the block's position in Graph.Blocks, stable across
	// builds of the same body.
	Index int

	// Kind names the construct the block came from ("entry", "if.then",
	// "for.body", "range.done", …) for debug output and tests.
	Kind string

	// Nodes are the simple statements and controlling expressions of
	// the block in execution order: assignments, calls, sends, defers,
	// returns, and the Cond/Tag/X expressions of the statement that
	// ends the block. Composite statements never appear.
	Nodes []ast.Node

	// Succs and Preds are the control-flow edges.
	Succs []*Block
	Preds []*Block
}

// A Graph is the control-flow graph of one function body. Entry is the
// unique start block; Exit is a synthetic block every return path and
// the fall-off-the-end path feed into, so "on every path out of the
// function" is exactly "on every path from Entry to Exit".
type Graph struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
}

// String renders the graph in a compact adjacency form for tests and
// debugging.
func (g *Graph) String() string {
	var b strings.Builder
	for _, blk := range g.Blocks {
		fmt.Fprintf(&b, "%d:%s ->", blk.Index, blk.Kind)
		for _, s := range blk.Succs {
			fmt.Fprintf(&b, " %d", s.Index)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// New builds the control-flow graph of body. A nil body (a declared
// but unimplemented function) yields a trivial Entry→Exit graph.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{g: &Graph{}}
	b.g.Entry = b.newBlock("entry")
	b.g.Exit = b.newBlock("exit")
	b.cur = b.g.Entry
	if body != nil {
		b.stmtList(body.List)
	}
	// The fall-off-the-end edge — but not from a join block that no
	// path actually reaches (e.g. after a select whose every case
	// returns), which would fabricate a path into Exit.
	if b.cur != nil && (b.cur == b.g.Entry || len(b.cur.Preds) > 0 || len(b.cur.Nodes) > 0) {
		link(b.cur, b.g.Exit)
	}
	return b.g
}

// frame tracks one enclosing breakable construct (loop, switch,
// select) for break/continue resolution.
type frame struct {
	label string // non-empty when the construct is labeled
	brk   *Block // break target (always set)
	cont  *Block // continue target (loops only)
}

type builder struct {
	g      *Graph
	cur    *Block // nil after a terminating statement (dead code follows)
	frames []frame
	labels map[string]*Block // goto/label targets, created on demand

	// pendingLabel is the label of a LabeledStmt whose inner statement
	// is about to be built, so loops can register it on their frame.
	pendingLabel string

	// fallTarget is the next case clause's block while building a
	// switch clause body, the target of a fallthrough statement.
	fallTarget *Block
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func link(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// jumpTo links the current block to target and makes target current.
// With no current block (dead code), target simply becomes current,
// unreachable unless something else links to it.
func (b *builder) jumpTo(target *Block) {
	if b.cur != nil {
		link(b.cur, target)
	}
	b.cur = target
}

// ensureCur revives a current block after a terminator so syntactically
// dead statements still get nodes in the graph (with no predecessors).
func (b *builder) ensureCur() {
	if b.cur == nil {
		b.cur = b.newBlock("unreachable")
	}
}

func (b *builder) add(n ast.Node) {
	if n == nil {
		return
	}
	b.ensureCur()
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// takeLabel consumes the pending label for the construct being built.
func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// labelBlock returns (creating on demand) the block a label names, the
// shared target of the LabeledStmt itself and any gotos to it.
func (b *builder) labelBlock(name string) *Block {
	if b.labels == nil {
		b.labels = map[string]*Block{}
	}
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock("label." + name)
	b.labels[name] = blk
	return blk
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	b.ensureCur()
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		b.buildIf(s)

	case *ast.ForStmt:
		b.buildFor(s)

	case *ast.RangeStmt:
		b.buildRange(s)

	case *ast.SwitchStmt:
		b.buildSwitch(s.Init, s.Tag, s.Body, "switch")

	case *ast.TypeSwitchStmt:
		b.buildSwitch(s.Init, nil, s.Body, "typeswitch")
		// The type assertion under test still evaluates its operand.
		b.addTypeSwitchAssign(s)

	case *ast.SelectStmt:
		b.buildSelect(s)

	case *ast.ReturnStmt:
		b.add(s)
		b.jumpDead(b.g.Exit)

	case *ast.BranchStmt:
		b.buildBranch(s)

	case *ast.LabeledStmt:
		lb := b.labelBlock(s.Label.Name)
		b.jumpTo(lb)
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.EmptyStmt:
		// nothing

	default:
		// Simple statements: assignments, declarations, expression
		// statements, sends, inc/dec, go, defer.
		b.add(s)
	}
}

// jumpDead links the current block to target and marks the following
// code dead (the statement was a terminator).
func (b *builder) jumpDead(target *Block) {
	if b.cur != nil {
		link(b.cur, target)
	}
	b.cur = nil
}

func (b *builder) buildIf(s *ast.IfStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.add(s.Cond)
	cond := b.cur
	done := b.newBlock("if.done")
	then := b.newBlock("if.then")
	link(cond, then)
	b.cur = then
	b.stmt(s.Body)
	b.jumpDead(done)
	if s.Else != nil {
		els := b.newBlock("if.else")
		link(cond, els)
		b.cur = els
		b.stmt(s.Else)
		b.jumpDead(done)
	} else {
		link(cond, done)
	}
	b.cur = done
	// done may end up unreachable (both arms terminated); keep it as
	// the current block so following statements land somewhere.
}

func (b *builder) buildFor(s *ast.ForStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.newBlock("for.head")
	b.jumpTo(head)
	if s.Cond != nil {
		b.add(s.Cond)
	}
	body := b.newBlock("for.body")
	done := b.newBlock("for.done")
	link(head, body)
	if s.Cond != nil {
		link(head, done)
	}
	cont := head
	var post *Block
	if s.Post != nil {
		post = b.newBlock("for.post")
		cont = post
	}
	b.frames = append(b.frames, frame{label: label, brk: done, cont: cont})
	b.cur = body
	b.stmt(s.Body)
	if post != nil {
		b.jumpTo(post)
		b.stmt(s.Post)
		b.jumpDead(head)
	} else {
		b.jumpDead(head)
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = done
}

func (b *builder) buildRange(s *ast.RangeStmt) {
	label := b.takeLabel()
	head := b.newBlock("range.head")
	b.jumpTo(head)
	b.add(s.X)
	body := b.newBlock("range.body")
	done := b.newBlock("range.done")
	link(head, body)
	link(head, done)
	b.frames = append(b.frames, frame{label: label, brk: done, cont: head})
	b.cur = body
	b.stmt(s.Body)
	b.jumpDead(head)
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = done
}

// addTypeSwitchAssign records the type-switch guard expression in the
// head block built by buildSwitch (a no-op placeholder: the guard is
// carried by the clause dispatch, and analyzers that care about the
// asserted operand find it via the AST, not the CFG).
func (b *builder) addTypeSwitchAssign(*ast.TypeSwitchStmt) {}

func (b *builder) buildSwitch(init ast.Stmt, tag ast.Expr, body *ast.BlockStmt, kind string) {
	label := b.takeLabel()
	if init != nil {
		b.stmt(init)
	}
	if tag != nil {
		b.add(tag)
	}
	head := b.cur
	done := b.newBlock(kind + ".done")

	var clauses []*ast.CaseClause
	for _, cs := range body.List {
		if cc, ok := cs.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		blocks[i] = b.newBlock(kind + ".case")
		link(head, blocks[i])
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		link(head, done)
	}

	b.frames = append(b.frames, frame{label: label, brk: done})
	savedFall := b.fallTarget
	for i, cc := range clauses {
		b.cur = blocks[i]
		for _, e := range cc.List {
			b.add(e)
		}
		if i+1 < len(blocks) {
			b.fallTarget = blocks[i+1]
		} else {
			b.fallTarget = done
		}
		b.stmtList(cc.Body)
		b.jumpDead(done)
	}
	b.fallTarget = savedFall
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = done
}

func (b *builder) buildSelect(s *ast.SelectStmt) {
	label := b.takeLabel()
	head := b.cur
	done := b.newBlock("select.done")
	b.frames = append(b.frames, frame{label: label, brk: done})
	for _, cs := range s.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		blk := b.newBlock("select.case")
		link(head, blk)
		b.cur = blk
		if cc.Comm != nil {
			b.stmt(cc.Comm)
		}
		b.stmtList(cc.Body)
		b.jumpDead(done)
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = done
}

func (b *builder) buildBranch(s *ast.BranchStmt) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok.String() {
	case "break":
		for i := len(b.frames) - 1; i >= 0; i-- {
			f := b.frames[i]
			if label == "" || f.label == label {
				b.jumpDead(f.brk)
				return
			}
		}
		b.cur = nil // malformed source; treat as terminator
	case "continue":
		for i := len(b.frames) - 1; i >= 0; i-- {
			f := b.frames[i]
			if f.cont != nil && (label == "" || f.label == label) {
				b.jumpDead(f.cont)
				return
			}
		}
		b.cur = nil
	case "goto":
		if label != "" {
			b.jumpDead(b.labelBlock(label))
			return
		}
		b.cur = nil
	case "fallthrough":
		if b.fallTarget != nil {
			b.jumpDead(b.fallTarget)
			return
		}
		b.cur = nil
	}
}
