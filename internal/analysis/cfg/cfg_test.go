package cfg

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// parseFunc type-checks src and returns the named function's
// declaration plus the type info.
func parseFunc(t *testing.T, src, name string) (*ast.FuncDecl, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{Importer: importer.Default(), Error: func(error) {}}
	conf.Check("x", fset, []*ast.File{f}, info) //nolint:errcheck // partial info is enough
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd, info
		}
	}
	t.Fatalf("function %s not found", name)
	return nil, nil
}

// reachable reports the number of blocks reachable from Entry.
func reachable(g *Graph) int {
	seen := map[*Block]bool{}
	var walk func(*Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(g.Entry)
	return len(seen)
}

func TestLinearFunc(t *testing.T) {
	fd, _ := parseFunc(t, `package x
func f() { a := 1; b := a + 1; _ = b }`, "f")
	g := New(fd.Body)
	if len(g.Entry.Nodes) != 3 {
		t.Fatalf("entry has %d nodes, want 3\n%s", len(g.Entry.Nodes), g)
	}
	if len(g.Entry.Succs) != 1 || g.Entry.Succs[0] != g.Exit {
		t.Fatalf("entry must flow straight to exit\n%s", g)
	}
}

func TestIfElseJoins(t *testing.T) {
	fd, _ := parseFunc(t, `package x
func f(c bool) int {
	x := 0
	if c {
		x = 1
	} else {
		x = 2
	}
	return x
}`, "f")
	g := New(fd.Body)
	// entry(cond) -> then, else; both -> done -> exit.
	if n := len(g.Entry.Succs); n != 2 {
		t.Fatalf("cond block has %d succs, want 2\n%s", n, g)
	}
	join := g.Entry.Succs[0].Succs[0]
	if join != g.Entry.Succs[1].Succs[0] {
		t.Fatalf("branches do not rejoin\n%s", g)
	}
	if len(g.Exit.Preds) != 1 {
		t.Fatalf("exit has %d preds, want 1 (the return)\n%s", len(g.Exit.Preds), g)
	}
}

func TestEarlyReturnPath(t *testing.T) {
	fd, _ := parseFunc(t, `package x
func f(c bool) int {
	if c {
		return 1
	}
	return 2
}`, "f")
	g := New(fd.Body)
	if len(g.Exit.Preds) != 2 {
		t.Fatalf("exit has %d preds, want 2\n%s", len(g.Exit.Preds), g)
	}
}

func TestForLoopBackEdge(t *testing.T) {
	fd, _ := parseFunc(t, `package x
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}`, "f")
	g := New(fd.Body)
	var head *Block
	for _, b := range g.Blocks {
		if b.Kind == "for.head" {
			head = b
		}
	}
	if head == nil {
		t.Fatalf("no for.head block\n%s", g)
	}
	if len(head.Preds) != 2 {
		t.Fatalf("loop head has %d preds, want 2 (entry + back edge)\n%s", len(head.Preds), g)
	}
	if len(head.Succs) != 2 {
		t.Fatalf("loop head has %d succs, want 2 (body + done)\n%s", len(head.Succs), g)
	}
}

func TestBreakContinue(t *testing.T) {
	fd, _ := parseFunc(t, `package x
func f(xs []int) int {
	s := 0
	for _, x := range xs {
		if x < 0 {
			continue
		}
		if x > 100 {
			break
		}
		s += x
	}
	return s
}`, "f")
	g := New(fd.Body)
	var head, done *Block
	for _, b := range g.Blocks {
		switch b.Kind {
		case "range.head":
			head = b
		case "range.done":
			done = b
		}
	}
	if head == nil || done == nil {
		t.Fatalf("missing range blocks\n%s", g)
	}
	// continue adds a second inbound edge to the head beyond the entry
	// edge and the body fall-through.
	if len(head.Preds) < 3 {
		t.Fatalf("range head has %d preds, want >= 3 (entry, continue, body end)\n%s", len(head.Preds), g)
	}
	// break adds a second inbound edge to done.
	if len(done.Preds) != 2 {
		t.Fatalf("range done has %d preds, want 2 (head, break)\n%s", len(done.Preds), g)
	}
}

func TestSwitchFallthrough(t *testing.T) {
	fd, _ := parseFunc(t, `package x
func f(n int) string {
	switch n {
	case 0:
		fallthrough
	case 1:
		return "small"
	default:
		return "big"
	}
}`, "f")
	g := New(fd.Body)
	var cases []*Block
	for _, b := range g.Blocks {
		if b.Kind == "switch.case" {
			cases = append(cases, b)
		}
	}
	if len(cases) != 3 {
		t.Fatalf("got %d case blocks, want 3\n%s", len(cases), g)
	}
	// case 0 falls through to case 1.
	found := false
	for _, s := range cases[0].Succs {
		if s == cases[1] {
			found = true
		}
	}
	if !found {
		t.Fatalf("fallthrough edge missing\n%s", g)
	}
}

func TestGotoAndLabels(t *testing.T) {
	fd, _ := parseFunc(t, `package x
func f(n int) int {
	i := 0
loop:
	if i < n {
		i++
		goto loop
	}
	return i
}`, "f")
	g := New(fd.Body)
	var label *Block
	for _, b := range g.Blocks {
		if strings.HasPrefix(b.Kind, "label.") {
			label = b
		}
	}
	if label == nil {
		t.Fatalf("no label block\n%s", g)
	}
	if len(label.Preds) != 2 {
		t.Fatalf("label block has %d preds, want 2 (fall-in + goto)\n%s", len(label.Preds), g)
	}
	if reachable(g) == 0 {
		t.Fatal("empty reachability")
	}
}

func TestSelectClauses(t *testing.T) {
	fd, _ := parseFunc(t, `package x
func f(a, b chan int) int {
	select {
	case v := <-a:
		return v
	case b <- 1:
		return 1
	default:
		return 0
	}
}`, "f")
	g := New(fd.Body)
	n := 0
	for _, b := range g.Blocks {
		if b.Kind == "select.case" {
			n++
		}
	}
	if n != 3 {
		t.Fatalf("got %d select case blocks, want 3\n%s", n, g)
	}
	if len(g.Exit.Preds) != 3 {
		t.Fatalf("exit has %d preds, want 3\n%s", len(g.Exit.Preds), g)
	}
}

// TestExistsPath pins the kill-node reachability query on the shape
// ctxleak depends on: a conditional early return that skips the
// cleanup call.
func TestExistsPath(t *testing.T) {
	fd, _ := parseFunc(t, `package x
func f(c bool) {
	acquire()
	if c {
		return
	}
	release()
}
func acquire() {}
func release() {}`, "f")
	g := New(fd.Body)

	isCall := func(name string) func(ast.Node) bool {
		return func(n ast.Node) bool {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				return false
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				return false
			}
			id, ok := call.Fun.(*ast.Ident)
			return ok && id.Name == name
		}
	}

	// A path from entry to exit avoiding release() exists (the early
	// return), and one avoiding acquire() does not (it dominates).
	if !g.ExistsPath(g.Entry, g.Exit, g.Entry.Nodes[0], isCall("release")) {
		t.Error("early-return path not found")
	}
	if g.ExistsPath(g.Entry, g.Exit, nil, isCall("acquire")) {
		t.Error("found a path around a dominating call")
	}
}

// TestExistsPathLoop checks that a kill inside a loop body does not
// block the zero-iteration path around the loop.
func TestExistsPathLoop(t *testing.T) {
	fd, _ := parseFunc(t, `package x
func f(n int) {
	acquire()
	for i := 0; i < n; i++ {
		release()
	}
}
func acquire() {}
func release() {}`, "f")
	g := New(fd.Body)
	kill := func(n ast.Node) bool {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return false
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "release"
	}
	if !g.ExistsPath(g.Entry, g.Exit, nil, kill) {
		t.Error("zero-iteration bypass path not found")
	}
}

func TestLiveness(t *testing.T) {
	fd, info := parseFunc(t, `package x
func f(c bool) int {
	a := 1
	b := 2
	if c {
		return a
	}
	return b
}`, "f")
	g := New(fd.Body)
	live := Liveness(g, info)

	names := func(b *Block) map[string]bool {
		m := map[string]bool{}
		for o := range live[b] {
			m[o.Name()] = true
		}
		return m
	}
	// At the then-branch (return a), a is live, b is not.
	for _, b := range g.Blocks {
		if b.Kind != "if.then" {
			continue
		}
		n := names(b)
		if !n["a"] || n["b"] {
			t.Errorf("then-branch liveness = %v, want a live and b dead", n)
		}
	}
}

// TestForwardSolver exercises the generic forward engine with a simple
// "definitely called" must-analysis over block kinds.
func TestForwardSolver(t *testing.T) {
	fd, _ := parseFunc(t, `package x
func f(c bool) {
	if c {
		mark()
	}
	sink()
}
func mark() {}
func sink() {}`, "f")
	g := New(fd.Body)

	hasMark := func(b *Block) bool {
		for _, n := range b.Nodes {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				continue
			}
			if call, ok := es.X.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "mark" {
					return true
				}
			}
		}
		return false
	}
	// Fact: true iff mark() has definitely been called. Join = AND
	// (must), bottom = true (the identity of AND).
	join := func(a, b bool) bool { return a && b }
	transfer := func(b *Block, in bool) bool { return in || hasMark(b) }
	equal := func(a, b bool) bool { return a == b }
	in, _ := Forward(g, false, true, join, transfer, equal)
	if in[g.Exit] {
		t.Error("mark() is conditional but solver says it definitely ran")
	}
}
