// Package faultpoint keeps the fault-injection site namespace sound.
//
// faultinject.NewPoint panics at init time on an invalid or duplicate
// site name — but only in a process that happens to link both
// offending packages. This analyzer moves the whole contract to lint
// time, across every package of one analysis run:
//
//  1. NewPoint may only initialize a package-level var. A point built
//     inside a function re-registers on every call and panics the
//     second time; points are compiled in, not created at run time.
//  2. The site name must be a plain string literal. Computed names
//     defeat static checking (and grep), which is most of the value of
//     a site registry.
//  3. The literal must satisfy faultinject.ValidSiteName — the same
//     predicate NewPoint enforces dynamically.
//  4. The name must be unique across all analyzed packages, so two
//     subsystems can never claim the same site even when no test
//     binary links them together.
package faultpoint

import (
	"go/ast"
	"go/token"
	"strconv"
	"sync"

	"udm/internal/analysis"
	"udm/internal/faultinject"
)

var Analyzer = &analysis.Analyzer{
	Name: "faultpoint",
	Doc: "require faultinject.NewPoint sites to be package-level vars with literal, well-formed, " +
		"globally unique names",
	Run: run,
}

// sites records the first declaration of every literal site name, keyed
// by the load's shared FileSet so that uniqueness is scoped to one
// analysis run: independent runs in one test process (fixture trees,
// the real tree) must not see each other's names.
var sites = struct {
	sync.Mutex
	byLoad map[*token.FileSet]map[string]string
}{byLoad: map[*token.FileSet]map[string]string{}}

func run(pass *analysis.Pass) error {
	analysis.Preorder(pass.Files, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok || !analysis.IsPkgFunc(pass.TypesInfo, call, "internal/faultinject", "NewPoint") {
			return
		}
		if !packageLevelVar(pass, call) {
			pass.Reportf(call.Pos(), "faultinject.NewPoint outside a package-level var: points are compiled in once, not created at run time")
		}
		if len(call.Args) != 1 {
			return
		}
		lit, ok := call.Args[0].(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			pass.Reportf(call.Args[0].Pos(), "fault site name is not a string literal: site names must be greppable and statically checkable")
			return
		}
		name, err := strconv.Unquote(lit.Value)
		if err != nil {
			return
		}
		if !faultinject.ValidSiteName(name) {
			pass.Reportf(lit.Pos(), "invalid fault site name %q: want a lowercase dotted path like \"server.batcher.flush\"", name)
			return
		}
		sites.Lock()
		m := sites.byLoad[pass.Fset]
		if m == nil {
			m = map[string]string{}
			sites.byLoad[pass.Fset] = m
		}
		first, dup := m[name]
		if !dup {
			m[name] = pass.Fset.Position(lit.Pos()).String()
		}
		sites.Unlock()
		if dup {
			pass.Reportf(lit.Pos(), "duplicate fault site name %q: first declared at %s", name, first)
		}
	})
	return nil
}

// packageLevelVar reports whether n sits inside a package-level var
// initializer: ascending the syntax tree reaches the file before any
// function body.
func packageLevelVar(pass *analysis.Pass, n ast.Node) bool {
	for p := pass.ParentOf(n); p != nil; p = pass.ParentOf(p) {
		switch p.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return false
		case *ast.File:
			return true
		}
	}
	return false
}
