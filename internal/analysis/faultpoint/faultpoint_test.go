package faultpoint_test

import (
	"testing"

	"udm/internal/analysis/analysistest"
	"udm/internal/analysis/faultpoint"
)

func TestFaultpoint(t *testing.T) {
	analysistest.Run(t, "../testdata/fixture", faultpoint.Analyzer,
		"udmfixture/faultpoint", "udmfixture/faultpoint2", "udmfixture/internal/faultinject")
}
