package lockguard_test

import (
	"testing"

	"udm/internal/analysis/analysistest"
	"udm/internal/analysis/lockguard"
)

func TestLockguard(t *testing.T) {
	analysistest.Run(t, "../testdata/fixture", lockguard.Analyzer,
		"udmfixture/lockguard", "udmfixture/internal/stream")
}
