// Package lockguard enforces the project's mutex-hygiene contract with
// three checks, two of them path-sensitive on the CFG layer:
//
//  1. Copy-by-value: a sync.Mutex/sync.RWMutex (or any struct that
//     transitively contains one) must never be copied — a copy shares
//     no lock state, so the guarded invariant silently evaporates.
//     Flagged shapes: by-value parameters and receivers, assignments
//     that copy an existing lock-bearing lvalue, by-value call
//     arguments, and range-value copies.
//  2. Unlock-on-every-path: after x.Lock() (or x.RLock()) every path
//     out of the function must pass a matching x.Unlock()
//     (x.RUnlock()) or arm a `defer x.Unlock()`. The early-return that
//     skips the unlock is the deadlock nobody reproduces locally; the
//     ExistsPath query over the CFG finds it statically.
//  3. No blocking under a lock, in the concurrent-surface packages
//     (internal/server, internal/parallel, internal/stream): a channel
//     receive or send, a WaitGroup/Cond Wait, or a time.Sleep executed
//     while a mutex is held stalls every other goroutine contending
//     for that lock — the serving-tier latency cliff. Channel
//     operations that are select-clause guards are exempt (select
//     semantics make them the idiomatic non-blocking form), as is
//     anything after the unlock. `defer x.Unlock()` deliberately does
//     NOT end the held region: the lock really is held until return.
//
// Functions that hand a locked mutex to their caller on purpose (lock
// helpers returning an unlock closure) are expected to carry a
// //lint:allow lockguard directive — the shape is rare and worth an
// audit trail.
package lockguard

import (
	"go/ast"
	"go/types"

	"udm/internal/analysis"
	"udm/internal/analysis/cfg"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockguard",
	Doc: "forbid copying sync.Mutex/RWMutex by value, Lock without Unlock on some path out of the " +
		"function, and blocking (channel ops, Wait, Sleep) while a lock is held in server/parallel/stream packages",
	Run: run,
}

// blockingScopes are the package-path suffixes where check 3 applies:
// the packages that own the project's concurrent surface.
var blockingScopes = []string{"internal/server", "internal/parallel", "internal/stream"}

func run(pass *analysis.Pass) error {
	checkCopies(pass)
	inScope := false
	for _, s := range blockingScopes {
		if analysis.PathHasSuffix(pass.PkgPath, s) {
			inScope = true
			break
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkLockPaths(pass, body, inScope)
			}
			return true
		})
	}
	return nil
}

// ---- check 1: copy-by-value ----

func checkCopies(pass *analysis.Pass) {
	analysis.Preorder(pass.Files, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Recv != nil {
				checkFieldList(pass, n.Recv, "receiver")
			}
			checkFieldList(pass, n.Type.Params, "parameter")
		case *ast.FuncLit:
			checkFieldList(pass, n.Type.Params, "parameter")
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				if isLockCopySource(pass, rhs) {
					pass.Reportf(rhs.Pos(), "assignment copies %s by value: a copy shares no lock state — use a pointer", lockTypeName(pass.TypesInfo.TypeOf(rhs)))
				}
			}
		case *ast.CallExpr:
			for _, arg := range n.Args {
				if isLockCopySource(pass, arg) {
					pass.Reportf(arg.Pos(), "call passes %s by value: the callee locks a private copy — pass a pointer", lockTypeName(pass.TypesInfo.TypeOf(arg)))
				}
			}
		case *ast.RangeStmt:
			if n.Value != nil {
				if t := pass.TypesInfo.TypeOf(n.Value); t != nil && containsLock(t) {
					pass.Reportf(n.Value.Pos(), "range value copies %s by value per iteration: range over indices or pointers instead", lockTypeName(t))
				}
			}
		}
	})
}

func checkFieldList(pass *analysis.Pass, fl *ast.FieldList, kind string) {
	if fl == nil {
		return
	}
	for _, f := range fl.List {
		t := pass.TypesInfo.TypeOf(f.Type)
		if t == nil || !containsLock(t) {
			continue
		}
		pass.Reportf(f.Type.Pos(), "%s takes %s by value: every call copies the lock — use a pointer", kind, lockTypeName(t))
	}
}

// isLockCopySource reports whether expr is an existing lvalue of a
// lock-containing value type — the copy shapes that duplicate a
// possibly-used lock. Fresh values (composite literals, calls) and
// pointers are fine.
func isLockCopySource(pass *analysis.Pass, expr ast.Expr) bool {
	switch ast.Unparen(expr).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
	default:
		return false
	}
	t := pass.TypesInfo.TypeOf(expr)
	return t != nil && containsLock(t)
}

// containsLock reports whether t holds a sync.Mutex or sync.RWMutex by
// value, directly or through nested structs and arrays.
func containsLock(t types.Type) bool {
	if t == nil {
		return false
	}
	if isLockType(t) {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLock(u.Field(i).Type()) {
				return true
			}
		}
	case *types.Array:
		return containsLock(u.Elem())
	}
	return false
}

func isLockType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// lockTypeName renders the offending type for the message, preferring
// the concrete sync type when the copy IS the lock.
func lockTypeName(t types.Type) string {
	if t == nil {
		return "a sync.Mutex"
	}
	if isLockType(t) {
		return t.String()
	}
	return t.String() + " (contains a sync.Mutex)"
}

// ---- checks 2 and 3: lock/unlock paths over the CFG ----

// lockCall describes one x.Lock()/x.RLock() statement.
type lockCall struct {
	stmt ast.Node // the ExprStmt in the CFG
	recv string   // the receiver spelling ("s.mu"), the pairing key
	read bool     // RLock (pairs with RUnlock) vs Lock (pairs with Unlock)
}

func checkLockPaths(pass *analysis.Pass, body *ast.BlockStmt, blockingScope bool) {
	var locks []lockCall
	selectComms := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // nested functions are their own scope
		case *ast.SelectStmt:
			for _, cs := range n.Body.List {
				if cc, ok := cs.(*ast.CommClause); ok && cc.Comm != nil {
					selectComms[cc.Comm] = true
				}
			}
		case *ast.ExprStmt:
			if recv, name, ok := mutexMethod(pass, n.X); ok && (name == "Lock" || name == "RLock") {
				locks = append(locks, lockCall{stmt: n, recv: recv, read: name == "RLock"})
			}
		}
		return true
	})
	if len(locks) == 0 {
		return
	}
	g := pass.CFG(body)
	for _, lc := range locks {
		src := g.BlockOf(lc.stmt)
		if src == nil {
			continue
		}
		unlock := "Unlock"
		if lc.read {
			unlock = "RUnlock"
		}
		kill := func(n ast.Node) bool { return isUnlockOf(pass, n, lc.recv, unlock) }
		if g.ExistsPath(src, g.Exit, lc.stmt, kill) {
			lock := "Lock"
			if lc.read {
				lock = "RLock"
			}
			pass.Reportf(lc.stmt.Pos(), "%s.%s() has no matching %s() on some path out of the function: unlock on every path or `defer %s.%s()`",
				lc.recv, lock, unlock, lc.recv, unlock)
		}
		if blockingScope {
			// Blocking node reachable strictly under the lock: a defer of
			// the unlock does not end the held region, so only a direct
			// unlock call kills the walk.
			directKill := func(n ast.Node) bool {
				if _, ok := n.(*ast.DeferStmt); ok {
					return false
				}
				return isUnlockOf(pass, n, lc.recv, unlock)
			}
			if n, what := firstBlockingUnder(g, src, lc.stmt, directKill, selectComms, pass); n != nil {
				pass.Reportf(n.Pos(), "%s is blocked on while %s is locked: %s under a lock stalls every contender — release the lock first",
					what, lc.recv, what)
			}
		}
	}
}

// mutexMethod matches expr against a sync.Mutex/RWMutex method call
// and returns the receiver spelling and method name.
func mutexMethod(pass *analysis.Pass, expr ast.Expr) (recv, name string, ok bool) {
	call, isCall := ast.Unparen(expr).(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn, isFn := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock":
		return types.ExprString(sel.X), fn.Name(), true
	}
	return "", "", false
}

// isUnlockOf reports whether node n unlocks recv with the given unlock
// method, either directly or via defer.
func isUnlockOf(pass *analysis.Pass, n ast.Node, recv, unlock string) bool {
	var call ast.Expr
	switch n := n.(type) {
	case *ast.ExprStmt:
		call = n.X
	case *ast.DeferStmt:
		call = n.Call
	default:
		return false
	}
	r, name, ok := mutexMethod(pass, call)
	return ok && r == recv && name == unlock
}

// firstBlockingUnder walks the CFG from the lock statement and returns
// the first node that blocks while the lock is still held, with a
// human name for it.
func firstBlockingUnder(g *cfg.Graph, src *cfg.Block, lock ast.Node, kill func(ast.Node) bool, selectComms map[ast.Node]bool, pass *analysis.Pass) (ast.Node, string) {
	scan := func(nodes []ast.Node) (ast.Node, string, bool) {
		for _, n := range nodes {
			if kill(n) {
				return nil, "", true // lock released; stop this route
			}
			if b, what := blockingNode(pass, n, selectComms); b != nil {
				return b, what, true
			}
		}
		return nil, "", false
	}

	// Tail of the lock's own block.
	start := 0
	for i, n := range src.Nodes {
		if n == lock {
			start = i + 1
			break
		}
	}
	if n, what, stop := scan(src.Nodes[start:]); n != nil || stop {
		return n, what
	}

	seen := make([]bool, len(g.Blocks))
	stack := append([]*cfg.Block(nil), src.Succs...)
	for _, b := range src.Succs {
		seen[b.Index] = true
	}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n, what, stop := scan(b.Nodes)
		if n != nil {
			return n, what
		}
		if stop {
			continue
		}
		for _, s := range b.Succs {
			if !seen[s.Index] {
				seen[s.Index] = true
				stack = append(stack, s)
			}
		}
	}
	return nil, ""
}

// blockingNode classifies CFG nodes that park the goroutine: channel
// receives and sends (outside select clauses), WaitGroup/Cond Wait,
// and time.Sleep.
func blockingNode(pass *analysis.Pass, n ast.Node, selectComms map[ast.Node]bool) (ast.Node, string) {
	if selectComms[n] {
		return nil, ""
	}
	switch n := n.(type) {
	case *ast.SendStmt:
		return n, "a channel send"
	case *ast.ExprStmt:
		if b, what := blockingExpr(pass, n.X); b != nil {
			return b, what
		}
	case *ast.AssignStmt:
		for _, rhs := range n.Rhs {
			if b, what := blockingExpr(pass, rhs); b != nil {
				return b, what
			}
		}
	case ast.Expr:
		if b, what := blockingExpr(pass, n); b != nil {
			return b, what
		}
	}
	return nil, ""
}

func blockingExpr(pass *analysis.Pass, expr ast.Expr) (ast.Node, string) {
	var found ast.Node
	var what string
	ast.Inspect(expr, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				found, what = n, "a channel receive"
				return false
			}
		case *ast.CallExpr:
			if obj := analysis.Callee(pass.TypesInfo, n); obj != nil && obj.Pkg() != nil {
				switch {
				case obj.Pkg().Path() == "sync" && obj.Name() == "Wait":
					found, what = n, "a sync Wait"
					return false
				case obj.Pkg().Path() == "time" && obj.Name() == "Sleep":
					found, what = n, "a time.Sleep"
					return false
				}
			}
		}
		return true
	})
	return found, what
}
