// Package nakedgo forbids raw `go` statements in library code.
//
// The repo's concurrency guarantees — deterministic chunked fan-out,
// context cancellation, panic containment, and the bit-identical batch
// contract — live in exactly two places: internal/parallel (the worker
// pool every batch API runs on) and internal/server (whose Batcher
// coalesces requests onto that pool). A goroutine spawned anywhere
// else escapes those guarantees: it outlives its caller's context,
// its panics crash the process, and any float reduction it feeds
// becomes schedule-dependent. Those substrate packages are exempt (as
// is internal/obs, whose runtime sampler owns one self-contained
// ticker goroutine); main packages are entry points and manage their
// own lifecycles.
package nakedgo

import (
	"go/ast"

	"udm/internal/analysis"
)

// substratePkgs are the package-path suffixes sanctioned to spawn
// goroutines directly. internal/obs joined the list for its runtime
// sampler (StartSampler): a single self-owned ticker goroutine that
// touches only atomic gauges and dies on its stop function.
var substratePkgs = []string{
	"internal/parallel",
	"internal/server",
	"internal/obs",
}

var Analyzer = &analysis.Analyzer{
	Name: "nakedgo",
	Doc: "forbid raw go statements in library packages: concurrency must flow through internal/parallel " +
		"or internal/server's Batcher so cancellation, panics, and determinism stay centralized",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if pass.IsMainPkg() {
		return nil
	}
	for _, suffix := range substratePkgs {
		if analysis.PathHasSuffix(pass.PkgPath, suffix) {
			return nil
		}
	}
	analysis.Preorder(pass.Files, func(n ast.Node) {
		if g, ok := n.(*ast.GoStmt); ok {
			pass.Reportf(g.Pos(), "raw go statement in library code: run the work through internal/parallel (or internal/server's Batcher)")
		}
	})
	return nil
}
