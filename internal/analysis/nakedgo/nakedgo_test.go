package nakedgo_test

import (
	"testing"

	"udm/internal/analysis/analysistest"
	"udm/internal/analysis/nakedgo"
)

func TestNakedgo(t *testing.T) {
	analysistest.Run(t, "../testdata/fixture", nakedgo.Analyzer,
		"udmfixture/nakedgo", "udmfixture/internal/parallel", "udmfixture/cmd/ctxmain")
}

// TestSuppressions pins the //lint:allow semantics end to end: the
// fixture has suppressed and unsuppressed violations side by side.
func TestSuppressions(t *testing.T) {
	analysistest.Run(t, "../testdata/fixture", nakedgo.Analyzer, "udmfixture/suppress")
}
