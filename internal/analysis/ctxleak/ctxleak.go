// Package ctxleak proves, path by path, that every cancel function
// minted by context.WithCancel / WithTimeout / WithDeadline (and their
// ...Cause variants) is released on every way out of the function that
// created it.
//
// A cancel func that is never called leaks the context's done channel
// and timer until the parent context ends — in the serving layer that
// is a per-request leak that survives the request. go vet's lostcancel
// catches the "never mentioned again" case; this analyzer goes further
// with the CFG layer: a cancel that IS called, but only on the happy
// path, is exactly the leak that code review misses:
//
//	ctx, cancel := context.WithTimeout(ctx, d)
//	if err := warm(ctx); err != nil {
//		return err // leak: cancel not called on this path
//	}
//	cancel()
//
// The analyzer runs the ExistsPath query over the function's CFG: a
// diagnostic is reported when some path from the WithCancel site to
// the function exit encounters neither a call to the cancel variable
// nor a defer of it. A cancel that escapes the function's direct
// control — captured by a closure, passed as an argument, stored, or
// returned — is assumed managed by the receiver, because its call
// sites are beyond intraprocedural reach; the assignment shapes the
// analyzer cannot track (multi-assign, struct fields) are likewise
// skipped rather than guessed at.
package ctxleak

import (
	"go/ast"
	"go/types"

	"udm/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "ctxleak",
	Doc: "require the cancel func of context.WithCancel/WithTimeout/WithDeadline to be called or " +
		"deferred on every path out of the creating function (CFG-backed)",
	Run: run,
}

// cancelMakers are the context constructors whose second result is a
// CancelFunc (or CancelCauseFunc) the caller must release.
var cancelMakers = map[string]bool{
	"WithCancel":        true,
	"WithCancelCause":   true,
	"WithTimeout":       true,
	"WithTimeoutCause":  true,
	"WithDeadline":      true,
	"WithDeadlineCause": true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkBody(pass, body)
			}
			return true
		})
	}
	return nil
}

// checkBody inspects one function body's own statements (not nested
// function literals — those are visited as functions in their own
// right, and a cancel crossing into one is an escape).
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	ownStmts(body, func(asg *ast.AssignStmt) {
		if len(asg.Rhs) != 1 || len(asg.Lhs) != 2 {
			return
		}
		call, ok := ast.Unparen(asg.Rhs[0]).(*ast.CallExpr)
		if !ok || !isCancelMaker(pass.TypesInfo, call) {
			return
		}
		id, ok := asg.Lhs[1].(*ast.Ident)
		if !ok {
			return
		}
		if id.Name == "_" {
			pass.Reportf(asg.Pos(), "cancel func of %s is discarded: the context leaks until its parent ends", calleeName(call))
			return
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = pass.TypesInfo.Uses[id] // plain = assignment to an existing var
		}
		if obj == nil {
			return
		}
		if escapes(pass, body, asg, obj) {
			return // managed elsewhere; beyond intraprocedural reach
		}
		g := pass.CFG(body)
		src := g.BlockOf(asg)
		if src == nil {
			return
		}
		kill := func(n ast.Node) bool { return releasesCancel(pass.TypesInfo, n, obj) }
		if g.ExistsPath(src, g.Exit, asg, kill) {
			pass.Reportf(asg.Pos(), "cancel func %s from %s is not called on every path out of the function: call it or `defer %s()` right after this line", id.Name, calleeName(call), id.Name)
		}
	})
}

// ownStmts calls f for every assignment in body that belongs to this
// function, skipping statements inside nested function literals.
func ownStmts(body *ast.BlockStmt, f func(*ast.AssignStmt)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			f(n)
		}
		return true
	})
}

// escapes reports whether the cancel variable leaves the function's
// direct control: used inside a nested function literal, passed as a
// call argument, returned, assigned onward, or taken address of. Only
// direct calls (cancel()) and defers (defer cancel()) are "releases";
// everything else transfers responsibility.
func escapes(pass *analysis.Pass, body *ast.BlockStmt, def *ast.AssignStmt, obj types.Object) bool {
	escaped := false
	var inspect func(n ast.Node, inFuncLit bool) bool
	inspect = func(n ast.Node, inFuncLit bool) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			ast.Inspect(fl.Body, func(m ast.Node) bool { return inspect(m, true) })
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || (pass.TypesInfo.Uses[id] != obj) {
			return true
		}
		if inFuncLit {
			escaped = true // captured by a closure
			return true
		}
		// A use is a release only when it is the callee of a direct
		// call expression; that call may itself sit under a defer or go
		// statement, which is fine. Any other use escapes.
		if call, ok := pass.ParentOf(id).(*ast.CallExpr); ok && call.Fun == id {
			return true
		}
		if asg, ok := pass.ParentOf(id).(*ast.AssignStmt); ok && asg == def {
			return true // the defining assignment itself
		}
		escaped = true
		return true
	}
	ast.Inspect(body, func(n ast.Node) bool { return inspect(n, false) })
	return escaped
}

// releasesCancel reports whether the CFG node calls or defers the
// cancel variable.
func releasesCancel(info *types.Info, n ast.Node, obj types.Object) bool {
	call := directCall(n)
	if call == nil {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && info.Uses[id] == obj
}

// directCall unwraps the call expression of an expression statement or
// defer statement, the two node shapes that release a cancel func.
func directCall(n ast.Node) *ast.CallExpr {
	switch n := n.(type) {
	case *ast.ExprStmt:
		call, _ := ast.Unparen(n.X).(*ast.CallExpr)
		return call
	case *ast.DeferStmt:
		return n.Call
	}
	return nil
}

func isCancelMaker(info *types.Info, call *ast.CallExpr) bool {
	obj := analysis.Callee(info, call)
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && cancelMakers[obj.Name()]
}

func calleeName(call *ast.CallExpr) string {
	obj := ast.Unparen(call.Fun)
	if sel, ok := obj.(*ast.SelectorExpr); ok {
		return "context." + sel.Sel.Name
	}
	if id, ok := obj.(*ast.Ident); ok {
		return "context." + id.Name
	}
	return "context.WithCancel"
}
