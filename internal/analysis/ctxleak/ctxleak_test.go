package ctxleak_test

import (
	"testing"

	"udm/internal/analysis/analysistest"
	"udm/internal/analysis/ctxleak"
)

func TestCtxleak(t *testing.T) {
	analysistest.Run(t, "../testdata/fixture", ctxleak.Analyzer, "udmfixture/ctxleak")
}
