// Package analysis is a small, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis model: an Analyzer inspects one
// type-checked package at a time through a Pass and reports
// Diagnostics. The build environment for this module is hermetic (no
// module proxy, no vendored third-party code), so rather than depend on
// x/tools the package re-creates the minimal surface the project's
// analyzers need on top of go/ast and go/types alone. The API shape
// deliberately mirrors x/tools so the analyzers could be ported to a
// real multichecker by swapping imports.
//
// The project-specific analyzers live in subpackages (ctxflow,
// errsentinel, detfloat, nakedgo, rngsource); the loader that produces
// type-checked packages lives in the load subpackage; cmd/udmlint is
// the multichecker binary.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"udm/internal/analysis/cfg"
)

// An Analyzer describes one invariant check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow suppression directives. It must be a valid
	// identifier.
	Name string

	// Doc is a one-paragraph description of the invariant the analyzer
	// guards, shown by `udmlint -list`.
	Doc string

	// Run applies the analyzer to one package. It reports findings via
	// pass.Reportf and returns a non-nil error only for internal
	// failures (a failed analysis run, not a finding).
	Run func(*Pass) error
}

// A Package is one type-checked package as produced by the load
// subpackage: syntax, type information, and identity.
type Package struct {
	// PkgPath is the package's import path (module-qualified).
	PkgPath string

	// Dir is the directory holding the package's sources.
	Dir string

	// Fset maps token.Pos values in Syntax to file positions. All
	// packages from one load share one FileSet.
	Fset *token.FileSet

	// Syntax holds the parsed non-test Go files of the package.
	Syntax []*ast.File

	// Types is the type-checked package object.
	Types *types.Package

	// TypesInfo holds the type-checker's facts about Syntax.
	TypesInfo *types.Info
}

// A Pass connects one Analyzer run to one Package.
type Pass struct {
	Analyzer  *Analyzer
	PkgPath   string
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)

	// parents is built lazily by ParentOf.
	parents map[ast.Node]ast.Node

	// cfgs caches control-flow graphs per function body, built lazily
	// by CFG and shared by every analyzer of the pass's package.
	cfgs map[*ast.BlockStmt]*cfg.Graph
}

// IsMainPkg reports whether the package under analysis is a main
// package (a binary entry point rather than library code).
func (p *Pass) IsMainPkg() bool { return p.Pkg != nil && p.Pkg.Name() == "main" }

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// Report records a fully-formed diagnostic — the entry point for
// analyzers that attach suggested fixes. The Analyzer field is stamped
// by the pass.
func (p *Pass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer.Name
	p.report(d)
}

// CFG returns the control-flow graph of the given function body, built
// on first use and cached for the lifetime of the pass (so every
// analyzer of one package shares one graph per function).
func (p *Pass) CFG(body *ast.BlockStmt) *cfg.Graph {
	if g, ok := p.cfgs[body]; ok {
		return g
	}
	if p.cfgs == nil {
		p.cfgs = map[*ast.BlockStmt]*cfg.Graph{}
	}
	g := cfg.New(body)
	p.cfgs[body] = g
	return g
}

// ParentOf returns the syntactic parent of n within the package's
// files, or nil for roots. The parent map is built on first use and
// covers every node in every file of the pass.
func (p *Pass) ParentOf(n ast.Node) ast.Node {
	if p.parents == nil {
		p.parents = Parents(p.Files)
	}
	return p.parents[n]
}

// A TextEdit replaces the source range [Pos, End) with NewText. Edits
// within one SuggestedFix must not overlap.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText string
}

// A SuggestedFix is one self-contained remediation of a diagnostic:
// applying its edits (and gofmt'ing the result) makes the diagnostic
// go away. Fixes are textual and mechanical by design — an analyzer
// only attaches one when the rewrite is behavior-preserving.
type SuggestedFix struct {
	Message string
	Edits   []TextEdit
}

// A Diagnostic is one finding of one analyzer.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
	Fixes    []SuggestedFix
}

// An Edit is a TextEdit resolved to a file and byte offsets — the
// serializable form the driver applies under -fix and the lint cache
// stores.
type Edit struct {
	Filename string
	Offset   int // byte offset of the start of the replaced range
	End      int // byte offset one past the end of the replaced range
	NewText  string
}

// A Fix is a SuggestedFix resolved to concrete file offsets.
type Fix struct {
	Message string
	Edits   []Edit
}

// A Finding is a Diagnostic resolved to a concrete file position, the
// unit the driver prints and tests assert on. A Finding covered by a
// //lint:allow directive is carried with Suppressed set rather than
// dropped, so the -json mode can surface the audit trail; every other
// consumer filters on the flag.
type Finding struct {
	Pos        token.Position
	Analyzer   string
	Message    string
	Suppressed bool  `json:",omitempty"`
	Fixes      []Fix `json:",omitempty"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// sameSite reports whether two findings are duplicates (position,
// analyzer, and message all equal); fixes do not participate.
func sameSite(a, b Finding) bool {
	return a.Pos == b.Pos && a.Analyzer == b.Analyzer && a.Message == b.Message && a.Suppressed == b.Suppressed
}

// RunPackage applies every analyzer to one package and returns its
// findings unsorted, with suppressed findings flagged rather than
// dropped. It is the unit of work the incremental lint cache keys on.
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Finding, error) {
	sup, findings := suppressions(pkg.Fset, pkg.Syntax)
	var diags []Diagnostic
	pass := &Pass{
		PkgPath:   pkg.PkgPath,
		Fset:      pkg.Fset,
		Files:     pkg.Syntax,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
		report:    func(d Diagnostic) { diags = append(diags, d) },
	}
	for _, a := range analyzers {
		pass.Analyzer = a
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.PkgPath, err)
		}
	}
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		f := Finding{
			Pos:        pos,
			Analyzer:   d.Analyzer,
			Message:    d.Message,
			Suppressed: sup.allows(d.Analyzer, pos),
		}
		for _, fix := range d.Fixes {
			rf := Fix{Message: fix.Message}
			for _, e := range fix.Edits {
				p, q := pkg.Fset.Position(e.Pos), pkg.Fset.Position(e.End)
				rf.Edits = append(rf.Edits, Edit{Filename: p.Filename, Offset: p.Offset, End: q.Offset, NewText: e.NewText})
			}
			f.Fixes = append(f.Fixes, rf)
		}
		findings = append(findings, f)
	}
	return findings, nil
}

// Run applies every analyzer to every package, flags the diagnostics
// covered by //lint:allow suppressions (see suppress.go), and returns
// the findings sorted by file, line, column, and analyzer name.
// Malformed suppression directives are themselves reported as findings
// of the pseudo-analyzer "lint".
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		fs, err := RunPackage(pkg, analyzers)
		if err != nil {
			return nil, err
		}
		findings = append(findings, fs...)
	}
	return Sort(findings), nil
}

// Sort orders findings by file, line, column, analyzer, and message,
// and drops exact duplicates: nested expressions can satisfy two
// trigger patterns of one rule (e.g. time.Now inside both rand.New and
// rand.NewSource) and one finding per site is enough.
func Sort(findings []Finding) []Finding {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	deduped := findings[:0]
	for i, f := range findings {
		if i > 0 && sameSite(f, findings[i-1]) {
			continue
		}
		deduped = append(deduped, f)
	}
	return deduped
}

// Preorder calls f for every node in every file in depth-first
// preorder.
func Preorder(files []*ast.File, f func(ast.Node)) {
	for _, file := range files {
		ast.Inspect(file, func(n ast.Node) bool {
			if n != nil {
				f(n)
			}
			return true
		})
	}
}

// Parents builds a child→parent map over every node in files.
func Parents(files []*ast.File) map[ast.Node]ast.Node {
	m := make(map[ast.Node]ast.Node)
	for _, file := range files {
		var stack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if len(stack) > 0 {
				m[n] = stack[len(stack)-1]
			}
			stack = append(stack, n)
			return true
		})
	}
	return m
}

// PathHasSuffix reports whether the import path is path-wise equal to
// or ends with the given suffix ("internal/parallel" matches both
// "internal/parallel" and "udm/internal/parallel" but not
// "notinternal/parallel"). Analyzers scope their rules by suffix so the
// testdata fixture module can stand in for the real module's packages.
func PathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// Callee resolves the object a call expression invokes, or nil if the
// callee is not a simple identifier or selector (e.g. a call of a call).
func Callee(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// IsPkgFunc reports whether the call invokes the function name from the
// package whose import path has the given suffix (exact path for
// stdlib, suffix for module packages; see PathHasSuffix).
func IsPkgFunc(info *types.Info, call *ast.CallExpr, pathSuffix, name string) bool {
	obj := Callee(info, call)
	return obj != nil && obj.Name() == name && obj.Pkg() != nil && PathHasSuffix(obj.Pkg().Path(), pathSuffix)
}
