// Package analysistest runs an analyzer over fixture packages and
// checks its diagnostics against expectations written in the fixture
// sources, mirroring golang.org/x/tools/go/analysis/analysistest on
// the standard library.
//
// An expectation is a comment of the form
//
//	code() // want "regexp"
//	code() // want "first" "second"
//
// where each quoted (or backquoted) regular expression must match the
// message of a distinct diagnostic reported on that line, and every
// diagnostic on a line must be matched by an expectation. //lint:allow
// suppressions are honored exactly as the udmlint driver honors them,
// so fixtures can also pin the suppression behavior.
package analysistest

import (
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"udm/internal/analysis"
	"udm/internal/analysis/load"
)

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// Run loads the packages matched by patterns in the module rooted at
// dir, applies the analyzer, and reports any mismatch between its
// diagnostics and the // want expectations in the loaded sources.
func Run(t *testing.T, dir string, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	pkgs, err := load.Packages(dir, patterns...)
	if err != nil {
		t.Fatalf("loading fixture packages: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no packages matched %v under %s", patterns, dir)
	}
	findings, err := analysis.Run(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for _, pkg := range pkgs {
		for _, file := range pkg.Syntax {
			name := pkg.Fset.Position(file.Pos()).Filename
			src, err := os.ReadFile(name)
			if err != nil {
				t.Fatalf("reading fixture %s: %v", name, err)
			}
			for i, line := range strings.Split(string(src), "\n") {
				m := wantRe.FindStringSubmatch(line)
				if m == nil {
					continue
				}
				patterns, err := parseWant(m[1])
				if err != nil {
					t.Fatalf("%s:%d: %v", name, i+1, err)
				}
				wants[key{name, i + 1}] = append(wants[key{name, i + 1}], patterns...)
			}
		}
	}

	for _, f := range findings {
		if f.Suppressed {
			// A suppressed diagnostic is invisible to the driver; the
			// fixtures pin that invisibility by not writing a want for it.
			continue
		}
		k := key{f.Pos.Filename, f.Pos.Line}
		matched := -1
		for i, re := range wants[k] {
			if re.MatchString(f.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("%s: unexpected diagnostic: [%s] %s", f.Pos, f.Analyzer, f.Message)
			continue
		}
		wants[k] = append(wants[k][:matched], wants[k][matched+1:]...)
	}
	for k, res := range wants {
		for _, re := range res {
			t.Errorf("%s:%d: no diagnostic matching %q", k.file, k.line, re)
		}
	}
}

// parseWant splits the payload of a // want comment into compiled
// regular expressions. Patterns are Go-quoted strings or backquoted
// raw strings, separated by spaces.
func parseWant(s string) ([]*regexp.Regexp, error) {
	var out []*regexp.Regexp
	s = strings.TrimSpace(s)
	for s != "" {
		var raw string
		switch s[0] {
		case '"':
			end := -1
			for i := 1; i < len(s); i++ {
				if s[i] == '"' && s[i-1] != '\\' {
					end = i
					break
				}
			}
			if end < 0 {
				return nil, fmt.Errorf("unterminated want pattern %q", s)
			}
			unq, err := strconv.Unquote(s[:end+1])
			if err != nil {
				return nil, fmt.Errorf("bad want pattern %q: %v", s[:end+1], err)
			}
			raw, s = unq, s[end+1:]
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated want pattern %q", s)
			}
			raw, s = s[1:end+1], s[end+2:]
		default:
			return nil, fmt.Errorf("want pattern must be quoted or backquoted, got %q", s)
		}
		re, err := regexp.Compile(raw)
		if err != nil {
			return nil, fmt.Errorf("bad want regexp %q: %v", raw, err)
		}
		out = append(out, re)
		s = strings.TrimSpace(s)
	}
	return out, nil
}
