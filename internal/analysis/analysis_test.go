package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseOne(t *testing.T, src string) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fset, f
}

func TestSuppressionsMalformed(t *testing.T) {
	fset, f := parseOne(t, `package x

//lint:allow
func a() {}

//lint:allow nakedgo
func b() {}

//lint:allow nakedgo has a reason
func c() {}
`)
	set, bad := suppressions(fset, []*ast.File{f})
	if len(bad) != 2 {
		t.Fatalf("got %d malformed-directive findings, want 2: %v", len(bad), bad)
	}
	for _, b := range bad {
		if b.Analyzer != "lint" || !strings.Contains(b.Message, "malformed") {
			t.Errorf("unexpected malformed finding: %+v", b)
		}
	}
	// Only the well-formed directive suppresses, and — standing alone —
	// it covers the following line.
	if !set.allows("nakedgo", token.Position{Filename: "x.go", Line: 10}) {
		t.Error("well-formed directive does not cover the next line")
	}
	if set.allows("nakedgo", token.Position{Filename: "x.go", Line: 4}) {
		t.Error("reasonless directive suppressed a finding")
	}
}

func TestSuppressionsTrailingScope(t *testing.T) {
	fset, f := parseOne(t, `package x

func a() {} //lint:allow nakedgo trailing covers only this line
func b() {}
`)
	set, bad := suppressions(fset, []*ast.File{f})
	if len(bad) != 0 {
		t.Fatalf("unexpected malformed findings: %v", bad)
	}
	if !set.allows("nakedgo", token.Position{Filename: "x.go", Line: 3}) {
		t.Error("trailing directive does not cover its own line")
	}
	if set.allows("nakedgo", token.Position{Filename: "x.go", Line: 4}) {
		t.Error("trailing directive leaked onto the next line")
	}
}

func TestSuppressionsMultilineStatement(t *testing.T) {
	fset, f := parseOne(t, `package x

func a(p int) int {
	//lint:allow fake wrapped statement covered in full
	v := p +
		p +
		p
	return v
}

func b(p int) {
	//lint:allow fake control statements never widen
	if p > 0 {
		_ = p
	}
}
`)
	set, bad := suppressions(fset, []*ast.File{f})
	if len(bad) != 0 {
		t.Fatalf("unexpected malformed findings: %v", bad)
	}
	// The directive above the wrapped assignment covers every line of
	// the statement (5-7), but not the statement after it.
	for line := 5; line <= 7; line++ {
		if !set.allows("fake", token.Position{Filename: "x.go", Line: line}) {
			t.Errorf("directive does not cover line %d of the multi-line statement", line)
		}
	}
	if set.allows("fake", token.Position{Filename: "x.go", Line: 8}) {
		t.Error("directive leaked past the end of the statement")
	}
	// A directive above an if covers the if line only: control
	// statements are excluded from widening so one directive can never
	// blanket a body.
	if !set.allows("fake", token.Position{Filename: "x.go", Line: 13}) {
		t.Error("directive does not cover the if line")
	}
	if set.allows("fake", token.Position{Filename: "x.go", Line: 14}) {
		t.Error("directive widened into the if body")
	}
}

func TestSuppressionsAll(t *testing.T) {
	fset, f := parseOne(t, `package x

func a() {} //lint:allow all every analyzer silenced here
`)
	set, _ := suppressions(fset, []*ast.File{f})
	pos := token.Position{Filename: "x.go", Line: 3}
	for _, analyzer := range []string{"nakedgo", "ctxflow", "anything"} {
		if !set.allows(analyzer, pos) {
			t.Errorf("blanket directive does not cover %s", analyzer)
		}
	}
}

func TestPathHasSuffix(t *testing.T) {
	cases := []struct {
		path, suffix string
		want         bool
	}{
		{"udm/internal/parallel", "internal/parallel", true},
		{"internal/parallel", "internal/parallel", true},
		{"udmfixture/internal/parallel", "internal/parallel", true},
		{"udm/notinternal/parallel", "internal/parallel", false},
		{"udm/internal/parallelx", "internal/parallel", false},
		{"parallel", "internal/parallel", false},
	}
	for _, c := range cases {
		if got := PathHasSuffix(c.path, c.suffix); got != c.want {
			t.Errorf("PathHasSuffix(%q, %q) = %v, want %v", c.path, c.suffix, got, c.want)
		}
	}
}

func TestParents(t *testing.T) {
	_, f := parseOne(t, `package x

func a() { _ = len("s") }
`)
	parents := Parents([]*ast.File{f})
	var call *ast.CallExpr
	ast.Inspect(f, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok {
			call = c
		}
		return true
	})
	if call == nil {
		t.Fatal("no call expression found")
	}
	if _, ok := parents[call].(*ast.AssignStmt); !ok {
		t.Errorf("parent of call is %T, want *ast.AssignStmt", parents[call])
	}
	if parents[f] != nil {
		t.Errorf("file has non-nil parent %T", parents[f])
	}
}
