// Package atomicmix flags variables that are accessed through
// sync/atomic in one place and with plain loads or stores in another.
//
// An atomic counter is only a counter while EVERY access goes through
// the atomic API: a single plain `c.n++` or `v := c.n` alongside
// atomic.AddInt64(&c.n, 1) is a data race the race detector only
// catches when the interleaving happens to occur under -race. The
// check is package-global and cross-function by construction — the
// plain access and the atomic one almost never sit in the same
// function, which is exactly why review misses the mix.
//
// Composite-literal keys (Counter{n: 0}) are exempt: initialization
// before the value is shared is not an access. The durable fix the
// message points at is the typed atomic.Int64/atomic.Bool API, which
// makes the plain access unrepresentable.
package atomicmix

import (
	"go/ast"
	"go/types"

	"udm/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "atomicmix",
	Doc: "flag variables accessed via sync/atomic in one function and with plain reads/writes in " +
		"another: mixed access is a data race — use the typed atomic.Int64-style API",
	Run: run,
}

func run(pass *analysis.Pass) error {
	// Pass 1: every variable that is the target of a sync/atomic call
	// (atomic.AddInt64(&x, ...)), with one representative site, and the
	// identifiers that belong to those calls (so pass 2 can skip them).
	atomicSite := map[types.Object]ast.Node{}
	inAtomicCall := map[*ast.Ident]bool{}
	analysis.Preorder(pass.Files, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isAtomicCall(pass.TypesInfo, call) {
			return
		}
		for _, arg := range call.Args {
			un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
			if !ok || un.Op.String() != "&" {
				continue
			}
			if obj := addressedVar(pass.TypesInfo, un.X); obj != nil {
				if _, seen := atomicSite[obj]; !seen {
					atomicSite[obj] = call
				}
				markIdents(un.X, inAtomicCall)
			}
		}
	})
	if len(atomicSite) == 0 {
		return nil
	}

	// Pass 2: any other use of those variables is a plain access.
	analysis.Preorder(pass.Files, func(n ast.Node) {
		id, ok := n.(*ast.Ident)
		if !ok || inAtomicCall[id] {
			return
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			return
		}
		site, mixed := atomicSite[obj]
		if !mixed {
			return
		}
		if kv, ok := pass.ParentOf(id).(*ast.KeyValueExpr); ok && kv.Key == id {
			return // composite-literal initialization, not a shared access
		}
		pos := pass.Fset.Position(site.Pos())
		pass.Reportf(id.Pos(), "%s is accessed with sync/atomic at %s:%d but plainly here: mixed access is a data race — use atomic loads/stores everywhere, or the typed atomic.Int64-style API",
			obj.Name(), pos.Filename, pos.Line)
	})
	return nil
}

// isAtomicCall reports whether call resolves to a function in
// sync/atomic (the free functions; the typed API has no raw pointers).
func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	obj := analysis.Callee(info, call)
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// addressedVar resolves &expr's operand to the variable (field,
// package-level, or local) whose address feeds the atomic call.
func addressedVar(info *types.Info, expr ast.Expr) types.Object {
	var id *ast.Ident
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	if v, ok := info.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

// markIdents records every identifier under n as belonging to an
// atomic call's address operand.
func markIdents(n ast.Node, set map[*ast.Ident]bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			set[id] = true
		}
		return true
	})
}
