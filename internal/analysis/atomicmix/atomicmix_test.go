package atomicmix_test

import (
	"testing"

	"udm/internal/analysis/analysistest"
	"udm/internal/analysis/atomicmix"
)

func TestAtomicmix(t *testing.T) {
	analysistest.Run(t, "../testdata/fixture", atomicmix.Analyzer, "udmfixture/atomicmix")
}

// TestMultiLineSuppression runs the analyzer over the suppressml
// fixture, which pins that a //lint:allow directive above a multi-line
// statement covers every line of the statement (the finding sits on
// the statement's last line).
func TestMultiLineSuppression(t *testing.T) {
	analysistest.Run(t, "../testdata/fixture", atomicmix.Analyzer, "udmfixture/suppressml")
}
