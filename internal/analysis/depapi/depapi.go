// Package depapi flags in-tree calls to the deprecated batch-evaluation
// forms that PR 7 collapsed into the canonical options-taking API.
//
// PR 1 and PR 2 grew a four-way batch surface — positional
// DensityBatch(est, X, dims, workers) package functions, per-type method
// twins, and ...Context variants of each. DensityBatchOpts (and its
// DensityQBatchOpts / LeaveOneOutBatchOpts siblings) replaced them; the
// old forms survive as thin `// Deprecated:` wrappers for out-of-tree
// callers, but new in-tree code must not grow back onto them. The Go
// toolchain only surfaces deprecation marks through editors, so this
// analyzer makes the migration mechanical to enforce.
//
// The rule distinguishes the deprecated forms from the one legitimate
// look-alike: the Batcher delegation hook (and the pluggable density
// backends implementing it) spells DensityBatch as a context-first
// method, so a method call whose first parameter is context.Context is
// canonical, not deprecated. Calls inside the package that declares the
// wrappers are exempt — the wrappers delegate among themselves.
package depapi

import (
	"go/ast"
	"go/types"

	"udm/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "depapi",
	Doc: "flag in-tree calls to the deprecated batch-evaluation forms (DensityBatch positional and " +
		"...Context variants): new code must use the BatchOptions-taking canonical API",
	Run: run,
}

// bare names the context-free deprecated forms and their replacements.
// A method spelled with a leading context.Context parameter is the
// Batcher delegation hook, not a deprecated form.
var bare = map[string]string{
	"DensityBatch":     "DensityBatchOpts",
	"DensityQBatch":    "DensityQBatchOpts",
	"LeaveOneOutBatch": "LeaveOneOutBatchOpts",
}

// ctxVariants names the ...Context twins, deprecated in every spelling.
var ctxVariants = map[string]string{
	"DensityBatchContext":     "DensityBatchOpts with BatchOptions.Ctx",
	"DensityQBatchContext":    "DensityQBatchOpts with BatchOptions.Ctx",
	"LeaveOneOutBatchContext": "LeaveOneOutBatchOpts with BatchOptions.Ctx",
}

func run(pass *analysis.Pass) error {
	analysis.Preorder(pass.Files, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		fn, ok := analysis.Callee(pass.TypesInfo, call).(*types.Func)
		if !ok || fn.Pkg() == nil {
			return
		}
		path := fn.Pkg().Path()
		// The deprecated surface lives in the kde engine package and the
		// module-root facade; same-named functions elsewhere are not ours.
		if !analysis.PathHasSuffix(path, "kde") && !analysis.PathHasSuffix(path, "udm") {
			return
		}
		// The declaring package's wrappers delegate among themselves.
		if path == pass.PkgPath {
			return
		}
		name := fn.Name()
		if repl, ok := ctxVariants[name]; ok {
			pass.Reportf(call.Pos(), "deprecated batch form %s: use %s", name, repl)
			return
		}
		repl, ok := bare[name]
		if !ok {
			return
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			return
		}
		// Context-first methods are the canonical Batcher delegation hook.
		if sig.Recv() != nil && firstParamIsContext(sig) {
			return
		}
		pass.Reportf(call.Pos(), "deprecated batch form %s: use %s", name, repl)
	})
	return nil
}

// firstParamIsContext reports whether the signature's first parameter is
// context.Context.
func firstParamIsContext(sig *types.Signature) bool {
	if sig.Params().Len() == 0 {
		return false
	}
	named, ok := sig.Params().At(0).Type().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
