// Package depapi flags in-tree calls to the deprecated batch-evaluation
// forms that PR 7 collapsed into the canonical options-taking API.
//
// PR 1 and PR 2 grew a four-way batch surface — positional
// DensityBatch(est, X, dims, workers) package functions, per-type method
// twins, and ...Context variants of each. DensityBatchOpts (and its
// DensityQBatchOpts / LeaveOneOutBatchOpts siblings) replaced them; the
// old forms survive as thin `// Deprecated:` wrappers for out-of-tree
// callers, but new in-tree code must not grow back onto them. The Go
// toolchain only surfaces deprecation marks through editors, so this
// analyzer makes the migration mechanical to enforce.
//
// The rule distinguishes the deprecated forms from the one legitimate
// look-alike: the Batcher delegation hook (and the pluggable density
// backends implementing it) spells DensityBatch as a context-first
// method, so a method call whose first parameter is context.Context is
// canonical, not deprecated. Calls inside the package that declares the
// wrappers are exempt — the wrappers delegate among themselves.
package depapi

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/types"
	"strconv"
	"strings"

	"udm/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "depapi",
	Doc: "flag in-tree calls to the deprecated batch-evaluation forms (DensityBatch positional and " +
		"...Context variants): new code must use the BatchOptions-taking canonical API",
	Run: run,
}

// bare names the context-free deprecated forms and their replacements.
// A method spelled with a leading context.Context parameter is the
// Batcher delegation hook, not a deprecated form.
var bare = map[string]string{
	"DensityBatch":     "DensityBatchOpts",
	"DensityQBatch":    "DensityQBatchOpts",
	"LeaveOneOutBatch": "LeaveOneOutBatchOpts",
}

// ctxVariants names the ...Context twins, deprecated in every spelling.
var ctxVariants = map[string]string{
	"DensityBatchContext":     "DensityBatchOpts with BatchOptions.Ctx",
	"DensityQBatchContext":    "DensityQBatchOpts with BatchOptions.Ctx",
	"LeaveOneOutBatchContext": "LeaveOneOutBatchOpts with BatchOptions.Ctx",
}

func run(pass *analysis.Pass) error {
	analysis.Preorder(pass.Files, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		fn, ok := analysis.Callee(pass.TypesInfo, call).(*types.Func)
		if !ok || fn.Pkg() == nil {
			return
		}
		path := fn.Pkg().Path()
		// The deprecated surface lives in the kde engine package and the
		// module-root facade; same-named functions elsewhere are not ours.
		if !analysis.PathHasSuffix(path, "kde") && !analysis.PathHasSuffix(path, "udm") {
			return
		}
		// The declaring package's wrappers delegate among themselves.
		if path == pass.PkgPath {
			return
		}
		name := fn.Name()
		sig, sigOK := fn.Type().(*types.Signature)
		if !sigOK {
			return
		}
		if repl, ok := ctxVariants[name]; ok {
			report(pass, call, fn, sig, name, repl)
			return
		}
		repl, ok := bare[name]
		if !ok {
			return
		}
		// Context-first methods are the canonical Batcher delegation hook.
		if sig.Recv() != nil && firstParamIsContext(sig) {
			return
		}
		report(pass, call, fn, sig, name, repl)
	})
	return nil
}

// report emits the diagnostic, attaching a mechanical rewrite to the
// Opts form when one can be constructed for this call shape.
func report(pass *analysis.Pass, call *ast.CallExpr, fn *types.Func, sig *types.Signature, name, repl string) {
	d := analysis.Diagnostic{
		Pos:     call.Pos(),
		Message: fmt.Sprintf("deprecated batch form %s: use %s", name, repl),
	}
	if newText, ok := optsRewrite(pass, call, fn, sig, name); ok {
		d.Fixes = []analysis.SuggestedFix{{
			Message: "rewrite to the BatchOptions-taking form",
			Edits:   []analysis.TextEdit{{Pos: call.Pos(), End: call.End(), NewText: newText}},
		}}
	}
	pass.Report(d)
}

// optsRewrite renders the canonical Opts spelling of a deprecated batch
// call, or reports that no mechanical rewrite exists for its shape.
//
//	kde.DensityBatch(ctx, est, X, dims, w) → kde.DensityBatchOpts(est, X, dims, kde.BatchOptions{Ctx: ctx, Workers: w})
//	udm.DensityBatch(est, X, dims, w)      → udm.DensityBatchOpts(est, X, dims, udm.BatchOptions{Workers: w})
//	k.DensityBatchContext(ctx, X, dims, w) → kde.DensityBatchOpts(k, X, dims, kde.BatchOptions{Ctx: ctx, Workers: w})
//	k.LeaveOneOutBatch(dims, w)            → k.LeaveOneOutBatchOpts(dims, kde.BatchOptions{Workers: w})
func optsRewrite(pass *analysis.Pass, call *ast.CallExpr, fn *types.Func, sig *types.Signature, name string) (string, bool) {
	if call.Ellipsis.IsValid() || len(call.Args) < 2 {
		return "", false
	}
	base := strings.TrimSuffix(name, "Context")

	// Split the argument list into the context (when the deprecated form
	// leads with one), the pass-through middle, and the trailing workers.
	args := call.Args
	var ctxArg ast.Expr
	if firstParamIsContext(sig) {
		ctxArg, args = args[0], args[1:]
	}
	if len(args) == 0 {
		return "", false
	}
	workersArg, mid := args[len(args)-1], args[:len(args)-1]

	// The BatchOptions literal and the Opts entry point live in fn's
	// package; find how this file spells that package.
	qual, ok := packageQualifier(pass, call, fn)
	if !ok {
		return "", false
	}
	var opts strings.Builder
	opts.WriteString(qual + "BatchOptions{")
	if ctxArg != nil {
		opts.WriteString("Ctx: " + render(pass, ctxArg) + ", ")
	}
	opts.WriteString("Workers: " + render(pass, workersArg) + "}")

	var parts []string
	var callee string
	if sig.Recv() == nil {
		// Package function: same spelling, Opts name.
		callee = qual + base + "Opts"
	} else if base == "LeaveOneOutBatch" {
		// The one canonical method form.
		sel, okSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !okSel {
			return "", false
		}
		callee = render(pass, sel.X) + ".LeaveOneOutBatchOpts"
	} else {
		// Method twin: the canonical form is the package function with
		// the receiver as first argument.
		sel, okSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !okSel {
			return "", false
		}
		callee = qual + base + "Opts"
		parts = append(parts, render(pass, sel.X))
	}
	for _, a := range mid {
		parts = append(parts, render(pass, a))
	}
	parts = append(parts, opts.String())
	return callee + "(" + strings.Join(parts, ", ") + ")", true
}

// packageQualifier returns the spelling (including trailing dot, empty
// for a dot-import) under which the call site's file can name fn's
// package. For a package-function call that spelling is the call's own
// selector base; for a method call it is resolved from the file's
// imports, and absence means no fix.
func packageQualifier(pass *analysis.Pass, call *ast.CallExpr, fn *types.Func) (string, bool) {
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil {
		switch f := ast.Unparen(call.Fun).(type) {
		case *ast.SelectorExpr:
			return render(pass, f.X) + ".", true
		case *ast.Ident:
			return "", true // dot-imported
		}
		return "", false
	}
	file := enclosingFile(pass, call)
	if file == nil {
		return "", false
	}
	for _, imp := range file.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil || path != fn.Pkg().Path() {
			continue
		}
		if imp.Name != nil {
			switch imp.Name.Name {
			case ".":
				return "", true
			case "_":
				continue
			default:
				return imp.Name.Name + ".", true
			}
		}
		return fn.Pkg().Name() + ".", true
	}
	return "", false
}

func enclosingFile(pass *analysis.Pass, n ast.Node) *ast.File {
	for _, f := range pass.Files {
		if f.FileStart <= n.Pos() && n.Pos() <= f.FileEnd {
			return f
		}
	}
	return nil
}

// render prints a source expression back to text.
func render(pass *analysis.Pass, n ast.Node) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, pass.Fset, n); err != nil {
		return ""
	}
	return buf.String()
}

// firstParamIsContext reports whether the signature's first parameter is
// context.Context.
func firstParamIsContext(sig *types.Signature) bool {
	if sig.Params().Len() == 0 {
		return false
	}
	named, ok := sig.Params().At(0).Type().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
