package depapi_test

import (
	"testing"

	"udm/internal/analysis/analysistest"
	"udm/internal/analysis/depapi"
)

func TestDepapi(t *testing.T) {
	analysistest.Run(t, "../testdata/fixture", depapi.Analyzer,
		"udmfixture/depapi", "udmfixture/udm")
}
