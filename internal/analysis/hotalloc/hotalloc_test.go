package hotalloc_test

import (
	"testing"

	"udm/internal/analysis/analysistest"
	"udm/internal/analysis/hotalloc"
)

func TestHotalloc(t *testing.T) {
	analysistest.Run(t, "../testdata/fixture", hotalloc.Analyzer,
		"udmfixture/internal/kde")
}
