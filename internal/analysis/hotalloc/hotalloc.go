// Package hotalloc keeps per-element allocations out of the KDE hot
// path.
//
// The batch density engine's performance contract (BENCH_kde.json,
// DESIGN.md §13) rests on steady-state evaluation doing zero
// allocations: scratch comes from a sync.Pool, columns are laid out
// once at construction, and the inner loops run over flat []float64.
// An allocation that sneaks inside a loop in these packages — a make
// per query, an append per kernel — is invisible to unit tests but
// shows up as GC pressure exactly where the profile is hottest.
//
// The rule is syntactic and deliberately blunt: inside any for or
// range body in internal/kde or internal/kernel, `make`, `new`,
// `append`, and composite literals are findings. Constructor-shaped
// functions (New*, new*, Build*, build*, Make*, make*) are exempt —
// building an estimator allocates by design; evaluating one must not.
// Cold loops that legitimately allocate (cross-validation folds, grid
// assembly) carry a //lint:allow hotalloc directive with the reason.
package hotalloc

import (
	"go/ast"
	"go/types"
	"strings"

	"udm/internal/analysis"
)

// hotPkgs are the package-path suffixes whose loops the analyzer
// guards: the density engine and the kernel primitives it evaluates.
var hotPkgs = []string{
	"internal/kde",
	"internal/kernel",
}

// ctorPrefixes mark construction-phase functions, exempt wholesale:
// they run once per estimator, not once per query.
var ctorPrefixes = []string{"New", "new", "Build", "build", "Make", "make"}

var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "forbid per-element allocations (make, new, append, composite literals) inside loops in the KDE " +
		"hot-path packages: steady-state batch evaluation must allocate nothing",
	Run: run,
}

func run(pass *analysis.Pass) error {
	hot := false
	for _, suffix := range hotPkgs {
		if analysis.PathHasSuffix(pass.PkgPath, suffix) {
			hot = true
			break
		}
	}
	if !hot {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if ok && fn.Body != nil && !isCtor(fn.Name.Name) {
				checkFunc(pass, fn.Body)
			}
		}
	}
	return nil
}

func isCtor(name string) bool {
	for _, p := range ctorPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// checkFunc walks one function body and reports allocations nested
// anywhere inside a for/range statement's body (including inside
// function literals the loop creates — a closure allocated per
// iteration is itself a per-element allocation).
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch loop := n.(type) {
		case *ast.ForStmt:
			reportAllocs(pass, loop.Body)
			return false // reportAllocs descends; avoid double reports
		case *ast.RangeStmt:
			reportAllocs(pass, loop.Body)
			return false
		}
		return true
	})
}

func reportAllocs(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if name, ok := builtinName(pass.TypesInfo, n); ok {
				switch name {
				case "make", "new":
					pass.Reportf(n.Pos(), "%s inside a hot-path loop: hoist the allocation out of the loop or draw it from the engine's scratch pool", name)
				case "append":
					pass.Reportf(n.Pos(), "append inside a hot-path loop can reallocate per element: preallocate the slice to its final length outside the loop")
				}
			}
		case *ast.CompositeLit:
			pass.Reportf(n.Pos(), "composite literal inside a hot-path loop allocates per iteration: hoist it or reuse scratch")
			return false // the literal's elements don't need separate reports
		case *ast.FuncLit:
			// A closure created each iteration allocates; its body is
			// inspected as part of this walk, so just keep descending.
		}
		return true
	})
}

// builtinName reports whether call invokes a builtin, returning its
// name. Builtins resolve to types.Builtin objects (or appear in
// Uses/Defs as predeclared), so a user-defined function shadowing
// `make` does not count.
func builtinName(info *types.Info, call *ast.CallExpr) (string, bool) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return "", false
	}
	if _, ok := info.Uses[id].(*types.Builtin); !ok {
		return "", false
	}
	return id.Name, true
}
