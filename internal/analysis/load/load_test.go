package load

import (
	"go/types"
	"testing"
)

// TestPackagesTypeInfo loads two real module packages — one that leans
// on the standard library (internal/server) and one pure-math one
// (internal/num) — and checks that full type information came back.
func TestPackagesTypeInfo(t *testing.T) {
	pkgs, err := Packages("../../..", "./internal/num", "./internal/server")
	if err != nil {
		t.Fatalf("Packages: %v", err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("got %d packages, want 2", len(pkgs))
	}
	byPath := map[string]bool{}
	for _, p := range pkgs {
		byPath[p.PkgPath] = true
		if len(p.Syntax) == 0 {
			t.Errorf("%s: no files parsed", p.PkgPath)
		}
		if p.Types == nil || !p.Types.Complete() {
			t.Errorf("%s: incomplete type information", p.PkgPath)
		}
		if len(p.TypesInfo.Defs) == 0 || len(p.TypesInfo.Uses) == 0 {
			t.Errorf("%s: empty types.Info", p.PkgPath)
		}
	}
	for _, want := range []string{"udm/internal/num", "udm/internal/server"} {
		if !byPath[want] {
			t.Errorf("missing package %s (have %v)", want, byPath)
		}
	}
	// Spot-check that a cross-package reference resolved: internal/num
	// exports Sum with a float64 result.
	for _, p := range pkgs {
		if p.PkgPath != "udm/internal/num" {
			continue
		}
		obj := p.Types.Scope().Lookup("Sum")
		if obj == nil {
			t.Fatal("udm/internal/num: Sum not found in package scope")
		}
		sig, ok := obj.Type().(*types.Signature)
		if !ok || sig.Results().Len() == 0 {
			t.Fatalf("udm/internal/num.Sum: unexpected type %v", obj.Type())
		}
	}
}

// TestPackagesDefaultPattern loads ./... relative to the load package's
// own directory and expects at least this package itself.
func TestPackagesDefaultPattern(t *testing.T) {
	pkgs, err := Packages(".")
	if err != nil {
		t.Fatalf("Packages: %v", err)
	}
	if len(pkgs) != 1 || pkgs[0].PkgPath != "udm/internal/analysis/load" {
		t.Fatalf("unexpected packages: %+v", pkgs)
	}
}

// TestPackagesBadPattern surfaces go list errors instead of silently
// returning nothing.
func TestPackagesBadPattern(t *testing.T) {
	if _, err := Packages("../../..", "./does/not/exist"); err == nil {
		t.Fatal("want error for nonexistent package pattern")
	}
}
