// Package load turns Go package patterns into type-checked
// analysis.Package values without any dependency outside the standard
// library.
//
// It shells out to `go list -e -export -deps -json`, which makes the go
// tool compile export data for every dependency (standard library
// included) into the build cache and report the file paths. The
// packages matched by the patterns themselves are then parsed from
// source and type-checked with go/types, resolving imports through the
// gc importer pointed at that export map. This is the same division of
// labor as golang.org/x/tools/go/packages in LoadAllSyntax mode for the
// root packages and LoadTypes mode for dependencies — rebuilt on the
// standard library because this module builds hermetically, with no
// module proxy access.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"

	"udm/internal/analysis"
)

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *listError
}

type listError struct {
	Pos string
	Err string
}

// Packages loads, parses, and type-checks the packages matched by
// patterns, resolved relative to dir (the module to analyze). Test
// files are not loaded: the project's contracts bind library code, and
// tests are free to use context.Background, fixed seeds, and string
// matching as they please.
func Packages(dir string, patterns ...string) ([]*analysis.Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	// Export data for every package in the dependency closure, keyed by
	// import path, for the gc importer's lookup function.
	exports := make(map[string]string, len(listed))
	var targets []*listPackage
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("load: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		return os.Open(file)
	})

	pkgs := make([]*analysis.Package, 0, len(targets))
	for _, p := range targets {
		files := make([]*ast.File, 0, len(p.GoFiles))
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("load: %w", err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Implicits:  map[ast.Node]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("load: type-checking %s: %w", p.ImportPath, err)
		}
		pkgs = append(pkgs, &analysis.Package{
			PkgPath:   p.ImportPath,
			Dir:       p.Dir,
			Fset:      fset,
			Syntax:    files,
			Types:     tpkg,
			TypesInfo: info,
		})
	}
	return pkgs, nil
}

// goList runs `go list` in dir and decodes its JSON stream.
func goList(dir string, patterns []string) ([]*listPackage, error) {
	args := []string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Name,Dir,Export,GoFiles,Standard,DepOnly,Error",
		"--",
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("load: go list: %w\n%s", err, stderr.String())
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(&stdout)
	for {
		p := new(listPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}
