// Package load turns Go package patterns into type-checked
// analysis.Package values without any dependency outside the standard
// library.
//
// It shells out to `go list -e -export -deps -json`, which makes the go
// tool compile export data for every dependency (standard library
// included) into the build cache and report the file paths. The
// packages matched by the patterns themselves are then parsed from
// source and type-checked with go/types, resolving imports through the
// gc importer pointed at that export map. This is the same division of
// labor as golang.org/x/tools/go/packages in LoadAllSyntax mode for the
// root packages and LoadTypes mode for dependencies — rebuilt on the
// standard library because this module builds hermetically, with no
// module proxy access.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"

	"udm/internal/analysis"
)

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	Deps       []string
	Standard   bool
	DepOnly    bool
	Error      *listError
}

type listError struct {
	Pos string
	Err string
}

// A Module is the listed-but-not-yet-type-checked view of one load: the
// matched targets plus the shared FileSet and export-data importer they
// type-check against. Listing is cheap (one `go list` invocation);
// parsing and type-checking happen per target, on demand, so a caller
// with an external source of truth for a target — the incremental lint
// cache — can skip that target's type-check entirely.
type Module struct {
	// Targets are the packages matched by the patterns, sorted by
	// import path.
	Targets []*Target

	fset *token.FileSet
	imp  types.Importer
}

// A Target is one matched package before type-checking. GoFiles and
// DepExports are the target's complete content identity: the cache keys
// on their bytes, because a diagnostic can change only when the
// package's own sources change or a dependency's exported API does.
type Target struct {
	// ImportPath is the package's module-qualified import path.
	ImportPath string
	// Dir is the directory holding the package's sources.
	Dir string
	// GoFiles are the absolute paths of the non-test Go sources, in
	// build order.
	GoFiles []string
	// DepExports are the export-data files of the package's transitive
	// dependencies, sorted.
	DepExports []string

	mod *Module
}

// List runs `go list` over the patterns, resolved relative to dir (the
// module to analyze), and returns the matched targets without parsing
// or type-checking them. Test files are not listed: the project's
// contracts bind library code, and tests are free to use
// context.Background, fixed seeds, and string matching as they please.
func List(dir string, patterns ...string) (*Module, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	// Export data for every package in the dependency closure, keyed by
	// import path, for the gc importer's lookup function.
	exports := make(map[string]string, len(listed))
	var targets []*listPackage
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("load: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	mod := &Module{fset: fset}
	mod.imp = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		return os.Open(file)
	})
	for _, p := range targets {
		t := &Target{ImportPath: p.ImportPath, Dir: p.Dir, mod: mod}
		for _, name := range p.GoFiles {
			t.GoFiles = append(t.GoFiles, filepath.Join(p.Dir, name))
		}
		for _, d := range p.Deps {
			if f, ok := exports[d]; ok {
				t.DepExports = append(t.DepExports, f)
			}
		}
		sort.Strings(t.DepExports)
		mod.Targets = append(mod.Targets, t)
	}
	return mod, nil
}

// Load parses and type-checks the target.
func (t *Target) Load() (*analysis.Package, error) {
	files := make([]*ast.File, 0, len(t.GoFiles))
	for _, path := range t.GoFiles {
		f, err := parser.ParseFile(t.mod.fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("load: %w", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: t.mod.imp}
	tpkg, err := conf.Check(t.ImportPath, t.mod.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load: type-checking %s: %w", t.ImportPath, err)
	}
	return &analysis.Package{
		PkgPath:   t.ImportPath,
		Dir:       t.Dir,
		Fset:      t.mod.fset,
		Syntax:    files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

// Packages loads, parses, and type-checks the packages matched by
// patterns: List followed by Load of every target.
func Packages(dir string, patterns ...string) ([]*analysis.Package, error) {
	mod, err := List(dir, patterns...)
	if err != nil {
		return nil, err
	}
	pkgs := make([]*analysis.Package, 0, len(mod.Targets))
	for _, t := range mod.Targets {
		pkg, err := t.Load()
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// goList runs `go list` in dir and decodes its JSON stream.
func goList(dir string, patterns []string) ([]*listPackage, error) {
	args := []string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Name,Dir,Export,GoFiles,Deps,Standard,DepOnly,Error",
		"--",
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("load: go list: %w\n%s", err, stderr.String())
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(&stdout)
	for {
		p := new(listPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}
