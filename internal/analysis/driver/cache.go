// The incremental lint cache: per-package findings keyed by a content
// hash, so a warm run skips parsing, type-checking, and analyzing every
// package whose inputs are byte-identical to a previous run.
//
// The key covers everything a diagnostic can depend on:
//
//   - Version (bumped whenever any analyzer's behavior changes) and the
//     names of the analyzers selected for the run, so -only runs and
//     full runs cache independently;
//   - the package's import path and the bytes of each of its Go files
//     (which also covers //lint:allow suppression edits);
//   - the export data of every transitive dependency, hashed by
//     content, so a dependency's API change invalidates its importers
//     but an unrelated rebuild does not.
//
// Values are JSON-encoded []analysis.Finding files under
// <module>/.udmlint-cache/, one per key; findings carry their fixes, so
// -fix works identically from a warm cache.
package driver

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"udm/internal/analysis"
	"udm/internal/analysis/load"
)

// Version participates in every cache key. Bump it when an analyzer's
// behavior changes in a way content hashing cannot see.
const Version = "udmlint-cache-v1"

// cacheDirName is the cache directory, created under the -C module
// directory (and pinned in .gitignore).
const cacheDirName = ".udmlint-cache"

// fileHashes memoizes content hashes within one run: dependency export
// files are shared by many packages and need hashing once, not once per
// importer.
type fileHashes map[string][sha256.Size]byte

func (fh fileHashes) hash(path string) ([sha256.Size]byte, error) {
	if h, ok := fh[path]; ok {
		return h, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return [sha256.Size]byte{}, err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return [sha256.Size]byte{}, err
	}
	var sum [sha256.Size]byte
	copy(sum[:], h.Sum(nil))
	fh[path] = sum
	return sum, nil
}

// cacheKey computes the content hash naming t's cache entry for a run
// with the given analyzers.
func cacheKey(t *load.Target, analyzers []*analysis.Analyzer, fh fileHashes) (string, error) {
	h := sha256.New()
	fmt.Fprintf(h, "%s\n%s\n", Version, t.ImportPath)
	for _, a := range analyzers {
		fmt.Fprintf(h, "analyzer %s\n", a.Name)
	}
	for _, path := range t.GoFiles {
		sum, err := fh.hash(path)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, "file %s %x\n", filepath.Base(path), sum)
	}
	for _, path := range t.DepExports {
		sum, err := fh.hash(path)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, "dep %x\n", sum)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// readCache returns the cached findings for key, if present and intact.
func readCache(dir, key string) ([]analysis.Finding, bool) {
	data, err := os.ReadFile(filepath.Join(dir, key+".json"))
	if err != nil {
		return nil, false
	}
	var entry struct{ Findings []analysis.Finding }
	if err := json.Unmarshal(data, &entry); err != nil {
		return nil, false
	}
	return entry.Findings, true
}

// writeCache stores findings under key, creating the cache directory on
// first use. Failures are deliberately silent: the cache is an
// accelerator, never a correctness dependency.
func writeCache(dir, key string, findings []analysis.Finding) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	data, err := json.Marshal(struct{ Findings []analysis.Finding }{findings})
	if err != nil {
		return
	}
	tmp := filepath.Join(dir, key+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return
	}
	_ = os.Rename(tmp, filepath.Join(dir, key+".json"))
}
