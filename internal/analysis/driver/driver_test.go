package driver

import (
	"bytes"
	"strings"
	"testing"
)

// TestFixtureTreeFails is the negative smoke test: the multichecker
// must exit non-zero on the fixture module, which is built to violate
// every analyzer.
func TestFixtureTreeFails(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := Run(&stdout, &stderr, []string{"-C", "../testdata/fixture", "./..."})
	if code != ExitFindings {
		t.Fatalf("exit code %d on fixture tree, want %d\nstdout:\n%s\nstderr:\n%s",
			code, ExitFindings, stdout.String(), stderr.String())
	}
	out := stdout.String()
	for _, a := range All {
		if !strings.Contains(out, "["+a.Name+"]") {
			t.Errorf("no %s finding on the fixture tree", a.Name)
		}
	}
}

// TestRealTreeClean is the positive smoke test and the gate that keeps
// the repository lint-clean: every analyzer over the whole module, zero
// findings.
func TestRealTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-tree lint skipped in -short mode")
	}
	var stdout, stderr bytes.Buffer
	code := Run(&stdout, &stderr, []string{"-C", "../../..", "./..."})
	if code != ExitClean {
		t.Fatalf("udmlint on the real tree exited %d, want clean\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
}

// TestOnlyFilter restricts the run to one analyzer.
func TestOnlyFilter(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := Run(&stdout, &stderr, []string{"-C", "../testdata/fixture", "-only", "nakedgo", "./..."})
	if code != ExitFindings {
		t.Fatalf("exit code %d, want %d (stderr: %s)", code, ExitFindings, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "[nakedgo]") {
		t.Error("no nakedgo findings under -only nakedgo")
	}
	for _, a := range All {
		if a.Name != "nakedgo" && strings.Contains(out, "["+a.Name+"]") {
			t.Errorf("-only nakedgo leaked %s findings", a.Name)
		}
	}
}

// TestUnknownAnalyzer exercises the registry error path.
func TestUnknownAnalyzer(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := Run(&stdout, &stderr, []string{"-only", "nosuch"}); code != ExitError {
		t.Fatalf("exit code %d for unknown analyzer, want %d", code, ExitError)
	}
	if !strings.Contains(stderr.String(), "unknown analyzer") {
		t.Errorf("missing error message, got: %s", stderr.String())
	}
}

// TestList prints the registry.
func TestList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := Run(&stdout, &stderr, []string{"-list"}); code != ExitClean {
		t.Fatalf("exit code %d for -list, want %d", code, ExitClean)
	}
	for _, a := range All {
		if !strings.Contains(stdout.String(), a.Name) {
			t.Errorf("-list output missing %s", a.Name)
		}
	}
}
