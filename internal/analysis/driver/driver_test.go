package driver

import (
	"bytes"
	"encoding/json"
	"go/format"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"udm/internal/analysis"
)

// TestFixtureTreeFails is the negative smoke test: the multichecker
// must exit non-zero on the fixture module, which is built to violate
// every analyzer.
func TestFixtureTreeFails(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := Run(&stdout, &stderr, []string{"-C", "../testdata/fixture", "./..."})
	if code != ExitFindings {
		t.Fatalf("exit code %d on fixture tree, want %d\nstdout:\n%s\nstderr:\n%s",
			code, ExitFindings, stdout.String(), stderr.String())
	}
	out := stdout.String()
	for _, a := range All {
		if !strings.Contains(out, "["+a.Name+"]") {
			t.Errorf("no %s finding on the fixture tree", a.Name)
		}
	}
}

// TestRealTreeClean is the positive smoke test and the gate that keeps
// the repository lint-clean: every analyzer over the whole module, zero
// findings.
func TestRealTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-tree lint skipped in -short mode")
	}
	var stdout, stderr bytes.Buffer
	code := Run(&stdout, &stderr, []string{"-C", "../../..", "./..."})
	if code != ExitClean {
		t.Fatalf("udmlint on the real tree exited %d, want clean\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
}

// TestOnlyFilter restricts the run to one analyzer.
func TestOnlyFilter(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := Run(&stdout, &stderr, []string{"-C", "../testdata/fixture", "-only", "nakedgo", "./..."})
	if code != ExitFindings {
		t.Fatalf("exit code %d, want %d (stderr: %s)", code, ExitFindings, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "[nakedgo]") {
		t.Error("no nakedgo findings under -only nakedgo")
	}
	for _, a := range All {
		if a.Name != "nakedgo" && strings.Contains(out, "["+a.Name+"]") {
			t.Errorf("-only nakedgo leaked %s findings", a.Name)
		}
	}
}

// TestUnknownAnalyzer exercises the registry error path.
func TestUnknownAnalyzer(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := Run(&stdout, &stderr, []string{"-only", "nosuch"}); code != ExitError {
		t.Fatalf("exit code %d for unknown analyzer, want %d", code, ExitError)
	}
	if !strings.Contains(stderr.String(), "unknown analyzer") {
		t.Errorf("missing error message, got: %s", stderr.String())
	}
}

// TestList prints the registry.
func TestList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := Run(&stdout, &stderr, []string{"-list"}); code != ExitClean {
		t.Fatalf("exit code %d for -list, want %d", code, ExitClean)
	}
	for _, a := range All {
		if !strings.Contains(stdout.String(), a.Name) {
			t.Errorf("-list output missing %s", a.Name)
		}
	}
}

// copyFixture clones the fixture module into a temp dir so tests can
// mutate it (-fix) or populate a lint cache without touching testdata.
func copyFixture(t *testing.T) string {
	t.Helper()
	src := "../testdata/fixture"
	dst := t.TempDir()
	err := filepath.WalkDir(src, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatalf("copying fixture tree: %v", err)
	}
	return dst
}

// TestJSONOutput is the golden test for -json: one JSON document per
// line, suppressed findings included and flagged, no summary line, and
// the exit code still driven by unsuppressed findings only.
func TestJSONOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := Run(&stdout, &stderr, []string{"-C", "../testdata/fixture", "-json", "-only", "nakedgo", "udmfixture/suppress"})
	if code != ExitFindings {
		t.Fatalf("exit code %d, want %d (stderr: %s)", code, ExitFindings, stderr.String())
	}
	var got []analysis.Finding
	for _, line := range strings.Split(strings.TrimSpace(stdout.String()), "\n") {
		var f analysis.Finding
		if err := json.Unmarshal([]byte(line), &f); err != nil {
			t.Fatalf("line is not a JSON finding: %q: %v", line, err)
		}
		got = append(got, f)
	}
	// The suppress fixture pins the full audit trail: three suppressed
	// nakedgo sites and two live ones, in file order.
	wantSuppressed := []bool{true, true, false, false, true}
	if len(got) != len(wantSuppressed) {
		t.Fatalf("got %d JSON findings, want %d:\n%s", len(got), len(wantSuppressed), stdout.String())
	}
	for i, f := range got {
		if f.Pos.Filename != filepath.Join("suppress", "suppress.go") {
			t.Errorf("finding %d filename = %q, want suppress/suppress.go", i, f.Pos.Filename)
		}
		if f.Pos.Line == 0 || f.Analyzer != "nakedgo" || f.Message == "" {
			t.Errorf("finding %d incomplete: %+v", i, f)
		}
		if f.Suppressed != wantSuppressed[i] {
			t.Errorf("finding %d (line %d) suppressed = %v, want %v", i, f.Pos.Line, f.Suppressed, wantSuppressed[i])
		}
	}
	if strings.Contains(stdout.String(), "finding(s) across") {
		t.Error("-json output contains the human summary line")
	}
}

// TestCacheWarmRun checks the incremental cache end to end: a cold run
// analyzes every package, a warm run serves every package from cache,
// and both emit identical findings.
func TestCacheWarmRun(t *testing.T) {
	dir := copyFixture(t)
	var cold, warm, stderrCold, stderrWarm bytes.Buffer
	if code := Run(&cold, &stderrCold, []string{"-C", dir, "-cache", "./..."}); code != ExitFindings {
		t.Fatalf("cold run exit %d, want %d\n%s", code, ExitFindings, stderrCold.String())
	}
	if !strings.Contains(stderrCold.String(), ", 0 from cache") {
		t.Errorf("cold run should hit nothing: %s", stderrCold.String())
	}
	if code := Run(&warm, &stderrWarm, []string{"-C", dir, "-cache", "./..."}); code != ExitFindings {
		t.Fatalf("warm run exit %d, want %d\n%s", code, ExitFindings, stderrWarm.String())
	}
	if !strings.Contains(stderrWarm.String(), " 0 analyzed") {
		t.Errorf("warm run should analyze nothing: %s", stderrWarm.String())
	}
	if cold.String() != warm.String() {
		t.Errorf("cold and warm findings differ:\ncold:\n%s\nwarm:\n%s", cold.String(), warm.String())
	}
	// Editing one file must invalidate exactly that package: the next
	// run re-analyzes it (and only it) and still reports correctly.
	target := filepath.Join(dir, "suppress", "suppress.go")
	data, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(target, append(data, []byte("\n// touched\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	var edited, stderrEdited bytes.Buffer
	if code := Run(&edited, &stderrEdited, []string{"-C", dir, "-cache", "./..."}); code != ExitFindings {
		t.Fatalf("post-edit run exit %d, want %d\n%s", code, ExitFindings, stderrEdited.String())
	}
	if !strings.Contains(stderrEdited.String(), " 1 analyzed") {
		t.Errorf("editing one package should re-analyze exactly one: %s", stderrEdited.String())
	}
	if edited.String() != cold.String() {
		t.Errorf("findings changed after a comment-only edit:\n%s\nvs\n%s", edited.String(), cold.String())
	}
}

// TestFixConvergesAndIsIdempotent drives -fix over a fixture copy: the
// first run applies fixes and converges, every touched file is
// gofmt-clean, and a second -fix run has nothing left to apply.
func TestFixConvergesAndIsIdempotent(t *testing.T) {
	dir := copyFixture(t)
	before := map[string][]byte{}
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		before[path] = data
		return err
	})
	if err != nil {
		t.Fatal(err)
	}

	var stdout1, stderr1 bytes.Buffer
	if code := Run(&stdout1, &stderr1, []string{"-C", dir, "-fix", "./..."}); code != ExitFindings {
		t.Fatalf("first -fix run exit %d, want %d (unfixable findings remain)\nstdout:\n%s\nstderr:\n%s",
			code, ExitFindings, stdout1.String(), stderr1.String())
	}
	if !strings.Contains(stderr1.String(), "applied") {
		t.Fatalf("first -fix run applied nothing: %s", stderr1.String())
	}

	changed := 0
	for path, orig := range before {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(data, orig) {
			continue
		}
		changed++
		formatted, err := format.Source(data)
		if err != nil {
			t.Errorf("%s does not parse after -fix: %v", path, err)
			continue
		}
		if !bytes.Equal(formatted, data) {
			t.Errorf("%s is not gofmt-clean after -fix", path)
		}
	}
	if changed == 0 {
		t.Fatal("-fix changed no files on the fixture tree")
	}

	// The fixed findings must be gone: no fixable diagnostic survives.
	// (ctxflow's root-context findings and spanend's unbound-result
	// finding carry no fix and legitimately remain.)
	for _, line := range strings.Split(stdout1.String(), "\n") {
		for _, msg := range []string{"is never used", "must be ended by", "deprecated batch form"} {
			if strings.Contains(line, msg) {
				t.Errorf("fixable finding survived -fix: %s", line)
			}
		}
	}

	var stdout2, stderr2 bytes.Buffer
	if code := Run(&stdout2, &stderr2, []string{"-C", dir, "-fix", "./..."}); code != ExitFindings {
		t.Fatalf("second -fix run exit %d, want %d\n%s", code, ExitFindings, stderr2.String())
	}
	if strings.Contains(stderr2.String(), "applied") {
		t.Errorf("second -fix run applied more fixes (not idempotent): %s", stderr2.String())
	}
	if stdout1.String() != stdout2.String() {
		t.Errorf("findings differ between -fix runs:\nfirst:\n%s\nsecond:\n%s", stdout1.String(), stdout2.String())
	}
}
