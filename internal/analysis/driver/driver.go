// Package driver is the engine behind cmd/udmlint: a multichecker that
// loads packages, applies every registered analyzer, and renders the
// findings. It lives apart from the main package so tests can run the
// whole pipeline in-process and assert on exit codes.
package driver

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"path/filepath"
	"strings"
	"time"

	"udm/internal/analysis"
	"udm/internal/analysis/atomicmix"
	"udm/internal/analysis/ctxflow"
	"udm/internal/analysis/ctxleak"
	"udm/internal/analysis/depapi"
	"udm/internal/analysis/detfloat"
	"udm/internal/analysis/errsentinel"
	"udm/internal/analysis/faultpoint"
	"udm/internal/analysis/floateq"
	"udm/internal/analysis/hotalloc"
	"udm/internal/analysis/load"
	"udm/internal/analysis/lockguard"
	"udm/internal/analysis/nakedgo"
	"udm/internal/analysis/rngsource"
	"udm/internal/analysis/spanend"
)

// All is the registry of project analyzers, in the order they are
// listed and run.
var All = []*analysis.Analyzer{
	atomicmix.Analyzer,
	ctxflow.Analyzer,
	ctxleak.Analyzer,
	depapi.Analyzer,
	detfloat.Analyzer,
	errsentinel.Analyzer,
	faultpoint.Analyzer,
	floateq.Analyzer,
	hotalloc.Analyzer,
	lockguard.Analyzer,
	nakedgo.Analyzer,
	rngsource.Analyzer,
	spanend.Analyzer,
}

// Exit codes, mirroring the usual linter convention.
const (
	ExitClean    = 0
	ExitFindings = 1
	ExitError    = 2
)

// maxFixRounds bounds the apply/re-analyze loop under -fix. Rounds
// beyond the first only happen when overlapping fixes deferred some
// work; a tree that still produces applicable fixes after this many
// rounds has a non-convergent (buggy) fix and the run fails.
const maxFixRounds = 5

// Run executes the multichecker with command-line args and returns the
// process exit code. Findings go to stdout, usage and internal errors
// to stderr.
func Run(stdout, stderr io.Writer, args []string) int {
	fs := flag.NewFlagSet("udmlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("C", ".", "directory of the module to analyze (patterns resolve relative to it)")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list the registered analyzers and exit")
	fix := fs.Bool("fix", false, "apply suggested fixes, gofmt the touched files, and re-run until no fix applies")
	jsonOut := fs.Bool("json", false, "emit one JSON diagnostic per line (suppressed findings included, flagged)")
	useCache := fs.Bool("cache", false, "reuse per-package findings from "+cacheDirName+"/ keyed by content hash")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: udmlint [-C dir] [-only a,b] [-list] [-fix] [-json] [-cache] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return ExitError
	}

	if *list {
		for _, a := range All {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return ExitClean
	}

	analyzers := All
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range All {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "udmlint: unknown analyzer %q (run -list for the registry)\n", name)
				return ExitError
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cacheDir := ""
	if *useCache {
		cacheDir = filepath.Join(*dir, cacheDirName)
	}

	start := time.Now()
	findings, stats, err := analyze(*dir, patterns, analyzers, cacheDir)
	if err != nil {
		fmt.Fprintf(stderr, "udmlint: %v\n", err)
		return ExitError
	}

	if *fix {
		// Apply fixes and re-analyze until the tree is a fixed point.
		// Each round invalidates the caches of the packages it touches
		// by construction (their content hash changes), so -fix and
		// -cache compose.
		for round := 1; ; round++ {
			applied, files, err := fixRound(findings)
			if err != nil {
				fmt.Fprintf(stderr, "udmlint: %v\n", err)
				return ExitError
			}
			if applied > 0 {
				fmt.Fprintf(stderr, "udmlint: round %d applied %d fix(es) to %d file(s)\n", round, applied, files)
			}
			if applied == 0 || files == 0 {
				break
			}
			if round >= maxFixRounds {
				fmt.Fprintf(stderr, "udmlint: fixes did not converge after %d rounds\n", maxFixRounds)
				return ExitError
			}
			findings, stats, err = analyze(*dir, patterns, analyzers, cacheDir)
			if err != nil {
				fmt.Fprintf(stderr, "udmlint: %v (tree may be mid-fix)\n", err)
				return ExitError
			}
		}
		// Idempotence proof: the surviving findings must offer nothing
		// further to apply.
		for _, f := range findings {
			if !f.Suppressed && len(f.Fixes) > 0 {
				fmt.Fprintf(stderr, "udmlint: fix for %s did not remove its finding\n", f.String())
				return ExitError
			}
		}
	}

	if *useCache {
		fmt.Fprintf(stderr, "udmlint: %d package(s): %d analyzed, %d from cache in %s\n",
			stats.packages, stats.analyzed, stats.cached, time.Since(start).Round(time.Millisecond))
	}

	// Findings carry absolute paths; print them relative to the module
	// under analysis.
	relTo := *dir
	if abs, err := filepath.Abs(*dir); err == nil {
		relTo = abs
	}
	relativize := func(name string) string {
		if rel, err := filepath.Rel(relTo, name); err == nil && !strings.HasPrefix(rel, "..") {
			return rel
		}
		return name
	}

	active := 0
	enc := json.NewEncoder(stdout)
	for _, f := range findings {
		if !f.Suppressed {
			active++
		}
		if *jsonOut {
			rel := f
			rel.Pos.Filename = relativize(f.Pos.Filename)
			if err := enc.Encode(rel); err != nil {
				fmt.Fprintf(stderr, "udmlint: %v\n", err)
				return ExitError
			}
			continue
		}
		if f.Suppressed {
			continue
		}
		pos := f.Pos
		pos.Filename = relativize(pos.Filename)
		fmt.Fprintf(stdout, "%s: [%s] %s\n", pos, f.Analyzer, f.Message)
	}
	if active > 0 {
		if !*jsonOut {
			fmt.Fprintf(stdout, "udmlint: %d finding(s) across %d package(s)\n", active, stats.packages)
		}
		return ExitFindings
	}
	return ExitClean
}

// runStats counts how the packages of one analyze call were served.
type runStats struct {
	packages int
	analyzed int
	cached   int
}

// analyze lists the packages and produces their findings, serving each
// package from the lint cache when cacheDir is set and its key hits.
func analyze(dir string, patterns []string, analyzers []*analysis.Analyzer, cacheDir string) ([]analysis.Finding, runStats, error) {
	var stats runStats
	mod, err := load.List(dir, patterns...)
	if err != nil {
		return nil, stats, err
	}
	stats.packages = len(mod.Targets)
	fh := fileHashes{}
	var all []analysis.Finding
	for _, t := range mod.Targets {
		key := ""
		if cacheDir != "" {
			// A key failure (e.g. a source file vanished mid-run) just
			// means this package analyzes uncached.
			if k, err := cacheKey(t, analyzers, fh); err == nil {
				key = k
				if fs, ok := readCache(cacheDir, key); ok {
					all = append(all, fs...)
					stats.cached++
					continue
				}
			}
		}
		pkg, err := t.Load()
		if err != nil {
			return nil, stats, err
		}
		fs, err := analysis.RunPackage(pkg, analyzers)
		if err != nil {
			return nil, stats, err
		}
		stats.analyzed++
		if key != "" {
			writeCache(cacheDir, key, fs)
		}
		all = append(all, fs...)
	}
	return analysis.Sort(all), stats, nil
}
