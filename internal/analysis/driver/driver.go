// Package driver is the engine behind cmd/udmlint: a multichecker that
// loads packages, applies every registered analyzer, and renders the
// findings. It lives apart from the main package so tests can run the
// whole pipeline in-process and assert on exit codes.
package driver

import (
	"flag"
	"fmt"
	"io"
	"path/filepath"
	"strings"

	"udm/internal/analysis"
	"udm/internal/analysis/ctxflow"
	"udm/internal/analysis/depapi"
	"udm/internal/analysis/detfloat"
	"udm/internal/analysis/errsentinel"
	"udm/internal/analysis/faultpoint"
	"udm/internal/analysis/hotalloc"
	"udm/internal/analysis/load"
	"udm/internal/analysis/nakedgo"
	"udm/internal/analysis/rngsource"
	"udm/internal/analysis/spanend"
)

// All is the registry of project analyzers, in the order they are
// listed and run.
var All = []*analysis.Analyzer{
	ctxflow.Analyzer,
	depapi.Analyzer,
	detfloat.Analyzer,
	errsentinel.Analyzer,
	faultpoint.Analyzer,
	hotalloc.Analyzer,
	nakedgo.Analyzer,
	rngsource.Analyzer,
	spanend.Analyzer,
}

// Exit codes, mirroring the usual linter convention.
const (
	ExitClean    = 0
	ExitFindings = 1
	ExitError    = 2
)

// Run executes the multichecker with command-line args and returns the
// process exit code. Findings go to stdout, usage and internal errors
// to stderr.
func Run(stdout, stderr io.Writer, args []string) int {
	fs := flag.NewFlagSet("udmlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("C", ".", "directory of the module to analyze (patterns resolve relative to it)")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list the registered analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: udmlint [-C dir] [-only a,b] [-list] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return ExitError
	}

	if *list {
		for _, a := range All {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return ExitClean
	}

	analyzers := All
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range All {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "udmlint: unknown analyzer %q (run -list for the registry)\n", name)
				return ExitError
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load.Packages(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "udmlint: %v\n", err)
		return ExitError
	}
	findings, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "udmlint: %v\n", err)
		return ExitError
	}
	for _, f := range findings {
		pos := f.Pos
		if rel, err := filepath.Rel(*dir, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			pos.Filename = rel
		}
		fmt.Fprintf(stdout, "%s: [%s] %s\n", pos, f.Analyzer, f.Message)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stdout, "udmlint: %d finding(s) across %d package(s)\n", len(findings), len(pkgs))
		return ExitFindings
	}
	return ExitClean
}
