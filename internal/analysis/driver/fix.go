// The auto-fix engine behind `udmlint -fix`: apply every suggested fix
// whose edits do not conflict, gofmt the touched files, and re-run the
// analyzers until no fix applies — the fixed tree must itself be the
// fixed point, or the run fails.
package driver

import (
	"fmt"
	"go/format"
	"os"
	"sort"

	"udm/internal/analysis"
)

// A plannedEdit is one accepted edit, tagged with its file.
type plannedEdit struct {
	analysis.Edit
}

// selectFixes chooses a non-conflicting set of fixes from the findings.
// A fix is atomic — either all of its edits apply or none — and a later
// fix that overlaps an accepted edit is dropped (it gets its chance on
// the next round, after the first fix has been applied and the tree
// re-analyzed). Suppressed findings contribute nothing: a //lint:allow
// is an explicit decision to keep the code as written.
func selectFixes(findings []analysis.Finding) (byFile map[string][]plannedEdit, applied, dropped int) {
	byFile = map[string][]plannedEdit{}
	conflicts := func(e analysis.Edit) bool {
		for _, p := range byFile[e.Filename] {
			if (e.Offset < p.End && p.Offset < e.End) || e.Offset == p.Offset {
				return true
			}
		}
		return false
	}
	for _, f := range findings {
		if f.Suppressed || len(f.Fixes) == 0 {
			continue
		}
		fix := f.Fixes[0]
		ok := len(fix.Edits) > 0
		for _, e := range fix.Edits {
			if conflicts(e) {
				ok = false
				break
			}
		}
		if !ok {
			dropped++
			continue
		}
		for _, e := range fix.Edits {
			byFile[e.Filename] = append(byFile[e.Filename], plannedEdit{e})
		}
		applied++
	}
	return byFile, applied, dropped
}

// applyEdits rewrites one file: splice the edits (descending, so
// offsets stay valid), then gofmt the result. The file is written only
// when the formatted result differs; a result that no longer formats is
// an engine bug and aborts without writing.
func applyEdits(filename string, edits []plannedEdit) (changed bool, err error) {
	src, err := os.ReadFile(filename)
	if err != nil {
		return false, err
	}
	sort.Slice(edits, func(i, j int) bool { return edits[i].Offset > edits[j].Offset })
	out := src
	for _, e := range edits {
		if e.Offset < 0 || e.End < e.Offset || e.End > len(out) {
			return false, fmt.Errorf("fix: edit out of range in %s (offset %d..%d of %d bytes)", filename, e.Offset, e.End, len(out))
		}
		out = append(out[:e.Offset], append([]byte(e.NewText), out[e.End:]...)...)
	}
	formatted, err := format.Source(out)
	if err != nil {
		return false, fmt.Errorf("fix: %s does not parse after applying fixes (not written): %w", filename, err)
	}
	if string(formatted) == string(src) {
		return false, nil
	}
	info, err := os.Stat(filename)
	if err != nil {
		return false, err
	}
	return true, os.WriteFile(filename, formatted, info.Mode().Perm())
}

// fixRound applies one round of fixes and reports how many fixes were
// applied and how many files changed on disk.
func fixRound(findings []analysis.Finding) (applied, files int, err error) {
	byFile, applied, _ := selectFixes(findings)
	if applied == 0 {
		return 0, 0, nil
	}
	for filename, edits := range byFile {
		changed, err := applyEdits(filename, edits)
		if err != nil {
			return 0, 0, err
		}
		if changed {
			files++
		}
	}
	return applied, files, nil
}
