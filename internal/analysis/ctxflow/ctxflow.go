// Package ctxflow enforces the library's context-threading contract.
//
// PR 2 shipped a context-first facade precisely because DensityBatch
// once swallowed its caller's context and kept computing after
// cancellation. ctxflow makes that bug class mechanical to catch:
//
//  1. Library code must not mint its own root context. A call to
//     context.Background or context.TODO in a non-main package is
//     flagged unless it is one of the two sanctioned idioms: the
//     compatibility wrapper (a function with no ctx parameter passing
//     Background directly to its ...Context variant, e.g. DensityBatch
//     → DensityBatchContext) or the nil-guard default
//     (`if ctx == nil { ctx = context.Background() }`).
//  2. A declared context parameter must actually flow somewhere: a
//     function whose ctx parameter is never mentioned in its body is
//     exactly the dropped-context bug, reported at the parameter.
//
// Main packages are entry points and may create root contexts freely;
// test files are never loaded by the driver.
package ctxflow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"udm/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "forbid context.Background/TODO in library code outside sanctioned wrapper and nil-guard idioms, " +
		"and flag context parameters that are declared but never used",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if pass.IsMainPkg() {
		return nil
	}
	analysis.Preorder(pass.Files, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkRootContext(pass, n)
		case *ast.FuncDecl:
			checkDroppedCtx(pass, n)
		}
	})
	return nil
}

// checkRootContext flags context.Background()/context.TODO() calls that
// are not one of the sanctioned idioms.
func checkRootContext(pass *analysis.Pass, call *ast.CallExpr) {
	switch {
	case analysis.IsPkgFunc(pass.TypesInfo, call, "context", "TODO"):
		pass.Reportf(call.Pos(), "context.TODO in library code: thread the caller's ctx instead")
	case analysis.IsPkgFunc(pass.TypesInfo, call, "context", "Background"):
		if isNilGuardDefault(pass, call) || isCompatWrapper(pass, call) {
			return
		}
		pass.Reportf(call.Pos(), "context.Background in library code: accept a ctx and thread it, or add a ...Context variant and delegate to it")
	}
}

// isNilGuardDefault recognizes `ctx = context.Background()` directly
// inside `if ctx == nil { ... }` — the documented nil-context
// compatibility default at API boundaries.
func isNilGuardDefault(pass *analysis.Pass, call *ast.CallExpr) bool {
	assign, ok := pass.ParentOf(call).(*ast.AssignStmt)
	if !ok || assign.Tok != token.ASSIGN || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return false
	}
	lhs, ok := ast.Unparen(assign.Lhs[0]).(*ast.Ident)
	if !ok {
		return false
	}
	block, ok := pass.ParentOf(assign).(*ast.BlockStmt)
	if !ok {
		return false
	}
	ifStmt, ok := pass.ParentOf(block).(*ast.IfStmt)
	if !ok || ifStmt.Body != block {
		return false
	}
	cond, ok := ast.Unparen(ifStmt.Cond).(*ast.BinaryExpr)
	if !ok || cond.Op != token.EQL {
		return false
	}
	for x, y := cond.X, cond.Y; ; x, y = y, x {
		if xi, ok := ast.Unparen(x).(*ast.Ident); ok && pass.TypesInfo.Uses[xi] == pass.TypesInfo.Uses[lhs] {
			if yi, ok := ast.Unparen(y).(*ast.Ident); ok && yi.Name == "nil" {
				return true
			}
		}
		if x == cond.Y {
			return false
		}
	}
}

// isCompatWrapper recognizes Background passed as a direct argument to
// a call whose callee name ends in "Context", from inside a function
// that has no context parameter of its own — the non-Context
// convenience wrapper delegating to the context-first API.
func isCompatWrapper(pass *analysis.Pass, call *ast.CallExpr) bool {
	outer, ok := pass.ParentOf(call).(*ast.CallExpr)
	if !ok {
		return false
	}
	arg := false
	for _, a := range outer.Args {
		if a == call {
			arg = true
			break
		}
	}
	if !arg {
		return false
	}
	var calleeName string
	switch fun := ast.Unparen(outer.Fun).(type) {
	case *ast.Ident:
		calleeName = fun.Name
	case *ast.SelectorExpr:
		calleeName = fun.Sel.Name
	default:
		return false
	}
	if len(calleeName) < len("Context") || calleeName[len(calleeName)-len("Context"):] != "Context" {
		return false
	}
	params := enclosingFuncParams(pass, call)
	if params == nil {
		return false
	}
	for _, field := range params.List {
		if isContextType(pass.TypesInfo.TypeOf(field.Type)) {
			return false
		}
	}
	return true
}

// checkDroppedCtx reports context parameters that the function body
// never mentions — the "silently swallowed context" bug class.
func checkDroppedCtx(pass *analysis.Pass, fn *ast.FuncDecl) {
	if fn.Body == nil || fn.Type.Params == nil {
		return
	}
	for _, field := range fn.Type.Params.List {
		if !isContextType(pass.TypesInfo.TypeOf(field.Type)) {
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			obj := pass.TypesInfo.Defs[name]
			if obj == nil {
				continue
			}
			used := false
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					used = true
					return false
				}
				return !used
			})
			if !used {
				pass.Report(analysis.Diagnostic{
					Pos:     name.Pos(),
					Message: fmt.Sprintf("context parameter %s is never used: thread it to downstream calls (the dropped-context bug class)", name.Name),
					Fixes: []analysis.SuggestedFix{{
						// Renaming to _ makes the drop explicit and visible at
						// the signature; actually threading the context is a
						// judgment call the fix cannot make.
						Message: "rename the unused context parameter to _",
						Edits:   []analysis.TextEdit{{Pos: name.Pos(), End: name.End(), NewText: "_"}},
					}},
				})
			}
		}
	}
}

// enclosingFuncParams returns the parameter list of the innermost
// function declaration or literal containing n, or nil at file scope.
func enclosingFuncParams(pass *analysis.Pass, n ast.Node) *ast.FieldList {
	for cur := pass.ParentOf(n); cur != nil; cur = pass.ParentOf(cur) {
		switch fn := cur.(type) {
		case *ast.FuncDecl:
			return fn.Type.Params
		case *ast.FuncLit:
			return fn.Type.Params
		}
	}
	return nil
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
