package ctxflow_test

import (
	"testing"

	"udm/internal/analysis/analysistest"
	"udm/internal/analysis/ctxflow"
)

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, "../testdata/fixture", ctxflow.Analyzer,
		"udmfixture/ctxflow", "udmfixture/cmd/ctxmain")
}
