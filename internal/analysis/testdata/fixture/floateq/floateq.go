// Package floateq is the golden fixture for the floateq analyzer:
// exact equality between computed floats is flagged, sentinel and NaN
// idioms are not.
package floateq

import "math"

const eps = 1e-9

// SameDensity is the bug the analyzer exists for.
func SameDensity(a, b float64) bool {
	return a == b // want "== between computed float values is rounding-sensitive"
}

// Changed is the != flavor, on computed expressions.
func Changed(xs []float64) bool {
	var s1, s2 float64
	for _, x := range xs {
		s1 += x
	}
	for i := len(xs) - 1; i >= 0; i-- {
		s2 += xs[i]
	}
	return s1 != s2 // want "!= between computed float values is rounding-sensitive"
}

// Float32 is covered too.
func Float32(a, b float32) bool {
	return a*2 == b // want "== between computed float values is rounding-sensitive"
}

// SentinelZero compares against a constant: exempt.
func SentinelZero(epsilon float64) bool {
	return epsilon != 0
}

// SentinelNamed compares against a named constant: exempt.
func SentinelNamed(w float64) bool {
	return w == eps
}

// NaNProbe is the stdlib-sanctioned self-comparison: exempt.
func NaNProbe(x float64) bool {
	return x != x
}

// EpsilonBand is the sanctioned comparison: no equality operator.
func EpsilonBand(a, b float64) bool {
	return math.Abs(a-b) <= eps
}

// IntEquality is not a float comparison: exempt.
func IntEquality(a, b int) bool {
	return a == b
}
