// Package udm mirrors the module-root facade: its import path ends in
// "udm", so its deprecated batch wrapper sits inside the depapi
// analyzer's scope.
package udm

import "udmfixture/internal/kde"

// BatchOptions re-exports the engine's options value, as the real
// facade does.
type BatchOptions = kde.BatchOptions

// DensityBatchOpts is the canonical facade form.
func DensityBatchOpts(est kde.Est, X [][]float64, dims []int, opt kde.BatchOptions) ([]float64, error) {
	return kde.DensityBatchOpts(est, X, dims, opt)
}

// Deprecated: use DensityBatchOpts.
func DensityBatch(est kde.Est, X [][]float64, dims []int, workers int) ([]float64, error) {
	return DensityBatchOpts(est, X, dims, kde.BatchOptions{Workers: workers})
}

// Compat calls the deprecated same-package wrapper; the
// declaring-package exemption keeps it silent.
func Compat(est kde.Est, X [][]float64) ([]float64, error) {
	return DensityBatch(est, X, nil, 1)
}
