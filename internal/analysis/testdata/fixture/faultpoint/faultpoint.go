// Package faultpoint exercises the faultpoint analyzer: literal,
// well-formed, unique site names in package-level vars pass; everything
// else is flagged.
package faultpoint

import "udmfixture/internal/faultinject"

var okFlush = faultinject.NewPoint("server.batcher.flush")

var okEval = faultinject.NewPoint("server.model.eval")

var dupFirst = faultinject.NewPoint("dup.site")

var dupSecond = faultinject.NewPoint("dup.site") // want `duplicate fault site name "dup.site"`

var computedName = faultinject.NewPoint("server." + suffix()) // want `not a string literal`

var badShape = faultinject.NewPoint("NoDots") // want `invalid fault site name "NoDots"`

func suffix() string { return "computed" }

func runtimePoint() *faultinject.Point {
	return faultinject.NewPoint("func.scoped") // want `outside a package-level var`
}
