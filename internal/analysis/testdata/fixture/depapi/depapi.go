// Package depapi holds the golden cases for the depapi analyzer: every
// deprecated batch form called from outside its declaring package, plus
// the canonical spellings that must stay silent.
package depapi

import (
	"context"

	"udmfixture/internal/kde"
	"udmfixture/udm"
)

// Legacy calls every deprecated form.
func Legacy(ctx context.Context, est kde.Est, X [][]float64) {
	_, _ = kde.DensityBatch(ctx, est, X, nil, 4)       // want "deprecated batch form DensityBatch: use DensityBatchOpts"
	_, _ = kde.DensityQBatch(ctx, est, X, nil, nil, 4) // want "deprecated batch form DensityQBatch: use DensityQBatchOpts"
	_, _ = est.DensityBatch(X, nil, 4)                 // want "deprecated batch form DensityBatch: use DensityBatchOpts"
	_, _ = est.DensityBatchContext(ctx, X, nil, 4)     // want "deprecated batch form DensityBatchContext: use DensityBatchOpts with BatchOptions.Ctx"
	_, _ = est.LeaveOneOutBatch(nil, 4)                // want "deprecated batch form LeaveOneOutBatch: use LeaveOneOutBatchOpts"
	_, _ = udm.DensityBatch(est, X, nil, 4)            // want "deprecated batch form DensityBatch: use DensityBatchOpts"
}

// Canonical calls the Opts forms and the context-first Batcher hook —
// none may be flagged.
func Canonical(ctx context.Context, est kde.Est, b kde.Batcher, X [][]float64) {
	_, _ = kde.DensityBatchOpts(est, X, nil, kde.BatchOptions{Ctx: ctx, Workers: 4})
	_, _ = est.LeaveOneOutBatchOpts(nil, kde.BatchOptions{Workers: 4})
	_, _ = udm.DensityBatchOpts(est, X, nil, kde.BatchOptions{})
	_, _ = b.DensityBatch(ctx, X, nil, 4)
}

// Suppressed pins the //lint:allow escape hatch for sanctioned legacy
// call sites (e.g. a compatibility shim's own tests).
func Suppressed(est kde.Est, X [][]float64) {
	_, _ = est.DensityBatch(X, nil, 1) //lint:allow depapi compatibility shim retained for out-of-tree callers
}
