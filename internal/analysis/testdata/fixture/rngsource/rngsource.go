// Package rngsource holds the golden cases for the rngsource analyzer.
package rngsource

import (
	"math/rand" // want "import of math/rand outside internal/rng"
	"time"

	"udmfixture/internal/rng"
)

// Draw seeds the forbidden generator from the wall clock.
func Draw() float64 {
	r := rand.New(rand.NewSource(time.Now().UnixNano())) // want "seeding a random source from time.Now"
	return r.Float64()
}

// DrawSeeded is the sanctioned pattern: an explicit seed into rng.New.
func DrawSeeded(seed int64) float64 {
	return rng.New(seed).Float64()
}

// DrawClock seeds even the sanctioned Source from the clock, which is
// still unreproducible.
func DrawClock() float64 {
	return rng.New(time.Now().UnixNano()).Float64() // want "seeding a random source from time.Now"
}

// SeedFrom trips the Seed-name heuristic.
func SeedFrom(nanos int64) *rng.Source { return rng.New(nanos) }

// DrawLocalSeed launders the clock through a local helper.
func DrawLocalSeed() float64 {
	return SeedFrom(time.Now().UnixNano()).Float64() // want "seeding a random source from time.Now"
}

// Timestamp uses time.Now outside any seeding context — wall-clock
// reads for metrics and latency are fine.
func Timestamp() int64 {
	return time.Now().UnixNano()
}
