// Package errtext holds the golden cases for errsentinel's
// message-matching rule, which applies outside the contract packages
// too (this package is free to use errors.New — it is not one of them).
package errtext

import (
	"errors"
	"strings"
)

var sentinel = errors.New("sentinel")

// Classify exercises every forbidden way of reading error text.
func Classify(err error) string {
	if err.Error() == "dimension mismatch" { // want "comparing err.Error"
		return "dim"
	}
	if "untrained model" != err.Error() { // want "comparing err.Error"
		_ = err
	}
	if strings.Contains(err.Error(), "untrained") { // want "strings.Contains"
		return "untrained"
	}
	if strings.HasPrefix(err.Error(), "kde:") { // want "strings.HasPrefix"
		return "kde"
	}
	switch err.Error() { // want "switching on err.Error"
	case "bad option":
		return "opt"
	}
	if errors.Is(err, sentinel) {
		return "sentinel"
	}
	return "other"
}

// Render may read the message for display — only matching on it is
// forbidden.
func Render(err error) string {
	return "error: " + err.Error()
}
