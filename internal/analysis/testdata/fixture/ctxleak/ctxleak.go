// Package ctxleak is the golden fixture for the ctxleak analyzer: the
// cancel func of a derived context must be released on every path out
// of the creating function.
package ctxleak

import (
	"context"
	"time"
)

func use(ctx context.Context) error { _ = ctx; return nil }

// DeferredImmediately is the canonical shape: no finding.
func DeferredImmediately(ctx context.Context) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	return use(ctx)
}

// AllPathsCall cancels explicitly on both arms: no finding.
func AllPathsCall(ctx context.Context, c bool) error {
	ctx, cancel := context.WithTimeout(ctx, time.Second)
	if c {
		err := use(ctx)
		cancel()
		return err
	}
	cancel()
	return nil
}

// LeakOnError is the classic miss: the error return path never
// cancels.
func LeakOnError(ctx context.Context) error {
	ctx, cancel := context.WithCancel(ctx) // want "cancel func cancel from context.WithCancel is not called on every path"
	if err := use(ctx); err != nil {
		return err
	}
	cancel()
	return nil
}

// LeakTimeout leaks a timer too, same path bug, deadline flavor.
func LeakTimeout(ctx context.Context, c bool) error {
	ctx, cancel := context.WithDeadline(ctx, time.Now().Add(time.Second)) // want "cancel func cancel from context.WithDeadline is not called on every path"
	if c {
		cancel()
	}
	return use(ctx)
}

// Discarded throws the cancel func away outright.
func Discarded(ctx context.Context) error {
	ctx, _ = context.WithCancel(ctx) // want "cancel func of context.WithCancel is discarded"
	return use(ctx)
}

// EscapesToCallee hands the cancel func to another function, which
// owns it from then on: no finding.
func EscapesToCallee(ctx context.Context) error {
	ctx, cancel := context.WithCancel(ctx)
	register(cancel)
	return use(ctx)
}

func register(f context.CancelFunc) { f() }

// EscapesToClosure is the AfterFunc shape from the server batcher: the
// closure owns the release.
func EscapesToClosure(ctx context.Context, done chan struct{}) error {
	ctx, cancel := context.WithCancel(ctx)
	go func() {
		<-done
		cancel()
	}()
	return use(ctx)
}

// EscapesByReturn transfers the obligation to the caller.
func EscapesByReturn(ctx context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(ctx)
	return ctx, cancel
}

// ZeroIterationLoop cancels only inside a loop that may not run.
func ZeroIterationLoop(ctx context.Context, n int) error {
	ctx, cancel := context.WithCancel(ctx) // want "cancel func cancel from context.WithCancel is not called on every path"
	for i := 0; i < n; i++ {
		cancel()
	}
	return use(ctx)
}

// SwitchAllArms releases on every case including default: no finding.
func SwitchAllArms(ctx context.Context, n int) error {
	ctx, cancel := context.WithCancel(ctx)
	switch n {
	case 0:
		cancel()
	default:
		defer cancel()
	}
	return use(ctx)
}
