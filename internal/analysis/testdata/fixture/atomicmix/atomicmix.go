// Package atomicmix is the golden fixture for the atomicmix analyzer:
// a variable touched by sync/atomic anywhere must be touched by it
// everywhere.
package atomicmix

import "sync/atomic"

// Metrics mixes a correctly-atomic field with a mixed-access one.
type Metrics struct {
	hits   int64
	misses int64
	name   string
}

// RecordHit is the atomic side of the race.
func (m *Metrics) RecordHit() {
	atomic.AddInt64(&m.hits, 1)
}

// Snapshot reads hits plainly: the other side of the race.
func (m *Metrics) Snapshot() int64 {
	return m.hits // want "hits is accessed with sync/atomic at .*:.* but plainly here"
}

// Reset writes hits plainly, same race, store flavor.
func (m *Metrics) Reset() {
	m.hits = 0 // want "hits is accessed with sync/atomic at .*:.* but plainly here"
}

// Misses is all-atomic: no finding on any access.
func (m *Metrics) RecordMiss()      { atomic.AddInt64(&m.misses, 1) }
func (m *Metrics) MissCount() int64 { return atomic.LoadInt64(&m.misses) }

// Name is never atomic: plain access is fine.
func (m *Metrics) Name() string { return m.name }

// NewMetrics initializes via composite-literal keys, which are exempt:
// the value is not shared yet.
func NewMetrics() *Metrics {
	return &Metrics{hits: 0, misses: 0, name: "metrics"}
}

// flips is a package-level variable with the same mix.
var flips int64

// Flip is atomic.
func Flip() { atomic.AddInt64(&flips, 1) }

// Flips reads it plainly.
func Flips() int64 {
	return flips // want "flips is accessed with sync/atomic at .*:.* but plainly here"
}
