// Command ctxmain pins the entry-point exemptions: main packages may
// mint root contexts and manage their own goroutines.
package main

import (
	"context"
	"fmt"
)

func main() {
	ctx := context.Background()
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
	fmt.Println(ctx != nil)
}
