// Package nakedgo holds the golden cases for the nakedgo analyzer.
package nakedgo

// Spawn launches an anonymous goroutine directly.
func Spawn(n int) int {
	ch := make(chan int)
	go func() { ch <- n }() // want "raw go statement in library code"
	return <-ch
}

type worker struct{ done chan struct{} }

func (w worker) run() { close(w.done) }

// SpawnMethod launches a method value, which is just as naked.
func SpawnMethod() {
	w := worker{done: make(chan struct{})}
	go w.run() // want "raw go statement in library code"
	<-w.done
}
