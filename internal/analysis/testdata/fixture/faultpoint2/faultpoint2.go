// Package faultpoint2 exists to prove site-name uniqueness is enforced
// ACROSS packages: "server.batcher.flush" is first declared in the
// sibling faultpoint fixture package, and no process ever links the two.
package faultpoint2

import "udmfixture/internal/faultinject"

var okLocal = faultinject.NewPoint("pkg2.only")

var crossDup = faultinject.NewPoint("server.batcher.flush") // want `duplicate fault site name "server.batcher.flush"`
