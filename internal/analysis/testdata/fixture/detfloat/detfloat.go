// Package detfloat holds the golden cases for the detfloat analyzer:
// float reductions driven by map iteration order are nondeterministic.
package detfloat

import "sort"

// SumMap is the canonical violation.
func SumMap(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s += v // want "float accumulation in map iteration order"
	}
	return s
}

// SumRebind accumulates through explicit re-assignment.
func SumRebind(m map[int]float64) float64 {
	total := 0.0
	for _, v := range m {
		total = total + v // want "float accumulation in map iteration order"
	}
	return total
}

// ProdMap catches the multiplicative form too.
func ProdMap(m map[string]float64) float64 {
	p := 1.0
	for _, v := range m {
		p *= v // want "float accumulation in map iteration order"
	}
	return p
}

type acc struct{ total float64 }

// FieldSum accumulates into a struct field that outlives the loop.
func FieldSum(m map[string]float64, a *acc) {
	for _, v := range m {
		a.total += v // want "float accumulation in map iteration order"
	}
}

// SumSorted is the sanctioned fix: materialize and sort the keys, then
// reduce over the slice in deterministic order.
func SumSorted(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var s float64
	for _, k := range keys {
		s += m[k]
	}
	return s
}

// IntSum is order-safe: integer addition is associative.
func IntSum(m map[string]int) int {
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}

// Bucketed writes through a key: each key is visited once, so the
// result does not depend on iteration order.
func Bucketed(m map[string]float64) map[string]float64 {
	out := map[string]float64{}
	for k, v := range m {
		out[k] += v
	}
	return out
}

// PerIteration keeps its accumulator local to one iteration, which is
// order-safe.
func PerIteration(m map[string][]float64) map[string]float64 {
	out := map[string]float64{}
	for k, vs := range m {
		local := 0.0
		for _, v := range vs {
			local += v
		}
		out[k] = local
	}
	return out
}
