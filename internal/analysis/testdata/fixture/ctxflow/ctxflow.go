// Package ctxflow holds the golden cases for the ctxflow analyzer.
package ctxflow

import (
	"context"

	"udmfixture/internal/parallel"
)

// WorkContext is the context-first API every wrapper delegates to.
func WorkContext(ctx context.Context, n int) float64 {
	out, _ := parallel.Sum(ctx, n)
	return out
}

// Work is the sanctioned compatibility wrapper: no ctx parameter of its
// own, Background passed directly to the ...Context variant.
func Work(n int) float64 {
	return WorkContext(context.Background(), n)
}

// Defaulted shows the sanctioned nil-guard default.
func Defaulted(ctx context.Context, n int) float64 {
	if ctx == nil {
		ctx = context.Background()
	}
	return WorkContext(ctx, n)
}

// DefaultedFlipped spells the nil-guard with the operands reversed.
func DefaultedFlipped(ctx context.Context, n int) float64 {
	if nil == ctx {
		ctx = context.Background()
	}
	return WorkContext(ctx, n)
}

// Dropped declares a ctx it never threads anywhere — the PR 2 bug
// class this analyzer exists for.
func Dropped(ctx context.Context, n int) int { // want "context parameter ctx is never used"
	return n * 2
}

// Ignored opts out explicitly with the blank identifier.
func Ignored(_ context.Context, n int) int {
	return n * 3
}

// Detached mints a root context in the middle of library code.
func Detached(n int) float64 {
	ctx := context.Background() // want "context.Background in library code"
	return WorkContext(ctx, n)
}

// Todo reaches for context.TODO, which is never sanctioned.
func Todo(n int) float64 {
	return WorkContext(context.TODO(), n) // want "context.TODO in library code"
}

// HasCtxButMints already has a ctx, so the wrapper exemption does not
// apply: passing Background to the Context variant discards the
// caller's cancellation.
func HasCtxButMints(ctx context.Context, n int) float64 {
	_ = ctx
	return WorkContext(context.Background(), n) // want "context.Background in library code"
}

// NotNilGuard defaults the context under the wrong condition, which is
// not the sanctioned idiom.
func NotNilGuard(ctx context.Context, n int) float64 {
	if n > 0 {
		ctx = context.Background() // want "context.Background in library code"
	}
	return WorkContext(ctx, n)
}
