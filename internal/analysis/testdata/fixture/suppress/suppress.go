// Package suppress pins the //lint:allow directive semantics the
// udmlint driver honors: a justified exception stands, everything else
// still fires.
package suppress

// Spawn has two suppressed goroutines (standalone and trailing
// directive forms) and one unsuppressed one.
func Spawn() {
	done := make(chan struct{})
	//lint:allow nakedgo one-shot closer bounded by the function lifetime
	go func() { close(done) }()
	go func() {}()         //lint:allow nakedgo trailing-form suppression
	go func() { <-done }() // want "raw go statement in library code"
}

// Wrong is suppressed for a different analyzer, so nakedgo still fires.
func Wrong() {
	//lint:allow rngsource suppression for the wrong analyzer
	go func() {}() // want "raw go statement in library code"
}

// All uses the blanket analyzer name.
func All() {
	//lint:allow all fixture exercises the blanket form
	go func() {}()
}
