// Package suppressml pins the multi-line statement scope of the
// //lint:allow directive: a directive on the line above a statement
// that wraps across several lines covers every line of the statement,
// not just the first. The findings here come from atomicmix, which
// reports at the offending identifier — deliberately placed on the
// LAST line of each wrapped statement.
package suppressml

import "sync/atomic"

// counter is accessed atomically in Bump, so every plain access below
// is an atomicmix finding.
var counter int64

// Bump is the atomic side of the mix.
func Bump() { atomic.AddInt64(&counter, 1) }

// MultiLineSuppressed is the regression case: the finding fires on the
// statement's final line, two lines below the directive.
func MultiLineSuppressed(pad int64) int64 {
	//lint:allow atomicmix fixture pins whole-statement directive coverage
	total := pad +
		pad +
		counter
	return total
}

// MultiLineUnsuppressed is the control: identical shape, no directive,
// so the finding on the last line must still fire.
func MultiLineUnsuppressed(pad int64) int64 {
	total := pad +
		pad +
		counter // want "counter is accessed with sync/atomic"
	return total
}
