// Package udmerr mirrors the real sentinel package: the one place
// sentinels are minted with errors.New (it is not a contract package,
// so errsentinel leaves it alone).
package udmerr

import "errors"

// ErrBadData is a fixture sentinel.
var ErrBadData = errors.New("bad data")
