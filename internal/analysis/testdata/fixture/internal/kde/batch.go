// Golden API shapes for the depapi analyzer: the deprecated batch
// forms, their canonical Opts replacements, and the context-first
// Batcher look-alike that must NOT be flagged. The wrapper bodies
// delegate among themselves, pinning the declaring-package exemption.
package kde

import "context"

// BatchOptions mirrors the real package's options value.
type BatchOptions struct {
	Workers int
	Ctx     context.Context
}

// Est mirrors an estimator carrying the deprecated method twins.
type Est struct{}

// DensityBatchOpts is the canonical form.
func DensityBatchOpts(est Est, X [][]float64, dims []int, opt BatchOptions) ([]float64, error) {
	return nil, nil
}

// Deprecated: use DensityBatchOpts.
func DensityBatch(_ context.Context, est Est, X [][]float64, dims []int, workers int) ([]float64, error) {
	return DensityBatchOpts(est, X, dims, BatchOptions{Workers: workers})
}

// DensityQBatchOpts is the canonical uncertain-batch form.
func DensityQBatchOpts(est Est, X, Qerr [][]float64, dims []int, opt BatchOptions) ([]float64, error) {
	return nil, nil
}

// Deprecated: use DensityQBatchOpts.
func DensityQBatch(_ context.Context, est Est, X, Qerr [][]float64, dims []int, workers int) ([]float64, error) {
	return nil, nil
}

// Deprecated: use DensityBatchOpts.
func (Est) DensityBatch(X [][]float64, dims []int, workers int) ([]float64, error) {
	return nil, nil
}

// Deprecated: use DensityBatchOpts with BatchOptions.Ctx.
func (Est) DensityBatchContext(_ context.Context, X [][]float64, dims []int, workers int) ([]float64, error) {
	return nil, nil
}

// Deprecated: use LeaveOneOutBatchOpts.
func (Est) LeaveOneOutBatch(dims []int, workers int) ([]float64, error) {
	return nil, nil
}

// LeaveOneOutBatchOpts is the canonical form.
func (Est) LeaveOneOutBatchOpts(dims []int, opt BatchOptions) ([]float64, error) {
	return nil, nil
}

// Batcher is the delegation hook: its DensityBatch is context-first and
// canonical, despite sharing the deprecated name.
type Batcher interface {
	DensityBatch(ctx context.Context, X [][]float64, dims []int, workers int) ([]float64, error)
}
