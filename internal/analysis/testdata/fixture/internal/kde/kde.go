// Package kde holds the golden cases for the hotalloc analyzer: its
// import path ends in internal/kde, so it sits inside the analyzer's
// hot-path scope.
package kde

// Densities allocates per element every way the analyzer forbids.
func Densities(xs [][]float64) []float64 {
	var out []float64
	for _, x := range xs {
		q := make([]float64, len(x)) // want "make inside a hot-path loop"
		copy(q, x)
		dims := []int{0} // want "composite literal inside a hot-path loop"
		_ = dims
		s := new(float64) // want "new inside a hot-path loop"
		for _, v := range q {
			*s += v
		}
		out = append(out, *s) // want "append inside a hot-path loop"
	}
	return out
}

// Closured allocates inside a closure the loop spawns per iteration.
func Closured(n int) []func() int {
	fns := make([]func() int, n)
	for i := 0; i < n; i++ {
		fns[i] = func() int {
			buf := make([]int, 4) // want "make inside a hot-path loop"
			return len(buf)
		}
	}
	return fns
}

// NewTable is constructor-shaped, so its loop allocations are exempt.
func NewTable(n int) [][]float64 {
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, 8)
	}
	return rows
}

// ColdFold pins the suppression path: a documented cold loop.
func ColdFold(k int) [][]int {
	var folds [][]int
	for i := 0; i < k; i++ {
		folds = append(folds, []int{i}) //lint:allow hotalloc cross-validation folds run once per fit, not per query
	}
	return folds
}

// Hoisted is the sanctioned shape: one allocation, reused.
func Hoisted(xs [][]float64) []float64 {
	out := make([]float64, len(xs))
	q := make([]float64, 8)
	for i, x := range xs {
		copy(q, x)
		out[i] = q[0]
	}
	return out
}
