// Package rng mirrors the real internal/rng: the single sanctioned
// math/rand import site in the module.
package rng

import "math/rand"

// Source wraps a seeded generator.
type Source struct{ r *rand.Rand }

// New returns a Source seeded with seed.
func New(seed int64) *Source { return &Source{r: rand.New(rand.NewSource(seed))} }

// Float64 returns a uniform draw from [0, 1).
func (s *Source) Float64() float64 { return s.r.Float64() }
