// Package parallel is a fixture stand-in for the real module's
// internal/parallel. The analyzers scope their rules by import-path
// suffix, so this package exercises the "sanctioned concurrency
// substrate" exemptions without importing across module boundaries.
package parallel

import "context"

// Sum pretends to fan n items out and reduce them deterministically.
func Sum(ctx context.Context, n int) (float64, error) {
	done := make(chan float64, 1)
	go func() {
		var s float64
		for i := 0; i < n; i++ {
			select {
			case <-ctx.Done():
			default:
				s++
			}
		}
		done <- s
	}()
	return <-done, nil
}
