// Package faultinject is the fixture stand-in for the real fault
// registry: the faultpoint analyzer resolves NewPoint by package-path
// suffix, so this stub only needs the signature.
package faultinject

// Point is one named injection site.
type Point struct{ name string }

// NewPoint registers a named injection site.
func NewPoint(name string) *Point { return &Point{name: name} }
