// Package stream is a fixture stand-in for the real module's
// internal/stream: its import path puts it inside lockguard's
// blocking-check scope, so this file pins the "no blocking while a
// lock is held" rule.
package stream

import (
	"sync"
	"time"
)

// Hub fans values between goroutines under a mutex.
type Hub struct {
	mu   sync.Mutex
	last float64
}

// ReceiveUnderLock parks on a channel while holding the lock.
func (h *Hub) ReceiveUnderLock(ch chan float64) {
	h.mu.Lock()
	h.last = <-ch // want "a channel receive is blocked on while h.mu is locked"
	h.mu.Unlock()
}

// SendUnderLock parks on a send while holding the lock.
func (h *Hub) SendUnderLock(ch chan float64) {
	h.mu.Lock()
	ch <- h.last // want "a channel send is blocked on while h.mu is locked"
	h.mu.Unlock()
}

// WaitUnderDeferredUnlock shows that a deferred unlock does not end
// the held region: the WaitGroup parks with the lock still taken.
func (h *Hub) WaitUnderDeferredUnlock(wg *sync.WaitGroup) {
	h.mu.Lock()
	defer h.mu.Unlock()
	wg.Wait() // want "a sync Wait is blocked on while h.mu is locked"
}

// SleepUnderLock stalls every contender for the duration.
func (h *Hub) SleepUnderLock() {
	h.mu.Lock()
	time.Sleep(time.Millisecond) // want "a time.Sleep is blocked on while h.mu is locked"
	h.mu.Unlock()
}

// UnlockThenBlock is the clean ordering: release first, park after.
func (h *Hub) UnlockThenBlock(ch chan float64) {
	h.mu.Lock()
	v := h.last
	h.mu.Unlock()
	ch <- v
}

// SelectUnderLock uses select-with-default, the idiomatic non-blocking
// form: comm clauses are exempt.
func (h *Hub) SelectUnderLock(ch chan float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	select {
	case v := <-ch:
		h.last = v
	default:
	}
}
