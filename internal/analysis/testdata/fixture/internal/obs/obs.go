// Package obs is a stub of the real module's internal/obs with just
// enough surface for the spanend fixture: StartSpan and a Span with
// End and Attr. The spanend analyzer matches by package-path suffix,
// so udmfixture/internal/obs stands in for udm/internal/obs.
package obs

import "context"

type Span struct{}

func (s *Span) End() {}

func (s *Span) Attr(key string, value any) *Span { return s }

func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return ctx, &Span{}
}
