// Package dataset is a fixture stand-in for the real contract package
// of the same path suffix: every error it constructs must be
// classifiable with errors.Is, which means wrapping something.
package dataset

import (
	"errors"
	"fmt"

	"udmfixture/internal/udmerr"
)

// Validate exercises the construction rules.
func Validate(n int) error {
	if n < 0 {
		return errors.New("negative length") // want "errors.New in a contract package"
	}
	if n == 0 {
		return fmt.Errorf("dataset: empty (%d rows)", n) // want "error does not wrap a sentinel"
	}
	if n > 10 {
		return fmt.Errorf("dataset: %d rows over cap: %w", n, udmerr.ErrBadData)
	}
	return nil
}

// Reparse shows that wrapping an underlying error also satisfies the
// contract: the chain stays inspectable.
func Reparse(raw string) error {
	if raw == "" {
		return fmt.Errorf("dataset: parse %q: %w", raw, udmerr.ErrBadData)
	}
	return nil
}

// Dynamic formats cannot be audited for %w.
func Dynamic(format string, n int) error {
	return fmt.Errorf(format, n) // want "non-constant format"
}
