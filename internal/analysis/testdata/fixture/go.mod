module udmfixture

go 1.22
