// Package lockguard is the golden fixture for the lockguard analyzer:
// no lock copies, and every Lock matched by an Unlock on every path.
// (The blocking-under-lock check is scoped to server/parallel/stream
// package paths and is exercised by the internal/stream fixture.)
package lockguard

import (
	"errors"
	"sync"
)

// Counter is the guarded-struct shape used throughout the fixture.
type Counter struct {
	mu sync.Mutex
	n  int
}

// Inc is the canonical clean shape: pointer receiver, defer unlock.
func (c *Counter) Inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// Get unlocks explicitly on the single path: no finding.
func (c *Counter) Get() int {
	c.mu.Lock()
	v := c.n
	c.mu.Unlock()
	return v
}

// ValueReceiver copies the whole counter, lock included.
func (c Counter) ValueReceiver() int { // want "receiver takes .* by value"
	return c.n
}

// ByValueParam copies the lock at every call site.
func ByValueParam(c Counter) int { // want "parameter takes .* by value"
	return c.n
}

// CopyAssign duplicates a live lock via plain assignment.
func CopyAssign(c *Counter) int {
	snapshot := *c // want "assignment copies .* by value"
	return snapshot.n
}

// CopyArg passes a live lock by value into a call.
func CopyArg(c *Counter) int {
	return ByValueParam(*c) // want "call passes .* by value"
}

// CopyRange copies one lock per iteration.
func CopyRange(cs []Counter) int {
	total := 0
	for _, c := range cs { // want "range value copies .* by value"
		total += c.n
	}
	return total
}

// FreshValue builds a new counter in place: composite literals are not
// copies of a live lock, no finding.
func FreshValue() *Counter {
	c := Counter{}
	return &c
}

// PointerEverywhere is the clean version of all the copy shapes.
func PointerEverywhere(cs []*Counter) int {
	total := 0
	for _, c := range cs {
		total += c.Get()
	}
	return total
}

// LeakOnError is the early return that skips the unlock.
func (c *Counter) LeakOnError(fail bool) error {
	c.mu.Lock() // want "has no matching Unlock\\(\\) on some path"
	if fail {
		return errFixture
	}
	c.mu.Unlock()
	return nil
}

// BothArms unlocks on every branch: no finding.
func (c *Counter) BothArms(fast bool) int {
	c.mu.Lock()
	if fast {
		v := c.n
		c.mu.Unlock()
		return v
	}
	v := c.n * 2
	c.mu.Unlock()
	return v
}

// RW is the read-write flavor.
type RW struct {
	mu sync.RWMutex
	m  map[string]int
}

// Read pairs RLock with a deferred RUnlock: no finding.
func (r *RW) Read(k string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.m[k]
}

// MismatchedUnlock releases the write side after taking the read side:
// the RLock is never RUnlocked.
func (r *RW) MismatchedUnlock(k string) int {
	r.mu.RLock() // want "has no matching RUnlock\\(\\) on some path"
	v := r.m[k]
	r.mu.Unlock()
	return v
}

// LoopMayBeSkipped only unlocks inside a loop that can run zero times.
func (c *Counter) LoopMayBeSkipped(n int) {
	c.mu.Lock() // want "has no matching Unlock\\(\\) on some path"
	for i := 0; i < n; i++ {
		c.mu.Unlock()
		return
	}
}

var errFixture = errors.New("fixture failure")
