// Package spanend holds the golden cases for the spanend analyzer.
package spanend

import (
	"context"

	"udmfixture/internal/obs"
)

// Good is the required idiom: bind both results, defer End immediately.
func Good(ctx context.Context) {
	ctx, sp := obs.StartSpan(ctx, "fixture.Good")
	defer sp.End()
	sp.Attr("k", 1)
	_ = ctx
}

// GoodInCase shows the idiom inside a switch case body.
func GoodInCase(ctx context.Context, mode int) {
	switch mode {
	case 1:
		ctx, sp := obs.StartSpan(ctx, "fixture.Case")
		defer sp.End()
		_ = ctx
	}
}

// DroppedSpan discards the span, so nothing can ever End it.
func DroppedSpan(ctx context.Context) context.Context {
	ctx, _ = obs.StartSpan(ctx, "fixture.Dropped") // want "result must be bound"
	return ctx
}

// ExpressionUse never binds the span at all.
func ExpressionUse(ctx context.Context) {
	handle(obs.StartSpan(ctx, "fixture.Expr")) // want "result must be bound"
}

func handle(ctx context.Context, sp *obs.Span) { sp.End() }

// LateEnd separates the defer from the start: the statement in between
// can return or panic with the span still open.
func LateEnd(ctx context.Context) {
	ctx, sp := obs.StartSpan(ctx, "fixture.Late") // want "must be ended by `defer sp.End\\(\\)` immediately"
	_ = ctx
	defer sp.End()
}

// ManualEnd ends the span without defer: every early return leaks it.
func ManualEnd(ctx context.Context, fail bool) error {
	ctx, sp := obs.StartSpan(ctx, "fixture.Manual") // want "must be ended by `defer sp.End\\(\\)` immediately"
	_ = ctx
	if fail {
		return errFail
	}
	sp.End()
	return nil
}

// WrongSpan defers End on a different span than the one just started.
func WrongSpan(ctx context.Context) {
	_, outer := obs.StartSpan(ctx, "fixture.Outer")
	defer outer.End()
	_, inner := obs.StartSpan(ctx, "fixture.Inner") // want "must be ended by `defer inner.End\\(\\)` immediately"
	defer outer.End()
	_ = inner
}

var errFail = errorString("fail")

type errorString string

func (e errorString) Error() string { return string(e) }
