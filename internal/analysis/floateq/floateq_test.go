package floateq_test

import (
	"testing"

	"udm/internal/analysis/analysistest"
	"udm/internal/analysis/floateq"
)

func TestFloateq(t *testing.T) {
	analysistest.Run(t, "../testdata/fixture", floateq.Analyzer, "udmfixture/floateq")
}
