// Package floateq flags == and != between computed floating-point
// values.
//
// The density pipeline is floating-point end to end, and exact
// equality between two computed floats is almost never the intended
// predicate: `kde.At(x) == grid.At(x)` holds or fails depending on
// summation order, FMA contraction, and -accuracy mode. The durable
// comparison is an epsilon band: math.Abs(a-b) <= eps (internal/num
// owns the project's tolerances).
//
// Two idioms are deliberately exempt, both load-bearing in this
// repository:
//
//   - comparison against a compile-time constant: `o.Epsilon != 0`,
//     `w == 1.0` — sentinel and flag checks on values that were
//     assigned, not computed, are exact by construction;
//   - self-comparison `x != x`, the stdlib-sanctioned NaN probe.
package floateq

import (
	"go/ast"
	"go/token"
	"go/types"

	"udm/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "floateq",
	Doc: "forbid == and != between computed float values: rounding makes exact equality flaky — " +
		"compare within an epsilon (math.Abs(a-b) <= eps); constant sentinels and x != x NaN probes are exempt",
	Run: run,
}

func run(pass *analysis.Pass) error {
	analysis.Preorder(pass.Files, func(n ast.Node) {
		bin, ok := n.(*ast.BinaryExpr)
		if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
			return
		}
		if !isFloat(pass.TypesInfo.TypeOf(bin.X)) || !isFloat(pass.TypesInfo.TypeOf(bin.Y)) {
			return
		}
		// Constant operands are sentinels, not computed values.
		if isConst(pass.TypesInfo, bin.X) || isConst(pass.TypesInfo, bin.Y) {
			return
		}
		// x != x is the NaN probe.
		if types.ExprString(ast.Unparen(bin.X)) == types.ExprString(ast.Unparen(bin.Y)) {
			return
		}
		pass.Reportf(bin.Pos(), "%s between computed float values is rounding-sensitive: compare within an epsilon (math.Abs(a-b) <= eps)", bin.Op)
	})
	return nil
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}
