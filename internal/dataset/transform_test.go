package dataset

import "testing"

func TestConcat(t *testing.T) {
	a := small(t)
	b := small(t)
	out, err := a.Concat(b)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 12 {
		t.Fatalf("Len = %d", out.Len())
	}
	// Deep copy: mutating output leaves inputs alone.
	out.X[0][0] = 99
	if a.X[0][0] == 99 {
		t.Fatal("Concat aliases inputs")
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConcatErrors(t *testing.T) {
	a := small(t)
	other := New("z", "b")
	_ = other.Append([]float64{1, 2}, []float64{0, 0}, 0)
	if _, err := a.Concat(other); err == nil {
		t.Error("mismatched names accepted")
	}
	one := New("a")
	_ = one.Append([]float64{1}, nil, 0)
	if _, err := a.Concat(one); err == nil {
		t.Error("mismatched dims accepted")
	}
	noErr := New("a", "b")
	_ = noErr.Append([]float64{1, 2}, nil, 0)
	if _, err := a.Concat(noErr); err == nil {
		t.Error("error/error-free mix accepted")
	}
}

func TestConcatMergesClassNames(t *testing.T) {
	a := small(t)
	a.ClassNames = []string{"x"}
	b := small(t)
	b.ClassNames = []string{"p", "q"}
	out, err := a.Concat(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.ClassNames) != 2 || out.ClassNames[0] != "x" || out.ClassNames[1] != "q" {
		t.Fatalf("merged class names %v", out.ClassNames)
	}
}

func TestFilter(t *testing.T) {
	d := small(t)
	out := d.Filter(func(i int) bool { return d.Labels[i] == 1 })
	if out.Len() != 3 {
		t.Fatalf("Len = %d", out.Len())
	}
	for _, l := range out.Labels {
		if l != 1 {
			t.Fatal("filter kept wrong rows")
		}
	}
	empty := d.Filter(func(i int) bool { return false })
	if empty.Len() != 0 {
		t.Fatal("empty filter kept rows")
	}
}

func TestDropColumns(t *testing.T) {
	d := small(t)
	out, err := d.DropColumns("a")
	if err != nil {
		t.Fatal(err)
	}
	if out.Dims() != 1 || out.Names[0] != "b" {
		t.Fatalf("names %v", out.Names)
	}
	if out.X[2][0] != d.X[2][1] {
		t.Fatal("wrong column kept")
	}
	if _, err := d.DropColumns("nope"); err == nil {
		t.Error("unknown column accepted")
	}
	if _, err := d.DropColumns("a", "b"); err == nil {
		t.Error("dropping all columns accepted")
	}
}

func TestAddColumn(t *testing.T) {
	d := small(t)
	vals := []float64{1, 2, 3, 4, 5, 6}
	errs := []float64{0.1, 0.1, 0.1, 0.1, 0.1, 0.1}
	out, err := d.AddColumn("c", vals, errs)
	if err != nil {
		t.Fatal(err)
	}
	if out.Dims() != 3 || out.X[4][2] != 5 || out.Err[4][2] != 0.1 {
		t.Fatalf("added column wrong: %v", out.X[4])
	}
	// Original untouched.
	if d.Dims() != 2 {
		t.Fatal("AddColumn mutated input")
	}
	// Validation paths.
	if _, err := d.AddColumn("", vals, errs); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := d.AddColumn("a", vals, errs); err == nil {
		t.Error("duplicate name accepted")
	}
	if _, err := d.AddColumn("c", vals[:2], errs); err == nil {
		t.Error("short values accepted")
	}
	if _, err := d.AddColumn("c", vals, nil); err == nil {
		t.Error("missing errors accepted on error-bearing dataset")
	}
	noErr := New("x")
	_ = noErr.Append([]float64{1}, nil, Unlabeled)
	if _, err := noErr.AddColumn("y", []float64{2}, []float64{0.5}); err == nil {
		t.Error("errors accepted on error-free dataset")
	}
}

func TestColumnHelpers(t *testing.T) {
	d := small(t)
	j, err := d.ColumnIndex("b")
	if err != nil || j != 1 {
		t.Fatalf("ColumnIndex = %d, %v", j, err)
	}
	if _, err := d.ColumnIndex("zz"); err == nil {
		t.Error("unknown column accepted")
	}
	col := d.Column(0)
	if len(col) != 6 || col[3] != 5 {
		t.Fatalf("Column = %v", col)
	}
	lo, hi := d.MinMax()
	if lo[0] != 0 || hi[0] != 6 || lo[1] != 0 || hi[1] != 6 {
		t.Fatalf("MinMax = %v, %v", lo, hi)
	}
}
