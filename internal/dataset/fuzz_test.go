package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV feeds arbitrary bytes to the CSV parser: it must never
// panic, and anything it accepts must validate and round-trip.
func FuzzReadCSV(f *testing.F) {
	seeds := []string{
		"a,b,class\n1,2,0\n3,4,1\n",
		"a,a±,class\n1,0.5,0\n",
		"a,b\n1,2\n",
		"x\n1\n2\n3\n",
		"a,a±\n1,0.1\n-2,0\n",
		"",
		"a,b,class\n1,2\n",           // ragged
		"a,a±\nnan,1\n",              // NaN value
		"a,a±\n1,-1\n",               // negative error
		"class\n0\n",                 // labels only
		"a,b,class\n1e308,2,0\n",     // near-overflow
		"a\ttab,b\n1,2\n",            // odd header
		"\"a,b\",c\n1,2\n",           // quoted comma header
		"a,class,class\n1,0,0\n",     // duplicate label column
		"a±,a\n0.1,1\n",              // error column first
		"a,b,class\n0,0,-5\n0,0,2\n", // odd labels
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		ds, err := ReadCSV(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := ds.Validate(); err != nil {
			t.Fatalf("accepted dataset fails validation: %v\ninput: %q", err, data)
		}
		var buf bytes.Buffer
		if err := ds.WriteCSV(&buf); err != nil {
			t.Fatalf("accepted dataset fails to serialize: %v", err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			// Column names from hostile input may collide with our own
			// conventions (e.g. a value column literally named "class" or
			// ending in the error suffix). Those can't round-trip; accept.
			if strings.Contains(err.Error(), "dataset:") {
				return
			}
			t.Fatalf("round trip failed: %v", err)
		}
		if back.Len() != ds.Len() {
			t.Fatalf("round trip changed row count %d -> %d", ds.Len(), back.Len())
		}
	})
}
