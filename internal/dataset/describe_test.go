package dataset

import (
	"bytes"
	"strings"
	"testing"
)

func TestDescribe(t *testing.T) {
	d := small(t)
	d.ClassNames = []string{"low", "high"}
	var buf bytes.Buffer
	if err := d.Describe(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"dimension", "mean ψ", "a", "b", "low", "high", "50.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("describe output missing %q:\n%s", want, out)
		}
	}
}

func TestDescribeEmptyAndUnlabeled(t *testing.T) {
	var buf bytes.Buffer
	if err := New("x").Describe(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "empty") {
		t.Error("empty dataset not reported")
	}
	d := New("x")
	_ = d.Append([]float64{1}, nil, Unlabeled)
	_ = d.Append([]float64{2}, nil, 0)
	buf.Reset()
	if err := d.Describe(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "(unlabeled)") {
		t.Errorf("unlabeled rows not reported:\n%s", buf.String())
	}
	// No error column when the dataset has no errors.
	if strings.Contains(buf.String(), "mean ψ") {
		t.Error("phantom error column")
	}
}

func TestDescribeTruncatesLongNames(t *testing.T) {
	d := New("this_is_a_very_long_dimension_name_indeed")
	_ = d.Append([]float64{1}, nil, Unlabeled)
	var buf bytes.Buffer
	if err := d.Describe(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "…") {
		t.Error("long name not truncated")
	}
}
