package dataset

import (
	"fmt"

	"udm/internal/num"
	"udm/internal/udmerr"
)

// Concat appends all rows of other to a copy of d. The datasets must
// agree on dimension names and on whether they carry error matrices;
// class names are merged by index (d's take precedence).
func (d *Dataset) Concat(other *Dataset) (*Dataset, error) {
	if d.Dims() != other.Dims() {
		return nil, fmt.Errorf("dataset: concat %d-dim with %d-dim: %w", d.Dims(), other.Dims(), udmerr.ErrDimensionMismatch)
	}
	for j := range d.Names {
		if d.Names[j] != other.Names[j] {
			return nil, fmt.Errorf("dataset: concat dimension %d named %q vs %q: %w", j, d.Names[j], other.Names[j], udmerr.ErrDimensionMismatch)
		}
	}
	if d.Len() > 0 && other.Len() > 0 && d.HasErrors() != other.HasErrors() {
		return nil, fmt.Errorf("dataset: concat mixes error-bearing and error-free data: %w", udmerr.ErrNoErrors)
	}
	out := d.Clone()
	if len(other.ClassNames) > len(out.ClassNames) {
		merged := append([]string(nil), other.ClassNames...)
		copy(merged, out.ClassNames)
		out.ClassNames = merged
	}
	for i := 0; i < other.Len(); i++ {
		if err := out.Append(other.X[i], other.ErrRow(i), other.Label(i)); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Filter returns the rows for which keep returns true (deep-copied).
func (d *Dataset) Filter(keep func(i int) bool) *Dataset {
	var idx []int
	for i := 0; i < d.Len(); i++ {
		if keep(i) {
			idx = append(idx, i)
		}
	}
	return d.Subset(idx)
}

// DropColumns returns a copy without the named dimensions.
func (d *Dataset) DropColumns(names ...string) (*Dataset, error) {
	drop := map[string]bool{}
	for _, n := range names {
		found := false
		for _, have := range d.Names {
			if have == n {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("dataset: no column named %q: %w", n, udmerr.ErrBadOption)
		}
		drop[n] = true
	}
	var keep []int
	for j, n := range d.Names {
		if !drop[n] {
			keep = append(keep, j)
		}
	}
	if len(keep) == 0 {
		return nil, fmt.Errorf("dataset: dropping every column: %w", udmerr.ErrBadOption)
	}
	return d.Project(keep)
}

// AddColumn returns a copy with one more dimension holding the given
// values (and errors; errs may be nil only when the dataset has no error
// matrix). Lengths must match the row count.
func (d *Dataset) AddColumn(name string, values, errs []float64) (*Dataset, error) {
	if name == "" {
		return nil, fmt.Errorf("dataset: empty column name: %w", udmerr.ErrBadOption)
	}
	for _, have := range d.Names {
		if have == name {
			return nil, fmt.Errorf("dataset: column %q already exists: %w", name, udmerr.ErrBadOption)
		}
	}
	if len(values) != d.Len() {
		return nil, fmt.Errorf("dataset: %d values for %d rows: %w", len(values), d.Len(), udmerr.ErrDimensionMismatch)
	}
	if d.HasErrors() && errs == nil {
		return nil, fmt.Errorf("dataset: error-bearing dataset needs errors for the new column: %w", udmerr.ErrNoErrors)
	}
	if !d.HasErrors() && errs != nil && d.Len() > 0 {
		return nil, fmt.Errorf("dataset: error column added to error-free dataset: %w", udmerr.ErrNoErrors)
	}
	if errs != nil && len(errs) != d.Len() {
		return nil, fmt.Errorf("dataset: %d errors for %d rows: %w", len(errs), d.Len(), udmerr.ErrDimensionMismatch)
	}
	out := d.Clone()
	out.Names = append(out.Names, name)
	for i := range out.X {
		out.X[i] = append(out.X[i], values[i])
		if errs != nil {
			out.Err[i] = append(out.Err[i], errs[i])
		}
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// ColumnIndex returns the index of the named dimension, or an error.
func (d *Dataset) ColumnIndex(name string) (int, error) {
	for j, have := range d.Names {
		if have == name {
			return j, nil
		}
	}
	return 0, fmt.Errorf("dataset: no column named %q: %w", name, udmerr.ErrBadOption)
}

// Column returns a copy of one dimension's values.
func (d *Dataset) Column(j int) []float64 {
	out := make([]float64, d.Len())
	for i := range d.X {
		out[i] = d.X[i][j]
	}
	return out
}

// MinMax returns the per-dimension value ranges.
func (d *Dataset) MinMax() (lo, hi []float64) {
	lo = make([]float64, d.Dims())
	hi = make([]float64, d.Dims())
	for j := 0; j < d.Dims(); j++ {
		lo[j], hi[j] = num.MinMax(d.Column(j))
	}
	return lo, hi
}
