package dataset

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	d := small(t)
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != d.Len() || got.Dims() != d.Dims() {
		t.Fatalf("shape changed: %dx%d -> %dx%d", d.Len(), d.Dims(), got.Len(), got.Dims())
	}
	for i := range d.X {
		for j := range d.X[i] {
			if got.X[i][j] != d.X[i][j] || got.Err[i][j] != d.Err[i][j] {
				t.Fatalf("row %d col %d changed", i, j)
			}
		}
		if got.Labels[i] != d.Labels[i] {
			t.Fatalf("label %d changed", i)
		}
	}
}

func TestCSVRoundTripNoErrorsNoLabels(t *testing.T) {
	d := New("v")
	_ = d.Append([]float64{1.5}, nil, Unlabeled)
	_ = d.Append([]float64{-2.5}, nil, Unlabeled)
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.HasErrors() || got.Labels != nil {
		t.Fatal("phantom errors or labels appeared")
	}
	if got.X[1][0] != -2.5 {
		t.Fatalf("value changed: %v", got.X[1][0])
	}
}

func TestCSVFileRoundTrip(t *testing.T) {
	d := small(t)
	path := filepath.Join(t.TempDir(), "d.csv")
	if err := d.SaveCSV(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != d.Len() {
		t.Fatal("file round trip lost rows")
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"no value columns", "class\n1\n"},
		{"mismatched error columns", "a,b,a±\n1,2,0.1\n"},
		{"orphan error column", "a,z±\n1,0.1\n"},
		{"bad float", "a\nxyz\n"},
		{"bad label", "a,class\n1,zz\n"},
		{"negative error", "a,a±\n1,-0.5\n"},
		{"ragged row", "a,b\n1\n"},
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestLoadCSVMissingFile(t *testing.T) {
	if _, err := LoadCSV(filepath.Join(t.TempDir(), "nope.csv")); err == nil {
		t.Fatal("missing file accepted")
	}
}
