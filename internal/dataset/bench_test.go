package dataset

import (
	"bytes"
	"testing"

	"udm/internal/rng"
)

func benchDataset(n, d int) *Dataset {
	names := make([]string, d)
	for j := range names {
		names[j] = string(rune('a' + j))
	}
	ds := New(names...)
	r := rng.New(1)
	row := make([]float64, d)
	er := make([]float64, d)
	for i := 0; i < n; i++ {
		for j := range row {
			row[j] = r.Norm(0, 1)
			er[j] = 0.1
		}
		if err := ds.Append(row, er, i%3); err != nil {
			panic(err)
		}
	}
	return ds
}

func BenchmarkWriteCSV(b *testing.B) {
	ds := benchDataset(1000, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := ds.WriteCSV(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadCSV(b *testing.B) {
	ds := benchDataset(1000, 10)
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadCSV(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStratifiedSplit(b *testing.B) {
	ds := benchDataset(5000, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ds.StratifiedSplit(0.7, rng.New(int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStandardize(b *testing.B) {
	ds := benchDataset(5000, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds.Clone().Standardize()
	}
}
