// Package dataset provides the tabular data model used throughout the
// library: numeric records with an optional per-entry error matrix
// ψ_j(X_i) (one standard error per row and dimension, following the
// paper's most general error assumption), class labels, CSV persistence,
// splitting, projection and summary statistics.
package dataset

import (
	"fmt"
	"math"
	"sort"

	"udm/internal/num"
	"udm/internal/rng"
	"udm/internal/udmerr"
)

// Unlabeled is the label value for rows without a class.
const Unlabeled = -1

// Dataset is an N×d table of float64 values with optional per-entry
// standard errors and optional integer class labels.
//
// Invariants (checked by Validate):
//   - every row of X has len(Names) entries;
//   - Err is nil (no error information: all ψ = 0) or has the same shape
//     as X with non-negative, finite entries;
//   - Labels is nil (unlabeled data) or has one entry per row, each either
//     Unlabeled or in [0, NumClasses).
type Dataset struct {
	// Names holds one name per dimension.
	Names []string
	// X holds the record values, one row per record.
	X [][]float64
	// Err holds the per-entry standard errors ψ_j(X_i); nil means all-zero.
	Err [][]float64
	// Labels holds one class label per row; nil means unlabeled data.
	Labels []int
	// ClassNames optionally names the classes; may be nil.
	ClassNames []string
}

// New returns a dataset over the given dimension names with no rows.
func New(names ...string) *Dataset {
	return &Dataset{Names: append([]string(nil), names...)}
}

// Len returns the number of rows.
func (d *Dataset) Len() int { return len(d.X) }

// Dims returns the number of dimensions.
func (d *Dataset) Dims() int { return len(d.Names) }

// NumClasses returns one more than the largest label present, or
// len(ClassNames) if that is larger. Unlabeled rows are ignored.
func (d *Dataset) NumClasses() int {
	k := len(d.ClassNames)
	for _, l := range d.Labels {
		if l+1 > k {
			k = l + 1
		}
	}
	return k
}

// HasErrors reports whether the dataset carries a non-nil error matrix.
func (d *Dataset) HasErrors() bool { return d.Err != nil }

// ErrRow returns the error row for record i, or nil when the dataset has
// no error information (meaning all ψ are zero).
func (d *Dataset) ErrRow(i int) []float64 {
	if d.Err == nil {
		return nil
	}
	return d.Err[i]
}

// Label returns the label of row i, or Unlabeled when the dataset has no
// labels.
func (d *Dataset) Label(i int) int {
	if d.Labels == nil {
		return Unlabeled
	}
	return d.Labels[i]
}

// Append adds one record. err may be nil only if the dataset has no error
// matrix yet or the call site is building an error-free dataset; mixing
// nil and non-nil error rows is rejected.
func (d *Dataset) Append(x []float64, err []float64, label int) error {
	if len(x) != d.Dims() {
		return fmt.Errorf("dataset: record has %d values, want %d: %w", len(x), d.Dims(), udmerr.ErrDimensionMismatch)
	}
	if err != nil && len(err) != d.Dims() {
		return fmt.Errorf("dataset: error row has %d values, want %d: %w", len(err), d.Dims(), udmerr.ErrDimensionMismatch)
	}
	if err == nil && d.Err != nil {
		return fmt.Errorf("dataset: nil error row appended to dataset with errors: %w", udmerr.ErrNoErrors)
	}
	if err != nil && d.Err == nil && len(d.X) > 0 {
		return fmt.Errorf("dataset: error row appended to dataset without errors: %w", udmerr.ErrNoErrors)
	}
	d.X = append(d.X, num.Clone(x))
	if err != nil {
		d.Err = append(d.Err, num.Clone(err))
	}
	if d.Labels != nil || label != Unlabeled {
		for len(d.Labels) < len(d.X)-1 {
			d.Labels = append(d.Labels, Unlabeled)
		}
		d.Labels = append(d.Labels, label)
	}
	return nil
}

// Validate checks the structural invariants and value sanity (finite
// values, non-negative finite errors, labels in range).
func (d *Dataset) Validate() error {
	dd := d.Dims()
	if d.Err != nil && len(d.Err) != len(d.X) {
		return fmt.Errorf("dataset: %d error rows for %d records: %w", len(d.Err), len(d.X), udmerr.ErrDimensionMismatch)
	}
	if d.Labels != nil && len(d.Labels) != len(d.X) {
		return fmt.Errorf("dataset: %d labels for %d records: %w", len(d.Labels), len(d.X), udmerr.ErrDimensionMismatch)
	}
	for i, row := range d.X {
		if len(row) != dd {
			return fmt.Errorf("dataset: row %d has %d values, want %d: %w", i, len(row), dd, udmerr.ErrDimensionMismatch)
		}
		if !num.AllFinite(row) {
			return fmt.Errorf("dataset: row %d contains NaN or Inf: %w", i, udmerr.ErrBadData)
		}
		if d.Err != nil {
			er := d.Err[i]
			if len(er) != dd {
				return fmt.Errorf("dataset: error row %d has %d values, want %d: %w", i, len(er), dd, udmerr.ErrDimensionMismatch)
			}
			for j, e := range er {
				if math.IsNaN(e) || math.IsInf(e, 0) || e < 0 {
					return fmt.Errorf("dataset: error[%d][%d] = %v is not a valid standard error: %w", i, j, e, udmerr.ErrBadData)
				}
			}
		}
	}
	k := d.NumClasses()
	for i, l := range d.Labels {
		if l != Unlabeled && (l < 0 || l >= k) {
			return fmt.Errorf("dataset: label[%d] = %d out of range: %w", i, l, udmerr.ErrBadData)
		}
	}
	return nil
}

// Clone returns a deep copy.
func (d *Dataset) Clone() *Dataset {
	out := &Dataset{
		Names:      append([]string(nil), d.Names...),
		ClassNames: append([]string(nil), d.ClassNames...),
	}
	if d.X != nil {
		out.X = make([][]float64, len(d.X))
		for i, r := range d.X {
			out.X[i] = num.Clone(r)
		}
	}
	if d.Err != nil {
		out.Err = make([][]float64, len(d.Err))
		for i, r := range d.Err {
			out.Err[i] = num.Clone(r)
		}
	}
	if d.Labels != nil {
		out.Labels = append([]int(nil), d.Labels...)
	}
	return out
}

// WithZeroError returns a copy of d whose error matrix is dropped, i.e.
// the same records under the "assume all entries are exact" view used by
// the paper's non-error-adjusted comparator.
func (d *Dataset) WithZeroError() *Dataset {
	out := d.Clone()
	out.Err = nil
	return out
}

// Subset returns a new dataset holding the rows at idx (deep-copied).
func (d *Dataset) Subset(idx []int) *Dataset {
	out := &Dataset{
		Names:      append([]string(nil), d.Names...),
		ClassNames: append([]string(nil), d.ClassNames...),
	}
	out.X = make([][]float64, len(idx))
	for i, j := range idx {
		out.X[i] = num.Clone(d.X[j])
	}
	if d.Err != nil {
		out.Err = make([][]float64, len(idx))
		for i, j := range idx {
			out.Err[i] = num.Clone(d.Err[j])
		}
	}
	if d.Labels != nil {
		out.Labels = make([]int, len(idx))
		for i, j := range idx {
			out.Labels[i] = d.Labels[j]
		}
	}
	return out
}

// Project returns a new dataset restricted to the dimensions in dims
// (deep-copied, in the given order).
func (d *Dataset) Project(dims []int) (*Dataset, error) {
	for _, j := range dims {
		if j < 0 || j >= d.Dims() {
			return nil, fmt.Errorf("dataset: projection dimension %d out of range [0,%d): %w", j, d.Dims(), udmerr.ErrDimensionMismatch)
		}
	}
	out := &Dataset{
		ClassNames: append([]string(nil), d.ClassNames...),
	}
	out.Names = make([]string, len(dims))
	for i, j := range dims {
		out.Names[i] = d.Names[j]
	}
	out.X = make([][]float64, len(d.X))
	for i, r := range d.X {
		out.X[i] = num.Gather(r, dims)
	}
	if d.Err != nil {
		out.Err = make([][]float64, len(d.Err))
		for i, r := range d.Err {
			out.Err[i] = num.Gather(r, dims)
		}
	}
	if d.Labels != nil {
		out.Labels = append([]int(nil), d.Labels...)
	}
	return out, nil
}

// ByClass partitions the labeled rows into one dataset per class
// (index = label). Unlabeled rows are dropped.
func (d *Dataset) ByClass() []*Dataset {
	k := d.NumClasses()
	buckets := make([][]int, k)
	for i, l := range d.Labels {
		if l >= 0 {
			buckets[l] = append(buckets[l], i)
		}
	}
	out := make([]*Dataset, k)
	for c, idx := range buckets {
		out[c] = d.Subset(idx)
	}
	return out
}

// ColumnStats returns per-dimension mean and population standard
// deviation of the values in X.
func (d *Dataset) ColumnStats() (means, stds []float64) {
	ms := num.ColumnMoments(d.X)
	means = make([]float64, len(ms))
	stds = make([]float64, len(ms))
	for j := range ms {
		means[j] = ms[j].Mean()
		stds[j] = ms[j].StdDev()
	}
	return means, stds
}

// Standardize z-scores every column in place (subtract mean, divide by
// std) and scales error entries by the same per-column factor, preserving
// the error-to-value relationship. Columns with zero variance are left
// centered but unscaled. It returns the means and stds that were applied.
func (d *Dataset) Standardize() (means, stds []float64) {
	means, stds = d.ColumnStats()
	for i, row := range d.X {
		for j := range row {
			row[j] -= means[j]
			if stds[j] > 0 {
				row[j] /= stds[j]
			}
		}
		if d.Err != nil {
			for j := range d.Err[i] {
				if stds[j] > 0 {
					d.Err[i][j] /= stds[j]
				}
			}
		}
	}
	return means, stds
}

// Split shuffles the row indices with r and returns train/test subsets
// with ceil(trainFrac*N) training rows. trainFrac must be in (0, 1).
func (d *Dataset) Split(trainFrac float64, r *rng.Source) (train, test *Dataset, err error) {
	if trainFrac <= 0 || trainFrac >= 1 {
		return nil, nil, fmt.Errorf("dataset: trainFrac %v out of (0,1): %w", trainFrac, udmerr.ErrBadOption)
	}
	idx := r.Perm(d.Len())
	n := int(math.Ceil(trainFrac * float64(d.Len())))
	return d.Subset(idx[:n]), d.Subset(idx[n:]), nil
}

// StratifiedSplit splits preserving per-class proportions. Unlabeled rows
// are distributed like a class of their own.
func (d *Dataset) StratifiedSplit(trainFrac float64, r *rng.Source) (train, test *Dataset, err error) {
	if trainFrac <= 0 || trainFrac >= 1 {
		return nil, nil, fmt.Errorf("dataset: trainFrac %v out of (0,1): %w", trainFrac, udmerr.ErrBadOption)
	}
	groups := map[int][]int{}
	for i := 0; i < d.Len(); i++ {
		l := d.Label(i)
		groups[l] = append(groups[l], i)
	}
	// Iterate classes in sorted order: map order would make the split
	// nondeterministic even under a fixed random source.
	keys := make([]int, 0, len(groups))
	for l := range groups {
		keys = append(keys, l)
	}
	sort.Ints(keys)
	var trainIdx, testIdx []int
	for _, l := range keys {
		idx := groups[l]
		r.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		n := int(math.Ceil(trainFrac * float64(len(idx))))
		trainIdx = append(trainIdx, idx[:n]...)
		testIdx = append(testIdx, idx[n:]...)
	}
	// Shuffle the merged splits so class blocks don't stay contiguous.
	r.Shuffle(len(trainIdx), func(i, j int) { trainIdx[i], trainIdx[j] = trainIdx[j], trainIdx[i] })
	r.Shuffle(len(testIdx), func(i, j int) { testIdx[i], testIdx[j] = testIdx[j], testIdx[i] })
	return d.Subset(trainIdx), d.Subset(testIdx), nil
}

// Fold is one train/test division of a k-fold split.
type Fold struct {
	Train *Dataset
	Test  *Dataset
}

// KFold returns k folds with shuffled rows. k must be in [2, N].
func (d *Dataset) KFold(k int, r *rng.Source) ([]Fold, error) {
	if k < 2 || k > d.Len() {
		return nil, fmt.Errorf("dataset: k=%d folds for %d rows: %w", k, d.Len(), udmerr.ErrBadOption)
	}
	idx := r.Perm(d.Len())
	folds := make([]Fold, k)
	for f := 0; f < k; f++ {
		lo := f * d.Len() / k
		hi := (f + 1) * d.Len() / k
		test := idx[lo:hi]
		train := make([]int, 0, d.Len()-len(test))
		train = append(train, idx[:lo]...)
		train = append(train, idx[hi:]...)
		folds[f] = Fold{Train: d.Subset(train), Test: d.Subset(test)}
	}
	return folds, nil
}
