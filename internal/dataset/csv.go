package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"udm/internal/udmerr"
)

// CSV layout: one column per dimension plus, when the dataset carries
// error information, one "<name>±" column per dimension holding the
// per-entry standard error, plus an optional trailing "class" column.
//
// The "±" suffix (and the errSuffix constant) was chosen over "_err" so
// value columns whose real-world names end in "_err" cannot collide.

const (
	errSuffix   = "±"
	labelColumn = "class"
)

// WriteCSV writes the dataset to w.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string(nil), d.Names...)
	if d.Err != nil {
		for _, n := range d.Names {
			header = append(header, n+errSuffix)
		}
	}
	if d.Labels != nil {
		header = append(header, labelColumn)
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("dataset: writing CSV header: %w", err)
	}
	rec := make([]string, 0, len(header))
	for i, row := range d.X {
		rec = rec[:0]
		for _, x := range row {
			rec = append(rec, strconv.FormatFloat(x, 'g', -1, 64))
		}
		if d.Err != nil {
			for _, e := range d.Err[i] {
				rec = append(rec, strconv.FormatFloat(e, 'g', -1, 64))
			}
		}
		if d.Labels != nil {
			rec = append(rec, strconv.Itoa(d.Labels[i]))
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataset: writing CSV row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// SaveCSV writes the dataset to the named file.
func (d *Dataset) SaveCSV(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	if err := d.WriteCSV(f); err != nil {
		return err
	}
	return f.Close()
}

// ReadCSV parses a dataset from r using the layout produced by WriteCSV:
// value columns, then optional "<name>±" error columns, then an optional
// "class" label column.
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("dataset: CSV has no header: %w", udmerr.ErrBadData)
	}
	header := records[0]

	// Identify column roles. Empty and duplicate names are rejected: an
	// empty name cannot survive a write/read cycle (encoding/csv emits a
	// blank line the reader then skips) and duplicates make the error-
	// column pairing ambiguous.
	labelCol := -1
	var valueCols []int
	errCols := map[string]int{} // value name -> error column
	seen := map[string]bool{}
	for j, name := range header {
		if name == "" || name == errSuffix {
			return nil, fmt.Errorf("dataset: column %d has an empty name: %w", j, udmerr.ErrBadData)
		}
		if seen[name] {
			return nil, fmt.Errorf("dataset: duplicate column name %q: %w", name, udmerr.ErrBadData)
		}
		seen[name] = true
		switch {
		case name == labelColumn:
			labelCol = j
		case strings.HasSuffix(name, errSuffix):
			errCols[strings.TrimSuffix(name, errSuffix)] = j
		default:
			valueCols = append(valueCols, j)
		}
	}
	if len(valueCols) == 0 {
		return nil, fmt.Errorf("dataset: CSV has no value columns: %w", udmerr.ErrBadData)
	}
	hasErr := len(errCols) > 0
	if hasErr && len(errCols) != len(valueCols) {
		return nil, fmt.Errorf("dataset: %d error columns for %d value columns: %w", len(errCols), len(valueCols), udmerr.ErrBadData)
	}

	d := &Dataset{}
	errIdx := make([]int, len(valueCols))
	for i, j := range valueCols {
		name := header[j]
		d.Names = append(d.Names, name)
		if hasErr {
			k, ok := errCols[name]
			if !ok {
				return nil, fmt.Errorf("dataset: no error column for %q: %w", name, udmerr.ErrBadData)
			}
			errIdx[i] = k
		}
	}
	if labelCol != -1 {
		d.Labels = []int{}
	}
	for rowNum, rec := range records[1:] {
		if len(rec) != len(header) {
			return nil, fmt.Errorf("dataset: row %d has %d fields, want %d: %w", rowNum+1, len(rec), len(header), udmerr.ErrBadData)
		}
		row := make([]float64, len(valueCols))
		for i, j := range valueCols {
			row[i], err = strconv.ParseFloat(rec[j], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: row %d column %q: %w: %w", rowNum+1, header[j], err, udmerr.ErrBadData)
			}
		}
		d.X = append(d.X, row)
		if hasErr {
			er := make([]float64, len(valueCols))
			for i, j := range errIdx {
				er[i], err = strconv.ParseFloat(rec[j], 64)
				if err != nil {
					return nil, fmt.Errorf("dataset: row %d column %q: %w: %w", rowNum+1, header[j], err, udmerr.ErrBadData)
				}
			}
			d.Err = append(d.Err, er)
		}
		if labelCol != -1 {
			l, err := strconv.Atoi(rec[labelCol])
			if err != nil {
				return nil, fmt.Errorf("dataset: row %d label: %w: %w", rowNum+1, err, udmerr.ErrBadData)
			}
			d.Labels = append(d.Labels, l)
		}
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// LoadCSV reads a dataset from the named file.
func LoadCSV(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	return ReadCSV(f)
}
