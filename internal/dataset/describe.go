package dataset

import (
	"fmt"
	"io"
	"strings"

	"udm/internal/num"
)

// Describe writes a per-dimension summary table (count, mean, std, min,
// quartiles, max, mean recorded error) plus the class distribution —
// the first thing to look at when picking error models and thresholds.
func (d *Dataset) Describe(w io.Writer) error {
	if d.Len() == 0 {
		_, err := fmt.Fprintln(w, "empty dataset")
		return err
	}
	header := fmt.Sprintf("%-18s %7s %10s %10s %10s %10s %10s %10s %10s",
		"dimension", "count", "mean", "std", "min", "p25", "p50", "p75", "max")
	if d.HasErrors() {
		header += fmt.Sprintf(" %10s", "mean ψ")
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", len(header))); err != nil {
		return err
	}
	col := make([]float64, d.Len())
	for j := 0; j < d.Dims(); j++ {
		for i := range d.X {
			col[i] = d.X[i][j]
		}
		q := num.Quantiles(col, 0, 0.25, 0.5, 0.75, 1)
		var m num.Moments
		for _, v := range col {
			m.Add(v)
		}
		line := fmt.Sprintf("%-18s %7d %10.4g %10.4g %10.4g %10.4g %10.4g %10.4g %10.4g",
			truncateName(d.Names[j], 18), d.Len(), m.Mean(), m.StdDev(),
			q[0], q[1], q[2], q[3], q[4])
		if d.HasErrors() {
			var e num.Moments
			for i := range d.Err {
				e.Add(d.Err[i][j])
			}
			line += fmt.Sprintf(" %10.4g", e.Mean())
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	if d.Labels != nil {
		counts := map[int]int{}
		for _, l := range d.Labels {
			counts[l]++
		}
		if _, err := fmt.Fprintln(w, "\nclass distribution:"); err != nil {
			return err
		}
		for c := 0; c < d.NumClasses(); c++ {
			if counts[c] == 0 && c >= len(d.ClassNames) {
				continue
			}
			name := fmt.Sprint(c)
			if c < len(d.ClassNames) {
				name = d.ClassNames[c]
			}
			if _, err := fmt.Fprintf(w, "  %-20s %6d (%.1f%%)\n",
				truncateName(name, 20), counts[c],
				100*float64(counts[c])/float64(d.Len())); err != nil {
				return err
			}
		}
		if counts[Unlabeled] > 0 {
			if _, err := fmt.Fprintf(w, "  %-20s %6d (%.1f%%)\n",
				"(unlabeled)", counts[Unlabeled],
				100*float64(counts[Unlabeled])/float64(d.Len())); err != nil {
				return err
			}
		}
	}
	return nil
}

func truncateName(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
