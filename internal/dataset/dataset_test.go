package dataset

import (
	"math"
	"testing"

	"udm/internal/rng"
)

// small returns a labeled 6-row, 2-dim dataset with errors.
func small(t *testing.T) *Dataset {
	t.Helper()
	d := New("a", "b")
	rows := []struct {
		x, e  []float64
		label int
	}{
		{[]float64{0, 0}, []float64{0.1, 0.2}, 0},
		{[]float64{1, 0}, []float64{0.1, 0.1}, 0},
		{[]float64{0, 1}, []float64{0.3, 0.1}, 0},
		{[]float64{5, 5}, []float64{0.2, 0.2}, 1},
		{[]float64{6, 5}, []float64{0.1, 0.4}, 1},
		{[]float64{5, 6}, []float64{0.2, 0.3}, 1},
	}
	for _, r := range rows {
		if err := d.Append(r.x, r.e, r.label); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestAppendShapeChecks(t *testing.T) {
	d := New("a", "b")
	if err := d.Append([]float64{1}, nil, 0); err == nil {
		t.Error("short record accepted")
	}
	if err := d.Append([]float64{1, 2}, []float64{0.1}, 0); err == nil {
		t.Error("short error row accepted")
	}
	if err := d.Append([]float64{1, 2}, []float64{0.1, 0.1}, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Append([]float64{1, 2}, nil, 0); err == nil {
		t.Error("nil error row accepted into dataset with errors")
	}
	d2 := New("a")
	if err := d2.Append([]float64{1}, nil, 0); err != nil {
		t.Fatal(err)
	}
	if err := d2.Append([]float64{2}, []float64{0.5}, 0); err == nil {
		t.Error("error row accepted into dataset without errors")
	}
}

func TestValidateCatchesBadValues(t *testing.T) {
	d := small(t)
	d.X[0][0] = math.NaN()
	if d.Validate() == nil {
		t.Error("NaN value passed validation")
	}
	d = small(t)
	d.Err[2][1] = -0.5
	if d.Validate() == nil {
		t.Error("negative error passed validation")
	}
	d = small(t)
	d.Err[2][1] = math.Inf(1)
	if d.Validate() == nil {
		t.Error("infinite error passed validation")
	}
	d = small(t)
	d.Labels[0] = 99
	// 99 < NumClasses would be needed to fail; NumClasses grows with label,
	// so instead break the labels length.
	d.Labels = d.Labels[:3]
	if d.Validate() == nil {
		t.Error("short label slice passed validation")
	}
}

func TestCloneIsDeep(t *testing.T) {
	d := small(t)
	c := d.Clone()
	c.X[0][0] = 42
	c.Err[0][0] = 42
	c.Labels[0] = 1
	if d.X[0][0] == 42 || d.Err[0][0] == 42 || d.Labels[0] == 1 {
		t.Fatal("Clone is shallow")
	}
}

func TestWithZeroError(t *testing.T) {
	d := small(t)
	z := d.WithZeroError()
	if z.HasErrors() {
		t.Fatal("WithZeroError kept errors")
	}
	if z.Len() != d.Len() || z.Label(0) != d.Label(0) {
		t.Fatal("WithZeroError lost rows or labels")
	}
	if z.ErrRow(0) != nil {
		t.Fatal("ErrRow should be nil")
	}
}

func TestSubsetAndProject(t *testing.T) {
	d := small(t)
	s := d.Subset([]int{3, 0})
	if s.Len() != 2 || s.X[0][0] != 5 || s.Labels[1] != 0 {
		t.Fatalf("Subset wrong: %+v", s)
	}
	p, err := d.Project([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	if p.Dims() != 1 || p.Names[0] != "b" || p.X[2][0] != 1 || p.Err[4][0] != 0.4 {
		t.Fatalf("Project wrong: %+v", p)
	}
	if _, err := d.Project([]int{2}); err == nil {
		t.Error("out-of-range projection accepted")
	}
	// Projection order is respected.
	p2, _ := d.Project([]int{1, 0})
	if p2.Names[0] != "b" || p2.X[1][1] != 1 {
		t.Fatalf("ordered projection wrong: %+v", p2)
	}
}

func TestByClass(t *testing.T) {
	d := small(t)
	parts := d.ByClass()
	if len(parts) != 2 {
		t.Fatalf("got %d classes", len(parts))
	}
	if parts[0].Len() != 3 || parts[1].Len() != 3 {
		t.Fatalf("class sizes %d,%d", parts[0].Len(), parts[1].Len())
	}
	for _, l := range parts[1].Labels {
		if l != 1 {
			t.Fatal("class partition mixed labels")
		}
	}
}

func TestColumnStatsAndStandardize(t *testing.T) {
	d := New("a")
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		if err := d.Append([]float64{v}, []float64{1}, Unlabeled); err != nil {
			t.Fatal(err)
		}
	}
	means, stds := d.ColumnStats()
	if means[0] != 5 || stds[0] != 2 {
		t.Fatalf("stats = %v, %v", means, stds)
	}
	d.Standardize()
	m2, s2 := d.ColumnStats()
	if math.Abs(m2[0]) > 1e-12 || math.Abs(s2[0]-1) > 1e-12 {
		t.Fatalf("standardized stats = %v, %v", m2, s2)
	}
	// Errors scaled by the same factor.
	if math.Abs(d.Err[0][0]-0.5) > 1e-12 {
		t.Fatalf("error not rescaled: %v", d.Err[0][0])
	}
}

func TestStandardizeZeroVariance(t *testing.T) {
	d := New("a")
	for i := 0; i < 3; i++ {
		if err := d.Append([]float64{7}, nil, Unlabeled); err != nil {
			t.Fatal(err)
		}
	}
	d.Standardize()
	for _, r := range d.X {
		if r[0] != 0 {
			t.Fatalf("zero-variance column not centered: %v", r[0])
		}
	}
}

func TestSplit(t *testing.T) {
	d := small(t)
	train, test, err := d.Split(0.5, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if train.Len()+test.Len() != d.Len() {
		t.Fatal("split lost rows")
	}
	if train.Len() != 3 {
		t.Fatalf("train size %d, want 3", train.Len())
	}
	if _, _, err := d.Split(0, rng.New(1)); err == nil {
		t.Error("trainFrac 0 accepted")
	}
	if _, _, err := d.Split(1, rng.New(1)); err == nil {
		t.Error("trainFrac 1 accepted")
	}
}

func TestStratifiedSplitKeepsProportions(t *testing.T) {
	d := New("x")
	for i := 0; i < 80; i++ {
		_ = d.Append([]float64{float64(i)}, nil, 0)
	}
	for i := 0; i < 20; i++ {
		_ = d.Append([]float64{float64(i)}, nil, 1)
	}
	train, test, err := d.StratifiedSplit(0.75, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	count := func(ds *Dataset, c int) int {
		n := 0
		for _, l := range ds.Labels {
			if l == c {
				n++
			}
		}
		return n
	}
	if count(train, 0) != 60 || count(train, 1) != 15 {
		t.Fatalf("train class counts %d/%d, want 60/15", count(train, 0), count(train, 1))
	}
	if count(test, 0) != 20 || count(test, 1) != 5 {
		t.Fatalf("test class counts %d/%d, want 20/5", count(test, 0), count(test, 1))
	}
}

func TestKFold(t *testing.T) {
	d := small(t)
	folds, err := d.KFold(3, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 3 {
		t.Fatalf("got %d folds", len(folds))
	}
	total := 0
	for _, f := range folds {
		total += f.Test.Len()
		if f.Train.Len()+f.Test.Len() != d.Len() {
			t.Fatal("fold sizes inconsistent")
		}
	}
	if total != d.Len() {
		t.Fatalf("test folds cover %d rows, want %d", total, d.Len())
	}
	if _, err := d.KFold(1, rng.New(1)); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := d.KFold(7, rng.New(1)); err == nil {
		t.Error("k>N accepted")
	}
}

func TestNumClassesAndLabel(t *testing.T) {
	d := New("x")
	_ = d.Append([]float64{1}, nil, Unlabeled)
	if d.NumClasses() != 0 {
		t.Fatalf("NumClasses = %d, want 0", d.NumClasses())
	}
	if d.Label(0) != Unlabeled {
		t.Fatal("Label should be Unlabeled")
	}
	d.ClassNames = []string{"yes", "no", "maybe"}
	if d.NumClasses() != 3 {
		t.Fatalf("NumClasses with names = %d", d.NumClasses())
	}
}
