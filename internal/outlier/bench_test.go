package outlier

import (
	"testing"

	"udm/internal/dataset"
	"udm/internal/kde"
	"udm/internal/microcluster"
	"udm/internal/rng"
)

func benchData(n int) *dataset.Dataset {
	d := dataset.New("a", "b")
	r := rng.New(1)
	for i := 0; i < n; i++ {
		_ = d.Append([]float64{r.Norm(0, 1), r.Norm(0, 1)},
			[]float64{0.1, 0.1}, dataset.Unlabeled)
	}
	return d
}

func BenchmarkDetect(b *testing.B) {
	d := benchData(500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Detect(d, Options{KDE: kde.Options{ErrorAdjust: true}}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDetectQueryError(b *testing.B) {
	d := benchData(500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Detect(d, Options{
			UseQueryError: true,
			KDE:           kde.Options{ErrorAdjust: true},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDetectStream(b *testing.B) {
	s := microcluster.NewSummarizer(100, 2)
	r := rng.New(2)
	for i := 0; i < 5000; i++ {
		s.Add([]float64{r.Norm(0, 1), r.Norm(0, 1)}, []float64{0.1, 0.1})
	}
	queries := make([][]float64, 200)
	for i := range queries {
		queries[i] = []float64{r.Norm(0, 2), r.Norm(0, 2)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DetectStream(s, queries, nil, Options{
			KDE: kde.Options{ErrorAdjust: true},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExplain(b *testing.B) {
	d := benchData(500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Explain(d, 42, Options{KDE: kde.Options{ErrorAdjust: true}}); err != nil {
			b.Fatal(err)
		}
	}
}
